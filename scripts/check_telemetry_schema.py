#!/usr/bin/env python3
"""Telemetry schema gate: validates the guardnn-telemetry/1 JSON export.

Runs the fleet_dashboard example (multi-tenant load with one injected device
kill), captures every ##GUARDNN_TELEMETRY_JSON## marker line it prints — one
full TelemetrySnapshot per dashboard tick — and validates:

  * every snapshot is valid JSON with schema "guardnn-telemetry/1" and the
    counters / gauges / histograms / events / trace sections;
  * counters are non-negative integers and MONOTONIC across snapshots: a
    (name, labels) series never decreases between ticks;
  * histogram invariants: bucket counts sum to `count`, bucket lower bounds
    strictly ascend, quantiles are ordered p50 <= p90 <= p99 <= p999, and
    min <= max whenever the histogram is non-empty;
  * event timestamps are non-decreasing within a snapshot;
  * the trace section always carries a non-negative `recorded` count;
  * the serving layer's migration / spare-pool series are present (they
    register at server construction, so they must appear in every export
    even when no migration ran).

Stdlib only — runs anywhere the build tree exists.

Usage: scripts/check_telemetry_schema.py [BINARY]
       (BINARY defaults to build/examples/fleet_dashboard)
"""
import json
import os
import pathlib
import subprocess
import sys

MARKER = "##GUARDNN_TELEMETRY_JSON## "
SCHEMA = "guardnn-telemetry/1"
QUANTILE_KEYS = ("p50", "p90", "p99", "p999")

errors = []


def fail(snapshot_index, message):
    errors.append(f"snapshot {snapshot_index}: {message}")


def series_key(sample):
    labels = sample.get("labels", {})
    if not isinstance(labels, dict):
        return None
    return (sample.get("name"), tuple(sorted(labels.items())))


def check_counter(i, sample):
    value = sample.get("value")
    if not isinstance(value, int) or value < 0:
        fail(i, f"counter {sample.get('name')} value {value!r} is not a "
                "non-negative integer")


def check_gauge(i, sample):
    value = sample.get("value")
    if not isinstance(value, (int, float)):
        fail(i, f"gauge {sample.get('name')} value {value!r} is not numeric")


def check_histogram(i, sample):
    name = sample.get("name")
    count = sample.get("count")
    if not isinstance(count, int) or count < 0:
        fail(i, f"histogram {name} count {count!r} invalid")
        return
    buckets = sample.get("buckets")
    if not isinstance(buckets, list):
        fail(i, f"histogram {name} has no bucket list")
        return
    total = 0
    last_lower = None
    for bucket in buckets:
        if (not isinstance(bucket, list) or len(bucket) != 2
                or not isinstance(bucket[1], int)):
            fail(i, f"histogram {name} malformed bucket {bucket!r}")
            return
        lower, n = bucket
        if last_lower is not None and lower <= last_lower:
            fail(i, f"histogram {name} bucket lower bounds not ascending")
        last_lower = lower
        total += n
    if total != count:
        fail(i, f"histogram {name} bucket sum {total} != count {count}")
    quantiles = [sample.get(key) for key in QUANTILE_KEYS]
    if any(not isinstance(q, (int, float)) for q in quantiles):
        fail(i, f"histogram {name} quantiles not numeric: {quantiles!r}")
        return
    if count == 0:
        if sample.get("sum") != 0 or any(quantiles):
            fail(i, f"histogram {name} is empty but reports nonzero stats")
        return
    for a, b in zip(QUANTILE_KEYS, QUANTILE_KEYS[1:]):
        if sample[a] > sample[b]:
            fail(i, f"histogram {name} {a}={sample[a]} > {b}={sample[b]}")
    if sample.get("min", 0) > sample.get("max", 0):
        fail(i, f"histogram {name} min > max")


def check_snapshot(i, snap):
    if snap.get("schema") != SCHEMA:
        fail(i, f"schema is {snap.get('schema')!r}, want {SCHEMA!r}")
    for section in ("counters", "gauges", "histograms", "events"):
        if not isinstance(snap.get(section), list):
            fail(i, f"missing section {section!r}")
            return
    for sample in snap["counters"]:
        check_counter(i, sample)
    for sample in snap["gauges"]:
        check_gauge(i, sample)
    for sample in snap["histograms"]:
        check_histogram(i, sample)
    last_t = None
    for event in snap["events"]:
        t = event.get("t_ms")
        if not isinstance(t, (int, float)) or not event.get("kind"):
            fail(i, f"malformed event {event!r}")
            continue
        if last_t is not None and t < last_t:
            fail(i, "event timestamps decrease")
        last_t = t
    trace = snap.get("trace")
    if (not isinstance(trace, dict)
            or not isinstance(trace.get("recorded"), int)
            or trace["recorded"] < 0):
        fail(i, "trace section missing or recorded count invalid")


# Series every InferenceServer registers unconditionally — absence means the
# export surface regressed, not that the event never happened.
REQUIRED_SERIES = {
    "counters": ("serving_migrations_total", "spare_promotions_total"),
    "gauges": ("serving_standby_devices",),
    "histograms": ("serving_migration_drain_ms",
                   "serving_migration_blackout_ms"),
}


def check_required_series(snapshots):
    if not snapshots:
        return
    final = snapshots[-1]
    for section, names in REQUIRED_SERIES.items():
        present = {s.get("name") for s in final.get(section, [])}
        for name in names:
            if name not in present:
                fail(len(snapshots) - 1,
                     f"required {section} series {name!r} missing from export")


def check_monotonic(snapshots):
    last = {}
    for i, snap in enumerate(snapshots):
        for sample in snap.get("counters", []):
            key = series_key(sample)
            value = sample.get("value")
            if key is None or not isinstance(value, int):
                continue  # already reported by check_counter
            if key in last and value < last[key]:
                fail(i, f"counter {key[0]}{dict(key[1])} went backwards: "
                        f"{last[key]} -> {value}")
            last[key] = value


def main():
    repo_root = pathlib.Path(__file__).resolve().parent.parent
    binary = pathlib.Path(
        sys.argv[1] if len(sys.argv) > 1
        else repo_root / "build" / "examples" / "fleet_dashboard")
    if not binary.exists():
        print(f"error: {binary} not found — build with "
              "-DGUARDNN_BUILD_EXAMPLES=ON first", file=sys.stderr)
        return 1

    env = dict(os.environ)
    env.setdefault("GUARDNN_DASHBOARD_MS", "900")
    proc = subprocess.run([str(binary)], capture_output=True, text=True,
                          env=env, timeout=300)
    if proc.returncode != 0:
        print(f"error: {binary.name} exited {proc.returncode}",
              file=sys.stderr)
        sys.stderr.write(proc.stderr)
        return 1

    snapshots = []
    for line in proc.stdout.splitlines():
        if not line.startswith(MARKER):
            continue
        try:
            snapshots.append(json.loads(line[len(MARKER):]))
        except json.JSONDecodeError as err:
            errors.append(f"snapshot {len(snapshots)}: invalid JSON: {err}")
    if len(snapshots) < 2:
        errors.append(f"only {len(snapshots)} snapshot(s) captured — need at "
                      "least 2 for the monotonicity check")

    for i, snap in enumerate(snapshots):
        check_snapshot(i, snap)
    check_monotonic(snapshots)
    check_required_series(snapshots)

    if errors:
        for error in errors:
            print(f"FAIL: {error}", file=sys.stderr)
        return 1
    counters = sum(len(s.get("counters", [])) for s in snapshots)
    print(f"telemetry schema OK: {len(snapshots)} snapshots, "
          f"{counters} counter samples validated, schema {SCHEMA}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
