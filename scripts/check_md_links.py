#!/usr/bin/env python3
"""Markdown link checker for the docs CI job.

Walks every *.md file in the repository (skipping build trees) and validates:
  * relative file links resolve to an existing file or directory;
  * intra-repo anchors (`file.md#section`, `#section`) match a heading in
    the target file, using GitHub's slugging rules;
  * reference-style link definitions are not dangling.

External (http/https/mailto) links are deliberately not fetched — CI must
not flake on the network. Exits non-zero listing every broken link.

Usage: scripts/check_md_links.py [ROOT]
"""

import pathlib
import re
import sys

SKIP_DIRS = {".git", "build", "build-asan", "build-tsan", "docs/api", ".claude"}

INLINE_LINK = re.compile(r"(?<!\!)\[[^\]^\[]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
IMAGE_LINK = re.compile(r"\!\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
CODE_FENCE = re.compile(r"```.*?```", re.DOTALL)


def github_slug(heading: str) -> str:
    """GitHub's anchor slug: lowercase, strip punctuation, spaces → dashes."""
    text = re.sub(r"[`*_]", "", heading.strip())
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # unwrap links
    text = text.lower()
    text = re.sub(r"[^\w\- ]", "", text, flags=re.UNICODE)
    return text.replace(" ", "-")


def anchors_of(path: pathlib.Path) -> set:
    text = path.read_text(encoding="utf-8", errors="replace")
    text = CODE_FENCE.sub("", text)
    slugs = set()
    counts = {}
    for match in HEADING.finditer(text):
        slug = github_slug(match.group(1))
        n = counts.get(slug, 0)
        counts[slug] = n + 1
        slugs.add(slug if n == 0 else f"{slug}-{n}")
    return slugs


def md_files(root: pathlib.Path):
    for path in sorted(root.rglob("*.md")):
        rel = path.relative_to(root)
        if any(str(rel).startswith(skip) for skip in SKIP_DIRS):
            continue
        yield path


def check_file(root: pathlib.Path, path: pathlib.Path, errors: list):
    text = path.read_text(encoding="utf-8", errors="replace")
    text = CODE_FENCE.sub("", text)
    targets = [m.group(1) for m in INLINE_LINK.finditer(text)]
    targets += [m.group(1) for m in IMAGE_LINK.finditer(text)]

    for target in targets:
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        file_part, _, anchor = target.partition("#")
        if file_part:
            resolved = (path.parent / file_part).resolve()
            if not resolved.exists():
                errors.append(f"{path.relative_to(root)}: broken link -> {target}")
                continue
        else:
            resolved = path.resolve()
        if anchor and resolved.suffix == ".md" and resolved.is_file():
            if anchor.lower() not in anchors_of(resolved):
                errors.append(
                    f"{path.relative_to(root)}: missing anchor -> {target}")


def main() -> int:
    root = pathlib.Path(sys.argv[1] if len(sys.argv) > 1 else ".").resolve()
    errors = []
    count = 0
    for path in md_files(root):
        count += 1
        check_file(root, path, errors)
    for error in errors:
        print(error, file=sys.stderr)
    print(f"checked {count} markdown files: "
          f"{'OK' if not errors else f'{len(errors)} broken link(s)'}")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
