#!/usr/bin/env bash
# Runs every bench_* binary in the build tree and folds the results into one
# JSON file — the perf-trajectory baseline future PRs diff against.
#
# Usage:  scripts/run_benches.sh [BUILD_DIR] [OUTPUT_JSON]
#   BUILD_DIR    defaults to ./build
#   OUTPUT_JSON  defaults to BENCH_BASELINE.json in the repo root
#
# Report-style benches (their own main()) contribute their stdout verbatim;
# google-benchmark binaries (bench_micro_*) are run with
# --benchmark_format=json and contribute structured results.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"
out_json="${2:-${repo_root}/BENCH_BASELINE.json}"
bench_dir="${build_dir}/bench"

if [[ ! -d "${bench_dir}" ]]; then
  echo "error: ${bench_dir} not found — configure with -DGUARDNN_BUILD_BENCHES=ON and build first" >&2
  exit 1
fi

shopt -s nullglob
benches=("${bench_dir}"/bench_*)
if [[ ${#benches[@]} -eq 0 ]]; then
  echo "error: no bench_* binaries in ${bench_dir}" >&2
  exit 1
fi

workdir="$(mktemp -d)"
trap 'rm -rf "${workdir}"' EXIT

manifest="${workdir}/manifest.tsv"
: > "${manifest}"

for bin in "${benches[@]}"; do
  [[ -x "${bin}" && ! -d "${bin}" ]] || continue
  name="$(basename "${bin}")"
  echo "== ${name}"
  start=$(date +%s.%N)
  rc=0
  if [[ "${name}" == bench_micro_* ]]; then
    kind=gbench
    "${bin}" --benchmark_format=json >"${workdir}/${name}.out" 2>"${workdir}/${name}.err" || rc=$?
  else
    kind=report
    "${bin}" >"${workdir}/${name}.out" 2>"${workdir}/${name}.err" || rc=$?
  fi
  end=$(date +%s.%N)
  printf '%s\t%s\t%s\t%s\n' "${name}" "${kind}" "${rc}" \
    "$(awk -v a="${start}" -v b="${end}" 'BEGIN{printf "%.3f", b-a}')" >> "${manifest}"
done

python3 - "${manifest}" "${workdir}" "${out_json}" <<'PY'
import json, pathlib, subprocess, sys

manifest, workdir, out_json = sys.argv[1], pathlib.Path(sys.argv[2]), sys.argv[3]

def git(*args):
    try:
        return subprocess.run(["git", *args], capture_output=True, text=True,
                              check=True).stdout.strip()
    except Exception:
        return None

benches = {}
for line in pathlib.Path(manifest).read_text().splitlines():
    name, kind, rc, seconds = line.split("\t")
    entry = {"kind": kind, "exit_code": int(rc), "wall_seconds": float(seconds)}
    stdout = (workdir / f"{name}.out").read_text(errors="replace")
    stderr = (workdir / f"{name}.err").read_text(errors="replace")
    if kind == "gbench":
        try:
            entry["results"] = json.loads(stdout)
        except json.JSONDecodeError:
            entry["stdout"] = stdout
    else:
        entry["stdout"] = stdout
    if stderr.strip():
        entry["stderr"] = stderr
    benches[name] = entry

# Structured crypto throughput (GB/s) pulled out of bench_micro_crypto, so
# future PRs can diff crypto perf numerically instead of eyeballing stdout.
def crypto_throughput():
    entry = benches.get("bench_micro_crypto", {})
    results = entry.get("results")
    if not isinstance(results, dict):
        return None
    by_name = {r.get("name"): r for r in results.get("benchmarks", [])}

    def gbps(name):
        bps = by_name.get(name, {}).get("bytes_per_second")
        return round(bps / 1e9, 4) if bps is not None else None

    out = {
        "aes_block": gbps("BM_AesBlockEncrypt"),
        "aes_block_batch64": gbps("BM_AesEncryptBlocks/64"),
        "aes_ctr": gbps("BM_AesCtr/65536"),
        "memory_xcrypt": gbps("BM_MemoryXcrypt/65536"),
        "cmac_512b": gbps("BM_MemoryMac512B"),
        "cmac_lanes_512b": gbps("BM_MemoryMacLanes512B"),
        "cmac_lanes_64kib": gbps("BM_CmacMany64KiB"),
        "sha256": gbps("BM_Sha256/65536"),
    }
    for key in ("aes_backend", "sha256_backend"):
        backend = results.get("context", {}).get(key)
        if backend:
            out[key] = backend
    return out

# Structured results pulled out of ##GUARDNN_BENCH_JSON## marker lines. A
# binary may emit several markers (bench_serving_throughput emits both the
# closed-loop sweep and the sustained open-loop block), so selection matches
# on the embedded "bench" field, not just the first marker found.
def marker_json(bench_name, marker=None):
    entry = benches.get(bench_name, {})
    for line in entry.get("stdout", "").splitlines():
        if not line.startswith("##GUARDNN_BENCH_JSON## "):
            continue
        try:
            parsed = json.loads(line.split(" ", 1)[1])
        except json.JSONDecodeError:
            continue
        if marker is None or parsed.get("bench") == marker:
            return parsed
    return None

# Closed-loop serving sweep (req/s, p50/p99 ms per workers x devices config,
# plus the multi-worker speedup the acceptance gate tracks).
def serving_throughput():
    return marker_json("bench_serving_throughput", "serving_throughput")

# Sustained open-loop serving: Poisson arrivals below and far above fleet
# capacity — saturation req/s, p50/p99/p999 sojourn, admission rejections and
# per-tenant fairness spread under overload.
def serving_sustained():
    return marker_json("bench_serving_throughput", "serving_sustained")

# Chaos mode: one device of four killed fail-stop mid-run — recovery time,
# p99 before/after the kill, admission-budget rescale, zero-hangs gate.
def serving_chaos():
    return marker_json("bench_serving_throughput", "serving_chaos")

# Migration storm: live tenant moves under load — server/client blackout
# percentiles, bystander p99 baseline vs storm, zero-lost-futures gate.
def serving_migration():
    return marker_json("bench_serving_throughput", "serving_migration")

# Sealed model store: SealModel/UnsealModel GB/s (steady + cold through the
# fused pipeline) and cross-device replication latency (p50/p99 of the
# attested 3-step re-wrap).
def model_store():
    return marker_json("bench_model_store")

# Seal/unseal throughput deltas vs the previously recorded baseline (the
# output file itself, read before overwrite), so a PR's effect on the fused
# seal data path shows up numerically instead of via stdout diffing.
def model_store_delta(current):
    if not current:
        return None
    try:
        previous = json.loads(pathlib.Path(out_json).read_text()).get("model_store")
    except Exception:
        previous = None
    if not previous:
        return None

    def speedup(key):
        new, old = current.get(key), previous.get(key)
        return round(new / old, 3) if new and old else None

    return {
        "prev_seal_gbps": previous.get("seal_gbps"),
        "prev_unseal_gbps": previous.get("unseal_gbps"),
        "seal_speedup_x": speedup("seal_gbps"),
        "unseal_speedup_x": speedup("unseal_gbps"),
    }

doc = {
    "schema": "guardnn-bench-baseline/1",
    "git_commit": git("rev-parse", "HEAD"),
    "git_branch": git("rev-parse", "--abbrev-ref", "HEAD"),
    "bench_count": len(benches),
    "failed": sorted(n for n, e in benches.items() if e["exit_code"] != 0),
    "crypto_throughput_gbps": crypto_throughput(),
    "serving_throughput": serving_throughput(),
    "serving_sustained": serving_sustained(),
    "serving_chaos": serving_chaos(),
    "serving_migration": serving_migration(),
    "model_store": model_store(),
    "benches": benches,
}
doc["model_store_delta"] = model_store_delta(doc["model_store"])
pathlib.Path(out_json).write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
print(f"wrote {out_json} ({len(benches)} benches, {len(doc['failed'])} failed)")
PY

# Non-zero exit when any bench failed, so CI can gate on it.
failed=$(awk -F'\t' '$3 != 0' "${manifest}" | wc -l)
if [[ "${failed}" -gt 0 ]]; then
  echo "warning: ${failed} bench(es) exited non-zero" >&2
  exit 1
fi
