#include <gtest/gtest.h>

#include "common/rng.h"
#include "crypto/drbg.h"
#include "crypto/hmac.h"
#include "crypto/sha256.h"

namespace guardnn::crypto {
namespace {

std::string digest_hex(const Sha256Digest& d) {
  return to_hex(BytesView(d.data(), d.size()));
}

TEST(Sha256, KnownVectors) {
  EXPECT_EQ(digest_hex(Sha256::hash({})),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");

  const std::string abc = "abc";
  EXPECT_EQ(digest_hex(Sha256::hash(
                BytesView(reinterpret_cast<const u8*>(abc.data()), abc.size()))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");

  const std::string two_block =
      "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq";
  EXPECT_EQ(digest_hex(Sha256::hash(BytesView(
                reinterpret_cast<const u8*>(two_block.data()), two_block.size()))),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

// NIST CAVP SHA256ShortMsg known-answer vectors (byte-oriented suite).
TEST(Sha256, NistCavpShortMsgVectors) {
  const struct {
    const char* msg_hex;
    const char* digest_hex;
  } vectors[] = {
      {"d3", "28969cdfa74a12c82f3bad960b0b000aca2ac329deea5c2328ebc6f2ba9802c1"},
      {"11af", "5ca7133fa735326081558ac312c620eeca9970d1e70a4b95533d956f072d1f98"},
      {"bd", "68325720aabd7c82f30f554b313d0570c95accbb7dc4b5aae11204c08ffe732b"},
      {"c98c8e55",
       "7abc22c0ae5af26ce93dbb94433a0e0b2e119d014f8e7f65bd56c61ccccd9504"},
  };
  for (const auto& v : vectors) {
    const Bytes msg = from_hex(v.msg_hex);
    EXPECT_EQ(digest_hex(Sha256::hash(msg)), v.digest_hex) << "msg=" << v.msg_hex;
  }
}

// FIPS 180-2 long-message vector: one million 'a' bytes, fed incrementally.
TEST(Sha256, MillionAVector) {
  Sha256 h;
  const Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(digest_hex(h.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  Xoshiro256 rng(99);
  Bytes data(1000);
  rng.fill(data);
  const Sha256Digest one_shot = Sha256::hash(data);

  for (std::size_t chunk : {1u, 7u, 63u, 64u, 65u, 128u}) {
    Sha256 h;
    std::size_t off = 0;
    while (off < data.size()) {
      const std::size_t n = std::min(chunk, data.size() - off);
      h.update(BytesView(data.data() + off, n));
      off += n;
    }
    EXPECT_EQ(h.finalize(), one_shot) << "chunk=" << chunk;
  }
}

TEST(Sha256, ReusableAfterFinalize) {
  Sha256 h;
  const std::string abc = "abc";
  h.update(BytesView(reinterpret_cast<const u8*>(abc.data()), abc.size()));
  const Sha256Digest first = h.finalize();
  h.update(BytesView(reinterpret_cast<const u8*>(abc.data()), abc.size()));
  EXPECT_EQ(h.finalize(), first);
}

TEST(Hmac, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  const std::string msg = "Hi There";
  const Sha256Digest tag = hmac_sha256(
      key, BytesView(reinterpret_cast<const u8*>(msg.data()), msg.size()));
  EXPECT_EQ(digest_hex(tag),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2) {
  const std::string key = "Jefe";
  const std::string msg = "what do ya want for nothing?";
  const Sha256Digest tag = hmac_sha256(
      BytesView(reinterpret_cast<const u8*>(key.data()), key.size()),
      BytesView(reinterpret_cast<const u8*>(msg.data()), msg.size()));
  EXPECT_EQ(digest_hex(tag),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

// RFC 4231 test case 3 (NIST CAVP-equivalent): 20-byte 0xaa key, 50x 0xdd.
TEST(Hmac, Rfc4231Case3) {
  const Bytes key(20, 0xaa);
  const Bytes msg(50, 0xdd);
  EXPECT_EQ(digest_hex(hmac_sha256(key, msg)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

// RFC 4231 test case 4: 25-byte incrementing key, 50x 0xcd.
TEST(Hmac, Rfc4231Case4) {
  const Bytes key = from_hex("0102030405060708090a0b0c0d0e0f10111213141516171819");
  const Bytes msg(50, 0xcd);
  EXPECT_EQ(digest_hex(hmac_sha256(key, msg)),
            "82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff46729665b");
}

TEST(Hmac, LongKeyIsHashed) {
  const Bytes long_key(131, 0xaa);
  const std::string msg = "Test Using Larger Than Block-Size Key - Hash Key First";
  const Sha256Digest tag = hmac_sha256(
      long_key, BytesView(reinterpret_cast<const u8*>(msg.data()), msg.size()));
  EXPECT_EQ(digest_hex(tag),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(Hkdf, DeterministicAndLabelSeparated) {
  const Bytes salt = {1, 2, 3};
  const Bytes ikm = {4, 5, 6};
  const Bytes info_a = {7};
  const Bytes info_b = {8};
  const Bytes a1 = hkdf(salt, ikm, info_a, 42);
  const Bytes a2 = hkdf(salt, ikm, info_a, 42);
  const Bytes b = hkdf(salt, ikm, info_b, 42);
  EXPECT_EQ(a1, a2);
  EXPECT_NE(a1, b);
  EXPECT_EQ(a1.size(), 42u);
}

TEST(Hkdf, PrefixConsistency) {
  // Expanding to a longer length must preserve the shorter prefix.
  const Bytes salt = {9};
  const Bytes ikm = {10, 11};
  const Bytes info = {12};
  const Bytes short_out = hkdf(salt, ikm, info, 16);
  const Bytes long_out = hkdf(salt, ikm, info, 48);
  EXPECT_EQ(Bytes(long_out.begin(), long_out.begin() + 16), short_out);
}

TEST(Hkdf, RejectsExcessiveLength) {
  EXPECT_THROW(hkdf_expand(Sha256Digest{}, {}, 255 * 32 + 1), std::invalid_argument);
}


// --- Statistical randomness checks (NIST SP 800-22 style, coarse) ----------

double monobit_fraction(BytesView data) {
  std::size_t ones = 0;
  for (u8 b : data) ones += static_cast<std::size_t>(std::popcount(b));
  return static_cast<double>(ones) / (static_cast<double>(data.size()) * 8);
}

double longest_run_of_ones(BytesView data) {
  int longest = 0, current = 0;
  for (u8 byte : data) {
    for (int bit = 7; bit >= 0; --bit) {
      if ((byte >> bit) & 1) {
        ++current;
        longest = std::max(longest, current);
      } else {
        current = 0;
      }
    }
  }
  return longest;
}

TEST(Randomness, DrbgMonobitAndRuns) {
  HmacDrbg drbg(Bytes{0xaa, 0xbb});
  const Bytes stream = drbg.generate(1 << 16);
  EXPECT_NEAR(monobit_fraction(stream), 0.5, 0.01);
  // For 2^19 bits the longest run of ones should be ~log2(n) = 19 +- slack.
  const double run = longest_run_of_ones(stream);
  EXPECT_GT(run, 10);
  EXPECT_LT(run, 40);
}

TEST(Randomness, ByteHistogramUniform) {
  HmacDrbg drbg(Bytes{0xcc});
  const Bytes stream = drbg.generate(1 << 16);
  std::array<int, 256> hist{};
  for (u8 b : stream) ++hist[b];
  // Chi-square against uniform: expected 256 per bucket; bound loose enough
  // to be deterministic-safe but catch byte-level bias.
  double chi2 = 0.0;
  for (int count : hist) {
    const double d = count - 256.0;
    chi2 += d * d / 256.0;
  }
  EXPECT_LT(chi2, 340.0);  // 255 dof, p ~ 0.0003 upper bound
}

TEST(Randomness, SerialCorrelationLow) {
  HmacDrbg drbg(Bytes{0xdd});
  const Bytes stream = drbg.generate(1 << 15);
  double sum_x = 0, sum_xx = 0, sum_xy = 0;
  for (std::size_t i = 0; i + 1 < stream.size(); ++i) {
    const double x = stream[i], y = stream[i + 1];
    sum_x += x;
    sum_xx += x * x;
    sum_xy += x * y;
  }
  const double n = static_cast<double>(stream.size() - 1);
  const double mean = sum_x / n;
  const double var = sum_xx / n - mean * mean;
  const double cov = sum_xy / n - mean * mean;
  EXPECT_LT(std::abs(cov / var), 0.02);
}

TEST(Drbg, DeterministicPerSeed) {
  const Bytes seed1 = {1, 2, 3, 4};
  const Bytes seed2 = {1, 2, 3, 5};
  HmacDrbg a(seed1), b(seed1), c(seed2);
  EXPECT_EQ(a.generate(64), b.generate(64));
  EXPECT_NE(HmacDrbg(seed1).generate(64), c.generate(64));
}

TEST(Drbg, SequentialOutputsDiffer) {
  HmacDrbg drbg(Bytes{42});
  const Bytes first = drbg.generate(32);
  const Bytes second = drbg.generate(32);
  EXPECT_NE(first, second);
}

TEST(Drbg, PersonalizationSeparatesStreams) {
  const Bytes seed = {7, 7, 7};
  HmacDrbg a(seed, Bytes{'a'});
  HmacDrbg b(seed, Bytes{'b'});
  EXPECT_NE(a.generate(32), b.generate(32));
}

TEST(Drbg, ReseedChangesStream) {
  const Bytes seed = {1};
  HmacDrbg a(seed), b(seed);
  b.reseed(Bytes{2});
  EXPECT_NE(a.generate(32), b.generate(32));
}

TEST(Drbg, OutputLooksUniform) {
  HmacDrbg drbg(Bytes{99});
  const Bytes out = drbg.generate(4096);
  // Count bits; expect close to half set.
  std::size_t ones = 0;
  for (u8 byte : out) ones += static_cast<std::size_t>(std::popcount(byte));
  const double frac = static_cast<double>(ones) / (4096 * 8);
  EXPECT_NEAR(frac, 0.5, 0.02);
}

}  // namespace
}  // namespace guardnn::crypto
