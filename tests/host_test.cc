// End-to-end protocol tests: remote user <-> untrusted host <-> GuardNN
// device, including functional correctness of encrypted inference, remote
// attestation, malicious-host behaviour and side-channel invariants.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "host/scheduler.h"
#include "host/user_client.h"

namespace guardnn::host {
namespace {

using accel::DeviceStatus;
using accel::ForwardOp;

Bytes random_weights(std::size_t n, u64 seed, int bits = 8) {
  Xoshiro256 rng(seed);
  Bytes out(n);
  const u64 span = 1ULL << bits;
  for (auto& b : out)
    b = static_cast<u8>(static_cast<i8>(
        static_cast<int>(rng.next_below(span)) - static_cast<int>(span / 2)));
  return out;
}

/// A small conv -> relu -> maxpool -> fc network.
FuncNetwork small_cnn(u64 seed = 42) {
  FuncNetwork net;
  net.in_c = 3;
  net.in_h = 8;
  net.in_w = 8;
  net.layers.push_back(FuncLayer{ForwardOp::Kind::kConv, 4, 3, 1, 1, 4,
                                 random_weights(4 * 3 * 3 * 3, seed)});
  net.layers.push_back(FuncLayer{ForwardOp::Kind::kRelu, 0, 0, 1, 0, 0, {}});
  net.layers.push_back(FuncLayer{ForwardOp::Kind::kMaxPool, 0, 2, 2, 0, 0, {}});
  net.layers.push_back(FuncLayer{ForwardOp::Kind::kFc, 10, 0, 1, 0, 5,
                                 random_weights(10 * 4 * 4 * 4, seed + 1)});
  return net;
}

functional::Tensor random_input(const FuncNetwork& net, u64 seed) {
  functional::Tensor input(net.in_c, net.in_h, net.in_w, net.bits);
  Xoshiro256 rng(seed);
  const int span = 1 << net.bits;
  for (auto& v : input.data())
    v = static_cast<i8>(static_cast<int>(rng.next_below(static_cast<u64>(span))) -
                        span / 2);
  return input;
}

struct TestBench {
  accel::UntrustedMemory memory;
  crypto::HmacDrbg ca_drbg{Bytes{0xca}};
  crypto::ManufacturerCa ca{ca_drbg};
  accel::GuardNnDevice device{"guardnn-0001", ca, memory, Bytes{0x0d}};
  RemoteUser user{ca.public_key(), Bytes{0x05}};
  HostScheduler scheduler{device};

  /// Runs GetPK -> InitSession with certificate + signature verification.
  [[nodiscard]] bool establish(bool integrity) {
    if (!user.attest_device(device.get_pk())) return false;
    const crypto::AffinePoint share = user.begin_session();
    return user.complete_session(device.init_session(share, integrity));
  }

  /// Full encrypted inference; returns the decrypted output.
  std::optional<Bytes> run(const FuncNetwork& net, const functional::Tensor& input,
                           bool integrity, bool attest = true) {
    if (!establish(integrity)) return std::nullopt;
    const ExecutionPlan plan = HostScheduler::compile(net);

    if (device.set_weight(user.seal(plan.weight_blob), plan.weight_base) !=
        DeviceStatus::kOk)
      return std::nullopt;
    const Bytes input_bytes(input.bytes().begin(), input.bytes().end());
    if (device.set_input(user.seal(input_bytes), plan.input_addr) !=
        DeviceStatus::kOk)
      return std::nullopt;
    scheduler.note_input();
    if (scheduler.execute(plan) != DeviceStatus::kOk) return std::nullopt;

    crypto::SealedRecord sealed;
    if (device.export_output(plan.output_addr, plan.output_bytes, sealed) !=
        DeviceStatus::kOk)
      return std::nullopt;
    auto output = user.open_output(sealed);
    if (!output) return std::nullopt;

    if (attest) {
      user.expect_weights(plan.weight_blob);
      user.expect_input(input_bytes);
      user.expect_output(*output);
      mirror_attestation(user, plan);
      accel::SignOutputResponse report;
      if (device.sign_output(report) != DeviceStatus::kOk) return std::nullopt;
      if (!user.verify_attestation(report)) return std::nullopt;
    }
    return output;
  }
};

TEST(Shapes, InferShapesTracksGeometry) {
  const FuncNetwork net = small_cnn();
  const auto shapes = infer_shapes(net);
  ASSERT_EQ(shapes.size(), 5u);
  EXPECT_EQ(shapes[0], (std::array<int, 3>{3, 8, 8}));
  EXPECT_EQ(shapes[1], (std::array<int, 3>{4, 8, 8}));   // conv, pad 1
  EXPECT_EQ(shapes[2], (std::array<int, 3>{4, 8, 8}));   // relu
  EXPECT_EQ(shapes[3], (std::array<int, 3>{4, 4, 4}));   // maxpool
  EXPECT_EQ(shapes[4], (std::array<int, 3>{10, 1, 1}));  // fc
}

TEST(Compile, PlanAddressesAreChunkAligned) {
  const ExecutionPlan plan = HostScheduler::compile(small_cnn());
  for (u64 addr : plan.weight_addrs) EXPECT_EQ(addr % 512, 0u);
  EXPECT_EQ(plan.input_addr % 512, 0u);
  for (const auto& op : plan.ops) {
    EXPECT_EQ(op.input_addr % 512, 0u);
    EXPECT_EQ(op.output_addr % 512, 0u);
  }
}

class EndToEndTest : public ::testing::TestWithParam<bool> {};

TEST_P(EndToEndTest, EncryptedInferenceMatchesReference) {
  const bool integrity = GetParam();
  const FuncNetwork net = small_cnn();
  const functional::Tensor input = random_input(net, 7);

  TestBench bench;
  const auto output = bench.run(net, input, integrity);
  ASSERT_TRUE(output.has_value());
  EXPECT_EQ(*output, reference_run(net, input))
      << "encrypted execution must agree with plaintext reference";
}

INSTANTIATE_TEST_SUITE_P(Modes, EndToEndTest, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "GuardNN_CI" : "GuardNN_C";
                         });

TEST(EndToEnd, MultipleInputsSameSession) {
  const FuncNetwork net = small_cnn();
  TestBench bench;
  ASSERT_TRUE(bench.establish(true));
  const ExecutionPlan plan = HostScheduler::compile(net);
  ASSERT_EQ(bench.device.set_weight(bench.user.seal(plan.weight_blob),
                                    plan.weight_base),
            DeviceStatus::kOk);

  for (u64 trial = 0; trial < 3; ++trial) {
    const functional::Tensor input = random_input(net, 100 + trial);
    const Bytes input_bytes(input.bytes().begin(), input.bytes().end());
    ASSERT_EQ(bench.device.set_input(bench.user.seal(input_bytes), plan.input_addr),
              DeviceStatus::kOk);
    bench.scheduler.note_input();
    ASSERT_EQ(bench.scheduler.execute(plan), DeviceStatus::kOk);
    crypto::SealedRecord sealed;
    ASSERT_EQ(bench.device.export_output(plan.output_addr, plan.output_bytes, sealed),
              DeviceStatus::kOk);
    const auto output = bench.user.open_output(sealed);
    ASSERT_TRUE(output.has_value());
    EXPECT_EQ(*output, reference_run(net, input)) << "trial " << trial;
  }
}

TEST(EndToEnd, NoPlaintextAnywhereInUntrustedMemory) {
  const FuncNetwork net = small_cnn();
  const functional::Tensor input = random_input(net, 9);
  TestBench bench;
  const auto output = bench.run(net, input, false);
  ASSERT_TRUE(output.has_value());

  // Adversary scans the full feature/weight regions for any 32-byte window
  // of the plaintext weights, input, or output.
  const ExecutionPlan plan = HostScheduler::compile(net);
  auto contains = [&](u64 base, u64 len, BytesView needle) {
    const Bytes haystack = bench.memory.read(base, len);
    return std::search(haystack.begin(), haystack.end(), needle.begin(),
                       needle.end()) != haystack.end();
  };
  const BytesView weights(plan.weight_blob.data(), 32);
  const BytesView input_view(input.bytes().data(), 32);
  for (u64 base : {0x0ULL, 0x4000'0000ULL, 0x4800'0000ULL, 0x5000'0000ULL}) {
    EXPECT_FALSE(contains(base, 1 << 16, weights));
    EXPECT_FALSE(contains(base, 1 << 16, input_view));
  }
}


TEST(EndToEnd, SixBitPrecisionMatchesReference) {
  // The FPGA prototype's 6-bit datapath (Table II): values clamp to
  // [-32, 31] but the protocol and protection are identical.
  FuncNetwork net;
  net.in_c = 2;
  net.in_h = 6;
  net.in_w = 6;
  net.bits = 6;
  net.layers.push_back(FuncLayer{ForwardOp::Kind::kConv, 3, 3, 1, 1, 3,
                                 random_weights(3 * 2 * 3 * 3, 61, 6)});
  net.layers.push_back(FuncLayer{ForwardOp::Kind::kRelu, 0, 0, 1, 0, 0, {}});
  net.layers.push_back(FuncLayer{ForwardOp::Kind::kFc, 5, 0, 1, 0, 4,
                                 random_weights(5 * 3 * 6 * 6, 62, 6)});
  const functional::Tensor input = random_input(net, 63);
  for (i8 v : input.data()) {
    EXPECT_GE(v, -32);
    EXPECT_LE(v, 31);
  }
  TestBench bench;
  const auto output = bench.run(net, input, /*integrity=*/true);
  ASSERT_TRUE(output.has_value());
  EXPECT_EQ(*output, reference_run(net, input));
  for (u8 b : *output) {
    EXPECT_GE(static_cast<i8>(b), -32);
    EXPECT_LE(static_cast<i8>(b), 31);
  }
}

TEST(MaliciousHost, StaleWeightReplayAfterUpdateDetected) {
  // Model update flow: the user re-imports new weights (CTR_W increments);
  // the adversary then restores the *old* ciphertext and old MACs. Because
  // the MAC binds the weight VN, the stale weights fail verification.
  const FuncNetwork net = small_cnn();
  TestBench bench;
  ASSERT_TRUE(bench.establish(true));
  const ExecutionPlan plan = HostScheduler::compile(net);

  ASSERT_EQ(bench.device.set_weight(bench.user.seal(plan.weight_blob),
                                    plan.weight_base),
            DeviceStatus::kOk);
  // Snapshot the old weight ciphertext and its MAC slots.
  const u64 weight_span = plan.weight_blob.size();
  const Bytes old_cipher = bench.memory.read(plan.weight_base, weight_span);
  const u64 mac_base = accel::MemoryProtectionUnit::kMacRegionBase +
                       plan.weight_base / 512 * 8;
  const Bytes old_macs = bench.memory.read(mac_base, weight_span / 512 * 8 + 8);

  // User ships updated weights (e.g. a fine-tuned model).
  Bytes updated = plan.weight_blob;
  for (auto& b : updated) b = static_cast<u8>(b ^ 0x3c);
  ASSERT_EQ(bench.device.set_weight(bench.user.seal(updated), plan.weight_base),
            DeviceStatus::kOk);
  EXPECT_EQ(bench.device.vn_generator().ctr_w(), 2u);

  // Adversary rolls DRAM back to the old (self-consistent) snapshot.
  bench.memory.write(plan.weight_base, old_cipher);
  bench.memory.write(mac_base, old_macs);

  const functional::Tensor input = random_input(net, 71);
  const Bytes input_bytes(input.bytes().begin(), input.bytes().end());
  ASSERT_EQ(bench.device.set_input(bench.user.seal(input_bytes), plan.input_addr),
            DeviceStatus::kOk);
  bench.scheduler.note_input();
  EXPECT_EQ(bench.scheduler.execute(plan), DeviceStatus::kIntegrityFailure)
      << "stale-weight replay must fail: MAC was computed under CTR_W=1";
}

TEST(EndToEnd, WeightUpdateChangesOutput) {
  // Same input, updated weights -> different (still correct) output; the
  // device executes against the latest import.
  FuncNetwork net = small_cnn(81);
  const functional::Tensor input = random_input(net, 82);
  TestBench bench;
  ASSERT_TRUE(bench.establish(false));
  ExecutionPlan plan = HostScheduler::compile(net);
  ASSERT_EQ(bench.device.set_weight(bench.user.seal(plan.weight_blob),
                                    plan.weight_base),
            DeviceStatus::kOk);
  const Bytes input_bytes(input.bytes().begin(), input.bytes().end());
  ASSERT_EQ(bench.device.set_input(bench.user.seal(input_bytes), plan.input_addr),
            DeviceStatus::kOk);
  bench.scheduler.note_input();
  ASSERT_EQ(bench.scheduler.execute(plan), DeviceStatus::kOk);
  crypto::SealedRecord sealed;
  ASSERT_EQ(bench.device.export_output(plan.output_addr, plan.output_bytes, sealed),
            DeviceStatus::kOk);
  const auto out_v1 = bench.user.open_output(sealed);
  ASSERT_TRUE(out_v1.has_value());
  EXPECT_EQ(*out_v1, reference_run(net, input));

  // Update the model (new conv weights), re-run the same input.
  FuncNetwork net_v2 = small_cnn(99);
  const ExecutionPlan plan_v2 = HostScheduler::compile(net_v2);
  ASSERT_EQ(bench.device.set_weight(bench.user.seal(plan_v2.weight_blob),
                                    plan_v2.weight_base),
            DeviceStatus::kOk);
  ASSERT_EQ(bench.device.set_input(bench.user.seal(input_bytes),
                                   plan_v2.input_addr),
            DeviceStatus::kOk);
  bench.scheduler.note_input();
  ASSERT_EQ(bench.scheduler.execute(plan_v2), DeviceStatus::kOk);
  ASSERT_EQ(bench.device.export_output(plan_v2.output_addr, plan_v2.output_bytes,
                                       sealed),
            DeviceStatus::kOk);
  const auto out_v2 = bench.user.open_output(sealed);
  ASSERT_TRUE(out_v2.has_value());
  EXPECT_EQ(*out_v2, reference_run(net_v2, input));
  EXPECT_NE(*out_v1, *out_v2);
}


TEST(EndToEnd, ResidualNetworkMatchesReference) {
  // conv -> relu -> conv -> add(skip from relu output) -> fc: the residual
  // second operand exercises kAdd with a host-supplied second read counter.
  FuncNetwork net;
  net.in_c = 2;
  net.in_h = 8;
  net.in_w = 8;
  net.layers.push_back(FuncLayer{ForwardOp::Kind::kConv, 4, 3, 1, 1, 5,
                                 random_weights(4 * 2 * 3 * 3, 201)});
  net.layers.push_back(FuncLayer{ForwardOp::Kind::kRelu, 0, 0, 1, 0, 0, {}});
  net.layers.push_back(FuncLayer{ForwardOp::Kind::kConv, 4, 3, 1, 1, 5,
                                 random_weights(4 * 4 * 3 * 3, 202)});
  FuncLayer add;
  add.kind = ForwardOp::Kind::kAdd;
  add.input2_layer = 1;  // the relu output
  net.layers.push_back(add);
  net.layers.push_back(FuncLayer{ForwardOp::Kind::kFc, 6, 0, 1, 0, 7,
                                 random_weights(6 * 4 * 8 * 8, 203)});

  const functional::Tensor input = random_input(net, 204);
  TestBench bench;
  const auto output = bench.run(net, input, /*integrity=*/true);
  ASSERT_TRUE(output.has_value());
  EXPECT_EQ(*output, reference_run(net, input));
}

TEST(EndToEnd, DepthwiseSeparableMatchesReference) {
  // MobileNet-style depthwise + pointwise pair through the device.
  FuncNetwork net;
  net.in_c = 4;
  net.in_h = 8;
  net.in_w = 8;
  net.layers.push_back(FuncLayer{ForwardOp::Kind::kDepthwiseConv, 0, 3, 1, 1, 4,
                                 random_weights(4 * 3 * 3, 211)});
  net.layers.push_back(FuncLayer{ForwardOp::Kind::kRelu, 0, 0, 1, 0, 0, {}});
  net.layers.push_back(FuncLayer{ForwardOp::Kind::kConv, 8, 1, 1, 0, 5,
                                 random_weights(8 * 4 * 1 * 1, 212)});
  net.layers.push_back(FuncLayer{ForwardOp::Kind::kGlobalAvgPool, 0, 0, 1, 0, 0, {}});

  const functional::Tensor input = random_input(net, 213);
  TestBench bench;
  const auto output = bench.run(net, input, /*integrity=*/true);
  ASSERT_TRUE(output.has_value());
  EXPECT_EQ(*output, reference_run(net, input));
}

TEST(Compile, RejectsForwardReferenceInAdd) {
  FuncNetwork net;
  net.in_c = 1;
  net.in_h = 4;
  net.in_w = 4;
  FuncLayer add;
  add.kind = ForwardOp::Kind::kAdd;
  add.input2_layer = 3;  // refers to a later layer
  net.layers.push_back(add);
  EXPECT_THROW(HostScheduler::compile(net), std::invalid_argument);
}

TEST(EndToEnd, AddWithOriginalInputAsSkip) {
  // Residual from the *imported input* (input2_layer = -1).
  FuncNetwork net;
  net.in_c = 2;
  net.in_h = 4;
  net.in_w = 4;
  net.layers.push_back(FuncLayer{ForwardOp::Kind::kConv, 2, 3, 1, 1, 6,
                                 random_weights(2 * 2 * 3 * 3, 221)});
  FuncLayer add;
  add.kind = ForwardOp::Kind::kAdd;
  add.input2_layer = -1;
  net.layers.push_back(add);

  const functional::Tensor input = random_input(net, 222);
  TestBench bench;
  const auto output = bench.run(net, input, /*integrity=*/false);
  ASSERT_TRUE(output.has_value());
  EXPECT_EQ(*output, reference_run(net, input));
}

TEST(MaliciousHost, WrongReadCtrNeverLeaksOnlyGarbles) {
  // The host lies about CTR_F,R: decryption garbles, confidentiality holds.
  const FuncNetwork net = small_cnn();
  const functional::Tensor input = random_input(net, 11);
  TestBench bench;
  ASSERT_TRUE(bench.establish(false));
  const ExecutionPlan plan = HostScheduler::compile(net);
  ASSERT_EQ(bench.device.set_weight(bench.user.seal(plan.weight_blob),
                                    plan.weight_base),
            DeviceStatus::kOk);
  const Bytes input_bytes(input.bytes().begin(), input.bytes().end());
  ASSERT_EQ(bench.device.set_input(bench.user.seal(input_bytes), plan.input_addr),
            DeviceStatus::kOk);
  bench.scheduler.note_input();

  // Malicious schedule: wrong read counters everywhere.
  for (std::size_t i = 0; i < plan.ops.size(); ++i) {
    const auto& op = plan.ops[i];
    ASSERT_EQ(bench.device.set_read_ctr(op.input_addr, 1 << 16, 0xbad),
              DeviceStatus::kOk);
    ASSERT_EQ(bench.device.forward(op), DeviceStatus::kOk);
  }
  ASSERT_EQ(bench.device.set_read_ctr(plan.output_addr, 1 << 16, 0xbad),
            DeviceStatus::kOk);
  crypto::SealedRecord sealed;
  ASSERT_EQ(bench.device.export_output(plan.output_addr, plan.output_bytes, sealed),
            DeviceStatus::kOk);
  const auto output = bench.user.open_output(sealed);
  ASSERT_TRUE(output.has_value());
  EXPECT_NE(*output, reference_run(net, input)) << "garbled, as expected";
  // The key property: nothing in untrusted memory ever equals the plaintext.
  const Bytes region = bench.memory.read(plan.input_addr, 1 << 12);
  EXPECT_EQ(std::search(region.begin(), region.end(), input_bytes.begin(),
                        input_bytes.begin() + 32),
            region.end());
}

TEST(MaliciousHost, ReorderedInstructionsCaughtByAttestation) {
  const FuncNetwork net = small_cnn();
  const functional::Tensor input = random_input(net, 13);
  TestBench bench;
  // Confidentiality-only: the reordered schedule still *executes* (with
  // integrity on, reading the never-written ping-pong buffer would already
  // kill the session); attestation is what catches the reorder.
  ASSERT_TRUE(bench.establish(false));
  ExecutionPlan plan = HostScheduler::compile(net);
  ASSERT_EQ(bench.device.set_weight(bench.user.seal(plan.weight_blob),
                                    plan.weight_base),
            DeviceStatus::kOk);
  const Bytes input_bytes(input.bytes().begin(), input.bytes().end());
  ASSERT_EQ(bench.device.set_input(bench.user.seal(input_bytes), plan.input_addr),
            DeviceStatus::kOk);
  bench.scheduler.note_input();

  // Malicious host swaps relu and maxpool (a plausible-looking change).
  ExecutionPlan tampered = plan;
  std::swap(tampered.ops[1], tampered.ops[2]);
  // The swapped ops still execute (GuardNN allows any sequence)...
  (void)bench.scheduler.execute(tampered);
  crypto::SealedRecord sealed;
  (void)bench.device.export_output(tampered.output_addr, tampered.output_bytes,
                                   sealed);
  const auto output = bench.user.open_output(sealed);
  ASSERT_TRUE(output.has_value());

  // ...but the attestation report cannot match the user's intended schedule.
  bench.user.expect_weights(plan.weight_blob);
  bench.user.expect_input(input_bytes);
  bench.user.expect_output(*output);
  mirror_attestation(bench.user, plan);  // the *intended* plan
  accel::SignOutputResponse report;
  ASSERT_EQ(bench.device.sign_output(report), DeviceStatus::kOk);
  EXPECT_FALSE(bench.user.verify_attestation(report));
}

TEST(MaliciousHost, TamperedDramDetectedWithIntegrity) {
  const FuncNetwork net = small_cnn();
  const functional::Tensor input = random_input(net, 17);
  TestBench bench;
  ASSERT_TRUE(bench.establish(true));
  const ExecutionPlan plan = HostScheduler::compile(net);
  ASSERT_EQ(bench.device.set_weight(bench.user.seal(plan.weight_blob),
                                    plan.weight_base),
            DeviceStatus::kOk);
  const Bytes input_bytes(input.bytes().begin(), input.bytes().end());
  ASSERT_EQ(bench.device.set_input(bench.user.seal(input_bytes), plan.input_addr),
            DeviceStatus::kOk);
  bench.scheduler.note_input();

  // Flip one ciphertext bit in the weight region.
  bench.memory.tamper(plan.weight_addrs[0] + 17, 0x80);
  const DeviceStatus status = bench.scheduler.execute(plan);
  EXPECT_EQ(status, DeviceStatus::kIntegrityFailure);
  // The session is dead: even untampered exports now fail.
  crypto::SealedRecord sealed;
  EXPECT_EQ(bench.device.export_output(plan.output_addr, plan.output_bytes, sealed),
            DeviceStatus::kIntegrityFailure);
}

TEST(MaliciousHost, TamperedDramUndetectedWithoutIntegrityButStillGarbled) {
  // GuardNN_C (confidentiality only): tampering is not *detected*, but the
  // result is garbage and plaintext never appears — the paper's argument for
  // why confidentiality-only is still safe for privacy.
  const FuncNetwork net = small_cnn();
  const functional::Tensor input = random_input(net, 19);
  TestBench bench;
  ASSERT_TRUE(bench.establish(false));
  const ExecutionPlan plan = HostScheduler::compile(net);
  ASSERT_EQ(bench.device.set_weight(bench.user.seal(plan.weight_blob),
                                    plan.weight_base),
            DeviceStatus::kOk);
  const Bytes input_bytes(input.bytes().begin(), input.bytes().end());
  ASSERT_EQ(bench.device.set_input(bench.user.seal(input_bytes), plan.input_addr),
            DeviceStatus::kOk);
  bench.scheduler.note_input();
  bench.memory.tamper(plan.weight_addrs[0] + 5, 0x40);
  ASSERT_EQ(bench.scheduler.execute(plan), DeviceStatus::kOk);  // undetected
  crypto::SealedRecord sealed;
  ASSERT_EQ(bench.device.export_output(plan.output_addr, plan.output_bytes, sealed),
            DeviceStatus::kOk);
  const auto output = bench.user.open_output(sealed);
  ASSERT_TRUE(output.has_value());
  EXPECT_NE(*output, reference_run(net, input));
}

TEST(MaliciousHost, FakeDeviceFailsAttestation) {
  // A host substituting its own device (not certified by the real CA) is
  // caught at the first step.
  accel::UntrustedMemory memory;
  crypto::HmacDrbg fake_ca_drbg(Bytes{0xbb});
  crypto::ManufacturerCa fake_ca(fake_ca_drbg);
  accel::GuardNnDevice fake_device("evil", fake_ca, memory, Bytes{0xee});

  crypto::HmacDrbg real_ca_drbg(Bytes{0xca});
  crypto::ManufacturerCa real_ca(real_ca_drbg);
  RemoteUser user(real_ca.public_key(), Bytes{0x01});
  EXPECT_FALSE(user.attest_device(fake_device.get_pk()));
}

TEST(SideChannel, MemoryTraceIndependentOfData) {
  // Paper Section II-A/Table I: the access pattern and timing are functions
  // of the (public) network structure only. Run the same network on two
  // different inputs and weight sets; the MPU traces must be identical.
  const FuncNetwork net_a = small_cnn(/*seed=*/21);
  const FuncNetwork net_b = small_cnn(/*seed=*/22);  // different weights
  const functional::Tensor in_a = random_input(net_a, 23);
  const functional::Tensor in_b = random_input(net_b, 24);

  auto trace_of = [](const FuncNetwork& net, const functional::Tensor& input) {
    TestBench bench;
    const auto output = bench.run(net, input, true, /*attest=*/false);
    EXPECT_TRUE(output.has_value());
    return bench.device.access_trace();
  };
  const auto trace_a = trace_of(net_a, in_a);
  const auto trace_b = trace_of(net_b, in_b);
  ASSERT_FALSE(trace_a.empty());
  EXPECT_EQ(trace_a, trace_b)
      << "memory side channel must not depend on input or weight values";
}

TEST(SideChannel, LatencyIndependentOfData) {
  const FuncNetwork net_a = small_cnn(31);
  const FuncNetwork net_b = small_cnn(32);
  const functional::Tensor in_a = random_input(net_a, 33);
  const functional::Tensor in_b = random_input(net_b, 34);
  auto latency_of = [](const FuncNetwork& net, const functional::Tensor& input) {
    TestBench bench;
    const auto output = bench.run(net, input, true, false);
    EXPECT_TRUE(output.has_value());
    return bench.device.elapsed_ms();
  };
  EXPECT_DOUBLE_EQ(latency_of(net_a, in_a), latency_of(net_b, in_b));
}

TEST(Attestation, HonestRunVerifies) {
  const FuncNetwork net = small_cnn();
  const functional::Tensor input = random_input(net, 41);
  TestBench bench;
  EXPECT_TRUE(bench.run(net, input, true, /*attest=*/true).has_value());
}

TEST(Attestation, WrongWeightsRejected) {
  const FuncNetwork net = small_cnn();
  const functional::Tensor input = random_input(net, 43);
  TestBench bench;
  ASSERT_TRUE(bench.establish(true));
  const ExecutionPlan plan = HostScheduler::compile(net);
  ASSERT_EQ(bench.device.set_weight(bench.user.seal(plan.weight_blob),
                                    plan.weight_base),
            DeviceStatus::kOk);
  const Bytes input_bytes(input.bytes().begin(), input.bytes().end());
  ASSERT_EQ(bench.device.set_input(bench.user.seal(input_bytes), plan.input_addr),
            DeviceStatus::kOk);
  bench.scheduler.note_input();
  ASSERT_EQ(bench.scheduler.execute(plan), DeviceStatus::kOk);
  crypto::SealedRecord sealed;
  ASSERT_EQ(bench.device.export_output(plan.output_addr, plan.output_bytes, sealed),
            DeviceStatus::kOk);
  const auto output = bench.user.open_output(sealed);
  ASSERT_TRUE(output.has_value());

  Bytes wrong_blob = plan.weight_blob;
  wrong_blob[0] ^= 1;
  bench.user.expect_weights(wrong_blob);  // user expected different weights
  bench.user.expect_input(input_bytes);
  bench.user.expect_output(*output);
  mirror_attestation(bench.user, plan);
  accel::SignOutputResponse report;
  ASSERT_EQ(bench.device.sign_output(report), DeviceStatus::kOk);
  EXPECT_FALSE(bench.user.verify_attestation(report));
}

TEST(Attestation, ForgedSignatureRejected) {
  const FuncNetwork net = small_cnn();
  const functional::Tensor input = random_input(net, 47);
  TestBench bench;
  ASSERT_TRUE(bench.establish(true));
  const ExecutionPlan plan = HostScheduler::compile(net);
  ASSERT_EQ(bench.device.set_weight(bench.user.seal(plan.weight_blob),
                                    plan.weight_base),
            DeviceStatus::kOk);
  const Bytes input_bytes(input.bytes().begin(), input.bytes().end());
  ASSERT_EQ(bench.device.set_input(bench.user.seal(input_bytes), plan.input_addr),
            DeviceStatus::kOk);
  bench.scheduler.note_input();
  ASSERT_EQ(bench.scheduler.execute(plan), DeviceStatus::kOk);
  crypto::SealedRecord sealed;
  ASSERT_EQ(bench.device.export_output(plan.output_addr, plan.output_bytes, sealed),
            DeviceStatus::kOk);
  const auto output = bench.user.open_output(sealed);
  ASSERT_TRUE(output.has_value());

  bench.user.expect_weights(plan.weight_blob);
  bench.user.expect_input(input_bytes);
  bench.user.expect_output(*output);
  mirror_attestation(bench.user, plan);
  accel::SignOutputResponse report;
  ASSERT_EQ(bench.device.sign_output(report), DeviceStatus::kOk);
  report.signature.r = crypto::add_mod(report.signature.r, crypto::U256::one(),
                                       crypto::p256().n);
  EXPECT_FALSE(bench.user.verify_attestation(report));
}

}  // namespace
}  // namespace guardnn::host
