#include <gtest/gtest.h>

#include "common/rng.h"
#include "crypto/aes128.h"
#include "crypto/mem_mac.h"

namespace guardnn::crypto {
namespace {

AesKey key_from_hex(const std::string& hex) {
  const Bytes raw = from_hex(hex);
  AesKey key{};
  std::copy(raw.begin(), raw.end(), key.begin());
  return key;
}

AesBlock block_from_hex(const std::string& hex) {
  const Bytes raw = from_hex(hex);
  AesBlock blk{};
  std::copy(raw.begin(), raw.end(), blk.begin());
  return blk;
}

// FIPS-197 Appendix C.1 known-answer vector.
TEST(Aes128, Fips197Vector) {
  const Aes128 aes(key_from_hex("000102030405060708090a0b0c0d0e0f"));
  const AesBlock pt = block_from_hex("00112233445566778899aabbccddeeff");
  const AesBlock ct = aes.encrypt(pt);
  EXPECT_EQ(to_hex(BytesView(ct.data(), ct.size())),
            "69c4e0d86a7b0430d8cdb78070b4c55a");
  EXPECT_EQ(aes.decrypt(ct), pt);
}

// NIST SP 800-38A F.1.1 ECB-AES128 vector.
TEST(Aes128, Sp80038aVector) {
  const Aes128 aes(key_from_hex("2b7e151628aed2a6abf7158809cf4f3c"));
  const AesBlock pt = block_from_hex("6bc1bee22e409f96e93d7e117393172a");
  const AesBlock ct = aes.encrypt(pt);
  EXPECT_EQ(to_hex(BytesView(ct.data(), ct.size())),
            "3ad77bb40d7a3660a89ecaf32466ef97");
}

TEST(Aes128, EncryptDecryptRoundTripRandom) {
  Xoshiro256 rng(123);
  for (int trial = 0; trial < 50; ++trial) {
    AesKey key{};
    rng.fill(MutBytesView(key.data(), key.size()));
    AesBlock pt{};
    rng.fill(MutBytesView(pt.data(), pt.size()));
    const Aes128 aes(key);
    EXPECT_EQ(aes.decrypt(aes.encrypt(pt)), pt);
  }
}

TEST(Aes128, DifferentKeysDiverge) {
  const Aes128 a(key_from_hex("00000000000000000000000000000000"));
  const Aes128 b(key_from_hex("00000000000000000000000000000001"));
  AesBlock pt{};
  EXPECT_NE(a.encrypt(pt), b.encrypt(pt));
}

// NIST SP 800-38A F.5.1/F.5.2 CTR-AES128 known-answer vector: 4 blocks,
// initial counter f0f1...feff (increments stay within the low 64 bits, so the
// standard's 128-bit counter and our low-64 increment agree).
TEST(AesCtr, Sp80038aF51Vector) {
  const Aes128 aes(key_from_hex("2b7e151628aed2a6abf7158809cf4f3c"));
  const AesBlock counter0 =
      block_from_hex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff");
  Bytes data = from_hex(
      "6bc1bee22e409f96e93d7e117393172a"
      "ae2d8a571e03ac9c9eb76fac45af8e51"
      "30c81c46a35ce411e5fbc1191a0a52ef"
      "f69f2445df4f9b17ad2b417be66c3710");
  const Bytes plaintext = data;
  ctr_xcrypt(aes, counter0, data);
  EXPECT_EQ(to_hex(data),
            "874d6191b620e3261bef6864990db6ce"
            "9806f66b7970fdff8617187bb9fffdff"
            "5ae4df3edbd5d35e5b4f09020db03eab"
            "1e031dda2fbe03d1792170a0f3009cee");
  // F.5.2: decryption is the same keystream.
  ctr_xcrypt(aes, counter0, data);
  EXPECT_EQ(data, plaintext);
}

TEST(AesCtr, EncryptIsDecrypt) {
  const Aes128 aes(key_from_hex("2b7e151628aed2a6abf7158809cf4f3c"));
  Bytes data(100);
  Xoshiro256 rng(5);
  rng.fill(data);
  const Bytes original = data;
  const AesBlock nonce = make_counter_block(0x1000, 7);
  ctr_xcrypt(aes, nonce, data);
  EXPECT_NE(data, original);
  ctr_xcrypt(aes, nonce, data);
  EXPECT_EQ(data, original);
}

TEST(AesCtr, HandlesNonBlockMultipleLengths) {
  const Aes128 aes(key_from_hex("000102030405060708090a0b0c0d0e0f"));
  for (std::size_t len : {1u, 15u, 16u, 17u, 31u, 33u}) {
    Bytes data(len, 0xab);
    const Bytes original = data;
    const AesBlock nonce = make_counter_block(1, 2);
    ctr_xcrypt(aes, nonce, data);
    ctr_xcrypt(aes, nonce, data);
    EXPECT_EQ(data, original) << "len=" << len;
  }
}

TEST(AesCtr, CounterBlockLayout) {
  // VN in the high half, block address in the low half, both big-endian.
  const AesBlock ctr = make_counter_block(0x0102030405060708ULL, 0x1112131415161718ULL);
  EXPECT_EQ(load_be64(ctr.data()), 0x1112131415161718ULL);
  EXPECT_EQ(load_be64(ctr.data() + 8), 0x0102030405060708ULL);
}

TEST(MemoryXcrypt, RoundTripAndVnSensitivity) {
  const Aes128 aes(key_from_hex("2b7e151628aed2a6abf7158809cf4f3c"));
  Bytes data(64);
  Xoshiro256 rng(17);
  rng.fill(data);
  const Bytes original = data;

  memory_xcrypt(aes, /*base_block_address=*/16, /*version_number=*/3, data);
  EXPECT_NE(data, original);
  Bytes wrong_vn = data;
  memory_xcrypt(aes, 16, 4, wrong_vn);
  EXPECT_NE(wrong_vn, original);  // Wrong VN yields garbage, not plaintext.
  memory_xcrypt(aes, 16, 3, data);
  EXPECT_EQ(data, original);
}

TEST(MemoryXcrypt, PerBlockCountersDiffer) {
  // Two identical 16-byte blocks at consecutive addresses must produce
  // different ciphertexts (the address is part of the counter).
  const Aes128 aes(key_from_hex("2b7e151628aed2a6abf7158809cf4f3c"));
  Bytes data(32, 0x5a);
  memory_xcrypt(aes, 0, 1, data);
  EXPECT_NE(Bytes(data.begin(), data.begin() + 16),
            Bytes(data.begin() + 16, data.end()));
}

TEST(MemoryXcrypt, RejectsPartialBlocks) {
  const Aes128 aes(key_from_hex("2b7e151628aed2a6abf7158809cf4f3c"));
  Bytes data(20);
  EXPECT_THROW(memory_xcrypt(aes, 0, 0, data), std::invalid_argument);
}


TEST(MemoryXcrypt, CiphertextPassesMonobit) {
  // Ciphertext of an all-zero region must still look random (keystream
  // quality check for the memory encryption path).
  const Aes128 aes(key_from_hex("2b7e151628aed2a6abf7158809cf4f3c"));
  Bytes data(1 << 15, 0x00);
  memory_xcrypt(aes, 0, 1, data);
  std::size_t ones = 0;
  for (u8 b : data) ones += static_cast<std::size_t>(std::popcount(b));
  const double frac = static_cast<double>(ones) / (static_cast<double>(data.size()) * 8);
  EXPECT_NEAR(frac, 0.5, 0.01);
}

// RFC 4493 AES-CMAC test vectors (key 2b7e...).
TEST(Cmac, Rfc4493Vectors) {
  const Aes128 aes(key_from_hex("2b7e151628aed2a6abf7158809cf4f3c"));

  const AesBlock empty_tag = cmac_aes128(aes, {});
  EXPECT_EQ(to_hex(BytesView(empty_tag.data(), empty_tag.size())),
            "bb1d6929e95937287fa37d129b756746");

  const Bytes m16 = from_hex("6bc1bee22e409f96e93d7e117393172a");
  const AesBlock tag16 = cmac_aes128(aes, m16);
  EXPECT_EQ(to_hex(BytesView(tag16.data(), tag16.size())),
            "070a16b46b4d4144f79bdd9dd04a287c");

  const Bytes m40 = from_hex(
      "6bc1bee22e409f96e93d7e117393172aae2d8a571e03ac9c9eb76fac45af8e5130c81c46a35ce411");
  const AesBlock tag40 = cmac_aes128(aes, m40);
  EXPECT_EQ(to_hex(BytesView(tag40.data(), tag40.size())),
            "dfa66747de9ae63030ca32611497c827");
}

TEST(MemoryMac, BindsAddressVersionAndData) {
  const Aes128 aes(key_from_hex("000102030405060708090a0b0c0d0e0f"));
  Bytes data(64, 0x11);
  const u64 base = memory_mac(aes, 0x1000, 5, data);
  EXPECT_NE(base, memory_mac(aes, 0x1040, 5, data));  // address moved
  EXPECT_NE(base, memory_mac(aes, 0x1000, 6, data));  // version bumped (replay)
  Bytes tampered = data;
  tampered[10] ^= 0x01;
  EXPECT_NE(base, memory_mac(aes, 0x1000, 5, tampered));  // data changed
  EXPECT_EQ(base, memory_mac(aes, 0x1000, 5, data));      // deterministic
}

}  // namespace
}  // namespace guardnn::crypto
