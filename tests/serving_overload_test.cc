// Fleet-scale serving control-plane tests: the sharded routing table's
// submit hot path under wide concurrency (64 tenants x 8 workers — the
// ThreadSanitizer acceptance workload for "no global lock on submit"),
// two-level admission control (per-tenant quota vs fleet byte budget),
// open-loop overload semantics (burst past the quota, retry the same sealed
// record, FIFO of the admitted prefix, clean drain), and teardown under
// load (every queued promise resolves; admission counters return to zero).
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "serving/inference_server.h"

namespace guardnn::serving {
namespace {

using accel::DeviceStatus;
using accel::ForwardOp;
using host::FuncLayer;
using host::FuncNetwork;
using host::RemoteUser;

Bytes random_weights(std::size_t n, u64 seed) {
  Xoshiro256 rng(seed);
  Bytes out(n);
  for (auto& b : out)
    b = static_cast<u8>(static_cast<i8>(static_cast<int>(rng.next_below(256)) - 128));
  return out;
}

FuncNetwork small_cnn(u64 seed) {
  FuncNetwork net;
  net.in_c = 3;
  net.in_h = 8;
  net.in_w = 8;
  net.layers.push_back(FuncLayer{ForwardOp::Kind::kConv, 4, 3, 1, 1, 4,
                                 random_weights(4 * 3 * 3 * 3, seed)});
  net.layers.push_back(FuncLayer{ForwardOp::Kind::kRelu, 0, 0, 1, 0, 0, {}});
  net.layers.push_back(FuncLayer{ForwardOp::Kind::kMaxPool, 0, 2, 2, 0, 0, {}});
  net.layers.push_back(FuncLayer{ForwardOp::Kind::kFc, 10, 0, 1, 0, 5,
                                 random_weights(10 * 4 * 4 * 4, seed + 1)});
  return net;
}

functional::Tensor random_input(const FuncNetwork& net, u64 seed) {
  functional::Tensor input(net.in_c, net.in_h, net.in_w, net.bits);
  Xoshiro256 rng(seed);
  for (auto& v : input.data())
    v = static_cast<i8>(static_cast<int>(rng.next_below(256)) - 128);
  return input;
}

Bytes tensor_bytes(const functional::Tensor& t) {
  return Bytes(t.bytes().begin(), t.bytes().end());
}

struct TenantClient {
  std::unique_ptr<RemoteUser> user;
  TenantId tenant = 0;
  std::size_t device_index = 0;
  ModelHandle model;

  bool connect(InferenceServer& server, const crypto::AffinePoint& ca_public,
               u64 seed) {
    user = std::make_unique<RemoteUser>(
        ca_public, Bytes{static_cast<u8>(seed), static_cast<u8>(seed >> 8), 0x55});
    const crypto::AffinePoint share = user->begin_session();
    const auto connected = server.connect(share, /*integrity=*/true);
    if (connected.tenant == 0) return false;
    tenant = connected.tenant;
    device_index = connected.device_index;
    if (!user->attest_device(server.get_pk(device_index))) return false;
    return user->complete_session(connected.response);
  }

  bool load(InferenceServer& server, const FuncNetwork& net) {
    model = server.register_model(net);
    return model.valid() &&
           server.load_model(tenant, model, user->seal(model.plan->weight_blob)) ==
               DeviceStatus::kOk;
  }
};

struct Env {
  crypto::HmacDrbg ca_drbg{Bytes{0x95}};
  crypto::ManufacturerCa ca{ca_drbg};

  InferenceServer make(ServerConfig config) {
    return InferenceServer(ca, config, Bytes{0x96, 0x97});
  }
};

TEST(ShardedRouting, ShardCountDerivesFromWorkersAndRoundsToPowerOfTwo) {
  Env env;
  ServerConfig config;
  config.num_devices = 1;
  config.num_workers = 8;
  // Default: max(16, 4 x workers) stripes, so stripes outnumber workers.
  EXPECT_EQ(env.make(config).shard_count(), 32u);
  config.num_workers = 1;
  EXPECT_EQ(env.make(config).shard_count(), 16u);
  config.num_shards = 5;  // explicit counts round up to a power of two
  EXPECT_EQ(env.make(config).shard_count(), 8u);
}

TEST(ShardedRouting, SixtyFourTenantsEightWorkersConcurrentSubmits) {
  // The acceptance workload for "no global mutex on the submit hot path":
  // 64 tenants (filling 4 devices' 16-slot session tables) submit from 64
  // client threads against 8 workers. Run under ThreadSanitizer in CI, this
  // exercises every shard transition concurrently: striped enqueue, the
  // semaphore wakeups, cross-shard work stealing, and the plan cache (all
  // tenants serve the same architecture).
  constexpr std::size_t kTenants = 64;
  constexpr std::size_t kRequests = 4;
  Env env;
  ServerConfig config;
  config.num_devices = 4;
  config.num_workers = 8;
  config.max_pending_per_tenant = 64;
  InferenceServer server = env.make(config);
  ASSERT_GE(server.shard_count(), 32u);

  const FuncNetwork net = small_cnn(4000);

  // Connect and load serially: 64 tenants exactly fill the 4 devices'
  // 16-slot session tables, and a concurrent connect storm would trip idle
  // eviction against tenants that merely haven't submitted yet. The lock
  // under test is the *submit* path, exercised below from 64 threads.
  std::vector<TenantClient> clients(kTenants);
  for (std::size_t i = 0; i < kTenants; ++i) {
    ASSERT_TRUE(clients[i].connect(server, env.ca.public_key(), 4100 + i))
        << "tenant " << i;
    ASSERT_TRUE(clients[i].load(server, net)) << "tenant " << i;
  }

  std::mutex failures_mu;
  std::vector<std::string> failures;
  auto fail = [&](std::string message) {
    std::lock_guard<std::mutex> lock(failures_mu);
    failures.push_back(std::move(message));
  };

  auto tenant_main = [&](std::size_t index) {
    TenantClient& client = clients[index];
    std::vector<functional::Tensor> inputs;
    std::vector<std::future<InferenceResult>> futures;
    for (std::size_t r = 0; r < kRequests; ++r) {
      inputs.push_back(random_input(net, 8000 + 16 * index + r));
      futures.push_back(server.submit_async(
          client.tenant, client.user->seal(tensor_bytes(inputs.back()))));
    }
    for (std::size_t r = 0; r < kRequests; ++r) {
      InferenceResult result = futures[r].get();
      if (result.outcome != RequestOutcome::kOk)
        return fail("tenant " + std::to_string(index) + " request " +
                    std::to_string(r) + ": " + outcome_name(result.outcome));
      const auto output = client.user->open_output(result.sealed_output);
      if (!output)
        return fail("tenant " + std::to_string(index) + " request " +
                    std::to_string(r) + ": output did not open");
      if (*output != host::reference_run(net, inputs[r]))
        return fail("tenant " + std::to_string(index) + " request " +
                    std::to_string(r) + ": output mismatch");
    }
  };

  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < kTenants; ++i) threads.emplace_back(tenant_main, i);
  for (auto& thread : threads) thread.join();

  for (const std::string& message : failures) ADD_FAILURE() << message;
  ASSERT_TRUE(failures.empty());
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.requests, kTenants * kRequests);
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_EQ(server.pending_requests(), 0u);
  EXPECT_EQ(server.pending_bytes(), 0u);
}

TEST(AdmissionControl, HotTenantHitsOwnQuotaQuietTenantUnaffected) {
  // Regression: admission used to be one fleet-wide pending-request cap, so
  // a single hot tenant filling the queue starved every other tenant into
  // kQueueFull. The quota is per-tenant now: the hot tenant is rejected
  // against its own budget and a quiet tenant's single request sails through.
  Env env;
  ServerConfig config;
  config.num_devices = 1;
  config.num_workers = 1;
  config.max_pending_per_tenant = 4;
  config.emulate_device_latency = true;
  config.device_latency_scale = 50.0;  // ~6 ms emulated service per request
  InferenceServer server = env.make(config);

  const FuncNetwork net = small_cnn(4200);
  TenantClient hot, quiet;
  ASSERT_TRUE(hot.connect(server, env.ca.public_key(), 4201));
  ASSERT_TRUE(quiet.connect(server, env.ca.public_key(), 4202));
  ASSERT_TRUE(hot.load(server, net));
  ASSERT_TRUE(quiet.load(server, net));

  // The hot tenant bursts far past its quota with no retry discipline. (Its
  // own channel desyncs after the first drop — sealed records after a
  // rejected one arrive with a sequence gap and answer kDeviceError — which
  // is the tenant's own problem, not its neighbors'.)
  std::vector<std::future<InferenceResult>> burst;
  for (std::size_t r = 0; r < 32; ++r)
    burst.push_back(server.submit_async(
        hot.tenant, hot.user->seal(tensor_bytes(random_input(net, 4300 + r)))));

  // The quiet tenant submits one request mid-burst: it must be admitted
  // (never kQueueFull/kBackpressure) and complete correctly.
  const functional::Tensor quiet_input = random_input(net, 4400);
  InferenceResult quiet_result =
      server.submit(quiet.tenant, quiet.user->seal(tensor_bytes(quiet_input)));
  ASSERT_EQ(quiet_result.outcome, RequestOutcome::kOk)
      << outcome_name(quiet_result.outcome)
      << " — hot tenant starved the quiet tenant out of admission";
  const auto quiet_output = quiet.user->open_output(quiet_result.sealed_output);
  ASSERT_TRUE(quiet_output.has_value());
  EXPECT_EQ(*quiet_output, host::reference_run(net, quiet_input));

  u64 hot_rejected = 0;
  for (auto& future : burst) {
    const InferenceResult result = future.get();
    if (result.outcome == RequestOutcome::kQueueFull) ++hot_rejected;
    EXPECT_NE(result.outcome, RequestOutcome::kShutdown);
  }
  EXPECT_GE(hot_rejected, 1u) << "burst of 32 against quota 4 never rejected";
  EXPECT_EQ(server.stats().rejected, hot_rejected)
      << "stats_.rejected must count exactly the kQueueFull answers";
  EXPECT_EQ(server.pending_requests(), 0u);
  EXPECT_EQ(server.pending_bytes(), 0u);
}

TEST(AdmissionControl, BackpressureIsSoftDistinctAndRetryable) {
  // The fleet byte budget answers kBackpressure — a *different* signal from
  // the per-tenant kQueueFull — and it is soft: retrying the *same* sealed
  // record later succeeds with the channel intact (re-sealing would gap the
  // sequence numbers).
  Env env;
  ServerConfig config;
  config.num_devices = 1;
  config.num_workers = 1;
  config.max_pending_per_tenant = 64;
  config.max_pending_bytes = 1;  // any queued request exhausts the budget
  config.emulate_device_latency = true;
  config.device_latency_scale = 2000.0;  // ~0.24 s emulated service
  InferenceServer server = env.make(config);
  EXPECT_EQ(server.admission_byte_budget(), 1u);

  const FuncNetwork net = small_cnn(4500);
  TenantClient pinner, probe;
  ASSERT_TRUE(pinner.connect(server, env.ca.public_key(), 4501));
  ASSERT_TRUE(probe.connect(server, env.ca.public_key(), 4502));
  ASSERT_TRUE(pinner.load(server, net));
  ASSERT_TRUE(probe.load(server, net));

  // Pin the single worker inside a long emulated batch, so the probe's
  // queue ahead is deterministic.
  std::future<InferenceResult> pin = server.submit_async(
      pinner.tenant, pinner.user->seal(tensor_bytes(random_input(net, 4510))));
  while (server.pending_requests() != 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));

  const functional::Tensor in1 = random_input(net, 4511);
  const functional::Tensor in2 = random_input(net, 4512);
  const crypto::SealedRecord rec1 = probe.user->seal(tensor_bytes(in1));
  const crypto::SealedRecord rec2 = probe.user->seal(tensor_bytes(in2));

  // First request: the fleet queue is empty of bytes, so the progress
  // guarantee admits it even though it alone overflows the 1-byte budget.
  std::future<InferenceResult> first = server.submit_async(probe.tenant, rec1);
  // Second request: rec1 is still queued (the worker is pinned), so the
  // budget is exhausted — soft backpressure, not a quota reject.
  InferenceResult second = server.submit(probe.tenant, rec2);
  ASSERT_EQ(second.outcome, RequestOutcome::kBackpressure)
      << outcome_name(second.outcome);
  const ServerStats mid = server.stats();
  EXPECT_GE(mid.backpressured, 1u);
  EXPECT_EQ(mid.rejected, 0u)
      << "fleet backpressure must not be conflated with per-tenant kQueueFull";

  // Retry the SAME record until the queue drains; the channel must still be
  // in sequence and the result correct.
  InferenceResult retried;
  for (int attempt = 0; attempt < 2000; ++attempt) {
    retried = server.submit(probe.tenant, rec2);
    if (retried.outcome != RequestOutcome::kBackpressure) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(retried.outcome, RequestOutcome::kOk) << outcome_name(retried.outcome);

  // The user-side channel is sequence-strict on receive too: outputs open
  // in FIFO order, rec1's before rec2's.
  const InferenceResult first_result = first.get();
  ASSERT_EQ(first_result.outcome, RequestOutcome::kOk);
  const auto out1 = probe.user->open_output(first_result.sealed_output);
  ASSERT_TRUE(out1.has_value());
  EXPECT_EQ(*out1, host::reference_run(net, in1));
  const auto out2 = probe.user->open_output(retried.sealed_output);
  ASSERT_TRUE(out2.has_value());
  EXPECT_EQ(*out2, host::reference_run(net, in2));
  EXPECT_EQ(pin.get().outcome, RequestOutcome::kOk);
  EXPECT_EQ(server.pending_requests(), 0u);
  EXPECT_EQ(server.pending_bytes(), 0u);
}

TEST(OverloadSemantics, BurstPastQuotaPreservesFifoAndDrainsClean) {
  // Open-loop burst far past the per-tenant quota, with the documented
  // client discipline: a rejected submission is retried with the *same*
  // sealed record. Every request must eventually complete, in FIFO order
  // (each output must match the reference for *its* input — and the secure
  // channel's strict sequence numbers would refuse any reorder outright),
  // stats_.rejected must count exactly the observed rejections, and the
  // admission counters must drain to zero.
  constexpr std::size_t kBurst = 48;
  Env env;
  ServerConfig config;
  config.num_devices = 1;
  config.num_workers = 2;
  config.max_pending_per_tenant = 8;
  config.emulate_device_latency = true;
  config.device_latency_scale = 20.0;  // ~2.4 ms emulated service per request
  InferenceServer server = env.make(config);

  const FuncNetwork net = small_cnn(4600);
  TenantClient client;
  ASSERT_TRUE(client.connect(server, env.ca.public_key(), 4601));
  ASSERT_TRUE(client.load(server, net));

  std::vector<functional::Tensor> inputs;
  std::vector<std::future<InferenceResult>> futures(kBurst);
  std::vector<InferenceResult> results(kBurst);
  std::vector<bool> already_done(kBurst, false);
  u64 observed_rejects = 0;
  for (std::size_t r = 0; r < kBurst; ++r) {
    inputs.push_back(random_input(net, 4700 + r));
    const crypto::SealedRecord record = client.user->seal(tensor_bytes(inputs[r]));
    for (;;) {
      std::future<InferenceResult> future =
          server.submit_async(client.tenant, record);
      // Rejections resolve immediately; an admitted request's future stays
      // pending until a worker serves it (the emulated latency guarantees
      // that window).
      if (future.wait_for(std::chrono::seconds(0)) ==
          std::future_status::ready) {
        InferenceResult result = future.get();
        if (result.outcome == RequestOutcome::kQueueFull) {
          ++observed_rejects;
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
          continue;  // retry the same record — never re-seal
        }
        results[r] = std::move(result);
        already_done[r] = true;
        break;
      }
      futures[r] = std::move(future);
      break;
    }
  }

  for (std::size_t r = 0; r < kBurst; ++r) {
    if (!already_done[r]) results[r] = futures[r].get();
    ASSERT_EQ(results[r].outcome, RequestOutcome::kOk)
        << "request " << r << ": " << outcome_name(results[r].outcome);
    const auto output = client.user->open_output(results[r].sealed_output);
    ASSERT_TRUE(output.has_value()) << "request " << r;
    EXPECT_EQ(*output, host::reference_run(net, inputs[r]))
        << "request " << r << ": admitted prefix broke per-tenant FIFO";
  }

  EXPECT_GE(observed_rejects, 1u)
      << "a 48-burst against quota 8 at ~2.4 ms/request never overflowed";
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.rejected, observed_rejects);
  EXPECT_EQ(stats.requests, kBurst);
  EXPECT_EQ(server.pending_requests(), 0u);
  EXPECT_EQ(server.pending_bytes(), 0u);
}

TEST(TeardownUnderLoad, DisconnectResolvesEveryQueuedPromise) {
  // Regression: disconnect() used to leave requests queued behind an
  // in-flight batch to fail device-side (kDeviceError via kNoSession) and
  // could leave the admission counters charged for work that would never
  // run. Teardown now resolves every still-queued request with kNoTenant
  // and returns its admission charge.
  Env env;
  ServerConfig config;
  config.num_devices = 1;
  config.num_workers = 1;
  config.max_pending_per_tenant = 64;
  config.emulate_device_latency = true;
  config.device_latency_scale = 200.0;  // ~24 ms emulated service per request
  InferenceServer server = env.make(config);

  const FuncNetwork net = small_cnn(4800);
  TenantClient client;
  ASSERT_TRUE(client.connect(server, env.ca.public_key(), 4801));
  ASSERT_TRUE(client.load(server, net));

  constexpr std::size_t kInFlight = 24;
  std::vector<std::future<InferenceResult>> futures;
  for (std::size_t r = 0; r < kInFlight; ++r)
    futures.push_back(server.submit_async(
        client.tenant, client.user->seal(tensor_bytes(random_input(net, 4810 + r)))));

  // Let the worker own the first batch (8 requests, ~0.2 s emulated), then
  // tear the tenant down with at least 16 requests still queued.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_EQ(server.disconnect(client.tenant), DeviceStatus::kOk);

  std::size_t ok = 0, orphaned = 0;
  for (auto& future : futures) {
    const InferenceResult result = future.get();
    switch (result.outcome) {
      case RequestOutcome::kOk:
        ++ok;
        break;
      case RequestOutcome::kNoTenant:
        ++orphaned;
        break;
      case RequestOutcome::kDeviceError:
        // Narrow window: the worker popped a batch right before the session
        // closed; the device answers kNoSession for it. Acceptable — the
        // promise still resolves — but any other device error is a bug.
        EXPECT_EQ(result.device_status, DeviceStatus::kNoSession);
        break;
      default:
        ADD_FAILURE() << "unexpected outcome " << outcome_name(result.outcome);
    }
  }
  EXPECT_GE(orphaned, 1u)
      << "disconnect with a deep queue must orphan the tail as kNoTenant";
  // Admission counters must not go stale on teardown: both return to zero
  // even though most requests never reached a worker.
  EXPECT_EQ(server.pending_requests(), 0u);
  EXPECT_EQ(server.pending_bytes(), 0u);
  // And the device slot is genuinely free again.
  TenantClient next;
  ASSERT_TRUE(next.connect(server, env.ca.public_key(), 4802));
  ASSERT_TRUE(next.load(server, net));
  EXPECT_EQ(server.submit(next.tenant,
                          next.user->seal(tensor_bytes(random_input(net, 4820))))
                .outcome,
            RequestOutcome::kOk);
}

TEST(TeardownUnderLoad, StaggeredDisconnectsUnderConcurrentSubmissions) {
  // TSan stress: 8 tenants keep submitting while the control plane
  // disconnects them one by one. Every future must resolve (no promise may
  // be dropped — a dropped promise throws broken_promise at .get()), and
  // the admission counters must be zero once the dust settles.
  constexpr std::size_t kTenants = 8;
  constexpr std::size_t kPerTenant = 24;
  Env env;
  ServerConfig config;
  config.num_devices = 2;
  config.num_workers = 4;
  config.max_pending_per_tenant = 64;
  config.emulate_device_latency = true;
  config.device_latency_scale = 20.0;  // ~2.4 ms emulated service per request
  InferenceServer server = env.make(config);

  const FuncNetwork net = small_cnn(4900);
  std::array<TenantClient, kTenants> clients;
  for (std::size_t i = 0; i < kTenants; ++i) {
    ASSERT_TRUE(clients[i].connect(server, env.ca.public_key(), 4910 + i));
    ASSERT_TRUE(clients[i].load(server, net));
  }

  std::atomic<std::size_t> resolved{0};
  std::atomic<std::size_t> unexpected{0};
  auto tenant_main = [&](std::size_t index) {
    std::vector<std::future<InferenceResult>> futures;
    for (std::size_t r = 0; r < kPerTenant; ++r) {
      futures.push_back(server.submit_async(
          clients[index].tenant,
          clients[index].user->seal(tensor_bytes(random_input(net, 5000 + r)))));
      if (r % 4 == 3)
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    for (auto& future : futures) {
      const InferenceResult result = future.get();
      ++resolved;
      switch (result.outcome) {
        case RequestOutcome::kOk:
        case RequestOutcome::kNoTenant:
        case RequestOutcome::kQueueFull:
          break;
        case RequestOutcome::kDeviceError:
          if (result.device_status != DeviceStatus::kNoSession) ++unexpected;
          break;
        default:
          ++unexpected;
      }
    }
  };

  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < kTenants; ++i) threads.emplace_back(tenant_main, i);
  // Stagger disconnects through the middle of the submission storm.
  for (std::size_t i = 0; i < kTenants; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    server.disconnect(clients[i].tenant);  // status intentionally ignored:
    // a tenant idle-evicted or already drained answers kNoSession here.
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(resolved.load(), kTenants * kPerTenant)
      << "every submitted request must resolve its promise";
  EXPECT_EQ(unexpected.load(), 0u);
  EXPECT_EQ(server.pending_requests(), 0u);
  EXPECT_EQ(server.pending_bytes(), 0u);
}

}  // namespace
}  // namespace guardnn::serving
