#include <gtest/gtest.h>

#include "crypto/cert.h"
#include "crypto/ecdh.h"
#include "crypto/ecdsa.h"
#include "crypto/p256.h"

namespace guardnn::crypto {
namespace {

AffinePoint generator() {
  AffinePoint g;
  g.x = p256().gx;
  g.y = p256().gy;
  return g;
}

HmacDrbg test_drbg(u8 tag) {
  Bytes seed = {0xde, 0xad, tag};
  return HmacDrbg(seed);
}

TEST(P256, GeneratorOnCurve) { EXPECT_TRUE(on_curve(generator())); }

TEST(P256, OffCurvePointRejected) {
  AffinePoint bad = generator();
  bad.y = add_mod(bad.y, U256::one(), p256().p);
  EXPECT_FALSE(on_curve(bad));
}

TEST(P256, InfinityIsIdentity) {
  const AffinePoint g = generator();
  EXPECT_EQ(ec_add(g, AffinePoint::at_infinity()), g);
  EXPECT_EQ(ec_add(AffinePoint::at_infinity(), g), g);
}

TEST(P256, InverseSumsToInfinity) {
  AffinePoint g = generator();
  AffinePoint neg = g;
  neg.y = sub_mod(U256::zero(), g.y, p256().p);
  EXPECT_TRUE(on_curve(neg));
  EXPECT_TRUE(ec_add(g, neg).infinity);
}

TEST(P256, DoubleMatchesAdd) {
  const AffinePoint g = generator();
  EXPECT_EQ(ec_add(g, g), ec_scalar_mult(U256::from_u64(2), g));
}

TEST(P256, ScalarMultResultsOnCurve) {
  for (u64 k : {1ULL, 2ULL, 3ULL, 17ULL, 123456789ULL}) {
    const AffinePoint pt = ec_scalar_base_mult(U256::from_u64(k));
    EXPECT_TRUE(on_curve(pt)) << "k=" << k;
    EXPECT_FALSE(pt.infinity);
  }
}

TEST(P256, ScalarDistributes) {
  // (a+b)G == aG + bG
  const U256 a = U256::from_u64(12345);
  const U256 b = U256::from_u64(67890);
  U256 ab;
  add(ab, a, b);
  EXPECT_EQ(ec_scalar_base_mult(ab),
            ec_add(ec_scalar_base_mult(a), ec_scalar_base_mult(b)));
}

TEST(P256, ScalarComposes) {
  // a*(b*G) == (a*b mod n)*G
  const U256 a = U256::from_u64(1001);
  const U256 b = U256::from_u64(2002);
  const AffinePoint bg = ec_scalar_base_mult(b);
  const U256 ab = mul_mod(a, b, p256().n);
  EXPECT_EQ(ec_scalar_mult(a, bg), ec_scalar_base_mult(ab));
}

TEST(P256, OrderTimesGeneratorIsInfinity) {
  EXPECT_TRUE(ec_scalar_base_mult(p256().n).infinity);
}

TEST(P256, EncodeDecodeRoundTrip) {
  const AffinePoint pt = ec_scalar_base_mult(U256::from_u64(777));
  const Bytes encoded = encode_point(pt);
  ASSERT_EQ(encoded.size(), 65u);
  EXPECT_EQ(encoded[0], 0x04);
  const auto decoded = decode_point(encoded);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, pt);
}

TEST(P256, DecodeRejectsMalformed) {
  EXPECT_FALSE(decode_point(Bytes(64, 0)).has_value());  // wrong size
  Bytes bad(65, 0);
  bad[0] = 0x04;
  EXPECT_FALSE(decode_point(bad).has_value());  // (0,0) not on curve
  Bytes wrong_prefix = encode_point(generator());
  wrong_prefix[0] = 0x03;
  EXPECT_FALSE(decode_point(wrong_prefix).has_value());
}


TEST(P256, LadderMatchesDoubleAndAdd) {
  const AffinePoint g = generator();
  for (u64 k : {1ULL, 2ULL, 3ULL, 255ULL, 65537ULL, 123456789ULL}) {
    EXPECT_EQ(ec_scalar_mult_ladder(U256::from_u64(k), g),
              ec_scalar_mult(U256::from_u64(k), g))
        << "k=" << k;
  }
}

TEST(P256, LadderMatchesOnRandomScalars) {
  HmacDrbg drbg = test_drbg(40);
  const AffinePoint g = generator();
  for (int i = 0; i < 4; ++i) {
    const Bytes raw = drbg.generate(32);
    U256 k = U256::from_bytes(raw);
    U512 w;
    for (int j = 0; j < 4; ++j) w.limb[j] = k.limb[j];
    k = mod_reduce(w, p256().n);
    EXPECT_EQ(ec_scalar_mult_ladder(k, g), ec_scalar_mult(k, g));
  }
}

TEST(P256, LadderHandlesEdgeScalars) {
  const AffinePoint g = generator();
  EXPECT_TRUE(ec_scalar_mult_ladder(U256::zero(), g).infinity);
  EXPECT_EQ(ec_scalar_mult_ladder(U256::one(), g), g);
  EXPECT_TRUE(ec_scalar_mult_ladder(p256().n, g).infinity);
}

TEST(Ecdsa, SignVerifyRoundTrip) {
  HmacDrbg drbg = test_drbg(1);
  const EcdsaKeyPair kp = ecdsa_generate_key(drbg);
  const Bytes msg = {'h', 'e', 'l', 'l', 'o'};
  const EcdsaSignature sig = ecdsa_sign(kp.private_key, msg);
  EXPECT_TRUE(ecdsa_verify(kp.public_key, msg, sig));
}

TEST(Ecdsa, RejectsTamperedMessage) {
  HmacDrbg drbg = test_drbg(2);
  const EcdsaKeyPair kp = ecdsa_generate_key(drbg);
  const Bytes msg = {1, 2, 3, 4};
  const EcdsaSignature sig = ecdsa_sign(kp.private_key, msg);
  Bytes tampered = msg;
  tampered[0] ^= 1;
  EXPECT_FALSE(ecdsa_verify(kp.public_key, tampered, sig));
}

TEST(Ecdsa, RejectsTamperedSignature) {
  HmacDrbg drbg = test_drbg(3);
  const EcdsaKeyPair kp = ecdsa_generate_key(drbg);
  const Bytes msg = {9, 9, 9};
  EcdsaSignature sig = ecdsa_sign(kp.private_key, msg);
  sig.r = add_mod(sig.r, U256::one(), p256().n);
  EXPECT_FALSE(ecdsa_verify(kp.public_key, msg, sig));
}

TEST(Ecdsa, RejectsWrongKey) {
  HmacDrbg drbg = test_drbg(4);
  const EcdsaKeyPair kp1 = ecdsa_generate_key(drbg);
  const EcdsaKeyPair kp2 = ecdsa_generate_key(drbg);
  const Bytes msg = {5, 5};
  const EcdsaSignature sig = ecdsa_sign(kp1.private_key, msg);
  EXPECT_FALSE(ecdsa_verify(kp2.public_key, msg, sig));
}

TEST(Ecdsa, RejectsZeroComponents) {
  HmacDrbg drbg = test_drbg(5);
  const EcdsaKeyPair kp = ecdsa_generate_key(drbg);
  EcdsaSignature sig{U256::zero(), U256::one()};
  EXPECT_FALSE(ecdsa_verify(kp.public_key, Bytes{1}, sig));
  sig = {U256::one(), U256::zero()};
  EXPECT_FALSE(ecdsa_verify(kp.public_key, Bytes{1}, sig));
}

TEST(Ecdsa, DeterministicNonces) {
  HmacDrbg drbg = test_drbg(6);
  const EcdsaKeyPair kp = ecdsa_generate_key(drbg);
  const Bytes msg = {7};
  const EcdsaSignature s1 = ecdsa_sign(kp.private_key, msg);
  const EcdsaSignature s2 = ecdsa_sign(kp.private_key, msg);
  EXPECT_EQ(s1.r, s2.r);
  EXPECT_EQ(s1.s, s2.s);
}

TEST(Ecdsa, SignatureSerialization) {
  HmacDrbg drbg = test_drbg(7);
  const EcdsaKeyPair kp = ecdsa_generate_key(drbg);
  const Bytes msg = {1, 1, 2, 3, 5, 8};
  const EcdsaSignature sig = ecdsa_sign(kp.private_key, msg);
  const Bytes wire = sig.to_bytes();
  ASSERT_EQ(wire.size(), 64u);
  const auto parsed = EcdsaSignature::from_bytes(wire);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(ecdsa_verify(kp.public_key, msg, *parsed));
  EXPECT_FALSE(EcdsaSignature::from_bytes(Bytes(63)).has_value());
}

TEST(Ecdh, SharedSecretAgrees) {
  HmacDrbg drbg_a = test_drbg(8);
  HmacDrbg drbg_b = test_drbg(9);
  const EcdhKeyPair alice = ecdh_generate_key(drbg_a);
  const EcdhKeyPair bob = ecdh_generate_key(drbg_b);
  const U256 s_ab = ecdh_shared_secret(alice.private_key, bob.public_key);
  const U256 s_ba = ecdh_shared_secret(bob.private_key, alice.public_key);
  EXPECT_EQ(s_ab, s_ba);
}

TEST(Ecdh, DifferentPeersDifferentSecrets) {
  HmacDrbg drbg = test_drbg(10);
  const EcdhKeyPair a = ecdh_generate_key(drbg);
  const EcdhKeyPair b = ecdh_generate_key(drbg);
  const EcdhKeyPair c = ecdh_generate_key(drbg);
  EXPECT_NE(ecdh_shared_secret(a.private_key, b.public_key),
            ecdh_shared_secret(a.private_key, c.public_key));
}

TEST(Ecdh, RejectsInvalidPeerKey) {
  HmacDrbg drbg = test_drbg(11);
  const EcdhKeyPair a = ecdh_generate_key(drbg);
  AffinePoint off_curve = generator();
  off_curve.x = add_mod(off_curve.x, U256::one(), p256().p);
  EXPECT_THROW(ecdh_shared_secret(a.private_key, off_curve), std::invalid_argument);
  EXPECT_THROW(ecdh_shared_secret(a.private_key, AffinePoint::at_infinity()),
               std::invalid_argument);
}

TEST(Ecdh, SessionKeysMatchOnBothSides) {
  HmacDrbg drbg_a = test_drbg(12);
  HmacDrbg drbg_b = test_drbg(13);
  const EcdhKeyPair user = ecdh_generate_key(drbg_a);
  const EcdhKeyPair accel = ecdh_generate_key(drbg_b);
  const SessionKeys k_user = derive_session_keys(
      ecdh_shared_secret(user.private_key, accel.public_key), user.public_key,
      accel.public_key);
  const SessionKeys k_accel = derive_session_keys(
      ecdh_shared_secret(accel.private_key, user.public_key), user.public_key,
      accel.public_key);
  EXPECT_EQ(k_user.enc_key, k_accel.enc_key);
  EXPECT_EQ(k_user.mac_key, k_accel.mac_key);
}

TEST(Cert, IssueAndVerify) {
  HmacDrbg drbg = test_drbg(14);
  const ManufacturerCa ca(drbg);
  const EcdsaKeyPair device = ecdsa_generate_key(drbg);
  const DeviceCertificate cert = ca.issue("guardnn-dev-0001", device.public_key);
  EXPECT_TRUE(verify_certificate(cert, ca.public_key()));
}

TEST(Cert, RejectsWrongCa) {
  HmacDrbg drbg = test_drbg(15);
  const ManufacturerCa real_ca(drbg);
  const ManufacturerCa fake_ca(drbg);
  const EcdsaKeyPair device = ecdsa_generate_key(drbg);
  const DeviceCertificate cert = real_ca.issue("dev", device.public_key);
  EXPECT_FALSE(verify_certificate(cert, fake_ca.public_key()));
}

TEST(Cert, RejectsSwappedKey) {
  HmacDrbg drbg = test_drbg(16);
  const ManufacturerCa ca(drbg);
  const EcdsaKeyPair device = ecdsa_generate_key(drbg);
  const EcdsaKeyPair attacker = ecdsa_generate_key(drbg);
  DeviceCertificate cert = ca.issue("dev", device.public_key);
  cert.device_public = attacker.public_key;  // substitution attack
  EXPECT_FALSE(verify_certificate(cert, ca.public_key()));
}

TEST(Cert, RejectsRenamedDevice) {
  HmacDrbg drbg = test_drbg(17);
  const ManufacturerCa ca(drbg);
  const EcdsaKeyPair device = ecdsa_generate_key(drbg);
  DeviceCertificate cert = ca.issue("dev-a", device.public_key);
  cert.device_id = "dev-b";
  EXPECT_FALSE(verify_certificate(cert, ca.public_key()));
}

}  // namespace
}  // namespace guardnn::crypto
