#include <gtest/gtest.h>

#include "crypto/cert.h"
#include "crypto/ecdh.h"
#include "crypto/ecdsa.h"
#include "crypto/p256.h"

namespace guardnn::crypto {
namespace {

AffinePoint generator() {
  AffinePoint g;
  g.x = p256().gx;
  g.y = p256().gy;
  return g;
}

HmacDrbg test_drbg(u8 tag) {
  Bytes seed = {0xde, 0xad, tag};
  return HmacDrbg(seed);
}

TEST(P256, GeneratorOnCurve) { EXPECT_TRUE(on_curve(generator())); }

TEST(P256, OffCurvePointRejected) {
  AffinePoint bad = generator();
  bad.y = add_mod(bad.y, U256::one(), p256().p);
  EXPECT_FALSE(on_curve(bad));
}

TEST(P256, InfinityIsIdentity) {
  const AffinePoint g = generator();
  EXPECT_EQ(ec_add(g, AffinePoint::at_infinity()), g);
  EXPECT_EQ(ec_add(AffinePoint::at_infinity(), g), g);
}

TEST(P256, InverseSumsToInfinity) {
  AffinePoint g = generator();
  AffinePoint neg = g;
  neg.y = sub_mod(U256::zero(), g.y, p256().p);
  EXPECT_TRUE(on_curve(neg));
  EXPECT_TRUE(ec_add(g, neg).infinity);
}

TEST(P256, DoubleMatchesAdd) {
  const AffinePoint g = generator();
  EXPECT_EQ(ec_add(g, g), ec_scalar_mult(U256::from_u64(2), g));
}

TEST(P256, ScalarMultResultsOnCurve) {
  for (u64 k : {1ULL, 2ULL, 3ULL, 17ULL, 123456789ULL}) {
    const AffinePoint pt = ec_scalar_base_mult(U256::from_u64(k));
    EXPECT_TRUE(on_curve(pt)) << "k=" << k;
    EXPECT_FALSE(pt.infinity);
  }
}

TEST(P256, ScalarDistributes) {
  // (a+b)G == aG + bG
  const U256 a = U256::from_u64(12345);
  const U256 b = U256::from_u64(67890);
  U256 ab;
  add(ab, a, b);
  EXPECT_EQ(ec_scalar_base_mult(ab),
            ec_add(ec_scalar_base_mult(a), ec_scalar_base_mult(b)));
}

TEST(P256, ScalarComposes) {
  // a*(b*G) == (a*b mod n)*G
  const U256 a = U256::from_u64(1001);
  const U256 b = U256::from_u64(2002);
  const AffinePoint bg = ec_scalar_base_mult(b);
  const U256 ab = mul_mod(a, b, p256().n);
  EXPECT_EQ(ec_scalar_mult(a, bg), ec_scalar_base_mult(ab));
}

TEST(P256, OrderTimesGeneratorIsInfinity) {
  EXPECT_TRUE(ec_scalar_base_mult(p256().n).infinity);
}

TEST(P256, EncodeDecodeRoundTrip) {
  const AffinePoint pt = ec_scalar_base_mult(U256::from_u64(777));
  const Bytes encoded = encode_point(pt);
  ASSERT_EQ(encoded.size(), 65u);
  EXPECT_EQ(encoded[0], 0x04);
  const auto decoded = decode_point(encoded);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, pt);
}

TEST(P256, DecodeRejectsMalformed) {
  EXPECT_FALSE(decode_point(Bytes(64, 0)).has_value());  // wrong size
  Bytes bad(65, 0);
  bad[0] = 0x04;
  EXPECT_FALSE(decode_point(bad).has_value());  // (0,0) not on curve
  Bytes wrong_prefix = encode_point(generator());
  wrong_prefix[0] = 0x03;
  EXPECT_FALSE(decode_point(wrong_prefix).has_value());
}


TEST(P256, LadderMatchesDoubleAndAdd) {
  const AffinePoint g = generator();
  for (u64 k : {1ULL, 2ULL, 3ULL, 255ULL, 65537ULL, 123456789ULL}) {
    EXPECT_EQ(ec_scalar_mult_ladder(U256::from_u64(k), g),
              ec_scalar_mult(U256::from_u64(k), g))
        << "k=" << k;
  }
}

TEST(P256, LadderMatchesOnRandomScalars) {
  HmacDrbg drbg = test_drbg(40);
  const AffinePoint g = generator();
  for (int i = 0; i < 4; ++i) {
    const Bytes raw = drbg.generate(32);
    U256 k = U256::from_bytes(raw);
    U512 w;
    for (int j = 0; j < 4; ++j) w.limb[j] = k.limb[j];
    k = mod_reduce(w, p256().n);
    EXPECT_EQ(ec_scalar_mult_ladder(k, g), ec_scalar_mult(k, g));
  }
}

TEST(P256, LadderHandlesEdgeScalars) {
  const AffinePoint g = generator();
  EXPECT_TRUE(ec_scalar_mult_ladder(U256::zero(), g).infinity);
  EXPECT_EQ(ec_scalar_mult_ladder(U256::one(), g), g);
  EXPECT_TRUE(ec_scalar_mult_ladder(p256().n, g).infinity);
}

// RFC 6979 A.2.5 / NIST CAVP-style P-256 known-answer material. The private
// key d and public key Q = d*G are the official vectors, so this doubles as a
// scalar-multiplication KAT; the (r, s) pairs are the official deterministic
// signatures, which any correct verifier must accept regardless of its own
// nonce-derivation scheme.
const char* const kRfc6979D =
    "c9afa9d845ba75166b5c215767b1d6934e50c3db36e89b127b8a622b120f6721";
const char* const kRfc6979Qx =
    "60fed4ba255a9d31c961eb74c6356d68c049b8923b61fa6ce669622e60f29fb6";
const char* const kRfc6979Qy =
    "7903fe1008b8bc99a41ae9e95628bc64f2f1b20c2d7e9f5177a3c294d4462299";

AffinePoint rfc6979_public_key() {
  AffinePoint q;
  q.x = U256::from_bytes(from_hex(kRfc6979Qx));
  q.y = U256::from_bytes(from_hex(kRfc6979Qy));
  return q;
}

TEST(Ecdsa, Rfc6979PublicKeyDerivation) {
  const U256 d = U256::from_bytes(from_hex(kRfc6979D));
  const AffinePoint q = ec_scalar_base_mult(d);
  EXPECT_EQ(to_hex(q.x.to_bytes()), kRfc6979Qx);
  EXPECT_EQ(to_hex(q.y.to_bytes()), kRfc6979Qy);
}

TEST(Ecdsa, Rfc6979VerifyKnownAnswerSignatures) {
  const AffinePoint q = rfc6979_public_key();

  // SHA-256, message "sample".
  EcdsaSignature sample_sig;
  sample_sig.r = U256::from_bytes(from_hex(
      "efd48b2aacb6a8fd1140dd9cd45e81d69d2c877b56aaf991c34d0ea84eaf3716"));
  sample_sig.s = U256::from_bytes(from_hex(
      "f7cb1c942d657c41d436c7a1b6e29f65f3e900dbb9aff4064dc4ab2f843acda8"));
  const Bytes sample = {'s', 'a', 'm', 'p', 'l', 'e'};
  EXPECT_TRUE(ecdsa_verify(q, sample, sample_sig));

  // SHA-256, message "test".
  EcdsaSignature test_sig;
  test_sig.r = U256::from_bytes(from_hex(
      "f1abb023518351cd71d881567b1ea663ed3efcf6c5132b354f28d3b0b7d38367"));
  test_sig.s = U256::from_bytes(from_hex(
      "019f4113742a2b14bd25926b49c649155f267e60d3814b4c0cc84250e46f0083"));
  const Bytes test_msg = {'t', 'e', 's', 't'};
  EXPECT_TRUE(ecdsa_verify(q, test_msg, test_sig));

  // Cross-checks: signatures don't verify for the wrong message.
  EXPECT_FALSE(ecdsa_verify(q, test_msg, sample_sig));
  EXPECT_FALSE(ecdsa_verify(q, sample, test_sig));
}

TEST(Ecdsa, FixedDrbgSignVerifyRoundTripGolden) {
  // Key pair generated from a fixed DRBG seed; our nonces are deterministic,
  // so the full 64-byte r||s wire encoding is a regression golden.
  HmacDrbg drbg(Bytes{0x5e, 0xed, 0x01});
  const EcdsaKeyPair kp = ecdsa_generate_key(drbg);
  const Bytes msg = {'s', 'a', 'm', 'p', 'l', 'e'};
  const EcdsaSignature sig = ecdsa_sign(kp.private_key, msg);
  EXPECT_TRUE(ecdsa_verify(kp.public_key, msg, sig));
  EXPECT_EQ(to_hex(sig.to_bytes()),
            "99fb33c59fdc187953405a03f94182b31ea339d9ac6437ff2d9632d1a3d7946d"
            "ecaebe5333fd17935b13bb2c9de3084656e8a3cc94fb967308fa5f72bde641ab");

  // The implementation's own deterministic signature for the RFC 6979 key is
  // pinned too (nonce scheme is HMAC-DRBG-style, not bit-exact RFC 6979).
  const U256 d = U256::from_bytes(from_hex(kRfc6979D));
  const EcdsaSignature own = ecdsa_sign(d, msg);
  EXPECT_TRUE(ecdsa_verify(rfc6979_public_key(), msg, own));
  EXPECT_EQ(to_hex(own.to_bytes()),
            "168f3fc81659a4b00d9d9800194d1419e0c7160989cdf1848b8b27443fe76e53"
            "be7a6eb8ab4b0a2d78d238103fc1102c15e5110d2bec0ed946693f8aea863f6a");
}

TEST(Ecdsa, SignVerifyRoundTrip) {
  HmacDrbg drbg = test_drbg(1);
  const EcdsaKeyPair kp = ecdsa_generate_key(drbg);
  const Bytes msg = {'h', 'e', 'l', 'l', 'o'};
  const EcdsaSignature sig = ecdsa_sign(kp.private_key, msg);
  EXPECT_TRUE(ecdsa_verify(kp.public_key, msg, sig));
}

TEST(Ecdsa, RejectsTamperedMessage) {
  HmacDrbg drbg = test_drbg(2);
  const EcdsaKeyPair kp = ecdsa_generate_key(drbg);
  const Bytes msg = {1, 2, 3, 4};
  const EcdsaSignature sig = ecdsa_sign(kp.private_key, msg);
  Bytes tampered = msg;
  tampered[0] ^= 1;
  EXPECT_FALSE(ecdsa_verify(kp.public_key, tampered, sig));
}

TEST(Ecdsa, RejectsTamperedSignature) {
  HmacDrbg drbg = test_drbg(3);
  const EcdsaKeyPair kp = ecdsa_generate_key(drbg);
  const Bytes msg = {9, 9, 9};
  EcdsaSignature sig = ecdsa_sign(kp.private_key, msg);
  sig.r = add_mod(sig.r, U256::one(), p256().n);
  EXPECT_FALSE(ecdsa_verify(kp.public_key, msg, sig));
}

TEST(Ecdsa, RejectsWrongKey) {
  HmacDrbg drbg = test_drbg(4);
  const EcdsaKeyPair kp1 = ecdsa_generate_key(drbg);
  const EcdsaKeyPair kp2 = ecdsa_generate_key(drbg);
  const Bytes msg = {5, 5};
  const EcdsaSignature sig = ecdsa_sign(kp1.private_key, msg);
  EXPECT_FALSE(ecdsa_verify(kp2.public_key, msg, sig));
}

TEST(Ecdsa, RejectsZeroComponents) {
  HmacDrbg drbg = test_drbg(5);
  const EcdsaKeyPair kp = ecdsa_generate_key(drbg);
  EcdsaSignature sig{U256::zero(), U256::one()};
  EXPECT_FALSE(ecdsa_verify(kp.public_key, Bytes{1}, sig));
  sig = {U256::one(), U256::zero()};
  EXPECT_FALSE(ecdsa_verify(kp.public_key, Bytes{1}, sig));
}

TEST(Ecdsa, DeterministicNonces) {
  HmacDrbg drbg = test_drbg(6);
  const EcdsaKeyPair kp = ecdsa_generate_key(drbg);
  const Bytes msg = {7};
  const EcdsaSignature s1 = ecdsa_sign(kp.private_key, msg);
  const EcdsaSignature s2 = ecdsa_sign(kp.private_key, msg);
  EXPECT_EQ(s1.r, s2.r);
  EXPECT_EQ(s1.s, s2.s);
}

TEST(Ecdsa, SignatureSerialization) {
  HmacDrbg drbg = test_drbg(7);
  const EcdsaKeyPair kp = ecdsa_generate_key(drbg);
  const Bytes msg = {1, 1, 2, 3, 5, 8};
  const EcdsaSignature sig = ecdsa_sign(kp.private_key, msg);
  const Bytes wire = sig.to_bytes();
  ASSERT_EQ(wire.size(), 64u);
  const auto parsed = EcdsaSignature::from_bytes(wire);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(ecdsa_verify(kp.public_key, msg, *parsed));
  EXPECT_FALSE(EcdsaSignature::from_bytes(Bytes(63)).has_value());
}

TEST(Ecdh, SharedSecretAgrees) {
  HmacDrbg drbg_a = test_drbg(8);
  HmacDrbg drbg_b = test_drbg(9);
  const EcdhKeyPair alice = ecdh_generate_key(drbg_a);
  const EcdhKeyPair bob = ecdh_generate_key(drbg_b);
  const U256 s_ab = ecdh_shared_secret(alice.private_key, bob.public_key);
  const U256 s_ba = ecdh_shared_secret(bob.private_key, alice.public_key);
  EXPECT_EQ(s_ab, s_ba);
}

TEST(Ecdh, DifferentPeersDifferentSecrets) {
  HmacDrbg drbg = test_drbg(10);
  const EcdhKeyPair a = ecdh_generate_key(drbg);
  const EcdhKeyPair b = ecdh_generate_key(drbg);
  const EcdhKeyPair c = ecdh_generate_key(drbg);
  EXPECT_NE(ecdh_shared_secret(a.private_key, b.public_key),
            ecdh_shared_secret(a.private_key, c.public_key));
}

TEST(Ecdh, RejectsInvalidPeerKey) {
  HmacDrbg drbg = test_drbg(11);
  const EcdhKeyPair a = ecdh_generate_key(drbg);
  AffinePoint off_curve = generator();
  off_curve.x = add_mod(off_curve.x, U256::one(), p256().p);
  EXPECT_THROW(ecdh_shared_secret(a.private_key, off_curve), std::invalid_argument);
  EXPECT_THROW(ecdh_shared_secret(a.private_key, AffinePoint::at_infinity()),
               std::invalid_argument);
}

TEST(Ecdh, SessionKeysMatchOnBothSides) {
  HmacDrbg drbg_a = test_drbg(12);
  HmacDrbg drbg_b = test_drbg(13);
  const EcdhKeyPair user = ecdh_generate_key(drbg_a);
  const EcdhKeyPair accel = ecdh_generate_key(drbg_b);
  const SessionKeys k_user = derive_session_keys(
      ecdh_shared_secret(user.private_key, accel.public_key), user.public_key,
      accel.public_key);
  const SessionKeys k_accel = derive_session_keys(
      ecdh_shared_secret(accel.private_key, user.public_key), user.public_key,
      accel.public_key);
  EXPECT_EQ(k_user.enc_key, k_accel.enc_key);
  EXPECT_EQ(k_user.mac_key, k_accel.mac_key);
}

TEST(Cert, IssueAndVerify) {
  HmacDrbg drbg = test_drbg(14);
  const ManufacturerCa ca(drbg);
  const EcdsaKeyPair device = ecdsa_generate_key(drbg);
  const DeviceCertificate cert = ca.issue("guardnn-dev-0001", device.public_key);
  EXPECT_TRUE(verify_certificate(cert, ca.public_key()));
}

TEST(Cert, RejectsWrongCa) {
  HmacDrbg drbg = test_drbg(15);
  const ManufacturerCa real_ca(drbg);
  const ManufacturerCa fake_ca(drbg);
  const EcdsaKeyPair device = ecdsa_generate_key(drbg);
  const DeviceCertificate cert = real_ca.issue("dev", device.public_key);
  EXPECT_FALSE(verify_certificate(cert, fake_ca.public_key()));
}

TEST(Cert, RejectsSwappedKey) {
  HmacDrbg drbg = test_drbg(16);
  const ManufacturerCa ca(drbg);
  const EcdsaKeyPair device = ecdsa_generate_key(drbg);
  const EcdsaKeyPair attacker = ecdsa_generate_key(drbg);
  DeviceCertificate cert = ca.issue("dev", device.public_key);
  cert.device_public = attacker.public_key;  // substitution attack
  EXPECT_FALSE(verify_certificate(cert, ca.public_key()));
}

TEST(Cert, RejectsRenamedDevice) {
  HmacDrbg drbg = test_drbg(17);
  const ManufacturerCa ca(drbg);
  const EcdsaKeyPair device = ecdsa_generate_key(drbg);
  DeviceCertificate cert = ca.issue("dev-a", device.public_key);
  cert.device_id = "dev-b";
  EXPECT_FALSE(verify_certificate(cert, ca.public_key()));
}

}  // namespace
}  // namespace guardnn::crypto
