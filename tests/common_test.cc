#include <gtest/gtest.h>

#include <sstream>

#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/types.h"

namespace guardnn {
namespace {

TEST(Types, HexRoundTrip) {
  const Bytes data = {0x00, 0x01, 0xab, 0xff, 0x7e};
  EXPECT_EQ(to_hex(data), "0001abff7e");
  EXPECT_EQ(from_hex("0001abff7e"), data);
}

TEST(Types, HexRejectsOddLength) {
  EXPECT_THROW(from_hex("abc"), std::invalid_argument);
}

TEST(Types, HexRejectsBadChar) {
  EXPECT_THROW(from_hex("zz"), std::invalid_argument);
}

TEST(Types, HexUppercaseAccepted) {
  EXPECT_EQ(from_hex("AB"), Bytes{0xab});
}

TEST(Types, CtEqual) {
  const Bytes a = {1, 2, 3};
  const Bytes b = {1, 2, 3};
  const Bytes c = {1, 2, 4};
  const Bytes d = {1, 2};
  EXPECT_TRUE(ct_equal(a, b));
  EXPECT_FALSE(ct_equal(a, c));
  EXPECT_FALSE(ct_equal(a, d));
}

TEST(Types, EndianHelpers) {
  u8 buf[8];
  store_be64(buf, 0x0102030405060708ULL);
  EXPECT_EQ(buf[0], 0x01);
  EXPECT_EQ(buf[7], 0x08);
  EXPECT_EQ(load_be64(buf), 0x0102030405060708ULL);

  store_le64(buf, 0x0102030405060708ULL);
  EXPECT_EQ(buf[0], 0x08);
  EXPECT_EQ(load_le64(buf), 0x0102030405060708ULL);

  u8 b32[4];
  store_be32(b32, 0xdeadbeef);
  EXPECT_EQ(load_be32(b32), 0xdeadbeefu);
}

TEST(Types, XorInto) {
  Bytes dst = {0xff, 0x0f};
  const Bytes src = {0x0f, 0x0f};
  xor_into(dst, src);
  EXPECT_EQ(dst, (Bytes{0xf0, 0x00}));
  Bytes short_src = {0x01};
  EXPECT_THROW(xor_into(dst, short_src), std::invalid_argument);
}

TEST(Rng, Deterministic) {
  Xoshiro256 a(42), b(42), c(43);
  EXPECT_EQ(a.next(), b.next());
  EXPECT_NE(a.next(), c.next());
}

TEST(Rng, NextBelowInRange) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(17), 17u);
}

TEST(Rng, DoubleInUnitInterval) {
  Xoshiro256 rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, FillCoversBuffer) {
  Xoshiro256 rng(11);
  Bytes buf(37, 0);
  rng.fill(buf);
  int nonzero = 0;
  for (u8 b : buf) nonzero += b != 0;
  EXPECT_GT(nonzero, 20);  // Overwhelmingly likely for random bytes.
}

TEST(Stats, RunningStatsBasics) {
  RunningStats s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_DOUBLE_EQ(s.sum(), 10.0);
  EXPECT_NEAR(s.stddev(), 1.29099, 1e-4);
}

TEST(Stats, EmptyStatsAreZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(Stats, GeoMean) {
  GeoMean g;
  g.add(1.0);
  g.add(4.0);
  EXPECT_DOUBLE_EQ(g.value(), 2.0);
}

TEST(Table, FormatHelpers) {
  EXPECT_EQ(fmt_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_overhead_pct(1.053), "+5.3%");
  EXPECT_EQ(fmt_overhead_pct(0.98), "-2.0%");
}

TEST(Table, PrintsAllRows) {
  ConsoleTable t({"a", "bb"});
  t.add_row({"1", "2"});
  t.add_row({"333", "4"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("333"), std::string::npos);
  EXPECT_NE(out.find("bb"), std::string::npos);
}

}  // namespace
}  // namespace guardnn
