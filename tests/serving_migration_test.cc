// Live-migration and hot-spare tests: planned zero-loss tenant moves
// (drain → attested re-wrap → re-key → FIFO replay on the source → atomic
// routing flip), migration racing device death (source death degrades to the
// crash failover path, target death aborts with the tenant untouched),
// standby-pool auto-promotion restoring the admission byte budget, and the
// migration chaos storm: 8 tenants migrating repeatedly under live load and
// injected faults with 100% of futures resolved and bit-identical outputs.
// Runs under ThreadSanitizer in CI.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "host/model_codec.h"
#include "serving/fault.h"
#include "serving/inference_server.h"

namespace guardnn::serving {
namespace {

using accel::DeviceStatus;
using accel::ForwardOp;
using host::FuncLayer;
using host::FuncNetwork;
using host::RemoteUser;

Bytes random_weights(std::size_t n, u64 seed) {
  Xoshiro256 rng(seed);
  Bytes out(n);
  for (auto& b : out)
    b = static_cast<u8>(
        static_cast<i8>(static_cast<int>(rng.next_below(256)) - 128));
  return out;
}

FuncNetwork small_cnn(u64 seed) {
  FuncNetwork net;
  net.in_c = 3;
  net.in_h = 8;
  net.in_w = 8;
  net.layers.push_back(FuncLayer{ForwardOp::Kind::kConv, 4, 3, 1, 1, 4,
                                 random_weights(4 * 3 * 3 * 3, seed)});
  net.layers.push_back(FuncLayer{ForwardOp::Kind::kRelu, 0, 0, 1, 0, 0, {}});
  net.layers.push_back(FuncLayer{ForwardOp::Kind::kMaxPool, 0, 2, 2, 0, 0, {}});
  net.layers.push_back(FuncLayer{ForwardOp::Kind::kFc, 10, 0, 1, 0, 5,
                                 random_weights(10 * 4 * 4 * 4, seed + 1)});
  return net;
}

functional::Tensor random_input(const FuncNetwork& net, u64 seed) {
  functional::Tensor input(net.in_c, net.in_h, net.in_w, net.bits);
  Xoshiro256 rng(seed);
  for (auto& v : input.data())
    v = static_cast<i8>(static_cast<int>(rng.next_below(256)) - 128);
  return input;
}

Bytes tensor_bytes(const functional::Tensor& t) {
  return Bytes(t.bytes().begin(), t.bytes().end());
}

struct TenantClient {
  std::unique_ptr<RemoteUser> user;
  TenantId tenant = 0;
  std::size_t device_index = 0;
  ModelHandle model;

  bool connect(InferenceServer& server, const crypto::AffinePoint& ca_public,
               u64 seed) {
    user = std::make_unique<RemoteUser>(
        ca_public,
        Bytes{static_cast<u8>(seed), static_cast<u8>(seed >> 8), 0x6e});
    const crypto::AffinePoint share = user->begin_session();
    const auto connected = server.connect(share, /*integrity=*/true);
    if (connected.tenant == 0) return false;
    tenant = connected.tenant;
    device_index = connected.device_index;
    if (!user->attest_device(server.get_pk(device_index))) return false;
    return user->complete_session(connected.response);
  }

  InferenceServer::ConnectResult reconnect(InferenceServer& server) {
    const crypto::AffinePoint share = user->begin_session();
    auto result = server.reconnect(tenant, share, /*integrity=*/true);
    if (result.tenant == 0) return result;
    device_index = result.device_index;
    if (!user->attest_device(server.get_pk(device_index)) ||
        !user->complete_session(result.response))
      result.tenant = 0;
    return result;
  }

  /// Planned migration, step 1: hand the server a fresh ECDHE share and run
  /// the drain + replay + flip. begin_session() only mints the new
  /// ephemeral — the *old* channel keys stay live, so outputs of replayed
  /// (old-session) requests still open until finish_migrate() re-keys.
  InferenceServer::ConnectResult start_migrate(InferenceServer& server,
                                               std::size_t target) {
    return server.migrate_tenant(tenant, target, user->begin_session(),
                                 /*integrity=*/true);
  }

  /// Step 2 (after harvesting old-session outputs): attest the target and
  /// derive the new channel keys from the migration's InitSession response.
  bool finish_migrate(InferenceServer& server,
                      const InferenceServer::ConnectResult& result) {
    if (result.tenant == 0) return false;
    device_index = result.device_index;
    return user->attest_device(server.get_pk(device_index)) &&
           user->complete_session(result.response);
  }

  bool load(InferenceServer& server, const FuncNetwork& net) {
    model = server.register_model(net);
    return model.valid() &&
           server.load_model(tenant, model,
                             user->seal(model.plan->weight_blob)) ==
               DeviceStatus::kOk;
  }
};

struct Env {
  crypto::HmacDrbg ca_drbg{Bytes{0xfa}};
  crypto::ManufacturerCa ca{ca_drbg};

  InferenceServer make(ServerConfig config) {
    return InferenceServer(ca, config, Bytes{0xfb, 0xfc});
  }
};

// Spare promotion pre-warms through the attested re-wrap whose EC math runs
// ~10x slower under ASan — waits that gate on it get the longer budget.
template <typename Predicate>
bool eventually(Predicate predicate, int iterations = 2000) {
  for (int i = 0; i < iterations; ++i) {
    if (predicate()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return predicate();
}

// --- Planned migration: the zero-loss walkthrough ----------------------------

TEST(Migration, MigrateUnderLoadZeroLossBitIdenticalFifoSurvives) {
  // The tentpole invariant: migrating a tenant with a queue full of admitted
  // requests loses nothing. Parked records replay on the *source* session in
  // FIFO order (they are sealed under the old channel keys and strict
  // sequence numbers forbid re-sealing or skipping), so every future
  // resolves kOk and every output is bit-identical to the single-device
  // golden — then new submissions execute on the target under the new keys.
  Env env;
  ServerConfig config;
  config.num_devices = 2;
  config.num_workers = 1;
  config.emulate_device_latency = true;
  config.device_latency_scale = 10.0;  // keep requests parked during the move
  InferenceServer server = env.make(config);

  const FuncNetwork net = small_cnn(11000);
  TenantClient client;
  ASSERT_TRUE(client.connect(server, env.ca.public_key(), 11001));
  ASSERT_TRUE(client.load(server, net));
  const std::size_t source = client.device_index;
  const std::size_t target = 1 - source;

  constexpr std::size_t kInFlight = 16;
  std::vector<functional::Tensor> inputs;
  std::vector<std::future<InferenceResult>> futures;
  for (std::size_t r = 0; r < kInFlight; ++r) {
    inputs.push_back(random_input(net, 11010 + r));
    futures.push_back(server.submit_async(
        client.tenant, client.user->seal(tensor_bytes(inputs.back()))));
  }

  // Migrate while the queue is hot. The call returns only after the replay
  // drained the FIFO and the routing entry flipped.
  const auto moved = client.start_migrate(server, target);
  ASSERT_EQ(moved.tenant, client.tenant)
      << "migration failed: " << static_cast<int>(moved.response.status);
  EXPECT_EQ(moved.device_index, target);
  EXPECT_TRUE(moved.model_restored)
      << "the loaded model must follow the tenant without a re-upload";

  // Zero loss, FIFO intact: every parked future resolved kOk during the
  // replay, and each output opens under the OLD keys (finish_migrate has not
  // re-keyed yet) bit-identical to the reference — an out-of-order or
  // re-sealed record would have failed the channel sequence check instead.
  for (std::size_t r = 0; r < kInFlight; ++r) {
    ASSERT_EQ(futures[r].wait_for(std::chrono::seconds(10)),
              std::future_status::ready)
        << "future " << r << " not resolved by the replay";
    const InferenceResult result = futures[r].get();
    ASSERT_EQ(result.outcome, RequestOutcome::kOk)
        << "request " << r << ": " << outcome_name(result.outcome);
    const auto output = client.user->open_output(result.sealed_output);
    ASSERT_TRUE(output.has_value()) << "request " << r;
    EXPECT_EQ(*output, host::reference_run(net, inputs[r])) << "request " << r;
  }
  ASSERT_TRUE(client.finish_migrate(server, moved));

  // Post-flip traffic executes on the target under the new keys.
  const functional::Tensor after = random_input(net, 11100);
  const InferenceResult result =
      server.submit(client.tenant, client.user->seal(tensor_bytes(after)));
  ASSERT_EQ(result.outcome, RequestOutcome::kOk) << outcome_name(result.outcome);
  const auto output = client.user->open_output(result.sealed_output);
  ASSERT_TRUE(output.has_value());
  EXPECT_EQ(*output, host::reference_run(net, after));
  EXPECT_EQ(server.tenant_session(client.tenant).first, target);

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.migrations, 1u);
  EXPECT_EQ(stats.migrations_aborted, 0u);
  EXPECT_EQ(stats.migrations_degraded, 0u);
  EXPECT_EQ(stats.failovers, 0u);
  EXPECT_EQ(server.pending_requests(), 0u);
  EXPECT_EQ(server.pending_bytes(), 0u);
}

TEST(Migration, ModelLessTenantMigratesAsSessionOnlyMove) {
  Env env;
  ServerConfig config;
  config.num_devices = 2;
  config.num_workers = 1;
  InferenceServer server = env.make(config);

  TenantClient client;
  ASSERT_TRUE(client.connect(server, env.ca.public_key(), 11200));
  const std::size_t target = 1 - client.device_index;

  const auto moved = client.start_migrate(server, target);
  ASSERT_EQ(moved.tenant, client.tenant);
  EXPECT_FALSE(moved.model_restored);
  ASSERT_TRUE(client.finish_migrate(server, moved));

  // The fresh target session accepts a model load and serves correctly.
  const FuncNetwork net = small_cnn(11210);
  ASSERT_TRUE(client.load(server, net));
  const functional::Tensor input = random_input(net, 11211);
  const InferenceResult result =
      server.submit(client.tenant, client.user->seal(tensor_bytes(input)));
  ASSERT_EQ(result.outcome, RequestOutcome::kOk) << outcome_name(result.outcome);
  const auto output = client.user->open_output(result.sealed_output);
  ASSERT_TRUE(output.has_value());
  EXPECT_EQ(*output, host::reference_run(net, input));
  EXPECT_EQ(server.stats().migrations, 1u);
}

TEST(Migration, BadTargetsAndUnknownTenantsAreRejected) {
  Env env;
  ServerConfig config;
  config.num_devices = 2;
  config.num_workers = 1;
  InferenceServer server = env.make(config);

  TenantClient client;
  ASSERT_TRUE(client.connect(server, env.ca.public_key(), 11300));
  RemoteUser& user = *client.user;

  // Unknown tenant.
  EXPECT_EQ(server.migrate_tenant(9999, 1 - client.device_index,
                                  user.begin_session(), true)
                .response.status,
            DeviceStatus::kNoSession);
  // Out-of-range target.
  EXPECT_EQ(server.migrate_tenant(client.tenant, 99, user.begin_session(), true)
                .response.status,
            DeviceStatus::kBadOperand);
  // Target == source: nothing to move.
  EXPECT_EQ(server.migrate_tenant(client.tenant, client.device_index,
                                  user.begin_session(), true)
                .response.status,
            DeviceStatus::kBadOperand);
  // Dead target is not routable.
  const std::size_t other = 1 - client.device_index;
  server.faults().kill(other);
  ASSERT_TRUE(eventually(
      [&] { return server.device_health(other) == DeviceHealth::kDead; }));
  EXPECT_EQ(server.migrate_tenant(client.tenant, other, user.begin_session(),
                                  true)
                .response.status,
            DeviceStatus::kUnavailable);
  // None of the rejections disturbed the tenant.
  EXPECT_EQ(server.tenant_session(client.tenant).first, client.device_index);
  EXPECT_EQ(server.stats().migrations, 0u);
}

// --- Migration racing device death -------------------------------------------

TEST(Migration, SourceDeathMidMigrationDegradesToCrashFailover) {
  // The source's session keys die with its SRAM: the parked records can
  // never be replayed. The migration must degrade to exactly the PR 7 crash
  // story — every future resolves (kDeviceFailover), a failover record is
  // registered, and reconnect() restores the sealed replica on the survivor.
  Env env;
  ServerConfig config;
  config.num_devices = 2;
  config.num_workers = 1;
  config.emulate_device_latency = true;
  config.device_latency_scale = 10.0;  // a wide replay window to die inside
  // Slow the monitor so the *migration's replay* observes the fail-stop
  // (with the default 1 ms tick the monitor usually wins the race and tears
  // the tenant down before migrate_tenant claims it — same end state, but
  // then the degraded path would never be exercised here).
  config.monitor_interval_ms = 200.0;
  InferenceServer server = env.make(config);

  const FuncNetwork net = small_cnn(11400);
  TenantClient client;
  ASSERT_TRUE(client.connect(server, env.ca.public_key(), 11401));
  ASSERT_TRUE(client.load(server, net));
  const std::size_t source = client.device_index;
  const std::size_t target = 1 - source;

  // A survivable replica must exist before the death (fail-stop strands the
  // dead device's replica — its store key died too).
  store::ContentId content{};
  ASSERT_EQ(server.seal_tenant_model(client.tenant,
                                     host::serialize_descriptor(net), content),
            DeviceStatus::kOk);
  ASSERT_EQ(server.replicate_model(content, target), DeviceStatus::kOk);

  // One canary occupies the worker (each emulated inference sleeps tens of
  // milliseconds inside the device-busy region), then a deep queue builds up
  // behind it that the migration's replay will own.
  std::future<InferenceResult> canary = server.submit_async(
      client.tenant, client.user->seal(tensor_bytes(random_input(net, 11405))));
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  constexpr std::size_t kParked = 13;
  std::vector<std::future<InferenceResult>> futures;
  for (std::size_t r = 0; r < kParked; ++r)
    futures.push_back(server.submit_async(
        client.tenant,
        client.user->seal(tensor_bytes(random_input(net, 11410 + r)))));

  // Script the fail-stop five source calls out: the replay is mid-queue when
  // the death latches, so run_batch observes it, fails the tenant over, and
  // the migration degrades instead of flipping (the FIFO can never empty).
  server.faults().kill_after(source, 5);
  const auto moved = client.start_migrate(server, target);
  EXPECT_EQ(moved.tenant, 0u) << "a migration whose source died must not "
                                 "report success";
  {
    const RequestOutcome outcome = canary.get().outcome;
    EXPECT_TRUE(outcome == RequestOutcome::kOk ||
                outcome == RequestOutcome::kDeviceFailover)
        << outcome_name(outcome);
  }

  // 100% of the parked futures resolve — none hang, none are lost silently.
  for (std::size_t r = 0; r < kParked; ++r) {
    ASSERT_EQ(futures[r].wait_for(std::chrono::seconds(10)),
              std::future_status::ready)
        << "future " << r << " hung after source death mid-migration";
    const InferenceResult result = futures[r].get();
    EXPECT_TRUE(result.outcome == RequestOutcome::kDeviceFailover ||
                result.outcome == RequestOutcome::kOk)
        << "request " << r << ": " << outcome_name(result.outcome);
  }
  EXPECT_TRUE(eventually([&] { return server.failover_pending(client.tenant); }))
      << "degraded migration must leave the tenant failover-pending";
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.migrations, 0u);
  if (moved.response.status == accel::DeviceStatus::kNoSession) {
    // Legal (rare) race: a worker observed the death before migrate_tenant
    // could mark the tenant draining, so the crash machinery won outright
    // and the migration never started.
    EXPECT_EQ(stats.migrations_degraded, 0u);
  } else {
    EXPECT_EQ(stats.migrations_degraded, 1u)
        << "a mid-replay source death must be classified as degraded";
  }
  EXPECT_TRUE(eventually([&] {
    return server.pending_requests() == 0 && server.pending_bytes() == 0;
  }));

  // The PR 7 resume path works unchanged: fresh handshake, model restored.
  const auto resumed = client.reconnect(server);
  ASSERT_EQ(resumed.tenant, client.tenant);
  EXPECT_EQ(resumed.device_index, target);
  EXPECT_TRUE(resumed.model_restored);
  const functional::Tensor input = random_input(net, 11450);
  const InferenceResult result =
      server.submit(client.tenant, client.user->seal(tensor_bytes(input)));
  ASSERT_EQ(result.outcome, RequestOutcome::kOk) << outcome_name(result.outcome);
  const auto output = client.user->open_output(result.sealed_output);
  ASSERT_TRUE(output.has_value());
  EXPECT_EQ(*output, host::reference_run(net, input));
}

TEST(Migration, TargetDeathMidMigrationAbortsAndTenantResumesOnSource) {
  Env env;
  ServerConfig config;
  config.num_devices = 2;
  config.num_workers = 1;
  InferenceServer server = env.make(config);

  const FuncNetwork net = small_cnn(11500);
  TenantClient client;
  ASSERT_TRUE(client.connect(server, env.ca.public_key(), 11501));
  ASSERT_TRUE(client.load(server, net));
  const std::size_t source = client.device_index;
  const std::size_t target = 1 - source;

  constexpr std::size_t kParked = 6;
  std::vector<functional::Tensor> inputs;
  std::vector<std::future<InferenceResult>> futures;
  for (std::size_t r = 0; r < kParked; ++r) {
    inputs.push_back(random_input(net, 11510 + r));
    futures.push_back(server.submit_async(
        client.tenant, client.user->seal(tensor_bytes(inputs.back()))));
  }

  // The target dies at its first migration-side call (the routable check at
  // entry still passes — death latches on the next call through the gate).
  server.faults().kill_after(target, 1);
  const auto moved = client.start_migrate(server, target);
  EXPECT_EQ(moved.tenant, 0u);
  EXPECT_EQ(moved.response.status, DeviceStatus::kUnavailable);

  // Abort means *untouched*: the tenant is still keyed to the source, the
  // parked queue reschedules onto the workers, and every request completes
  // correctly under the original channel keys. finish_migrate is never
  // called, so the client's keys were never swapped.
  for (std::size_t r = 0; r < kParked; ++r) {
    ASSERT_EQ(futures[r].wait_for(std::chrono::seconds(10)),
              std::future_status::ready)
        << "future " << r << " hung after aborted migration";
    const InferenceResult result = futures[r].get();
    ASSERT_EQ(result.outcome, RequestOutcome::kOk)
        << "request " << r << ": " << outcome_name(result.outcome);
    const auto output = client.user->open_output(result.sealed_output);
    ASSERT_TRUE(output.has_value()) << "request " << r;
    EXPECT_EQ(*output, host::reference_run(net, inputs[r])) << "request " << r;
  }
  EXPECT_EQ(server.tenant_session(client.tenant).first, source);
  EXPECT_FALSE(server.failover_pending(client.tenant));
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.migrations, 0u);
  EXPECT_GE(stats.migrations_aborted, 1u);
  EXPECT_EQ(stats.migrations_degraded, 0u);

  // The tenant keeps serving on the source as if nothing happened.
  const functional::Tensor input = random_input(net, 11550);
  const InferenceResult result =
      server.submit(client.tenant, client.user->seal(tensor_bytes(input)));
  ASSERT_EQ(result.outcome, RequestOutcome::kOk) << outcome_name(result.outcome);
}

TEST(Migration, ConcurrentDisjointTenantMigrationsOverlap) {
  // Two tenants on disjoint (source, target) device pairs migrate at the
  // same moment from two threads. Nothing serializes them globally (the
  // provisioning exclusion is per device pair), so both must succeed with
  // zero loss.
  Env env;
  ServerConfig config;
  config.num_devices = 4;
  config.num_workers = 2;
  config.emulate_device_latency = true;
  config.device_latency_scale = 10.0;
  InferenceServer server = env.make(config);

  const FuncNetwork net = small_cnn(11600);
  std::array<TenantClient, 2> clients;
  for (std::size_t i = 0; i < 2; ++i) {
    ASSERT_TRUE(clients[i].connect(server, env.ca.public_key(), 11601 + i));
    ASSERT_TRUE(clients[i].load(server, net));
  }
  ASSERT_NE(clients[0].device_index, clients[1].device_index);
  // Disjoint targets, untouched by either source.
  std::array<std::size_t, 2> targets{};
  std::size_t next_free = 0;
  for (std::size_t d = 0; d < 4 && next_free < 2; ++d)
    if (d != clients[0].device_index && d != clients[1].device_index)
      targets[next_free++] = d;
  ASSERT_EQ(next_free, 2u);

  std::atomic<int> failures{0};
  auto migrate_one = [&](std::size_t i) {
    constexpr std::size_t kParked = 8;
    std::vector<functional::Tensor> inputs;
    std::vector<std::future<InferenceResult>> futures;
    for (std::size_t r = 0; r < kParked; ++r) {
      inputs.push_back(random_input(net, 11610 + 16 * i + r));
      futures.push_back(server.submit_async(
          clients[i].tenant,
          clients[i].user->seal(tensor_bytes(inputs.back()))));
    }
    const auto moved = clients[i].start_migrate(server, targets[i]);
    if (moved.tenant != clients[i].tenant) {
      ++failures;
      return;
    }
    for (std::size_t r = 0; r < kParked; ++r) {
      if (futures[r].wait_for(std::chrono::seconds(30)) !=
          std::future_status::ready) {
        ++failures;
        return;
      }
      const InferenceResult result = futures[r].get();
      if (result.outcome != RequestOutcome::kOk) {
        ++failures;
        return;
      }
      const auto output = clients[i].user->open_output(result.sealed_output);
      if (!output || *output != host::reference_run(net, inputs[r])) {
        ++failures;
        return;
      }
    }
    if (!clients[i].finish_migrate(server, moved)) ++failures;
  };

  std::thread t0(migrate_one, 0);
  std::thread t1(migrate_one, 1);
  t0.join();
  t1.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(server.stats().migrations, 2u);
  EXPECT_EQ(server.tenant_session(clients[0].tenant).first, targets[0]);
  EXPECT_EQ(server.tenant_session(clients[1].tenant).first, targets[1]);
}

// --- Hot spares --------------------------------------------------------------

TEST(HotSpares, PromotionRestoresAdmissionBudgetAndServesDisplacedTenants) {
  Env env;
  ServerConfig config;
  config.num_devices = 2;
  config.num_spare_devices = 1;
  config.num_workers = 2;
  config.max_pending_bytes = 1 << 20;  // explicit budget → exact math
  InferenceServer server = env.make(config);

  // Spares are fabricated but invisible: not routable, not counted against
  // the admission budget.
  EXPECT_EQ(server.device_count(), 3u);
  EXPECT_EQ(server.primary_device_count(), 2u);
  EXPECT_EQ(server.standby_device_count(), 1u);
  EXPECT_EQ(server.routable_device_count(), 2u);
  EXPECT_EQ(server.admission_byte_budget(), std::size_t{1} << 20);

  const FuncNetwork net = small_cnn(11700);
  TenantClient client;
  ASSERT_TRUE(client.connect(server, env.ca.public_key(), 11701));
  ASSERT_TRUE(client.load(server, net));
  EXPECT_LT(client.device_index, 2u) << "standby spare must never take traffic";
  const std::size_t doomed = client.device_index;
  const std::size_t survivor = 1 - doomed;

  store::ContentId content{};
  ASSERT_EQ(server.seal_tenant_model(client.tenant,
                                     host::serialize_descriptor(net), content),
            DeviceStatus::kOk);
  ASSERT_EQ(server.replicate_model(content, survivor), DeviceStatus::kOk);

  // Kill a primary: the monitor fails the tenant over, then notices the
  // routable fleet fell below the floor and promotes the spare — pre-warmed
  // with the displaced tenant's sealed replica — restoring the full budget.
  server.faults().kill(doomed);
  ASSERT_TRUE(eventually([&] { return server.stats().spare_promotions == 1; },
                         30000))
      << "spare never promoted";
  EXPECT_TRUE(eventually([&] {
    return server.routable_device_count() == 2 &&
           server.admission_byte_budget() == (std::size_t{1} << 20);
  })) << "promotion must restore the admission byte budget (budget "
      << server.admission_byte_budget() << ")";
  EXPECT_EQ(server.standby_device_count(), 0u);
  // The spare was pre-warmed with the displaced tenant's model replica.
  EXPECT_TRUE(server.model_store().contains(content, server.device_binding(2)));

  ASSERT_TRUE(eventually([&] { return server.failover_pending(client.tenant); }));
  const auto resumed = client.reconnect(server);
  ASSERT_EQ(resumed.tenant, client.tenant);
  EXPECT_TRUE(resumed.model_restored);
  const functional::Tensor input = random_input(net, 11750);
  const InferenceResult result =
      server.submit(client.tenant, client.user->seal(tensor_bytes(input)));
  ASSERT_EQ(result.outcome, RequestOutcome::kOk) << outcome_name(result.outcome);
  const auto output = client.user->open_output(result.sealed_output);
  ASSERT_TRUE(output.has_value());
  EXPECT_EQ(*output, host::reference_run(net, input));
}

TEST(HotSpares, ReinstateWithPromotedSpareNeverOverscalesBudget) {
  // Regression pin: the admission budget divides by the *primary* fleet and
  // caps at the configured value. Reinstating the failed primary while the
  // promoted spare is routable gives routable > primary — the budget must
  // restore to exactly the full-fleet value, never 1.5× it.
  Env env;
  ServerConfig config;
  config.num_devices = 2;
  config.num_spare_devices = 1;
  config.num_workers = 1;
  config.max_pending_bytes = 1 << 20;
  InferenceServer server = env.make(config);

  server.faults().kill(0);
  ASSERT_TRUE(eventually([&] { return server.stats().spare_promotions == 1; },
                         30000));
  ASSERT_TRUE(eventually([&] { return server.routable_device_count() == 2; }));

  server.faults().revive(0);
  ASSERT_EQ(server.reinstate_device(0), DeviceStatus::kOk);
  EXPECT_EQ(server.routable_device_count(), 3u);
  EXPECT_EQ(server.admission_byte_budget(), std::size_t{1} << 20)
      << "budget must cap at the configured full-fleet value";
}

TEST(Provisioning, TeardownDuringReplicationNeverLeaksPairLocks) {
  // Regression pin: killing a device and disconnecting the sealing tenant
  // while replications are in flight must leave every per-device
  // provisioning lock released — later re-wraps between any pair (including
  // ones involving the reinstated device) complete instead of deadlocking.
  Env env;
  ServerConfig config;
  config.num_devices = 3;
  config.num_workers = 1;
  InferenceServer server = env.make(config);

  const FuncNetwork net = small_cnn(11800);
  TenantClient client;
  ASSERT_TRUE(client.connect(server, env.ca.public_key(), 11801));
  ASSERT_TRUE(client.load(server, net));
  const std::size_t home = client.device_index;
  store::ContentId content{};
  ASSERT_EQ(server.seal_tenant_model(client.tenant,
                                     host::serialize_descriptor(net), content),
            DeviceStatus::kOk);

  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < 3; ++t) {
    threads.emplace_back([&, t] {
      while (!stop.load(std::memory_order_relaxed)) {
        // Erase + re-replicate in a loop so the handshake actually runs
        // (a contains() hit short-circuits it).
        const std::size_t target = (home + 1 + t % 2) % 3;
        server.replicate_model(content, target);
        server.model_store().erase(content, server.device_binding(target));
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  server.faults().kill(home);  // source dies mid-storm
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  server.disconnect(client.tenant);  // teardown races the replications
  stop.store(true, std::memory_order_relaxed);
  for (auto& thread : threads) thread.join();

  // Every pair lock must be free: a fresh tenant can seal and fan its model
  // out across the surviving pair, and to the reinstated device, without
  // wedging. (A leaked provision_mu would hang this and trip the timeout.)
  server.faults().revive(home);
  ASSERT_EQ(server.reinstate_device(home), DeviceStatus::kOk);
  TenantClient fresh;
  ASSERT_TRUE(fresh.connect(server, env.ca.public_key(), 11820));
  ASSERT_TRUE(fresh.load(server, net));
  store::ContentId fresh_content{};
  ASSERT_EQ(server.seal_tenant_model(fresh.tenant,
                                     host::serialize_descriptor(net),
                                     fresh_content),
            DeviceStatus::kOk);
  for (std::size_t d = 0; d < 3; ++d)
    EXPECT_EQ(server.replicate_model(fresh_content, d), DeviceStatus::kOk)
        << "replication to device " << d << " wedged or failed";
}

// --- Chaos: the migration storm acceptance workload --------------------------

TEST(Chaos, MigrationStormUnderLoadAndFaultsResolvesEveryFuture) {
  // The acceptance invariant, run under ThreadSanitizer in CI: 8 tenants
  // submit Poisson-ish load from 8 threads while each repeatedly migrates
  // itself between devices, a fault thread injects transient bursts, and one
  // device is killed mid-storm. 100% of futures must resolve, every kOk
  // output must be bit-identical to the single-device golden, and the
  // admission counters must drain to zero.
  constexpr std::size_t kTenants = 8;
  constexpr std::size_t kRounds = 6;
  constexpr std::size_t kPerRound = 4;
  Env env;
  ServerConfig config;
  config.num_devices = 3;
  config.num_workers = 4;
  config.max_pending_per_tenant = 64;
  config.emulate_device_latency = true;
  config.device_latency_scale = 10.0;
  InferenceServer server = env.make(config);

  const FuncNetwork net = small_cnn(12000);
  std::array<TenantClient, kTenants> clients;
  for (std::size_t i = 0; i < kTenants; ++i) {
    ASSERT_TRUE(clients[i].connect(server, env.ca.public_key(), 12010 + i));
    ASSERT_TRUE(clients[i].load(server, net));
    // Every tenant records a sealed replica so a degraded migration can
    // always resume with its model restored; replicas fan out to the fleet
    // up front (content-addressed: 8 seals dedup to one blob per device).
    store::ContentId content{};
    ASSERT_EQ(server.seal_tenant_model(clients[i].tenant,
                                       host::serialize_descriptor(net),
                                       content),
              DeviceStatus::kOk);
    for (std::size_t d = 0; d < 3; ++d)
      ASSERT_EQ(server.replicate_model(content, d), DeviceStatus::kOk);
  }

  std::atomic<std::size_t> submitted{0};
  std::atomic<std::size_t> resolved{0};
  std::atomic<std::size_t> hung{0};
  std::atomic<std::size_t> corrupt{0};
  std::atomic<std::size_t> unexpected{0};
  std::atomic<std::size_t> completed_migrations{0};

  struct Pending {
    std::future<InferenceResult> future;
    functional::Tensor input;
  };

  auto tenant_main = [&](std::size_t index) {
    TenantClient& client = clients[index];
    Xoshiro256 rng(12100 + index);
    std::vector<Pending> outstanding;
    // Harvest every outstanding future. Must run BEFORE any re-key: kOk
    // outputs are sealed under the keys their requests were submitted with.
    auto harvest = [&] {
      for (Pending& pending : outstanding) {
        if (pending.future.wait_for(std::chrono::seconds(30)) !=
            std::future_status::ready) {
          ++hung;
          continue;
        }
        const InferenceResult result = pending.future.get();
        ++resolved;
        switch (result.outcome) {
          case RequestOutcome::kOk: {
            const auto output = client.user->open_output(result.sealed_output);
            if (!output || *output != host::reference_run(net, pending.input))
              ++corrupt;
            break;
          }
          case RequestOutcome::kDeviceFailover:
          case RequestOutcome::kTimeout:
          case RequestOutcome::kQueueFull:
          case RequestOutcome::kBackpressure:
          case RequestOutcome::kNoTenant:
          case RequestOutcome::kNoModel:
            break;
          case RequestOutcome::kDeviceError:
            if (result.device_status != DeviceStatus::kNoSession) ++unexpected;
            break;
          default:
            ++unexpected;
        }
      }
      outstanding.clear();
    };

    for (std::size_t round = 0; round < kRounds; ++round) {
      for (std::size_t r = 0; r < kPerRound; ++r) {
        Pending pending{
            {}, random_input(net, 12200 + 64 * index + 8 * round + r)};
        pending.future = server.submit_async(
            client.tenant, client.user->seal(tensor_bytes(pending.input)));
        ++submitted;
        outstanding.push_back(std::move(pending));
        // Poisson-ish arrivals: exponential-ish gaps via a geometric coin.
        if (rng.next_below(2) == 0)
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      if (round % 2 == 1) {
        // Migrate self to a random *other* device. The replay resolves
        // everything outstanding before the call returns; harvest under the
        // old keys, then re-key.
        const std::size_t here = server.tenant_session(client.tenant).first;
        const std::size_t target =
            (here + 1 + rng.next_below(2)) % config.num_devices;
        const auto moved = client.start_migrate(server, target);
        harvest();
        if (moved.tenant == client.tenant) {
          ++completed_migrations;
          if (!client.finish_migrate(server, moved)) return;
        } else if (server.failover_pending(client.tenant)) {
          // Source died mid-move: the crash path took over. Resume.
          const auto resumed = client.reconnect(server);
          if (resumed.tenant == 0) return;  // no capacity left — done
          if (!resumed.model_restored && !client.load(server, net)) return;
        }
        // Aborted with the source alive: keys unchanged, keep submitting.
      }
    }
    harvest();
  };

  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < kTenants; ++i)
    threads.emplace_back(tenant_main, i);

  // Fault storm: transient integrity bursts, then one fail-stop death.
  std::thread chaos([&] {
    Xoshiro256 rng(12300);
    for (int burst = 0; burst < 4; ++burst) {
      std::this_thread::sleep_for(std::chrono::milliseconds(8));
      server.faults().script_integrity_burst(rng.next_below(3), 1);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    server.faults().kill(2);
  });
  for (auto& thread : threads) thread.join();
  chaos.join();

  EXPECT_EQ(hung.load(), 0u) << "futures hung during the migration storm";
  EXPECT_EQ(resolved.load(), submitted.load())
      << "every admitted request must resolve its promise";
  EXPECT_EQ(corrupt.load(), 0u)
      << "post-migration outputs must be bit-identical to the golden";
  EXPECT_EQ(unexpected.load(), 0u);
  EXPECT_GE(completed_migrations.load(), 1u)
      << "the storm never completed a migration — not exercising the tentpole";
  EXPECT_TRUE(eventually([&] {
    return server.pending_requests() == 0 && server.pending_bytes() == 0;
  }));
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.migrations, completed_migrations.load());

  // Post-storm: every still-live tenant serves bit-identical outputs on
  // whatever device it ended up on.
  std::size_t live = 0;
  for (std::size_t i = 0; i < kTenants; ++i) {
    if (clients[i].tenant == 0) continue;
    const functional::Tensor input = random_input(net, 12400 + i);
    const InferenceResult result = server.submit(
        clients[i].tenant, clients[i].user->seal(tensor_bytes(input)));
    if (result.outcome != RequestOutcome::kOk) continue;
    ++live;
    const auto output = clients[i].user->open_output(result.sealed_output);
    ASSERT_TRUE(output.has_value()) << "tenant " << i;
    EXPECT_EQ(*output, host::reference_run(net, input)) << "tenant " << i;
  }
  EXPECT_GE(live, 1u) << "no tenant survived the storm";
}

}  // namespace
}  // namespace guardnn::serving
