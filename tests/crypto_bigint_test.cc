#include <gtest/gtest.h>

#include "common/rng.h"
#include "crypto/bigint.h"

namespace guardnn::crypto {
namespace {

U256 random_u256(guardnn::Xoshiro256& rng) {
  U256 v;
  for (auto& limb : v.limb) limb = rng.next();
  return v;
}

TEST(U256, HexRoundTrip) {
  const U256 v = U256::from_hex("deadbeef00000000000000000000000000000000000000000000000012345678");
  EXPECT_EQ(v.to_hex(),
            "deadbeef00000000000000000000000000000000000000000000000012345678");
  EXPECT_EQ(v.limb[0], 0x12345678u);
  EXPECT_EQ(v.limb[3], 0xdeadbeef00000000ULL);
}

TEST(U256, BytesRoundTrip) {
  guardnn::Xoshiro256 rng(1);
  for (int i = 0; i < 20; ++i) {
    const U256 v = random_u256(rng);
    EXPECT_EQ(U256::from_bytes(v.to_bytes()), v);
  }
}

TEST(U256, CmpOrdering) {
  const U256 a = U256::from_u64(5);
  const U256 b = U256::from_u64(9);
  U256 big;
  big.limb[3] = 1;
  EXPECT_EQ(cmp(a, b), -1);
  EXPECT_EQ(cmp(b, a), 1);
  EXPECT_EQ(cmp(a, a), 0);
  EXPECT_EQ(cmp(big, b), 1);
}

TEST(U256, AddSubInverse) {
  guardnn::Xoshiro256 rng(2);
  for (int i = 0; i < 100; ++i) {
    const U256 a = random_u256(rng);
    const U256 b = random_u256(rng);
    U256 s, d;
    const u64 carry = add(s, a, b);
    const u64 borrow = sub(d, s, b);
    // (a + b) - b == a, modulo 2^256 carry behaviour.
    EXPECT_EQ(d, a);
    EXPECT_EQ(borrow, carry);
  }
}

TEST(U256, AddCarryOut) {
  U256 max;
  max.limb.fill(~0ULL);
  U256 s;
  EXPECT_EQ(add(s, max, U256::one()), 1u);
  EXPECT_TRUE(s.is_zero());
}

TEST(U256, SubBorrowOut) {
  U256 d;
  EXPECT_EQ(sub(d, U256::zero(), U256::one()), 1u);
  U256 max;
  max.limb.fill(~0ULL);
  EXPECT_EQ(d, max);
}

TEST(U256, Shr1) {
  const U256 v = U256::from_hex("8000000000000000000000000000000000000000000000000000000000000001");
  const U256 half = shr1(v);
  EXPECT_EQ(half.to_hex(),
            "4000000000000000000000000000000000000000000000000000000000000000");
}

TEST(U256, BitLength) {
  EXPECT_EQ(U256::zero().bit_length(), 0);
  EXPECT_EQ(U256::one().bit_length(), 1);
  EXPECT_EQ(U256::from_u64(0xff).bit_length(), 8);
  U256 top;
  top.limb[3] = 1ULL << 63;
  EXPECT_EQ(top.bit_length(), 256);
}

TEST(MulWide, SmallKnownProduct) {
  const U512 p = mul_wide(U256::from_u64(0xffffffffffffffffULL),
                          U256::from_u64(0xffffffffffffffffULL));
  // (2^64-1)^2 = 2^128 - 2^65 + 1
  EXPECT_EQ(p.limb[0], 1u);
  EXPECT_EQ(p.limb[1], 0xfffffffffffffffeULL);
  EXPECT_EQ(p.limb[2], 0u);
}

TEST(MulWide, Commutative) {
  guardnn::Xoshiro256 rng(3);
  for (int i = 0; i < 50; ++i) {
    const U256 a = random_u256(rng);
    const U256 b = random_u256(rng);
    EXPECT_EQ(mul_wide(a, b).limb, mul_wide(b, a).limb);
  }
}

TEST(ModReduce, ResultBelowModulus) {
  guardnn::Xoshiro256 rng(4);
  const U256 m = U256::from_hex(
      "ffffffff00000001000000000000000000000000ffffffffffffffffffffffff");
  for (int i = 0; i < 50; ++i) {
    const U512 x = mul_wide(random_u256(rng), random_u256(rng));
    const U256 r = mod_reduce(x, m);
    EXPECT_LT(cmp(r, m), 0);
  }
}

TEST(ModReduce, SmallExamples) {
  U512 x;
  x.limb[0] = 17;
  EXPECT_EQ(mod_reduce(x, U256::from_u64(5)), U256::from_u64(2));
  x.limb[0] = 4;
  EXPECT_EQ(mod_reduce(x, U256::from_u64(5)), U256::from_u64(4));
}

TEST(ModReduce, RejectsZeroModulus) {
  U512 x;
  EXPECT_THROW(mod_reduce(x, U256::zero()), std::invalid_argument);
}

class ModArithTest : public ::testing::TestWithParam<u64> {};

TEST_P(ModArithTest, FieldAxiomsSampled) {
  guardnn::Xoshiro256 rng(GetParam());
  const U256 m = U256::from_hex(
      "ffffffff00000000ffffffffffffffffbce6faada7179e84f3b9cac2fc632551");
  auto reduce1 = [&](const U256& v) {
    U512 w;
    for (int i = 0; i < 4; ++i) w.limb[i] = v.limb[i];
    return mod_reduce(w, m);
  };
  const U256 a = reduce1(random_u256(rng));
  const U256 b = reduce1(random_u256(rng));
  const U256 c = reduce1(random_u256(rng));

  // Commutativity and associativity.
  EXPECT_EQ(add_mod(a, b, m), add_mod(b, a, m));
  EXPECT_EQ(mul_mod(a, b, m), mul_mod(b, a, m));
  EXPECT_EQ(add_mod(add_mod(a, b, m), c, m), add_mod(a, add_mod(b, c, m), m));
  EXPECT_EQ(mul_mod(mul_mod(a, b, m), c, m), mul_mod(a, mul_mod(b, c, m), m));
  // Distributivity.
  EXPECT_EQ(mul_mod(a, add_mod(b, c, m), m),
            add_mod(mul_mod(a, b, m), mul_mod(a, c, m), m));
  // Additive inverse.
  EXPECT_TRUE(sub_mod(a, a, m).is_zero());
  EXPECT_EQ(add_mod(sub_mod(a, b, m), b, m), a);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ModArithTest,
                         ::testing::Values(10, 11, 12, 13, 14, 15, 16, 17));

TEST(PowMod, SmallCases) {
  const U256 m = U256::from_u64(1000000007ULL);
  EXPECT_EQ(pow_mod(U256::from_u64(2), U256::from_u64(10), m), U256::from_u64(1024));
  EXPECT_EQ(pow_mod(U256::from_u64(3), U256::zero(), m), U256::one());
}

TEST(PowMod, FermatLittleTheorem) {
  // a^(p-1) == 1 mod p for prime p and gcd(a,p)=1.
  const U256 p = U256::from_hex(
      "ffffffff00000001000000000000000000000000ffffffffffffffffffffffff");
  U256 e;
  sub(e, p, U256::one());
  guardnn::Xoshiro256 rng(6);
  for (int i = 0; i < 5; ++i) {
    U512 w;
    for (int j = 0; j < 4; ++j) w.limb[j] = rng.next();
    U256 a = mod_reduce(w, p);
    if (a.is_zero()) a = U256::one();
    EXPECT_EQ(pow_mod(a, e, p), U256::one());
  }
}

TEST(InvMod, InverseTimesSelfIsOne) {
  const U256 p = U256::from_hex(
      "ffffffff00000001000000000000000000000000ffffffffffffffffffffffff");
  guardnn::Xoshiro256 rng(7);
  for (int i = 0; i < 5; ++i) {
    U512 w;
    for (int j = 0; j < 4; ++j) w.limb[j] = rng.next();
    U256 a = mod_reduce(w, p);
    if (a.is_zero()) a = U256::from_u64(2);
    const U256 inv = inv_mod_prime(a, p);
    EXPECT_EQ(mul_mod(a, inv, p), U256::one());
  }
}

TEST(InvMod, RejectsZero) {
  EXPECT_THROW(inv_mod_prime(U256::zero(), U256::from_u64(7)), std::invalid_argument);
}

}  // namespace
}  // namespace guardnn::crypto
