// Private training step on the GuardNN device: a full forward + backward +
// SGD update over the ISA, compared bit-exactly against a user-side
// plaintext reference. Exercises the paper's training story (Section II-A,
// Figure 2b): gradients live in protected memory with feature VNs, and the
// on-device weight update bumps CTR_W.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "functional/train_ops.h"
#include "host/scheduler.h"
#include "host/user_client.h"

namespace guardnn::host {
namespace {

using accel::DeviceStatus;
using accel::ForwardOp;

constexpr u64 kWBase = 0x0;
constexpr u64 kXAddr = 0x4000'0000ULL;
constexpr u64 kF0 = 0x4800'0000ULL;   // fc1 pre-activation
constexpr u64 kF1 = 0x4880'0000ULL;   // relu output
constexpr u64 kF2 = 0x4900'0000ULL;   // logits
constexpr u64 kDy = 0x4980'0000ULL;   // loss gradient (imported)
constexpr u64 kDa1 = 0x4A00'0000ULL;  // grad wrt relu output
constexpr u64 kDh1 = 0x4A80'0000ULL;  // grad wrt fc1 pre-activation
constexpr u64 kGradBlob = 0x4B00'0000ULL;  // dW blob, same layout as weights

struct TrainBench {
  accel::UntrustedMemory memory;
  crypto::HmacDrbg ca_drbg{Bytes{0x51}};
  crypto::ManufacturerCa ca{ca_drbg};
  accel::GuardNnDevice device{"train-dev", ca, memory, Bytes{0x52}};
  RemoteUser user{ca.public_key(), Bytes{0x53}};

  // 4 -> 6 -> 3 MLP, one weight blob (fc1 at offset 0, fc2 at offset 512).
  static constexpr int kIn = 4, kHidden = 6, kOut = 3;
  static constexpr int kShift = 3;     // forward requant shift
  static constexpr int kGradShift = 4; // backward requant shift
  static constexpr int kLrShift = 3;   // SGD learning-rate shift

  functional::FcWeights w1{kHidden, kIn};
  functional::FcWeights w2{kOut, kHidden};
  std::vector<i8> x = std::vector<i8>(kIn);

  TrainBench() {
    Xoshiro256 rng(55);
    auto fill = [&](std::vector<i8>& v) {
      for (auto& e : v)
        e = static_cast<i8>(static_cast<int>(rng.next_below(17)) - 8);
    };
    fill(w1.data);
    fill(w2.data);
    fill(x);
  }

  Bytes weight_blob() const {
    Bytes blob(1024, 0);
    std::copy(w1.data.begin(), w1.data.end(),
              reinterpret_cast<i8*>(blob.data()));
    std::copy(w2.data.begin(), w2.data.end(),
              reinterpret_cast<i8*>(blob.data() + 512));
    return blob;
  }

  bool establish() {
    if (!user.attest_device(device.get_pk())) return false;
    return user.complete_session(device.init_session(user.begin_session(), true));
  }

  /// Reference: the full quantized training step in plaintext.
  struct Reference {
    std::vector<i8> h1, a1, y, dy, da1, dh1;
    functional::FcWeights dw1{kHidden, kIn}, dw2{kOut, kHidden};
    Bytes updated_blob;
  };

  Reference reference_step() const {
    using namespace functional;
    Reference r;
    r.h1 = fully_connected(x, w1, kShift, 8);
    r.a1 = r.h1;
    for (auto& v : r.a1) v = std::max<i8>(v, 0);
    r.y = fully_connected(r.a1, w2, kShift, 8);
    // Loss gradient: dy = y - target with target = 0 (toy).
    r.dy = r.y;
    // Backward.
    r.da1 = fc_backward_input(r.dy, w2, kGradShift, 8);
    r.dh1 = r.da1;
    for (std::size_t i = 0; i < r.dh1.size(); ++i)
      if (r.h1[i] <= 0) r.dh1[i] = 0;
    r.dw2 = fc_backward_weights(r.dy, r.a1, kGradShift, 8);
    r.dw1 = fc_backward_weights(r.dh1, x, kGradShift, 8);
    // SGD over the blob layout.
    FcWeights w1_new = w1, w2_new = w2;
    sgd_update(w1_new.data, r.dw1.data, kLrShift, 8);
    sgd_update(w2_new.data, r.dw2.data, kLrShift, 8);
    r.updated_blob.assign(1024, 0);
    std::copy(w1_new.data.begin(), w1_new.data.end(),
              reinterpret_cast<i8*>(r.updated_blob.data()));
    std::copy(w2_new.data.begin(), w2_new.data.end(),
              reinterpret_cast<i8*>(r.updated_blob.data() + 512));
    return r;
  }
};

TEST(DeviceTraining, FullStepMatchesReference) {
  TrainBench bench;
  ASSERT_TRUE(bench.establish());
  auto& dev = bench.device;
  auto& user = bench.user;

  // Import model + input.
  ASSERT_EQ(dev.set_weight(user.seal(bench.weight_blob()), kWBase),
            DeviceStatus::kOk);
  const Bytes x_bytes(reinterpret_cast<const u8*>(bench.x.data()),
                      reinterpret_cast<const u8*>(bench.x.data()) + bench.x.size());
  ASSERT_EQ(dev.set_input(user.seal(x_bytes), kXAddr), DeviceStatus::kOk);

  const u64 in1 = 1ULL << 32;  // CTR_IN = 1

  // Forward: fc1 -> h1, relu -> a1, fc2 -> y.   (write VNs: in1|0,1,2)
  ForwardOp fc1;
  fc1.kind = ForwardOp::Kind::kFc;
  fc1.in_c = TrainBench::kIn; fc1.in_h = 1; fc1.in_w = 1;
  fc1.out_c = TrainBench::kHidden;
  fc1.requant_shift = TrainBench::kShift;
  fc1.input_addr = kXAddr; fc1.weight_addr = kWBase; fc1.output_addr = kF0;
  ASSERT_EQ(dev.set_read_ctr(kXAddr, 512, in1 | 0), DeviceStatus::kOk);
  ASSERT_EQ(dev.forward(fc1), DeviceStatus::kOk);

  ForwardOp relu;
  relu.kind = ForwardOp::Kind::kRelu;
  relu.in_c = TrainBench::kHidden; relu.in_h = 1; relu.in_w = 1;
  relu.input_addr = kF0; relu.output_addr = kF1;
  ASSERT_EQ(dev.set_read_ctr(kF0, 512, in1 | 0), DeviceStatus::kOk);
  ASSERT_EQ(dev.forward(relu), DeviceStatus::kOk);

  ForwardOp fc2;
  fc2.kind = ForwardOp::Kind::kFc;
  fc2.in_c = TrainBench::kHidden; fc2.in_h = 1; fc2.in_w = 1;
  fc2.out_c = TrainBench::kOut;
  fc2.requant_shift = TrainBench::kShift;
  fc2.input_addr = kF1; fc2.weight_addr = kWBase + 512; fc2.output_addr = kF2;
  ASSERT_EQ(dev.set_read_ctr(kF1, 512, in1 | 1), DeviceStatus::kOk);
  ASSERT_EQ(dev.forward(fc2), DeviceStatus::kOk);

  // Export logits; user computes the loss gradient and imports it.
  ASSERT_EQ(dev.set_read_ctr(kF2, 512, in1 | 2), DeviceStatus::kOk);
  crypto::SealedRecord sealed;
  ASSERT_EQ(dev.export_output(kF2, TrainBench::kOut, sealed), DeviceStatus::kOk);
  const auto y = user.open_output(sealed);
  ASSERT_TRUE(y.has_value());

  const TrainBench::Reference ref = bench.reference_step();
  const Bytes y_ref(reinterpret_cast<const u8*>(ref.y.data()),
                    reinterpret_cast<const u8*>(ref.y.data()) + ref.y.size());
  EXPECT_EQ(*y, y_ref);

  // dy = y (target 0), imported as a new encrypted input. CTR_IN -> 2.
  ASSERT_EQ(dev.set_input(user.seal(*y), kDy), DeviceStatus::kOk);
  const u64 in2 = 2ULL << 32;

  // Backward: dA1 = W2^T dy   (write VN in2|0)
  ForwardOp fc2_dx;
  fc2_dx.kind = ForwardOp::Kind::kFcDx;
  fc2_dx.in_c = TrainBench::kOut; fc2_dx.in_h = 1; fc2_dx.in_w = 1;
  fc2_dx.aux_c = TrainBench::kHidden; fc2_dx.aux_h = 1; fc2_dx.aux_w = 1;
  fc2_dx.requant_shift = TrainBench::kGradShift;
  fc2_dx.input_addr = kDy; fc2_dx.weight_addr = kWBase + 512;
  fc2_dx.output_addr = kDa1;
  ASSERT_EQ(dev.set_read_ctr(kDy, 512, in2 | 0), DeviceStatus::kOk);
  ASSERT_EQ(dev.forward(fc2_dx), DeviceStatus::kOk);

  // dH1 = relu'(h1) * dA1   (write VN in2|1)
  ForwardOp relu_dx;
  relu_dx.kind = ForwardOp::Kind::kReluDx;
  relu_dx.in_c = TrainBench::kHidden; relu_dx.in_h = 1; relu_dx.in_w = 1;
  relu_dx.aux_c = TrainBench::kHidden; relu_dx.aux_h = 1; relu_dx.aux_w = 1;
  relu_dx.input_addr = kDa1; relu_dx.input2_addr = kF0;
  relu_dx.output_addr = kDh1;
  ASSERT_EQ(dev.set_read_ctr(kDa1, 512, in2 | 0), DeviceStatus::kOk);
  ASSERT_EQ(dev.set_read_ctr(kF0, 512, in1 | 0), DeviceStatus::kOk);
  ASSERT_EQ(dev.forward(relu_dx), DeviceStatus::kOk);

  // dW2 = dy a1^T -> grad blob offset 512   (write VN in2|2)
  ForwardOp fc2_dw;
  fc2_dw.kind = ForwardOp::Kind::kFcDw;
  fc2_dw.in_c = TrainBench::kOut; fc2_dw.in_h = 1; fc2_dw.in_w = 1;
  fc2_dw.aux_c = TrainBench::kHidden; fc2_dw.aux_h = 1; fc2_dw.aux_w = 1;
  fc2_dw.requant_shift = TrainBench::kGradShift;
  fc2_dw.input_addr = kDy; fc2_dw.input2_addr = kF1;
  fc2_dw.output_addr = kGradBlob + 512;
  ASSERT_EQ(dev.set_read_ctr(kDy, 512, in2 | 0), DeviceStatus::kOk);
  ASSERT_EQ(dev.set_read_ctr(kF1, 512, in1 | 1), DeviceStatus::kOk);
  ASSERT_EQ(dev.forward(fc2_dw), DeviceStatus::kOk);

  // dW1 = dH1 x^T -> grad blob offset 0   (write VN in2|3)
  ForwardOp fc1_dw;
  fc1_dw.kind = ForwardOp::Kind::kFcDw;
  fc1_dw.in_c = TrainBench::kHidden; fc1_dw.in_h = 1; fc1_dw.in_w = 1;
  fc1_dw.aux_c = TrainBench::kIn; fc1_dw.aux_h = 1; fc1_dw.aux_w = 1;
  fc1_dw.requant_shift = TrainBench::kGradShift;
  fc1_dw.input_addr = kDh1; fc1_dw.input2_addr = kXAddr;
  fc1_dw.output_addr = kGradBlob;
  ASSERT_EQ(dev.set_read_ctr(kDh1, 512, in2 | 1), DeviceStatus::kOk);
  ASSERT_EQ(dev.set_read_ctr(kXAddr, 512, in1 | 0), DeviceStatus::kOk);
  ASSERT_EQ(dev.forward(fc1_dw), DeviceStatus::kOk);

  // SGD update over the whole blob; per-range gradient read counters.
  ForwardOp update;
  update.kind = ForwardOp::Kind::kSgdUpdate;
  update.in_c = 1024; update.in_h = 1; update.in_w = 1;
  update.requant_shift = TrainBench::kLrShift;
  update.input_addr = kGradBlob;
  update.weight_addr = kWBase;
  ASSERT_EQ(dev.set_read_ctr(kGradBlob, 512, in2 | 3), DeviceStatus::kOk);
  ASSERT_EQ(dev.set_read_ctr(kGradBlob + 512, 512, in2 | 2), DeviceStatus::kOk);
  EXPECT_EQ(dev.vn_generator().ctr_w(), 1u);
  ASSERT_EQ(dev.forward(update), DeviceStatus::kOk);
  EXPECT_EQ(dev.vn_generator().ctr_w(), 2u);

  // Export the fine-tuned model back to the user (weights read with the new
  // CTR_W, which the host mirrors).
  ASSERT_EQ(dev.set_read_ctr(kWBase, 1024, 2), DeviceStatus::kOk);
  ASSERT_EQ(dev.export_output(kWBase, 1024, sealed), DeviceStatus::kOk);
  const auto updated = user.open_output(sealed);
  ASSERT_TRUE(updated.has_value());
  EXPECT_EQ(*updated, ref.updated_blob)
      << "on-device training step must match the plaintext reference";
}


TEST(DeviceTraining, ConvBackwardOpsMatchReference) {
  // Conv gradient instructions (kConvDx / kConvDw) against the plaintext
  // operators, through protected memory.
  accel::UntrustedMemory memory;
  crypto::HmacDrbg ca_drbg(Bytes{0x54});
  crypto::ManufacturerCa ca(ca_drbg);
  accel::GuardNnDevice dev("conv-train", ca, memory, Bytes{0x55});
  RemoteUser user(ca.public_key(), Bytes{0x56});
  ASSERT_TRUE(user.attest_device(dev.get_pk()));
  ASSERT_TRUE(user.complete_session(dev.init_session(user.begin_session(), true)));

  // Geometry: 2x6x6 input, 3 output channels, 3x3 kernel, stride 1, pad 1.
  const int ic = 2, hw = 6, oc = 3, k = 3;
  Xoshiro256 rng(77);
  functional::ConvWeights w(oc, ic, k);
  for (auto& v : w.data)
    v = static_cast<i8>(static_cast<int>(rng.next_below(9)) - 4);
  functional::Tensor x(ic, hw, hw);
  for (auto& v : x.data())
    v = static_cast<i8>(static_cast<int>(rng.next_below(9)) - 4);
  functional::Tensor dy(oc, hw, hw);
  for (auto& v : dy.data())
    v = static_cast<i8>(static_cast<int>(rng.next_below(9)) - 4);

  // Import weights (blob), x (input 1), dy (input 2).
  Bytes wblob(512, 0);
  std::copy(w.data.begin(), w.data.end(), reinterpret_cast<i8*>(wblob.data()));
  ASSERT_EQ(dev.set_weight(user.seal(wblob), kWBase), DeviceStatus::kOk);
  const Bytes x_bytes(x.bytes().begin(), x.bytes().end());
  ASSERT_EQ(dev.set_input(user.seal(x_bytes), kXAddr), DeviceStatus::kOk);
  const Bytes dy_bytes(dy.bytes().begin(), dy.bytes().end());
  ASSERT_EQ(dev.set_input(user.seal(dy_bytes), kDy), DeviceStatus::kOk);

  // kConvDx: dX from dY and W.
  ForwardOp conv_dx;
  conv_dx.kind = ForwardOp::Kind::kConvDx;
  conv_dx.in_c = oc; conv_dx.in_h = hw; conv_dx.in_w = hw;
  conv_dx.aux_c = ic; conv_dx.aux_h = hw; conv_dx.aux_w = hw;
  conv_dx.kernel = k; conv_dx.stride = 1; conv_dx.pad = 1;
  conv_dx.requant_shift = 2;
  conv_dx.input_addr = kDy; conv_dx.weight_addr = kWBase;
  conv_dx.output_addr = kDh1;
  ASSERT_EQ(dev.set_read_ctr(kDy, 512, 2ULL << 32), DeviceStatus::kOk);
  ASSERT_EQ(dev.forward(conv_dx), DeviceStatus::kOk);

  // kConvDw: dW from dY and x.
  ForwardOp conv_dw;
  conv_dw.kind = ForwardOp::Kind::kConvDw;
  conv_dw.in_c = oc; conv_dw.in_h = hw; conv_dw.in_w = hw;
  conv_dw.aux_c = ic; conv_dw.aux_h = hw; conv_dw.aux_w = hw;
  conv_dw.kernel = k; conv_dw.stride = 1; conv_dw.pad = 1;
  conv_dw.requant_shift = 4;
  conv_dw.input_addr = kDy; conv_dw.input2_addr = kXAddr;
  conv_dw.output_addr = kGradBlob;
  ASSERT_EQ(dev.set_read_ctr(kDy, 512, 2ULL << 32), DeviceStatus::kOk);
  ASSERT_EQ(dev.set_read_ctr(kXAddr, 512, 1ULL << 32), DeviceStatus::kOk);
  ASSERT_EQ(dev.forward(conv_dw), DeviceStatus::kOk);

  // Export and compare against the plaintext operators.
  const functional::Tensor dx_ref =
      functional::conv2d_backward_input(dy, w, hw, hw, 1, 1, 2);
  ASSERT_EQ(dev.set_read_ctr(kDh1, 512, 2ULL << 32), DeviceStatus::kOk);
  crypto::SealedRecord sealed;
  ASSERT_EQ(dev.export_output(kDh1, dx_ref.size(), sealed), DeviceStatus::kOk);
  auto exported = user.open_output(sealed);
  ASSERT_TRUE(exported.has_value());
  EXPECT_EQ(*exported, Bytes(dx_ref.bytes().begin(), dx_ref.bytes().end()));

  const functional::ConvWeights dw_ref =
      functional::conv2d_backward_weights(dy, x, k, 1, 1, 4);
  ASSERT_EQ(dev.set_read_ctr(kGradBlob, 512, (2ULL << 32) | 1),
            DeviceStatus::kOk);
  ASSERT_EQ(dev.export_output(kGradBlob, dw_ref.data.size(), sealed),
            DeviceStatus::kOk);
  exported = user.open_output(sealed);
  ASSERT_TRUE(exported.has_value());
  EXPECT_EQ(*exported, Bytes(dw_ref.bytes().begin(), dw_ref.bytes().end()));
}

TEST(DeviceTraining, MaxPoolBackwardOnDevice) {
  accel::UntrustedMemory memory;
  crypto::HmacDrbg ca_drbg(Bytes{0x57});
  crypto::ManufacturerCa ca(ca_drbg);
  accel::GuardNnDevice dev("pool-train", ca, memory, Bytes{0x58});
  RemoteUser user(ca.public_key(), Bytes{0x59});
  ASSERT_TRUE(user.attest_device(dev.get_pk()));
  ASSERT_TRUE(user.complete_session(dev.init_session(user.begin_session(), true)));

  functional::Tensor x(1, 4, 4), dy(1, 2, 2);
  Xoshiro256 rng(31);
  for (auto& v : x.data())
    v = static_cast<i8>(static_cast<int>(rng.next_below(17)) - 8);
  for (auto& v : dy.data())
    v = static_cast<i8>(static_cast<int>(rng.next_below(7)) - 3);

  const Bytes x_bytes(x.bytes().begin(), x.bytes().end());
  ASSERT_EQ(dev.set_input(user.seal(x_bytes), kXAddr), DeviceStatus::kOk);
  const Bytes dy_bytes(dy.bytes().begin(), dy.bytes().end());
  ASSERT_EQ(dev.set_input(user.seal(dy_bytes), kDy), DeviceStatus::kOk);

  ForwardOp op;
  op.kind = ForwardOp::Kind::kMaxPoolDx;
  op.in_c = 1; op.in_h = 2; op.in_w = 2;
  op.aux_c = 1; op.aux_h = 4; op.aux_w = 4;
  op.kernel = 2; op.stride = 2;
  op.input_addr = kDy; op.input2_addr = kXAddr; op.output_addr = kDh1;
  ASSERT_EQ(dev.set_read_ctr(kDy, 512, 2ULL << 32), DeviceStatus::kOk);
  ASSERT_EQ(dev.set_read_ctr(kXAddr, 512, 1ULL << 32), DeviceStatus::kOk);
  ASSERT_EQ(dev.forward(op), DeviceStatus::kOk);

  const functional::Tensor ref = functional::maxpool_backward(dy, x, 2, 2);
  ASSERT_EQ(dev.set_read_ctr(kDh1, 512, 2ULL << 32), DeviceStatus::kOk);
  crypto::SealedRecord sealed;
  ASSERT_EQ(dev.export_output(kDh1, ref.size(), sealed), DeviceStatus::kOk);
  const auto exported = user.open_output(sealed);
  ASSERT_TRUE(exported.has_value());
  EXPECT_EQ(*exported, Bytes(ref.bytes().begin(), ref.bytes().end()));
}

TEST(DeviceTraining, StaleGradientReplayDetected) {
  // An adversary substituting an old gradient (wrong CTR_F,R epoch) makes
  // the MAC check fail under integrity protection.
  TrainBench bench;
  ASSERT_TRUE(bench.establish());
  auto& dev = bench.device;
  auto& user = bench.user;
  ASSERT_EQ(dev.set_weight(user.seal(bench.weight_blob()), kWBase),
            DeviceStatus::kOk);
  const Bytes x_bytes(reinterpret_cast<const u8*>(bench.x.data()),
                      reinterpret_cast<const u8*>(bench.x.data()) + bench.x.size());
  ASSERT_EQ(dev.set_input(user.seal(x_bytes), kXAddr), DeviceStatus::kOk);

  // The host claims a gradient exists at kGradBlob, but nothing was written
  // there: the MAC over the zero-filled region cannot verify.
  ForwardOp update;
  update.kind = ForwardOp::Kind::kSgdUpdate;
  update.in_c = 1024; update.in_h = 1; update.in_w = 1;
  update.input_addr = kGradBlob;
  update.weight_addr = kWBase;
  ASSERT_EQ(dev.set_read_ctr(kGradBlob, 1024, (1ULL << 32) | 0),
            DeviceStatus::kOk);
  EXPECT_EQ(dev.forward(update), DeviceStatus::kIntegrityFailure);
}

}  // namespace
}  // namespace guardnn::host
