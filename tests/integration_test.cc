// Cross-module integration sweep: every benchmark network through the full
// performance stack (model zoo -> traffic -> protection engines -> DDR4
// calibration) under every protection scheme, checking the global invariants
// the paper's evaluation rests on.
#include <gtest/gtest.h>

#include "dnn/models.h"
#include "sim/perf_model.h"

namespace guardnn::sim {
namespace {

using memprot::Scheme;

const BandwidthCalibration& calib() {
  static const BandwidthCalibration c = BandwidthCalibration::measure(
      dram::DramConfig::ddr4_2400_16gb(), AcceleratorConfig::tpu_like());
  return c;
}

struct NetCase {
  const char* name;
};

class NetworkSweepTest : public ::testing::TestWithParam<NetCase> {};

TEST_P(NetworkSweepTest, SchemeInvariantsHold) {
  const dnn::Network net = dnn::model_by_name(GetParam().name);
  const auto schedule = dnn::inference_schedule(net);
  const SimConfig cfg;

  const RunResult np = simulate(net, schedule, Scheme::kNone, cfg, calib());
  const RunResult c = simulate(net, schedule, Scheme::kGuardNnC, cfg, calib());
  const RunResult ci = simulate(net, schedule, Scheme::kGuardNnCI, cfg, calib());
  const RunResult tnpu = simulate(net, schedule, Scheme::kTnpuLike, cfg, calib());
  const RunResult split =
      simulate(net, schedule, Scheme::kBaselineSplit, cfg, calib());
  const RunResult bp = simulate(net, schedule, Scheme::kBaselineMee, cfg, calib());

  // Cycle ordering: NP <= C <= CI <= TNPU-like and BP_split <= BP.
  EXPECT_LE(np.total_cycles, c.total_cycles);
  EXPECT_LE(c.total_cycles, ci.total_cycles);
  EXPECT_LE(ci.total_cycles, tnpu.total_cycles);
  EXPECT_LE(split.total_cycles, bp.total_cycles);
  EXPECT_LT(ci.total_cycles, bp.total_cycles);

  // Traffic ordering mirrors cycles; NP and GuardNN_C add zero metadata.
  EXPECT_EQ(np.meta_bytes, 0u);
  EXPECT_EQ(c.meta_bytes, 0u);
  EXPECT_LT(ci.meta_bytes, bp.meta_bytes);

  // Paper bands: GuardNN_CI within 10% (DLRM's random gathers are the worst
  // case); BP within 15%..60%.
  const double ci_norm = static_cast<double>(ci.total_cycles) /
                         static_cast<double>(np.total_cycles);
  const double bp_norm = static_cast<double>(bp.total_cycles) /
                         static_cast<double>(np.total_cycles);
  EXPECT_LT(ci_norm, 1.10) << net.name;
  EXPECT_GT(bp_norm, 1.15) << net.name;
  EXPECT_LT(bp_norm, 1.60) << net.name;

  // Every layer accounted for, all with nonzero cycles.
  ASSERT_EQ(np.layers.size(), schedule.size());
  for (const auto& layer : np.layers) EXPECT_GT(layer.total_cycles, 0u);
}

TEST_P(NetworkSweepTest, TrainingInvariantsHold) {
  const dnn::Network net = dnn::model_by_name(GetParam().name);
  if (net.name == "DLRM") GTEST_SKIP() << "DLRM excluded from training (paper)";
  const auto schedule = dnn::training_schedule(net);
  const SimConfig cfg;
  const RunResult np = simulate(net, schedule, Scheme::kNone, cfg, calib());
  const RunResult ci = simulate(net, schedule, Scheme::kGuardNnCI, cfg, calib());
  const RunResult bp = simulate(net, schedule, Scheme::kBaselineMee, cfg, calib());
  EXPECT_LT(ci.total_cycles, bp.total_cycles);
  // Training must cost more than inference for the same scheme.
  const RunResult inf =
      simulate(net, dnn::inference_schedule(net), Scheme::kNone, cfg, calib());
  EXPECT_GT(np.total_cycles, inf.total_cycles);
}

INSTANTIATE_TEST_SUITE_P(
    AllNetworks, NetworkSweepTest,
    ::testing::Values(NetCase{"vgg"}, NetCase{"alexnet"}, NetCase{"googlenet"},
                      NetCase{"resnet"}, NetCase{"mobilenet"}, NetCase{"vit"},
                      NetCase{"bert"}, NetCase{"dlrm"}, NetCase{"wav2vec2"}),
    [](const ::testing::TestParamInfo<NetCase>& info) {
      return std::string(info.param.name);
    });

TEST(BatchSweep, GapPersistsAcrossBatchSizes) {
  // Batching amortizes weight traffic per frame but VGG stays memory-bound
  // (activation traffic scales with the batch), so BP's penalty persists in
  // the 1.2-1.5x band at every batch size while GuardNN_CI stays near 1.0 —
  // and per-frame latency falls monotonically.
  // (Per-frame latency is not asserted: without batch tiling, larger batches
  // can spill the activation SRAM and re-fetch inputs, a real effect.)
  const SimConfig cfg;
  for (int batch : {1, 4, 16}) {
    const dnn::Network net = dnn::batched(dnn::vgg16(), batch);
    const auto schedule = dnn::inference_schedule(net);
    const RunResult np = simulate(net, schedule, Scheme::kNone, cfg, calib());
    const RunResult bp =
        simulate(net, schedule, Scheme::kBaselineMee, cfg, calib());
    const RunResult ci =
        simulate(net, schedule, Scheme::kGuardNnCI, cfg, calib());
    const double bp_norm = static_cast<double>(bp.total_cycles) /
                           static_cast<double>(np.total_cycles);
    const double ci_norm = static_cast<double>(ci.total_cycles) /
                           static_cast<double>(np.total_cycles);
    EXPECT_GT(bp_norm, 1.2) << "batch " << batch;
    EXPECT_LT(bp_norm, 1.5) << "batch " << batch;
    EXPECT_LT(ci_norm, 1.06) << "batch " << batch;
  }
}

TEST(DramGrades, FasterDramLowersAbsoluteTime) {
  const dnn::Network net = dnn::resnet50();
  const auto schedule = dnn::inference_schedule(net);
  u64 prev_cycles = ~0ULL;
  for (const dram::DramConfig& dram_cfg :
       {dram::DramConfig::ddr4_2133_16gb(), dram::DramConfig::ddr4_2400_16gb(),
        dram::DramConfig::ddr4_3200_16gb()}) {
    SimConfig cfg;
    cfg.dram = dram_cfg;
    const BandwidthCalibration c =
        BandwidthCalibration::measure(cfg.dram, cfg.accel);
    const RunResult run = simulate(net, schedule, Scheme::kNone, cfg, c);
    EXPECT_LT(run.total_cycles, prev_cycles) << dram_cfg.name;
    prev_cycles = run.total_cycles;
  }
}

TEST(PrecisionSweep, LowerPrecisionLowersTrafficAndTime) {
  const dnn::Network net = dnn::vgg16();
  const auto schedule = dnn::inference_schedule(net);
  u64 prev_bytes = ~0ULL;
  u64 prev_cycles = ~0ULL;
  for (int bits : {16, 8, 6}) {
    SimConfig cfg;
    cfg.bits = bits;
    const RunResult run =
        simulate(net, schedule, Scheme::kGuardNnCI, cfg, calib());
    EXPECT_LT(run.data_bytes, prev_bytes) << bits;
    EXPECT_LE(run.total_cycles, prev_cycles) << bits;
    prev_bytes = run.data_bytes;
    prev_cycles = run.total_cycles;
  }
}

}  // namespace
}  // namespace guardnn::sim
