#include <gtest/gtest.h>

#include "dnn/models.h"
#include "sim/detailed.h"
#include "sim/perf_model.h"

namespace guardnn::sim {
namespace {

using memprot::Scheme;

struct DetailedFixture {
  dnn::Network net = dnn::alexnet();
  SimConfig cfg;
  AddressLayout layout = build_layout(net, 8);

  DetailedResult run(std::size_t layer_index, Scheme scheme,
                     bool interleave = true) {
    dnn::WorkItem item;
    item.layer = net.layers[layer_index];
    return run_detailed(item, layer_index, layout, cfg.accel, cfg.dram, scheme,
                        8, interleave);
  }
};

TEST(Detailed, RequestCountsMatchTrafficModel) {
  DetailedFixture fx;
  const DetailedResult np = fx.run(0, Scheme::kNone);
  // NP: no metadata at all.
  EXPECT_EQ(np.meta_requests, 0u);
  EXPECT_GT(np.data_requests, 0u);

  const DetailedResult ci = fx.run(0, Scheme::kGuardNnCI);
  EXPECT_GT(ci.meta_requests, 0u);
  EXPECT_EQ(ci.data_requests, np.data_requests);
  // CI metadata is ~1.6% of data for sequential traffic.
  EXPECT_LT(ci.meta_requests, np.data_requests / 16);
}

TEST(Detailed, SchemeOrderingPreserved) {
  DetailedFixture fx;
  for (std::size_t layer : {0u, 2u, 4u}) {
    const u64 np = fx.run(layer, Scheme::kNone).dram_cycles;
    const u64 ci = fx.run(layer, Scheme::kGuardNnCI).dram_cycles;
    const u64 bp = fx.run(layer, Scheme::kBaselineMee).dram_cycles;
    EXPECT_LE(np, ci) << "layer " << layer;
    EXPECT_LT(ci, bp) << "layer " << layer;
  }
}

TEST(Detailed, AgreesWithFastModelWithinTolerance) {
  // The calibrated fast model and the request-accurate replay must agree on
  // unprotected streaming time within 20% (this is the calibration's
  // correctness condition).
  DetailedFixture fx;
  dnn::WorkItem item;
  item.layer = fx.net.layers[4];  // conv3: large enough to be steady-state
  const auto streams = generate_streams(item, 4, fx.layout, fx.cfg.accel, 8);
  u64 bytes = 0;
  for (const auto& s : streams) bytes += (s.bytes + 63) / 64 * 64;

  const BandwidthCalibration calib =
      BandwidthCalibration::measure(fx.cfg.dram, fx.cfg.accel);
  const double fast_ddr_cycles = static_cast<double>(bytes) /
                                 calib.seq_bytes_per_accel_cycle *
                                 fx.cfg.dram.clock_ghz / fx.cfg.accel.clock_ghz;
  const DetailedResult detailed = fx.run(4, Scheme::kNone);
  const double ratio =
      fast_ddr_cycles / static_cast<double>(detailed.dram_cycles);
  EXPECT_GT(ratio, 0.8);
  EXPECT_LT(ratio, 1.25);
}

TEST(Detailed, Deterministic) {
  DetailedFixture fx;
  const DetailedResult a = fx.run(1, Scheme::kBaselineMee);
  const DetailedResult b = fx.run(1, Scheme::kBaselineMee);
  EXPECT_EQ(a.dram_cycles, b.dram_cycles);
  EXPECT_EQ(a.meta_requests, b.meta_requests);
}

TEST(Detailed, InterleavingCostsNoMoreThanBatching) {
  // Batched metadata (idealized) should be no slower than interleaved
  // (realistic); usually faster because of better row locality.
  DetailedFixture fx;
  const DetailedResult interleaved = fx.run(0, Scheme::kBaselineMee, true);
  const DetailedResult batched = fx.run(0, Scheme::kBaselineMee, false);
  EXPECT_LE(batched.dram_cycles, interleaved.dram_cycles + interleaved.dram_cycles / 10);
}

TEST(Detailed, RowHitRateHighForStreaming) {
  DetailedFixture fx;
  const DetailedResult r = fx.run(2, Scheme::kNone);
  EXPECT_GT(r.row_hit_rate, 0.9);
}

}  // namespace
}  // namespace guardnn::sim
