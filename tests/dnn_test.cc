#include <gtest/gtest.h>

#include "dnn/models.h"
#include "dnn/network.h"

namespace guardnn::dnn {
namespace {

TEST(Layer, Conv2dShapes) {
  const LayerSpec l = conv2d("c", 3, 224, 224, 64, 7, 2, 3);
  EXPECT_EQ(l.m, 112u * 112u);
  EXPECT_EQ(l.k, 7u * 7u * 3u);
  EXPECT_EQ(l.n, 64u);
  EXPECT_EQ(l.weight_elems, 7u * 7u * 3u * 64u);
  EXPECT_EQ(l.output_elems, 64u * 112u * 112u);
  EXPECT_EQ(l.macs, l.m * l.k * l.n);
}

TEST(Layer, Conv2dRejectsDegenerate) {
  EXPECT_THROW(conv2d("bad", 3, 4, 4, 8, 7, 1, 0), std::invalid_argument);
}

TEST(Layer, DepthwiseHasPerChannelMacs) {
  const LayerSpec l = depthwise_conv2d("dw", 32, 112, 112, 3, 1, 1);
  EXPECT_EQ(l.macs, 112u * 112u * 9u * 32u);
  EXPECT_EQ(l.weight_elems, 9u * 32u);
}

TEST(Layer, FullyConnected) {
  const LayerSpec l = fully_connected("fc", 4096, 1000);
  EXPECT_EQ(l.macs, 4096u * 1000u);
  EXPECT_EQ(l.weight_elems, 4096u * 1000u);
  EXPECT_EQ(l.m, 1u);
}

TEST(Layer, EmbeddingIsRandomAccess) {
  const LayerSpec l = embedding("e", 128, 64, 1000000);
  EXPECT_TRUE(l.random_access);
  EXPECT_EQ(l.output_elems, 128u * 64u);
  EXPECT_EQ(l.weight_elems, 1000000u * 64u);
}

TEST(Layer, ByteSizesScaleWithPrecision) {
  const LayerSpec l = fully_connected("fc", 1000, 1000);
  EXPECT_EQ(l.weight_bytes(8), 1000000u);
  EXPECT_EQ(l.weight_bytes(6), 750000u);
  EXPECT_EQ(l.weight_bytes(16), 2000000u);
}

// Known parameter counts (within 3%: our graphs omit biases and batch-norm
// scales, which are a <1% contribution).
struct ParamCase {
  const char* name;
  double expected_millions;
};

class ModelParamTest : public ::testing::TestWithParam<ParamCase> {};

TEST_P(ModelParamTest, MatchesPublishedParameterCount) {
  const ParamCase c = GetParam();
  const Network net = model_by_name(c.name);
  const double millions = static_cast<double>(net.total_params()) / 1e6;
  EXPECT_NEAR(millions, c.expected_millions, c.expected_millions * 0.04)
      << net.name << " has " << millions << "M params";
}

INSTANTIATE_TEST_SUITE_P(
    Zoo, ModelParamTest,
    ::testing::Values(ParamCase{"alexnet", 61.0}, ParamCase{"vgg16", 138.0},
                      ParamCase{"googlenet", 6.8}, ParamCase{"resnet50", 25.2},
                      ParamCase{"mobilenet", 4.2}, ParamCase{"vit", 86.0}),
    [](const ::testing::TestParamInfo<ParamCase>& info) {
      return std::string(info.param.name);
    });

TEST(Models, BertParamCountIncludesEmbeddings) {
  const Network net = bert_base();
  const double millions = static_cast<double>(net.total_params()) / 1e6;
  // 23.4M embeddings + ~85M encoder (MLM head shares the embedding matrix in
  // practice; we count it once via the embedding table and once as the MLM
  // GEMM's weights — accept the 108-135M band).
  EXPECT_GT(millions, 100.0);
  EXPECT_LT(millions, 140.0);
}

TEST(Models, VggMacCount) {
  // ~15.3 GMACs for 224x224 VGG-16.
  const double gmacs = static_cast<double>(vgg16().total_macs()) / 1e9;
  EXPECT_NEAR(gmacs, 15.4, 0.8);
}

TEST(Models, ResnetMacCount) {
  const double gmacs = static_cast<double>(resnet50().total_macs()) / 1e9;
  EXPECT_NEAR(gmacs, 4.1, 0.6);
}

TEST(Models, AlexnetMacCount) {
  // Single-tower AlexNet (no grouped convolutions, as CHaiDNN executes it):
  // ~1.14 GMACs. The original two-GPU version with groups would be ~0.72.
  const double gmacs = static_cast<double>(alexnet().total_macs()) / 1e9;
  EXPECT_NEAR(gmacs, 1.14, 0.1);
}

TEST(Models, MobilenetMacCount) {
  const double gmacs = static_cast<double>(mobilenet_v1().total_macs()) / 1e9;
  EXPECT_NEAR(gmacs, 0.57, 0.1);
}

TEST(Models, RelativeComputeOrdering) {
  // VGG is the heaviest CNN; MobileNet and AlexNet the lightest.
  EXPECT_GT(vgg16().total_macs(), resnet50().total_macs());
  EXPECT_GT(resnet50().total_macs(), googlenet().total_macs());
  EXPECT_GT(googlenet().total_macs(), mobilenet_v1().total_macs());
}

TEST(Models, DlrmIsEmbeddingDominated) {
  const Network net = dlrm();
  u64 embed_weight_bytes = 0;
  for (const auto& l : net.layers)
    if (l.type == LayerType::kEmbedding) embed_weight_bytes += l.weight_bytes(8);
  EXPECT_GT(embed_weight_bytes, net.total_weight_bytes(8) / 2);
}

TEST(Models, Wav2vecHasConvFrontendAndTransformer) {
  const Network net = wav2vec2();
  int convs = 0, matmuls = 0;
  for (const auto& l : net.layers) {
    convs += l.type == LayerType::kConv2d;
    matmuls += l.type == LayerType::kMatMul;
  }
  EXPECT_EQ(convs, 7);
  EXPECT_GT(matmuls, 12 * 5);
}


TEST(Models, Resnet18ParamAndMacCounts) {
  const Network net = resnet18();
  const double mparams = static_cast<double>(net.total_params()) / 1e6;
  const double gmacs = static_cast<double>(net.total_macs()) / 1e9;
  EXPECT_NEAR(mparams, 11.5, 0.8);  // published ~11.7M (we omit biases/BN)
  EXPECT_NEAR(gmacs, 1.8, 0.3);     // published ~1.8 GMACs
}

TEST(Models, Vgg19HeavierThanVgg16) {
  EXPECT_GT(vgg19().total_macs(), vgg16().total_macs());
  EXPECT_GT(vgg19().total_params(), vgg16().total_params());
  const double mparams = static_cast<double>(vgg19().total_params()) / 1e6;
  EXPECT_NEAR(mparams, 143.7, 3.0);
}

TEST(Models, Gpt2SmallParamCount) {
  const Network net = gpt2_small();
  const double mparams = static_cast<double>(net.total_params()) / 1e6;
  // ~124M published; our count includes the untied LM head (+38.6M) and
  // omits position embeddings/LayerNorm: accept 120-170M.
  EXPECT_GT(mparams, 120.0);
  EXPECT_LT(mparams, 170.0);
}

TEST(Models, EfficientNetB0Counts) {
  const Network net = efficientnet_b0();
  const double mparams = static_cast<double>(net.total_params()) / 1e6;
  const double gmacs = static_cast<double>(net.total_macs()) / 1e9;
  // Published: 5.3M params, 0.39 GMACs; we omit SE blocks -> slightly lower.
  EXPECT_NEAR(mparams, 4.8, 1.0);
  EXPECT_NEAR(gmacs, 0.4, 0.15);
}

TEST(Models, NewModelsResolveByName) {
  EXPECT_EQ(model_by_name("resnet18").name, "ResNet18");
  EXPECT_EQ(model_by_name("vgg19").name, "VGG19");
  EXPECT_EQ(model_by_name("gpt2").name, "GPT2");
  EXPECT_EQ(model_by_name("efficientnet").name, "EfficientNetB0");
}

TEST(Models, SuitesHaveExpectedSizes) {
  EXPECT_EQ(fpga_benchmark_suite().size(), 4u);
  EXPECT_EQ(inference_benchmark_suite().size(), 9u);
  EXPECT_EQ(training_benchmark_suite().size(), 8u);
  // DLRM is excluded from training (as in Fig. 3b).
  for (const auto& net : training_benchmark_suite()) EXPECT_NE(net.name, "DLRM");
}

TEST(Models, LookupByNameAliases) {
  EXPECT_EQ(model_by_name("VGG").name, "VGG");
  EXPECT_EQ(model_by_name("resnet-50").name, "ResNet");
  EXPECT_EQ(model_by_name("WAV2VEC2").name, "wav2vec2");
  EXPECT_THROW(model_by_name("lenet"), std::invalid_argument);
}

TEST(Schedule, InferenceCoversAllLayers) {
  const Network net = alexnet();
  const auto items = inference_schedule(net);
  ASSERT_EQ(items.size(), net.layers.size());
  for (const auto& item : items) {
    EXPECT_EQ(item.pass, Pass::kForward);
    EXPECT_FALSE(item.is_weight_gradient);
  }
}

TEST(Schedule, TrainingExpandsBackwardAndUpdate) {
  const Network net = alexnet();
  const auto items = training_schedule(net);
  std::size_t fwd = 0, dx = 0, dw = 0, upd = 0;
  for (const auto& item : items) {
    if (item.is_weight_update)
      ++upd;
    else if (item.is_weight_gradient)
      ++dw;
    else if (item.pass == Pass::kBackward)
      ++dx;
    else
      ++fwd;
  }
  EXPECT_EQ(fwd, net.layers.size());
  EXPECT_EQ(dx, net.layers.size());
  // dW and update only for layers with weights.
  std::size_t weighted = 0;
  for (const auto& l : net.layers) weighted += l.weight_elems > 0;
  EXPECT_EQ(dw, weighted);
  EXPECT_EQ(upd, weighted);
}

TEST(Schedule, TrainingMacsRoughlyTripleInference) {
  const Network net = vgg16();
  u64 train_macs = 0;
  for (const auto& item : training_schedule(net))
    if (!item.is_weight_update) train_macs += item.layer.macs;
  const double ratio = static_cast<double>(train_macs) /
                       static_cast<double>(net.total_macs());
  EXPECT_GT(ratio, 2.5);
  EXPECT_LT(ratio, 3.2);
}


TEST(Network, BatchedScalesActivationsNotWeights) {
  const Network base = alexnet();
  const Network b8 = batched(base, 8);
  EXPECT_EQ(b8.total_macs(), base.total_macs() * 8);
  EXPECT_EQ(b8.total_params(), base.total_params());
  EXPECT_EQ(b8.total_input_bytes(8), base.total_input_bytes(8) * 8);
  EXPECT_EQ(b8.name, "AlexNet/b8");
  for (std::size_t i = 0; i < base.layers.size(); ++i) {
    EXPECT_EQ(b8.layers[i].m, base.layers[i].m * 8);
    EXPECT_EQ(b8.layers[i].k, base.layers[i].k);
    EXPECT_EQ(b8.layers[i].n, base.layers[i].n);
  }
}

TEST(Network, BatchOneIsIdentity) {
  const Network base = vgg16();
  const Network b1 = batched(base, 1);
  EXPECT_EQ(b1.name, base.name);
  EXPECT_EQ(b1.total_macs(), base.total_macs());
}

TEST(Network, GopsIsTwiceMacs) {
  const Network net = alexnet();
  EXPECT_DOUBLE_EQ(net.total_gops(),
                   2.0 * static_cast<double>(net.total_macs()) / 1e9);
}

}  // namespace
}  // namespace guardnn::dnn
