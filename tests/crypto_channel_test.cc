#include <gtest/gtest.h>

#include "crypto/secure_channel.h"

namespace guardnn::crypto {
namespace {

SessionKeys test_keys(u8 tag = 0) {
  SessionKeys keys;
  for (std::size_t i = 0; i < keys.enc_key.size(); ++i)
    keys.enc_key[i] = static_cast<u8>(i + tag);
  for (std::size_t i = 0; i < keys.mac_key.size(); ++i)
    keys.mac_key[i] = static_cast<u8>(0x80 + i + tag);
  return keys;
}

TEST(SecureChannel, SealOpenRoundTrip) {
  const SessionKeys keys = test_keys();
  ChannelSender sender(keys);
  ChannelReceiver receiver(keys);
  const Bytes msg = {'s', 'e', 'c', 'r', 'e', 't'};
  const auto opened = receiver.open(sender.seal(msg));
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, msg);
}

TEST(SecureChannel, MultipleRecordsInOrder) {
  const SessionKeys keys = test_keys();
  ChannelSender sender(keys);
  ChannelReceiver receiver(keys);
  for (int i = 0; i < 10; ++i) {
    const Bytes msg(static_cast<std::size_t>(i + 1), static_cast<u8>(i));
    const auto opened = receiver.open(sender.seal(msg));
    ASSERT_TRUE(opened.has_value()) << "record " << i;
    EXPECT_EQ(*opened, msg);
  }
}

TEST(SecureChannel, CiphertextHidesPlaintext) {
  const SessionKeys keys = test_keys();
  ChannelSender sender(keys);
  const Bytes msg(64, 0x41);
  const SealedRecord rec = sender.seal(msg);
  EXPECT_NE(rec.ciphertext, msg);
}

TEST(SecureChannel, RejectsTamperedCiphertext) {
  const SessionKeys keys = test_keys();
  ChannelSender sender(keys);
  ChannelReceiver receiver(keys);
  SealedRecord rec = sender.seal(Bytes{1, 2, 3});
  rec.ciphertext[0] ^= 0xff;
  EXPECT_FALSE(receiver.open(rec).has_value());
}

TEST(SecureChannel, RejectsTamperedTag) {
  const SessionKeys keys = test_keys();
  ChannelSender sender(keys);
  ChannelReceiver receiver(keys);
  SealedRecord rec = sender.seal(Bytes{1, 2, 3});
  rec.tag[0] ^= 0x01;
  EXPECT_FALSE(receiver.open(rec).has_value());
}

TEST(SecureChannel, RejectsReplay) {
  const SessionKeys keys = test_keys();
  ChannelSender sender(keys);
  ChannelReceiver receiver(keys);
  const SealedRecord rec = sender.seal(Bytes{7});
  ASSERT_TRUE(receiver.open(rec).has_value());
  EXPECT_FALSE(receiver.open(rec).has_value());  // same record again
}

TEST(SecureChannel, RejectsReordering) {
  const SessionKeys keys = test_keys();
  ChannelSender sender(keys);
  ChannelReceiver receiver(keys);
  const SealedRecord first = sender.seal(Bytes{1});
  const SealedRecord second = sender.seal(Bytes{2});
  EXPECT_FALSE(receiver.open(second).has_value());  // out of order
  EXPECT_TRUE(receiver.open(first).has_value());
}

TEST(SecureChannel, RejectsWrongKeys) {
  ChannelSender sender(test_keys(0));
  ChannelReceiver receiver(test_keys(1));
  EXPECT_FALSE(receiver.open(sender.seal(Bytes{9})).has_value());
}

TEST(SecureChannel, EmptyPayload) {
  const SessionKeys keys = test_keys();
  ChannelSender sender(keys);
  ChannelReceiver receiver(keys);
  const auto opened = receiver.open(sender.seal({}));
  ASSERT_TRUE(opened.has_value());
  EXPECT_TRUE(opened->empty());
}

TEST(SecureChannel, LargePayload) {
  const SessionKeys keys = test_keys();
  ChannelSender sender(keys);
  ChannelReceiver receiver(keys);
  Bytes big(1 << 16);
  for (std::size_t i = 0; i < big.size(); ++i) big[i] = static_cast<u8>(i * 31);
  const auto opened = receiver.open(sender.seal(big));
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, big);
}

}  // namespace
}  // namespace guardnn::crypto
