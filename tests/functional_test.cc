#include <gtest/gtest.h>

#include "common/rng.h"
#include "functional/fpga_model.h"
#include "functional/quant_ops.h"

namespace guardnn::functional {
namespace {

void fill_random(std::vector<i8>& data, Xoshiro256& rng, int bits) {
  const int span = 1 << bits;
  for (i8& v : data)
    v = static_cast<i8>(static_cast<int>(rng.next_below(static_cast<u64>(span))) -
                        span / 2);
}

TEST(Tensor, ShapeAndAccess) {
  Tensor t(2, 3, 4);
  EXPECT_EQ(t.size(), 24u);
  t.at(1, 2, 3) = 42;
  EXPECT_EQ(t.at(1, 2, 3), 42);
  EXPECT_EQ(t.at_padded(0, -1, 0), 0);
  EXPECT_EQ(t.at_padded(0, 3, 0), 0);
}

TEST(Tensor, RejectsBadArgs) {
  EXPECT_THROW(Tensor(0, 1, 1), std::invalid_argument);
  EXPECT_THROW(Tensor(1, 1, 1, 7), std::invalid_argument);
}

TEST(Tensor, PrecisionBounds) {
  Tensor t8(1, 1, 1, 8), t6(1, 1, 1, 6);
  EXPECT_EQ(t8.max_value(), 127);
  EXPECT_EQ(t8.min_value(), -128);
  EXPECT_EQ(t6.max_value(), 31);
  EXPECT_EQ(t6.min_value(), -32);
}

TEST(Requantize, ShiftAndClamp) {
  EXPECT_EQ(requantize(256, 4, 8), 16);
  EXPECT_EQ(requantize(100000, 0, 8), 127);
  EXPECT_EQ(requantize(-100000, 0, 8), -128);
  EXPECT_EQ(requantize(100, 0, 6), 31);
  EXPECT_EQ(requantize(-100, 0, 6), -32);
}

TEST(Conv, IdentityKernel) {
  // 1x1 kernel with weight 1 reproduces the input.
  Tensor input(1, 4, 4);
  Xoshiro256 rng(1);
  fill_random(input.data(), rng, 8);
  ConvWeights w(1, 1, 1);
  w.at(0, 0, 0, 0) = 1;
  const Tensor out = conv2d_direct(input, w, 1, 0, 0);
  EXPECT_EQ(out, input);
}

TEST(Conv, KnownSmallExample) {
  // 2x2 input, 2x2 kernel of ones, no pad: single output = sum.
  Tensor input(1, 2, 2);
  input.at(0, 0, 0) = 1;
  input.at(0, 0, 1) = 2;
  input.at(0, 1, 0) = 3;
  input.at(0, 1, 1) = 4;
  ConvWeights w(1, 1, 2);
  for (int ky = 0; ky < 2; ++ky)
    for (int kx = 0; kx < 2; ++kx) w.at(0, 0, ky, kx) = 1;
  const Tensor out = conv2d_direct(input, w, 1, 0, 0);
  EXPECT_EQ(out.height(), 1);
  EXPECT_EQ(out.at(0, 0, 0), 10);
}

class ConvAgreementTest
    : public ::testing::TestWithParam<std::tuple<int, int, int, int, int>> {};

TEST_P(ConvAgreementTest, GemmMatchesDirect) {
  const auto [in_c, hw, out_c, kernel, stride] = GetParam();
  const int pad = kernel / 2;
  Xoshiro256 rng(static_cast<u64>(in_c * 1000 + hw * 100 + out_c));
  Tensor input(in_c, hw, hw);
  fill_random(input.data(), rng, 8);
  ConvWeights w(out_c, in_c, kernel);
  fill_random(w.data, rng, 8);
  const Tensor direct = conv2d_direct(input, w, stride, pad, 4);
  const Tensor gemm = conv2d_gemm(input, w, stride, pad, 4);
  EXPECT_EQ(direct, gemm);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ConvAgreementTest,
    ::testing::Values(std::make_tuple(1, 8, 4, 3, 1), std::make_tuple(3, 8, 8, 3, 1),
                      std::make_tuple(4, 16, 8, 5, 2), std::make_tuple(8, 7, 16, 1, 1),
                      std::make_tuple(2, 9, 3, 3, 2), std::make_tuple(6, 5, 6, 5, 1)));

TEST(Conv, RejectsChannelMismatch) {
  Tensor input(3, 4, 4);
  ConvWeights w(1, 2, 3);
  EXPECT_THROW(conv2d_direct(input, w, 1, 1, 0), std::invalid_argument);
}

TEST(Fc, MatVecKnownExample) {
  FcWeights w(2, 3);
  // Row 0: [1 2 3], row 1: [-1 0 1].
  w.at(0, 0) = 1; w.at(0, 1) = 2; w.at(0, 2) = 3;
  w.at(1, 0) = -1; w.at(1, 2) = 1;
  const std::vector<i8> input = {1, 1, 1};
  const std::vector<i8> out = fully_connected(input, w, 0, 8);
  EXPECT_EQ(out[0], 6);
  EXPECT_EQ(out[1], 0);
}

TEST(Fc, RejectsDimensionMismatch) {
  FcWeights w(2, 3);
  EXPECT_THROW(fully_connected({1, 2}, w, 0, 8), std::invalid_argument);
}

TEST(Relu, ClampsNegatives) {
  Tensor t(1, 1, 4);
  t.at(0, 0, 0) = -5;
  t.at(0, 0, 1) = 0;
  t.at(0, 0, 2) = 7;
  t.at(0, 0, 3) = -128;
  relu(t);
  EXPECT_EQ(t.at(0, 0, 0), 0);
  EXPECT_EQ(t.at(0, 0, 1), 0);
  EXPECT_EQ(t.at(0, 0, 2), 7);
  EXPECT_EQ(t.at(0, 0, 3), 0);
}

TEST(Pool, MaxPoolBasic) {
  Tensor t(1, 4, 4);
  for (int y = 0; y < 4; ++y)
    for (int x = 0; x < 4; ++x) t.at(0, y, x) = static_cast<i8>(y * 4 + x);
  const Tensor out = maxpool2d(t, 2, 2);
  EXPECT_EQ(out.height(), 2);
  EXPECT_EQ(out.at(0, 0, 0), 5);
  EXPECT_EQ(out.at(0, 1, 1), 15);
}

TEST(Pool, GlobalAvg) {
  Tensor t(2, 2, 2);
  for (int x = 0; x < 2; ++x)
    for (int y = 0; y < 2; ++y) {
      t.at(0, y, x) = 8;
      t.at(1, y, x) = static_cast<i8>(4 * (y * 2 + x));  // 0,4,8,12 -> avg 6
    }
  const Tensor out = global_avgpool(t);
  EXPECT_EQ(out.at(0, 0, 0), 8);
  EXPECT_EQ(out.at(1, 0, 0), 6);
}


TEST(DepthwiseConv, PerChannelIndependence) {
  // Each channel convolves only with its own filter.
  Tensor input(2, 4, 4);
  for (int y = 0; y < 4; ++y)
    for (int x = 0; x < 4; ++x) {
      input.at(0, y, x) = 1;
      input.at(1, y, x) = 2;
    }
  ConvWeights w(2, 1, 3);
  for (int ky = 0; ky < 3; ++ky)
    for (int kx = 0; kx < 3; ++kx) {
      w.at(0, 0, ky, kx) = 1;   // channel 0: sum filter
      w.at(1, 0, ky, kx) = -1;  // channel 1: negated sum
    }
  const Tensor out = depthwise_conv2d(input, w, 1, 1, 0);
  EXPECT_EQ(out.at(0, 1, 1), 9);    // 3x3 ones over constant 1
  EXPECT_EQ(out.at(1, 1, 1), -18);  // -(3x3) over constant 2
}

TEST(DepthwiseConv, MatchesFullConvWithDiagonalWeights) {
  // A depthwise conv equals a full conv whose cross-channel taps are zero.
  Xoshiro256 rng(77);
  Tensor input(3, 6, 6);
  fill_random(input.data(), rng, 8);
  ConvWeights dw(3, 1, 3);
  fill_random(dw.data, rng, 8);
  ConvWeights full(3, 3, 3);
  for (int c = 0; c < 3; ++c)
    for (int ky = 0; ky < 3; ++ky)
      for (int kx = 0; kx < 3; ++kx) full.at(c, c, ky, kx) = dw.at(c, 0, ky, kx);
  EXPECT_EQ(depthwise_conv2d(input, dw, 1, 1, 2),
            conv2d_direct(input, full, 1, 1, 2));
}

TEST(DepthwiseConv, RejectsBadWeights) {
  Tensor input(3, 4, 4);
  ConvWeights wrong_groups(3, 2, 3);
  EXPECT_THROW(depthwise_conv2d(input, wrong_groups, 1, 1, 0),
               std::invalid_argument);
  ConvWeights wrong_channels(2, 1, 3);
  EXPECT_THROW(depthwise_conv2d(input, wrong_channels, 1, 1, 0),
               std::invalid_argument);
}

TEST(TensorAdd, SaturatesAtBounds) {
  Tensor a(1, 1, 3), b(1, 1, 3);
  a.at(0, 0, 0) = 100; b.at(0, 0, 0) = 100;    // 200 -> clamp 127
  a.at(0, 0, 1) = -100; b.at(0, 0, 1) = -100;  // -200 -> clamp -128
  a.at(0, 0, 2) = 5; b.at(0, 0, 2) = -3;
  const Tensor out = tensor_add(a, b);
  EXPECT_EQ(out.at(0, 0, 0), 127);
  EXPECT_EQ(out.at(0, 0, 1), -128);
  EXPECT_EQ(out.at(0, 0, 2), 2);
}

TEST(TensorAdd, RejectsShapeMismatch) {
  Tensor a(1, 2, 2), b(1, 2, 3);
  EXPECT_THROW(tensor_add(a, b), std::invalid_argument);
}

// --- FPGA throughput model (Table II shape checks) -------------------------

TEST(FpgaModel, ThroughputScalesWithDsps) {
  const dnn::Network net = dnn::resnet50();
  double prev = 0.0;
  for (int dsps : {128, 256, 512, 1024}) {
    FpgaConfig cfg;
    cfg.dsps = dsps;
    const FpgaThroughput t = fpga_throughput(net, cfg);
    EXPECT_GT(t.baseline_fps, prev);
    prev = t.baseline_fps;
  }
}

TEST(FpgaModel, SixBitFasterThanEightBit) {
  for (const auto& net : dnn::fpga_benchmark_suite()) {
    FpgaConfig cfg8, cfg6;
    cfg8.bits = 8;
    cfg6.bits = 6;
    const double r = fpga_throughput(net, cfg6).baseline_fps /
                     fpga_throughput(net, cfg8).baseline_fps;
    EXPECT_GT(r, 1.3) << net.name;
    EXPECT_LT(r, 2.1) << net.name;
  }
}

TEST(FpgaModel, OverheadBelowFourPercent) {
  // Paper Table II: GuardNN_C overhead is 0.2% - 3.1% everywhere.
  for (const auto& net : dnn::fpga_benchmark_suite()) {
    for (int dsps : {128, 256, 512, 1024}) {
      for (int bits : {8, 6}) {
        FpgaConfig cfg;
        cfg.dsps = dsps;
        cfg.bits = bits;
        const FpgaThroughput t = fpga_throughput(net, cfg);
        EXPECT_GE(t.overhead_percent, 0.0)
            << net.name << " " << dsps << " " << bits;
        EXPECT_LT(t.overhead_percent, 4.0)
            << net.name << " " << dsps << " " << bits;
      }
    }
  }
}

TEST(FpgaModel, OverheadGrowsWithDsps) {
  // Faster compute exposes the AES-limited memory path (Table II trend).
  const dnn::Network net = dnn::resnet50();
  FpgaConfig small, large;
  small.dsps = 128;
  large.dsps = 1024;
  EXPECT_GE(fpga_throughput(net, large).overhead_percent,
            fpga_throughput(net, small).overhead_percent);
}

TEST(FpgaModel, MoreAesEnginesReduceOverhead) {
  // Paper: going from 3 to 4 engines cuts the max overhead 3.1% -> 1.9%.
  const dnn::Network net = dnn::resnet50();
  FpgaConfig three, four;
  three.dsps = four.dsps = 1024;
  three.bits = four.bits = 6;
  three.aes_engines = 3;
  four.aes_engines = 4;
  EXPECT_LE(fpga_throughput(net, four).overhead_percent,
            fpga_throughput(net, three).overhead_percent);
}

TEST(FpgaModel, AlexnetAbsoluteThroughputPlausible) {
  // Table II: AlexNet 512 DSP 8-bit = 163.6 fps. Accept a generous band —
  // the substrate differs, the shape is what matters.
  FpgaConfig cfg;
  cfg.dsps = 512;
  const double fps = fpga_throughput(dnn::alexnet(), cfg).baseline_fps;
  EXPECT_GT(fps, 80.0);
  EXPECT_LT(fps, 330.0);
}

TEST(FpgaModel, InstructionLatenciesMatchPaper) {
  // Section III-B: SetWeight = 19.5 / 2.2 / 8.0 / 43.3 ms for AlexNet /
  // GoogleNet / ResNet / VGG; key exchange 23.1 ms; sign 4.8 ms.
  const struct {
    const char* name;
    double expected_ms;
  } cases[] = {{"alexnet", 19.5}, {"googlenet", 2.2}, {"resnet", 8.0}, {"vgg", 43.3}};
  for (const auto& c : cases) {
    const InstructionLatencies lat = instruction_latencies(dnn::model_by_name(c.name));
    EXPECT_NEAR(lat.set_weight_ms, c.expected_ms, c.expected_ms * 0.25) << c.name;
    EXPECT_DOUBLE_EQ(lat.key_exchange_ms, 23.1);
    EXPECT_DOUBLE_EQ(lat.sign_output_ms, 4.8);
    EXPECT_LT(lat.set_input_ms, 0.3);
    EXPECT_LT(lat.export_output_ms, 0.1);
  }
}

TEST(FpgaModel, RejectsBadPrecision) {
  FpgaConfig cfg;
  cfg.bits = 4;
  EXPECT_THROW(fpga_throughput(dnn::alexnet(), cfg), std::invalid_argument);
}

}  // namespace
}  // namespace guardnn::functional
