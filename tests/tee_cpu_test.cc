#include <gtest/gtest.h>

#include "tee_cpu/cpu_tee.h"
#include "tee_cpu/mpc_model.h"

namespace guardnn::tee_cpu {
namespace {

TEST(CpuTee, VggOperatingPointMatchesTableIII) {
  // Paper Table III: simulated CPU TEE on VGG-16 = 0.81 GOPs, 1.61x overhead.
  const CpuTeeResult r = simulate_cpu_tee(dnn::vgg16());
  EXPECT_GT(r.overhead, 1.4);
  EXPECT_LT(r.overhead, 1.9);
  EXPECT_GT(r.throughput_gops, 0.4);
  EXPECT_LT(r.throughput_gops, 1.6);
}

TEST(CpuTee, ProtectionNeverSpeedsUp) {
  for (const auto& net : dnn::inference_benchmark_suite()) {
    const CpuTeeResult r = simulate_cpu_tee(net);
    EXPECT_GE(r.overhead, 1.0) << net.name;
    EXPECT_GT(r.protected_seconds, 0.0) << net.name;
  }
}

TEST(CpuTee, MemoryBoundNetsSufferMore) {
  // DLRM (embedding-dominated) must see a larger TEE overhead than the
  // compute-dense VGG... at equal compute efficiency.
  const CpuTeeResult vgg = simulate_cpu_tee(dnn::vgg16());
  const CpuTeeResult dlrm = simulate_cpu_tee(dnn::dlrm());
  EXPECT_GT(dlrm.overhead, vgg.overhead * 0.95);
}

TEST(CpuTee, ZeroMissPenaltyLowersOverhead) {
  CpuTeeConfig cheap;
  cheap.miss_penalty_ns = 0.0;
  cheap.mee_traffic_factor = 1.0;
  const CpuTeeResult r = simulate_cpu_tee(dnn::vgg16(), cheap);
  EXPECT_NEAR(r.overhead, 1.0, 1e-9);
}

TEST(Mpc, OrdersOfMagnitudeSlowerThanCpu) {
  const MpcResult mpc = estimate_mpc(dnn::resnet50());
  const CpuTeeResult cpu = simulate_cpu_tee(dnn::resnet50());
  EXPECT_LT(mpc.throughput_gops, cpu.throughput_gops / 10.0);
  EXPECT_GT(mpc.seconds_per_inference, 1.0);
}

TEST(Mpc, ThroughputInCitedBallpark) {
  // DELPHI: 0.02 GOPs, CrypTFLOW2: 0.18 GOPs (ResNet-32/CIFAR). Our analytic
  // model on ResNet-50 should land within the same two decades.
  const MpcResult r = estimate_mpc(dnn::resnet50());
  EXPECT_GT(r.throughput_gops, 0.001);
  EXPECT_LT(r.throughput_gops, 2.0);
}

TEST(Mpc, CommunicationDominates) {
  MpcConfig fast_cpu;
  fast_cpu.cpu_gops = 1e6;  // infinitely fast parties
  const MpcResult r = estimate_mpc(dnn::resnet50(), fast_cpu);
  EXPECT_GT(r.seconds_per_inference, 0.5)
      << "even with free compute, GC/OT communication bounds MPC";
}

TEST(Mpc, CitedConstantsSane) {
  EXPECT_LT(CitedComparators::kDelphiGops, CitedComparators::kCryptflow2Gops);
  EXPECT_GT(CitedComparators::kDelphiOverhead, CitedComparators::kCryptflow2Overhead);
}

}  // namespace
}  // namespace guardnn::tee_cpu
