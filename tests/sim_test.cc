#include <gtest/gtest.h>

#include "dnn/models.h"
#include "sim/perf_model.h"

namespace guardnn::sim {
namespace {

using memprot::Scheme;

const BandwidthCalibration& shared_calibration() {
  static const BandwidthCalibration calib = BandwidthCalibration::measure(
      dram::DramConfig::ddr4_2400_16gb(), AcceleratorConfig::tpu_like());
  return calib;
}

TEST(Systolic, SingleFoldGemm) {
  dnn::WorkItem item;
  item.layer = dnn::matmul("g", 100, 256, 256);
  const AcceleratorConfig cfg;
  const ComputeEstimate est = compute_cycles(item, cfg);
  EXPECT_EQ(est.folds, 1u);
  EXPECT_EQ(est.cycles, 100u + 256u + 256u);
}

TEST(Systolic, FoldsMultiply) {
  dnn::WorkItem item;
  item.layer = dnn::matmul("g", 64, 512, 512);  // 2 K-folds x 2 N-folds
  const AcceleratorConfig cfg;
  const ComputeEstimate est = compute_cycles(item, cfg);
  EXPECT_EQ(est.folds, 4u);
  EXPECT_EQ(est.cycles, 4u * (64u + 256u + 256u));
}


TEST(Systolic, OutputStationaryFormula) {
  dnn::WorkItem item;
  item.layer = dnn::matmul("g", 512, 300, 256);  // 2 M-folds x 1 N-fold
  AcceleratorConfig cfg;
  cfg.dataflow = Dataflow::kOutputStationary;
  const ComputeEstimate est = compute_cycles(item, cfg);
  EXPECT_EQ(est.folds, 2u);
  EXPECT_EQ(est.cycles, 2u * (300u + 256u + 256u));
}

TEST(Systolic, DataflowsDifferButBothBounded) {
  for (const auto& net : {dnn::vgg16(), dnn::bert_base()}) {
    for (const auto& item : dnn::inference_schedule(net)) {
      if (!item.layer.is_gemm()) continue;
      AcceleratorConfig ws, os;
      os.dataflow = Dataflow::kOutputStationary;
      const ComputeEstimate e_ws = compute_cycles(item, ws);
      const ComputeEstimate e_os = compute_cycles(item, os);
      EXPECT_GT(e_ws.cycles, 0u);
      EXPECT_GT(e_os.cycles, 0u);
      EXPECT_LE(e_ws.utilization, 1.0);
      EXPECT_LE(e_os.utilization, 1.0);
    }
  }
}

TEST(Systolic, FcFavorsOutputStationaryAtBatch1) {
  // An M=1 FC under WS pays one (m + fill + drain) pass per (K,N) fold —
  // 256 folds for 4096x4096 — while OS streams the whole K per N fold (16
  // folds), so OS wins on single-vector FCs.
  dnn::WorkItem item;
  item.layer = dnn::fully_connected("fc", 4096, 4096);
  AcceleratorConfig ws, os;
  os.dataflow = Dataflow::kOutputStationary;
  EXPECT_GT(compute_cycles(item, ws).cycles, compute_cycles(item, os).cycles);
}

TEST(Systolic, UtilizationBounded) {
  for (const auto& net : dnn::inference_benchmark_suite()) {
    for (const auto& item : dnn::inference_schedule(net)) {
      const ComputeEstimate est = compute_cycles(item, AcceleratorConfig{});
      EXPECT_GE(est.utilization, 0.0) << net.name << ":" << item.layer.name;
      EXPECT_LE(est.utilization, 1.0) << net.name << ":" << item.layer.name;
      EXPECT_GT(est.cycles, 0u);
    }
  }
}

TEST(Systolic, BackwardCyclesComparableToForward) {
  dnn::Network net = dnn::alexnet();
  const auto items = dnn::training_schedule(net);
  u64 fwd = 0, bwd = 0;
  for (const auto& item : items) {
    if (item.is_weight_update) continue;
    const u64 c = compute_cycles(item, AcceleratorConfig{}).cycles;
    if (item.pass == dnn::Pass::kForward)
      fwd += c;
    else
      bwd += c;
  }
  EXPECT_GT(bwd, fwd);      // dX + dW together exceed forward
  EXPECT_LT(bwd, fwd * 4);  // but by a bounded factor
}

TEST(Traffic, LayoutPacksWeightsChunkAligned) {
  const dnn::Network net = dnn::alexnet();
  const AddressLayout layout = build_layout(net, 8);
  ASSERT_EQ(layout.weight_offsets.size(), net.layers.size());
  for (std::size_t i = 0; i < layout.weight_offsets.size(); ++i)
    EXPECT_EQ(layout.weight_offsets[i] % 512, 0u);
  EXPECT_GE(layout.total_weight_bytes, net.total_weight_bytes(8));
}

TEST(Traffic, ForwardStreamsCoverInWeightOut) {
  const dnn::Network net = dnn::alexnet();
  const AddressLayout layout = build_layout(net, 8);
  dnn::WorkItem item;
  item.layer = net.layers[0];  // conv1
  const auto streams = generate_streams(item, 0, layout, AcceleratorConfig{}, 8);
  u64 reads = 0, writes = 0;
  for (const auto& s : streams) {
    if (s.write)
      writes += s.bytes;
    else
      reads += s.bytes;
  }
  EXPECT_GE(reads, item.layer.input_bytes(8) + item.layer.weight_bytes(8));
  EXPECT_GE(writes, item.layer.output_bytes(8));
}

TEST(Traffic, EmbeddingStreamsAreRandom) {
  const dnn::Network net = dnn::dlrm();
  const AddressLayout layout = build_layout(net, 8);
  std::size_t embed_index = 0;
  for (std::size_t i = 0; i < net.layers.size(); ++i)
    if (net.layers[i].type == dnn::LayerType::kEmbedding) embed_index = i;
  dnn::WorkItem item;
  item.layer = net.layers[embed_index];
  const auto streams =
      generate_streams(item, embed_index, layout, AcceleratorConfig{}, 8);
  bool found_random = false;
  for (const auto& s : streams) found_random = found_random || s.random;
  EXPECT_TRUE(found_random);
}

TEST(Traffic, PingPongBuffersAlternate) {
  const dnn::Network net = dnn::alexnet();
  const AddressLayout layout = build_layout(net, 8);
  dnn::WorkItem item0, item1;
  item0.layer = net.layers[0];
  item1.layer = net.layers[2];
  const auto s0 = generate_streams(item0, 0, layout, AcceleratorConfig{}, 8);
  const auto s1 = generate_streams(item1, 1, layout, AcceleratorConfig{}, 8);
  // Layer 0 writes where layer 1 reads.
  u64 l0_write_base = 0, l1_read_base = ~0ULL;
  for (const auto& s : s0)
    if (s.write) l0_write_base = s.base;
  for (const auto& s : s1)
    if (!s.write && s.base >= 0x4'0000'0000ULL) l1_read_base = s.base;
  EXPECT_EQ(l0_write_base, l1_read_base);
}

TEST(Traffic, RejectsBadLayerIndex) {
  const dnn::Network net = dnn::alexnet();
  const AddressLayout layout = build_layout(net, 8);
  dnn::WorkItem item;
  item.layer = net.layers[0];
  EXPECT_THROW(
      generate_streams(item, net.layers.size(), layout, AcceleratorConfig{}, 8),
      std::out_of_range);
}

TEST(PerfModel, CalibrationSane) {
  const BandwidthCalibration& calib = shared_calibration();
  // DDR4-2400 x2ch at 0.7 GHz accel clock: 38.4 GB/s peak = ~55 B/cycle.
  EXPECT_GT(calib.seq_bytes_per_accel_cycle, 20.0);
  EXPECT_LT(calib.seq_bytes_per_accel_cycle, 60.0);
  EXPECT_LT(calib.rand_bytes_per_accel_cycle, calib.seq_bytes_per_accel_cycle);
  EXPECT_GT(calib.rand_bytes_per_accel_cycle, 1.0);
}

TEST(PerfModel, NoProtectionBaselineRuns) {
  const dnn::Network net = dnn::alexnet();
  const RunResult r = simulate(net, dnn::inference_schedule(net), Scheme::kNone,
                               SimConfig{}, shared_calibration());
  EXPECT_GT(r.total_cycles, 0u);
  EXPECT_EQ(r.meta_bytes, 0u);
  EXPECT_EQ(r.layers.size(), net.layers.size());
  EXPECT_GT(r.seconds, 0.0);
}

TEST(PerfModel, SchemeOrderingMatchesPaper) {
  // NP <= GuardNN_C <= GuardNN_CI < BP for every network (Fig. 3a shape).
  const SimConfig cfg;
  for (const auto& net : {dnn::alexnet(), dnn::mobilenet_v1()}) {
    const auto sched = dnn::inference_schedule(net);
    const u64 np =
        simulate(net, sched, Scheme::kNone, cfg, shared_calibration()).total_cycles;
    const u64 c = simulate(net, sched, Scheme::kGuardNnC, cfg, shared_calibration())
                      .total_cycles;
    const u64 ci =
        simulate(net, sched, Scheme::kGuardNnCI, cfg, shared_calibration())
            .total_cycles;
    const u64 bp =
        simulate(net, sched, Scheme::kBaselineMee, cfg, shared_calibration())
            .total_cycles;
    EXPECT_LE(np, c) << net.name;
    EXPECT_LE(c, ci) << net.name;
    EXPECT_LT(ci, bp) << net.name;
  }
}

TEST(PerfModel, GuardNnOverheadSmall) {
  const dnn::Network net = dnn::vgg16();
  const auto sched = dnn::inference_schedule(net);
  const SimConfig cfg;
  const double np = static_cast<double>(
      simulate(net, sched, Scheme::kNone, cfg, shared_calibration()).total_cycles);
  const double ci = static_cast<double>(
      simulate(net, sched, Scheme::kGuardNnCI, cfg, shared_calibration())
          .total_cycles);
  EXPECT_LT(ci / np, 1.08);  // paper: ~1.05 for VGG
  EXPECT_GE(ci / np, 1.0);
}

TEST(PerfModel, BaselineOverheadSubstantial) {
  const dnn::Network net = dnn::vgg16();
  const auto sched = dnn::inference_schedule(net);
  const SimConfig cfg;
  const double np = static_cast<double>(
      simulate(net, sched, Scheme::kNone, cfg, shared_calibration()).total_cycles);
  const double bp = static_cast<double>(
      simulate(net, sched, Scheme::kBaselineMee, cfg, shared_calibration())
          .total_cycles);
  EXPECT_GT(bp / np, 1.08);
  EXPECT_LT(bp / np, 1.6);
}

TEST(PerfModel, TrafficIncreaseShapes) {
  const dnn::Network net = dnn::resnet50();
  const auto sched = dnn::inference_schedule(net);
  const SimConfig cfg;
  const RunResult ci =
      simulate(net, sched, Scheme::kGuardNnCI, cfg, shared_calibration());
  const RunResult bp =
      simulate(net, sched, Scheme::kBaselineMee, cfg, shared_calibration());
  EXPECT_LT(ci.traffic_increase(), 1.05);  // paper: +2.4% average
  EXPECT_GT(bp.traffic_increase(), 1.15);  // paper: +35.3% average
  EXPECT_LT(bp.traffic_increase(), 1.55);
}

TEST(PerfModel, TrainingCostsMoreThanInference) {
  const dnn::Network net = dnn::alexnet();
  const SimConfig cfg;
  const u64 inf = simulate(net, dnn::inference_schedule(net), Scheme::kNone, cfg,
                           shared_calibration())
                      .total_cycles;
  const u64 train = simulate(net, dnn::training_schedule(net), Scheme::kNone, cfg,
                             shared_calibration())
                        .total_cycles;
  EXPECT_GT(train, inf * 2);
}

TEST(PerfModel, DeterministicAcrossRuns) {
  // Timing depends only on the schedule, never on data values — the paper's
  // timing side-channel argument. Two identical runs must agree bit-for-bit.
  const dnn::Network net = dnn::googlenet();
  const auto sched = dnn::inference_schedule(net);
  const SimConfig cfg;
  const RunResult a =
      simulate(net, sched, Scheme::kGuardNnCI, cfg, shared_calibration());
  const RunResult b =
      simulate(net, sched, Scheme::kGuardNnCI, cfg, shared_calibration());
  EXPECT_EQ(a.total_cycles, b.total_cycles);
  EXPECT_EQ(a.data_bytes, b.data_bytes);
  EXPECT_EQ(a.meta_bytes, b.meta_bytes);
}

}  // namespace
}  // namespace guardnn::sim
