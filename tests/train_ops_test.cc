#include <gtest/gtest.h>

#include "common/rng.h"
#include "functional/quant_ops.h"
#include "functional/train_ops.h"

namespace guardnn::functional {
namespace {

void fill_random(std::vector<i8>& data, Xoshiro256& rng, int lo = -8, int hi = 7) {
  for (i8& v : data)
    v = static_cast<i8>(
        static_cast<int>(rng.next_below(static_cast<u64>(hi - lo + 1))) + lo);
}

TEST(FcBackward, InputGradientKnownExample) {
  // y = W x, W = [[1, 2], [3, 4]]; dX = W^T dY.
  FcWeights w(2, 2);
  w.at(0, 0) = 1; w.at(0, 1) = 2;
  w.at(1, 0) = 3; w.at(1, 1) = 4;
  const std::vector<i8> d_out = {1, 1};
  const std::vector<i8> d_in = fc_backward_input(d_out, w, 0, 8);
  EXPECT_EQ(d_in[0], 4);  // 1*1 + 3*1
  EXPECT_EQ(d_in[1], 6);  // 2*1 + 4*1
}

TEST(FcBackward, WeightGradientIsOuterProduct) {
  const std::vector<i8> d_out = {2, -1};
  const std::vector<i8> input = {3, 4, 5};
  const FcWeights grads = fc_backward_weights(d_out, input, 0, 8);
  EXPECT_EQ(grads.at(0, 0), 6);
  EXPECT_EQ(grads.at(0, 2), 10);
  EXPECT_EQ(grads.at(1, 0), -3);
  EXPECT_EQ(grads.at(1, 1), -4);
}

TEST(FcBackward, RejectsMismatchedSizes) {
  FcWeights w(2, 3);
  EXPECT_THROW(fc_backward_input({1, 2, 3}, w, 0, 8), std::invalid_argument);
}

TEST(ConvBackward, InputGradientIdentityKernel) {
  // 1x1 identity kernel: dX == dY.
  Tensor d_out(1, 3, 3);
  Xoshiro256 rng(1);
  fill_random(d_out.data(), rng);
  ConvWeights w(1, 1, 1);
  w.at(0, 0, 0, 0) = 1;
  const Tensor d_in = conv2d_backward_input(d_out, w, 3, 3, 1, 0, 0);
  EXPECT_EQ(d_in, d_out);
}

TEST(ConvBackward, InputGradientMatchesLinearization) {
  // Verify dX by perturbation on the *unquantized* (shift=0, small values)
  // path: conv is linear, so conv(x + e_i) - conv(x) projected on dY must
  // equal dX_i when no clamping occurs.
  Xoshiro256 rng(2);
  Tensor x(2, 4, 4);
  fill_random(x.data(), rng, -3, 3);
  ConvWeights w(2, 2, 3);
  fill_random(w.data, rng, -2, 2);
  Tensor d_out(2, 4, 4);
  fill_random(d_out.data(), rng, -2, 2);

  const Tensor d_in = conv2d_backward_input(d_out, w, 4, 4, 1, 1, 0);

  // Analytic check at a few positions via explicit sums.
  for (int ic = 0; ic < 2; ++ic) {
    for (int iy = 0; iy < 4; iy += 2) {
      for (int ix = 1; ix < 4; ix += 2) {
        i32 expected = 0;
        for (int oc = 0; oc < 2; ++oc)
          for (int ky = 0; ky < 3; ++ky)
            for (int kx = 0; kx < 3; ++kx) {
              const int oy = iy + 1 - ky;
              const int ox = ix + 1 - kx;
              if (oy < 0 || oy >= 4 || ox < 0 || ox >= 4) continue;
              expected += static_cast<i32>(d_out.at(oc, oy, ox)) *
                          static_cast<i32>(w.at(oc, ic, ky, kx));
            }
        EXPECT_EQ(static_cast<i32>(d_in.at(ic, iy, ix)),
                  std::clamp(expected, -128, 127));
      }
    }
  }
}

TEST(ConvBackward, WeightGradientMatchesExplicitSum) {
  Xoshiro256 rng(3);
  Tensor x(2, 4, 4);
  fill_random(x.data(), rng, -3, 3);
  Tensor d_out(3, 4, 4);
  fill_random(d_out.data(), rng, -2, 2);
  const ConvWeights grads = conv2d_backward_weights(d_out, x, 3, 1, 1, 0);
  // Check one tap explicitly.
  i32 expected = 0;
  for (int oy = 0; oy < 4; ++oy)
    for (int ox = 0; ox < 4; ++ox)
      expected += static_cast<i32>(d_out.at(1, oy, ox)) *
                  static_cast<i32>(x.at_padded(0, oy + 0 - 1, ox + 2 - 1));
  EXPECT_EQ(static_cast<i32>(grads.at(1, 0, 0, 2)), std::clamp(expected, -128, 127));
}

TEST(ReluBackward, MasksNonPositive) {
  Tensor x(1, 1, 4), d_out(1, 1, 4);
  x.at(0, 0, 0) = 5;
  x.at(0, 0, 1) = 0;
  x.at(0, 0, 2) = -3;
  x.at(0, 0, 3) = 1;
  for (int i = 0; i < 4; ++i) d_out.at(0, 0, i) = 7;
  const Tensor d_in = relu_backward(d_out, x);
  EXPECT_EQ(d_in.at(0, 0, 0), 7);
  EXPECT_EQ(d_in.at(0, 0, 1), 0);
  EXPECT_EQ(d_in.at(0, 0, 2), 0);
  EXPECT_EQ(d_in.at(0, 0, 3), 7);
}

TEST(MaxPoolBackward, RoutesToArgmax) {
  Tensor x(1, 2, 2);
  x.at(0, 0, 0) = 1;
  x.at(0, 0, 1) = 9;  // argmax
  x.at(0, 1, 0) = 2;
  x.at(0, 1, 1) = 3;
  Tensor d_out(1, 1, 1);
  d_out.at(0, 0, 0) = 5;
  const Tensor d_in = maxpool_backward(d_out, x, 2, 2);
  EXPECT_EQ(d_in.at(0, 0, 0), 0);
  EXPECT_EQ(d_in.at(0, 0, 1), 5);
  EXPECT_EQ(d_in.at(0, 1, 0), 0);
  EXPECT_EQ(d_in.at(0, 1, 1), 0);
}

TEST(SgdUpdate, StepAndSaturation) {
  std::vector<i8> w = {10, -10, 127, -128};
  const std::vector<i8> g = {8, -8, -16, 16};
  sgd_update(w, g, /*lr_shift=*/2, 8);
  EXPECT_EQ(w[0], 8);     // 10 - 8>>2
  EXPECT_EQ(w[1], -8);    // -10 - (-8>>2) = -10 + 2
  EXPECT_EQ(w[2], 127);   // clamped: 127 + 4 -> 127
  EXPECT_EQ(w[3], -128);  // clamped
}

TEST(SgdUpdate, ZeroGradientIsNoop) {
  std::vector<i8> w = {1, 2, 3};
  const std::vector<i8> before = w;
  sgd_update(w, {0, 0, 0}, 0, 8);
  EXPECT_EQ(w, before);
}

TEST(SgdUpdate, RejectsSizeMismatch) {
  std::vector<i8> w = {1};
  EXPECT_THROW(sgd_update(w, {1, 2}, 0, 8), std::invalid_argument);
}

TEST(TrainingStep, FcLossDecreasesOnToyProblem) {
  // End-to-end sanity: repeated quantized SGD steps on a 1-layer model
  // reduce |y - target| for a fixed input.
  Xoshiro256 rng(9);
  FcWeights w(2, 4);
  fill_random(w.data, rng, -4, 4);
  const std::vector<i8> x = {4, -2, 3, 1};
  const std::vector<i8> target = {20, -20};

  auto loss = [&]() {
    const std::vector<i8> y = fully_connected(x, w, 2, 8);
    return std::abs(y[0] - target[0]) + std::abs(y[1] - target[1]);
  };

  const int initial = loss();
  for (int step = 0; step < 30; ++step) {
    const std::vector<i8> y = fully_connected(x, w, 2, 8);
    std::vector<i8> d_y(2);
    for (int o = 0; o < 2; ++o)
      d_y[static_cast<std::size_t>(o)] = static_cast<i8>(
          std::clamp(y[static_cast<std::size_t>(o)] - target[static_cast<std::size_t>(o)], -127, 127));
    const FcWeights grads = fc_backward_weights(d_y, x, 2, 8);
    sgd_update(w.data, grads.data, 2, 8);
  }
  EXPECT_LT(loss(), initial);
}

}  // namespace
}  // namespace guardnn::functional
