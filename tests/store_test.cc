// Sealed model store tests: blob format round trips and hostile-input
// rejection (bit flips, truncation, wrong device, version downgrade), the
// content-addressed ModelStore with both backends, device-side
// SealModel/UnsealModel, the cross-device provisioning re-wrap, and the
// training checkpoint/restore path — every acceptance path ends in a
// bit-identical comparison against a plaintext golden run. This suite is
// also a ThreadSanitizer target (concurrent store/replication traffic).
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <thread>

#include "common/rng.h"
#include "functional/train_ops.h"
#include "host/model_codec.h"
#include "host/scheduler.h"
#include "host/user_client.h"
#include "serving/inference_server.h"
#include "store/model_package.h"
#include "store/model_store.h"

namespace guardnn::store {
namespace {

using accel::DeviceStatus;
using accel::ForwardOp;
using host::FuncLayer;
using host::FuncNetwork;
using host::RemoteUser;

Bytes random_bytes(std::size_t n, u64 seed) {
  Xoshiro256 rng(seed);
  Bytes out(n);
  rng.fill(out);
  return out;
}

Bytes random_weights(std::size_t n, u64 seed) {
  Xoshiro256 rng(seed);
  Bytes out(n);
  for (auto& b : out)
    b = static_cast<u8>(static_cast<i8>(static_cast<int>(rng.next_below(256)) - 128));
  return out;
}

FuncNetwork small_cnn(u64 seed = 42) {
  FuncNetwork net;
  net.in_c = 3;
  net.in_h = 8;
  net.in_w = 8;
  net.layers.push_back(FuncLayer{ForwardOp::Kind::kConv, 4, 3, 1, 1, 4,
                                 random_weights(4 * 3 * 3 * 3, seed)});
  net.layers.push_back(FuncLayer{ForwardOp::Kind::kRelu, 0, 0, 1, 0, 0, {}});
  net.layers.push_back(FuncLayer{ForwardOp::Kind::kMaxPool, 0, 2, 2, 0, 0, {}});
  net.layers.push_back(FuncLayer{ForwardOp::Kind::kFc, 10, 0, 1, 0, 5,
                                 random_weights(10 * 4 * 4 * 4, seed + 1)});
  return net;
}

functional::Tensor random_input(const FuncNetwork& net, u64 seed) {
  functional::Tensor input(net.in_c, net.in_h, net.in_w, net.bits);
  Xoshiro256 rng(seed);
  for (auto& v : input.data())
    v = static_cast<i8>(static_cast<int>(rng.next_below(256)) - 128);
  return input;
}

crypto::AesKey test_key(u8 fill) {
  crypto::AesKey key{};
  key.fill(fill);
  return key;
}

BindingId test_binding(u8 fill) {
  BindingId binding{};
  binding.fill(fill);
  return binding;
}

crypto::AesBlock test_nonce(u64 seed) {
  crypto::AesBlock nonce{};
  const Bytes raw = random_bytes(nonce.size(), seed);
  std::copy(raw.begin(), raw.end(), nonce.begin());
  return nonce;
}

/// True when a 24-byte window of `secret` appears anywhere in `haystack`.
bool contains_window(BytesView haystack, BytesView secret) {
  if (secret.size() < 24) return false;
  return std::search(haystack.begin(), haystack.end(), secret.begin(),
                     secret.begin() + 24) != haystack.end();
}

// --- SealedBlob format -------------------------------------------------------

TEST(SealedBlobFormat, RoundTripSingleChunk) {
  const Bytes payload = random_bytes(1000, 1);
  const SealedBlob blob =
      seal_blob(test_key(0x11), test_binding(0x22), test_nonce(2), payload,
                crypto::Sha256::hash(payload));
  EXPECT_EQ(blob.header.plaintext_bytes, payload.size());
  EXPECT_EQ(blob.header.chunk_count(), 1u);
  EXPECT_EQ(blob.chunk_macs.size(), 1u);
  EXPECT_EQ(blob.header.content_id, crypto::Sha256::hash(payload));

  Bytes opened;
  EXPECT_EQ(unseal_blob(test_key(0x11), test_binding(0x22), blob, opened),
            SealStatus::kOk);
  EXPECT_EQ(opened, payload);
  // Ciphertext is not the plaintext.
  EXPECT_FALSE(contains_window(blob.ciphertext, payload));
}

TEST(SealedBlobFormat, RoundTripMultiChunk) {
  // 3 full chunks + a 1000-byte tail -> 4 chunks.
  const Bytes payload = random_bytes(3 * kSealChunkBytes + 1000, 3);
  const SealedBlob blob =
      seal_blob(test_key(0x33), test_binding(0x44), test_nonce(4), payload,
                crypto::Sha256::hash(payload));
  EXPECT_EQ(blob.header.chunk_count(), 4u);
  EXPECT_EQ(blob.chunk_macs.size(), 4u);

  Bytes opened;
  ASSERT_EQ(unseal_blob(test_key(0x33), test_binding(0x44), blob, opened),
            SealStatus::kOk);
  EXPECT_EQ(opened, payload);

  // Wire round trip preserves everything.
  const std::optional<SealedBlob> parsed = SealedBlob::deserialize(blob.serialize());
  ASSERT_TRUE(parsed.has_value());
  Bytes reopened;
  ASSERT_EQ(unseal_blob(test_key(0x33), test_binding(0x44), *parsed, reopened),
            SealStatus::kOk);
  EXPECT_EQ(reopened, payload);
}

TEST(SealedBlobFormat, DistinctNoncesGiveDistinctCiphertext) {
  // No keystream reuse across blobs under one root key: same payload, two
  // nonces, unrelated ciphertext (XOR of the two would otherwise be zero).
  const Bytes payload = random_bytes(4096, 5);
  const SealedBlob a =
      seal_blob(test_key(0x55), test_binding(0x66), test_nonce(6), payload,
                crypto::Sha256::hash(payload));
  const SealedBlob b =
      seal_blob(test_key(0x55), test_binding(0x66), test_nonce(7), payload,
                crypto::Sha256::hash(payload));
  EXPECT_NE(a.ciphertext, b.ciphertext);
  EXPECT_EQ(a.header.content_id, b.header.content_id);  // same logical model
}

TEST(SealedBlobFormat, TruncationAtEveryChunkBoundaryRejected) {
  const Bytes payload = random_bytes(3 * kSealChunkBytes + 512, 8);
  const SealedBlob blob =
      seal_blob(test_key(0x77), test_binding(0x88), test_nonce(9), payload,
                crypto::Sha256::hash(payload));
  const Bytes wire = blob.serialize();
  const std::size_t header_bytes = blob.header.serialize().size();

  std::vector<std::size_t> cuts = {0, 1, header_bytes - 1, header_bytes,
                                   wire.size() - 1};
  for (u64 chunk = 0; chunk <= blob.header.chunk_count(); ++chunk)
    cuts.push_back(header_bytes +
                   std::min<u64>(chunk * kSealChunkBytes, payload.size()));
  // MAC-list truncations: drop trailing chunk MACs / the chain MAC.
  for (u64 i = 0; i <= blob.chunk_macs.size(); ++i)
    cuts.push_back(wire.size() - (i + 1) * crypto::kAesBlockBytes);

  for (const std::size_t cut : cuts) {
    ASSERT_LT(cut, wire.size());
    EXPECT_FALSE(SealedBlob::deserialize(BytesView(wire.data(), cut)).has_value())
        << "truncation at " << cut << " must not parse";
  }
  // Trailing garbage is rejected too.
  Bytes extended = wire;
  extended.push_back(0);
  EXPECT_FALSE(SealedBlob::deserialize(extended).has_value());
  // And the untruncated wire still parses.
  EXPECT_TRUE(SealedBlob::deserialize(wire).has_value());
}

TEST(SealedBlobFormat, OverflowingLengthFieldsRejected) {
  // A header-only file whose near-2^64 plaintext_bytes would wrap the
  // exact-length arithmetic (chunk_count -> 0, expected -> header size) and
  // drive a wild-length ciphertext copy if lengths were trusted unbounded.
  // Header layout: magic(4) ver+reserved(4) binding(32) content(32)
  // nonce(16) plaintext(8) chunk_bytes(8) n_chunks(8) = 112 bytes.
  Bytes hostile(112, 0);
  store_be32(hostile.data(), kSealedBlobMagic);
  hostile[5] = static_cast<u8>(kSealedBlobVersion);
  store_be64(hostile.data() + 88, 0xFFFF'FFFF'FFFF'FFF0ull);  // plaintext
  store_be64(hostile.data() + 96, kSealChunkBytes);
  store_be64(hostile.data() + 104, 0);  // wrapped chunk count
  EXPECT_FALSE(SealedBlob::deserialize(hostile).has_value());

  // Same shape with a "plausible" chunk count is rejected too.
  store_be64(hostile.data() + 104, 1);
  EXPECT_FALSE(SealedBlob::deserialize(hostile).has_value());
}

TEST(SealedBlobFormat, HeaderBitFlipsFailClosed) {
  const Bytes payload = random_bytes(kSealChunkBytes + 100, 10);
  const SealedBlob blob =
      seal_blob(test_key(0x99), test_binding(0xaa), test_nonce(11), payload,
                crypto::Sha256::hash(payload));
  const Bytes wire = blob.serialize();
  const std::size_t header_bytes = blob.header.serialize().size();

  for (std::size_t i = 0; i < header_bytes; ++i) {
    Bytes mutated = wire;
    mutated[i] ^= 0x40;
    const std::optional<SealedBlob> parsed = SealedBlob::deserialize(mutated);
    if (!parsed) continue;  // structural rejection is fine
    Bytes opened;
    const SealStatus status =
        unseal_blob(test_key(0x99), test_binding(0xaa), *parsed, opened);
    EXPECT_NE(status, SealStatus::kOk) << "header byte " << i;
    EXPECT_TRUE(opened.empty()) << "no plaintext may escape a failed unseal";
  }
}

TEST(SealedBlobFormat, ChunkAndMacBitFlipsRejected) {
  const Bytes payload = random_bytes(2 * kSealChunkBytes + 333, 12);
  SealedBlob blob =
      seal_blob(test_key(0xbb), test_binding(0xcc), test_nonce(13), payload,
                crypto::Sha256::hash(payload));

  // A flip in every chunk's ciphertext (first, middle and last byte).
  for (u64 chunk = 0; chunk < blob.header.chunk_count(); ++chunk) {
    const u64 base = chunk * kSealChunkBytes;
    const u64 len =
        std::min<u64>(kSealChunkBytes, blob.ciphertext.size() - base);
    for (const u64 offset : {base, base + len / 2, base + len - 1}) {
      SealedBlob mutated = blob;
      mutated.ciphertext[offset] ^= 0x01;
      Bytes opened;
      EXPECT_EQ(unseal_blob(test_key(0xbb), test_binding(0xcc), mutated, opened),
                SealStatus::kBadBlob);
      EXPECT_TRUE(opened.empty());
    }
  }
  // A flip in every chunk MAC.
  for (u64 chunk = 0; chunk < blob.header.chunk_count(); ++chunk) {
    SealedBlob mutated = blob;
    mutated.chunk_macs[chunk][5] ^= 0x80;
    Bytes opened;
    EXPECT_EQ(unseal_blob(test_key(0xbb), test_binding(0xcc), mutated, opened),
              SealStatus::kBadBlob);
  }
  // A flip in the chain MAC.
  {
    SealedBlob mutated = blob;
    mutated.chain_mac[0] ^= 0x01;
    Bytes opened;
    EXPECT_EQ(unseal_blob(test_key(0xbb), test_binding(0xcc), mutated, opened),
              SealStatus::kBadBlob);
  }
  // Swapping two chunk MACs (consistent list, wrong order) is caught by the
  // per-chunk index binding.
  {
    SealedBlob mutated = blob;
    const crypto::AesBlock mac0 = mutated.chunk_macs[0];
    mutated.chunk_macs[0] = mutated.chunk_macs[1];
    mutated.chunk_macs[1] = mac0;
    Bytes opened;
    EXPECT_EQ(unseal_blob(test_key(0xbb), test_binding(0xcc), mutated, opened),
              SealStatus::kBadBlob);
  }
}

TEST(SealedBlobFormat, VersionDowngradeRejected) {
  const Bytes payload = random_bytes(600, 14);
  SealedBlob blob =
      seal_blob(test_key(0xdd), test_binding(0xee), test_nonce(15), payload,
                crypto::Sha256::hash(payload));
  blob.header.version = 1;  // retired format
  Bytes opened;
  EXPECT_EQ(unseal_blob(test_key(0xdd), test_binding(0xee), blob, opened),
            SealStatus::kBadVersion);
  EXPECT_TRUE(opened.empty());

  // Even with the version "fixed up" on the wire, the chain MAC was computed
  // over the original header, so a re-serialized downgrade cannot verify.
  blob.header.version = 3;
  EXPECT_EQ(unseal_blob(test_key(0xdd), test_binding(0xee), blob, opened),
            SealStatus::kBadVersion);
}

TEST(SealedBlobFormat, WrongDeviceAndWrongKeyRejected) {
  const Bytes payload = random_bytes(2048, 16);
  const SealedBlob blob =
      seal_blob(test_key(0x10), test_binding(0x20), test_nonce(17), payload,
                crypto::Sha256::hash(payload));
  Bytes opened;
  // Another device's binding: clean wrong-device answer.
  EXPECT_EQ(unseal_blob(test_key(0x10), test_binding(0x21), blob, opened),
            SealStatus::kWrongDevice);
  // Right binding claim, wrong root key (a device lying about its identity):
  // MAC chain fails.
  EXPECT_EQ(unseal_blob(test_key(0x12), test_binding(0x20), blob, opened),
            SealStatus::kBadBlob);
  EXPECT_TRUE(opened.empty());
}

// --- ModelPackage ------------------------------------------------------------

// --- Fused seal pipeline (SealedBlobWriter / SealedBlobReader) ---------------
//
// The fused path must be wire-compatible with seal_blob/unseal_blob in both
// directions: a writer-produced blob is byte-identical to a seal_blob()
// blob of the same inputs (CTR and CMAC are deterministic), old-path blobs
// open on the fused reader, fused blobs open on the old path, and the
// hostile-input sweep rejects exactly the same mutations.

SealedBlob fused_seal(const crypto::AesKey& key, const BindingId& binding,
                      const crypto::AesBlock& nonce, BytesView payload,
                      const ContentId& content_id) {
  SealedBlobWriter writer(key, binding, nonce, payload.size());
  std::copy(payload.begin(), payload.end(), writer.payload().begin());
  return writer.finish(content_id);
}

/// Payload sizes around every interesting boundary: sub-chunk, exact chunk
/// multiples, one byte either side, and a multi-chunk size one byte past
/// 8 MiB (the bench's model size).
const std::size_t kBoundaryPayloadSizes[] = {
    1,          512,           kSealChunkBytes - 1,
    kSealChunkBytes,           kSealChunkBytes + 1,
    3 * kSealChunkBytes + 17,  (8u << 20) + 1};

TEST(FusedSealPipeline, WriterOutputByteIdenticalToSealBlob) {
  for (const std::size_t n : kBoundaryPayloadSizes) {
    const Bytes payload = random_bytes(n, 0x900 + n);
    const ContentId cid = crypto::Sha256::hash(payload);
    const SealedBlob old_path =
        seal_blob(test_key(0x21), test_binding(0x22), test_nonce(23), payload, cid);
    const SealedBlob fused =
        fused_seal(test_key(0x21), test_binding(0x22), test_nonce(23), payload, cid);
    EXPECT_EQ(old_path.serialize(), fused.serialize())
        << "wire divergence at payload size " << n;
  }
}

TEST(FusedSealPipeline, ChunkViewsTileThePayloadAndProduceTheSameBlob) {
  // Producing the payload through the per-chunk views must tile it exactly
  // and yield the identical wire blob as the whole-payload fill.
  const Bytes payload = random_bytes(2 * kSealChunkBytes + 777, 0x51);
  const ContentId cid = crypto::Sha256::hash(payload);

  SealedBlobWriter writer(test_key(0x52), test_binding(0x53), test_nonce(54),
                          payload.size());
  u64 tiled = 0;
  for (u64 c = 0; c < writer.chunk_count(); ++c) {
    const MutBytesView view = writer.chunk(c);
    ASSERT_EQ(view.data(), writer.payload().data() + c * kSealChunkBytes);
    std::copy(payload.begin() + static_cast<long>(tiled),
              payload.begin() + static_cast<long>(tiled + view.size()),
              view.begin());
    tiled += view.size();
  }
  EXPECT_EQ(tiled, payload.size());
  EXPECT_THROW(writer.chunk(writer.chunk_count()), std::invalid_argument);

  const SealedBlob via_chunks = writer.finish(cid);
  const SealedBlob via_payload =
      fused_seal(test_key(0x52), test_binding(0x53), test_nonce(54), payload, cid);
  EXPECT_EQ(via_chunks.serialize(), via_payload.serialize());
}

TEST(FusedSealPipeline, EmptyPayloadRejectedOnBothPaths) {
  const ContentId cid{};
  EXPECT_THROW(seal_blob(test_key(1), test_binding(2), test_nonce(3),
                         BytesView(), cid),
               std::invalid_argument);
  EXPECT_THROW(SealedBlobWriter(test_key(1), test_binding(2), test_nonce(3), 0),
               std::invalid_argument);
}

TEST(FusedSealPipeline, CrossPathCompatBothDirections) {
  for (const std::size_t n : kBoundaryPayloadSizes) {
    const Bytes payload = random_bytes(n, 0xa00 + n);
    const ContentId cid = crypto::Sha256::hash(payload);

    // Old-path blob → fused reader.
    const SealedBlob old_path =
        seal_blob(test_key(0x31), test_binding(0x32), test_nonce(33), payload, cid);
    SealedBlobReader reader(test_key(0x31), test_binding(0x32), old_path);
    ASSERT_EQ(reader.status(), SealStatus::kOk) << "size " << n;
    Bytes via_reader(reader.plaintext_bytes());
    reader.read_all(via_reader);
    EXPECT_EQ(via_reader, payload);

    // Fused blob → old unseal path.
    const SealedBlob fused =
        fused_seal(test_key(0x31), test_binding(0x32), test_nonce(34), payload, cid);
    Bytes via_old;
    ASSERT_EQ(unseal_blob(test_key(0x31), test_binding(0x32), fused, via_old),
              SealStatus::kOk);
    EXPECT_EQ(via_old, payload);

    // Chunk-at-a-time reads tile the payload exactly.
    Bytes via_chunks(reader.plaintext_bytes());
    for (u64 c = 0; c < reader.chunk_count(); ++c)
      reader.read_chunk(c, MutBytesView(via_chunks.data() + c * kSealChunkBytes,
                                        reader.chunk_bytes(c)));
    EXPECT_EQ(via_chunks, payload);
  }
}

TEST(FusedSealPipeline, ReaderHostileBitFlipSweep) {
  // The PR 4 hostile sweep, re-run against the fused reader: a flip in any
  // chunk's ciphertext, any chunk MAC, the chain MAC, a swapped MAC pair, a
  // version downgrade, the wrong binding and the wrong root key must all
  // fail closed with the same statuses unseal_blob answers.
  const Bytes payload = random_bytes(2 * kSealChunkBytes + 333, 0x41);
  const SealedBlob blob = fused_seal(test_key(0x42), test_binding(0x43),
                                     test_nonce(44), payload,
                                     crypto::Sha256::hash(payload));

  const auto fused_status = [](const crypto::AesKey& key,
                               const BindingId& binding,
                               const SealedBlob& candidate) {
    SealedBlobReader reader(key, binding, candidate);
    return reader.status();
  };

  for (u64 chunk = 0; chunk < blob.header.chunk_count(); ++chunk) {
    const u64 base = chunk * kSealChunkBytes;
    const u64 len = std::min<u64>(kSealChunkBytes, blob.ciphertext.size() - base);
    for (const u64 offset : {base, base + len / 2, base + len - 1}) {
      SealedBlob mutated = blob;
      mutated.ciphertext[offset] ^= 0x01;
      EXPECT_EQ(fused_status(test_key(0x42), test_binding(0x43), mutated),
                SealStatus::kBadBlob);
    }
    SealedBlob mac_flip = blob;
    mac_flip.chunk_macs[chunk][5] ^= 0x80;
    EXPECT_EQ(fused_status(test_key(0x42), test_binding(0x43), mac_flip),
              SealStatus::kBadBlob);
  }
  {
    SealedBlob mutated = blob;
    mutated.chain_mac[0] ^= 0x01;
    EXPECT_EQ(fused_status(test_key(0x42), test_binding(0x43), mutated),
              SealStatus::kBadBlob);
  }
  {
    SealedBlob mutated = blob;
    std::swap(mutated.chunk_macs[0], mutated.chunk_macs[1]);
    EXPECT_EQ(fused_status(test_key(0x42), test_binding(0x43), mutated),
              SealStatus::kBadBlob);
  }
  {
    SealedBlob mutated = blob;
    mutated.header.version = 1;
    EXPECT_EQ(fused_status(test_key(0x42), test_binding(0x43), mutated),
              SealStatus::kBadVersion);
  }
  EXPECT_EQ(fused_status(test_key(0x42), test_binding(0x77), blob),
            SealStatus::kWrongDevice);
  EXPECT_EQ(fused_status(test_key(0x77), test_binding(0x43), blob),
            SealStatus::kBadBlob);

  // A rejected reader never yields plaintext.
  SealedBlob mutated = blob;
  mutated.ciphertext[0] ^= 0x01;
  SealedBlobReader rejected(test_key(0x42), test_binding(0x43), mutated);
  ASSERT_NE(rejected.status(), SealStatus::kOk);
  Bytes sink(payload.size());
  EXPECT_THROW(rejected.read_all(sink), std::logic_error);
}

TEST(FusedSealPipeline, DeviceSealCacheTracksRegionMutations) {
  // Content-id caching must never serve a stale id. Run without integrity
  // (GuardNN_C) so overwriting the weight region with feature-keyed data
  // changes what a weight-VN read returns instead of failing it — exactly
  // the case where only correct invalidation keeps the id honest.
  crypto::HmacDrbg ca_drbg(Bytes{0x61});
  crypto::ManufacturerCa ca(ca_drbg);
  accel::UntrustedMemory mem;
  accel::GuardNnDevice device("cache-dev", ca, mem, Bytes{0x62});
  RemoteUser user(ca.public_key(), Bytes{0x63});
  ASSERT_TRUE(user.attest_device(device.get_pk()));
  ASSERT_TRUE(user.complete_session(
      device.init_session(user.begin_session(), /*integrity=*/false)));
  const accel::SessionId sid = user.session_id();

  const Bytes weights = random_bytes(4096, 0x64);
  ASSERT_EQ(device.set_weight(sid, user.seal(weights), 0), DeviceStatus::kOk);
  const Bytes descriptor{'c', 'a', 'c', 'h', 'e'};

  SealedBlob first;
  ASSERT_EQ(device.seal_model(sid, 0, weights.size(), descriptor, first),
            DeviceStatus::kOk);
  SealedBlob repeat;
  ASSERT_EQ(device.seal_model(sid, 0, weights.size(), descriptor, repeat),
            DeviceStatus::kOk);
  EXPECT_EQ(first.header.content_id, repeat.header.content_id)
      << "repeat seal of an untouched region must reuse the same identity";

  // A different descriptor must miss the cache.
  SealedBlob other_desc;
  ASSERT_EQ(device.seal_model(sid, 0, weights.size(), Bytes{'x'}, other_desc),
            DeviceStatus::kOk);
  EXPECT_NE(other_desc.header.content_id, first.header.content_id);

  // A feature write landing inside the region invalidates the cached id.
  ASSERT_EQ(device.set_input(sid, user.seal(random_bytes(512, 0x65)), 0),
            DeviceStatus::kOk);
  SealedBlob after_overlap;
  ASSERT_EQ(device.seal_model(sid, 0, weights.size(), descriptor, after_overlap),
            DeviceStatus::kOk);
  EXPECT_NE(after_overlap.header.content_id, first.header.content_id)
      << "stale cached content id served after an overlapping write";

  // Re-importing the weights gives the original identity back (fresh CTR_W,
  // fresh hash over the same bytes).
  ASSERT_EQ(device.set_weight(sid, user.seal(weights), 0), DeviceStatus::kOk);
  SealedBlob restored;
  ASSERT_EQ(device.seal_model(sid, 0, weights.size(), descriptor, restored),
            DeviceStatus::kOk);
  EXPECT_EQ(restored.header.content_id, first.header.content_id);
}

TEST(FusedSealPipeline, RepeatedUnsealKeepsAttestationHashHonest) {
  // The verified-blob memo skips the SHA passes on repeat loads; the
  // attested weight hash must still be exactly SHA-256 of the weights on
  // every load, and tampering between loads must still fail.
  crypto::HmacDrbg ca_drbg(Bytes{0x71});
  crypto::ManufacturerCa ca(ca_drbg);
  accel::UntrustedMemory mem;
  accel::GuardNnDevice device("memo-dev", ca, mem, Bytes{0x72});
  RemoteUser user(ca.public_key(), Bytes{0x73});
  ASSERT_TRUE(user.attest_device(device.get_pk()));
  ASSERT_TRUE(user.complete_session(
      device.init_session(user.begin_session(), true)));
  const accel::SessionId sid = user.session_id();

  const Bytes weights = random_bytes(3 * kSealChunkBytes + 99, 0x74);
  ASSERT_EQ(device.set_weight(sid, user.seal(weights), 0), DeviceStatus::kOk);
  SealedBlob blob;
  ASSERT_EQ(device.seal_model(sid, 0, weights.size(), Bytes{'m'}, blob),
            DeviceStatus::kOk);

  const crypto::Sha256Digest expected = crypto::Sha256::hash(weights);
  for (int round = 0; round < 3; ++round) {
    Bytes descriptor_out;
    ASSERT_EQ(device.unseal_model(sid, blob, 0, descriptor_out),
              DeviceStatus::kOk);
    accel::SignOutputResponse report;
    ASSERT_EQ(device.sign_output(sid, report), DeviceStatus::kOk);
    EXPECT_EQ(report.weight_hash, expected) << "round " << round;
  }

  // A tampered copy of the memoized blob must still be rejected: the memo
  // never bypasses MAC verification.
  SealedBlob tampered = blob;
  tampered.ciphertext[kSealChunkBytes + 7] ^= 0x04;
  Bytes descriptor_out;
  EXPECT_EQ(device.unseal_model(sid, tampered, 0, descriptor_out),
            DeviceStatus::kBadRecord);
}

TEST(ModelPackageCodec, RoundTrip) {
  ModelPackage package;
  package.descriptor = random_bytes(77, 18);
  package.weights = random_bytes(3000, 19);
  package.weight_vn = 42;
  const Bytes wire = package.serialize();
  const std::optional<ModelPackage> parsed = ModelPackage::parse(wire);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->descriptor, package.descriptor);
  EXPECT_EQ(parsed->weights, package.weights);
  EXPECT_EQ(parsed->weight_vn, 42u);

  // Truncations and garbage are rejected.
  for (const std::size_t cut : {std::size_t{0}, std::size_t{10}, wire.size() - 1})
    EXPECT_FALSE(ModelPackage::parse(BytesView(wire.data(), cut)).has_value());
  EXPECT_FALSE(ModelPackage::parse(random_bytes(64, 20)).has_value());
}

// --- Model descriptor codec --------------------------------------------------

TEST(ModelCodec, DescriptorRoundTripAndNetworkRebuild) {
  const FuncNetwork net = small_cnn(77);
  const Bytes descriptor = host::serialize_descriptor(net, /*train_step=*/9);
  const auto parsed = host::parse_descriptor(descriptor);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->train_step, 9u);
  ASSERT_EQ(parsed->net.layers.size(), net.layers.size());
  EXPECT_EQ(parsed->net.in_c, net.in_c);
  EXPECT_EQ(parsed->net.bits, net.bits);
  for (std::size_t i = 0; i < net.layers.size(); ++i) {
    EXPECT_EQ(parsed->net.layers[i].kind, net.layers[i].kind);
    EXPECT_EQ(parsed->net.layers[i].out_c, net.layers[i].out_c);
    EXPECT_TRUE(parsed->net.layers[i].weights.empty());
  }

  // Rebuilding from (descriptor, packed blob) restores a network whose
  // reference run matches the original bit-for-bit.
  const host::ExecutionPlan plan = host::HostScheduler::compile(net);
  const auto rebuilt = host::network_from_package(descriptor, plan.weight_blob);
  ASSERT_TRUE(rebuilt.has_value());
  for (std::size_t i = 0; i < net.layers.size(); ++i)
    EXPECT_EQ(rebuilt->layers[i].weights, net.layers[i].weights) << "layer " << i;
  const functional::Tensor input = random_input(net, 21);
  EXPECT_EQ(host::reference_run(*rebuilt, input), host::reference_run(net, input));

  // Hostile descriptors are rejected, not trusted.
  EXPECT_FALSE(host::parse_descriptor(random_bytes(40, 22)).has_value());
  Bytes bad_kind = descriptor;
  bad_kind[40] = 0xff;  // first layer's kind byte (after the 40-byte prefix)
  EXPECT_FALSE(host::parse_descriptor(bad_kind).has_value());
  // stride 0 on a stride-dividing kind would SIGFPE in out_dim downstream.
  FuncNetwork zero_stride = small_cnn(77);
  zero_stride.layers[2].stride = 0;  // the maxpool layer
  EXPECT_FALSE(
      host::parse_descriptor(host::serialize_descriptor(zero_stride)).has_value());
  // A residual referencing the current/later layer would index
  // reference_run's intermediates out of bounds.
  FuncNetwork forward_add = small_cnn(77);
  forward_add.layers[1].kind = ForwardOp::Kind::kAdd;
  forward_add.layers[1].input2_layer = 3;
  EXPECT_FALSE(
      host::parse_descriptor(host::serialize_descriptor(forward_add)).has_value());
  // Blob too short for the descriptor's layers.
  EXPECT_FALSE(host::network_from_package(
                   descriptor, BytesView(plan.weight_blob.data(), 64))
                   .has_value());
}

// --- ModelStore --------------------------------------------------------------

TEST(ModelPackageCodec, ViewParseMatchesOwningParseAndLayout) {
  ModelPackage package;
  package.descriptor = random_bytes(77, 0xb1);
  package.weights = random_bytes(4096 + 13, 0xb2);
  package.weight_vn = 0x1234'5678'9abcULL;
  const Bytes wire = package.serialize();

  // layout_package writes the identical wire bytes.
  Bytes laid(store::serialized_package_bytes(package.descriptor.size(),
                                             package.weights.size()));
  const MutBytesView weight_area = store::layout_package(
      laid, package.descriptor, package.weights.size(), package.weight_vn);
  std::copy(package.weights.begin(), package.weights.end(), weight_area.begin());
  EXPECT_EQ(laid, wire);

  // The zero-copy view parses to the same fields and identity.
  const auto view = ModelPackageView::parse(wire);
  ASSERT_TRUE(view.has_value());
  EXPECT_TRUE(std::equal(view->descriptor.begin(), view->descriptor.end(),
                         package.descriptor.begin(), package.descriptor.end()));
  EXPECT_TRUE(std::equal(view->weights.begin(), view->weights.end(),
                         package.weights.begin(), package.weights.end()));
  EXPECT_EQ(view->weight_vn, package.weight_vn);
  EXPECT_EQ(view->content_id(), package.content_id());

  // Same rejects as the owning parser.
  for (const auto mutate : {std::size_t{0}, wire.size() - 1}) {
    Bytes truncated(wire.begin(), wire.begin() + static_cast<long>(mutate));
    EXPECT_EQ(ModelPackageView::parse(truncated).has_value(),
              ModelPackage::parse(truncated).has_value());
  }
  Bytes trailing = wire;
  trailing.push_back(0);
  EXPECT_FALSE(ModelPackageView::parse(trailing).has_value());
}

TEST(ModelStoreTest, DirectoryBackendIgnoresOrphanTempFiles) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() / "guardnn_store_tmp_skip_test";
  fs::remove_all(dir);

  const Bytes payload = random_bytes(2048, 0xc1);
  const SealedBlob blob = seal_blob(test_key(0xc2), test_binding(0xc3),
                                    test_nonce(0xc4), payload,
                                    crypto::Sha256::hash(payload));
  {
    ModelStore store(std::make_unique<DirectoryBackend>(dir.string()));
    ASSERT_TRUE(store.put(blob).has_value());
  }
  // A crash between write and rename leaves a .tmp orphan — even one whose
  // contents are a fully valid blob must never be indexed as a replica.
  {
    std::ofstream orphan(dir / "crashed-checkpoint.gnnblob.tmp",
                         std::ios::binary);
    const Bytes valid = blob.serialize();
    orphan.write(reinterpret_cast<const char*>(valid.data()),
                 static_cast<std::streamsize>(valid.size()));
  }
  ModelStore reopened(std::make_unique<DirectoryBackend>(dir.string()));
  EXPECT_EQ(reopened.replica_count(), 1u);
  EXPECT_TRUE(
      reopened.get(blob.header.content_id, blob.header.binding_id).has_value());
  fs::remove_all(dir);
}

TEST(ModelStoreTest, PutGetDedupAndReplicas) {
  ModelStore store;
  const Bytes payload = random_bytes(5000, 23);
  const SealedBlob replica_a =
      seal_blob(test_key(0x31), test_binding(0x41), test_nonce(24), payload,
                crypto::Sha256::hash(payload));
  const SealedBlob replica_b =
      seal_blob(test_key(0x32), test_binding(0x42), test_nonce(25), payload,
                crypto::Sha256::hash(payload));

  const auto content = store.put(replica_a);
  ASSERT_TRUE(content.has_value());
  EXPECT_EQ(*content, crypto::Sha256::hash(payload));
  // Same (content, binding): deduplicated.
  EXPECT_EQ(store.put(replica_a), content);
  EXPECT_EQ(store.stats().puts, 1u);
  EXPECT_EQ(store.stats().dedup_hits, 1u);
  EXPECT_EQ(store.replica_count(), 1u);

  // Same content, second device binding: a second replica of one model.
  EXPECT_EQ(store.put(replica_b), content);
  EXPECT_EQ(store.replica_count(), 2u);
  EXPECT_EQ(store.bindings(*content).size(), 2u);
  EXPECT_EQ(store.contents().size(), 1u);

  const auto fetched = store.get(*content, test_binding(0x41));
  ASSERT_TRUE(fetched.has_value());
  EXPECT_EQ(fetched->serialize(), replica_a.serialize());
  EXPECT_FALSE(store.get(*content, test_binding(0x43)).has_value());

  const u64 bytes_before_erase = store.stats().bytes_stored;
  EXPECT_TRUE(store.erase(*content, test_binding(0x41)));
  EXPECT_FALSE(store.contains(*content, test_binding(0x41)));
  EXPECT_TRUE(store.contains(*content, test_binding(0x42)));
  EXPECT_LT(store.stats().bytes_stored, bytes_before_erase)
      << "erase must release the replica's accounted bytes";
}

TEST(ModelStoreTest, DirectoryBackendPersistsAcrossReopen) {
  const std::filesystem::path dir =
      std::filesystem::current_path() / "store_test_blobs";
  std::filesystem::remove_all(dir);

  const Bytes payload = random_bytes(kSealChunkBytes + 17, 26);
  const SealedBlob blob =
      seal_blob(test_key(0x51), test_binding(0x61), test_nonce(27), payload,
                crypto::Sha256::hash(payload));
  ContentId content{};
  {
    ModelStore store(std::make_unique<DirectoryBackend>(dir.string()));
    const auto id = store.put(blob);
    ASSERT_TRUE(id.has_value());
    content = *id;
  }
  {
    // A fresh store over the same directory re-indexes the persisted blob
    // and the payload still unseals bit-identically.
    ModelStore store(std::make_unique<DirectoryBackend>(dir.string()));
    EXPECT_EQ(store.replica_count(), 1u);
    const auto fetched = store.get(content, test_binding(0x61));
    ASSERT_TRUE(fetched.has_value());
    Bytes opened;
    ASSERT_EQ(unseal_blob(test_key(0x51), test_binding(0x61), *fetched, opened),
              SealStatus::kOk);
    EXPECT_EQ(opened, payload);
  }
  {
    // Truncate the persisted file: reopen skips it (untrusted storage is
    // never trusted to parse, let alone verify).
    for (const auto& entry : std::filesystem::directory_iterator(dir))
      std::filesystem::resize_file(entry.path(), 10);
    ModelStore store(std::make_unique<DirectoryBackend>(dir.string()));
    EXPECT_EQ(store.replica_count(), 0u);
  }
  std::filesystem::remove_all(dir);
}

// --- Device SealModel / UnsealModel ------------------------------------------

struct DeviceRig {
  accel::UntrustedMemory memory;
  crypto::HmacDrbg ca_drbg{Bytes{0xd1}};
  crypto::ManufacturerCa ca{ca_drbg};
  accel::GuardNnDevice device{"store-dev-a", ca, memory, Bytes{0xd2}};

  /// Opens a session for a fresh user; returns (user, session id).
  std::unique_ptr<RemoteUser> open(accel::SessionId& sid, u8 seed,
                                   bool integrity = true) {
    auto user = std::make_unique<RemoteUser>(ca.public_key(), Bytes{seed, 0x07});
    if (!user->attest_device(device.get_pk())) return nullptr;
    if (!user->complete_session(
            device.init_session(user->begin_session(), integrity)))
      return nullptr;
    sid = user->session_id();
    return user;
  }
};

/// Runs the compiled plan in `sid` with a fresh input import and returns the
/// decrypted output.
std::optional<Bytes> run_inference(accel::GuardNnDevice& device, RemoteUser& user,
                                   accel::SessionId sid,
                                   const host::ExecutionPlan& plan,
                                   const functional::Tensor& input) {
  host::HostScheduler scheduler(device, sid);
  const Bytes input_bytes(input.bytes().begin(), input.bytes().end());
  if (device.set_input(sid, user.seal(input_bytes), plan.input_addr) !=
      DeviceStatus::kOk)
    return std::nullopt;
  scheduler.note_input();
  if (scheduler.execute(plan) != DeviceStatus::kOk) return std::nullopt;
  crypto::SealedRecord sealed;
  if (device.export_output(sid, plan.output_addr, plan.output_bytes, sealed) !=
      DeviceStatus::kOk)
    return std::nullopt;
  return user.open_output(sealed);
}

TEST(DeviceSealUnseal, SecondSessionRunsBitIdentical) {
  DeviceRig rig;
  const FuncNetwork net = small_cnn(91);
  const host::ExecutionPlan plan = host::HostScheduler::compile(net);
  const functional::Tensor input = random_input(net, 92);

  // Session 1: user loads the model over the secure channel, runs golden.
  accel::SessionId sid1 = accel::kInvalidSession;
  auto user1 = rig.open(sid1, 0x31);
  ASSERT_TRUE(user1);
  ASSERT_EQ(rig.device.set_weight(sid1, user1->seal(plan.weight_blob),
                                  plan.weight_base),
            DeviceStatus::kOk);
  const auto golden = run_inference(rig.device, *user1, sid1, plan, input);
  ASSERT_TRUE(golden.has_value());

  // SealModel: host gets only ciphertext (no weight window in the blob).
  const Bytes descriptor = host::serialize_descriptor(net);
  SealedBlob blob;
  ASSERT_EQ(rig.device.seal_model(sid1, plan.weight_base,
                                  plan.weight_blob.size(), descriptor, blob),
            DeviceStatus::kOk);
  EXPECT_EQ(blob.header.binding_id, rig.device.store_binding());
  EXPECT_FALSE(contains_window(blob.serialize(), plan.weight_blob));

  // Session 2 (fresh keys, fresh partition counters): UnsealModel restores
  // the weights without any user upload; inference is bit-identical.
  accel::SessionId sid2 = accel::kInvalidSession;
  auto user2 = rig.open(sid2, 0x32);
  ASSERT_TRUE(user2);
  Bytes descriptor_out;
  u64 checkpoint_vn = 0;
  ASSERT_EQ(rig.device.unseal_model(sid2, blob, plan.weight_base, descriptor_out,
                                    &checkpoint_vn),
            DeviceStatus::kOk);
  EXPECT_EQ(descriptor_out, descriptor);
  EXPECT_EQ(checkpoint_vn, 1u);  // CTR_W when session 1 sealed
  EXPECT_EQ(rig.device.vn_generator(sid2).ctr_w(), 1u);

  const auto replay = run_inference(rig.device, *user2, sid2, plan, input);
  ASSERT_TRUE(replay.has_value());
  EXPECT_EQ(*replay, *golden) << "unsealed model must reproduce the golden run";
}

TEST(DeviceSealUnseal, TamperedBlobRejectedWithoutStateChange) {
  DeviceRig rig;
  const FuncNetwork net = small_cnn(93);
  const host::ExecutionPlan plan = host::HostScheduler::compile(net);

  accel::SessionId sid = accel::kInvalidSession;
  auto user = rig.open(sid, 0x33);
  ASSERT_TRUE(user);
  ASSERT_EQ(rig.device.set_weight(sid, user->seal(plan.weight_blob),
                                  plan.weight_base),
            DeviceStatus::kOk);
  SealedBlob blob;
  ASSERT_EQ(rig.device.seal_model(sid, plan.weight_base, plan.weight_blob.size(),
                                  host::serialize_descriptor(net), blob),
            DeviceStatus::kOk);

  accel::SessionId sid2 = accel::kInvalidSession;
  auto user2 = rig.open(sid2, 0x34);
  ASSERT_TRUE(user2);
  const u64 ctr_w_before = rig.device.vn_generator(sid2).ctr_w();

  Bytes descriptor_out;
  SealedBlob tampered = blob;
  tampered.ciphertext[100] ^= 0x04;
  EXPECT_EQ(rig.device.unseal_model(sid2, tampered, plan.weight_base,
                                    descriptor_out),
            DeviceStatus::kBadRecord);
  tampered = blob;
  tampered.header.version = 1;
  EXPECT_EQ(rig.device.unseal_model(sid2, tampered, plan.weight_base,
                                    descriptor_out),
            DeviceStatus::kBadRecord);
  EXPECT_TRUE(descriptor_out.empty());
  // Failed unseals advance nothing: an adversarial host cannot desync VNs.
  EXPECT_EQ(rig.device.vn_generator(sid2).ctr_w(), ctr_w_before);
  // Stale/forged session ids answer kNoSession, coarse as ever.
  EXPECT_EQ(rig.device.unseal_model(0xdead, blob, plan.weight_base,
                                    descriptor_out),
            DeviceStatus::kNoSession);
}

// --- Cross-device provisioning ----------------------------------------------

struct FleetRig {
  crypto::HmacDrbg ca_drbg{Bytes{0xf1}};
  crypto::ManufacturerCa ca{ca_drbg};
  accel::UntrustedMemory mem_a, mem_b, mem_c;
  accel::GuardNnDevice a{"fleet-a", ca, mem_a, Bytes{0xf2}};
  accel::GuardNnDevice b{"fleet-b", ca, mem_b, Bytes{0xf3}};
  accel::GuardNnDevice c{"fleet-c", ca, mem_c, Bytes{0xf4}};
};

TEST(CrossDeviceProvision, RewrapThenBitIdenticalInference) {
  FleetRig fleet;
  const FuncNetwork net = small_cnn(95);
  const host::ExecutionPlan plan = host::HostScheduler::compile(net);
  const functional::Tensor input = random_input(net, 96);

  // Golden run + seal on device A.
  accel::SessionId sid_a = accel::kInvalidSession;
  RemoteUser user_a(fleet.ca.public_key(), Bytes{0x41});
  ASSERT_TRUE(user_a.attest_device(fleet.a.get_pk()));
  ASSERT_TRUE(user_a.complete_session(
      fleet.a.init_session(user_a.begin_session(), true)));
  sid_a = user_a.session_id();
  ASSERT_EQ(fleet.a.set_weight(sid_a, user_a.seal(plan.weight_blob),
                               plan.weight_base),
            DeviceStatus::kOk);
  const auto golden = run_inference(fleet.a, user_a, sid_a, plan, input);
  ASSERT_TRUE(golden.has_value());

  SealedBlob blob_a;
  ASSERT_EQ(fleet.a.seal_model(sid_a, plan.weight_base, plan.weight_blob.size(),
                               host::serialize_descriptor(net), blob_a),
            DeviceStatus::kOk);

  // Persist to a directory-backed store and read it back (acceptance: the
  // replica that crosses devices went through untrusted storage).
  const std::filesystem::path dir =
      std::filesystem::current_path() / "store_test_provision";
  std::filesystem::remove_all(dir);
  ContentId content{};
  {
    ModelStore store(std::make_unique<DirectoryBackend>(dir.string()));
    const auto id = store.put(blob_a);
    ASSERT_TRUE(id.has_value());
    content = *id;
  }
  ModelStore store(std::make_unique<DirectoryBackend>(dir.string()));
  const auto persisted = store.get(content, fleet.a.store_binding());
  ASSERT_TRUE(persisted.has_value());

  // Three-step attested re-wrap A -> B; the host relays only ciphertext.
  accel::ProvisionRequest request;
  ASSERT_EQ(fleet.b.provision_begin(request), DeviceStatus::kOk);
  SealedBlob wrapped;
  accel::ProvisionGrant grant;
  ASSERT_EQ(fleet.a.export_for_device(*persisted, request, wrapped, grant),
            DeviceStatus::kOk);
  EXPECT_EQ(wrapped.header.binding_id, fleet.b.store_binding());
  EXPECT_FALSE(contains_window(wrapped.serialize(), plan.weight_blob));
  SealedBlob blob_b;
  ASSERT_EQ(fleet.b.provision_finish(wrapped, grant, blob_b), DeviceStatus::kOk);
  EXPECT_EQ(blob_b.header.binding_id, fleet.b.store_binding());
  EXPECT_EQ(blob_b.header.content_id, content);  // same logical model
  ASSERT_TRUE(store.put(blob_b).has_value());
  EXPECT_EQ(store.bindings(content).size(), 2u);

  // Unseal on B in a fresh tenant session; inference output must equal the
  // original device's golden run bit-for-bit.
  RemoteUser user_b(fleet.ca.public_key(), Bytes{0x42});
  ASSERT_TRUE(user_b.attest_device(fleet.b.get_pk()));
  ASSERT_TRUE(user_b.complete_session(
      fleet.b.init_session(user_b.begin_session(), true)));
  const accel::SessionId sid_b = user_b.session_id();
  Bytes descriptor_out;
  ASSERT_EQ(fleet.b.unseal_model(sid_b, blob_b, plan.weight_base, descriptor_out),
            DeviceStatus::kOk);
  const auto replicated = run_inference(fleet.b, user_b, sid_b, plan, input);
  ASSERT_TRUE(replicated.has_value());
  EXPECT_EQ(*replicated, *golden);

  std::filesystem::remove_all(dir);
}

TEST(CrossDeviceProvision, WrongDeviceAndForgedHandshakesRejected) {
  FleetRig fleet;
  const FuncNetwork net = small_cnn(97);
  const host::ExecutionPlan plan = host::HostScheduler::compile(net);

  RemoteUser user_a(fleet.ca.public_key(), Bytes{0x43});
  ASSERT_TRUE(user_a.attest_device(fleet.a.get_pk()));
  ASSERT_TRUE(user_a.complete_session(
      fleet.a.init_session(user_a.begin_session(), true)));
  const accel::SessionId sid_a = user_a.session_id();
  ASSERT_EQ(fleet.a.set_weight(sid_a, user_a.seal(plan.weight_blob),
                               plan.weight_base),
            DeviceStatus::kOk);
  SealedBlob blob_a;
  ASSERT_EQ(fleet.a.seal_model(sid_a, plan.weight_base, plan.weight_blob.size(),
                               host::serialize_descriptor(net), blob_a),
            DeviceStatus::kOk);

  // A blob bound to A cannot be unsealed or exported by B.
  Bytes descriptor_out;
  RemoteUser user_b(fleet.ca.public_key(), Bytes{0x44});
  ASSERT_TRUE(user_b.attest_device(fleet.b.get_pk()));
  ASSERT_TRUE(user_b.complete_session(
      fleet.b.init_session(user_b.begin_session(), true)));
  EXPECT_EQ(fleet.b.unseal_model(user_b.session_id(), blob_a, plan.weight_base,
                                 descriptor_out),
            DeviceStatus::kBadRecord);
  accel::ProvisionRequest request_c;
  ASSERT_EQ(fleet.c.provision_begin(request_c), DeviceStatus::kOk);
  SealedBlob wrapped;
  accel::ProvisionGrant grant;
  EXPECT_EQ(fleet.b.export_for_device(blob_a, request_c, wrapped, grant),
            DeviceStatus::kBadRecord);

  // Re-wrap addressed to B must not land on C: C's finish uses its own
  // pending share, so both the grant signature and the transport key fail.
  accel::ProvisionRequest request_b;
  ASSERT_EQ(fleet.b.provision_begin(request_b), DeviceStatus::kOk);
  ASSERT_EQ(fleet.a.export_for_device(blob_a, request_b, wrapped, grant),
            DeviceStatus::kOk);
  SealedBlob rebound;
  EXPECT_EQ(fleet.c.provision_finish(wrapped, grant, rebound),
            DeviceStatus::kBadRecord);
  // ... and a finish without a pending handshake is a clean operand error.
  EXPECT_EQ(fleet.c.provision_finish(wrapped, grant, rebound),
            DeviceStatus::kBadOperand);

  // Forged request: binding id not matching the certified identity.
  accel::ProvisionRequest forged = request_b;
  forged.binding_id = fleet.c.store_binding();
  EXPECT_EQ(fleet.a.export_for_device(blob_a, forged, wrapped, grant),
            DeviceStatus::kBadRecord);

  // Forged request: certificate from an unrelated CA.
  crypto::HmacDrbg rogue_drbg(Bytes{0x66});
  crypto::ManufacturerCa rogue_ca(rogue_drbg);
  accel::UntrustedMemory rogue_mem;
  accel::GuardNnDevice rogue("rogue", rogue_ca, rogue_mem, Bytes{0x67});
  accel::ProvisionRequest rogue_request;
  ASSERT_EQ(rogue.provision_begin(rogue_request), DeviceStatus::kOk);
  EXPECT_EQ(fleet.a.export_for_device(blob_a, rogue_request, wrapped, grant),
            DeviceStatus::kBadRecord);

  // Tampered grant signature.
  accel::ProvisionRequest request_b2;
  ASSERT_EQ(fleet.b.provision_begin(request_b2), DeviceStatus::kOk);
  ASSERT_EQ(fleet.a.export_for_device(blob_a, request_b2, wrapped, grant),
            DeviceStatus::kOk);
  accel::ProvisionGrant bad_grant = grant;
  bad_grant.signature.r.limb[0] ^= 1;
  EXPECT_EQ(fleet.b.provision_finish(wrapped, bad_grant, rebound),
            DeviceStatus::kBadRecord);
}

// --- Training checkpoint / restore -------------------------------------------

// The 4 -> 6 -> 3 MLP training step from train_device_test, packaged so a
// step can be driven in any fresh session (restore included) and mirrored in
// plaintext.
struct TrainRig {
  static constexpr int kIn = 4, kHidden = 6, kOut = 3;
  static constexpr int kShift = 3, kGradShift = 4, kLrShift = 3;
  static constexpr u64 kWBase = 0x0;
  static constexpr u64 kXAddr = 0x4000'0000ULL;
  static constexpr u64 kF0 = 0x4800'0000ULL;
  static constexpr u64 kF1 = 0x4880'0000ULL;
  static constexpr u64 kF2 = 0x4900'0000ULL;
  static constexpr u64 kDy = 0x4980'0000ULL;
  static constexpr u64 kDa1 = 0x4A00'0000ULL;
  static constexpr u64 kDh1 = 0x4A80'0000ULL;
  static constexpr u64 kGradBlob = 0x4B00'0000ULL;

  std::vector<i8> x = std::vector<i8>(kIn);
  Bytes initial_blob;

  TrainRig() {
    functional::FcWeights w1{kHidden, kIn}, w2{kOut, kHidden};
    Xoshiro256 rng(55);
    auto fill = [&](std::vector<i8>& v) {
      for (auto& e : v)
        e = static_cast<i8>(static_cast<int>(rng.next_below(17)) - 8);
    };
    fill(w1.data);
    fill(w2.data);
    fill(x);
    initial_blob.assign(1024, 0);
    std::copy(w1.data.begin(), w1.data.end(),
              reinterpret_cast<i8*>(initial_blob.data()));
    std::copy(w2.data.begin(), w2.data.end(),
              reinterpret_cast<i8*>(initial_blob.data() + 512));
  }

  /// Plaintext reference: one full train step over a packed weight blob.
  Bytes reference_step(const Bytes& blob) const {
    using namespace functional;
    FcWeights w1{kHidden, kIn}, w2{kOut, kHidden};
    std::copy(blob.begin(), blob.begin() + w1.data.size(),
              reinterpret_cast<u8*>(w1.data.data()));
    std::copy(blob.begin() + 512, blob.begin() + 512 + w2.data.size(),
              reinterpret_cast<u8*>(w2.data.data()));
    const std::vector<i8> h1 = fully_connected(x, w1, kShift, 8);
    std::vector<i8> a1 = h1;
    for (auto& v : a1) v = std::max<i8>(v, 0);
    const std::vector<i8> y = fully_connected(a1, w2, kShift, 8);
    const std::vector<i8> dy = y;  // target 0
    std::vector<i8> dh1 = fc_backward_input(dy, w2, kGradShift, 8);
    for (std::size_t i = 0; i < dh1.size(); ++i)
      if (h1[i] <= 0) dh1[i] = 0;
    const FcWeights dw2 = fc_backward_weights(dy, a1, kGradShift, 8);
    const FcWeights dw1 = fc_backward_weights(dh1, x, kGradShift, 8);
    sgd_update(w1.data, dw1.data, kLrShift, 8);
    sgd_update(w2.data, dw2.data, kLrShift, 8);
    Bytes updated(1024, 0);
    std::copy(w1.data.begin(), w1.data.end(),
              reinterpret_cast<i8*>(updated.data()));
    std::copy(w2.data.begin(), w2.data.end(),
              reinterpret_cast<i8*>(updated.data() + 512));
    return updated;
  }

  /// Drives one full forward+backward+SGD step through the ISA in a session
  /// whose weights sit at kWBase with CTR_W == 1 and which has seen no
  /// inputs yet. Leaves CTR_W == 2.
  [[nodiscard]] bool device_step(accel::GuardNnDevice& dev, RemoteUser& user,
                                 accel::SessionId sid) const {
    using K = ForwardOp::Kind;
    const Bytes x_bytes(reinterpret_cast<const u8*>(x.data()),
                        reinterpret_cast<const u8*>(x.data()) + x.size());
    if (dev.set_input(sid, user.seal(x_bytes), kXAddr) != DeviceStatus::kOk)
      return false;
    const u64 in1 = 1ULL << 32;

    auto fc = [&](K kind, int in_n, int out_n, int aux_n, u64 in_addr,
                  u64 in2_addr, u64 w_addr, u64 out_addr, int shift) {
      ForwardOp op;
      op.kind = kind;
      op.in_c = in_n; op.in_h = 1; op.in_w = 1;
      op.out_c = out_n;
      op.aux_c = aux_n; op.aux_h = aux_n > 0 ? 1 : 0; op.aux_w = aux_n > 0 ? 1 : 0;
      op.requant_shift = shift;
      op.input_addr = in_addr;
      op.input2_addr = in2_addr;
      op.weight_addr = w_addr;
      op.output_addr = out_addr;
      return op;
    };
    auto ok = [](DeviceStatus s) { return s == DeviceStatus::kOk; };

    // Forward: fc1 -> relu -> fc2 (write VNs in1|0,1,2).
    if (!ok(dev.set_read_ctr(sid, kXAddr, 512, in1 | 0))) return false;
    if (!ok(dev.forward(sid, fc(K::kFc, kIn, kHidden, 0, kXAddr, 0, kWBase, kF0,
                                kShift))))
      return false;
    if (!ok(dev.set_read_ctr(sid, kF0, 512, in1 | 0))) return false;
    if (!ok(dev.forward(sid, fc(K::kRelu, kHidden, 0, 0, kF0, 0, 0, kF1, 0))))
      return false;
    if (!ok(dev.set_read_ctr(sid, kF1, 512, in1 | 1))) return false;
    if (!ok(dev.forward(sid, fc(K::kFc, kHidden, kOut, 0, kF1, 0, kWBase + 512,
                                kF2, kShift))))
      return false;

    // Export logits; dy = y (target 0) goes back in as input 2.
    if (!ok(dev.set_read_ctr(sid, kF2, 512, in1 | 2))) return false;
    crypto::SealedRecord sealed;
    if (!ok(dev.export_output(sid, kF2, kOut, sealed))) return false;
    const auto y = user.open_output(sealed);
    if (!y) return false;
    if (!ok(dev.set_input(sid, user.seal(*y), kDy))) return false;
    const u64 in2 = 2ULL << 32;

    // Backward (write VNs in2|0..3).
    if (!ok(dev.set_read_ctr(sid, kDy, 512, in2 | 0))) return false;
    if (!ok(dev.forward(sid, fc(K::kFcDx, kOut, 0, kHidden, kDy, 0,
                                kWBase + 512, kDa1, kGradShift))))
      return false;
    if (!ok(dev.set_read_ctr(sid, kDa1, 512, in2 | 0))) return false;
    if (!ok(dev.set_read_ctr(sid, kF0, 512, in1 | 0))) return false;
    if (!ok(dev.forward(sid, fc(K::kReluDx, kHidden, 0, kHidden, kDa1, kF0, 0,
                                kDh1, 0))))
      return false;
    if (!ok(dev.set_read_ctr(sid, kDy, 512, in2 | 0))) return false;
    if (!ok(dev.set_read_ctr(sid, kF1, 512, in1 | 1))) return false;
    if (!ok(dev.forward(sid, fc(K::kFcDw, kOut, 0, kHidden, kDy, kF1, 0,
                                kGradBlob + 512, kGradShift))))
      return false;
    if (!ok(dev.set_read_ctr(sid, kDh1, 512, in2 | 1))) return false;
    if (!ok(dev.set_read_ctr(sid, kXAddr, 512, in1 | 0))) return false;
    if (!ok(dev.forward(sid, fc(K::kFcDw, kHidden, 0, kIn, kDh1, kXAddr, 0,
                                kGradBlob, kGradShift))))
      return false;

    // SGD over the whole blob.
    ForwardOp update;
    update.kind = K::kSgdUpdate;
    update.in_c = 1024; update.in_h = 1; update.in_w = 1;
    update.requant_shift = kLrShift;
    update.input_addr = kGradBlob;
    update.weight_addr = kWBase;
    if (!ok(dev.set_read_ctr(sid, kGradBlob, 512, in2 | 3))) return false;
    if (!ok(dev.set_read_ctr(sid, kGradBlob + 512, 512, in2 | 2))) return false;
    return ok(dev.forward(sid, update));
  }

  /// Exports the 1 KiB weight blob from a session (read VN = current CTR_W).
  std::optional<Bytes> export_weights(accel::GuardNnDevice& dev, RemoteUser& user,
                                      accel::SessionId sid) const {
    if (dev.set_read_ctr(sid, kWBase, 1024, dev.vn_generator(sid).ctr_w()) !=
        DeviceStatus::kOk)
      return std::nullopt;
    crypto::SealedRecord sealed;
    if (dev.export_output(sid, kWBase, 1024, sealed) != DeviceStatus::kOk)
      return std::nullopt;
    return user.open_output(sealed);
  }
};

TEST(TrainingCheckpoint, SuspendRestoreResumesBitIdentical) {
  TrainRig rig;
  FleetRig fleet;

  // Step 1 on device A.
  RemoteUser user_a(fleet.ca.public_key(), Bytes{0x51});
  ASSERT_TRUE(user_a.attest_device(fleet.a.get_pk()));
  ASSERT_TRUE(user_a.complete_session(
      fleet.a.init_session(user_a.begin_session(), true)));
  const accel::SessionId sid_a = user_a.session_id();
  ASSERT_EQ(fleet.a.set_weight(sid_a, user_a.seal(rig.initial_blob),
                               TrainRig::kWBase),
            DeviceStatus::kOk);
  ASSERT_TRUE(rig.device_step(fleet.a, user_a, sid_a));
  EXPECT_EQ(fleet.a.vn_generator(sid_a).ctr_w(), 2u);

  // Checkpoint: seal the updated weights with CTR_W metadata. The host
  // records the training step in the (public) descriptor.
  const Bytes descriptor{'m', 'l', 'p', '-', 's', 't', 'e', 'p', '1'};
  SealedBlob checkpoint;
  ASSERT_EQ(fleet.a.seal_model(sid_a, TrainRig::kWBase, 1024, descriptor,
                               checkpoint),
            DeviceStatus::kOk);
  ASSERT_EQ(fleet.a.close_session(sid_a), DeviceStatus::kOk);  // "suspend"

  const Bytes after_one = rig.reference_step(rig.initial_blob);

  // Provision the checkpoint to device B (the restore target).
  accel::ProvisionRequest request;
  ASSERT_EQ(fleet.b.provision_begin(request), DeviceStatus::kOk);
  SealedBlob wrapped;
  accel::ProvisionGrant grant;
  ASSERT_EQ(fleet.a.export_for_device(checkpoint, request, wrapped, grant),
            DeviceStatus::kOk);
  SealedBlob checkpoint_b;
  ASSERT_EQ(fleet.b.provision_finish(wrapped, grant, checkpoint_b),
            DeviceStatus::kOk);

  // Restore into a fresh session on B: weights identical to the suspended
  // run, VN freshness re-established (CTR_W restarts at 1 in the new
  // session; the sealed CTR_W arrives as metadata for the host's mirror).
  RemoteUser user_b(fleet.ca.public_key(), Bytes{0x52});
  ASSERT_TRUE(user_b.attest_device(fleet.b.get_pk()));
  ASSERT_TRUE(user_b.complete_session(
      fleet.b.init_session(user_b.begin_session(), true)));
  const accel::SessionId sid_b = user_b.session_id();
  Bytes descriptor_out;
  u64 checkpoint_vn = 0;
  ASSERT_EQ(fleet.b.unseal_model(sid_b, checkpoint_b, TrainRig::kWBase,
                                 descriptor_out, &checkpoint_vn),
            DeviceStatus::kOk);
  EXPECT_EQ(descriptor_out, descriptor);
  EXPECT_EQ(checkpoint_vn, 2u);  // CTR_W at suspend time
  EXPECT_EQ(fleet.b.vn_generator(sid_b).ctr_w(), 1u);

  const auto restored = rig.export_weights(fleet.b, user_b, sid_b);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(*restored, after_one)
      << "restored weights must be bit-identical to the suspended run";

  // Resume: step 2 on B matches two uninterrupted plaintext steps.
  ASSERT_TRUE(rig.device_step(fleet.b, user_b, sid_b));
  const auto after_resume = rig.export_weights(fleet.b, user_b, sid_b);
  ASSERT_TRUE(after_resume.has_value());
  EXPECT_EQ(*after_resume, rig.reference_step(after_one))
      << "resumed training must continue exactly where the checkpoint left off";
}

// --- Serving integration: store + replication under concurrency --------------

struct ServingRig {
  crypto::HmacDrbg ca_drbg{Bytes{0xa1}};
  crypto::ManufacturerCa ca{ca_drbg};

  struct Client {
    std::unique_ptr<RemoteUser> user;
    serving::TenantId tenant = 0;
    std::size_t device_index = 0;
  };

  Client connect(serving::InferenceServer& server, u8 seed) {
    Client client;
    client.user = std::make_unique<RemoteUser>(ca.public_key(), Bytes{seed, 0x09});
    const auto connected = server.connect(client.user->begin_session(), true);
    if (connected.tenant == 0) return client;
    client.tenant = connected.tenant;
    client.device_index = connected.device_index;
    if (!client.user->attest_device(server.get_pk(connected.device_index)))
      return client;
    if (!client.user->complete_session(connected.response)) client.tenant = 0;
    return client;
  }
};

TEST(ServingStore, HotModelReplicatesToSecondDevice) {
  ServingRig rig;
  serving::ServerConfig config;
  config.num_devices = 2;
  config.num_workers = 2;
  serving::InferenceServer server(rig.ca, config, Bytes{0xa2});

  const FuncNetwork net = small_cnn(101);
  const serving::ModelHandle model = server.register_model(net);
  const functional::Tensor input = random_input(net, 102);
  const Bytes reference = host::reference_run(net, input);

  // Tenant A uploads the model the classic way and seals it to the store.
  auto a = rig.connect(server, 0x61);
  ASSERT_NE(a.tenant, 0u);
  ASSERT_EQ(server.load_model(a.tenant, model,
                              a.user->seal(model.plan->weight_blob)),
            DeviceStatus::kOk);
  store::ContentId content{};
  ASSERT_EQ(server.seal_tenant_model(a.tenant, host::serialize_descriptor(net),
                                     content),
            DeviceStatus::kOk);
  EXPECT_TRUE(server.model_store().contains(content,
                                            server.device_binding(a.device_index)));

  // Tenant B lands on the *other* device (least-loaded placement) and loads
  // straight from the store — no weight upload, auto-replication on demand.
  auto b = rig.connect(server, 0x62);
  ASSERT_NE(b.tenant, 0u);
  ASSERT_NE(b.device_index, a.device_index);
  ASSERT_EQ(server.load_model_from_store(b.tenant, content, model),
            DeviceStatus::kOk);
  EXPECT_EQ(server.stats().replications, 1u);
  EXPECT_EQ(server.model_store().bindings(content).size(), 2u);

  // B's inference output is bit-identical to the plaintext reference.
  const Bytes input_bytes(input.bytes().begin(), input.bytes().end());
  serving::InferenceResult result =
      server.submit(b.tenant, b.user->seal(input_bytes));
  ASSERT_EQ(result.outcome, serving::RequestOutcome::kOk);
  const auto output = b.user->open_output(result.sealed_output);
  ASSERT_TRUE(output.has_value());
  EXPECT_EQ(*output, reference);

  // Replicating again is an idempotent no-op.
  ASSERT_EQ(server.replicate_model(content, b.device_index), DeviceStatus::kOk);
  EXPECT_EQ(server.stats().replications, 1u);

  // A mismatched (content, handle) pair is refused: the stored model's
  // descriptor does not match the other architecture's handle, so the
  // server never pins the wrong-layout plan.
  FuncNetwork other = small_cnn(105);
  other.layers[0].out_c = 8;
  other.layers[0].weights = random_weights(8 * 3 * 3 * 3, 106);
  other.layers[3].weights = random_weights(10 * 8 * 4 * 4, 107);
  const serving::ModelHandle wrong = server.register_model(other);
  EXPECT_EQ(server.load_model_from_store(b.tenant, content, wrong),
            DeviceStatus::kBadOperand);
}

TEST(ServingStore, ConcurrentStoreTrafficStaysCoherent) {
  // TSan target: parallel seal/replicate/load/submit across tenants and
  // devices must be race-free and still produce reference outputs.
  ServingRig rig;
  serving::ServerConfig config;
  config.num_devices = 2;
  config.num_workers = 2;
  serving::InferenceServer server(rig.ca, config, Bytes{0xa3});

  const FuncNetwork net = small_cnn(103);
  const serving::ModelHandle model = server.register_model(net);
  const functional::Tensor input = random_input(net, 104);
  const Bytes reference = host::reference_run(net, input);
  const Bytes descriptor = host::serialize_descriptor(net);

  constexpr int kClients = 4;
  std::vector<ServingRig::Client> clients;
  for (int i = 0; i < kClients; ++i) {
    clients.push_back(rig.connect(server, static_cast<u8>(0x70 + i)));
    ASSERT_NE(clients.back().tenant, 0u);
    ASSERT_EQ(server.load_model(clients.back().tenant, model,
                                clients.back().user->seal(model.plan->weight_blob)),
              DeviceStatus::kOk);
  }

  std::vector<std::thread> threads;
  std::vector<int> failures(kClients, 0);
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      auto& client = clients[static_cast<std::size_t>(i)];
      for (int round = 0; round < 3; ++round) {
        store::ContentId content{};
        if (server.seal_tenant_model(client.tenant, descriptor, content) !=
            DeviceStatus::kOk) {
          failures[static_cast<std::size_t>(i)] += 1;
          return;
        }
        const std::size_t other = 1 - client.device_index;
        if (server.replicate_model(content, other) != DeviceStatus::kOk) {
          failures[static_cast<std::size_t>(i)] += 1;
          return;
        }
        if (server.load_model_from_store(client.tenant, content, model) !=
            DeviceStatus::kOk) {
          failures[static_cast<std::size_t>(i)] += 1;
          return;
        }
        const Bytes input_bytes(input.bytes().begin(), input.bytes().end());
        auto result = server.submit(client.tenant, client.user->seal(input_bytes));
        if (result.outcome != serving::RequestOutcome::kOk ||
            client.user->open_output(result.sealed_output) != reference) {
          failures[static_cast<std::size_t>(i)] += 1;
          return;
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  for (int i = 0; i < kClients; ++i)
    EXPECT_EQ(failures[static_cast<std::size_t>(i)], 0) << "client " << i;
  // All clients sealed the same logical model: exactly one content entry,
  // one replica per device, everything else deduplicated.
  EXPECT_EQ(server.model_store().contents().size(), 1u);
  EXPECT_EQ(server.model_store().replica_count(), 2u);
}

}  // namespace
}  // namespace guardnn::store
