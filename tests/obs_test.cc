// Tests for the obs telemetry subsystem: metric registry concurrency,
// histogram bucket math and percentile fidelity, trace ring semantics, event
// log bounds, and the JSON/Prometheus exporters.
//
// The registry/histogram concurrency tests run under ThreadSanitizer in CI
// (the GUARDNN_SANITIZE=TSAN job lists this binary), pinning the "record is
// a relaxed fetch_add, the mutex only guards creation/snapshot" contract.
// The disabled-tracing path is pinned to ZERO heap allocations with the same
// operator-new counter crypto_backend_test uses for the MPU hot path.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "obs/export.h"

// --- Global allocation counter ----------------------------------------------
// Counts every operator-new in this binary so tests can assert that a code
// region performs no heap allocation. Thin replacement: malloc + counter, so
// ASan still sees every allocation.

namespace {
std::atomic<std::size_t> g_alloc_count{0};

void* counted_alloc(std::size_t size) {
  ++g_alloc_count;
  void* p = std::malloc(size ? size : 1);
  if (!p) throw std::bad_alloc();
  return p;
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace guardnn::obs {
namespace {

// --- Histogram bucket math ---------------------------------------------------

TEST(ObsHistogram, BucketBoundariesAreExact) {
  // A value exactly on a bucket's lower bound lands in that bucket, and the
  // value just below it lands in the previous one — for EVERY finite bucket.
  for (int i = 1; i < Histogram::kBucketCount - 1; ++i) {
    const double lower = Histogram::bucket_lower(i);
    EXPECT_EQ(Histogram::bucket_index(lower), i) << "lower bound of " << i;
    const double below = std::nextafter(lower, 0.0);
    EXPECT_EQ(Histogram::bucket_index(below), i - 1) << "just below " << i;
    EXPECT_EQ(Histogram::bucket_upper(i - 1), lower);
    EXPECT_LT(lower, Histogram::bucket_upper(i));
  }
}

TEST(ObsHistogram, UnderAndOverflowBuckets) {
  EXPECT_EQ(Histogram::bucket_index(0.0), 0);
  EXPECT_EQ(Histogram::bucket_index(-3.5), 0);
  EXPECT_EQ(Histogram::bucket_index(std::nan("")), 0);
  // Values at or below the finest resolution collapse into underflow.
  EXPECT_EQ(Histogram::bucket_index(std::ldexp(1.0, Histogram::kMinExp - 3)),
            0);
  // 2^kMinExp is the lower bound of the first real bucket.
  EXPECT_EQ(Histogram::bucket_index(std::ldexp(1.0, Histogram::kMinExp)), 1);
  // >= 2^kMaxExp overflows.
  EXPECT_EQ(Histogram::bucket_index(std::ldexp(1.0, Histogram::kMaxExp)),
            Histogram::kBucketCount - 1);
  EXPECT_EQ(Histogram::bucket_index(1e300), Histogram::kBucketCount - 1);
  EXPECT_TRUE(std::isinf(Histogram::bucket_upper(Histogram::kBucketCount - 1)));
}

TEST(ObsHistogram, CountSumMinMaxAreExact) {
  Histogram hist;
  EXPECT_EQ(hist.count(), 0u);
  EXPECT_EQ(hist.percentile(0.5), 0.0);
  for (double v : {4.0, 1.0, 16.0, 2.0, 8.0}) hist.record(v);
  const HistogramSnapshot snap = hist.snapshot();
  EXPECT_EQ(snap.count, 5u);
  EXPECT_DOUBLE_EQ(snap.sum, 31.0);
  EXPECT_DOUBLE_EQ(snap.min, 1.0);
  EXPECT_DOUBLE_EQ(snap.max, 16.0);
  EXPECT_DOUBLE_EQ(snap.mean(), 31.0 / 5.0);
  // All five values are exact powers of two: each sits alone in its own
  // bucket, so every percentile is that bucket's midpoint.
  u64 bucket_total = 0;
  for (const auto& [lower, n] : snap.buckets) bucket_total += n;
  EXPECT_EQ(bucket_total, 5u);
  EXPECT_EQ(snap.buckets.size(), 5u);
}

TEST(ObsHistogram, PercentileMatchesSortedVectorOracle) {
  // The acceptance cross-check: exact-rank bucket walk vs the sorted-vector
  // answer over log-uniform samples. The histogram reports the bucket
  // midpoint of the TRUE rank element, so the answer must lie in the same
  // bucket as the oracle (≤ ~3.2% relative width).
  Histogram hist;
  std::vector<double> values;
  Xoshiro256 rng(0x0b5);
  for (int i = 0; i < 20000; ++i) {
    const double v =
        std::ldexp(1.0 + rng.next_double(), static_cast<int>(rng.next_below(18)) - 4);
    values.push_back(v);
    hist.record(v);
  }
  std::sort(values.begin(), values.end());
  for (double p : {0.25, 0.5, 0.9, 0.99, 0.999}) {
    const std::size_t rank = static_cast<std::size_t>(
        std::ceil(p * static_cast<double>(values.size())));
    const double oracle = values[rank - 1];
    const double answer = hist.percentile(p);
    const int oracle_bucket = Histogram::bucket_index(oracle);
    EXPECT_GE(answer, Histogram::bucket_lower(oracle_bucket)) << "p=" << p;
    EXPECT_LT(answer, Histogram::bucket_upper(oracle_bucket)) << "p=" << p;
    EXPECT_NEAR(answer / oracle, 1.0, 0.04) << "p=" << p;
  }
}

// --- Registry ----------------------------------------------------------------

TEST(ObsRegistry, LabelsAreCanonicalized) {
  MetricRegistry registry;
  Counter& ab = registry.counter("x_total", {{"a", "1"}, {"b", "2"}});
  Counter& ba = registry.counter("x_total", {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(&ab, &ba);  // label order must not fork the series
  Counter& other = registry.counter("x_total", {{"a", "1"}, {"b", "3"}});
  EXPECT_NE(&ab, &other);
  ab.inc(3);
  const std::vector<MetricSample> snap = registry.snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].counter + snap[1].counter, 3u);
}

TEST(ObsRegistry, EightThreadCreateAndIncrement) {
  // The TSan acceptance workload: 8 threads race metric *creation* (registry
  // mutex) and *updates* (relaxed atomics) on shared and per-thread series.
  constexpr int kThreads = 8;
  constexpr int kIters = 20000;
  MetricRegistry registry;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&registry, t] {
      Counter& shared = registry.counter("shared_total");
      Counter& mine =
          registry.counter("per_thread_total", {{"t", std::to_string(t)}});
      Histogram& hist = registry.histogram("latency_ms");
      Gauge& gauge = registry.gauge("depth");
      for (int i = 0; i < kIters; ++i) {
        shared.inc();
        mine.inc();
        hist.record(static_cast<double>(1 + (i & 7)));
        gauge.set(static_cast<double>(i));
        if ((i & 1023) == 0) (void)registry.snapshot();  // reader vs writers
      }
    });
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(registry.counter("shared_total").value(),
            static_cast<u64>(kThreads) * kIters);
  for (int t = 0; t < kThreads; ++t)
    EXPECT_EQ(
        registry.counter("per_thread_total", {{"t", std::to_string(t)}}).value(),
        static_cast<u64>(kIters));
  EXPECT_EQ(registry.histogram("latency_ms").count(),
            static_cast<u64>(kThreads) * kIters);
}

// --- Trace collector ---------------------------------------------------------

TEST(ObsTrace, DisabledByDefaultAndMintsZero) {
  TraceCollector trace(16);
  EXPECT_FALSE(trace.enabled());
  EXPECT_EQ(trace.begin_trace(), 0u);
  trace.record(0, SpanKind::kSubmit, 1, 0, 0);  // no-op
  EXPECT_EQ(trace.recorded(), 0u);
  EXPECT_TRUE(trace.snapshot().empty());
}

TEST(ObsTrace, RingWrapsKeepingNewestSpans) {
  constexpr std::size_t kCapacity = 8;
  TraceCollector trace(kCapacity);
  trace.set_enabled(true);
  std::vector<u64> ids;
  for (int i = 0; i < 20; ++i) {
    const u64 id = trace.begin_trace();
    ASSERT_NE(id, 0u);
    ids.push_back(id);
    trace.record(id, SpanKind::kSubmit, /*tenant=*/7, /*device=*/2,
                 static_cast<u8>(i));
  }
  EXPECT_EQ(trace.recorded(), 20u);
  const std::vector<SpanRecord> spans = trace.snapshot();
  ASSERT_EQ(spans.size(), kCapacity);
  // Oldest → newest: exactly the last kCapacity spans, in record order.
  for (std::size_t i = 0; i < kCapacity; ++i) {
    EXPECT_EQ(spans[i].trace_id, ids[20 - kCapacity + i]);
    EXPECT_EQ(spans[i].tenant, 7u);
    EXPECT_EQ(spans[i].device, 2u);
    if (i) {
      EXPECT_GE(spans[i].t_ns, spans[i - 1].t_ns);
    }
  }
}

TEST(ObsTrace, DisabledPathAllocatesNothing) {
  // The serving submit path runs this on EVERY request when tracing is off:
  // one relaxed load, no lock, no timestamp, and — pinned here — no heap.
  TraceCollector trace(64);
  MetricRegistry registry;
  Counter& counter = registry.counter("hot_total");
  Histogram& hist = registry.histogram("hot_ms");
  const std::size_t before = g_alloc_count.load();
  for (int i = 0; i < 1000; ++i) {
    const u64 id = trace.begin_trace();
    trace.record(id, SpanKind::kSubmit, 1, 0, 0);
    trace.record(id, SpanKind::kResolve, 1, 0, 0);
    counter.inc();
    hist.record(3.5);
  }
  EXPECT_EQ(g_alloc_count.load(), before)
      << "disabled tracing / metric updates must not allocate";
  EXPECT_EQ(trace.recorded(), 0u);
  EXPECT_EQ(counter.value(), 1000u);
}

TEST(ObsTrace, MidFlightArmingNeverHalfRecordsAChain) {
  // A request minted while disabled keeps trace id 0 forever: enabling
  // tracing mid-flight must not produce a chain missing its submit span.
  TraceCollector trace(64);
  const u64 stale = trace.begin_trace();  // 0: minted while disabled
  trace.set_enabled(true);
  trace.record(stale, SpanKind::kDevice, 1, 0, 0);  // still a no-op
  EXPECT_EQ(trace.recorded(), 0u);
  const u64 fresh = trace.begin_trace();
  EXPECT_NE(fresh, 0u);
  trace.record(fresh, SpanKind::kSubmit, 1, 0, 0);
  EXPECT_EQ(trace.recorded(), 1u);
}

// --- Event log ---------------------------------------------------------------

TEST(ObsEventLog, BoundedOldestFirst) {
  EventLog log(4);
  for (int i = 0; i < 10; ++i)
    log.record("health", "event " + std::to_string(i));
  EXPECT_EQ(log.recorded(), 10u);
  const std::vector<EventRecord> events = log.snapshot();
  ASSERT_EQ(events.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(events[static_cast<std::size_t>(i)].detail,
              "event " + std::to_string(6 + i));
    EXPECT_EQ(events[static_cast<std::size_t>(i)].kind, "health");
  }
  EXPECT_GE(events.back().t_ms, events.front().t_ms);
}

// --- Export ------------------------------------------------------------------

TelemetrySnapshot sample_snapshot() {
  static MetricRegistry registry;  // static: handles must outlive snapshot
  registry.counter("requests_total", {{"tenant", "3"}}).inc(42);
  registry.gauge("depth").set(7.5);
  Histogram& hist = registry.histogram("e2e_ms");
  for (double v : {1.0, 2.0, 4.0}) hist.record(v);

  static EventLog events(8);
  events.record("failover", "tenant 3 off device 0");

  static TraceCollector trace(8);
  trace.set_enabled(true);
  const u64 id = trace.begin_trace();
  trace.record(id, SpanKind::kSubmit, 3, kSpanNoDevice, 0);
  trace.record(id, SpanKind::kResolve, 3, 0, 0);

  return TelemetrySnapshot{registry.snapshot(), events.snapshot(),
                           trace.snapshot(), trace.recorded()};
}

TEST(ObsExport, JsonCarriesSchemaAndSeries) {
  const TelemetrySnapshot snapshot = sample_snapshot();
  const std::string json = to_json(snapshot, /*max_spans=*/16);
  EXPECT_NE(json.find("\"schema\":\"guardnn-telemetry/1\""), std::string::npos);
  EXPECT_NE(json.find("\"requests_total\""), std::string::npos);
  EXPECT_NE(json.find("\"tenant\":\"3\""), std::string::npos);
  EXPECT_NE(json.find("\"e2e_ms\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
  EXPECT_NE(json.find("\"failover\""), std::string::npos);
  EXPECT_NE(json.find("\"submit\""), std::string::npos);
  // max_spans=0 keeps the recorded count but inlines no spans.
  const std::string lean = to_json(snapshot, 0);
  EXPECT_EQ(lean.find("\"submit\""), std::string::npos);
  EXPECT_NE(lean.find("\"recorded\""), std::string::npos);
}

TEST(ObsExport, PrometheusEncodesSummaries) {
  const std::string text = to_prometheus(sample_snapshot());
  EXPECT_NE(text.find("requests_total"), std::string::npos);
  EXPECT_NE(text.find("quantile=\"0.99\""), std::string::npos);
  EXPECT_NE(text.find("e2e_ms_count"), std::string::npos);
  EXPECT_NE(text.find("e2e_ms_sum"), std::string::npos);
}

TEST(ObsExport, FindMetricCanonicalizesLabels) {
  const TelemetrySnapshot snapshot = sample_snapshot();
  const MetricSample* found =
      find_metric(snapshot, "requests_total", {{"tenant", "3"}});
  ASSERT_NE(found, nullptr);
  EXPECT_GE(found->counter, 42u);
  EXPECT_EQ(find_metric(snapshot, "requests_total", {{"tenant", "9"}}),
            nullptr);
  EXPECT_EQ(find_metric(snapshot, "no_such_metric"), nullptr);
  const MetricSample* hist = find_metric(snapshot, "e2e_ms");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->kind, MetricKind::kHistogram);
  EXPECT_GE(hist->hist.count, 3u);
}

}  // namespace
}  // namespace guardnn::obs
