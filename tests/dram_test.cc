#include <gtest/gtest.h>

#include "dram/address_map.h"
#include "dram/bandwidth_probe.h"
#include "dram/dram_sim.h"

namespace guardnn::dram {
namespace {

DramConfig small_config() {
  DramConfig cfg;
  cfg.channels = 1;
  cfg.ranks = 1;
  cfg.banks = 4;
  cfg.row_bytes = 2048;
  // Disable refresh interference for latency-precision tests.
  cfg.timing.tREFI = 1 << 28;
  return cfg;
}

TEST(AddressMap, ChannelInterleaveAt64B) {
  DramConfig cfg;
  cfg.channels = 2;
  AddressMap map(cfg);
  EXPECT_EQ(map.decode(0).channel, 0);
  EXPECT_EQ(map.decode(64).channel, 1);
  EXPECT_EQ(map.decode(128).channel, 0);
}

TEST(AddressMap, SequentialBlocksShareRow) {
  const DramConfig cfg = small_config();
  AddressMap map(cfg);
  const DecodedAddress a = map.decode(0);
  const DecodedAddress b = map.decode(64);
  EXPECT_EQ(a.row, b.row);
  EXPECT_EQ(a.bank, b.bank);
  EXPECT_EQ(a.column_block + 1, b.column_block);
}

TEST(AddressMap, RowSpillsToNextBank) {
  const DramConfig cfg = small_config();
  AddressMap map(cfg);
  const DecodedAddress last = map.decode(cfg.row_bytes - 64);
  const DecodedAddress next = map.decode(cfg.row_bytes);
  EXPECT_NE(last.bank, next.bank);
}

TEST(AddressMap, DistinctAddressesDistinctLocations) {
  const DramConfig cfg = small_config();
  AddressMap map(cfg);
  const DecodedAddress a = map.decode(0);
  const DecodedAddress far =
      map.decode(cfg.row_bytes * static_cast<u64>(cfg.banks) * 7);
  EXPECT_TRUE(a.row != far.row || a.bank != far.bank || a.rank != far.rank);
}

TEST(DramSim, SingleReadLatencyIsActRcdClBurst) {
  const DramConfig cfg = small_config();
  DramSim sim(cfg);
  Request req;
  req.address = 0;
  ASSERT_TRUE(sim.enqueue(req));
  sim.run_to_completion();
  ASSERT_EQ(sim.stats().reads, 1u);
  const DramTiming& t = cfg.timing;
  // Cold access: ACT (1 cycle to issue) + tRCD + tCL + tBurst.
  const double expected = 1 + t.tRCD + t.tCL + t.tBurst;
  EXPECT_NEAR(sim.stats().read_latency.mean(), expected, 2.0);
  EXPECT_EQ(sim.stats().row_misses, 1u);
}

TEST(DramSim, RowHitFasterThanMiss) {
  const DramConfig cfg = small_config();

  // Two reads to the same row: second is a hit.
  DramSim hit_sim(cfg);
  Request req;
  req.address = 0;
  ASSERT_TRUE(hit_sim.enqueue(req));
  req.address = 64;
  req.id = 1;
  ASSERT_TRUE(hit_sim.enqueue(req));
  const u64 hit_cycles = hit_sim.run_to_completion();
  EXPECT_EQ(hit_sim.stats().row_hits, 1u);
  EXPECT_EQ(hit_sim.stats().row_misses, 1u);

  // Two reads to different rows in the same bank: both miss.
  DramSim miss_sim(cfg);
  req.address = 0;
  req.id = 0;
  ASSERT_TRUE(miss_sim.enqueue(req));
  req.address = cfg.row_bytes * static_cast<u64>(cfg.banks);  // same bank, next row
  req.id = 1;
  ASSERT_TRUE(miss_sim.enqueue(req));
  const u64 miss_cycles = miss_sim.run_to_completion();
  EXPECT_EQ(miss_sim.stats().row_misses, 2u);
  EXPECT_GT(miss_cycles, hit_cycles);
}

TEST(DramSim, CompletionCallbackDeliversAll) {
  const DramConfig cfg = small_config();
  DramSim sim(cfg);
  std::vector<Completion> completions;
  sim.set_completion_callback(
      [&](const Completion& c) { completions.push_back(c); });
  for (u64 i = 0; i < 10; ++i) {
    Request req;
    req.address = i * 64;
    req.id = i;
    req.type = i % 2 ? RequestType::kWrite : RequestType::kRead;
    ASSERT_TRUE(sim.enqueue(req));
  }
  sim.run_to_completion();
  ASSERT_EQ(completions.size(), 10u);
  for (const auto& c : completions) EXPECT_GT(c.finish_cycle, c.enqueue_cycle);
  EXPECT_EQ(sim.stats().reads, 5u);
  EXPECT_EQ(sim.stats().writes, 5u);
}

TEST(DramSim, BackpressureWhenQueueFull) {
  const DramConfig cfg = small_config();
  DramSim sim(cfg);
  Request req;
  int accepted = 0;
  for (int i = 0; i < 1000; ++i) {
    req.address = static_cast<u64>(i) * 64;
    req.id = static_cast<u64>(i);
    if (sim.enqueue(req))
      ++accepted;
    else
      break;
  }
  EXPECT_LT(accepted, 1000);
  EXPECT_GT(accepted, 0);
  sim.run_to_completion();
  EXPECT_EQ(sim.stats().reads, static_cast<u64>(accepted));
}

TEST(DramSim, StreamingRowHitRateIsHigh) {
  const DramConfig cfg = small_config();
  DramSim sim(cfg);
  u64 addr = 0;
  u64 issued = 0;
  const u64 total = 2048;
  while (issued < total || !sim.idle()) {
    while (issued < total) {
      Request req;
      req.address = addr;
      req.id = issued;
      if (!sim.enqueue(req)) break;
      addr += 64;
      ++issued;
    }
    sim.tick();
  }
  sim.run_to_completion();
  EXPECT_GT(sim.stats().row_hit_rate(), 0.9);
}

TEST(DramSim, RefreshesOccur) {
  DramConfig cfg = small_config();
  cfg.timing.tREFI = 500;
  DramSim sim(cfg);
  // Idle ticking still triggers refreshes.
  for (int i = 0; i < 5000; ++i) sim.tick();
  EXPECT_GE(sim.stats().refreshes, 8u);
}

TEST(Probe, StreamingNearPeak) {
  const ProbeResult r = probe_streaming(small_config(), 1 * MiB);
  EXPECT_GT(r.efficiency, 0.75);
  EXPECT_LE(r.efficiency, 1.0);
}

TEST(Probe, RandomWellBelowStreaming) {
  const DramConfig cfg = small_config();
  const ProbeResult stream = probe_streaming(cfg, 512 * KiB);
  const ProbeResult random = probe_random(cfg, 512 * KiB, 256 * MiB);
  EXPECT_LT(random.efficiency, stream.efficiency * 0.7);
}

TEST(Probe, WriteMixStillReasonable) {
  const ProbeResult r = probe_streaming(small_config(), 1 * MiB, 0.25);
  EXPECT_GT(r.efficiency, 0.5);
}

TEST(Probe, MultiChannelScalesBandwidth) {
  DramConfig one = small_config();
  DramConfig two = small_config();
  two.channels = 2;
  const ProbeResult r1 = probe_streaming(one, 1 * MiB);
  const ProbeResult r2 = probe_streaming(two, 1 * MiB);
  EXPECT_GT(r2.bytes_per_cycle, r1.bytes_per_cycle * 1.6);
}


TEST(DramSim, SpeedGradePresetsOrdered) {
  const DramConfig slow = DramConfig::ddr4_2133_16gb();
  const DramConfig mid = DramConfig::ddr4_2400_16gb();
  const DramConfig fast = DramConfig::ddr4_3200_16gb();
  EXPECT_LT(slow.peak_bandwidth_bytes_per_s(), mid.peak_bandwidth_bytes_per_s());
  EXPECT_LT(mid.peak_bandwidth_bytes_per_s(), fast.peak_bandwidth_bytes_per_s());
  // Sustained bandwidth must follow the same order.
  const double slow_bw = probe_streaming(slow, 1 * MiB).bytes_per_cycle * slow.clock_ghz;
  const double mid_bw = probe_streaming(mid, 1 * MiB).bytes_per_cycle * mid.clock_ghz;
  const double fast_bw = probe_streaming(fast, 1 * MiB).bytes_per_cycle * fast.clock_ghz;
  EXPECT_LT(slow_bw, mid_bw);
  EXPECT_LT(mid_bw, fast_bw);
}

TEST(DramSim, AllPresetsReachHighStreamingEfficiency) {
  for (const DramConfig& cfg :
       {DramConfig::ddr4_2133_16gb(), DramConfig::ddr4_2400_16gb(),
        DramConfig::ddr4_3200_16gb(), DramConfig::ddr4_2400_fpga()}) {
    const ProbeResult r = probe_streaming(cfg, 1 * MiB);
    EXPECT_GT(r.efficiency, 0.7) << cfg.name;
    EXPECT_LE(r.efficiency, 1.0) << cfg.name;
  }
}

TEST(DramSim, DefaultConfigPeakBandwidth) {
  const DramConfig cfg = DramConfig::ddr4_2400_16gb();
  // 2 channels x 8 B x 2 transfers/cycle x 1.2 GHz = 38.4 GB/s.
  EXPECT_NEAR(cfg.peak_bandwidth_bytes_per_s() / 1e9, 38.4, 0.1);
}

}  // namespace
}  // namespace guardnn::dram
