#include <gtest/gtest.h>

#include <algorithm>

#include "accel/device.h"
#include "accel/memory.h"
#include "accel/mpu.h"
#include "common/rng.h"

namespace guardnn::accel {
namespace {

crypto::AesKey test_key(u8 tag) {
  crypto::AesKey key{};
  for (std::size_t i = 0; i < key.size(); ++i) key[i] = static_cast<u8>(i + tag);
  return key;
}

// --- UntrustedMemory --------------------------------------------------------

TEST(UntrustedMemory, ReadWriteRoundTrip) {
  UntrustedMemory mem;
  const Bytes data = {1, 2, 3, 4, 5};
  mem.write(100, data);
  EXPECT_EQ(mem.read(100, 5), data);
}

TEST(UntrustedMemory, CrossesPageBoundaries) {
  UntrustedMemory mem;
  Bytes data(10000);
  Xoshiro256 rng(1);
  rng.fill(data);
  mem.write(UntrustedMemory::kPageBytes - 100, data);
  EXPECT_EQ(mem.read(UntrustedMemory::kPageBytes - 100, data.size()), data);
  EXPECT_GE(mem.resident_pages(), 3u);
}

TEST(UntrustedMemory, UnwrittenReadsAsZero) {
  UntrustedMemory mem;
  EXPECT_EQ(mem.read(0xdead000, 4), (Bytes{0, 0, 0, 0}));
}

TEST(UntrustedMemory, TamperFlipsBits) {
  UntrustedMemory mem;
  mem.write(0, Bytes{0xff});
  mem.tamper(0, 0x0f);
  EXPECT_EQ(mem.read(0, 1)[0], 0xf0);
}

TEST(UntrustedMemory, CopySupportsReplay) {
  UntrustedMemory mem;
  mem.write(0, Bytes{9, 8, 7});
  mem.copy(4096, 0, 3);
  EXPECT_EQ(mem.read(4096, 3), (Bytes{9, 8, 7}));
}

// --- MPU ---------------------------------------------------------------------

class MpuTest : public ::testing::TestWithParam<bool> {
 protected:
  bool integrity() const { return GetParam(); }
};

TEST_P(MpuTest, WriteThenReadRoundTrip) {
  UntrustedMemory mem;
  MemoryProtectionUnit mpu(mem, test_key(0), test_key(1), integrity());
  Bytes data(1024);
  Xoshiro256 rng(2);
  rng.fill(data);
  mpu.write(0, data, 7);
  Bytes out(1024);
  ASSERT_TRUE(mpu.read(0, out, 7));
  EXPECT_EQ(out, data);
}

TEST_P(MpuTest, CiphertextNotPlaintext) {
  UntrustedMemory mem;
  MemoryProtectionUnit mpu(mem, test_key(0), test_key(1), integrity());
  const Bytes data(512, 0x5a);
  mpu.write(0, data, 1);
  EXPECT_NE(mem.read(0, 512), data) << "plaintext visible in untrusted memory";
}

TEST_P(MpuTest, WrongVnYieldsGarbageNotPlaintext) {
  UntrustedMemory mem;
  MemoryProtectionUnit mpu(mem, test_key(0), test_key(1), integrity());
  Bytes data(512);
  Xoshiro256 rng(3);
  rng.fill(data);
  mpu.write(0, data, 5);
  Bytes out(512);
  const bool ok = mpu.read(0, out, 6);
  if (ok) {
    EXPECT_NE(out, data);  // without integrity: garbage
  }
  // with integrity: MAC binds the VN, so the read fails outright.
  if (integrity()) {
    EXPECT_FALSE(ok);
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, MpuTest, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "integrity" : "confidentiality";
                         });

TEST(Mpu, DetectsTamperedCiphertext) {
  UntrustedMemory mem;
  MemoryProtectionUnit mpu(mem, test_key(0), test_key(1), true);
  Bytes data(512, 0x11);
  mpu.write(0, data, 1);
  mem.tamper(100, 0x01);
  Bytes out(512);
  EXPECT_FALSE(mpu.read(0, out, 1));
  EXPECT_TRUE(mpu.poisoned());
}

TEST(Mpu, DetectsRelocatedCiphertext) {
  // Moving a valid (ciphertext, MAC) pair to a different address must fail:
  // the MAC binds the physical address.
  UntrustedMemory mem;
  MemoryProtectionUnit mpu(mem, test_key(0), test_key(1), true);
  Bytes data(512, 0x22);
  mpu.write(0, data, 1);
  mpu.write(512, data, 1);
  // Adversary copies block 0's ciphertext AND its MAC slot over block 1's.
  mem.copy(512, 0, 512);
  mem.copy(MemoryProtectionUnit::kMacRegionBase + 8,
           MemoryProtectionUnit::kMacRegionBase, 8);
  Bytes out(512);
  EXPECT_FALSE(mpu.read(512, out, 1));
}

TEST(Mpu, DetectsReplayedOldVersion) {
  UntrustedMemory mem;
  MemoryProtectionUnit mpu(mem, test_key(0), test_key(1), true);
  Bytes old_data(512, 0x01), new_data(512, 0x02);
  mpu.write(0, old_data, /*version=*/1);
  const Bytes old_cipher = mem.read(0, 512);
  const Bytes old_mac = mem.read(MemoryProtectionUnit::kMacRegionBase, 8);
  mpu.write(0, new_data, /*version=*/2);
  // Adversary replays the old ciphertext and old MAC.
  mem.write(0, old_cipher);
  mem.write(MemoryProtectionUnit::kMacRegionBase, old_mac);
  Bytes out(512);
  EXPECT_FALSE(mpu.read(0, out, /*version=*/2))
      << "replay of a stale version must fail verification";
}

TEST(Mpu, PoisonedMpuRefusesAllReads) {
  UntrustedMemory mem;
  MemoryProtectionUnit mpu(mem, test_key(0), test_key(1), true);
  Bytes data(512, 0x33);
  mpu.write(0, data, 1);
  mem.tamper(0, 0xff);
  Bytes out(512);
  EXPECT_FALSE(mpu.read(0, out, 1));
  // Even an untampered region is now refused (fail-stop).
  mpu.write(1024, data, 1);
  EXPECT_FALSE(mpu.read(1024, out, 1));
}

TEST(Mpu, AlignmentEnforced) {
  UntrustedMemory mem;
  MemoryProtectionUnit mpu(mem, test_key(0), test_key(1), true);
  Bytes data(512);
  EXPECT_THROW(mpu.write(8, data, 0), std::invalid_argument);
  EXPECT_THROW(mpu.write(64, data, 0), std::invalid_argument);  // 512 B for IV
  Bytes odd(20);
  EXPECT_THROW(mpu.write(0, odd, 0), std::invalid_argument);
}

TEST(Mpu, TraceRecordsAccesses) {
  UntrustedMemory mem;
  MemoryProtectionUnit mpu(mem, test_key(0), test_key(1), false);
  Bytes data(512);
  mpu.write(0, data, 0);
  Bytes out(512);
  ASSERT_TRUE(mpu.read(0, out, 0));
  ASSERT_EQ(mpu.access_trace().size(), 2u);
  EXPECT_TRUE(mpu.access_trace()[0].second);   // write
  EXPECT_FALSE(mpu.access_trace()[1].second);  // read
}

// --- MPU streams (fused seal/unseal data path) -------------------------------

TEST_P(MpuTest, StreamsMatchMonolithicReadWriteIncludingTrace) {
  // An import stream fed ragged slices must leave byte-identical off-chip
  // state (data, MAC slots, access trace) to one monolithic write of a
  // zero-padded buffer; an export stream must return exactly what a
  // monolithic read decrypts, emitting the same trace.
  UntrustedMemory mono_mem, stream_mem;
  MemoryProtectionUnit mono(mono_mem, test_key(0), test_key(1), integrity());
  MemoryProtectionUnit streamed(stream_mem, test_key(0), test_key(1),
                                integrity());
  constexpr u64 kBase = 0x2000;
  constexpr std::size_t kLogical = 5000;  // neither chunk- nor block-aligned
  Bytes plain(kLogical);
  Xoshiro256 rng(11);
  rng.fill(plain);

  Bytes padded(5120, 0);
  std::copy(plain.begin(), plain.end(), padded.begin());
  mono.write(kBase, padded, 9);
  {
    MpuImportStream importer(streamed, kBase, kLogical, 9);
    const std::size_t slices[] = {1, 511, 513, 17, 2 * 4096};
    std::size_t off = 0;
    int i = 0;
    while (off < kLogical) {
      const std::size_t n =
          std::min<std::size_t>(slices[i++ % 5], kLogical - off);
      importer.next(BytesView(plain.data() + off, n));
      off += n;
    }
    importer.finish();
  }
  EXPECT_EQ(mono_mem.read(kBase, padded.size()),
            stream_mem.read(kBase, padded.size()));
  if (integrity()) {
    const u64 slot0 = MemoryProtectionUnit::kMacRegionBase + kBase / 512 * 8;
    EXPECT_EQ(mono_mem.read(slot0, 10 * 8), stream_mem.read(slot0, 10 * 8));
  }
  EXPECT_EQ(mono.access_trace(), streamed.access_trace());

  mono.clear_trace();
  streamed.clear_trace();
  Bytes mono_out(padded.size());
  ASSERT_TRUE(mono.read(kBase, mono_out, 9));
  Bytes stream_out(kLogical);
  {
    MpuExportStream exporter(streamed, kBase, kLogical, 9);
    const std::size_t slices[] = {7, 512, 1000, 4096};
    std::size_t off = 0;
    int i = 0;
    while (exporter.remaining() > 0) {
      const std::size_t n = std::min<std::size_t>(
          slices[i++ % 4], static_cast<std::size_t>(exporter.remaining()));
      ASSERT_TRUE(exporter.next(MutBytesView(stream_out.data() + off, n)));
      off += n;
    }
    ASSERT_TRUE(exporter.finish());
  }
  EXPECT_TRUE(std::equal(stream_out.begin(), stream_out.end(),
                         mono_out.begin()));
  EXPECT_EQ(stream_out, plain);
  EXPECT_EQ(mono.access_trace(), streamed.access_trace());
}

TEST(Mpu, ExportStreamFailsClosedOnTamperAnywhere) {
  // A flip in any protection chunk — including the zero-pad tail chunk past
  // the logical end — must fail the walk and poison the MPU.
  constexpr std::size_t kLogical = 3 * 512 + 40;
  Bytes plain(kLogical, 0x5c);
  for (const u64 tamper_addr : {u64{0}, u64{700}, u64{3 * 512 + 100}}) {
    UntrustedMemory mem;
    MemoryProtectionUnit mpu(mem, test_key(0), test_key(1), true);
    {
      MpuImportStream importer(mpu, 0, kLogical, 3);
      importer.next(plain);
      importer.finish();
    }
    mem.tamper(tamper_addr, 0x10);
    MpuExportStream exporter(mpu, 0, kLogical, 3);
    Bytes sink(kLogical);
    const bool delivered = exporter.next(sink);
    EXPECT_FALSE(delivered && exporter.finish())
        << "tamper at " << tamper_addr << " not caught";
    EXPECT_TRUE(mpu.poisoned());
  }
}

TEST(Mpu, StreamsPadRelativeToAnUnalignedRegionStart) {
  // With integrity off the region start only needs 16 B alignment; the
  // streams' zero-pad / pad-verify must stop at start + pad_region(bytes),
  // not at the next absolute 512 B boundary — padding past it would smash
  // whatever lives after the region.
  UntrustedMemory mem;
  MemoryProtectionUnit mpu(mem, test_key(0), test_key(1), false);
  constexpr u64 kStart = 16;
  constexpr std::size_t kLogical = 512;  // pads to exactly one chunk window
  const Bytes sentinel(64, 0xee);
  const u64 region_end = kStart + 512;
  mem.write(region_end, sentinel);  // adjacent bytes that must survive

  Bytes plain(kLogical, 0x3c);
  {
    MpuImportStream importer(mpu, kStart, kLogical, 4);
    importer.next(plain);
    importer.finish();
  }
  EXPECT_EQ(mem.read(region_end, sentinel.size()), sentinel)
      << "import stream wrote past the padded region";

  Bytes out(kLogical);
  {
    MpuExportStream exporter(mpu, kStart, kLogical, 4);
    ASSERT_TRUE(exporter.next(out));
    ASSERT_TRUE(exporter.finish());
  }
  EXPECT_EQ(out, plain);
}

TEST(Mpu, ImportStreamRequiresExactByteCount) {
  UntrustedMemory mem;
  MemoryProtectionUnit mpu(mem, test_key(0), test_key(1), true);
  MpuImportStream importer(mpu, 0, 100, 1);
  const Bytes some(60, 1);
  importer.next(some);
  EXPECT_THROW(importer.finish(), std::logic_error);       // 40 bytes missing
  EXPECT_THROW(importer.next(Bytes(41, 2)), std::invalid_argument);  // too many
}

// --- Device ------------------------------------------------------------------

struct Fixture {
  UntrustedMemory memory;
  crypto::HmacDrbg ca_drbg{Bytes{1, 2, 3}};
  crypto::ManufacturerCa ca{ca_drbg};
  GuardNnDevice device{"dev-0", ca, memory, Bytes{4, 5, 6}};
};

crypto::SessionKeys handshake(Fixture& fx, bool integrity,
                              crypto::HmacDrbg& user_drbg) {
  const crypto::EcdhKeyPair user = crypto::ecdh_generate_key(user_drbg);
  const InitSessionResponse resp = fx.device.init_session(user.public_key, integrity);
  const crypto::U256 shared =
      crypto::ecdh_shared_secret(user.private_key, resp.device_ephemeral);
  return crypto::derive_session_keys(shared, user.public_key, resp.device_ephemeral);
}

TEST(Device, GetPkReturnsValidCertificate) {
  Fixture fx;
  const GetPkResponse resp = fx.device.get_pk();
  EXPECT_TRUE(crypto::verify_certificate(resp.certificate, fx.ca.public_key()));
  EXPECT_EQ(resp.certificate.device_id, "dev-0");
  EXPECT_TRUE(resp.certificate.device_public == resp.public_key);
}

TEST(Device, InstructionsRequireSession) {
  Fixture fx;
  crypto::SealedRecord record;
  EXPECT_EQ(fx.device.set_weight(record, 0), DeviceStatus::kNoSession);
  EXPECT_EQ(fx.device.set_input(record, 0), DeviceStatus::kNoSession);
  EXPECT_EQ(fx.device.set_read_ctr(0, 64, 0), DeviceStatus::kNoSession);
  ForwardOp op;
  EXPECT_EQ(fx.device.forward(op), DeviceStatus::kNoSession);
  crypto::SealedRecord out;
  EXPECT_EQ(fx.device.export_output(0, 64, out), DeviceStatus::kNoSession);
  SignOutputResponse sign;
  EXPECT_EQ(fx.device.sign_output(sign), DeviceStatus::kNoSession);
}

TEST(Device, KeyExchangeSignatureVerifies) {
  Fixture fx;
  crypto::HmacDrbg user_drbg(Bytes{7});
  const crypto::EcdhKeyPair user = crypto::ecdh_generate_key(user_drbg);
  const InitSessionResponse resp = fx.device.init_session(user.public_key, false);
  Bytes transcript = crypto::encode_point(user.public_key);
  const Bytes share = crypto::encode_point(resp.device_ephemeral);
  transcript.insert(transcript.end(), share.begin(), share.end());
  EXPECT_TRUE(
      crypto::ecdsa_verify(fx.device.get_pk().public_key, transcript, resp.signature));
}

TEST(Device, ImportStoresCiphertextOnly) {
  Fixture fx;
  crypto::HmacDrbg user_drbg(Bytes{8});
  const crypto::SessionKeys keys = handshake(fx, false, user_drbg);
  crypto::ChannelSender to_device(keys);

  Bytes weights(1024);
  Xoshiro256 rng(4);
  rng.fill(weights);
  ASSERT_EQ(fx.device.set_weight(to_device.seal(weights), 0), DeviceStatus::kOk);

  // Scan all of untrusted memory for the plaintext — it must not be there.
  const Bytes stored = fx.memory.read(0, 2048);
  auto it = std::search(stored.begin(), stored.end(), weights.begin(),
                        weights.begin() + 64);
  EXPECT_EQ(it, stored.end());
}

TEST(Device, RejectsForgedRecords) {
  Fixture fx;
  crypto::HmacDrbg user_drbg(Bytes{9});
  const crypto::SessionKeys keys = handshake(fx, false, user_drbg);
  crypto::ChannelSender to_device(keys);
  crypto::SealedRecord record = to_device.seal(Bytes(512, 1));
  record.ciphertext[0] ^= 1;
  EXPECT_EQ(fx.device.set_weight(record, 0), DeviceStatus::kBadRecord);
}

TEST(Device, RejectsReplayedRecords) {
  Fixture fx;
  crypto::HmacDrbg user_drbg(Bytes{10});
  const crypto::SessionKeys keys = handshake(fx, false, user_drbg);
  crypto::ChannelSender to_device(keys);
  const crypto::SealedRecord record = to_device.seal(Bytes(512, 1));
  ASSERT_EQ(fx.device.set_weight(record, 0), DeviceStatus::kOk);
  EXPECT_EQ(fx.device.set_weight(record, 512), DeviceStatus::kBadRecord);
}

TEST(Device, CountersFollowInstructions) {
  Fixture fx;
  crypto::HmacDrbg user_drbg(Bytes{11});
  const crypto::SessionKeys keys = handshake(fx, false, user_drbg);
  crypto::ChannelSender to_device(keys);
  ASSERT_EQ(fx.device.set_weight(to_device.seal(Bytes(512, 1)), 0), DeviceStatus::kOk);
  EXPECT_EQ(fx.device.vn_generator().ctr_w(), 1u);
  ASSERT_EQ(fx.device.set_input(to_device.seal(Bytes(512, 2)), 0x4000'0000),
            DeviceStatus::kOk);
  EXPECT_EQ(fx.device.vn_generator().ctr_in(), 1u);
  EXPECT_EQ(fx.device.vn_generator().ctr_fw(), 0u);
}

TEST(Device, InitSessionResetsState) {
  Fixture fx;
  crypto::HmacDrbg user_drbg(Bytes{12});
  crypto::SessionKeys keys = handshake(fx, false, user_drbg);
  crypto::ChannelSender to_device(keys);
  ASSERT_EQ(fx.device.set_weight(to_device.seal(Bytes(512, 1)), 0), DeviceStatus::kOk);
  EXPECT_EQ(fx.device.vn_generator().ctr_w(), 1u);
  // New session: counters return to zero and old channel keys are invalid.
  keys = handshake(fx, false, user_drbg);
  EXPECT_EQ(fx.device.vn_generator().ctr_w(), 0u);
  EXPECT_EQ(fx.device.set_weight(to_device.seal(Bytes(512, 1)), 0),
            DeviceStatus::kBadRecord);
}

TEST(Device, LatencyModelAccumulates) {
  Fixture fx;
  crypto::HmacDrbg user_drbg(Bytes{13});
  const double before = fx.device.elapsed_ms();
  handshake(fx, false, user_drbg);
  // Key exchange costs 23.1 ms on the MicroBlaze model.
  EXPECT_NEAR(fx.device.elapsed_ms() - before, 23.1, 0.2);
}

}  // namespace
}  // namespace guardnn::accel
