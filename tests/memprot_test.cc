#include <gtest/gtest.h>

#include "crypto/aes128.h"
#include "crypto/mem_mac.h"
#include "memprot/engine.h"
#include "memprot/metadata_cache.h"
#include "memprot/vn_generator.h"

namespace guardnn::memprot {
namespace {

TEST(VnGenerator, CountersFollowInstructionSemantics) {
  VnGenerator vn;
  EXPECT_EQ(vn.ctr_in(), 0u);
  vn.on_set_input();
  EXPECT_EQ(vn.ctr_in(), 1u);
  EXPECT_EQ(vn.ctr_fw(), 0u);
  vn.on_forward_write();
  vn.on_forward_write();
  EXPECT_EQ(vn.ctr_fw(), 2u);
  vn.on_set_input();  // new input resets the feature-write counter
  EXPECT_EQ(vn.ctr_in(), 2u);
  EXPECT_EQ(vn.ctr_fw(), 0u);
  vn.on_set_weight();
  EXPECT_EQ(vn.ctr_w(), 1u);
}

TEST(VnGenerator, FeatureWriteVnNeverRepeatsAcrossInputs) {
  VnGenerator vn;
  std::vector<u64> seen;
  for (int input = 0; input < 3; ++input) {
    vn.on_set_input();
    for (int layer = 0; layer < 5; ++layer) {
      seen.push_back(vn.feature_write_vn());
      vn.on_forward_write();
    }
  }
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(std::adjacent_find(seen.begin(), seen.end()), seen.end())
      << "feature-write VNs must be unique";
}

TEST(VnGenerator, WeightVnStableBetweenUpdates) {
  VnGenerator vn;
  vn.on_set_weight();
  const u64 v = vn.weight_vn();
  vn.on_set_input();
  vn.on_forward_write();
  EXPECT_EQ(vn.weight_vn(), v);
  vn.on_set_weight();
  EXPECT_NE(vn.weight_vn(), v);
}

TEST(VnGenerator, ReadCtrRangeLookup) {
  VnGenerator vn;
  vn.set_read_ctr(0x1000, 0x100, 7);
  vn.set_read_ctr(0x2000, 0x100, 9);
  EXPECT_EQ(vn.feature_read_vn(0x1000), 7u);
  EXPECT_EQ(vn.feature_read_vn(0x10ff), 7u);
  EXPECT_FALSE(vn.feature_read_vn(0x1100).has_value());
  EXPECT_EQ(vn.feature_read_vn(0x2080), 9u);
  EXPECT_FALSE(vn.feature_read_vn(0x0).has_value());
}

TEST(VnGenerator, ReadCtrOverwriteSplitsRanges) {
  VnGenerator vn;
  vn.set_read_ctr(0x1000, 0x1000, 1);      // [0x1000, 0x2000) -> 1
  vn.set_read_ctr(0x1400, 0x400, 2);       // carve [0x1400, 0x1800) -> 2
  EXPECT_EQ(vn.feature_read_vn(0x1000), 1u);
  EXPECT_EQ(vn.feature_read_vn(0x13ff), 1u);
  EXPECT_EQ(vn.feature_read_vn(0x1400), 2u);
  EXPECT_EQ(vn.feature_read_vn(0x17ff), 2u);
  EXPECT_EQ(vn.feature_read_vn(0x1800), 1u);
  EXPECT_EQ(vn.feature_read_vn(0x1fff), 1u);
}

TEST(VnGenerator, ReadCtrFullOverwrite) {
  VnGenerator vn;
  vn.set_read_ctr(0x1000, 0x100, 1);
  vn.set_read_ctr(0x0, 0x10000, 5);
  EXPECT_EQ(vn.feature_read_vn(0x1050), 5u);
}

TEST(VnGenerator, ResetClearsEverything) {
  VnGenerator vn;
  vn.on_set_input();
  vn.on_set_weight();
  vn.set_read_ctr(0, 64, 3);
  vn.reset();
  EXPECT_EQ(vn.ctr_in(), 0u);
  EXPECT_EQ(vn.ctr_w(), 0u);
  EXPECT_FALSE(vn.feature_read_vn(0).has_value());
}

TEST(MetadataCache, HitAfterMiss) {
  MetadataCache cache(4096, 4);
  EXPECT_FALSE(cache.access(0, false).hit);
  EXPECT_TRUE(cache.access(0, false).hit);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(MetadataCache, LruEviction) {
  // 4 lines, 1 set x 4 ways.
  MetadataCache cache(256, 4);
  for (u64 i = 0; i < 4; ++i) cache.access(i * 64 * cache.num_sets(), false);
  // All four ways of set 0 full; a fifth distinct tag evicts the LRU (tag 0).
  cache.access(4 * 64 * cache.num_sets(), false);
  EXPECT_FALSE(cache.access(0, false).hit);  // was evicted
}

TEST(MetadataCache, DirtyEvictionCausesWriteback) {
  MetadataCache cache(256, 4);  // single set
  const u64 stride = 64 * cache.num_sets();
  cache.access(0, true);  // dirty
  for (u64 i = 1; i <= 4; ++i) {
    const CacheAccessResult r = cache.access(i * stride, false);
    if (r.writeback) {
      SUCCEED();
      return;
    }
  }
  FAIL() << "expected a dirty writeback";
}

TEST(MetadataCache, FlushWritesDirtyLines) {
  MetadataCache cache(4096, 4);
  cache.access(0, true);
  cache.access(64, true);
  cache.access(128, false);
  EXPECT_EQ(cache.flush(), 2u);
  EXPECT_EQ(cache.flush(), 0u);  // idempotent
}

TEST(MetadataCache, RejectsBadGeometry) {
  EXPECT_THROW(MetadataCache(100, 3), std::invalid_argument);
  EXPECT_THROW(MetadataCache(0, 4), std::invalid_argument);
}

AccessStream seq_read(u64 base, u64 bytes, u64 footprint = 1ULL << 30) {
  AccessStream s;
  s.base = base;
  s.bytes = bytes;
  s.footprint_bytes = footprint;
  return s;
}

AccessStream seq_write(u64 base, u64 bytes, u64 footprint = 1ULL << 30) {
  AccessStream s = seq_read(base, bytes, footprint);
  s.write = true;
  return s;
}

TEST(Engines, NoProtectionAddsNothing) {
  auto engine = make_engine(Scheme::kNone);
  const StreamTraffic t = engine->process(seq_read(0, 1 << 20));
  EXPECT_EQ(t.data_read_bytes, 1u << 20);
  EXPECT_EQ(t.meta_read_bytes, 0u);
  EXPECT_EQ(t.meta_write_bytes, 0u);
  EXPECT_EQ(t.extra_latency_cycles, 0u);
}

TEST(Engines, GuardNnCAddsOnlyLatency) {
  auto engine = make_engine(Scheme::kGuardNnC);
  const StreamTraffic t = engine->process(seq_write(0, 1 << 20));
  EXPECT_EQ(t.data_write_bytes, 1u << 20);
  EXPECT_EQ(t.meta_read_bytes + t.meta_write_bytes, 0u);
  EXPECT_GT(t.extra_latency_cycles, 0u);
}

TEST(Engines, GuardNnCIMetadataAboutOnePercent) {
  auto engine = make_engine(Scheme::kGuardNnCI);
  // 64 MiB sequential read: one 64 B MAC line per 4 KiB of data = 1.56%.
  const u64 bytes = 64ULL << 20;
  const StreamTraffic t = engine->process(seq_read(0, bytes));
  const double ratio = static_cast<double>(t.meta_read_bytes + t.meta_write_bytes) /
                       static_cast<double>(bytes);
  EXPECT_GT(ratio, 0.010);
  EXPECT_LT(ratio, 0.035);
}

TEST(Engines, BaselineMeeMetadataTensOfPercent) {
  auto engine = make_engine(Scheme::kBaselineMee);
  const u64 bytes = 64ULL << 20;
  const StreamTraffic read_t = engine->process(seq_read(0, bytes));
  const double read_ratio =
      static_cast<double>(read_t.meta_read_bytes + read_t.meta_write_bytes) /
      static_cast<double>(bytes);
  // Paper: BP increases traffic ~35% on average; pure streaming reads sit in
  // the 25-40% band (VN line + MAC line per 512 B + tree).
  EXPECT_GT(read_ratio, 0.20);
  EXPECT_LT(read_ratio, 0.45);
}

TEST(Engines, BaselineWritesCostMoreThanReads) {
  auto engine = make_engine(Scheme::kBaselineMee);
  const u64 bytes = 32ULL << 20;
  const StreamTraffic r = engine->process(seq_read(0, bytes));
  engine->reset();
  const StreamTraffic w = engine->process(seq_write(0, bytes));
  // Writes dirty VN and MAC lines, which must be written back.
  EXPECT_GT(w.meta_write_bytes, r.meta_write_bytes);
}

TEST(Engines, BaselineRandomWorseThanSequential) {
  ProtectionConfig cfg;
  auto engine = make_engine(Scheme::kBaselineMee, cfg);
  const u64 bytes = 8ULL << 20;
  const StreamTraffic seq = engine->process(seq_read(0, bytes));
  engine->reset();
  AccessStream rnd = seq_read(0, bytes, 4ULL << 30);
  rnd.random = true;
  const StreamTraffic random_t = engine->process(rnd);
  EXPECT_GT(random_t.meta_read_bytes, seq.meta_read_bytes);
}

TEST(Engines, GuardNnCiFarCheaperThanBaseline) {
  auto bp = make_engine(Scheme::kBaselineMee);
  auto ci = make_engine(Scheme::kGuardNnCI);
  const u64 bytes = 32ULL << 20;
  const u64 bp_meta = bp->process(seq_read(0, bytes)).meta_read_bytes;
  const u64 ci_meta = ci->process(seq_read(0, bytes)).meta_read_bytes;
  EXPECT_GT(bp_meta, ci_meta * 8);
}

TEST(Engines, MacChunkGranularitySweep) {
  // Larger MAC chunks => less metadata (ablation A1 sanity).
  u64 prev = ~0ULL;
  for (u64 chunk : {64u, 128u, 256u, 512u, 1024u, 4096u}) {
    ProtectionConfig cfg;
    cfg.mac_chunk_bytes = chunk;
    auto engine = make_engine(Scheme::kGuardNnCI, cfg);
    const u64 meta = engine->process(seq_read(0, 32ULL << 20)).meta_read_bytes;
    EXPECT_LE(meta, prev) << "chunk=" << chunk;
    prev = meta;
  }
}

TEST(Engines, BiggerCacheReducesBaselineTraffic) {
  // Ablation A2 sanity: metadata traffic shrinks with cache size when the
  // working set has reuse.
  const u64 bytes = 2ULL << 20;
  u64 small_meta = 0, big_meta = 0;
  {
    ProtectionConfig cfg;
    cfg.metadata_cache_bytes = 8 * 1024;
    auto engine = make_engine(Scheme::kBaselineMee, cfg);
    // Two passes over the same 2 MiB: second pass can hit if cache is large.
    engine->process(seq_read(0, bytes));
    small_meta = engine->process(seq_read(0, bytes)).meta_read_bytes;
  }
  {
    ProtectionConfig cfg;
    cfg.metadata_cache_bytes = 1024 * 1024;
    auto engine = make_engine(Scheme::kBaselineMee, cfg);
    engine->process(seq_read(0, bytes));
    big_meta = engine->process(seq_read(0, bytes)).meta_read_bytes;
  }
  EXPECT_LT(big_meta, small_meta);
}


TEST(Engines, SplitCounterBetweenGuardNnAndBp) {
  // BP_split (split counters) cuts VN traffic 8x vs BP but keeps per-64B
  // MACs and the tree, so it lands strictly between GuardNN_CI and BP.
  auto bp = make_engine(Scheme::kBaselineMee);
  auto split = make_engine(Scheme::kBaselineSplit);
  auto ci = make_engine(Scheme::kGuardNnCI);
  const u64 bytes = 32ULL << 20;
  const u64 bp_meta = bp->process(seq_read(0, bytes)).meta_read_bytes;
  const u64 split_meta = split->process(seq_read(0, bytes)).meta_read_bytes;
  const u64 ci_meta = ci->process(seq_read(0, bytes)).meta_read_bytes;
  EXPECT_LT(split_meta, bp_meta);
  EXPECT_GT(split_meta, ci_meta * 4);
}

TEST(Engines, TnpuLikeBetweenGuardNnCiAndBaselines) {
  // TNPU-like: on-chip VNs (no tree) but 64 B MAC granularity -> ~8x the
  // metadata of GuardNN_CI's 512 B chunks, still below BP.
  auto tnpu = make_engine(Scheme::kTnpuLike);
  auto ci = make_engine(Scheme::kGuardNnCI);
  auto bp = make_engine(Scheme::kBaselineMee);
  const u64 bytes = 32ULL << 20;
  const u64 tnpu_meta = tnpu->process(seq_read(0, bytes)).meta_read_bytes;
  const u64 ci_meta = ci->process(seq_read(0, bytes)).meta_read_bytes;
  const u64 bp_meta = bp->process(seq_read(0, bytes)).meta_read_bytes;
  EXPECT_GT(tnpu_meta, ci_meta * 4);
  EXPECT_LT(tnpu_meta, bp_meta);
}

TEST(Engines, AllSchemesPreserveDataBytes) {
  for (Scheme s : {Scheme::kNone, Scheme::kBaselineMee, Scheme::kGuardNnC,
                   Scheme::kGuardNnCI, Scheme::kBaselineSplit,
                   Scheme::kTnpuLike}) {
    auto engine = make_engine(s);
    const StreamTraffic t = engine->process(seq_read(0, 4 << 20));
    EXPECT_EQ(t.data_read_bytes, 4u << 20) << scheme_name(s);
    EXPECT_EQ(t.data_write_bytes, 0u) << scheme_name(s);
  }
}

TEST(Engines, NewSchemeNamesAndFactory) {
  EXPECT_EQ(scheme_name(Scheme::kBaselineSplit), "BP_split");
  EXPECT_EQ(scheme_name(Scheme::kTnpuLike), "TNPU-like");
  EXPECT_EQ(make_engine(Scheme::kBaselineSplit)->scheme(), Scheme::kBaselineSplit);
  EXPECT_EQ(make_engine(Scheme::kTnpuLike)->scheme(), Scheme::kTnpuLike);
}

TEST(Engines, SchemeNames) {
  EXPECT_EQ(scheme_name(Scheme::kNone), "NP");
  EXPECT_EQ(scheme_name(Scheme::kBaselineMee), "BP");
  EXPECT_EQ(scheme_name(Scheme::kGuardNnC), "GuardNN_C");
  EXPECT_EQ(scheme_name(Scheme::kGuardNnCI), "GuardNN_CI");
}

TEST(Engines, FactoryProducesDistinctSchemes) {
  for (Scheme s : {Scheme::kNone, Scheme::kBaselineMee, Scheme::kGuardNnC,
                   Scheme::kGuardNnCI}) {
    EXPECT_EQ(make_engine(s)->scheme(), s);
  }
}

// --- Wire-format golden values ----------------------------------------------
//
// Pins the exact bytes the memory-protection path puts in DRAM for a fixed
// key, VN sequence, address and plaintext: VN construction (VnGenerator) →
// AES-CTR ciphertext (per-16B counter = block address ‖ VN) → 64-bit CMAC
// truncation. Any refactor of VN layout, counter formation, keystream order
// or MAC truncation changes these strings and must be a deliberate,
// documented format break — not a silent one.
TEST(WireFormat, GoldenCiphertextAndMacForFixedVnSequence) {
  crypto::AesKey key{};
  for (std::size_t i = 0; i < key.size(); ++i) key[i] = static_cast<u8>(i);
  const crypto::Aes128 aes(key);

  // Fixed instruction sequence: SetWeight, SetInput, two Forward writes.
  VnGenerator vn;
  vn.on_set_weight();
  vn.on_set_input();
  vn.on_forward_write();
  vn.on_forward_write();
  ASSERT_EQ(vn.weight_vn(), 1u);
  // CTR_IN = 1 in the high 32 bits, CTR_F,W = 2 in the low 32 bits.
  ASSERT_EQ(vn.feature_write_vn(), 0x1'0000'0002ULL);

  Bytes plaintext(64);
  for (std::size_t i = 0; i < plaintext.size(); ++i)
    plaintext[i] = static_cast<u8>(i * 3 + 1);

  // Feature region at 0x4000'0000 with the feature-write VN.
  const u64 feature_addr = 0x4000'0000ULL;
  Bytes feature_ct = plaintext;
  crypto::memory_xcrypt(aes, feature_addr / crypto::kAesBlockBytes,
                        vn.feature_write_vn(), feature_ct);
  EXPECT_EQ(to_hex(feature_ct),
            "1ffd27e0599ab0b3fc2e751ffc12058f58a6f2be3f3cb306d904a052186c107b"
            "543b67d6ebde351710053487bb054b82d4dc348dd656bf8f67bcd5935d7c2657");
  EXPECT_EQ(crypto::memory_mac(aes, feature_addr, vn.feature_write_vn(), feature_ct),
            0xc402ff96953b7231ULL);

  // Weight region at address 0 with the weight VN.
  Bytes weight_ct = plaintext;
  crypto::memory_xcrypt(aes, 0, vn.weight_vn(), weight_ct);
  EXPECT_EQ(to_hex(weight_ct),
            "121c9d60e9bb14b869bfb59f1596b2f0bea01e7e71cf0873d00e5d67e0488463"
            "f530215e711f2a078772c9e0347312de4c32f8bf815d1a7a3662587b86023934");
  EXPECT_EQ(crypto::memory_mac(aes, 0, vn.weight_vn(), weight_ct),
            0x1c2fee436b888316ULL);

  // Round-trip sanity: the golden ciphertext decrypts back under the same VN.
  Bytes decrypted = feature_ct;
  crypto::memory_xcrypt(aes, feature_addr / crypto::kAesBlockBytes,
                        vn.feature_write_vn(), decrypted);
  EXPECT_EQ(decrypted, plaintext);
}

}  // namespace
}  // namespace guardnn::memprot
