// Backend-equivalence and allocation-behaviour tests for the crypto data
// path.
//
// The AES encrypt core has several runtime-dispatched implementations
// (scalar reference, T-table, AES-NI / ARMv8-CE when compiled in); a bug in a
// fast path must never hide behind whichever backend happens to be the
// default, so every KAT and a large random cross-check run against *all*
// backends available on the build machine. The streaming CmacState gets the
// RFC 4493 official vectors including every possible update() split, and the
// memory_mac / MPU::write hot paths are pinned to zero heap allocations in
// steady state.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "accel/mpu.h"
#include "common/rng.h"
#include "crypto/aes128.h"
#include "crypto/mem_mac.h"
#include "crypto/sha256.h"

// --- Global allocation counter ----------------------------------------------
// Counts every operator-new in this binary so tests can assert that a code
// region performs no heap allocation. The replacement is intentionally thin:
// malloc + counter, so ASan still sees every allocation.

namespace {
std::atomic<std::size_t> g_alloc_count{0};

void* counted_alloc(std::size_t size) {
  ++g_alloc_count;
  void* p = std::malloc(size ? size : 1);
  if (!p) throw std::bad_alloc();
  return p;
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace guardnn::crypto {
namespace {

AesKey key_from_hex(const std::string& hex) {
  const Bytes raw = from_hex(hex);
  AesKey key{};
  std::copy(raw.begin(), raw.end(), key.begin());
  return key;
}

/// Pins a backend for the duration of a scope, restoring the previous one.
class BackendGuard {
 public:
  explicit BackendGuard(Aes128Backend backend) : previous_(aes_active_backend()) {
    aes_force_backend(backend);
  }
  ~BackendGuard() { aes_force_backend(previous_); }

 private:
  Aes128Backend previous_;
};

// --- Backend plumbing --------------------------------------------------------

TEST(AesBackend, PortableBackendsAlwaysAvailable) {
  EXPECT_TRUE(aes_backend_available(Aes128Backend::kReference));
  EXPECT_TRUE(aes_backend_available(Aes128Backend::kTtable));
  const auto backends = aes_available_backends();
  EXPECT_GE(backends.size(), 2u);
  // The dispatcher must never *default* to the reference core (an explicit
  // GUARDNN_AES_BACKEND pin is allowed to pick anything).
  if (std::getenv("GUARDNN_AES_BACKEND") == nullptr) {
    EXPECT_NE(aes_active_backend(), Aes128Backend::kReference);
  }
}

TEST(AesBackend, ForceUnavailableBackendThrows) {
  for (Aes128Backend b : {Aes128Backend::kAesni, Aes128Backend::kArmCe}) {
    if (!aes_backend_available(b)) {
      EXPECT_THROW(aes_force_backend(b), std::invalid_argument)
          << aes_backend_name(b);
    }
  }
}

TEST(AesBackend, NamesAreStable) {
  EXPECT_STREQ(aes_backend_name(Aes128Backend::kReference), "reference");
  EXPECT_STREQ(aes_backend_name(Aes128Backend::kTtable), "ttable");
  EXPECT_STREQ(aes_backend_name(Aes128Backend::kAesni), "aesni");
  EXPECT_STREQ(aes_backend_name(Aes128Backend::kArmCe), "armce");
}

// --- Known-answer tests on every backend ------------------------------------

TEST(AesBackendKat, Fips197AndSp80038aOnEveryBackend) {
  for (Aes128Backend backend : aes_available_backends()) {
    BackendGuard guard(backend);
    SCOPED_TRACE(aes_backend_name(backend));

    // FIPS-197 Appendix C.1.
    {
      const Aes128 aes(key_from_hex("000102030405060708090a0b0c0d0e0f"));
      AesBlock block{};
      const Bytes pt = from_hex("00112233445566778899aabbccddeeff");
      std::copy(pt.begin(), pt.end(), block.begin());
      aes.encrypt_block(block.data());
      EXPECT_EQ(to_hex(BytesView(block.data(), block.size())),
                "69c4e0d86a7b0430d8cdb78070b4c55a");
    }
    // NIST SP 800-38A F.1.1 ECB-AES128.
    {
      const Aes128 aes(key_from_hex("2b7e151628aed2a6abf7158809cf4f3c"));
      AesBlock block{};
      const Bytes pt = from_hex("6bc1bee22e409f96e93d7e117393172a");
      std::copy(pt.begin(), pt.end(), block.begin());
      aes.encrypt_block(block.data());
      EXPECT_EQ(to_hex(BytesView(block.data(), block.size())),
                "3ad77bb40d7a3660a89ecaf32466ef97");
    }
    // NIST SP 800-38A F.5.1 CTR-AES128 (exercises the batched keystream).
    {
      const Aes128 aes(key_from_hex("2b7e151628aed2a6abf7158809cf4f3c"));
      AesBlock counter0{};
      const Bytes c0 = from_hex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff");
      std::copy(c0.begin(), c0.end(), counter0.begin());
      Bytes data = from_hex(
          "6bc1bee22e409f96e93d7e117393172a"
          "ae2d8a571e03ac9c9eb76fac45af8e51"
          "30c81c46a35ce411e5fbc1191a0a52ef"
          "f69f2445df4f9b17ad2b417be66c3710");
      ctr_xcrypt(aes, counter0, data);
      EXPECT_EQ(to_hex(data),
                "874d6191b620e3261bef6864990db6ce"
                "9806f66b7970fdff8617187bb9fffdff"
                "5ae4df3edbd5d35e5b4f09020db03eab"
                "1e031dda2fbe03d1792170a0f3009cee");
    }
    // RFC 4493 CMAC example 3 (40 B message).
    {
      const Aes128 aes(key_from_hex("2b7e151628aed2a6abf7158809cf4f3c"));
      const Bytes m = from_hex(
          "6bc1bee22e409f96e93d7e117393172a"
          "ae2d8a571e03ac9c9eb76fac45af8e51"
          "30c81c46a35ce411");
      const AesBlock tag = cmac_aes128(aes, m);
      EXPECT_EQ(to_hex(BytesView(tag.data(), tag.size())),
                "dfa66747de9ae63030ca32611497c827");
    }
  }
}

// --- Random cross-checks: every backend must agree byte-for-byte ------------

TEST(AesBackendCrossCheck, SingleBlockRandomVectors) {
  const auto backends = aes_available_backends();
  Xoshiro256 rng(0xAE5BEEF);
  for (int trial = 0; trial < 1000; ++trial) {
    AesKey key{};
    rng.fill(MutBytesView(key.data(), key.size()));
    AesBlock pt{};
    rng.fill(MutBytesView(pt.data(), pt.size()));
    const Aes128 aes(key);

    AesBlock expected{};
    {
      BackendGuard guard(Aes128Backend::kReference);
      expected = aes.encrypt(pt);
    }
    EXPECT_EQ(aes.decrypt(expected), pt);
    for (Aes128Backend backend : backends) {
      BackendGuard guard(backend);
      EXPECT_EQ(aes.encrypt(pt), expected)
          << aes_backend_name(backend) << " trial " << trial;
    }
  }
}

TEST(AesBackendCrossCheck, BatchMatchesSingleBlockAtEveryCount) {
  Xoshiro256 rng(0xBA7C4);
  AesKey key{};
  rng.fill(MutBytesView(key.data(), key.size()));
  const Aes128 aes(key);

  // Covers every remainder path of the 8-wide AES-NI and 2-wide T-table loops.
  for (std::size_t n = 1; n <= 33; ++n) {
    Bytes in(n * kAesBlockBytes);
    rng.fill(in);
    for (Aes128Backend backend : aes_available_backends()) {
      BackendGuard guard(backend);
      Bytes batch(in.size());
      aes.encrypt_blocks(in.data(), batch.data(), n);
      Bytes single = in;
      for (std::size_t b = 0; b < n; ++b)
        aes.encrypt_block(single.data() + b * kAesBlockBytes);
      EXPECT_EQ(batch, single) << aes_backend_name(backend) << " n=" << n;
      // In-place batch must agree with out-of-place.
      Bytes inplace = in;
      aes.encrypt_blocks(inplace.data(), inplace.data(), n);
      EXPECT_EQ(inplace, batch) << aes_backend_name(backend) << " n=" << n;
    }
  }
}

TEST(AesBackendCrossCheck, AesBlockArrayOverload) {
  Xoshiro256 rng(0xB10C);
  AesKey key{};
  rng.fill(MutBytesView(key.data(), key.size()));
  const Aes128 aes(key);
  std::array<AesBlock, 5> in{};
  std::array<AesBlock, 5> out{};
  for (auto& b : in) rng.fill(MutBytesView(b.data(), b.size()));
  for (Aes128Backend backend : aes_available_backends()) {
    BackendGuard guard(backend);
    aes.encrypt_blocks(in.data(), out.data(), in.size());
    for (std::size_t i = 0; i < in.size(); ++i)
      EXPECT_EQ(out[i], aes.encrypt(in[i])) << aes_backend_name(backend);
  }
}

TEST(AesBackendCrossCheck, CtrAndCmacRandomVectors) {
  const auto backends = aes_available_backends();
  Xoshiro256 rng(0xC7C7C7);
  for (int trial = 0; trial < 1000; ++trial) {
    AesKey key{};
    rng.fill(MutBytesView(key.data(), key.size()));
    const Aes128 aes(key);
    const std::size_t len = 1 + rng.next_below(200);
    Bytes message(len);
    rng.fill(message);
    const AesBlock counter0 = make_counter_block(rng.next(), rng.next());

    Bytes expected_ct;
    AesBlock expected_tag{};
    {
      BackendGuard guard(Aes128Backend::kReference);
      expected_ct = message;
      ctr_xcrypt(aes, counter0, expected_ct);
      expected_tag = cmac_aes128(aes, message);
    }
    for (Aes128Backend backend : backends) {
      BackendGuard guard(backend);
      Bytes ct = message;
      ctr_xcrypt(aes, counter0, ct);
      EXPECT_EQ(ct, expected_ct) << aes_backend_name(backend) << " trial " << trial;
      EXPECT_EQ(cmac_aes128(aes, message), expected_tag)
          << aes_backend_name(backend) << " trial " << trial;
    }
  }
}

TEST(AesBackendCrossCheck, MemoryXcryptAndMemoryMacAgree) {
  const auto backends = aes_available_backends();
  Xoshiro256 rng(0x3E3E);
  for (int trial = 0; trial < 100; ++trial) {
    AesKey key{};
    rng.fill(MutBytesView(key.data(), key.size()));
    const Aes128 aes(key);
    Bytes data((1 + rng.next_below(40)) * kAesBlockBytes);
    rng.fill(data);
    const u64 base = rng.next();
    const u64 vn = rng.next();

    Bytes expected_ct;
    u64 expected_mac = 0;
    {
      BackendGuard guard(Aes128Backend::kReference);
      expected_ct = data;
      memory_xcrypt(aes, base, vn, expected_ct);
      expected_mac = memory_mac(aes, base, vn, data);
    }
    for (Aes128Backend backend : backends) {
      BackendGuard guard(backend);
      Bytes ct = data;
      memory_xcrypt(aes, base, vn, ct);
      EXPECT_EQ(ct, expected_ct) << aes_backend_name(backend);
      EXPECT_EQ(memory_mac(aes, base, vn, data), expected_mac)
          << aes_backend_name(backend);
    }
  }
}

// --- RFC 4493 official vectors for the streaming CmacState -------------------

struct Rfc4493Case {
  std::size_t len;
  const char* tag_hex;
};

TEST(CmacStream, Rfc4493Examples1Through4) {
  const Aes128 aes(key_from_hex("2b7e151628aed2a6abf7158809cf4f3c"));
  const Bytes m64 = from_hex(
      "6bc1bee22e409f96e93d7e117393172a"
      "ae2d8a571e03ac9c9eb76fac45af8e51"
      "30c81c46a35ce411e5fbc1191a0a52ef"
      "f69f2445df4f9b17ad2b417be66c3710");
  const Rfc4493Case cases[] = {
      {0, "bb1d6929e95937287fa37d129b756746"},   // Example 1
      {16, "070a16b46b4d4144f79bdd9dd04a287c"},  // Example 2
      {40, "dfa66747de9ae63030ca32611497c827"},  // Example 3
      {64, "51f0bebf7e3b9d92fc49741779363cfe"},  // Example 4
  };

  for (const auto& c : cases) {
    const BytesView message(m64.data(), c.len);

    // One-shot.
    CmacState one_shot(aes);
    one_shot.update(message);
    AesBlock tag = one_shot.finish();
    EXPECT_EQ(to_hex(BytesView(tag.data(), tag.size())), c.tag_hex)
        << "one-shot len=" << c.len;

    // Split at every offset: update(m[0:split]) + update(m[split:]).
    for (std::size_t split = 0; split <= c.len; ++split) {
      CmacState st(aes);
      st.update(BytesView(message.data(), split));
      st.update(BytesView(message.data() + split, c.len - split));
      tag = st.finish();
      EXPECT_EQ(to_hex(BytesView(tag.data(), tag.size())), c.tag_hex)
          << "len=" << c.len << " split=" << split;
    }

    // Byte-at-a-time.
    CmacState dribble(aes);
    for (std::size_t i = 0; i < c.len; ++i)
      dribble.update(BytesView(message.data() + i, 1));
    tag = dribble.finish();
    EXPECT_EQ(to_hex(BytesView(tag.data(), tag.size())), c.tag_hex)
        << "byte-at-a-time len=" << c.len;
  }
}

TEST(CmacStream, ResetReusesState) {
  const Aes128 aes(key_from_hex("2b7e151628aed2a6abf7158809cf4f3c"));
  const Bytes m = from_hex("6bc1bee22e409f96e93d7e117393172a");
  CmacState st(aes);
  st.update(m);
  const AesBlock first = st.finish();
  st.reset();
  st.update(m);
  EXPECT_EQ(st.finish(), first);
}

TEST(CmacStream, RandomSplitsMatchOneShot) {
  Xoshiro256 rng(0x5717);
  AesKey key{};
  rng.fill(MutBytesView(key.data(), key.size()));
  const Aes128 aes(key);
  const CmacSubkeys subkeys = cmac_derive_subkeys(aes);

  for (int trial = 0; trial < 200; ++trial) {
    Bytes message(rng.next_below(300));
    rng.fill(message);
    const AesBlock expected = cmac_aes128(aes, message);

    CmacState st(aes, subkeys);
    std::size_t offset = 0;
    while (offset < message.size()) {
      const std::size_t n =
          std::min<std::size_t>(1 + rng.next_below(48), message.size() - offset);
      st.update(BytesView(message.data() + offset, n));
      offset += n;
    }
    EXPECT_EQ(st.finish(), expected) << "trial " << trial;
  }
}

// --- Zero heap allocation on the hot paths -----------------------------------

// --- Lane-batched CMAC (the fused seal pipeline's MAC kernel) ---------------

TEST(CmacLanes, CmacManyMatchesSerialOnEveryBackend) {
  Xoshiro256 rng(0x77);
  const Aes128 aes(key_from_hex("2b7e151628aed2a6abf7158809cf4f3c"));
  const CmacSubkeys subkeys = cmac_derive_subkeys(aes);

  for (Aes128Backend backend : aes_available_backends()) {
    BackendGuard guard(backend);
    // Geometries covering both call sites (16 B address/version prefix over
    // 512 B chunks, 8 B index prefix over 64 KiB chunks) plus edge shapes:
    // empty bodies, sub-block messages, non-block-multiple totals, and lane
    // counts below/at/above kCmacLanes.
    const struct {
      std::size_t prefix, body, count;
    } shapes[] = {{16, 512, 16},  {8, 65536, 3},   {16, 512, 1},
                  {8, 0, 5},      {0, 1, 9},       {0, 16, 17},
                  {16, 48, 33},   {8, 513, 2 * kCmacLanes + 1}};
    for (const auto& shape : shapes) {
      Bytes prefixes(shape.prefix * shape.count);
      Bytes bodies(shape.body * shape.count + 1);  // +1: never zero-sized
      rng.fill(prefixes);
      rng.fill(bodies);
      std::vector<CmacMessage> messages(shape.count);
      for (std::size_t i = 0; i < shape.count; ++i) {
        messages[i].prefix = BytesView(
            shape.prefix ? prefixes.data() + i * shape.prefix : nullptr,
            shape.prefix);
        messages[i].body = BytesView(
            shape.body ? bodies.data() + i * shape.body : nullptr, shape.body);
      }
      std::vector<AesBlock> tags(shape.count);
      cmac_many(aes, subkeys, messages.data(), shape.count, tags.data());
      for (std::size_t i = 0; i < shape.count; ++i) {
        Bytes serial(messages[i].prefix.begin(), messages[i].prefix.end());
        serial.insert(serial.end(), messages[i].body.begin(),
                      messages[i].body.end());
        EXPECT_EQ(tags[i], cmac_aes128(aes, serial))
            << aes_backend_name(backend) << " prefix=" << shape.prefix
            << " body=" << shape.body << " lane " << i;
      }
    }
  }
}

TEST(CmacLanes, MixedGeometryRejected) {
  const Aes128 aes(key_from_hex("000102030405060708090a0b0c0d0e0f"));
  const CmacSubkeys subkeys = cmac_derive_subkeys(aes);
  const Bytes a(32, 1), b(48, 2);
  CmacMessage messages[2] = {{BytesView(), BytesView(a)},
                             {BytesView(), BytesView(b)}};
  AesBlock tags[2];
  EXPECT_THROW(cmac_many(aes, subkeys, messages, 2, tags),
               std::invalid_argument);
}

TEST(CmacLanes, MemoryMacManyMatchesPerChunkIncludingRaggedTail) {
  Xoshiro256 rng(0x78);
  const Aes128 aes(key_from_hex("2b7e151628aed2a6abf7158809cf4f3c"));
  const CmacSubkeys subkeys = cmac_derive_subkeys(aes);
  // 37 full chunks plus a 320-byte tail.
  Bytes region(37 * 512 + 320);
  rng.fill(region);
  const std::size_t n_chunks = 38;
  std::vector<u64> tags(n_chunks);
  memory_mac_many(aes, subkeys, 0x4000, 9, 512, region, tags.data(), n_chunks);
  for (std::size_t i = 0; i < n_chunks; ++i) {
    const std::size_t off = i * 512;
    const std::size_t len = std::min<std::size_t>(512, region.size() - off);
    EXPECT_EQ(tags[i], memory_mac(aes, subkeys, 0x4000 + off, 9,
                                  BytesView(region.data() + off, len)))
        << "chunk " << i;
  }
}

// --- SHA-256 backends --------------------------------------------------------

TEST(Sha256Backend, ScalarAlwaysAvailableAndNamesStable) {
  EXPECT_TRUE(sha256_backend_available(Sha256Backend::kScalar));
  EXPECT_STREQ(sha256_backend_name(Sha256Backend::kScalar), "scalar");
  EXPECT_STREQ(sha256_backend_name(Sha256Backend::kShani), "shani");
}

TEST(Sha256Backend, BackendsAgreeOnRandomVectorsAndSplits) {
  const Sha256Backend original = sha256_active_backend();
  Xoshiro256 rng(0x79);
  // Lengths straddling block boundaries and the bulk multi-block path.
  const std::size_t lengths[] = {0, 1, 55, 56, 63, 64, 65, 127, 128, 1000, 8191};
  for (const std::size_t n : lengths) {
    Bytes data(n + 1);
    rng.fill(data);
    data.resize(n);

    std::vector<Sha256Digest> digests;
    for (Sha256Backend backend :
         {Sha256Backend::kScalar, Sha256Backend::kShani}) {
      if (!sha256_backend_available(backend)) continue;
      sha256_force_backend(backend);
      digests.push_back(Sha256::hash(data));
      // Split updates must hit the same buffered/bulk paths consistently.
      Sha256 split;
      split.update(BytesView(data.data(), n / 3));
      split.update(BytesView(data.data() + n / 3, n - n / 3));
      EXPECT_EQ(split.finalize(), digests.back())
          << sha256_backend_name(backend) << " n=" << n;
    }
    for (const Sha256Digest& digest : digests)
      EXPECT_EQ(digest, digests.front()) << "backend divergence at n=" << n;
  }
  sha256_force_backend(original);
}

TEST(Sha256Backend, ForceUnavailableBackendThrows) {
  if (!sha256_backend_available(Sha256Backend::kShani)) {
    EXPECT_THROW(sha256_force_backend(Sha256Backend::kShani),
                 std::invalid_argument);
  }
}

TEST(ZeroAlloc, CmacManySteadyState) {
  const Aes128 aes(key_from_hex("000102030405060708090a0b0c0d0e0f"));
  const CmacSubkeys subkeys = cmac_derive_subkeys(aes);
  Bytes region(kCmacLanes * 512, 0xcd);
  u8 prefixes[kCmacLanes][16];
  CmacMessage messages[kCmacLanes];
  AesBlock tags[kCmacLanes];
  for (std::size_t i = 0; i < kCmacLanes; ++i) {
    store_be64(prefixes[i], i);
    store_be64(prefixes[i] + 8, 42);
    messages[i].prefix = BytesView(prefixes[i], 16);
    messages[i].body = BytesView(region.data() + i * 512, 512);
  }
  cmac_many(aes, subkeys, messages, kCmacLanes, tags);  // warm up
  const std::size_t before = g_alloc_count.load();
  cmac_many(aes, subkeys, messages, kCmacLanes, tags);
  u64 chunk_tags[kCmacLanes];
  memory_mac_many(aes, subkeys, 0x8000, 3, 512, region, chunk_tags,
                  kCmacLanes);
  EXPECT_EQ(g_alloc_count.load(), before)
      << "lane-batched CMAC allocated on the heap";
}

TEST(ZeroAlloc, MemoryMacSteadyState) {
  const Aes128 aes(key_from_hex("000102030405060708090a0b0c0d0e0f"));
  const CmacSubkeys subkeys = cmac_derive_subkeys(aes);
  Bytes chunk(512, 0xab);

  volatile u64 sink = memory_mac(aes, subkeys, 0x1000, 1, chunk);  // warm up
  const std::size_t before = g_alloc_count.load();
  for (int i = 0; i < 16; ++i)
    sink = memory_mac(aes, subkeys, 0x1000 + 512 * u64(i), u64(i), chunk);
  EXPECT_EQ(g_alloc_count.load(), before) << "memory_mac allocated on the heap";
  (void)sink;

  // The subkey-deriving overload must also be allocation-free.
  const std::size_t before2 = g_alloc_count.load();
  sink = memory_mac(aes, 0x2000, 7, chunk);
  EXPECT_EQ(g_alloc_count.load(), before2);
}

TEST(ZeroAlloc, MpuWriteSteadyState) {
  accel::UntrustedMemory mem;
  AesKey enc_key{};
  AesKey mac_key{};
  enc_key[0] = 1;
  mac_key[0] = 2;
  accel::MemoryProtectionUnit mpu(mem, enc_key, mac_key, /*integrity=*/true);

  Bytes data(1024, 0x5a);
  // Warm up: touch the data and MAC pages and grow the trace vector's
  // capacity past what the measured writes will append.
  for (int i = 0; i < 8; ++i) mpu.write(0, data, u64(i));
  mpu.clear_trace();  // keeps capacity

  const std::size_t before = g_alloc_count.load();
  mpu.write(0, data, 100);
  EXPECT_EQ(g_alloc_count.load(), before) << "MPU::write allocated on the heap";

  Bytes out(1024);
  ASSERT_TRUE(mpu.read(0, out, 100));
  EXPECT_EQ(out, data);
}

}  // namespace
}  // namespace guardnn::crypto
