// Session-table lifecycle unit tests: slot exhaustion, close semantics
// (double-close, use-after-close, stale ids after slot reuse), key
// zeroization, DRAM partition bounds and cross-partition replay.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "host/user_client.h"

namespace guardnn::accel {
namespace {

using host::RemoteUser;

struct Fixture {
  UntrustedMemory memory;
  crypto::HmacDrbg ca_drbg{Bytes{0x51}};
  crypto::ManufacturerCa ca{ca_drbg};
  GuardNnDevice device{"session-dev", ca, memory, Bytes{0x52}};
  crypto::HmacDrbg scratch_drbg{Bytes{0x53}};

  /// A full verified handshake through a fresh RemoteUser; returns the user
  /// (carrying its session id) or nullptr on failure.
  std::unique_ptr<RemoteUser> open_session(u8 user_seed, bool integrity) {
    auto user = std::make_unique<RemoteUser>(ca.public_key(), Bytes{user_seed});
    if (!user->attest_device(device.get_pk())) return nullptr;
    if (!user->complete_session(
            device.init_session(user->begin_session(), integrity)))
      return nullptr;
    return user;
  }
};

TEST(SessionTable, InitReturnsDistinctIdsUntilExhaustion) {
  Fixture fx;
  crypto::HmacDrbg drbg(Bytes{0x60});
  const crypto::EcdhKeyPair user = crypto::ecdh_generate_key(drbg);

  std::vector<SessionId> sids;
  for (std::size_t i = 0; i < GuardNnDevice::kMaxSessions; ++i) {
    const InitSessionResponse resp = fx.device.init_session(user.public_key, false);
    ASSERT_EQ(resp.status, DeviceStatus::kOk) << "slot " << i;
    ASSERT_NE(resp.session_id, kInvalidSession);
    sids.push_back(resp.session_id);
  }
  // All ids distinct.
  std::sort(sids.begin(), sids.end());
  EXPECT_EQ(std::adjacent_find(sids.begin(), sids.end()), sids.end());
  EXPECT_EQ(fx.device.session_count(), GuardNnDevice::kMaxSessions);

  // Table full: coarse error, no session created.
  const InitSessionResponse full = fx.device.init_session(user.public_key, false);
  EXPECT_EQ(full.status, DeviceStatus::kNoResources);
  EXPECT_EQ(full.session_id, kInvalidSession);

  // Closing any session frees a slot for the next InitSession.
  EXPECT_EQ(fx.device.close_session(sids[3]), DeviceStatus::kOk);
  EXPECT_EQ(fx.device.session_count(), GuardNnDevice::kMaxSessions - 1);
  const InitSessionResponse again = fx.device.init_session(user.public_key, false);
  EXPECT_EQ(again.status, DeviceStatus::kOk);
}

TEST(SessionTable, DoubleCloseAndUseAfterCloseAreNoSession) {
  Fixture fx;
  auto user = fx.open_session(0x61, true);
  ASSERT_NE(user, nullptr);
  const SessionId sid = user->session_id();

  const crypto::SealedRecord record = user->seal(Bytes(512, 0x7a));
  ASSERT_EQ(fx.device.set_weight(sid, record, 0), DeviceStatus::kOk);

  ASSERT_EQ(fx.device.close_session(sid), DeviceStatus::kOk);
  EXPECT_EQ(fx.device.close_session(sid), DeviceStatus::kNoSession);

  // Every instruction on the closed id answers kNoSession — nothing else.
  EXPECT_EQ(fx.device.set_weight(sid, record, 0), DeviceStatus::kNoSession);
  EXPECT_EQ(fx.device.set_input(sid, record, 0), DeviceStatus::kNoSession);
  EXPECT_EQ(fx.device.set_read_ctr(sid, 0, 512, 0), DeviceStatus::kNoSession);
  ForwardOp op;
  op.in_c = op.in_h = op.in_w = 4;
  EXPECT_EQ(fx.device.forward(sid, op), DeviceStatus::kNoSession);
  crypto::SealedRecord out;
  EXPECT_EQ(fx.device.export_output(sid, 0, 64, out), DeviceStatus::kNoSession);
  SignOutputResponse sign;
  EXPECT_EQ(fx.device.sign_output(sid, sign), DeviceStatus::kNoSession);
}

TEST(SessionTable, StaleIdNeverValidatesAfterSlotReuse) {
  Fixture fx;
  auto user_a = fx.open_session(0x62, false);
  ASSERT_NE(user_a, nullptr);
  const SessionId stale = user_a->session_id();
  ASSERT_EQ(fx.device.close_session(stale), DeviceStatus::kOk);

  // The slot is reused (lowest free slot) with a bumped generation.
  auto user_b = fx.open_session(0x63, false);
  ASSERT_NE(user_b, nullptr);
  EXPECT_EQ(stale & 0xff, user_b->session_id() & 0xff) << "slot reused";
  EXPECT_NE(stale, user_b->session_id()) << "generation must differ";

  // The stale id stays dead even though its slot is active again.
  const crypto::SealedRecord record = user_a->seal(Bytes(512, 0x11));
  EXPECT_EQ(fx.device.set_weight(stale, record, 0), DeviceStatus::kNoSession);
  EXPECT_FALSE(fx.device.session_active(stale));
  EXPECT_TRUE(fx.device.session_active(user_b->session_id()));
}

TEST(SessionTable, CloseSessionZeroizesSlotKeys) {
  Fixture fx;
  auto user = fx.open_session(0x64, true);
  ASSERT_NE(user, nullptr);
  const SessionId sid = user->session_id();
  const std::size_t slot = sid & 0xff;

  // Import something so the session keys have demonstrably been in use.
  ASSERT_EQ(fx.device.set_weight(sid, user->seal(Bytes(512, 0x42)), 0),
            DeviceStatus::kOk);
  EXPECT_TRUE(fx.device.slot_keys_live(slot));
  EXPECT_FALSE(fx.device.slot_zeroized(slot));

  // CloseSession wipes every key byte in place; the husk stays in the slot
  // until reuse, so the wipe is observable.
  ASSERT_EQ(fx.device.close_session(sid), DeviceStatus::kOk);
  EXPECT_FALSE(fx.device.slot_keys_live(slot));
  EXPECT_TRUE(fx.device.slot_zeroized(slot));

  // Reopening the slot arms fresh keys.
  auto user2 = fx.open_session(0x65, true);
  ASSERT_NE(user2, nullptr);
  ASSERT_EQ(user2->session_id() & 0xff, sid & 0xff);
  EXPECT_TRUE(fx.device.slot_keys_live(slot));
}

TEST(SessionTable, PartitionBoundsRejected) {
  Fixture fx;
  auto user = fx.open_session(0x66, false);
  ASSERT_NE(user, nullptr);
  const SessionId sid = user->session_id();

  // Addresses at or beyond the partition end are kBadOperand, not a write
  // into a neighbour's partition.
  const u64 limit = GuardNnDevice::kSessionDramBytes;
  EXPECT_EQ(fx.device.set_weight(sid, user->seal(Bytes(512, 1)), limit),
            DeviceStatus::kBadOperand);
  EXPECT_EQ(fx.device.set_input(sid, user->seal(Bytes(512, 2)), limit - 256),
            DeviceStatus::kBadOperand)
      << "range crossing the partition end must be rejected";
  crypto::SealedRecord out;
  EXPECT_EQ(fx.device.export_output(sid, limit - 512, 1024, out),
            DeviceStatus::kBadOperand);
  // Byte counts near 2^64 must not wrap pad_region() past the bounds check.
  EXPECT_EQ(fx.device.export_output(sid, 0, ~0ULL, out),
            DeviceStatus::kBadOperand);
  EXPECT_EQ(fx.device.export_output(sid, 0, ~0ULL - 510, out),
            DeviceStatus::kBadOperand);
  // In-bounds addresses still work.
  EXPECT_EQ(fx.device.set_weight(sid, user->seal(Bytes(512, 3)), limit - 512),
            DeviceStatus::kOk);
}

TEST(SessionTable, PartitionsAreDisjointAndKeyed) {
  Fixture fx;
  auto user_a = fx.open_session(0x67, false);
  auto user_b = fx.open_session(0x68, false);
  ASSERT_NE(user_a, nullptr);
  ASSERT_NE(user_b, nullptr);

  // Same plaintext, same session-local address — lands at different physical
  // addresses with different ciphertext (per-session K_MEnc).
  const Bytes plaintext(512, 0x5c);
  ASSERT_EQ(fx.device.set_weight(user_a->session_id(), user_a->seal(plaintext), 0),
            DeviceStatus::kOk);
  ASSERT_EQ(fx.device.set_weight(user_b->session_id(), user_b->seal(plaintext), 0),
            DeviceStatus::kOk);

  const u64 base_a = GuardNnDevice::partition_base(user_a->session_id());
  const u64 base_b = GuardNnDevice::partition_base(user_b->session_id());
  ASSERT_NE(base_a, base_b);
  const Bytes cipher_a = fx.memory.read(base_a, 512);
  const Bytes cipher_b = fx.memory.read(base_b, 512);
  EXPECT_NE(cipher_a, cipher_b) << "per-session K_MEnc must differ";
  EXPECT_NE(cipher_a, plaintext);
  EXPECT_NE(cipher_b, plaintext);
}

TEST(SessionTable, CrossPartitionCiphertextReplayFailsIntegrity) {
  Fixture fx;
  auto user_a = fx.open_session(0x69, true);
  auto user_b = fx.open_session(0x6a, true);
  ASSERT_NE(user_a, nullptr);
  ASSERT_NE(user_b, nullptr);
  const SessionId sid_a = user_a->session_id();
  const SessionId sid_b = user_b->session_id();

  ASSERT_EQ(fx.device.set_input(sid_a, user_a->seal(Bytes(512, 0x21)), 0),
            DeviceStatus::kOk);

  // Malicious host copies A's ciphertext *and its MAC slot* into B's
  // partition, then asks B to export it. The MAC binds the physical address
  // and B's per-session MAC key, so verification fails closed.
  const u64 phys_a = GuardNnDevice::partition_base(sid_a);
  const u64 phys_b = GuardNnDevice::partition_base(sid_b);
  fx.memory.copy(phys_b, phys_a, 512);
  const u64 mac_region = MemoryProtectionUnit::kMacRegionBase;
  fx.memory.copy(mac_region + phys_b / 512 * 8, mac_region + phys_a / 512 * 8, 8);

  ASSERT_EQ(fx.device.set_read_ctr(sid_b, 0, 512, 1ULL << 32), DeviceStatus::kOk);
  crypto::SealedRecord out;
  EXPECT_EQ(fx.device.export_output(sid_b, 0, 512, out),
            DeviceStatus::kIntegrityFailure);

  // A is unaffected: its session still exports its own data fine.
  ASSERT_EQ(fx.device.set_read_ctr(sid_a, 0, 512, 1ULL << 32), DeviceStatus::kOk);
  EXPECT_EQ(fx.device.export_output(sid_a, 0, 512, out), DeviceStatus::kOk);
  const auto opened = user_a->open_output(out);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, Bytes(512, 0x21));
}

TEST(SessionTable, IntegrityFailureKillsOnlyThatSession) {
  Fixture fx;
  auto user_a = fx.open_session(0x6b, true);
  auto user_b = fx.open_session(0x6c, true);
  ASSERT_NE(user_a, nullptr);
  ASSERT_NE(user_b, nullptr);

  ASSERT_EQ(fx.device.set_input(user_a->session_id(), user_a->seal(Bytes(512, 1)), 0),
            DeviceStatus::kOk);
  ASSERT_EQ(fx.device.set_input(user_b->session_id(), user_b->seal(Bytes(512, 2)), 0),
            DeviceStatus::kOk);

  // Tamper with A's partition only.
  fx.memory.tamper(GuardNnDevice::partition_base(user_a->session_id()) + 7, 0x80);

  crypto::SealedRecord out;
  ASSERT_EQ(fx.device.set_read_ctr(user_a->session_id(), 0, 512, 1ULL << 32),
            DeviceStatus::kOk);
  EXPECT_EQ(fx.device.export_output(user_a->session_id(), 0, 512, out),
            DeviceStatus::kIntegrityFailure);
  // A is dead (fail-stop) ...
  EXPECT_EQ(fx.device.export_output(user_a->session_id(), 0, 512, out),
            DeviceStatus::kIntegrityFailure);
  // ... but B keeps serving.
  ASSERT_EQ(fx.device.set_read_ctr(user_b->session_id(), 0, 512, 1ULL << 32),
            DeviceStatus::kOk);
  EXPECT_EQ(fx.device.export_output(user_b->session_id(), 0, 512, out),
            DeviceStatus::kOk);
  const auto opened = user_b->open_output(out);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, Bytes(512, 2));
}

}  // namespace
}  // namespace guardnn::accel
