// Fault-tolerant serving fleet tests: scripted device fault injection
// (fault.h), the health state machine (healthy → degraded → quarantined,
// dead on fail-stop), replica failover (tenant teardown with
// kDeviceFailover, sealed-model restore through reconnect()), per-request
// deadlines (kTimeout, FIFO drained gapless), and the extended teardown
// invariant under chaos: killing a device mid-storm resolves 100% of
// in-flight futures — zero hangs. Runs under ThreadSanitizer in CI.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "host/model_codec.h"
#include "serving/fault.h"
#include "serving/inference_server.h"

namespace guardnn::serving {
namespace {

using accel::DeviceStatus;
using accel::ForwardOp;
using host::FuncLayer;
using host::FuncNetwork;
using host::RemoteUser;

Bytes random_weights(std::size_t n, u64 seed) {
  Xoshiro256 rng(seed);
  Bytes out(n);
  for (auto& b : out)
    b = static_cast<u8>(
        static_cast<i8>(static_cast<int>(rng.next_below(256)) - 128));
  return out;
}

FuncNetwork small_cnn(u64 seed) {
  FuncNetwork net;
  net.in_c = 3;
  net.in_h = 8;
  net.in_w = 8;
  net.layers.push_back(FuncLayer{ForwardOp::Kind::kConv, 4, 3, 1, 1, 4,
                                 random_weights(4 * 3 * 3 * 3, seed)});
  net.layers.push_back(FuncLayer{ForwardOp::Kind::kRelu, 0, 0, 1, 0, 0, {}});
  net.layers.push_back(FuncLayer{ForwardOp::Kind::kMaxPool, 0, 2, 2, 0, 0, {}});
  net.layers.push_back(FuncLayer{ForwardOp::Kind::kFc, 10, 0, 1, 0, 5,
                                 random_weights(10 * 4 * 4 * 4, seed + 1)});
  return net;
}

functional::Tensor random_input(const FuncNetwork& net, u64 seed) {
  functional::Tensor input(net.in_c, net.in_h, net.in_w, net.bits);
  Xoshiro256 rng(seed);
  for (auto& v : input.data())
    v = static_cast<i8>(static_cast<int>(rng.next_below(256)) - 128);
  return input;
}

Bytes tensor_bytes(const functional::Tensor& t) {
  return Bytes(t.bytes().begin(), t.bytes().end());
}

struct TenantClient {
  std::unique_ptr<RemoteUser> user;
  TenantId tenant = 0;
  std::size_t device_index = 0;
  ModelHandle model;

  bool connect(InferenceServer& server, const crypto::AffinePoint& ca_public,
               u64 seed) {
    user = std::make_unique<RemoteUser>(
        ca_public,
        Bytes{static_cast<u8>(seed), static_cast<u8>(seed >> 8), 0x5d});
    const crypto::AffinePoint share = user->begin_session();
    const auto connected = server.connect(share, /*integrity=*/true);
    if (connected.tenant == 0) return false;
    tenant = connected.tenant;
    device_index = connected.device_index;
    if (!user->attest_device(server.get_pk(device_index))) return false;
    return user->complete_session(connected.response);
  }

  /// Failover resume: fresh ECDHE share, same TenantId. Returns the
  /// ConnectResult so tests can assert model_restored.
  InferenceServer::ConnectResult reconnect(InferenceServer& server) {
    const crypto::AffinePoint share = user->begin_session();
    auto result = server.reconnect(tenant, share, /*integrity=*/true);
    if (result.tenant == 0) return result;
    device_index = result.device_index;
    if (!user->attest_device(server.get_pk(device_index)) ||
        !user->complete_session(result.response))
      result.tenant = 0;
    return result;
  }

  bool load(InferenceServer& server, const FuncNetwork& net) {
    model = server.register_model(net);
    return model.valid() &&
           server.load_model(tenant, model,
                             user->seal(model.plan->weight_blob)) ==
               DeviceStatus::kOk;
  }
};

struct Env {
  crypto::HmacDrbg ca_drbg{Bytes{0xfa}};
  crypto::ManufacturerCa ca{ca_drbg};

  InferenceServer make(ServerConfig config) {
    return InferenceServer(ca, config, Bytes{0xfb, 0xfc});
  }
};

/// Polls `predicate` until it holds or ~2 s elapse (the health monitor runs
/// every monitor_interval_ms; tests must never sleep a fixed guess).
template <typename Predicate>
bool eventually(Predicate predicate) {
  for (int i = 0; i < 2000; ++i) {
    if (predicate()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return predicate();
}

// --- FaultInjector unit tests ------------------------------------------------

TEST(FaultInjector, ScriptedCountersFireFifoThenClear) {
  FaultInjector faults(2);
  faults.script_integrity_burst(0, 2);
  faults.script_latency(0, 7.5, 1);
  // Device 1 is untouched by device 0's scripts.
  EXPECT_EQ(faults.on_call(1).kind, FaultKind::kNone);
  EXPECT_EQ(faults.on_call(0).kind, FaultKind::kIntegrity);
  EXPECT_EQ(faults.on_call(0).kind, FaultKind::kIntegrity);
  const auto latency = faults.on_call(0);
  EXPECT_EQ(latency.kind, FaultKind::kLatency);
  EXPECT_DOUBLE_EQ(latency.latency_ms, 7.5);
  EXPECT_EQ(faults.on_call(0).kind, FaultKind::kNone);
  EXPECT_EQ(faults.injected_count(), 3u);
}

TEST(FaultInjector, KillAfterCountdownLatchesDeath) {
  FaultInjector faults(1);
  faults.kill_after(0, 3);
  EXPECT_EQ(faults.on_call(0).kind, FaultKind::kNone);
  EXPECT_EQ(faults.on_call(0).kind, FaultKind::kNone);
  EXPECT_EQ(faults.on_call(0).kind, FaultKind::kDeath);
  EXPECT_TRUE(faults.dead(0));
  // Death latches: every later call fails until revive().
  EXPECT_EQ(faults.on_call(0).kind, FaultKind::kDeath);
  faults.revive(0);
  EXPECT_FALSE(faults.dead(0));
  EXPECT_EQ(faults.on_call(0).kind, FaultKind::kNone);
}

TEST(FaultInjector, PlanGrammarParsesAndIgnoresOutOfRangeDevices) {
  FaultInjector faults(4);
  EXPECT_TRUE(
      faults.arm_plan("kill:1;integrity:0:2;latency:3:1:25;drop:2:1"));
  EXPECT_TRUE(faults.dead(1));
  EXPECT_EQ(faults.on_call(0).kind, FaultKind::kIntegrity);
  EXPECT_EQ(faults.on_call(2).kind, FaultKind::kDrop);
  const auto latency = faults.on_call(3);
  EXPECT_EQ(latency.kind, FaultKind::kLatency);
  EXPECT_DOUBLE_EQ(latency.latency_ms, 25.0);
  // Entries beyond the fleet size are ignored (same plan, smaller fleet);
  // malformed entries answer false but earlier ones still apply.
  FaultInjector small(1);
  EXPECT_TRUE(small.arm_plan("kill:7"));
  EXPECT_FALSE(small.dead(0));
  FaultInjector bad(1);
  EXPECT_FALSE(bad.arm_plan("integrity:0:3;bogus:0"));
  EXPECT_EQ(bad.on_call(0).kind, FaultKind::kIntegrity);
}

TEST(FaultInjector, EnvSeedParsesDecimalAndHex) {
  ASSERT_EQ(setenv("GUARDNN_FAULT_SEED", "0x2a", 1), 0);
  EXPECT_EQ(FaultInjector::env_seed(7), 42u);
  ASSERT_EQ(setenv("GUARDNN_FAULT_SEED", "1234", 1), 0);
  EXPECT_EQ(FaultInjector::env_seed(7), 1234u);
  ASSERT_EQ(setenv("GUARDNN_FAULT_SEED", "nonsense", 1), 0);
  EXPECT_EQ(FaultInjector::env_seed(7), 7u);
  ASSERT_EQ(unsetenv("GUARDNN_FAULT_SEED"), 0);
  EXPECT_EQ(FaultInjector::env_seed(7), 7u);
}

TEST(FaultInjector, ServerArmsPlanFromEnvironment) {
  // The env knob is the deep-fuzz/chaos hook: a server constructed with
  // GUARDNN_FAULT_PLAN set starts with the plan armed — no code changes.
  ASSERT_EQ(setenv("GUARDNN_FAULT_PLAN", "kill:0", 1), 0);
  Env env;
  ServerConfig config;
  config.num_devices = 2;
  config.num_workers = 1;
  InferenceServer server = env.make(config);
  ASSERT_EQ(unsetenv("GUARDNN_FAULT_PLAN"), 0);
  EXPECT_TRUE(server.faults().dead(0));
  EXPECT_TRUE(eventually(
      [&] { return server.device_health(0) == DeviceHealth::kDead; }));
  // The fleet routes around it: connect lands on the surviving device.
  TenantClient client;
  ASSERT_TRUE(client.connect(server, env.ca.public_key(), 9100));
  EXPECT_EQ(client.device_index, 1u);
}

// --- Transient faults / health state machine ---------------------------------

TEST(DeviceHealth, TransientBurstBelowThresholdRetriesSameRecordToSuccess) {
  Env env;
  ServerConfig config;
  config.num_devices = 1;
  config.num_workers = 1;
  config.degrade_after = 2;
  config.quarantine_after = 6;
  config.transient_retries = 3;
  config.retry_backoff_ms = 0.1;
  InferenceServer server = env.make(config);

  const FuncNetwork net = small_cnn(9200);
  TenantClient client;
  ASSERT_TRUE(client.connect(server, env.ca.public_key(), 9201));
  ASSERT_TRUE(client.load(server, net));

  // Two injected transient failures, three retries budgeted: the worker
  // retries the *same* sealed record and the request completes correctly —
  // the channel sequence survives because the record was never consumed.
  server.faults().script_integrity_burst(0, 2);
  const functional::Tensor input = random_input(net, 9210);
  const InferenceResult result =
      server.submit(client.tenant, client.user->seal(tensor_bytes(input)));
  ASSERT_EQ(result.outcome, RequestOutcome::kOk) << outcome_name(result.outcome);
  const auto output = client.user->open_output(result.sealed_output);
  ASSERT_TRUE(output.has_value());
  EXPECT_EQ(*output, host::reference_run(net, input));

  const ServerStats stats = server.stats();
  EXPECT_GE(stats.retries, 2u);
  EXPECT_EQ(stats.failovers, 0u);
  EXPECT_EQ(stats.quarantines, 0u);
  // Two consecutive failures crossed degrade_after, then the success healed
  // the device back to healthy.
  EXPECT_EQ(server.device_health(0), DeviceHealth::kHealthy);
}

TEST(DeviceHealth, ExhaustedRetryBudgetResolvesTimeoutAndDrainsFifo) {
  Env env;
  ServerConfig config;
  config.num_devices = 1;
  config.num_workers = 1;
  config.quarantine_after = 0;  // isolate the retry/timeout machinery
  config.transient_retries = 1;
  config.retry_backoff_ms = 0.1;
  InferenceServer server = env.make(config);

  const FuncNetwork net = small_cnn(9300);
  TenantClient client;
  ASSERT_TRUE(client.connect(server, env.ca.public_key(), 9301));
  ASSERT_TRUE(client.load(server, net));

  // More injected failures than the retry budget: the head request gives up
  // as kTimeout (record never consumed) and everything queued behind it
  // drains the same way — the FIFO stays gapless.
  server.faults().script_integrity_burst(0, 8);
  const functional::Tensor in1 = random_input(net, 9310);
  const functional::Tensor in2 = random_input(net, 9311);
  const crypto::SealedRecord rec1 = client.user->seal(tensor_bytes(in1));
  const crypto::SealedRecord rec2 = client.user->seal(tensor_bytes(in2));
  std::future<InferenceResult> f1 = server.submit_async(client.tenant, rec1);
  std::future<InferenceResult> f2 = server.submit_async(client.tenant, rec2);
  const InferenceResult r1 = f1.get();
  const InferenceResult r2 = f2.get();
  EXPECT_EQ(r1.outcome, RequestOutcome::kTimeout) << outcome_name(r1.outcome);
  EXPECT_EQ(r1.device_status, DeviceStatus::kIntegrityFailure);
  EXPECT_EQ(r2.outcome, RequestOutcome::kTimeout) << outcome_name(r2.outcome);
  EXPECT_GE(server.stats().timeouts, 2u);

  // Retrying the same records in order succeeds once the burst clears.
  server.faults().clear(0);
  const InferenceResult retry1 = server.submit(client.tenant, rec1);
  ASSERT_EQ(retry1.outcome, RequestOutcome::kOk) << outcome_name(retry1.outcome);
  const auto out1 = client.user->open_output(retry1.sealed_output);
  ASSERT_TRUE(out1.has_value());
  EXPECT_EQ(*out1, host::reference_run(net, in1));
  const InferenceResult retry2 = server.submit(client.tenant, rec2);
  ASSERT_EQ(retry2.outcome, RequestOutcome::kOk) << outcome_name(retry2.outcome);
  EXPECT_EQ(server.pending_requests(), 0u);
  EXPECT_EQ(server.pending_bytes(), 0u);
}

TEST(DeviceHealth, QuarantineRemovesFromRoutingRescalesBudgetAndReinstates) {
  Env env;
  ServerConfig config;
  config.num_devices = 2;
  config.num_workers = 2;
  config.max_pending_bytes = 1 << 20;  // explicit budget → exact rescale math
  config.degrade_after = 1;
  config.quarantine_after = 3;
  config.transient_retries = 0;  // every injected failure counts immediately
  InferenceServer server = env.make(config);
  ASSERT_EQ(server.admission_byte_budget(), std::size_t{1} << 20);
  ASSERT_EQ(server.routable_device_count(), 2u);

  const FuncNetwork net = small_cnn(9400);
  TenantClient client;
  ASSERT_TRUE(client.connect(server, env.ca.public_key(), 9401));
  ASSERT_TRUE(client.load(server, net));
  const std::size_t sick = client.device_index;

  // Three consumed integrity records (retry budget zero → each records one
  // failure) cross quarantine_after. A submit can also resolve kTimeout
  // *without* a device call: the worker that just aborted a batch resolves
  // its promise before draining the FIFO under the shard lock, so the next
  // serial submit may slip into the gapless kTimeout drain. Those count no
  // failure — loop on injected_count() until all three records truly fired.
  server.faults().script_integrity_burst(sick, 3);
  const u64 fired_base = server.faults().injected_count();
  for (int i = 0; server.faults().injected_count() - fired_base < 3; ++i) {
    ASSERT_LT(i, 20) << "integrity burst never fully consumed";
    const InferenceResult result = server.submit(
        client.tenant,
        client.user->seal(tensor_bytes(random_input(net, 9410 + i))));
    EXPECT_EQ(result.outcome, RequestOutcome::kTimeout)
        << outcome_name(result.outcome);
  }

  ASSERT_TRUE(eventually([&] {
    return server.device_health(sick) == DeviceHealth::kQuarantined &&
           server.routable_device_count() == 1;
  })) << "device never quarantined: health "
      << health_name(server.device_health(sick));
  EXPECT_EQ(server.stats().quarantines, 1u);
  // The admission byte budget rescaled to the surviving half of the fleet.
  EXPECT_TRUE(eventually([&] {
    return server.admission_byte_budget() == (std::size_t{1} << 20) / 2;
  })) << "budget " << server.admission_byte_budget();
  // The quarantined device's tenant was failed over.
  EXPECT_TRUE(eventually([&] { return server.failover_pending(client.tenant); }));
  EXPECT_GE(server.stats().failovers, 1u);
  // New tenants route around the quarantined device.
  TenantClient fresh;
  ASSERT_TRUE(fresh.connect(server, env.ca.public_key(), 9402));
  EXPECT_NE(fresh.device_index, sick);

  // Admin reinstates ("replaced the card"): reset, healthy, budget restored.
  ASSERT_EQ(server.reinstate_device(sick), DeviceStatus::kOk);
  EXPECT_EQ(server.device_health(sick), DeviceHealth::kHealthy);
  EXPECT_EQ(server.routable_device_count(), 2u);
  EXPECT_EQ(server.admission_byte_budget(), std::size_t{1} << 20);
}

// --- Deadlines ---------------------------------------------------------------

TEST(Deadlines, WedgedDeviceResolvesTimeoutNotAHungFuture) {
  Env env;
  ServerConfig config;
  config.num_devices = 1;
  config.num_workers = 1;
  config.default_deadline_ms = 25.0;
  InferenceServer server = env.make(config);

  const FuncNetwork net = small_cnn(9500);
  TenantClient client;
  ASSERT_TRUE(client.connect(server, env.ca.public_key(), 9501));
  ASSERT_TRUE(client.load(server, net));

  // Wedge the device far past the deadline: the worker sleeps only *to* the
  // deadline and resolves kTimeout — bounded wait, never a hung future.
  server.faults().script_latency(0, 10'000.0, 1);
  const functional::Tensor input = random_input(net, 9510);
  const crypto::SealedRecord record = client.user->seal(tensor_bytes(input));
  const auto before = std::chrono::steady_clock::now();
  std::future<InferenceResult> future = server.submit_async(client.tenant, record);
  ASSERT_EQ(future.wait_for(std::chrono::seconds(5)), std::future_status::ready)
      << "wedged device hung the future past the deadline";
  const double waited_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                before)
          .count();
  const InferenceResult result = future.get();
  EXPECT_EQ(result.outcome, RequestOutcome::kTimeout)
      << outcome_name(result.outcome);
  EXPECT_LT(waited_ms, 2000.0) << "kTimeout must arrive near the deadline, "
                                  "not after the full 10 s wedge";
  EXPECT_GE(server.stats().timeouts, 1u);

  // Deadline expiry never consumed the record: the same record retries
  // cleanly once the wedge is gone.
  const InferenceResult retried = server.submit(client.tenant, record);
  ASSERT_EQ(retried.outcome, RequestOutcome::kOk) << outcome_name(retried.outcome);
  const auto output = client.user->open_output(retried.sealed_output);
  ASSERT_TRUE(output.has_value());
  EXPECT_EQ(*output, host::reference_run(net, input));
  // Per-request override: negative disables the config default.
  const InferenceResult no_deadline = server.submit(
      client.tenant, client.user->seal(tensor_bytes(random_input(net, 9511))),
      /*attest=*/false, /*deadline_ms=*/-1.0);
  EXPECT_EQ(no_deadline.outcome, RequestOutcome::kOk);
}

// --- Fail-stop death and replica failover ------------------------------------

TEST(Failover, DeviceDeathResolvesEveryInFlightFutureNoHangs) {
  // Regression (the satellite fix): submit_async futures used to hang when
  // the device died mid-request — the worker kept retrying device-side
  // kNoSession forever and queued promises were never resolved. Death now
  // resolves the owned batch and the queued remainder with kDeviceFailover.
  Env env;
  ServerConfig config;
  config.num_devices = 1;
  config.num_workers = 1;
  config.emulate_device_latency = true;
  config.device_latency_scale = 50.0;  // ~6 ms emulated service per request
  InferenceServer server = env.make(config);

  const FuncNetwork net = small_cnn(9600);
  TenantClient client;
  ASSERT_TRUE(client.connect(server, env.ca.public_key(), 9601));
  ASSERT_TRUE(client.load(server, net));

  constexpr std::size_t kInFlight = 24;
  std::vector<std::future<InferenceResult>> futures;
  for (std::size_t r = 0; r < kInFlight; ++r)
    futures.push_back(server.submit_async(
        client.tenant,
        client.user->seal(tensor_bytes(random_input(net, 9610 + r)))));

  // Kill the device at its next data-plane call: the worker owns a batch.
  server.faults().kill_after(0, 1);

  std::size_t ok = 0, failed_over = 0;
  for (std::size_t r = 0; r < kInFlight; ++r) {
    ASSERT_EQ(futures[r].wait_for(std::chrono::seconds(10)),
              std::future_status::ready)
        << "future " << r << " hung after device death";
    const InferenceResult result = futures[r].get();
    if (result.outcome == RequestOutcome::kOk) {
      ++ok;
    } else {
      EXPECT_EQ(result.outcome, RequestOutcome::kDeviceFailover)
          << "request " << r << ": " << outcome_name(result.outcome);
      EXPECT_EQ(result.device_status, DeviceStatus::kUnavailable);
      ++failed_over;
    }
  }
  EXPECT_EQ(ok + failed_over, kInFlight);
  EXPECT_GE(failed_over, 1u);
  EXPECT_TRUE(eventually(
      [&] { return server.device_health(0) == DeviceHealth::kDead; }));
  EXPECT_TRUE(eventually([&] { return server.failover_pending(client.tenant); }));
  EXPECT_GE(server.stats().failovers, 1u);
  // Admission counters returned every charge.
  EXPECT_EQ(server.pending_requests(), 0u);
  EXPECT_EQ(server.pending_bytes(), 0u);
  // Submissions for the torn-down tenant answer the retryable outcome.
  EXPECT_EQ(server
                .submit(client.tenant,
                        client.user->seal(tensor_bytes(random_input(net, 9650))))
                .outcome,
            RequestOutcome::kDeviceFailover);
  // No routable device remains: connect reports kUnavailable, not a crash.
  RemoteUser probe(env.ca.public_key(), Bytes{0x11, 0x22});
  const auto refused = server.connect(probe.begin_session(), true);
  EXPECT_EQ(refused.tenant, 0u);
  EXPECT_EQ(refused.response.status, DeviceStatus::kUnavailable);
}

TEST(Failover, SealedReplicaTenantsResumeOnSurvivorWithModelRestored) {
  // The full failover walkthrough: the tenant seals its model to the store
  // and the fleet replicates it; when its device dies, reconnect() lands on
  // the survivor with the model already provisioned (model_restored) — the
  // weights never crossed the user link again — and inference resumes with
  // correct outputs under the fresh session.
  Env env;
  ServerConfig config;
  config.num_devices = 2;
  config.num_workers = 2;
  InferenceServer server = env.make(config);

  const FuncNetwork net = small_cnn(9700);
  TenantClient client;
  ASSERT_TRUE(client.connect(server, env.ca.public_key(), 9701));
  ASSERT_TRUE(client.load(server, net));
  const std::size_t doomed = client.device_index;
  const std::size_t survivor = 1 - doomed;

  // Seal + replicate while the device is alive: fail-stop death strands any
  // replica that only exists on the dead device (its store key dies with
  // it), so a survivable replica must exist beforehand.
  store::ContentId content{};
  ASSERT_EQ(server.seal_tenant_model(client.tenant,
                                     host::serialize_descriptor(net), content),
            DeviceStatus::kOk);
  ASSERT_EQ(server.replicate_model(content, survivor), DeviceStatus::kOk);

  server.faults().kill(doomed);
  ASSERT_TRUE(eventually([&] { return server.failover_pending(client.tenant); }))
      << "monitor never failed the tenant over";

  const auto resumed = client.reconnect(server);
  ASSERT_EQ(resumed.tenant, client.tenant);
  EXPECT_EQ(resumed.device_index, survivor);
  EXPECT_TRUE(resumed.model_restored)
      << "sealed replica existed on the survivor — reconnect must restore it";
  EXPECT_FALSE(server.failover_pending(client.tenant));

  // Inference resumes immediately — no re-upload, correct output.
  const functional::Tensor input = random_input(net, 9710);
  const InferenceResult result =
      server.submit(client.tenant, client.user->seal(tensor_bytes(input)));
  ASSERT_EQ(result.outcome, RequestOutcome::kOk) << outcome_name(result.outcome);
  const auto output = client.user->open_output(result.sealed_output);
  ASSERT_TRUE(output.has_value());
  EXPECT_EQ(*output, host::reference_run(net, input));

  // A second reconnect for the same id finds nothing pending.
  EXPECT_EQ(server.reconnect(client.tenant, client.user->begin_session(), true)
                .response.status,
            DeviceStatus::kNoSession);
}

TEST(Failover, TenantWithoutReplicaResumesSessionButMustReloadModel) {
  Env env;
  ServerConfig config;
  config.num_devices = 2;
  config.num_workers = 1;
  InferenceServer server = env.make(config);

  const FuncNetwork net = small_cnn(9800);
  TenantClient client;
  ASSERT_TRUE(client.connect(server, env.ca.public_key(), 9801));
  ASSERT_TRUE(client.load(server, net));
  const std::size_t doomed = client.device_index;

  server.faults().kill(doomed);
  ASSERT_TRUE(eventually([&] { return server.failover_pending(client.tenant); }));

  // No sealed replica: the model died with the device — that is the honest
  // fail-stop story. The session resumes, but submissions need a reload.
  const auto resumed = client.reconnect(server);
  ASSERT_EQ(resumed.tenant, client.tenant);
  EXPECT_FALSE(resumed.model_restored);
  // Probe with an unsealed dummy record: seal() would advance the channel
  // send sequence on a record the device never consumes, wedging the session.
  crypto::SealedRecord dummy;
  EXPECT_EQ(server.submit(client.tenant, dummy).outcome,
            RequestOutcome::kNoModel);
  ASSERT_TRUE(client.load(server, net));
  const functional::Tensor input = random_input(net, 9811);
  const InferenceResult result =
      server.submit(client.tenant, client.user->seal(tensor_bytes(input)));
  ASSERT_EQ(result.outcome, RequestOutcome::kOk) << outcome_name(result.outcome);
  const auto output = client.user->open_output(result.sealed_output);
  ASSERT_TRUE(output.has_value());
  EXPECT_EQ(*output, host::reference_run(net, input));
}

TEST(Failover, DroppedCompletionWoundsSessionDeviceSurvives) {
  // A lost completion is not a lost command: the device executed it and its
  // to_user sender sequence advanced on an output nobody can open. The
  // session is wounded — the tenant fails over — but the *device* is fine
  // and keeps serving other tenants.
  Env env;
  ServerConfig config;
  config.num_devices = 1;
  config.num_workers = 1;
  InferenceServer server = env.make(config);

  const FuncNetwork net = small_cnn(9900);
  TenantClient victim, bystander;
  ASSERT_TRUE(victim.connect(server, env.ca.public_key(), 9901));
  ASSERT_TRUE(bystander.connect(server, env.ca.public_key(), 9902));
  ASSERT_TRUE(victim.load(server, net));
  ASSERT_TRUE(bystander.load(server, net));

  server.faults().script_drop(0, 1);
  const InferenceResult dropped = server.submit(
      victim.tenant, victim.user->seal(tensor_bytes(random_input(net, 9910))));
  EXPECT_EQ(dropped.outcome, RequestOutcome::kDeviceFailover)
      << outcome_name(dropped.outcome);
  EXPECT_TRUE(eventually([&] { return server.failover_pending(victim.tenant); }));
  // The device never died — still routable, bystander unaffected.
  EXPECT_NE(server.device_health(0), DeviceHealth::kDead);
  EXPECT_EQ(server.routable_device_count(), 1u);
  const functional::Tensor input = random_input(net, 9911);
  const InferenceResult fine = server.submit(
      bystander.tenant, bystander.user->seal(tensor_bytes(input)));
  ASSERT_EQ(fine.outcome, RequestOutcome::kOk) << outcome_name(fine.outcome);
  const auto output = bystander.user->open_output(fine.sealed_output);
  ASSERT_TRUE(output.has_value());
  EXPECT_EQ(*output, host::reference_run(net, input));
}

// --- Chaos: the TSan acceptance workload -------------------------------------

TEST(Chaos, KillOneOfTwoDevicesMidStormEveryFutureResolves) {
  // The extended teardown invariant under chaos, run under ThreadSanitizer
  // in CI: 8 tenants across 2 devices submit from 8 threads while device 0
  // is killed mid-storm. 100% of in-flight futures must resolve (a dropped
  // promise throws broken_promise at .get(); a hang trips the wait_for
  // assert), admission counters must drain to zero, and tenants with sealed
  // replicas must be able to resume on the survivor.
  constexpr std::size_t kTenants = 8;
  constexpr std::size_t kPerTenant = 24;
  Env env;
  ServerConfig config;
  config.num_devices = 2;
  config.num_workers = 4;
  config.max_pending_per_tenant = 64;
  config.emulate_device_latency = true;
  config.device_latency_scale = 20.0;  // ~2.4 ms emulated service per request
  InferenceServer server = env.make(config);

  const FuncNetwork net = small_cnn(10000);
  std::array<TenantClient, kTenants> clients;
  store::ContentId content{};
  for (std::size_t i = 0; i < kTenants; ++i) {
    ASSERT_TRUE(clients[i].connect(server, env.ca.public_key(), 10010 + i));
    ASSERT_TRUE(clients[i].load(server, net));
  }
  // One sealed replica on each device so victims can resume on the survivor.
  ASSERT_EQ(server.seal_tenant_model(clients[0].tenant,
                                     host::serialize_descriptor(net), content),
            DeviceStatus::kOk);
  for (std::size_t d = 0; d < 2; ++d)
    ASSERT_EQ(server.replicate_model(content, d), DeviceStatus::kOk);

  std::atomic<std::size_t> resolved{0};
  std::atomic<std::size_t> hung{0};
  std::atomic<std::size_t> unexpected{0};
  auto tenant_main = [&](std::size_t index) {
    std::vector<std::future<InferenceResult>> futures;
    for (std::size_t r = 0; r < kPerTenant; ++r) {
      futures.push_back(server.submit_async(
          clients[index].tenant,
          clients[index].user->seal(
              tensor_bytes(random_input(net, 10100 + 32 * index + r)))));
      if (r % 4 == 3) std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    for (auto& future : futures) {
      if (future.wait_for(std::chrono::seconds(30)) !=
          std::future_status::ready) {
        ++hung;
        continue;
      }
      const InferenceResult result = future.get();
      ++resolved;
      switch (result.outcome) {
        case RequestOutcome::kOk:
        case RequestOutcome::kDeviceFailover:
        case RequestOutcome::kTimeout:
        case RequestOutcome::kQueueFull:
        case RequestOutcome::kBackpressure:
        case RequestOutcome::kNoTenant:
          break;
        case RequestOutcome::kDeviceError:
          // Narrow teardown window (see serving_overload_test): acceptable
          // as long as the promise resolves.
          if (result.device_status != DeviceStatus::kNoSession) ++unexpected;
          break;
        default:
          ++unexpected;
      }
    }
  };

  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < kTenants; ++i)
    threads.emplace_back(tenant_main, i);
  // Kill device 0 in the middle of the storm.
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  server.faults().kill(0);
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(hung.load(), 0u) << "futures hung after device death";
  EXPECT_EQ(resolved.load(), kTenants * kPerTenant)
      << "every submitted request must resolve its promise";
  EXPECT_EQ(unexpected.load(), 0u);
  EXPECT_TRUE(eventually([&] {
    return server.pending_requests() == 0 && server.pending_bytes() == 0;
  }));
  EXPECT_TRUE(eventually(
      [&] { return server.device_health(0) == DeviceHealth::kDead; }));
  EXPECT_EQ(server.routable_device_count(), 1u);

  // Victims of the dead device resume on the survivor (sealed replica →
  // model restored) and serve correct outputs again.
  std::size_t resumed_with_model = 0;
  for (std::size_t i = 0; i < kTenants; ++i) {
    if (!server.failover_pending(clients[i].tenant)) continue;
    const auto resumed = clients[i].reconnect(server);
    if (resumed.tenant == 0) continue;  // survivor's session table filled up
    EXPECT_EQ(resumed.device_index, 1u);
    if (!resumed.model_restored) continue;
    ++resumed_with_model;
    const functional::Tensor input = random_input(net, 10200 + i);
    const InferenceResult result = server.submit(
        clients[i].tenant, clients[i].user->seal(tensor_bytes(input)));
    ASSERT_EQ(result.outcome, RequestOutcome::kOk)
        << outcome_name(result.outcome);
    const auto output = clients[i].user->open_output(result.sealed_output);
    ASSERT_TRUE(output.has_value());
    EXPECT_EQ(*output, host::reference_run(net, input));
  }
  EXPECT_GE(resumed_with_model, 1u)
      << "no failed-over tenant resumed with its model restored";
}

}  // namespace
}  // namespace guardnn::serving
