// Multi-tenant serving-stack tests: N tenants on M worker threads running
// full attest → session → infer → verify round trips against a device fleet,
// plus adversarial cross-tenant isolation (sealed-record replay, SetReadCTR
// splicing, replay across CloseSession/re-InitSession) and server API error
// paths. This suite is also the ThreadSanitizer target (GUARDNN_SANITIZE=TSAN).
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "host/model_codec.h"
#include "serving/inference_server.h"

// Sanitizers slow the real EC math inside replicate_model ~10x while emulated
// device sleeps stay wall-clock; timing-calibrated tests widen their busy
// windows under any sanitizer.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define GUARDNN_TEST_UNDER_SANITIZER 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define GUARDNN_TEST_UNDER_SANITIZER 1
#endif
#endif
#ifndef GUARDNN_TEST_UNDER_SANITIZER
#define GUARDNN_TEST_UNDER_SANITIZER 0
#endif

namespace guardnn::serving {
namespace {

using accel::DeviceStatus;
using accel::ForwardOp;
using host::FuncLayer;
using host::FuncNetwork;
using host::RemoteUser;

Bytes random_weights(std::size_t n, u64 seed) {
  Xoshiro256 rng(seed);
  Bytes out(n);
  for (auto& b : out)
    b = static_cast<u8>(static_cast<i8>(static_cast<int>(rng.next_below(256)) - 128));
  return out;
}

/// Small conv -> relu -> maxpool -> fc network (same family as host_test's
/// single-tenant golden).
FuncNetwork small_cnn(u64 seed) {
  FuncNetwork net;
  net.in_c = 3;
  net.in_h = 8;
  net.in_w = 8;
  net.layers.push_back(FuncLayer{ForwardOp::Kind::kConv, 4, 3, 1, 1, 4,
                                 random_weights(4 * 3 * 3 * 3, seed)});
  net.layers.push_back(FuncLayer{ForwardOp::Kind::kRelu, 0, 0, 1, 0, 0, {}});
  net.layers.push_back(FuncLayer{ForwardOp::Kind::kMaxPool, 0, 2, 2, 0, 0, {}});
  net.layers.push_back(FuncLayer{ForwardOp::Kind::kFc, 10, 0, 1, 0, 5,
                                 random_weights(10 * 4 * 4 * 4, seed + 1)});
  return net;
}

functional::Tensor random_input(const FuncNetwork& net, u64 seed) {
  functional::Tensor input(net.in_c, net.in_h, net.in_w, net.bits);
  Xoshiro256 rng(seed);
  for (auto& v : input.data())
    v = static_cast<i8>(static_cast<int>(rng.next_below(256)) - 128);
  return input;
}

Bytes tensor_bytes(const functional::Tensor& t) {
  return Bytes(t.bytes().begin(), t.bytes().end());
}

/// The user-side mirror of a serving session's attestation chain: one
/// SetWeight, then per request SetInput + the plan's Forwards + ExportOutput.
void mirror_serving_attestation(RemoteUser& user, const host::ExecutionPlan& plan,
                                std::size_t n_requests) {
  u8 addr_bytes[8];
  store_be64(addr_bytes, plan.weight_base);
  user.expect_instruction(accel::Opcode::kSetWeight, BytesView(addr_bytes, 8));
  for (std::size_t r = 0; r < n_requests; ++r) {
    store_be64(addr_bytes, plan.input_addr);
    user.expect_instruction(accel::Opcode::kSetInput, BytesView(addr_bytes, 8));
    for (const auto& op : plan.ops)
      user.expect_instruction(accel::Opcode::kForward, op.serialize());
    u8 operand[16];
    store_be64(operand, plan.output_addr);
    store_be64(operand + 8, plan.output_bytes);
    user.expect_instruction(accel::Opcode::kExportOutput, BytesView(operand, 16));
  }
}

/// One tenant's client side: the remote user plus the server handles.
struct TenantClient {
  std::unique_ptr<RemoteUser> user;
  TenantId tenant = 0;
  std::size_t device_index = 0;
  ModelHandle model;

  /// attest_device + InitSession handshake against the server.
  bool connect(InferenceServer& server, const crypto::AffinePoint& ca_public,
               u64 seed, bool integrity) {
    user = std::make_unique<RemoteUser>(ca_public,
                                        Bytes{static_cast<u8>(seed),
                                              static_cast<u8>(seed >> 8), 0x77});
    const crypto::AffinePoint share = user->begin_session();
    const auto connected = server.connect(share, integrity);
    if (connected.tenant == 0) return false;
    tenant = connected.tenant;
    device_index = connected.device_index;
    if (!user->attest_device(server.get_pk(device_index))) return false;
    return user->complete_session(connected.response);
  }

  bool load(InferenceServer& server, const FuncNetwork& net) {
    model = server.register_model(net);
    return model.valid() &&
           server.load_model(tenant, model, user->seal(model.plan->weight_blob)) ==
               DeviceStatus::kOk;
  }
};

struct ServerFixture {
  crypto::HmacDrbg ca_drbg{Bytes{0x91}};
  crypto::ManufacturerCa ca{ca_drbg};

  InferenceServer make(std::size_t devices, std::size_t workers,
                       std::size_t per_tenant_quota = 4096) {
    ServerConfig config;
    config.num_devices = devices;
    config.num_workers = workers;
    config.max_pending_per_tenant = per_tenant_quota;
    return InferenceServer(ca, config, Bytes{0x92, 0x93});
  }
};

TEST(Serving, SingleTenantMatchesReferenceWithAttestation) {
  ServerFixture fx;
  InferenceServer server = fx.make(1, 1);
  const FuncNetwork net = small_cnn(301);
  const functional::Tensor input = random_input(net, 302);

  TenantClient client;
  ASSERT_TRUE(client.connect(server, fx.ca.public_key(), 1, /*integrity=*/true));
  ASSERT_TRUE(client.load(server, net));

  const Bytes input_bytes = tensor_bytes(input);
  InferenceResult result =
      server.submit(client.tenant, client.user->seal(input_bytes), /*attest=*/true);
  ASSERT_EQ(result.outcome, RequestOutcome::kOk)
      << outcome_name(result.outcome) << " device_status="
      << static_cast<int>(result.device_status);
  const auto output = client.user->open_output(result.sealed_output);
  ASSERT_TRUE(output.has_value());
  EXPECT_EQ(*output, host::reference_run(net, input));

  // Full remote-attestation verification through the serving path.
  ASSERT_TRUE(result.attested);
  client.user->expect_weights(client.model.plan->weight_blob);
  client.user->expect_input(input_bytes);
  client.user->expect_output(*output);
  mirror_serving_attestation(*client.user, *client.model.plan, 1);
  EXPECT_TRUE(client.user->verify_attestation(result.report));
}

TEST(Serving, EightTenantsFourWorkersConcurrentRoundTrips) {
  // The acceptance workload: 8 tenants on 8 client threads against a 4-device
  // fleet drained by 4 workers. Every tenant runs the full protocol and
  // checks outputs against the single-tenant golden (reference_run) plus the
  // attestation report for its whole session.
  constexpr std::size_t kTenants = 8;
  constexpr std::size_t kRequests = 4;
  ServerFixture fx;
  InferenceServer server = fx.make(4, 4);

  std::mutex failures_mu;
  std::vector<std::string> failures;
  auto fail = [&](std::string message) {
    std::lock_guard<std::mutex> lock(failures_mu);
    failures.push_back(std::move(message));
  };

  auto tenant_main = [&](std::size_t index) {
    // Even tenants share one architecture+weights (exercising the plan
    // cache); odd tenants each bring their own model.
    const u64 net_seed = index % 2 == 0 ? 400 : 500 + index;
    const FuncNetwork net = small_cnn(net_seed);
    TenantClient client;
    if (!client.connect(server, fx.ca.public_key(), 40 + index, true))
      return fail("tenant " + std::to_string(index) + ": connect failed");
    if (!client.load(server, net))
      return fail("tenant " + std::to_string(index) + ": load_model failed");

    // Pipelined async submissions, FIFO per tenant.
    std::vector<functional::Tensor> inputs;
    std::vector<std::future<InferenceResult>> futures;
    for (std::size_t r = 0; r < kRequests; ++r) {
      inputs.push_back(random_input(net, 1000 * index + r));
      const bool last = r + 1 == kRequests;
      futures.push_back(server.submit_async(
          client.tenant, client.user->seal(tensor_bytes(inputs.back())),
          /*attest=*/last));
    }

    InferenceResult last_result;
    Bytes last_output;
    for (std::size_t r = 0; r < kRequests; ++r) {
      InferenceResult result = futures[r].get();
      if (result.outcome != RequestOutcome::kOk)
        return fail("tenant " + std::to_string(index) + " request " +
                    std::to_string(r) + ": " + outcome_name(result.outcome));
      const auto output = client.user->open_output(result.sealed_output);
      if (!output)
        return fail("tenant " + std::to_string(index) + " request " +
                    std::to_string(r) + ": output record did not open");
      if (*output != host::reference_run(net, inputs[r]))
        return fail("tenant " + std::to_string(index) + " request " +
                    std::to_string(r) + ": output mismatch vs golden");
      if (r + 1 == kRequests) {
        last_result = std::move(result);
        last_output = *output;
      }
    }

    // Attestation over the whole session (1 SetWeight + kRequests inferences).
    if (!last_result.attested)
      return fail("tenant " + std::to_string(index) + ": report missing");
    client.user->expect_weights(client.model.plan->weight_blob);
    client.user->expect_input(tensor_bytes(inputs.back()));
    client.user->expect_output(last_output);
    mirror_serving_attestation(*client.user, *client.model.plan, kRequests);
    if (!client.user->verify_attestation(last_result.report))
      return fail("tenant " + std::to_string(index) + ": attestation failed");

    if (server.disconnect(client.tenant) != DeviceStatus::kOk)
      return fail("tenant " + std::to_string(index) + ": disconnect failed");
  };

  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < kTenants; ++i)
    threads.emplace_back(tenant_main, i);
  for (auto& thread : threads) thread.join();

  for (const std::string& message : failures) ADD_FAILURE() << message;
  EXPECT_TRUE(failures.empty());
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.requests, kTenants * kRequests);
}

TEST(Serving, PlanCacheSharesCompiledPlansByModelHash) {
  ServerFixture fx;
  InferenceServer server = fx.make(1, 1);
  const FuncNetwork net = small_cnn(600);
  const ModelHandle first = server.register_model(net);
  const ModelHandle second = server.register_model(net);
  ASSERT_TRUE(first.valid());
  EXPECT_EQ(first.plan.get(), second.plan.get())
      << "same model hash must reuse the cached ExecutionPlan";
  EXPECT_EQ(first.hash, second.hash);

  FuncNetwork other = small_cnn(601);
  const ModelHandle third = server.register_model(other);
  EXPECT_NE(first.plan.get(), third.plan.get());
  EXPECT_NE(first.hash, third.hash);
}

TEST(Serving, ErrorPathsAreCoarse) {
  ServerFixture fx;
  InferenceServer server = fx.make(1, 1);
  const FuncNetwork net = small_cnn(610);

  // Unknown tenant.
  crypto::SealedRecord dummy;
  EXPECT_EQ(server.submit(999, dummy).outcome, RequestOutcome::kNoTenant);

  // Connected but no model.
  TenantClient client;
  ASSERT_TRUE(client.connect(server, fx.ca.public_key(), 61, false));
  EXPECT_EQ(server.submit(client.tenant, dummy).outcome, RequestOutcome::kNoModel);

  // Forged input record: coarse device error, session stays up.
  ASSERT_TRUE(client.load(server, net));
  crypto::SealedRecord forged;
  forged.ciphertext.resize(256, 0xab);
  InferenceResult result = server.submit(client.tenant, forged);
  EXPECT_EQ(result.outcome, RequestOutcome::kDeviceError);
  EXPECT_EQ(result.device_status, DeviceStatus::kBadRecord);

  // Disconnect: later submissions and double disconnects fail coarse.
  EXPECT_EQ(server.disconnect(client.tenant), DeviceStatus::kOk);
  EXPECT_EQ(server.submit(client.tenant, dummy).outcome, RequestOutcome::kNoTenant);
  EXPECT_EQ(server.disconnect(client.tenant), DeviceStatus::kNoSession);
}

TEST(Serving, AdmissionControlRejectsWhenQueueFull) {
  ServerFixture fx;
  // A zero per-tenant quota: every request is rejected before it queues —
  // the deterministic version of a tenant that overran its own budget.
  InferenceServer server = fx.make(1, 1, /*per_tenant_quota=*/0);
  TenantClient client;
  ASSERT_TRUE(client.connect(server, fx.ca.public_key(), 62, false));
  ASSERT_TRUE(client.load(server, small_cnn(620)));
  const InferenceResult result =
      server.submit(client.tenant, client.user->seal(Bytes(512, 1)));
  EXPECT_EQ(result.outcome, RequestOutcome::kQueueFull);
  EXPECT_GE(server.stats().rejected, 1u);
}

// --- Cross-tenant isolation: the malicious host drives the devices directly,
// splicing one tenant's protocol messages into another tenant's session. ----

struct TwoTenantFixture {
  ServerFixture env;
  InferenceServer server = env.make(1, 2);  // same device: worst case
  FuncNetwork net_a = small_cnn(700);
  FuncNetwork net_b = small_cnn(701);
  TenantClient a, b;

  bool setup() {
    if (!a.connect(server, env.ca.public_key(), 71, true)) return false;
    if (!b.connect(server, env.ca.public_key(), 72, true)) return false;
    if (a.device_index != b.device_index) return false;  // want co-residency
    if (!a.load(server, net_a)) return false;
    if (!b.load(server, net_b)) return false;
    return true;
  }

  /// Scans both tenants' DRAM partitions (and the MAC region) for a window
  /// of `secret`.
  bool leaked(BytesView secret) {
    accel::UntrustedMemory& memory = server.device_memory(0);
    const accel::SessionId sid_a = server.tenant_session(a.tenant).second;
    const accel::SessionId sid_b = server.tenant_session(b.tenant).second;
    const u64 bases[] = {accel::GuardNnDevice::partition_base(sid_a),
                         accel::GuardNnDevice::partition_base(sid_b),
                         accel::MemoryProtectionUnit::kMacRegionBase};
    const std::size_t window = std::min<std::size_t>(secret.size(), 24);
    for (u64 base : bases) {
      const Bytes region = memory.read(base, 1 << 16);
      if (std::search(region.begin(), region.end(), secret.begin(),
                      secret.begin() + window) != region.end())
        return true;
    }
    return false;
  }
};

TEST(CrossTenantIsolation, SealedRecordReplayIntoOtherSessionRejected) {
  TwoTenantFixture fx;
  ASSERT_TRUE(fx.setup());
  accel::GuardNnDevice& device = fx.server.device(0);
  const accel::SessionId sid_b = fx.server.tenant_session(fx.b.tenant).second;

  // The host replays records sealed by tenant A's user — weights and input —
  // into tenant B's session. B's channel keys differ, so the MAC check fails
  // and the device answers kBadRecord; nothing is written.
  const crypto::SealedRecord weights_for_a =
      fx.a.user->seal(fx.a.model.plan->weight_blob);
  EXPECT_EQ(device.set_weight(sid_b, weights_for_a, 0), DeviceStatus::kBadRecord);
  const Bytes secret_input(512, 0x5d);
  const crypto::SealedRecord input_for_a = fx.a.user->seal(secret_input);
  EXPECT_EQ(device.set_input(sid_b, input_for_a, 0), DeviceStatus::kBadRecord);

  // And nothing of A's plaintext ever reaches DRAM.
  EXPECT_FALSE(fx.leaked(BytesView(fx.a.model.plan->weight_blob.data(), 24)));
  EXPECT_FALSE(fx.leaked(secret_input));

  // B is unharmed: a genuine inference still round-trips.
  const functional::Tensor input = random_input(fx.net_b, 710);
  InferenceResult result =
      fx.server.submit(fx.b.tenant, fx.b.user->seal(tensor_bytes(input)));
  ASSERT_EQ(result.outcome, RequestOutcome::kOk);
  const auto output = fx.b.user->open_output(result.sealed_output);
  ASSERT_TRUE(output.has_value());
  EXPECT_EQ(*output, host::reference_run(fx.net_b, input));
}

TEST(CrossTenantIsolation, SetReadCtrSplicingNeverLeaksOnlyGarbles) {
  TwoTenantFixture fx;
  ASSERT_TRUE(fx.setup());
  accel::GuardNnDevice& device = fx.server.device(0);
  const accel::SessionId sid_b = fx.server.tenant_session(fx.b.tenant).second;

  // Run a real inference for A so its partition holds fresh feature data.
  const functional::Tensor input_a = random_input(fx.net_a, 711);
  InferenceResult result_a =
      fx.server.submit(fx.a.tenant, fx.a.user->seal(tensor_bytes(input_a)));
  ASSERT_EQ(result_a.outcome, RequestOutcome::kOk);

  // The host replays A's read-counter values into B's session, then exports
  // from the same addresses in B. B decrypts with *B's* K_MEnc at *B's*
  // physical partition: with integrity on the stale/never-written region
  // fails the MAC; either way A's plaintext cannot appear.
  ASSERT_EQ(device.set_read_ctr(sid_b, fx.a.model.plan->output_addr, 4096,
                                1ULL << 32),
            DeviceStatus::kOk)
      << "SetReadCTR is untrusted input and always accepted";
  crypto::SealedRecord exported;
  const DeviceStatus status = device.export_output(
      sid_b, fx.a.model.plan->output_addr, fx.a.model.plan->output_bytes,
      exported);
  EXPECT_NE(status, DeviceStatus::kOk) << "never-written region must not export";
  EXPECT_FALSE(fx.leaked(tensor_bytes(input_a)));
  EXPECT_FALSE(fx.leaked(BytesView(fx.a.model.plan->weight_blob.data(), 24)));
}

TEST(CrossTenantIsolation, ReplayAcrossCloseAndReinitRejected) {
  TwoTenantFixture fx;
  ASSERT_TRUE(fx.setup());
  accel::GuardNnDevice& device = fx.server.device(0);
  const accel::SessionId old_sid = fx.server.tenant_session(fx.b.tenant).second;

  // Capture a record sealed for B's *current* session, then close it.
  const crypto::SealedRecord old_record = fx.b.user->seal(Bytes(512, 0x3e));
  ASSERT_EQ(fx.server.disconnect(fx.b.tenant), DeviceStatus::kOk);

  // Replay into the dead session id: kNoSession (generation check).
  EXPECT_EQ(device.set_weight(old_sid, old_record, 0), DeviceStatus::kNoSession);

  // Re-connect B (the slot may be reused); replaying the old-session record
  // into the *new* session fails the fresh channel keys.
  TenantClient b2;
  ASSERT_TRUE(b2.connect(fx.server, fx.env.ca.public_key(), 73, true));
  const accel::SessionId new_sid = fx.server.tenant_session(b2.tenant).second;
  ASSERT_NE(new_sid, old_sid);
  EXPECT_EQ(device.set_weight(new_sid, old_record, 0), DeviceStatus::kBadRecord);

  // The stale id still answers kNoSession even though its slot may be live
  // again under a new generation.
  EXPECT_EQ(device.set_weight(old_sid, old_record, 0), DeviceStatus::kNoSession);
}

TEST(SessionEviction, LruIdleTenantEvictedToAdmitNewcomer) {
  // Fill one device's 16-slot session table, then connect a 17th tenant:
  // the least-recently-active idle session is evicted (closed + zeroized
  // device-side) and the newcomer is admitted in its place.
  ServerFixture fx;
  InferenceServer server = fx.make(1, 1);
  const FuncNetwork net = small_cnn(601);
  const functional::Tensor input = random_input(net, 602);

  std::vector<TenantClient> clients(accel::GuardNnDevice::kMaxSessions);
  for (std::size_t i = 0; i < clients.size(); ++i) {
    ASSERT_TRUE(clients[i].connect(server, fx.ca.public_key(), 610 + i, true));
    ASSERT_TRUE(clients[i].load(server, net));
  }
  // Touch every tenant but #0, so #0 is unambiguously the LRU victim.
  const Bytes input_bytes = tensor_bytes(input);
  for (std::size_t i = 1; i < clients.size(); ++i) {
    ASSERT_EQ(server.submit(clients[i].tenant,
                            clients[i].user->seal(input_bytes)).outcome,
              RequestOutcome::kOk);
  }

  TenantClient newcomer;
  ASSERT_TRUE(newcomer.connect(server, fx.ca.public_key(), 699, true))
      << "a full table must evict the idle LRU tenant, not refuse";
  EXPECT_EQ(server.stats().evicted, 1u);
  ASSERT_TRUE(newcomer.load(server, net));
  InferenceResult result =
      server.submit(newcomer.tenant, newcomer.user->seal(input_bytes));
  ASSERT_EQ(result.outcome, RequestOutcome::kOk);
  const auto output = newcomer.user->open_output(result.sealed_output);
  ASSERT_TRUE(output.has_value());
  EXPECT_EQ(*output, host::reference_run(net, input));

  // The evicted tenant is gone: its handle answers kNoTenant, its session
  // id is dead on the device.
  EXPECT_EQ(server.submit(clients[0].tenant,
                          clients[0].user->seal(input_bytes)).outcome,
            RequestOutcome::kNoTenant);
  EXPECT_FALSE(server.device(0).session_active(clients[0].user->session_id()));

  // Everyone else still works.
  EXPECT_EQ(server.submit(clients[1].tenant,
                          clients[1].user->seal(input_bytes)).outcome,
            RequestOutcome::kOk);
}

TEST(SessionEviction, DisabledEvictionStillRefusesWhenFull) {
  ServerFixture fx;
  ServerConfig config;
  config.num_devices = 1;
  config.num_workers = 1;
  config.evict_idle_sessions = false;
  InferenceServer server(fx.ca, config, Bytes{0x92, 0x93});

  std::vector<TenantClient> clients(accel::GuardNnDevice::kMaxSessions);
  for (std::size_t i = 0; i < clients.size(); ++i)
    ASSERT_TRUE(clients[i].connect(server, fx.ca.public_key(), 710 + i, true));

  TenantClient refused;
  refused.user = std::make_unique<RemoteUser>(fx.ca.public_key(), Bytes{0x7f});
  const auto connected = server.connect(refused.user->begin_session(), true);
  EXPECT_EQ(connected.tenant, 0u);
  EXPECT_EQ(connected.response.status, DeviceStatus::kNoResources);
  EXPECT_EQ(server.stats().evicted, 0u);
}

TEST(FleetProvisioning, DisjointDevicePairsReplicateConcurrently) {
  // Regression: the provisioning exclusion used to be one server-global
  // mutex, so a replication stalled behind a busy target device blocked
  // every other replication in the fleet — even between a disjoint pair of
  // devices. The exclusion is now scoped to the two devices involved
  // (source + target each hold one pending provisioning ephemeral).
  //
  // Setup: 4 devices. Device 1 is pinned busy by an in-flight batch whose
  // emulated device time is ~2.4 s. Thread A replicates content held on
  // device 0 to device 1 (pair {0,1}) and blocks on device 1's busy lock.
  // Thread B replicates content held on device 2 to device 3 (pair {2,3}):
  // it must complete while A is still blocked.
  ServerFixture fx;
  ServerConfig config;
  config.num_devices = 4;
  config.num_workers = 1;
  config.emulate_device_latency = true;
  // One small_cnn request models ~0.12 ms of device time; scaled, the batch
  // holds device 1's busy lock for roughly 2.4 s of wall time (14.4 s under
  // sanitizers, whose slowed re-wrap would otherwise outlast the window).
  config.device_latency_scale = GUARDNN_TEST_UNDER_SANITIZER ? 120000.0
                                                             : 20000.0;
  InferenceServer server(fx.ca, config, Bytes{0x92, 0x93});

  const FuncNetwork net_a = small_cnn(900);
  const FuncNetwork net_b = small_cnn(901);

  // Least-loaded placement spreads four tenants across the four devices;
  // index them by the device they landed on.
  std::array<std::size_t, 4> by_device{};
  std::array<TenantClient, 4> clients;
  for (std::size_t i = 0; i < clients.size(); ++i) {
    ASSERT_TRUE(clients[i].connect(server, fx.ca.public_key(), 910 + i, true));
    ASSERT_LT(clients[i].device_index, 4u);
    by_device[clients[i].device_index] = i;
  }
  TenantClient& on_dev0 = clients[by_device[0]];
  TenantClient& on_dev1 = clients[by_device[1]];
  TenantClient& on_dev2 = clients[by_device[2]];
  ASSERT_TRUE(on_dev0.load(server, net_a));
  ASSERT_TRUE(on_dev1.load(server, net_a));
  ASSERT_TRUE(on_dev2.load(server, net_b));

  store::ContentId content_a{}, content_b{};
  ASSERT_EQ(server.seal_tenant_model(on_dev0.tenant,
                                     host::serialize_descriptor(net_a),
                                     content_a),
            DeviceStatus::kOk);
  ASSERT_EQ(server.seal_tenant_model(on_dev2.tenant,
                                     host::serialize_descriptor(net_b),
                                     content_b),
            DeviceStatus::kOk);

  // Pin device 1: one queued request, then wait for the worker to own it
  // (pending drops to zero at pickup; the emulated sleep runs under busy).
  const functional::Tensor input = random_input(net_a, 920);
  std::future<InferenceResult> busy_batch = server.submit_async(
      on_dev1.tenant, on_dev1.user->seal(tensor_bytes(input)));
  while (server.pending_requests() != 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));

  std::atomic<bool> a_done{false};
  DeviceStatus status_a = DeviceStatus::kOk;
  std::thread replicate_a([&] {
    status_a = server.replicate_model(content_a, /*target_device=*/1);
    a_done.store(true);
  });
  // Let A reach the provisioning exclusion before B starts, so the
  // pre-sharding global-mutex regression would make B queue behind it.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  const DeviceStatus status_b = server.replicate_model(content_b, 3);
  // Snapshot the overlap evidence first: a fatal assert before the join
  // would destroy a joinable thread (std::terminate), so all checks run
  // after A drains.
  const bool a_done_when_b_finished = a_done.load();
  const bool dev1_busy_when_b_finished =
      busy_batch.wait_for(std::chrono::seconds(0)) !=
      std::future_status::ready;
  replicate_a.join();

  EXPECT_EQ(status_b, DeviceStatus::kOk);
  EXPECT_FALSE(a_done_when_b_finished)
      << "replication {2,3} waited for the stalled replication {0,1}: the "
         "provisioning exclusion is not per-device-pair";
  // Guard against mis-calibration: device 1 must still be inside the
  // emulated batch when B finishes, or the overlap proves nothing.
  EXPECT_TRUE(dev1_busy_when_b_finished)
      << "device 1 went idle too early; raise device_latency_scale";
  EXPECT_EQ(status_a, DeviceStatus::kOk);
  EXPECT_EQ(server.stats().replications, 2u);
  EXPECT_EQ(busy_batch.get().outcome, RequestOutcome::kOk);
}

TEST(PlanCacheGeneration, DeviceResetInvalidatesCachedPlans) {
  // The plan cache keys on (model hash, device generation): after a device
  // reset, a re-provisioned model must get a freshly compiled plan, never
  // the pre-reset pointer.
  ServerFixture fx;
  InferenceServer server = fx.make(1, 1);
  const FuncNetwork net = small_cnn(801);
  const functional::Tensor input = random_input(net, 802);

  const ModelHandle before_a = server.register_model(net);
  const ModelHandle before_b = server.register_model(net);
  EXPECT_EQ(before_a.plan.get(), before_b.plan.get());  // same generation: shared
  EXPECT_EQ(before_a.generation, server.device(0).device_generation());

  TenantClient old_tenant;
  ASSERT_TRUE(old_tenant.connect(server, fx.ca.public_key(), 810, true));
  ASSERT_TRUE(old_tenant.load(server, net));

  ASSERT_EQ(server.reset_device(0), DeviceStatus::kOk);
  EXPECT_EQ(server.device(0).device_generation(), before_a.generation + 1);
  EXPECT_EQ(server.device(0).session_count(), 0u);  // sessions wiped
  // The pre-reset tenant is disconnected, coarse errors onward.
  const Bytes input_bytes = tensor_bytes(input);
  EXPECT_EQ(server.submit(old_tenant.tenant,
                          old_tenant.user->seal(input_bytes)).outcome,
            RequestOutcome::kNoTenant);

  const ModelHandle after = server.register_model(net);
  EXPECT_EQ(after.hash, before_a.hash);  // same model...
  EXPECT_NE(after.plan.get(), before_a.plan.get())
      << "a post-reset registration must not reuse the stale compiled plan";

  // A handle from *before* the reset still loads — the server transparently
  // recompiles for the device's current generation — and serves correctly.
  TenantClient fresh;
  ASSERT_TRUE(fresh.connect(server, fx.ca.public_key(), 811, true));
  ASSERT_TRUE(fresh.load(server, net));
  InferenceResult result =
      server.submit(fresh.tenant, fresh.user->seal(input_bytes));
  ASSERT_EQ(result.outcome, RequestOutcome::kOk);
  const auto output = fresh.user->open_output(result.sealed_output);
  ASSERT_TRUE(output.has_value());
  EXPECT_EQ(*output, host::reference_run(net, input));
}

}  // namespace
}  // namespace guardnn::serving
