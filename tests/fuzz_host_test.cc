// Adversarial instruction-sequence fuzzing.
//
// The paper's central TCB claim (Section II-B): "GuardNN can ensure
// confidentiality without trusting a host processor by designing its ISA so
// that sensitive information is always encrypted no matter which instruction
// is executed." These tests drive the device with *randomized* instruction
// streams — arbitrary opcodes, operands, addresses and read counters — and
// assert after every step that (a) the device never crashes, and (b) no
// window of the secret plaintext ever appears in untrusted memory.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>

#include "common/rng.h"
#include "host/scheduler.h"
#include "host/user_client.h"
#include "serving/fault.h"
#include "serving/inference_server.h"

namespace guardnn::host {
namespace {

/// Steps per fuzz seed. The default keeps the whole suite around a second so
/// it runs in tier-1 CI; GUARDNN_FUZZ_STEPS=<n> deepens a local soak run
/// without touching code (the seeds keep every run deterministic).
int fuzz_steps() {
  if (const char* env = std::getenv("GUARDNN_FUZZ_STEPS")) {
    const int parsed = std::atoi(env);
    if (parsed > 0) return parsed;
  }
  return 120;
}

using accel::DeviceStatus;
using accel::ForwardOp;

struct FuzzBench {
  accel::UntrustedMemory memory;
  crypto::HmacDrbg ca_drbg{Bytes{0x71}};
  crypto::ManufacturerCa ca{ca_drbg};
  accel::GuardNnDevice device{"fuzz-dev", ca, memory, Bytes{0x72}};
  RemoteUser user{ca.public_key(), Bytes{0x73}};

  Bytes secret_weights;
  Bytes secret_input;

  bool setup(bool integrity) {
    if (!user.attest_device(device.get_pk())) return false;
    if (!user.complete_session(device.init_session(user.begin_session(), integrity)))
      return false;
    Xoshiro256 rng(0x5ec2e7);
    secret_weights.resize(2048);
    secret_input.resize(512);
    rng.fill(secret_weights);
    rng.fill(secret_input);
    if (device.set_weight(user.seal(secret_weights), 0) != DeviceStatus::kOk)
      return false;
    if (device.set_input(user.seal(secret_input), 0x4000'0000ULL) !=
        DeviceStatus::kOk)
      return false;
    return true;
  }

  /// Scans plausible DRAM regions for any 24-byte window of either secret.
  bool secrets_leaked() const {
    const u64 scan_bases[] = {0x0ULL, 0x4000'0000ULL, 0x4800'0000ULL,
                              0x5000'0000ULL,
                              accel::MemoryProtectionUnit::kMacRegionBase};
    for (u64 base : scan_bases) {
      const Bytes region = memory.read(base, 1 << 16);
      for (const Bytes* secret : {&secret_weights, &secret_input}) {
        const auto begin = secret->begin();
        if (std::search(region.begin(), region.end(), begin, begin + 24) !=
            region.end())
          return true;
      }
    }
    return false;
  }
};

/// Generates a random (mostly malformed) ForwardOp.
ForwardOp random_op(Xoshiro256& rng) {
  ForwardOp op;
  op.kind = static_cast<ForwardOp::Kind>(rng.next_below(13));
  op.in_c = static_cast<int>(rng.next_below(20)) - 2;   // may be <= 0
  op.in_h = static_cast<int>(rng.next_below(20)) - 2;
  op.in_w = static_cast<int>(rng.next_below(20)) - 2;
  op.out_c = static_cast<int>(rng.next_below(20)) - 2;
  op.kernel = static_cast<int>(rng.next_below(8)) - 1;
  op.stride = static_cast<int>(rng.next_below(4));
  op.pad = static_cast<int>(rng.next_below(4));
  op.requant_shift = static_cast<int>(rng.next_below(9));
  op.bits = rng.next_below(3) == 0 ? 6 : (rng.next_below(2) ? 8 : 7);
  op.aux_c = static_cast<int>(rng.next_below(16)) - 2;
  op.aux_h = static_cast<int>(rng.next_below(16)) - 2;
  op.aux_w = static_cast<int>(rng.next_below(16)) - 2;
  const u64 addr_pool[] = {0x0ULL, 0x200ULL, 0x4000'0000ULL, 0x4800'0000ULL,
                           0x4880'0000ULL, 0xdead'0000ULL};
  op.input_addr = addr_pool[rng.next_below(6)];
  op.input2_addr = addr_pool[rng.next_below(6)];
  op.weight_addr = addr_pool[rng.next_below(6)];
  op.output_addr = addr_pool[rng.next_below(6)] + 0x1000;
  return op;
}

class InstructionFuzzTest : public ::testing::TestWithParam<u64> {};

TEST_P(InstructionFuzzTest, RandomSequencesNeverLeakPlaintext) {
  FuzzBench bench;
  // Confidentiality-only mode: every instruction *executes* (no fail-stop),
  // which is the worst case for leakage.
  ASSERT_TRUE(bench.setup(/*integrity=*/false));
  Xoshiro256 rng(GetParam());

  const int steps = fuzz_steps();
  for (int step = 0; step < steps; ++step) {
    switch (rng.next_below(5)) {
      case 0: {
        // Random (often nonsensical) forward/backward instruction.
        (void)bench.device.forward(random_op(rng));
        break;
      }
      case 1: {
        // Arbitrary read-counter manipulation.
        (void)bench.device.set_read_ctr(rng.next() % (1ULL << 36), rng.next_below(1 << 16),
                                        rng.next());
        break;
      }
      case 2: {
        // Export from an arbitrary address: output is sealed to the session
        // user; ciphertext in DRAM stays ciphertext.
        crypto::SealedRecord sealed;
        (void)bench.device.export_output((rng.next() % (1ULL << 34)) & ~511ULL,
                                         64 + rng.next_below(512), sealed);
        break;
      }
      case 3: {
        // Forged import records (random bytes, bad MACs).
        crypto::SealedRecord forged;
        forged.sequence = rng.next();
        forged.ciphertext.resize(64 + rng.next_below(256));
        rng.fill(forged.ciphertext);
        rng.fill(MutBytesView(forged.tag.data(), forged.tag.size()));
        (void)bench.device.set_weight(forged, (rng.next() % (1ULL << 30)) & ~511ULL);
        break;
      }
      case 4: {
        // Direct DRAM tampering by the adversary.
        bench.memory.tamper(rng.next() % (1ULL << 30), static_cast<u8>(rng.next()));
        break;
      }
    }
    ASSERT_FALSE(bench.secrets_leaked()) << "seed " << GetParam() << " step " << step;
  }
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, InstructionFuzzTest,
                         ::testing::Values(1001, 1002, 1003, 1004, 1005, 1006));

TEST(SessionIsolation, NewSessionCannotDecryptOldData) {
  // K_MEnc is regenerated per session: the same plaintext imported in two
  // sessions yields different ciphertext, and data from session 1 reads as
  // garbage (or fails integrity) in session 2. With the session table the
  // second session also lands in its own DRAM partition, so the comparison
  // reads each session's partition base.
  FuzzBench bench;
  ASSERT_TRUE(bench.setup(false));
  const Bytes session1_cipher = bench.memory.read(0, 512);

  // New session, same weights, same (session-local) address.
  const accel::InitSessionResponse second =
      bench.device.init_session(bench.user.begin_session(), false);
  ASSERT_TRUE(bench.user.complete_session(second));
  ASSERT_EQ(bench.device.set_weight(bench.user.seal(bench.secret_weights), 0),
            DeviceStatus::kOk);
  const Bytes session2_cipher = bench.memory.read(
      accel::GuardNnDevice::partition_base(second.session_id), 512);
  EXPECT_NE(session1_cipher, session2_cipher)
      << "per-session K_MEnc must change the ciphertext";
}

TEST(SessionIsolation, InstructionsAcrossSessionsDontCompose) {
  // Records sealed for session 1 are rejected once session 2 starts (fresh
  // channel keys) — a host cannot splice old user messages into a new run.
  FuzzBench bench;
  ASSERT_TRUE(bench.setup(false));
  const crypto::SealedRecord old_record = bench.user.seal(Bytes(512, 0x42));
  ASSERT_TRUE(bench.user.complete_session(
      bench.device.init_session(bench.user.begin_session(), false)));
  EXPECT_EQ(bench.device.set_weight(old_record, 0), DeviceStatus::kBadRecord);
}

// --- Session-id fuzzing ------------------------------------------------------
// Two live tenants plus a closed (stale) session on one device; every step
// picks a random session id — tenant A's, tenant B's, the stale one, a forged
// one — and a random instruction. Invariants checked after every step:
// neither tenant's secrets ever appear in any scanned DRAM region, and
// stale/forged ids always answer kNoSession.

struct MultiSessionFuzzBench {
  accel::UntrustedMemory memory;
  crypto::HmacDrbg ca_drbg{Bytes{0x81}};
  crypto::ManufacturerCa ca{ca_drbg};
  accel::GuardNnDevice device{"fuzz-mt-dev", ca, memory, Bytes{0x82}};
  RemoteUser user_a{ca.public_key(), Bytes{0x83}};
  RemoteUser user_b{ca.public_key(), Bytes{0x84}};
  RemoteUser user_stale{ca.public_key(), Bytes{0x85}};

  Bytes secret_a;
  Bytes secret_b;
  accel::SessionId stale_sid = accel::kInvalidSession;

  bool open(RemoteUser& user) {
    if (!user.attest_device(device.get_pk())) return false;
    return user.complete_session(
        device.init_session(user.begin_session(), /*integrity=*/false));
  }

  bool setup() {
    // A stale session first, so its slot is reused by tenant A — the worst
    // case for the generation check.
    if (!open(user_stale)) return false;
    stale_sid = user_stale.session_id();
    if (device.close_session(stale_sid) != DeviceStatus::kOk) return false;
    if (!open(user_a) || !open(user_b)) return false;

    Xoshiro256 rng(0xab5e55);
    secret_a.resize(1024);
    secret_b.resize(1024);
    rng.fill(secret_a);
    rng.fill(secret_b);
    if (device.set_weight(user_a.session_id(), user_a.seal(secret_a), 0) !=
        DeviceStatus::kOk)
      return false;
    if (device.set_weight(user_b.session_id(), user_b.seal(secret_b), 0) !=
        DeviceStatus::kOk)
      return false;
    return true;
  }

  /// Scans every session's partition (plus the MAC region) for a 24-byte
  /// window of either tenant's secret.
  bool secrets_leaked() const {
    const u64 partition_bases[] = {
        accel::GuardNnDevice::partition_base(stale_sid),
        accel::GuardNnDevice::partition_base(user_a.session_id()),
        accel::GuardNnDevice::partition_base(user_b.session_id())};
    const u64 offsets[] = {0x0ULL, 0x4000'0000ULL, 0x4800'0000ULL};
    for (const Bytes* secret : {&secret_a, &secret_b}) {
      const auto begin = secret->begin();
      for (u64 base : partition_bases) {
        for (u64 off : offsets) {
          const Bytes region = memory.read(base + off, 1 << 15);
          if (std::search(region.begin(), region.end(), begin, begin + 24) !=
              region.end())
            return true;
        }
      }
      const Bytes macs =
          memory.read(accel::MemoryProtectionUnit::kMacRegionBase, 1 << 15);
      if (std::search(macs.begin(), macs.end(), begin, begin + 24) != macs.end())
        return true;
    }
    return false;
  }
};

class SessionIdFuzzTest : public ::testing::TestWithParam<u64> {};

TEST_P(SessionIdFuzzTest, RandomSessionIdsNeverLeakOrConfuseTenants) {
  MultiSessionFuzzBench bench;
  ASSERT_TRUE(bench.setup());
  Xoshiro256 rng(GetParam());

  auto pick_sid = [&](bool& must_fail) {
    switch (rng.next_below(5)) {
      case 0: must_fail = false; return bench.user_a.session_id();
      case 1: must_fail = false; return bench.user_b.session_id();
      case 2: must_fail = true; return bench.stale_sid;
      case 3: must_fail = true; return accel::SessionId{rng.next()};
      default: must_fail = true; return accel::kInvalidSession;
    }
  };

  const int steps = fuzz_steps();
  for (int step = 0; step < steps; ++step) {
    bool must_fail = false;
    const accel::SessionId sid = pick_sid(must_fail);
    DeviceStatus status = DeviceStatus::kOk;
    bool checked = true;
    switch (rng.next_below(5)) {
      case 0:
        status = bench.device.forward(sid, random_op(rng));
        break;
      case 1:
        status = bench.device.set_read_ctr(sid, rng.next() % (1ULL << 36),
                                           rng.next_below(1 << 16), rng.next());
        break;
      case 2: {
        crypto::SealedRecord sealed;
        status = bench.device.export_output(
            sid, (rng.next() % (1ULL << 34)) & ~511ULL, 64 + rng.next_below(512),
            sealed);
        break;
      }
      case 3: {
        // Cross-tenant splice: a record sealed by tenant A thrown at `sid`.
        const crypto::SealedRecord record =
            bench.user_a.seal(Bytes(64 + rng.next_below(256), 0x6e));
        status = bench.device.set_weight(
            sid, record, (rng.next() % (1ULL << 30)) & ~511ULL);
        // Only tenant A's own session may ever accept it.
        if (!must_fail && sid != bench.user_a.session_id()) {
          EXPECT_EQ(status, DeviceStatus::kBadRecord)
              << "tenant B accepted a record sealed for tenant A";
        }
        break;
      }
      default:
        checked = false;
        bench.memory.tamper(rng.next() % (1ULL << 34), static_cast<u8>(rng.next()));
        break;
    }
    if (checked && must_fail) {
      EXPECT_EQ(status, DeviceStatus::kNoSession)
          << "stale/forged session id must answer kNoSession (seed "
          << GetParam() << " step " << step << ")";
    }
    ASSERT_FALSE(bench.secrets_leaked())
        << "seed " << GetParam() << " step " << step;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SessionIdFuzzTest,
                         ::testing::Values(2001, 2002, 2003, 2004));

// --- Sealed-blob mutation fuzzing --------------------------------------------
// The sealed model store hands the host a device-bound ciphertext blob; the
// host (or its storage) is free to corrupt it arbitrarily. Every mutation of
// the wire bytes — bit flips anywhere, truncation, extension, header-field
// rewrites — must either fail to parse or fail to unseal, with no VN
// movement and no secret bytes surfacing in untrusted memory.

class SealedBlobFuzzTest : public ::testing::TestWithParam<u64> {};

TEST_P(SealedBlobFuzzTest, MutatedBlobsNeverUnsealOrLeak) {
  FuzzBench bench;
  ASSERT_TRUE(bench.setup(/*integrity=*/false));
  const accel::SessionId sid = bench.user.session_id();

  // Seal the session's secret weights (imported by setup at address 0).
  store::SealedBlob blob;
  const Bytes descriptor{0x5e, 0xa1};
  ASSERT_EQ(bench.device.seal_model(sid, 0, bench.secret_weights.size(),
                                    descriptor, blob),
            DeviceStatus::kOk);
  const Bytes wire = blob.serialize();
  ASSERT_FALSE(bench.secrets_leaked()) << "sealing must not expose plaintext";

  Xoshiro256 rng(GetParam());
  const u64 ctr_w_before = bench.device.vn_generator(sid).ctr_w();
  const int steps = fuzz_steps();
  for (int step = 0; step < steps; ++step) {
    Bytes mutated = wire;
    const int n_mutations = 1 + static_cast<int>(rng.next_below(3));
    for (int m = 0; m < n_mutations && !mutated.empty(); ++m) {
      switch (rng.next_below(4)) {
        case 0:  // single-bit flip anywhere
          mutated[rng.next_below(mutated.size())] ^=
              static_cast<u8>(1u << rng.next_below(8));
          break;
        case 1:  // truncation
          mutated.resize(rng.next_below(mutated.size()));
          break;
        case 2:  // extension with junk
          mutated.push_back(static_cast<u8>(rng.next()));
          break;
        default:  // header-field rewrite (version/binding/content/nonce/sizes)
          mutated[rng.next_below(std::min<std::size_t>(108, mutated.size()))] ^=
              0xff;
          break;
      }
    }
    if (mutated == wire) continue;  // mutations cancelled out

    const auto parsed = store::SealedBlob::deserialize(mutated);
    if (parsed) {
      Bytes descriptor_out;
      const DeviceStatus status =
          bench.device.unseal_model(sid, *parsed, 0, descriptor_out);
      EXPECT_NE(status, DeviceStatus::kOk)
          << "a mutated blob must never unseal (seed " << GetParam() << " step "
          << step << ")";
      EXPECT_TRUE(descriptor_out.empty());
    }
    ASSERT_FALSE(bench.secrets_leaked())
        << "seed " << GetParam() << " step " << step;
    ASSERT_EQ(bench.device.vn_generator(sid).ctr_w(), ctr_w_before)
        << "failed unseals must not move version counters";
  }

  // Control: the untouched wire still round-trips and restores the weights.
  const auto intact = store::SealedBlob::deserialize(wire);
  ASSERT_TRUE(intact.has_value());
  Bytes descriptor_out;
  EXPECT_EQ(bench.device.unseal_model(sid, *intact, 0, descriptor_out),
            DeviceStatus::kOk);
  EXPECT_EQ(descriptor_out, descriptor);
  EXPECT_FALSE(bench.secrets_leaked());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SealedBlobFuzzTest,
                         ::testing::Values(3001, 3002));

// --- Fault-injected serving fuzzing ------------------------------------------
// The serving fleet under probabilistic fault injection: transient integrity
// failures, latency spikes and dropped completions roll on every device call
// while two tenants keep submitting, randomly live-migrating themselves
// between devices, and — halfway through — losing a primary to a fail-stop
// death (which the standby spare may then replace). The invariants are
// liveness-shaped, not value-shaped: every synchronous submit returns a
// *named* outcome (never a crash, never a hang past the deadline),
// successful outcomes still decrypt to the reference result, a failed-over
// or degraded-migration tenant can always reconnect, and the admission
// counters drain to zero at the end. GUARDNN_FAULT_SEED reseeds the roll
// without touching code.

TEST(ServingFaultFuzz, RandomFaultsAlwaysResolveToNamedOutcomes) {
  crypto::HmacDrbg ca_drbg{Bytes{0x91}};
  crypto::ManufacturerCa ca{ca_drbg};
  serving::ServerConfig config;
  config.num_devices = 2;
  config.num_spare_devices = 1;  // promotion path rolls with the faults
  config.num_workers = 2;
  config.default_deadline_ms = 200.0;
  config.transient_retries = 2;
  config.retry_backoff_ms = 0.05;
  serving::InferenceServer server(ca, config, Bytes{0x92, 0x93});

  const u64 seed = serving::FaultInjector::env_seed(0xfa17);

  FuncNetwork net;
  net.in_c = 3;
  net.in_h = 8;
  net.in_w = 8;
  Xoshiro256 weight_rng(0xfa170001);
  Bytes weights(4 * 3 * 3 * 3);
  weight_rng.fill(weights);
  for (auto& b : weights) b = static_cast<u8>(static_cast<i8>(b) / 2);
  net.layers.push_back(FuncLayer{ForwardOp::Kind::kConv, 4, 3, 1, 1, 4, weights});
  net.layers.push_back(FuncLayer{ForwardOp::Kind::kRelu, 0, 0, 1, 0, 0, {}});

  struct FuzzTenant {
    std::unique_ptr<RemoteUser> user;
    serving::TenantId tenant = 0;
    std::size_t device_index = 0;
    bool alive = false;
  };
  auto open_tenant = [&](FuzzTenant& t, u64 user_seed) {
    t.user = std::make_unique<RemoteUser>(ca.public_key(),
                                          Bytes{static_cast<u8>(user_seed)});
    const auto connected = server.connect(t.user->begin_session(), true);
    if (connected.tenant == 0) return false;
    t.tenant = connected.tenant;
    t.device_index = connected.device_index;
    if (!t.user->attest_device(server.get_pk(t.device_index))) return false;
    if (!t.user->complete_session(connected.response)) return false;
    const serving::ModelHandle model = server.register_model(net);
    if (!model.valid()) return false;
    t.alive = server.load_model(t.tenant, model,
                                t.user->seal(model.plan->weight_blob)) ==
              DeviceStatus::kOk;
    return t.alive;
  };

  FuzzTenant tenants[2];
  ASSERT_TRUE(open_tenant(tenants[0], 0x94));
  ASSERT_TRUE(open_tenant(tenants[1], 0x95));

  // Fresh handshake + resume after a wounded session, a crash failover, or a
  // degraded migration. No sealed replica in this fuzzer — reload the model
  // over the fresh channel when the server could not restore it.
  auto try_reconnect = [&](FuzzTenant& t) {
    const auto resumed =
        server.reconnect(t.tenant, t.user->begin_session(), true);
    t.alive = resumed.tenant == t.tenant &&
              t.user->attest_device(server.get_pk(resumed.device_index)) &&
              t.user->complete_session(resumed.response);
    if (!t.alive) return;
    t.device_index = resumed.device_index;
    if (!resumed.model_restored) {
      const serving::ModelHandle model = server.register_model(net);
      t.alive = model.valid() &&
                server.load_model(t.tenant, model,
                                  t.user->seal(model.plan->weight_blob)) ==
                    DeviceStatus::kOk;
    }
  };

  // Arm faults only after setup: session establishment and the initial model
  // load are the controlled baseline; the fuzz rolls start with the traffic.
  serving::FaultInjector::Probabilities p;
  p.integrity = 0.04;
  p.drop = 0.01;
  p.latency = 0.04;
  p.latency_ms = 0.5;
  server.faults().arm_random(0, p, seed);
  server.faults().arm_random(1, p, seed + 1);
  // One scripted burst so the plan provably fires even at tiny step counts.
  server.faults().script_integrity_burst(0, 1);

  Xoshiro256 rng(seed ^ 0xfu);
  const int steps = fuzz_steps();
  for (int step = 0; step < steps; ++step) {
    // Half-way fail-stop: kill a random primary once. The monitor fails its
    // tenants over, and with the routable fleet below the floor it promotes
    // the standby spare to backfill capacity.
    if (step == steps / 2) server.faults().kill(rng.next_below(2));
    FuzzTenant& t = tenants[rng.next_below(2)];
    if (!t.alive) continue;
    // Roll a live migration under fire (1 in 8): any *named* result is
    // acceptable. Success re-keys to the target; a degraded move (source
    // died mid-replay) falls back to reconnect exactly like a crash; an
    // abort (dead/standby target, tenant torn down) leaves the old session
    // and channel keys untouched.
    if (rng.next_below(8) == 0) {
      const std::size_t target = rng.next_below(server.device_count());
      if (target != t.device_index) {
        const auto moved = server.migrate_tenant(t.tenant, target,
                                                 t.user->begin_session(), true);
        if (moved.tenant == t.tenant) {
          t.device_index = moved.device_index;
          t.alive = t.user->attest_device(server.get_pk(moved.device_index)) &&
                    t.user->complete_session(moved.response);
        } else if (server.failover_pending(t.tenant)) {
          try_reconnect(t);
        }
        if (!t.alive) continue;
      }
    }
    functional::Tensor input(net.in_c, net.in_h, net.in_w, net.bits);
    for (auto& v : input.data())
      v = static_cast<i8>(static_cast<int>(rng.next_below(256)) - 128);
    const Bytes plain(input.bytes().begin(), input.bytes().end());
    const crypto::SealedRecord record = t.user->seal(plain);
    // Retry kTimeout with the *same* record: deadline expiry never consumes
    // it, so resubmitting preserves the channel's strict sequence numbers.
    serving::InferenceResult result;
    for (int attempt = 0; attempt < 8; ++attempt) {
      result = server.submit(t.tenant, record);
      if (result.outcome != serving::RequestOutcome::kTimeout) break;
    }
    switch (result.outcome) {
      case serving::RequestOutcome::kOk: {
        const auto output = t.user->open_output(result.sealed_output);
        ASSERT_TRUE(output.has_value()) << "seed " << seed << " step " << step;
        ASSERT_EQ(*output, reference_run(net, input))
            << "seed " << seed << " step " << step;
        break;
      }
      case serving::RequestOutcome::kTimeout:
        // Still timing out after 8 attempts — park the tenant; liveness of
        // the *server* is what this fuzzer checks.
        break;
      case serving::RequestOutcome::kDeviceFailover:
      case serving::RequestOutcome::kNoTenant:
        // Wounded session (dropped completion) or crash: reconnect, resume.
        try_reconnect(t);
        break;
      default:
        FAIL() << "unnamed outcome " << serving::outcome_name(result.outcome)
               << " (seed " << seed << " step " << step << ")";
    }
  }

  EXPECT_GT(server.faults().injected_count(), 0u);
  EXPECT_EQ(server.pending_requests(), 0u);
  EXPECT_EQ(server.pending_bytes(), 0u);
}

}  // namespace
}  // namespace guardnn::host
