# GuardNN build helpers: per-layer libraries, test registration, benches.
#
# Every target in the tree funnels through guardnn_apply_build_flags() so the
# warning set and the GUARDNN_SANITIZE wiring (ON/ASAN = ASan+UBSan,
# TSAN = ThreadSanitizer) stay in one place.

include_guard(GLOBAL)

# Common warning / sanitizer / diagnostics flags for a target.
function(guardnn_apply_build_flags target)
  target_compile_options(${target} PRIVATE -Wall -Wextra)
  if(GUARDNN_WERROR)
    target_compile_options(${target} PRIVATE -Werror)
  endif()
  if(GUARDNN_SANITIZE)
    string(TOUPPER "${GUARDNN_SANITIZE}" _guardnn_san)
    if(_guardnn_san STREQUAL "TSAN")
      set(_guardnn_san_flags -fsanitize=thread)
    else()  # ON / ASAN / any other truthy value: the historical default
      set(_guardnn_san_flags -fsanitize=address,undefined)
    endif()
    target_compile_options(${target} PRIVATE
      ${_guardnn_san_flags} -fno-omit-frame-pointer -fno-sanitize-recover=all)
    target_link_options(${target} PRIVATE ${_guardnn_san_flags})
  endif()
endfunction()

# guardnn_add_library(<layer> SOURCES <...> [DEPS <...>])
#
# Declares static library guardnn_<layer> (alias guardnn::<layer>) rooted at
# src/, with PUBLIC include of the source tree so headers are spelled
# "layer/header.h" everywhere (tests, benches, examples included).
function(guardnn_add_library name)
  cmake_parse_arguments(ARG "" "" "SOURCES;DEPS" ${ARGN})
  if(NOT ARG_SOURCES)
    message(FATAL_ERROR "guardnn_add_library(${name}) needs SOURCES")
  endif()
  add_library(guardnn_${name} STATIC ${ARG_SOURCES})
  add_library(guardnn::${name} ALIAS guardnn_${name})
  target_include_directories(guardnn_${name} PUBLIC ${GUARDNN_SOURCE_DIR}/src)
  target_compile_features(guardnn_${name} PUBLIC cxx_std_20)
  if(ARG_DEPS)
    target_link_libraries(guardnn_${name} PUBLIC ${ARG_DEPS})
  endif()
  guardnn_apply_build_flags(guardnn_${name})
endfunction()

# guardnn_add_test(<name> [TIMEOUT <seconds>] [LIBS <...>] [LABELS <...>])
#
# Builds tests/<name>.cc against gtest_main and registers every TEST() in it
# with CTest via gtest_discover_tests, tagging them with LABELS so slices can
# be run as e.g. `ctest -L crypto`. TIMEOUT (default 120 s per test) keeps
# runaway cases — the fuzz suite especially — inside a hard budget.
function(guardnn_add_test name)
  cmake_parse_arguments(ARG "" "TIMEOUT" "LIBS;LABELS" ${ARGN})
  if(NOT ARG_TIMEOUT)
    set(ARG_TIMEOUT 120)
  endif()
  add_executable(${name} ${name}.cc)
  target_link_libraries(${name} PRIVATE ${ARG_LIBS} GTest::gtest GTest::gtest_main)
  guardnn_apply_build_flags(${name})
  # NOTE: gtest_discover_tests cannot forward a multi-value LABELS list to
  # set_tests_properties (the list separator is flattened en route), so each
  # suite carries exactly one label.
  gtest_discover_tests(${name}
    PROPERTIES LABELS "${ARG_LABELS}" TIMEOUT ${ARG_TIMEOUT}
    DISCOVERY_TIMEOUT 120)
endfunction()

# guardnn_add_bench(<name> [LIBS <...>] [GBENCH])
#
# Report-style benches carry their own main(); GBENCH ones link
# google-benchmark. All land in build/bench/ for scripts/run_benches.sh.
function(guardnn_add_bench name)
  cmake_parse_arguments(ARG "GBENCH" "" "LIBS" ${ARGN})
  add_executable(${name} ${name}.cc)
  target_include_directories(${name} PRIVATE ${GUARDNN_SOURCE_DIR})
  target_link_libraries(${name} PRIVATE ${ARG_LIBS})
  if(ARG_GBENCH)
    target_link_libraries(${name} PRIVATE benchmark::benchmark benchmark::benchmark_main)
  endif()
  guardnn_apply_build_flags(${name})
endfunction()

# guardnn_add_example(<name> <libs...>)
function(guardnn_add_example name)
  add_executable(${name} ${name}.cpp)
  target_link_libraries(${name} PRIVATE ${ARGN})
  guardnn_apply_build_flags(${name})
endfunction()
