// Performance study using the cycle-level simulation API — how a systems
// researcher would use this library to evaluate a new protection scheme or
// accelerator configuration (the paper's Section III-C methodology).
//
// Sweeps one network (ResNet-50) across protection schemes, precisions and
// array sizes, printing absolute latency, traffic and overhead.
//
// Build & run:  ./build/examples/perf_study
#include <cstdio>

#include "dnn/models.h"
#include "sim/perf_model.h"
#include "common/table.h"

using namespace guardnn;

int main() {
  const dnn::Network net = dnn::resnet50();
  const auto inference = dnn::inference_schedule(net);
  const auto training = dnn::training_schedule(net);

  std::printf("Network: %s — %.2f GMACs, %.1f M params\n\n", net.name.c_str(),
              static_cast<double>(net.total_macs()) / 1e9,
              static_cast<double>(net.total_params()) / 1e6);

  // One calibration of the DDR4 model is shared by every run.
  const sim::SimConfig base_cfg;
  const sim::BandwidthCalibration calib =
      sim::BandwidthCalibration::measure(base_cfg.dram, base_cfg.accel);
  std::printf("DDR4 calibration: %.1f B/cycle streaming, %.1f B/cycle random "
              "(at the 0.7 GHz accelerator clock)\n\n",
              calib.seq_bytes_per_accel_cycle, calib.rand_bytes_per_accel_cycle);

  // --- Scheme sweep, inference vs training --------------------------------
  ConsoleTable scheme_table({"Scheme", "inference (ms)", "overhead",
                             "training step (ms)", "overhead", "traffic"});
  sim::RunResult inf_base, train_base;
  for (const auto scheme :
       {memprot::Scheme::kNone, memprot::Scheme::kGuardNnC,
        memprot::Scheme::kGuardNnCI, memprot::Scheme::kBaselineMee}) {
    const sim::RunResult inf = sim::simulate(net, inference, scheme, base_cfg, calib);
    const sim::RunResult train = sim::simulate(net, training, scheme, base_cfg, calib);
    if (scheme == memprot::Scheme::kNone) {
      inf_base = inf;
      train_base = train;
    }
    scheme_table.add_row(
        {memprot::scheme_name(scheme), fmt_fixed(inf.seconds * 1e3, 3),
         fmt_overhead_pct(static_cast<double>(inf.total_cycles) /
                          static_cast<double>(inf_base.total_cycles)),
         fmt_fixed(train.seconds * 1e3, 3),
         fmt_overhead_pct(static_cast<double>(train.total_cycles) /
                          static_cast<double>(train_base.total_cycles)),
         fmt_overhead_pct(inf.traffic_increase())});
  }
  std::puts("Protection scheme sweep (TPU-like: 256x256 PEs, 24 MB, 0.7 GHz):");
  scheme_table.print();

  // --- Array size sweep under GuardNN_CI ----------------------------------
  std::puts("\nSystolic array sweep (GuardNN_CI inference):");
  ConsoleTable array_table({"Array", "PEs", "latency (ms)", "utilization-bound"});
  for (int dim : {64, 128, 256, 512}) {
    sim::SimConfig cfg = base_cfg;
    cfg.accel.array_rows = cfg.accel.array_cols = dim;
    const sim::BandwidthCalibration c =
        sim::BandwidthCalibration::measure(cfg.dram, cfg.accel);
    const sim::RunResult run =
        sim::simulate(net, inference, memprot::Scheme::kGuardNnCI, cfg, c);
    u64 compute = 0, memory = 0;
    for (const auto& layer : run.layers) {
      compute += layer.compute_cycles;
      memory += layer.memory_cycles;
    }
    array_table.add_row({std::to_string(dim) + "x" + std::to_string(dim),
                         std::to_string(cfg.accel.total_pes()),
                         fmt_fixed(run.seconds * 1e3, 3),
                         compute > memory ? "compute" : "memory"});
  }
  array_table.print();

  // --- Precision sweep ------------------------------------------------------
  std::puts("\nPrecision sweep (GuardNN_CI inference):");
  ConsoleTable bits_table({"Bits", "latency (ms)", "traffic (MB)"});
  for (int bits : {16, 8, 6}) {
    sim::SimConfig cfg = base_cfg;
    cfg.bits = bits;
    const sim::RunResult run =
        sim::simulate(net, inference, memprot::Scheme::kGuardNnCI, cfg, calib);
    bits_table.add_row({std::to_string(bits), fmt_fixed(run.seconds * 1e3, 3),
                        fmt_fixed(static_cast<double>(run.data_bytes + run.meta_bytes) /
                                      1e6,
                                  1)});
  }
  bits_table.print();
  return 0;
}
