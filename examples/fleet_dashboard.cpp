// Fleet telemetry dashboard: a live text view of a multi-tenant GuardNN
// serving fleet rendered ENTIRELY from InferenceServer::telemetry() — the
// same snapshot an ops agent would scrape. Nothing here reads server
// internals; if the dashboard can show it, the exported telemetry carries it.
//
//   1. a 3-device fleet serves 6 tenants under closed-loop load, request
//      tracing armed;
//   2. every tenant's model is sealed and replicated to every device (the
//      failover precondition);
//   3. halfway through, one device is killed fail-stop via the fault
//      injector — wounded tenants reconnect onto survivors and the
//      dashboard shows the health transition, the failover events and the
//      admission-budget rescale as they land in the telemetry;
//   4. each tick prints a dashboard frame plus a machine-readable
//      ##GUARDNN_TELEMETRY_JSON## line (scripts/check_telemetry_schema.py
//      validates the schema and counter monotonicity across ticks);
//   5. at exit the span ring is audited: every traced request chain that
//      still has its submit span must end in a resolve span — failover and
//      timeout outcomes included. Any incomplete chain fails the example.
//
// GUARDNN_DASHBOARD_MS overrides the run length (default 1500 ms).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "host/model_codec.h"
#include "obs/export.h"
#include "serving/inference_server.h"

using namespace guardnn;
using host::FuncLayer;
using host::FuncNetwork;
using serving::InferenceResult;
using serving::InferenceServer;
using serving::RequestOutcome;

namespace {

using Clock = std::chrono::steady_clock;

constexpr std::size_t kDevices = 3;
constexpr std::size_t kTenants = 6;

void require(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "FAILED: %s\n", what);
    std::exit(1);
  }
}

Bytes random_weights(std::size_t n, u64 seed) {
  Xoshiro256 rng(seed);
  Bytes out(n);
  for (auto& b : out)
    b = static_cast<u8>(static_cast<i8>(static_cast<int>(rng.next_below(256)) - 128));
  return out;
}

FuncNetwork make_model(u64 seed) {
  FuncNetwork net;
  net.in_c = 3;
  net.in_h = 8;
  net.in_w = 8;
  net.layers.push_back(FuncLayer{accel::ForwardOp::Kind::kConv, 4, 3, 1, 1, 4,
                                 random_weights(4 * 3 * 3 * 3, seed)});
  net.layers.push_back(FuncLayer{accel::ForwardOp::Kind::kRelu, 0, 0, 1, 0, 0, {}});
  net.layers.push_back(FuncLayer{accel::ForwardOp::Kind::kMaxPool, 0, 2, 2, 0, 0, {}});
  net.layers.push_back(FuncLayer{accel::ForwardOp::Kind::kFc, 10, 0, 1, 0, 5,
                                 random_weights(10 * 4 * 4 * 4, seed + 1)});
  return net;
}

struct Tenant {
  std::unique_ptr<host::RemoteUser> user;
  serving::TenantId id = 0;
  u64 completed = 0;
  u64 failovers = 0;
};

/// Closed-loop load with failover handling: rejected/timed-out submissions
/// retry the same sealed record (strict channel sequence numbers); a
/// kDeviceFailover/kNoTenant wound re-keys through reconnect() and resumes
/// on the survivor the server picked.
void tenant_loop(InferenceServer& server, Tenant& tenant, const Bytes& input,
                 Clock::time_point deadline) {
  while (Clock::now() < deadline) {
    crypto::SealedRecord record = tenant.user->seal(input);
    bool consumed = false;
    while (!consumed && Clock::now() < deadline) {
      const InferenceResult result = server.submit(tenant.id, record);
      switch (result.outcome) {
        case RequestOutcome::kOk:
          ++tenant.completed;
          consumed = true;
          break;
        case RequestOutcome::kQueueFull:
        case RequestOutcome::kBackpressure:
        case RequestOutcome::kTimeout:
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
          break;  // same record, next attempt
        case RequestOutcome::kDeviceFailover:
        case RequestOutcome::kNoTenant: {
          ++tenant.failovers;
          for (int i = 0; i < 2000 && !server.failover_pending(tenant.id); ++i)
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
          const auto resumed =
              server.reconnect(tenant.id, tenant.user->begin_session(), true);
          require(resumed.tenant == tenant.id, "reconnect tenant id");
          require(tenant.user->attest_device(
                      server.get_pk(resumed.device_index)),
                  "reconnect attestation");
          require(tenant.user->complete_session(resumed.response),
                  "reconnect session");
          require(resumed.model_restored, "sealed replica restored");
          consumed = true;  // channel re-keyed: the old record died with it
          break;
        }
        default:
          std::fprintf(stderr,
                       "FAILED: unexpected submit outcome %s (status %d)\n",
                       serving::outcome_name(result.outcome),
                       static_cast<int>(result.device_status));
          std::exit(1);
      }
    }
  }
}

u64 counter_of(const obs::TelemetrySnapshot& snap, const char* name,
               obs::Labels labels = {}) {
  const obs::MetricSample* sample =
      obs::find_metric(snap, name, std::move(labels));
  return sample ? sample->counter : 0;
}

double gauge_of(const obs::TelemetrySnapshot& snap, const char* name,
                obs::Labels labels = {}) {
  const obs::MetricSample* sample =
      obs::find_metric(snap, name, std::move(labels));
  return sample ? sample->gauge : 0.0;
}

/// One dashboard frame, rendered from the telemetry snapshot alone.
void render(const obs::TelemetrySnapshot& snap, double t_s) {
  const obs::MetricSample* e2e = obs::find_metric(snap, "serving_e2e_ms");
  std::printf("\n--- fleet @ %5.2f s ---\n", t_s);
  std::printf("requests %llu (admitted %llu, queue_full %llu, backpressure "
              "%llu) timeouts %llu failovers %llu\n",
              static_cast<unsigned long long>(
                  counter_of(snap, "serving_requests_total")),
              static_cast<unsigned long long>(counter_of(
                  snap, "serving_admission_total", {{"decision", "admit"}})),
              static_cast<unsigned long long>(
                  counter_of(snap, "serving_admission_total",
                             {{"decision", "queue_full"}})),
              static_cast<unsigned long long>(
                  counter_of(snap, "serving_admission_total",
                             {{"decision", "backpressure"}})),
              static_cast<unsigned long long>(
                  counter_of(snap, "serving_timeouts_total")),
              static_cast<unsigned long long>(
                  counter_of(snap, "serving_failovers_total")));
  if (e2e && e2e->hist.count)
    std::printf("e2e p50 %.2f ms  p99 %.2f ms over %llu ok-requests; "
                "plan cache hit %llu / miss %llu\n",
                e2e->hist.p50, e2e->hist.p99,
                static_cast<unsigned long long>(e2e->hist.count),
                static_cast<unsigned long long>(counter_of(
                    snap, "serving_plan_cache_total", {{"result", "hit"}})),
                static_cast<unsigned long long>(counter_of(
                    snap, "serving_plan_cache_total", {{"result", "miss"}})));
  std::printf("routable %zu/%zu devices, admission budget %.0f bytes, "
              "pending %.0f requests\n",
              static_cast<std::size_t>(
                  gauge_of(snap, "serving_routable_devices")),
              kDevices, gauge_of(snap, "serving_admission_byte_budget"),
              gauge_of(snap, "serving_pending_requests"));
  for (std::size_t d = 0; d < kDevices; ++d) {
    const obs::Labels labels{{"device", std::to_string(d)}};
    const auto health = static_cast<serving::DeviceHealth>(
        static_cast<int>(gauge_of(snap, "device_health", labels)));
    std::printf("  device %zu: %-11s tenants %.0f  mpu encrypted %.1f MiB, "
                "mac'd %.1f MiB\n",
                d, serving::health_name(health),
                gauge_of(snap, "device_tenants", labels),
                gauge_of(snap, "device_mpu_encrypted_bytes", labels) /
                    (1024.0 * 1024.0),
                gauge_of(snap, "device_mpu_macd_bytes", labels) /
                    (1024.0 * 1024.0));
  }
  const std::size_t shown = snap.events.size() < 3 ? snap.events.size() : 3;
  for (std::size_t i = snap.events.size() - shown; i < snap.events.size(); ++i)
    std::printf("  event [%8.1f ms] %s: %s\n", snap.events[i].t_ms,
                snap.events[i].kind.c_str(), snap.events[i].detail.c_str());
  std::printf("##GUARDNN_TELEMETRY_JSON## %s\n",
              obs::to_json(snap, /*max_spans=*/0).c_str());
}

}  // namespace

int main() {
  const char* ms_env = std::getenv("GUARDNN_DASHBOARD_MS");
  const double duration_ms = ms_env ? std::atof(ms_env) : 1500.0;

  std::printf("=== GuardNN fleet dashboard: %zu tenants on %zu devices, one "
              "mid-run device kill ===\n",
              kTenants, kDevices);
  std::printf("run %.0f ms (GUARDNN_DASHBOARD_MS overrides), kill at %.0f "
              "ms; dashboard reads telemetry() only\n",
              duration_ms, duration_ms / 2.0);

  crypto::HmacDrbg ca_drbg(Bytes{0xda});
  crypto::ManufacturerCa ca(ca_drbg);
  serving::ServerConfig config;
  config.num_devices = kDevices;
  config.num_workers = kDevices;
  config.emulate_device_latency = true;
  config.device_latency_scale = 4.0;
  InferenceServer server(ca, config, Bytes{0xdb, 0xdc});
  server.trace().set_enabled(true);  // or GUARDNN_TRACE=1 in the environment

  const FuncNetwork net = make_model(42);
  const serving::ModelHandle model = server.register_model(net);
  const Bytes input(static_cast<std::size_t>(net.in_c) * net.in_h * net.in_w,
                    0x2a);

  std::vector<Tenant> tenants(kTenants);
  std::size_t victim = 0;  // the device tenant 0 lands on
  for (std::size_t i = 0; i < kTenants; ++i) {
    Tenant& tenant = tenants[i];
    tenant.user = std::make_unique<host::RemoteUser>(
        ca.public_key(), Bytes{static_cast<u8>(0xe0 + i)});
    const auto connected = server.connect(tenant.user->begin_session(), true);
    require(connected.tenant != 0, "connect");
    require(tenant.user->attest_device(server.get_pk(connected.device_index)),
            "attestation");
    require(tenant.user->complete_session(connected.response), "session");
    tenant.id = connected.tenant;
    if (i == 0) victim = connected.device_index;
    require(server.load_model(tenant.id, model,
                              tenant.user->seal(model.plan->weight_blob)) ==
                accel::DeviceStatus::kOk,
            "load_model");
  }

  // Failover precondition: a sealed replica of every tenant's model on every
  // device (the content-addressed store dedups the identical weights).
  store::ContentId content{};
  for (const Tenant& tenant : tenants)
    require(server.seal_tenant_model(tenant.id,
                                     host::serialize_descriptor(net),
                                     content) == accel::DeviceStatus::kOk,
            "seal_tenant_model");
  for (std::size_t d = 0; d < kDevices; ++d)
    require(server.replicate_model(content, d) == accel::DeviceStatus::kOk,
            "replicate_model");

  const auto start = Clock::now();
  const auto kill_at = start + std::chrono::duration_cast<Clock::duration>(
                                   std::chrono::duration<double, std::milli>(
                                       duration_ms / 2.0));
  const auto deadline =
      start + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double, std::milli>(duration_ms));

  std::vector<std::thread> threads;
  threads.reserve(kTenants);
  for (std::size_t i = 0; i < kTenants; ++i)
    threads.emplace_back(
        [&, i] { tenant_loop(server, tenants[i], input, deadline); });

  // Dashboard ticks on the main thread; the kill lands between two ticks.
  bool killed = false;
  while (Clock::now() < deadline) {
    const auto tick_end = Clock::now() + std::chrono::milliseconds(250);
    if (!killed && Clock::now() >= kill_at) {
      std::printf("\n!!! fail-stop: killing device %zu\n", victim);
      server.faults().kill(victim);
      killed = true;
    }
    render(server.telemetry(),
           std::chrono::duration<double>(Clock::now() - start).count());
    std::this_thread::sleep_until(tick_end < deadline ? tick_end : deadline);
    if (!killed && Clock::now() >= kill_at) {
      std::printf("\n!!! fail-stop: killing device %zu\n", victim);
      server.faults().kill(victim);
      killed = true;
    }
  }
  if (!killed) server.faults().kill(victim);
  for (auto& thread : threads) thread.join();

  // Final frame + span-chain audit from the same telemetry surface.
  const obs::TelemetrySnapshot final_snap = server.telemetry();
  render(final_snap,
         std::chrono::duration<double>(Clock::now() - start).count());

  u64 total_completed = 0, total_failovers = 0;
  for (const Tenant& tenant : tenants) {
    total_completed += tenant.completed;
    total_failovers += tenant.failovers;
  }
  std::map<u64, std::pair<bool, bool>> chains;  // trace -> (submit, resolve)
  for (const obs::SpanRecord& span : final_snap.spans) {
    auto& [has_submit, has_resolve] = chains[span.trace_id];
    has_submit |= span.kind == obs::SpanKind::kSubmit;
    has_resolve |= span.kind == obs::SpanKind::kResolve;
  }
  u64 audited = 0, incomplete = 0;
  for (const auto& entry : chains) {
    if (!entry.second.first) continue;  // submit span aged out of the ring
    ++audited;
    if (!entry.second.second) ++incomplete;
  }
  std::printf("\ncompleted %llu requests across %zu tenants (%llu failover "
              "wounds); %llu span chains audited, %llu incomplete\n",
              static_cast<unsigned long long>(total_completed), kTenants,
              static_cast<unsigned long long>(total_failovers),
              static_cast<unsigned long long>(audited),
              static_cast<unsigned long long>(incomplete));

  require(total_completed > 0, "some requests completed");
  require(audited > 0, "span chains were traced");
  require(incomplete == 0, "every traced chain reached resolve");
  require(static_cast<std::size_t>(gauge_of(
              final_snap, "serving_routable_devices")) == kDevices - 1,
          "fleet shrank by exactly the killed device");
  std::printf("PASS\n");
  return 0;
}
