// Sealed training checkpoints + cross-device provisioning.
//
// SEAL-style persistence on top of GuardNN: a training run's weights are
// sealed *by the device* into a SealedBlob (AES-128-CTR per 64 KiB chunk,
// chained CMAC, SHA-256 content id) bound to the device's attested identity.
// The blob lives in a plain directory on the untrusted host — the host never
// sees a key or a weight byte — and a second attested device can receive it
// over the three-step re-wrap protocol. Here:
//
//   1. device A runs one quantized SGD step and checkpoints;
//   2. the checkpoint is persisted to a directory-backed ModelStore and the
//      store is reopened (a simulated host restart);
//   3. the checkpoint is provisioned A -> B (ECDHE + certificate
//      attestation both ways; the host only relays ciphertext);
//   4. device B restores the checkpoint into a fresh session with fresh
//      VN/freshness state and resumes training — bit-identical to an
//      uninterrupted plaintext run.
//
// Build & run:  ./build/examples/sealed_checkpoint
#include <cstdio>
#include <filesystem>

#include "common/rng.h"
#include "functional/train_ops.h"
#include "host/user_client.h"
#include "store/model_store.h"

using namespace guardnn;

namespace {

constexpr u64 kWBase = 0x0;
constexpr u64 kGradAddr = 0x4000'0000ULL;
constexpr std::size_t kBlobBytes = 1024;
constexpr int kLrShift = 3;

Bytes random_blob(Xoshiro256& rng, std::size_t n, int span) {
  Bytes out(n);
  for (auto& b : out)
    b = static_cast<u8>(static_cast<i8>(
        static_cast<int>(rng.next_below(static_cast<u64>(2 * span))) - span));
  return out;
}

/// Plaintext mirror of the on-device SGD step.
Bytes reference_sgd(const Bytes& weights, const Bytes& grads) {
  std::vector<i8> w(weights.begin(), weights.end());
  const std::vector<i8> g(grads.begin(), grads.end());
  functional::sgd_update(w, g, kLrShift, 8);
  return Bytes(reinterpret_cast<const u8*>(w.data()),
               reinterpret_cast<const u8*>(w.data()) + w.size());
}

/// One SGD step over the imported gradient (the n-th input of the session).
bool device_sgd_step(accel::GuardNnDevice& device, host::RemoteUser& user,
                     const Bytes& grads) {
  const accel::SessionId sid = user.session_id();
  if (device.set_input(sid, user.seal(grads), kGradAddr) !=
      accel::DeviceStatus::kOk)
    return false;
  const u64 grad_vn = device.vn_generator(sid).ctr_in() << 32;
  accel::ForwardOp op;
  op.kind = accel::ForwardOp::Kind::kSgdUpdate;
  op.in_c = static_cast<int>(kBlobBytes);
  op.in_h = 1;
  op.in_w = 1;
  op.requant_shift = kLrShift;
  op.input_addr = kGradAddr;
  op.weight_addr = kWBase;
  if (device.set_read_ctr(sid, kGradAddr, kBlobBytes, grad_vn) !=
      accel::DeviceStatus::kOk)
    return false;
  return device.forward(sid, op) == accel::DeviceStatus::kOk;
}

bool open_session(accel::GuardNnDevice& device, host::RemoteUser& user) {
  if (!user.attest_device(device.get_pk())) return false;
  return user.complete_session(device.init_session(user.begin_session(), true));
}

std::optional<Bytes> export_weights(accel::GuardNnDevice& device,
                                    host::RemoteUser& user) {
  const accel::SessionId sid = user.session_id();
  if (device.set_read_ctr(sid, kWBase, kBlobBytes,
                          device.vn_generator(sid).ctr_w()) !=
      accel::DeviceStatus::kOk)
    return std::nullopt;
  crypto::SealedRecord sealed;
  if (device.export_output(sid, kWBase, kBlobBytes, sealed) !=
      accel::DeviceStatus::kOk)
    return std::nullopt;
  return user.open_output(sealed);
}

}  // namespace

int main() {
  std::printf("=== Sealed checkpoint & cross-device provisioning ===\n\n");

  Xoshiro256 rng(0x5ea1);
  crypto::HmacDrbg ca_drbg(Bytes{0x01});
  crypto::ManufacturerCa ca(ca_drbg);
  accel::UntrustedMemory mem_a, mem_b;
  accel::GuardNnDevice device_a("ckpt-dev-a", ca, mem_a, Bytes{0x02});
  accel::GuardNnDevice device_b("ckpt-dev-b", ca, mem_b, Bytes{0x03});

  const Bytes weights0 = random_blob(rng, kBlobBytes, 8);
  const Bytes grads1 = random_blob(rng, kBlobBytes, 4);
  const Bytes grads2 = random_blob(rng, kBlobBytes, 4);

  // --- Step 1 on device A ----------------------------------------------------
  host::RemoteUser user_a(ca.public_key(), Bytes{0x04});
  if (!open_session(device_a, user_a)) return 1;
  if (device_a.set_weight(user_a.session_id(), user_a.seal(weights0), kWBase) !=
      accel::DeviceStatus::kOk)
    return 1;
  if (!device_sgd_step(device_a, user_a, grads1)) return 1;
  std::printf("[A] one SGD step done (CTR_W=%llu)\n",
              static_cast<unsigned long long>(
                  device_a.vn_generator(user_a.session_id()).ctr_w()));

  // --- Checkpoint: device-sealed, host persists ciphertext only --------------
  const Bytes descriptor{'s', 'g', 'd', '-', 's', 't', 'e', 'p', '-', '1'};
  store::SealedBlob checkpoint;
  if (device_a.seal_model(user_a.session_id(), kWBase, kBlobBytes, descriptor,
                          checkpoint) != accel::DeviceStatus::kOk)
    return 1;
  if (device_a.close_session(user_a.session_id()) != accel::DeviceStatus::kOk)
    return 1;  // the run is suspended; the session's keys are zeroized

  const auto dir =
      std::filesystem::temp_directory_path() / "guardnn_sealed_ckpt_example";
  std::filesystem::remove_all(dir);
  store::ContentId content{};
  {
    store::ModelStore mstore(
        std::make_unique<store::DirectoryBackend>(dir.string()));
    const auto id = mstore.put(checkpoint);
    if (!id) return 1;
    content = *id;
  }
  std::printf("[host] checkpoint sealed to %s (%zu ciphertext bytes)\n",
              dir.string().c_str(), checkpoint.serialize().size());

  // --- Host restart: reopen the store, provision A -> B ----------------------
  store::ModelStore mstore(
      std::make_unique<store::DirectoryBackend>(dir.string()));
  const auto persisted = mstore.get(content, device_a.store_binding());
  if (!persisted) return 1;

  accel::ProvisionRequest request;
  if (device_b.provision_begin(request) != accel::DeviceStatus::kOk) return 1;
  store::SealedBlob wrapped;
  accel::ProvisionGrant grant;
  if (device_a.export_for_device(*persisted, request, wrapped, grant) !=
      accel::DeviceStatus::kOk)
    return 1;
  store::SealedBlob checkpoint_b;
  if (device_b.provision_finish(wrapped, grant, checkpoint_b) !=
      accel::DeviceStatus::kOk)
    return 1;
  if (!mstore.put(checkpoint_b)) return 1;
  std::printf("[host] provisioned to device B (replicas of model: %zu)\n",
              mstore.bindings(content).size());

  // --- Restore on device B, verify, resume -----------------------------------
  host::RemoteUser user_b(ca.public_key(), Bytes{0x05});
  if (!open_session(device_b, user_b)) return 1;
  Bytes descriptor_out;
  u64 checkpoint_vn = 0;
  if (device_b.unseal_model(user_b.session_id(), checkpoint_b, kWBase,
                            descriptor_out, &checkpoint_vn) !=
      accel::DeviceStatus::kOk)
    return 1;
  std::printf("[B] restored \"%.*s\" (sealed at CTR_W=%llu, fresh CTR_W=%llu)\n",
              static_cast<int>(descriptor_out.size()), descriptor_out.data(),
              static_cast<unsigned long long>(checkpoint_vn),
              static_cast<unsigned long long>(
                  device_b.vn_generator(user_b.session_id()).ctr_w()));

  const Bytes after_one = reference_sgd(weights0, grads1);
  const auto restored = export_weights(device_b, user_b);
  if (!restored || *restored != after_one) {
    std::printf("FAIL: restored weights diverge from the suspended run\n");
    return 1;
  }

  if (!device_sgd_step(device_b, user_b, grads2)) return 1;
  const auto resumed = export_weights(device_b, user_b);
  const Bytes after_two = reference_sgd(after_one, grads2);
  if (!resumed || *resumed != after_two) {
    std::printf("FAIL: resumed training diverges from the uninterrupted run\n");
    return 1;
  }
  std::printf("[B] resumed training matches the uninterrupted run bit-for-bit\n");

  // Tampered checkpoints fail closed, coarse.
  store::SealedBlob tampered = checkpoint_b;
  tampered.ciphertext[7] ^= 0x20;
  if (device_b.unseal_model(user_b.session_id(), tampered, kWBase,
                            descriptor_out) != accel::DeviceStatus::kBadRecord) {
    std::printf("FAIL: tampered checkpoint was not rejected\n");
    return 1;
  }
  std::printf("[B] tampered checkpoint rejected (kBadRecord)\n");

  std::filesystem::remove_all(dir);
  std::printf("\nPASS\n");
  return 0;
}
