// Secure model update + preprocessing-as-matmul.
//
// Two GuardNN features beyond plain inference:
//
//  1. Weight updates (paper Section II-D.2): SetWeight increments CTR_W, so
//     a rolled-back DRAM snapshot of the *old* model fails integrity
//     verification — model-downgrade attacks are detected in hardware.
//
//  2. Input preprocessing as matrix multiplication (paper Section II-E):
//     "GuardNN can also handle most standard image data preprocessing, such
//     as scaling, cropping, clipping and reflection, by performing the data
//     preprocessing steps as matrix multiplication." Here a 2x downscale is
//     compiled into an Fc layer that runs on the accelerator itself, so even
//     preprocessing sees only encrypted data.
//
// Build & run:  ./build/examples/secure_model_update
#include <cstdio>

#include "common/rng.h"
#include "host/scheduler.h"
#include "host/user_client.h"

using namespace guardnn;

namespace {

Bytes random_bytes(Xoshiro256& rng, std::size_t n) {
  Bytes out(n);
  for (auto& b : out)
    b = static_cast<u8>(static_cast<i8>(static_cast<int>(rng.next_below(256)) - 128));
  return out;
}

/// Builds the Fc weight matrix for 2x2 average-pool downscaling of a CxHxW
/// tensor: out[(c,y,x)] = sum of the four source pixels, then requant >> 2.
Bytes downscale_matrix(int c, int h, int w) {
  const int oh = h / 2, ow = w / 2;
  const std::size_t in_features = static_cast<std::size_t>(c) * h * w;
  const std::size_t out_features = static_cast<std::size_t>(c) * oh * ow;
  Bytes matrix(out_features * in_features, 0);
  for (int ch = 0; ch < c; ++ch) {
    for (int oy = 0; oy < oh; ++oy) {
      for (int ox = 0; ox < ow; ++ox) {
        const std::size_t row =
            (static_cast<std::size_t>(ch) * oh + oy) * ow + ox;
        for (int dy = 0; dy < 2; ++dy) {
          for (int dx = 0; dx < 2; ++dx) {
            const std::size_t col =
                (static_cast<std::size_t>(ch) * h + 2 * oy + dy) * w + 2 * ox + dx;
            matrix[row * in_features + col] = 1;
          }
        }
      }
    }
  }
  return matrix;
}

}  // namespace

int main() {
  Xoshiro256 rng(99);
  accel::UntrustedMemory dram;
  crypto::HmacDrbg ca_entropy(Bytes{0x31});
  crypto::ManufacturerCa manufacturer(ca_entropy);
  accel::GuardNnDevice device("guardnn-update-demo", manufacturer, dram,
                              Bytes{0x32});
  host::RemoteUser user(manufacturer.public_key(), Bytes{0x33});
  host::HostScheduler scheduler(device);

  if (!user.attest_device(device.get_pk())) return 1;
  if (!user.complete_session(device.init_session(user.begin_session(), true)))
    return 1;

  // Network: on-device 2x downscale preprocessing (as matmul), then a conv
  // classifier over the 8x8 result.
  host::FuncNetwork net;
  net.in_c = 1;
  net.in_h = 16;
  net.in_w = 16;
  host::FuncLayer preprocess;
  preprocess.kind = accel::ForwardOp::Kind::kFc;
  preprocess.out_c = 8 * 8;  // 1x8x8 flattened
  preprocess.requant_shift = 2;  // divide by 4 = averaging
  preprocess.weights = downscale_matrix(1, 16, 16);
  net.layers.push_back(preprocess);
  // Fc output is 64x1x1; treat as 64-feature vector into a classifier.
  net.layers.push_back({accel::ForwardOp::Kind::kRelu, 0, 0, 1, 0, 0, {}});
  net.layers.push_back({accel::ForwardOp::Kind::kFc, 10, 0, 1, 0, 6,
                        random_bytes(rng, 10 * 64)});

  host::ExecutionPlan plan = host::HostScheduler::compile(net);
  functional::Tensor image(1, 16, 16);
  for (auto& v : image.data())
    v = static_cast<i8>(static_cast<int>(rng.next_below(256)) - 128);
  const Bytes image_bytes(image.bytes().begin(), image.bytes().end());

  if (device.set_weight(user.seal(plan.weight_blob), plan.weight_base) !=
      accel::DeviceStatus::kOk)
    return 1;
  if (device.set_input(user.seal(image_bytes), plan.input_addr) !=
      accel::DeviceStatus::kOk)
    return 1;
  scheduler.note_input();
  if (scheduler.execute(plan) != accel::DeviceStatus::kOk) return 1;
  crypto::SealedRecord sealed;
  if (device.export_output(plan.output_addr, plan.output_bytes, sealed) !=
      accel::DeviceStatus::kOk)
    return 1;
  const auto v1 = user.open_output(sealed);
  if (!v1) return 1;
  const bool v1_ok = *v1 == host::reference_run(net, image);
  std::printf("[v1] on-device preprocessing + inference correct: %s\n",
              v1_ok ? "yes" : "NO");

  // --- Model update: fine-tuned classifier weights ------------------------
  const Bytes old_cipher = dram.read(plan.weight_base, plan.weight_blob.size());
  const u64 mac_base = accel::MemoryProtectionUnit::kMacRegionBase +
                       plan.weight_base / 512 * 8;
  const Bytes old_macs = dram.read(mac_base, plan.weight_blob.size() / 512 * 8 + 8);

  host::FuncNetwork net_v2 = net;
  net_v2.layers[2].weights = random_bytes(rng, 10 * 64);
  const host::ExecutionPlan plan_v2 = host::HostScheduler::compile(net_v2);
  if (device.set_weight(user.seal(plan_v2.weight_blob), plan_v2.weight_base) !=
      accel::DeviceStatus::kOk)
    return 1;
  std::printf("[v2] model updated (CTR_W is now %llu)\n",
              static_cast<unsigned long long>(device.vn_generator().ctr_w()));

  if (device.set_input(user.seal(image_bytes), plan_v2.input_addr) !=
      accel::DeviceStatus::kOk)
    return 1;
  scheduler.note_input();
  if (scheduler.execute(plan_v2) != accel::DeviceStatus::kOk) return 1;
  if (device.export_output(plan_v2.output_addr, plan_v2.output_bytes, sealed) !=
      accel::DeviceStatus::kOk)
    return 1;
  const auto v2 = user.open_output(sealed);
  if (!v2) return 1;
  const bool v2_ok = *v2 == host::reference_run(net_v2, image);
  std::printf("[v2] updated model runs correctly: %s (output %s v1)\n",
              v2_ok ? "yes" : "NO", *v2 == *v1 ? "==" : "!=");

  // --- Rollback attack: restore the old model's ciphertext + MACs ---------
  dram.write(plan.weight_base, old_cipher);
  dram.write(mac_base, old_macs);
  if (device.set_input(user.seal(image_bytes), plan_v2.input_addr) !=
      accel::DeviceStatus::kOk)
    return 1;
  scheduler.note_input();
  const accel::DeviceStatus rollback = scheduler.execute(plan_v2);
  const bool rollback_detected =
      rollback == accel::DeviceStatus::kIntegrityFailure;
  std::printf("[adversary] model rollback to v1 snapshot: %s\n",
              rollback_detected ? "DETECTED (MAC bound to CTR_W)"
                                : "undetected (broken!)");

  const bool ok = v1_ok && v2_ok && rollback_detected;
  std::printf("\nsecure model update demo: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
