// Private training on the GuardNN device (paper Section II-A: "a DNN
// accelerator can run both inference and training").
//
// A remote user fine-tunes a small MLP on the untrusted accelerator:
// forward, loss gradient (computed user-side from the exported logits),
// backward (FcDx/ReluDx/FcDw) and an on-device SGD update that bumps CTR_W.
// Weights, activations and *gradients* only ever appear encrypted in DRAM
// (gradients use feature VNs — paper Figure 2b). After several steps the
// user exports the fine-tuned model and the loss has dropped.
//
// Build & run:  ./build/examples/private_training
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "common/rng.h"
#include "functional/train_ops.h"
#include "host/scheduler.h"
#include "host/user_client.h"

using namespace guardnn;
using accel::DeviceStatus;
using accel::ForwardOp;

namespace {

constexpr u64 kWBase = 0x0;
constexpr u64 kXAddr = 0x4000'0000ULL;
constexpr u64 kF0 = 0x4800'0000ULL, kF1 = 0x4880'0000ULL, kF2 = 0x4900'0000ULL;
constexpr u64 kDy = 0x4980'0000ULL, kDa1 = 0x4A00'0000ULL, kDh1 = 0x4A80'0000ULL;
constexpr u64 kGradBlob = 0x4B00'0000ULL;

constexpr int kIn = 8, kHidden = 12, kOut = 4;
constexpr int kShift = 4, kGradShift = 5, kLrShift = 2;

void require(bool ok, const char* what) {
  if (!ok) {
    std::printf("FAILED: %s\n", what);
    std::exit(1);
  }
}

}  // namespace

int main() {
  accel::UntrustedMemory dram;
  crypto::HmacDrbg ca_entropy(Bytes{0x61});
  crypto::ManufacturerCa manufacturer(ca_entropy);
  accel::GuardNnDevice device("guardnn-train", manufacturer, dram, Bytes{0x62});
  host::RemoteUser user(manufacturer.public_key(), Bytes{0x63});

  require(user.attest_device(device.get_pk()), "attestation");
  require(user.complete_session(device.init_session(user.begin_session(), true)),
          "key exchange");

  // Model + private training sample (target class 0).
  Xoshiro256 rng(7);
  Bytes blob(1024, 0);
  for (std::size_t i = 0; i < static_cast<std::size_t>(kHidden * kIn); ++i)
    blob[i] = static_cast<u8>(static_cast<i8>(static_cast<int>(rng.next_below(9)) - 4));
  for (std::size_t i = 0; i < static_cast<std::size_t>(kOut * kHidden); ++i)
    blob[512 + i] =
        static_cast<u8>(static_cast<i8>(static_cast<int>(rng.next_below(9)) - 4));
  std::vector<i8> x(kIn);
  for (auto& v : x)
    v = static_cast<i8>(static_cast<int>(rng.next_below(17)) - 8);
  std::vector<i8> target(kOut, 0);
  target[0] = 24;

  require(device.set_weight(user.seal(blob), kWBase) == DeviceStatus::kOk,
          "SetWeight");

  auto ctr = [](u64 input_epoch, u64 fw) { return (input_epoch << 32) | fw; };

  int first_loss = -1, last_loss = -1;
  u64 epoch = 0;  // CTR_IN mirror
  for (int step = 0; step < 8; ++step) {
    // Import the sample (every step re-imports: CTR_IN advances).
    const Bytes x_bytes(reinterpret_cast<const u8*>(x.data()),
                        reinterpret_cast<const u8*>(x.data()) + x.size());
    require(device.set_input(user.seal(x_bytes), kXAddr) == DeviceStatus::kOk,
            "SetInput");
    ++epoch;

    // Forward.
    ForwardOp fc1;
    fc1.kind = ForwardOp::Kind::kFc;
    fc1.in_c = kIn; fc1.in_h = 1; fc1.in_w = 1;
    fc1.out_c = kHidden; fc1.requant_shift = kShift;
    fc1.input_addr = kXAddr; fc1.weight_addr = kWBase; fc1.output_addr = kF0;
    device.set_read_ctr(kXAddr, 512, ctr(epoch, 0));
    require(device.forward(fc1) == DeviceStatus::kOk, "fc1");

    ForwardOp relu;
    relu.kind = ForwardOp::Kind::kRelu;
    relu.in_c = kHidden; relu.in_h = 1; relu.in_w = 1;
    relu.input_addr = kF0; relu.output_addr = kF1;
    device.set_read_ctr(kF0, 512, ctr(epoch, 0));
    require(device.forward(relu) == DeviceStatus::kOk, "relu");

    ForwardOp fc2;
    fc2.kind = ForwardOp::Kind::kFc;
    fc2.in_c = kHidden; fc2.in_h = 1; fc2.in_w = 1;
    fc2.out_c = kOut; fc2.requant_shift = kShift;
    fc2.input_addr = kF1; fc2.weight_addr = kWBase + 512; fc2.output_addr = kF2;
    device.set_read_ctr(kF1, 512, ctr(epoch, 1));
    require(device.forward(fc2) == DeviceStatus::kOk, "fc2");

    // User computes the loss gradient from exported logits.
    device.set_read_ctr(kF2, 512, ctr(epoch, 2));
    crypto::SealedRecord sealed;
    require(device.export_output(kF2, kOut, sealed) == DeviceStatus::kOk,
            "export logits");
    const auto y = user.open_output(sealed);
    require(y.has_value(), "decrypt logits");
    std::vector<i8> dy(kOut);
    int loss = 0;
    for (int o = 0; o < kOut; ++o) {
      const int err = static_cast<i8>((*y)[static_cast<std::size_t>(o)]) -
                      target[static_cast<std::size_t>(o)];
      loss += std::abs(err);
      dy[static_cast<std::size_t>(o)] =
          static_cast<i8>(std::clamp(err, -127, 127));
    }
    if (step == 0) first_loss = loss;
    last_loss = loss;
    std::printf("step %d: |y - target| = %d\n", step, loss);

    // Import dy and run the backward pass.
    const Bytes dy_bytes(reinterpret_cast<const u8*>(dy.data()),
                         reinterpret_cast<const u8*>(dy.data()) + dy.size());
    require(device.set_input(user.seal(dy_bytes), kDy) == DeviceStatus::kOk,
            "import dy");
    ++epoch;

    ForwardOp fc2_dx;
    fc2_dx.kind = ForwardOp::Kind::kFcDx;
    fc2_dx.in_c = kOut; fc2_dx.in_h = 1; fc2_dx.in_w = 1;
    fc2_dx.aux_c = kHidden; fc2_dx.aux_h = 1; fc2_dx.aux_w = 1;
    fc2_dx.requant_shift = kGradShift;
    fc2_dx.input_addr = kDy; fc2_dx.weight_addr = kWBase + 512;
    fc2_dx.output_addr = kDa1;
    device.set_read_ctr(kDy, 512, ctr(epoch, 0));
    require(device.forward(fc2_dx) == DeviceStatus::kOk, "fc2 dX");

    ForwardOp relu_dx;
    relu_dx.kind = ForwardOp::Kind::kReluDx;
    relu_dx.in_c = kHidden; relu_dx.in_h = 1; relu_dx.in_w = 1;
    relu_dx.aux_c = kHidden; relu_dx.aux_h = 1; relu_dx.aux_w = 1;
    relu_dx.input_addr = kDa1; relu_dx.input2_addr = kF0;
    relu_dx.output_addr = kDh1;
    device.set_read_ctr(kDa1, 512, ctr(epoch, 0));
    device.set_read_ctr(kF0, 512, ctr(epoch - 1, 0));
    require(device.forward(relu_dx) == DeviceStatus::kOk, "relu dX");

    ForwardOp fc2_dw;
    fc2_dw.kind = ForwardOp::Kind::kFcDw;
    fc2_dw.in_c = kOut; fc2_dw.in_h = 1; fc2_dw.in_w = 1;
    fc2_dw.aux_c = kHidden; fc2_dw.aux_h = 1; fc2_dw.aux_w = 1;
    fc2_dw.requant_shift = kGradShift;
    fc2_dw.input_addr = kDy; fc2_dw.input2_addr = kF1;
    fc2_dw.output_addr = kGradBlob + 512;
    device.set_read_ctr(kDy, 512, ctr(epoch, 0));
    device.set_read_ctr(kF1, 512, ctr(epoch - 1, 1));
    require(device.forward(fc2_dw) == DeviceStatus::kOk, "fc2 dW");

    ForwardOp fc1_dw;
    fc1_dw.kind = ForwardOp::Kind::kFcDw;
    fc1_dw.in_c = kHidden; fc1_dw.in_h = 1; fc1_dw.in_w = 1;
    fc1_dw.aux_c = kIn; fc1_dw.aux_h = 1; fc1_dw.aux_w = 1;
    fc1_dw.requant_shift = kGradShift;
    fc1_dw.input_addr = kDh1; fc1_dw.input2_addr = kXAddr;
    fc1_dw.output_addr = kGradBlob;
    device.set_read_ctr(kDh1, 512, ctr(epoch, 1));
    device.set_read_ctr(kXAddr, 512, ctr(epoch - 1, 0));
    require(device.forward(fc1_dw) == DeviceStatus::kOk, "fc1 dW");

    // On-device SGD over the whole blob; CTR_W advances.
    ForwardOp update;
    update.kind = ForwardOp::Kind::kSgdUpdate;
    update.in_c = 1024; update.in_h = 1; update.in_w = 1;
    update.requant_shift = kLrShift;
    update.input_addr = kGradBlob; update.weight_addr = kWBase;
    device.set_read_ctr(kGradBlob, 512, ctr(epoch, 3));
    device.set_read_ctr(kGradBlob + 512, 512, ctr(epoch, 2));
    require(device.forward(update) == DeviceStatus::kOk, "SGD update");
  }

  // Retrieve the fine-tuned model.
  device.set_read_ctr(kWBase, 1024, device.vn_generator().ctr_w());
  crypto::SealedRecord sealed;
  require(device.export_output(kWBase, 1024, sealed) == DeviceStatus::kOk,
          "export model");
  const auto fine_tuned = user.open_output(sealed);
  require(fine_tuned.has_value(), "decrypt model");

  std::printf("\nCTR_W after training: %llu (1 import + 8 updates)\n",
              static_cast<unsigned long long>(device.vn_generator().ctr_w()));
  std::printf("loss: %d -> %d (%s)\n", first_loss, last_loss,
              last_loss < first_loss ? "improved" : "no improvement");
  std::printf("fine-tuned model differs from initial: %s\n",
              *fine_tuned != blob ? "yes" : "NO");
  const bool ok = last_loss < first_loss && *fine_tuned != blob;
  std::printf("\nprivate training demo: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
