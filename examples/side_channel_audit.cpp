// Side-channel audit — empirically checks the paper's claim (Table I) that
// GuardNN's memory access pattern and timing are independent of secret
// values. Runs the same network structure with different secret weights and
// inputs and compares (a) the exact MPU address trace, (b) the modeled
// latency, and — as a contrast — shows that *changing the structure* (which
// is public) does change the trace.
//
// Build & run:  ./build/examples/side_channel_audit
#include <cstdio>

#include "crypto/sha256.h"
#include "common/rng.h"
#include "host/scheduler.h"
#include "host/user_client.h"

using namespace guardnn;

namespace {

Bytes random_bytes(Xoshiro256& rng, std::size_t n) {
  Bytes out(n);
  for (auto& b : out)
    b = static_cast<u8>(static_cast<i8>(static_cast<int>(rng.next_below(256)) - 128));
  return out;
}

host::FuncNetwork cnn(Xoshiro256& rng, int conv_channels = 8) {
  host::FuncNetwork net;
  net.in_c = 3;
  net.in_h = 16;
  net.in_w = 16;
  net.layers.push_back({accel::ForwardOp::Kind::kConv, conv_channels, 3, 1, 1, 5,
                        random_bytes(rng, static_cast<std::size_t>(conv_channels) * 3 * 9)});
  net.layers.push_back({accel::ForwardOp::Kind::kRelu, 0, 0, 1, 0, 0, {}});
  net.layers.push_back({accel::ForwardOp::Kind::kMaxPool, 0, 2, 2, 0, 0, {}});
  net.layers.push_back(
      {accel::ForwardOp::Kind::kFc, 10, 0, 1, 0, 7,
       random_bytes(rng, static_cast<std::size_t>(10) * conv_channels * 8 * 8)});
  return net;
}

struct AuditResult {
  crypto::Sha256Digest trace_hash{};
  std::size_t trace_len = 0;
  double latency_ms = 0.0;
};

AuditResult run_once(const host::FuncNetwork& net, u64 input_seed) {
  accel::UntrustedMemory dram;
  crypto::HmacDrbg ca_entropy(Bytes{0x21});
  crypto::ManufacturerCa manufacturer(ca_entropy);
  accel::GuardNnDevice device("audit-dev", manufacturer, dram, Bytes{0x22});
  host::RemoteUser user(manufacturer.public_key(), Bytes{0x23});
  host::HostScheduler scheduler(device);

  if (!user.attest_device(device.get_pk())) std::abort();
  if (!user.complete_session(device.init_session(user.begin_session(), true)))
    std::abort();

  const host::ExecutionPlan plan = host::HostScheduler::compile(net);
  functional::Tensor input(net.in_c, net.in_h, net.in_w);
  Xoshiro256 rng(input_seed);
  for (auto& v : input.data())
    v = static_cast<i8>(static_cast<int>(rng.next_below(256)) - 128);
  const Bytes input_bytes(input.bytes().begin(), input.bytes().end());

  if (device.set_weight(user.seal(plan.weight_blob), plan.weight_base) !=
      accel::DeviceStatus::kOk)
    std::abort();
  if (device.set_input(user.seal(input_bytes), plan.input_addr) !=
      accel::DeviceStatus::kOk)
    std::abort();
  scheduler.note_input();
  if (scheduler.execute(plan) != accel::DeviceStatus::kOk) std::abort();
  crypto::SealedRecord sealed;
  if (device.export_output(plan.output_addr, plan.output_bytes, sealed) !=
      accel::DeviceStatus::kOk)
    std::abort();

  // Hash the (address, read/write) trace the adversary could observe.
  crypto::Sha256 hasher;
  for (const auto& [addr, is_write] : device.access_trace()) {
    u8 rec[9];
    store_be64(rec, addr);
    rec[8] = is_write ? 1 : 0;
    hasher.update(BytesView(rec, 9));
  }
  AuditResult result;
  result.trace_hash = hasher.finalize();
  result.trace_len = device.access_trace().size();
  result.latency_ms = device.elapsed_ms();
  return result;
}

std::string hex8(const crypto::Sha256Digest& digest) {
  return to_hex(BytesView(digest.data(), 8));
}

}  // namespace

int main() {
  Xoshiro256 wrng_a(1), wrng_b(2), wrng_c(3);
  const host::FuncNetwork secret_a = cnn(wrng_a);   // weights A
  const host::FuncNetwork secret_b = cnn(wrng_b);   // weights B (same shape)
  const host::FuncNetwork wider = cnn(wrng_c, 16);  // different *structure*

  const AuditResult a = run_once(secret_a, /*input_seed=*/100);
  const AuditResult b = run_once(secret_b, /*input_seed=*/200);
  const AuditResult c = run_once(wider, /*input_seed=*/100);

  std::printf("run A (weights A, input A): trace %zu accesses, hash %s..., "
              "latency %.3f ms\n",
              a.trace_len, hex8(a.trace_hash).c_str(), a.latency_ms);
  std::printf("run B (weights B, input B): trace %zu accesses, hash %s..., "
              "latency %.3f ms\n",
              b.trace_len, hex8(b.trace_hash).c_str(), b.latency_ms);
  std::printf("run C (wider network)     : trace %zu accesses, hash %s...\n",
              c.trace_len, hex8(c.trace_hash).c_str());

  const bool secrets_hidden =
      a.trace_hash == b.trace_hash && a.latency_ms == b.latency_ms;
  const bool structure_visible = a.trace_hash != c.trace_hash;
  std::printf("\nsecret values leak into the trace/timing : %s\n",
              secrets_hidden ? "no (traces identical)" : "YES (BROKEN)");
  std::printf("public structure visible (expected)      : %s\n",
              structure_visible ? "yes" : "no");
  return secrets_hidden && structure_visible ? 0 : 1;
}
