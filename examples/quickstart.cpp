// Quickstart: the shortest path through the GuardNN API.
//
//   1. "Fabricate" a GuardNN device (identity key + manufacturer certificate).
//   2. Remote user authenticates the device and opens an encrypted session.
//   3. User ships an encrypted 2-layer MLP and an encrypted input.
//   4. The untrusted host schedules execution; the device computes on
//      protected memory.
//   5. User decrypts the output and checks it against a local plaintext run.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "common/rng.h"
#include "host/scheduler.h"
#include "host/user_client.h"

using namespace guardnn;

int main() {
  // --- Manufacturing time -------------------------------------------------
  accel::UntrustedMemory dram;
  crypto::HmacDrbg ca_entropy(Bytes{0x01});
  crypto::ManufacturerCa manufacturer(ca_entropy);
  accel::GuardNnDevice device("guardnn-quickstart", manufacturer, dram,
                              Bytes{0x02});

  // --- Remote user: authenticate + key exchange ---------------------------
  host::RemoteUser user(manufacturer.public_key(), Bytes{0x03});
  if (!user.attest_device(device.get_pk())) {
    std::puts("device certificate rejected");
    return 1;
  }
  const crypto::AffinePoint user_share = user.begin_session();
  if (!user.complete_session(device.init_session(user_share, /*integrity=*/true))) {
    std::puts("key exchange failed");
    return 1;
  }
  std::puts("session established (ECDHE-ECDSA, integrity protection on)");

  // --- The user's model: 16 -> 8 -> 4 MLP with ReLU -----------------------
  host::FuncNetwork net;
  net.in_c = 1;
  net.in_h = 4;
  net.in_w = 4;
  Xoshiro256 rng(7);
  auto random_weights = [&](std::size_t n) {
    Bytes w(n);
    for (auto& b : w)
      b = static_cast<u8>(static_cast<i8>(static_cast<int>(rng.next_below(256)) - 128));
    return w;
  };
  net.layers.push_back(
      {accel::ForwardOp::Kind::kFc, 8, 0, 1, 0, 6, random_weights(8 * 16)});
  net.layers.push_back({accel::ForwardOp::Kind::kRelu, 0, 0, 1, 0, 0, {}});
  net.layers.push_back(
      {accel::ForwardOp::Kind::kFc, 4, 0, 1, 0, 6, random_weights(4 * 8)});

  functional::Tensor input(1, 4, 4);
  for (auto& v : input.data())
    v = static_cast<i8>(static_cast<int>(rng.next_below(256)) - 128);

  // --- Compile, import, execute, export -----------------------------------
  const host::ExecutionPlan plan = host::HostScheduler::compile(net);
  host::HostScheduler scheduler(device);

  if (device.set_weight(user.seal(plan.weight_blob), plan.weight_base) !=
      accel::DeviceStatus::kOk)
    return 1;
  const Bytes input_bytes(input.bytes().begin(), input.bytes().end());
  if (device.set_input(user.seal(input_bytes), plan.input_addr) !=
      accel::DeviceStatus::kOk)
    return 1;
  scheduler.note_input();
  if (scheduler.execute(plan) != accel::DeviceStatus::kOk) return 1;

  crypto::SealedRecord sealed;
  if (device.export_output(plan.output_addr, plan.output_bytes, sealed) !=
      accel::DeviceStatus::kOk)
    return 1;
  const auto output = user.open_output(sealed);
  if (!output) return 1;

  // --- Check against the plaintext reference ------------------------------
  const Bytes expected = host::reference_run(net, input);
  std::printf("encrypted output : ");
  for (u8 b : *output) std::printf("%4d", static_cast<i8>(b));
  std::printf("\nplaintext ref    : ");
  for (u8 b : expected) std::printf("%4d", static_cast<i8>(b));
  std::printf("\nmatch: %s\n", *output == expected ? "yes" : "NO");
  std::printf("modeled on-device latency: %.1f ms (MicroBlaze model)\n",
              device.elapsed_ms());
  return *output == expected ? 0 : 1;
}
