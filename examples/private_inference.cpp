// Private inference with full remote attestation — the paper's headline use
// case (Section II): a hospital-style user runs a convolutional classifier
// on a cloud accelerator it does not trust, then *proves* the right model
// ran on the right input.
//
// The example also plays the adversary: it scans DRAM for plaintext, flips a
// ciphertext bit to show integrity detection, and shows that a malicious
// schedule is caught by attestation.
//
// Build & run:  ./build/examples/private_inference
#include <algorithm>
#include <cstdio>

#include "common/rng.h"
#include "host/scheduler.h"
#include "host/user_client.h"

using namespace guardnn;

namespace {

Bytes random_bytes(Xoshiro256& rng, std::size_t n) {
  Bytes out(n);
  for (auto& b : out)
    b = static_cast<u8>(static_cast<i8>(static_cast<int>(rng.next_below(256)) - 128));
  return out;
}

/// LeNet-style: conv(6@5x5) -> relu -> pool -> conv(16@5x5) -> relu -> pool -> fc(10)
host::FuncNetwork lenet_like(Xoshiro256& rng) {
  host::FuncNetwork net;
  net.in_c = 1;
  net.in_h = 28;
  net.in_w = 28;
  net.layers.push_back({accel::ForwardOp::Kind::kConv, 6, 5, 1, 2, 6,
                        random_bytes(rng, 6 * 1 * 5 * 5)});
  net.layers.push_back({accel::ForwardOp::Kind::kRelu, 0, 0, 1, 0, 0, {}});
  net.layers.push_back({accel::ForwardOp::Kind::kMaxPool, 0, 2, 2, 0, 0, {}});
  net.layers.push_back({accel::ForwardOp::Kind::kConv, 16, 5, 1, 0, 7,
                        random_bytes(rng, 16 * 6 * 5 * 5)});
  net.layers.push_back({accel::ForwardOp::Kind::kRelu, 0, 0, 1, 0, 0, {}});
  net.layers.push_back({accel::ForwardOp::Kind::kMaxPool, 0, 2, 2, 0, 0, {}});
  net.layers.push_back({accel::ForwardOp::Kind::kFc, 10, 0, 1, 0, 8,
                        random_bytes(rng, 10 * 16 * 5 * 5)});
  return net;
}

}  // namespace

int main() {
  Xoshiro256 rng(2024);

  accel::UntrustedMemory dram;
  crypto::HmacDrbg ca_entropy(Bytes{0x11});
  crypto::ManufacturerCa manufacturer(ca_entropy);
  accel::GuardNnDevice device("guardnn-cloud-17", manufacturer, dram, Bytes{0x12});
  host::RemoteUser user(manufacturer.public_key(), Bytes{0x13});
  host::HostScheduler scheduler(device);

  // 1. Attestation + session.
  if (!user.attest_device(device.get_pk())) return 1;
  if (!user.complete_session(
          device.init_session(user.begin_session(), /*integrity=*/true)))
    return 1;
  std::puts("[user] device certificate verified; session keys derived");

  // 2. Ship the private model and a private "patient scan".
  const host::FuncNetwork net = lenet_like(rng);
  const host::ExecutionPlan plan = host::HostScheduler::compile(net);
  functional::Tensor scan(1, 28, 28);
  for (auto& v : scan.data())
    v = static_cast<i8>(static_cast<int>(rng.next_below(256)) - 128);
  const Bytes scan_bytes(scan.bytes().begin(), scan.bytes().end());

  if (device.set_weight(user.seal(plan.weight_blob), plan.weight_base) !=
      accel::DeviceStatus::kOk)
    return 1;
  if (device.set_input(user.seal(scan_bytes), plan.input_addr) !=
      accel::DeviceStatus::kOk)
    return 1;
  scheduler.note_input();
  std::printf("[user] imported %zu weight bytes + %zu input bytes (encrypted)\n",
              plan.weight_blob.size(), scan_bytes.size());

  // 3. Adversary scans DRAM for the plaintext model/input.
  const Bytes weight_window(plan.weight_blob.begin(), plan.weight_blob.begin() + 48);
  const Bytes region = dram.read(plan.weight_base, 1 << 20);
  const bool leaked =
      std::search(region.begin(), region.end(), weight_window.begin(),
                  weight_window.end()) != region.end();
  std::printf("[adversary] plaintext weights visible in DRAM: %s\n",
              leaked ? "YES (BROKEN!)" : "no (ciphertext only)");

  // 4. Execute and export.
  if (scheduler.execute(plan) != accel::DeviceStatus::kOk) return 1;
  crypto::SealedRecord sealed;
  if (device.export_output(plan.output_addr, plan.output_bytes, sealed) !=
      accel::DeviceStatus::kOk)
    return 1;
  const auto logits = user.open_output(sealed);
  if (!logits) return 1;

  const Bytes expected = host::reference_run(net, scan);
  std::printf("[user] class scores match local reference: %s\n",
              *logits == expected ? "yes" : "NO");

  // 5. Remote attestation: SignOutput over input/weights/output/instructions.
  user.expect_weights(plan.weight_blob);
  user.expect_input(scan_bytes);
  user.expect_output(*logits);
  host::mirror_attestation(user, plan);
  accel::SignOutputResponse report;
  if (device.sign_output(report) != accel::DeviceStatus::kOk) return 1;
  std::printf("[user] attestation report verifies: %s\n",
              user.verify_attestation(report) ? "yes" : "NO");

  // 6. Adversary now flips one bit of ciphertext; the next session's read
  // fails integrity verification and the device refuses to continue. The
  // fresh session lives in its own session-table slot — and therefore its
  // own DRAM partition, which is where the adversary strikes.
  const accel::InitSessionResponse second =
      device.init_session(user.begin_session(), true);
  if (!user.complete_session(second)) return 1;
  host::HostScheduler fresh_scheduler(device, second.session_id);
  if (device.set_weight(user.seal(plan.weight_blob), plan.weight_base) !=
      accel::DeviceStatus::kOk)
    return 1;
  if (device.set_input(user.seal(scan_bytes), plan.input_addr) !=
      accel::DeviceStatus::kOk)
    return 1;
  fresh_scheduler.note_input();
  dram.tamper(accel::GuardNnDevice::partition_base(second.session_id) +
                  plan.weight_addrs[0] + 3,
              0x04);
  const accel::DeviceStatus tampered = fresh_scheduler.execute(plan);
  std::printf("[device] execution after DRAM tampering: %s\n",
              tampered == accel::DeviceStatus::kIntegrityFailure
                  ? "integrity failure detected, session aborted"
                  : "UNDETECTED (broken!)");

  const bool ok = !leaked && *logits == expected &&
                  tampered == accel::DeviceStatus::kIntegrityFailure;
  std::printf("\nprivate inference demo: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
