// Multi-tenant serving walkthrough: three remote users share one GuardNN
// device fleet behind an InferenceServer.
//
//   1. the server fabricates a 2-device fleet and starts 2 workers;
//   2. three tenants connect (attest the device, ECDHE InitSession — each
//      gets its own session-table slot, keys and DRAM partition);
//   3. tenants A and B serve the *same* model (the compiled ExecutionPlan is
//      shared through the model-hash cache); tenant C brings its own;
//   4. each tenant runs encrypted inferences concurrently and verifies the
//      outputs and the remote-attestation report;
//   5. tenant B disconnects — CloseSession zeroizes its slot keys — and a
//      replayed stale-session instruction is rejected with kNoSession.
#include <cstdio>
#include <future>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "serving/inference_server.h"

using namespace guardnn;
using host::FuncLayer;
using host::FuncNetwork;

namespace {

void require(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "FAILED: %s\n", what);
    std::exit(1);
  }
}

Bytes random_weights(std::size_t n, u64 seed) {
  Xoshiro256 rng(seed);
  Bytes out(n);
  for (auto& b : out)
    b = static_cast<u8>(static_cast<i8>(static_cast<int>(rng.next_below(256)) - 128));
  return out;
}

FuncNetwork make_model(u64 seed) {
  FuncNetwork net;
  net.in_c = 3;
  net.in_h = 8;
  net.in_w = 8;
  net.layers.push_back(FuncLayer{accel::ForwardOp::Kind::kConv, 4, 3, 1, 1, 4,
                                 random_weights(4 * 3 * 3 * 3, seed)});
  net.layers.push_back(FuncLayer{accel::ForwardOp::Kind::kRelu, 0, 0, 1, 0, 0, {}});
  net.layers.push_back(FuncLayer{accel::ForwardOp::Kind::kFc, 10, 0, 1, 0, 5,
                                 random_weights(10 * 4 * 8 * 8, seed + 1)});
  return net;
}

struct Tenant {
  const char* name;
  std::unique_ptr<host::RemoteUser> user;
  serving::TenantId id = 0;
  serving::ModelHandle model;
  FuncNetwork net;
};

}  // namespace

int main() {
  std::printf("=== GuardNN multi-tenant serving walkthrough ===\n\n");

  // The manufacturer CA every user pins, and the serving stack.
  crypto::HmacDrbg ca_drbg(Bytes{0xca});
  crypto::ManufacturerCa ca(ca_drbg);
  serving::ServerConfig config;
  config.num_devices = 2;
  config.num_workers = 2;
  serving::InferenceServer server(ca, config, Bytes{0x01, 0x02});
  std::printf("[server] fleet of %zu devices, 2 workers\n", server.device_count());

  // --- Tenants connect ------------------------------------------------------
  const FuncNetwork shared_model = make_model(100);
  Tenant tenants[3] = {{"tenant-A", nullptr, 0, {}, shared_model},
                       {"tenant-B", nullptr, 0, {}, shared_model},
                       {"tenant-C", nullptr, 0, {}, make_model(200)}};
  for (std::size_t i = 0; i < 3; ++i) {
    Tenant& t = tenants[i];
    t.user = std::make_unique<host::RemoteUser>(ca.public_key(),
                                                Bytes{static_cast<u8>(0x10 + i)});
    const crypto::AffinePoint share = t.user->begin_session();
    const auto connected = server.connect(share, /*integrity=*/true);
    require(connected.tenant != 0, "connect");
    require(t.user->attest_device(server.get_pk(connected.device_index)),
            "device certificate chains to the pinned CA");
    require(t.user->complete_session(connected.response),
            "signed ECDHE response verifies");
    t.id = connected.tenant;
    std::printf("[%s] session 0x%llx on device %zu (attested)\n", t.name,
                static_cast<unsigned long long>(t.user->session_id()),
                connected.device_index);

    t.model = server.register_model(t.net);
    require(server.load_model(t.id, t.model,
                              t.user->seal(t.model.plan->weight_blob)) ==
                accel::DeviceStatus::kOk,
            "sealed weights import");
  }
  require(tenants[0].model.plan.get() == tenants[1].model.plan.get(),
          "A and B share one cached ExecutionPlan");
  std::printf("[server] A and B share one compiled plan (model-hash cache)\n\n");

  // --- Concurrent encrypted inferences -------------------------------------
  for (Tenant& t : tenants) {
    functional::Tensor input(t.net.in_c, t.net.in_h, t.net.in_w, t.net.bits);
    Xoshiro256 rng(0x900 + t.id);
    for (auto& v : input.data())
      v = static_cast<i8>(static_cast<int>(rng.next_below(256)) - 128);
    const Bytes input_bytes(input.bytes().begin(), input.bytes().end());

    auto future = server.submit_async(t.id, t.user->seal(input_bytes),
                                      /*attest=*/true);
    serving::InferenceResult result = future.get();
    require(result.outcome == serving::RequestOutcome::kOk, "inference");
    const auto output = t.user->open_output(result.sealed_output);
    require(output.has_value(), "output record opens under the session key");
    require(*output == host::reference_run(t.net, input),
            "encrypted output matches the plaintext reference");

    // Attestation: the user replays its intended instruction stream.
    t.user->expect_weights(t.model.plan->weight_blob);
    t.user->expect_input(input_bytes);
    t.user->expect_output(*output);
    u8 addr[8];
    store_be64(addr, t.model.plan->weight_base);
    t.user->expect_instruction(accel::Opcode::kSetWeight, BytesView(addr, 8));
    store_be64(addr, t.model.plan->input_addr);
    t.user->expect_instruction(accel::Opcode::kSetInput, BytesView(addr, 8));
    for (const auto& op : t.model.plan->ops)
      t.user->expect_instruction(accel::Opcode::kForward, op.serialize());
    u8 operand[16];
    store_be64(operand, t.model.plan->output_addr);
    store_be64(operand + 8, t.model.plan->output_bytes);
    t.user->expect_instruction(accel::Opcode::kExportOutput, BytesView(operand, 16));
    require(result.attested && t.user->verify_attestation(result.report),
            "attestation report verifies");
    std::printf("[%s] inference ok: output + attestation verified "
                "(queue %.2f ms, service %.2f ms)\n",
                t.name, result.queue_ms, result.service_ms);
  }

  // --- CloseSession and stale-session replay --------------------------------
  Tenant& b = tenants[1];
  const accel::SessionId stale = b.user->session_id();
  const auto [device_index, sid] = server.tenant_session(b.id);
  require(sid == stale, "server tracks B's session");
  const crypto::SealedRecord stale_record = b.user->seal(Bytes(512, 0x3c));
  require(server.disconnect(b.id) == accel::DeviceStatus::kOk,
          "CloseSession (keys zeroized in the slot)");
  require(server.device(device_index).set_weight(stale, stale_record, 0) ==
              accel::DeviceStatus::kNoSession,
          "stale session id answers kNoSession");
  std::printf("\n[%s] disconnected; replay into the dead session rejected "
              "(kNoSession)\n", b.name);

  const serving::ServerStats stats = server.stats();
  std::printf("\n[server] %llu requests in %llu batches, %llu rejected\n",
              static_cast<unsigned long long>(stats.requests),
              static_cast<unsigned long long>(stats.batches),
              static_cast<unsigned long long>(stats.rejected));
  std::printf("\nAll multi-tenant serving invariants held.\n");
  return 0;
}
