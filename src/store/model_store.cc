#include "store/model_store.h"

#include <algorithm>
#include <filesystem>
#include <fstream>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#define GUARDNN_STORE_HAVE_FSYNC 1
#endif

namespace guardnn::store {

namespace fs = std::filesystem;

// --- InMemoryBackend ---------------------------------------------------------

bool InMemoryBackend::save(const std::string& key, BytesView bytes) {
  entries_[key] = Bytes(bytes.begin(), bytes.end());
  return true;
}

std::optional<Bytes> InMemoryBackend::load(const std::string& key) const {
  auto it = entries_.find(key);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

std::vector<std::string> InMemoryBackend::list() const {
  std::vector<std::string> keys;
  keys.reserve(entries_.size());
  for (const auto& [key, bytes] : entries_) keys.push_back(key);
  return keys;
}

bool InMemoryBackend::remove(const std::string& key) {
  return entries_.erase(key) > 0;
}

// --- DirectoryBackend --------------------------------------------------------

DirectoryBackend::DirectoryBackend(std::string directory)
    : directory_(std::move(directory)) {
  std::error_code ec;
  fs::create_directories(directory_, ec);  // best effort; save() re-checks
}

bool DirectoryBackend::save(const std::string& key, BytesView bytes) {
  std::error_code ec;
  fs::create_directories(directory_, ec);
#ifdef GUARDNN_STORE_HAVE_FSYNC
  // Durable write: temp file → write → fsync → rename → fsync(directory).
  // ModelStore indexes a replica only after save() returns true, so a crash
  // mid-checkpoint can never leave a truncated-but-indexed blob — before
  // this, truncation was only caught at unseal time, after the old
  // checkpoint had already been replaced in the index.
  const fs::path final_path = fs::path(directory_) / key;
  const fs::path tmp_path = fs::path(directory_) / (key + ".tmp");
  const int fd = ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  std::size_t written = 0;
  while (written < bytes.size()) {
    const ::ssize_t n =
        ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n <= 0) {
      ::close(fd);
      fs::remove(tmp_path, ec);
      return false;
    }
    written += static_cast<std::size_t>(n);
  }
  const bool synced = ::fsync(fd) == 0;
  const bool closed = ::close(fd) == 0;  // close unconditionally: no fd leak
  if (!synced || !closed) {
    fs::remove(tmp_path, ec);
    return false;
  }
  fs::rename(tmp_path, final_path, ec);
  if (ec) {
    fs::remove(tmp_path, ec);
    return false;
  }
  // Persist the rename itself: fsync the containing directory.
  if (const int dirfd = ::open(directory_.c_str(), O_RDONLY); dirfd >= 0) {
    ::fsync(dirfd);
    ::close(dirfd);
  }
  return true;
#else
  std::ofstream out(fs::path(directory_) / key,
                    std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  return out.good();
#endif
}

std::optional<Bytes> DirectoryBackend::load(const std::string& key) const {
  std::ifstream in(fs::path(directory_) / key, std::ios::binary);
  if (!in) return std::nullopt;
  Bytes bytes((std::istreambuf_iterator<char>(in)),
              std::istreambuf_iterator<char>());
  if (!in.good() && !in.eof()) return std::nullopt;
  return bytes;
}

std::vector<std::string> DirectoryBackend::list() const {
  std::vector<std::string> keys;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(directory_, ec)) {
    if (entry.is_regular_file(ec)) keys.push_back(entry.path().filename().string());
  }
  return keys;
}

bool DirectoryBackend::remove(const std::string& key) {
  std::error_code ec;
  return fs::remove(fs::path(directory_) / key, ec);
}

// --- ModelStore --------------------------------------------------------------

ModelStore::ModelStore(std::unique_ptr<StoreBackend> backend)
    : backend_(backend ? std::move(backend)
                       : std::make_unique<InMemoryBackend>()) {
  std::lock_guard<std::mutex> lock(mu_);
  reindex_locked();
}

std::string ModelStore::key_for(const ContentId& content,
                                const BindingId& binding) {
  // Full content id (the logical model) + a binding prefix long enough that
  // a collision would imply a SHA-256 collision prefix across the fleet.
  return to_hex(BytesView(content.data(), content.size())) + "-" +
         to_hex(BytesView(binding.data(), 8)) + ".gnnblob";
}

void ModelStore::reindex_locked() {
  for (const std::string& key : backend_->list()) {
    // Orphaned temp files from a save() interrupted before its rename are
    // not replicas; never index one.
    if (key.size() >= 4 && key.compare(key.size() - 4, 4, ".tmp") == 0)
      continue;
    const std::optional<Bytes> bytes = backend_->load(key);
    if (!bytes) continue;
    const std::optional<SealedBlob> blob = SealedBlob::deserialize(*bytes);
    if (!blob) continue;  // untrusted storage: skip, never trust
    index_[blob->header.content_id][blob->header.binding_id] = key;
    stats_.bytes_stored += bytes->size();
  }
}

std::optional<ContentId> ModelStore::put(const SealedBlob& blob) {
  // Round-trip through the wire format so only storable blobs are indexed
  // (and what get() returns later is exactly what was persisted).
  const Bytes bytes = blob.serialize();
  if (!SealedBlob::deserialize(bytes)) return std::nullopt;

  std::lock_guard<std::mutex> lock(mu_);
  auto& replicas = index_[blob.header.content_id];
  auto it = replicas.find(blob.header.binding_id);
  if (it != replicas.end()) {
    stats_.dedup_hits += 1;
    touch_locked(blob.header.content_id, blob.header.binding_id);
    if (metrics_.dedup_hits) metrics_.dedup_hits->inc();
    return blob.header.content_id;
  }
  const std::string key = key_for(blob.header.content_id, blob.header.binding_id);
  if (!backend_->save(key, bytes)) {
    if (replicas.empty()) index_.erase(blob.header.content_id);
    return std::nullopt;
  }
  replicas[blob.header.binding_id] = key;
  stats_.puts += 1;
  stats_.bytes_stored += bytes.size();
  touch_locked(blob.header.content_id, blob.header.binding_id);
  if (metrics_.puts) metrics_.puts->inc();
  if (metrics_.stored_bytes)
    metrics_.stored_bytes->set(static_cast<double>(stats_.bytes_stored));
  return blob.header.content_id;
}

std::optional<SealedBlob> ModelStore::get(const ContentId& content,
                                          const BindingId& binding) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto miss = [this]() -> std::optional<SealedBlob> {
    stats_.get_misses += 1;
    if (metrics_.get_misses) metrics_.get_misses->inc();
    return std::nullopt;
  };
  auto it = index_.find(content);
  if (it == index_.end()) return miss();
  auto replica = it->second.find(binding);
  if (replica == it->second.end()) return miss();
  const std::optional<Bytes> bytes = backend_->load(replica->second);
  if (!bytes) return miss();
  std::optional<SealedBlob> blob = SealedBlob::deserialize(*bytes);
  if (!blob) return miss();
  stats_.get_hits += 1;
  touch_locked(content, binding);
  if (metrics_.get_hits) metrics_.get_hits->inc();
  return blob;
}

void ModelStore::touch_locked(const ContentId& content,
                              const BindingId& binding) const {
  AccessInfo& info = access_[content];
  info.count += 1;
  info.last_touch[binding] = ++access_clock_;
}

std::vector<ContentId> ModelStore::hot_contents(std::size_t limit) const {
  std::lock_guard<std::mutex> lock(mu_);
  // Rank by access count, hottest first; contents never accessed since the
  // store opened (reindexed checkpoints) rank last but are still eligible.
  std::vector<std::pair<u64, ContentId>> ranked;
  ranked.reserve(index_.size());
  for (const auto& [content, replicas] : index_) {
    auto it = access_.find(content);
    ranked.emplace_back(it != access_.end() ? it->second.count : 0, content);
  }
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const auto& a, const auto& b) { return a.first > b.first; });
  std::vector<ContentId> out;
  out.reserve(std::min(limit, ranked.size()));
  for (const auto& [count, content] : ranked) {
    if (out.size() >= limit) break;
    out.push_back(content);
  }
  return out;
}

std::optional<BindingId> ModelStore::preferred_binding(
    const ContentId& content) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(content);
  if (it == index_.end() || it->second.empty()) return std::nullopt;
  const auto access = access_.find(content);
  std::optional<BindingId> best;
  u64 best_touch = 0;
  for (const auto& [binding, key] : it->second) {
    u64 touch = 0;
    if (access != access_.end()) {
      auto t = access->second.last_touch.find(binding);
      if (t != access->second.last_touch.end()) touch = t->second;
    }
    if (!best || touch > best_touch) {
      best = binding;
      best_touch = touch;
    }
  }
  return best;
}

bool ModelStore::contains(const ContentId& content,
                          const BindingId& binding) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(content);
  return it != index_.end() && it->second.count(binding) > 0;
}

std::vector<BindingId> ModelStore::bindings(const ContentId& content) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<BindingId> out;
  auto it = index_.find(content);
  if (it == index_.end()) return out;
  out.reserve(it->second.size());
  for (const auto& [binding, key] : it->second) out.push_back(binding);
  return out;
}

std::vector<ContentId> ModelStore::contents() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ContentId> out;
  out.reserve(index_.size());
  for (const auto& [content, replicas] : index_) out.push_back(content);
  return out;
}

bool ModelStore::erase(const ContentId& content, const BindingId& binding) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(content);
  if (it == index_.end()) return false;
  auto replica = it->second.find(binding);
  if (replica == it->second.end()) return false;
  if (const std::optional<Bytes> bytes = backend_->load(replica->second)) {
    stats_.bytes_stored -=
        std::min<u64>(stats_.bytes_stored, bytes->size());
    if (metrics_.stored_bytes)
      metrics_.stored_bytes->set(static_cast<double>(stats_.bytes_stored));
  }
  backend_->remove(replica->second);
  it->second.erase(replica);
  if (auto access = access_.find(content); access != access_.end()) {
    access->second.last_touch.erase(binding);
    if (it->second.empty()) access_.erase(access);
  }
  if (it->second.empty()) index_.erase(it);
  return true;
}

std::size_t ModelStore::replica_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& [content, replicas] : index_) n += replicas.size();
  return n;
}

StoreStats ModelStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void ModelStore::bind_metrics(obs::MetricRegistry& registry) {
  std::lock_guard<std::mutex> lock(mu_);
  metrics_.puts = &registry.counter("store_puts_total");
  metrics_.dedup_hits = &registry.counter("store_dedup_hits_total");
  metrics_.get_hits = &registry.counter("store_get_hits_total");
  metrics_.get_misses = &registry.counter("store_get_misses_total");
  metrics_.stored_bytes = &registry.gauge("store_stored_bytes");
  // Re-opened stores (directory backend) start with indexed bytes.
  metrics_.stored_bytes->set(static_cast<double>(stats_.bytes_stored));
}

}  // namespace guardnn::store
