#include "store/model_package.h"

#include <stdexcept>

namespace guardnn::store {

namespace {
constexpr std::size_t kFixedBytes = 4 + 2 + 2 + 8;  // magic, ver, pad, weight_vn
}  // namespace

Bytes ModelPackage::serialize() const {
  Bytes out;
  out.reserve(kFixedBytes + 16 + descriptor.size() + weights.size());
  out.resize(kFixedBytes);
  u8* p = out.data();
  store_be32(p, kModelPackageMagic);
  p += 4;
  p[0] = static_cast<u8>(kModelPackageVersion >> 8);
  p[1] = static_cast<u8>(kModelPackageVersion);
  p[2] = 0;
  p[3] = 0;
  p += 4;
  store_be64(p, weight_vn);

  u8 len[8];
  store_be64(len, descriptor.size());
  out.insert(out.end(), len, len + 8);
  out.insert(out.end(), descriptor.begin(), descriptor.end());
  store_be64(len, weights.size());
  out.insert(out.end(), len, len + 8);
  out.insert(out.end(), weights.begin(), weights.end());
  return out;
}

ContentId package_content_id(BytesView descriptor, BytesView weights) {
  crypto::Sha256 hasher;
  u8 len[8];
  store_be64(len, descriptor.size());
  hasher.update(BytesView(len, 8));
  hasher.update(descriptor);
  hasher.update(weights);
  return hasher.finalize();
}

ContentId ModelPackage::content_id() const {
  return package_content_id(descriptor, weights);
}

std::optional<ModelPackage> ModelPackage::parse(BytesView bytes) {
  // One parser for the wire format: the owning form copies out of the
  // zero-copy view, so the two can never diverge reject-for-reject.
  const std::optional<ModelPackageView> view = ModelPackageView::parse(bytes);
  if (!view) return std::nullopt;
  ModelPackage package;
  package.descriptor.assign(view->descriptor.begin(), view->descriptor.end());
  package.weights.assign(view->weights.begin(), view->weights.end());
  package.weight_vn = view->weight_vn;
  return package;
}

std::optional<ModelPackageView> ModelPackageView::parse(BytesView bytes) {
  if (bytes.size() < kFixedBytes + 16) return std::nullopt;
  const u8* p = bytes.data();
  if (load_be32(p) != kModelPackageMagic) return std::nullopt;
  p += 4;
  const u16 version = static_cast<u16>((u16(p[0]) << 8) | p[1]);
  if (version != kModelPackageVersion) return std::nullopt;
  p += 4;

  ModelPackageView view;
  view.weight_vn = load_be64(p);
  p += 8;

  std::size_t remaining = bytes.size() - kFixedBytes;
  auto take_sized = [&](BytesView& out) {
    if (remaining < 8) return false;
    const u64 len = load_be64(p);
    p += 8;
    remaining -= 8;
    if (len > remaining) return false;
    out = BytesView(len ? p : nullptr, len);
    p += len;
    remaining -= len;
    return true;
  };
  if (!take_sized(view.descriptor)) return std::nullopt;
  if (!take_sized(view.weights)) return std::nullopt;
  if (remaining != 0) return std::nullopt;  // no trailing garbage
  if (view.weights.empty()) return std::nullopt;
  return view;
}

u64 serialized_package_bytes(u64 descriptor_bytes, u64 weight_bytes) {
  return kFixedBytes + 8 + descriptor_bytes + 8 + weight_bytes;
}

MutBytesView layout_package(MutBytesView out, BytesView descriptor,
                            u64 weight_bytes, u64 weight_vn) {
  if (out.size() != serialized_package_bytes(descriptor.size(), weight_bytes))
    throw std::invalid_argument("layout_package: buffer size mismatch");
  u8* p = out.data();
  store_be32(p, kModelPackageMagic);
  p += 4;
  p[0] = static_cast<u8>(kModelPackageVersion >> 8);
  p[1] = static_cast<u8>(kModelPackageVersion);
  p[2] = 0;
  p[3] = 0;
  p += 4;
  store_be64(p, weight_vn);
  p += 8;
  store_be64(p, descriptor.size());
  p += 8;
  std::copy(descriptor.begin(), descriptor.end(), p);
  p += descriptor.size();
  store_be64(p, weight_bytes);
  p += 8;
  return MutBytesView(p, weight_bytes);
}

}  // namespace guardnn::store
