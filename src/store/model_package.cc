#include "store/model_package.h"

namespace guardnn::store {

namespace {
constexpr std::size_t kFixedBytes = 4 + 2 + 2 + 8;  // magic, ver, pad, weight_vn
}  // namespace

Bytes ModelPackage::serialize() const {
  Bytes out;
  out.reserve(kFixedBytes + 16 + descriptor.size() + weights.size());
  out.resize(kFixedBytes);
  u8* p = out.data();
  store_be32(p, kModelPackageMagic);
  p += 4;
  p[0] = static_cast<u8>(kModelPackageVersion >> 8);
  p[1] = static_cast<u8>(kModelPackageVersion);
  p[2] = 0;
  p[3] = 0;
  p += 4;
  store_be64(p, weight_vn);

  u8 len[8];
  store_be64(len, descriptor.size());
  out.insert(out.end(), len, len + 8);
  out.insert(out.end(), descriptor.begin(), descriptor.end());
  store_be64(len, weights.size());
  out.insert(out.end(), len, len + 8);
  out.insert(out.end(), weights.begin(), weights.end());
  return out;
}

ContentId ModelPackage::content_id() const {
  crypto::Sha256 hasher;
  u8 len[8];
  store_be64(len, descriptor.size());
  hasher.update(BytesView(len, 8));
  hasher.update(descriptor);
  hasher.update(weights);
  return hasher.finalize();
}

std::optional<ModelPackage> ModelPackage::parse(BytesView bytes) {
  if (bytes.size() < kFixedBytes + 16) return std::nullopt;
  const u8* p = bytes.data();
  if (load_be32(p) != kModelPackageMagic) return std::nullopt;
  p += 4;
  const u16 version = static_cast<u16>((u16(p[0]) << 8) | p[1]);
  if (version != kModelPackageVersion) return std::nullopt;
  p += 4;

  ModelPackage package;
  package.weight_vn = load_be64(p);
  p += 8;

  std::size_t remaining = bytes.size() - kFixedBytes;
  auto take_sized = [&](Bytes& out) {
    if (remaining < 8) return false;
    const u64 len = load_be64(p);
    p += 8;
    remaining -= 8;
    if (len > remaining) return false;
    out.assign(p, p + len);
    p += len;
    remaining -= len;
    return true;
  };
  if (!take_sized(package.descriptor)) return std::nullopt;
  if (!take_sized(package.weights)) return std::nullopt;
  if (remaining != 0) return std::nullopt;  // no trailing garbage
  if (package.weights.empty()) return std::nullopt;
  return package;
}

}  // namespace guardnn::store
