// Device-bound sealed blob format — the persistence primitive of the sealed
// model store (SEAL-style, cf. Zuo et al.: model weights sealed under
// device-held keys so they can live in untrusted storage).
//
// A SealedBlob packages an opaque plaintext payload (a serialized
// ModelPackage) as:
//   * AES-128-CTR ciphertext, encrypted per 64 KiB chunk under a per-blob
//     key; every chunk owns a disjoint counter range, and the per-blob keys
//     are derived from the sealing domain's root key plus a random nonce
//     carried in the header, so no two blobs ever share keystream;
//   * one full AES-CMAC tag per chunk over (chunk index || ciphertext);
//   * a chained CMAC over (serialized header || all chunk MACs) that makes
//     the header fields — format version, binding id, content id, sizes —
//     and the chunk-MAC list tamper-evident as one unit;
//   * a SHA-256 content id over the *plaintext*, checked after decryption
//     (defense in depth) and used by the ModelStore for deduplication: two
//     devices sealing the same model produce different ciphertext but the
//     same content id;
//   * a format version field; unsealing rejects anything but the current
//     version before touching key material (downgrade fails closed).
//
// Binding: the root key never leaves the sealing device, so a blob can only
// be opened by the device whose `binding_id` (hash of its certified public
// key) it carries. Cross-device provisioning re-wraps the payload under an
// ECDHE transport key between two attested devices (see accel::GuardNnDevice
// export_for_device / provision_finish) — the host only ever relays
// ciphertext.
//
// Everything here is host-visible: a SealedBlob is meant to sit in untrusted
// storage. Unsealing is fail-closed and coarse — no error distinguishes
// *which* byte was tampered with, and a failed unseal never emits plaintext.
#pragma once

#include <optional>
#include <vector>

#include "common/types.h"
#include "crypto/aes128.h"
#include "crypto/sha256.h"

namespace guardnn::store {

inline constexpr u32 kSealedBlobMagic = 0x474E'5342;  // "GNSB"
/// Current format version. v1 (unchained per-chunk MACs) was retired before
/// release; unseal rejects it — the downgrade test pins that behaviour.
inline constexpr u16 kSealedBlobVersion = 2;
inline constexpr u64 kSealChunkBytes = 64 * 1024;

/// Content identity: SHA-256 over the plaintext payload.
using ContentId = crypto::Sha256Digest;
/// Sealing-domain identity: SHA-256 over the device's certified public key.
using BindingId = crypto::Sha256Digest;

struct SealedBlobHeader {
  u16 version = kSealedBlobVersion;
  BindingId binding_id{};
  ContentId content_id{};
  crypto::AesBlock nonce{};  ///< Per-blob key-derivation nonce (public).
  u64 plaintext_bytes = 0;
  u64 chunk_bytes = kSealChunkBytes;

  u64 chunk_count() const {
    return chunk_bytes == 0 ? 0 : (plaintext_bytes + chunk_bytes - 1) / chunk_bytes;
  }

  /// Fixed-layout serialization — exactly the bytes the chain MAC covers.
  Bytes serialize() const;
};

struct SealedBlob {
  SealedBlobHeader header;
  Bytes ciphertext;  ///< Same length as the plaintext (CTR mode).
  std::vector<crypto::AesBlock> chunk_macs;  ///< One per chunk.
  crypto::AesBlock chain_mac{};  ///< CMAC over (header || chunk MACs).

  ContentId content_id() const { return header.content_id; }

  /// Wire serialization for untrusted storage backends.
  Bytes serialize() const;
  /// Strict parse: any truncation, bad magic or inconsistent size field
  /// yields nullopt. Authenticity is *not* checked here — that is unseal's
  /// job (parsing happens on the untrusted host, unsealing on the device).
  static std::optional<SealedBlob> deserialize(BytesView bytes);
};

/// Unseal outcome. Deliberately coarse: nothing depends on secret data, and
/// kBadBlob covers every authenticity failure without revealing which check
/// tripped first.
enum class SealStatus : u8 {
  kOk,
  kBadVersion,   ///< Format version is not kSealedBlobVersion (downgrade).
  kWrongDevice,  ///< binding_id names a different sealing domain.
  kBadBlob,      ///< Structure, MAC chain or content id failed.
};

const char* seal_status_name(SealStatus status);

/// Per-blob keys derived from the sealing domain's root key, the header
/// nonce and the content id (HKDF). Fresh nonce per seal → no keystream
/// reuse across blobs; folding the content id in binds the keys to the
/// logical model as defense in depth on top of the chain MAC.
struct BlobKeys {
  crypto::AesKey enc{};
  crypto::AesKey mac{};
};

BlobKeys derive_blob_keys(const crypto::AesKey& root_key,
                          const crypto::AesBlock& nonce,
                          const ContentId& content_id);

/// Seals `payload` (non-empty) for the domain owning `root_key`. `nonce`
/// must be fresh random bytes (the device draws them from its TRNG).
/// `content_id` is the caller's identity for the payload — the device uses
/// the model-content hash (descriptor + weights, excluding incidental
/// metadata) so replicas of one model deduplicate across devices and
/// re-seals; raw-format callers typically pass SHA-256 of the payload. The
/// id is authenticated (chain MAC + key derivation) and re-checked against
/// the payload semantics by the device after unsealing.
SealedBlob seal_blob(const crypto::AesKey& root_key, const BindingId& binding,
                     const crypto::AesBlock& nonce, BytesView payload,
                     const ContentId& content_id);

/// Verifies and decrypts a blob. `binding` is the caller's own domain id.
/// On kOk, `payload_out` holds the plaintext; on any failure it is cleared
/// (fail closed, no partial plaintext escapes).
SealStatus unseal_blob(const crypto::AesKey& root_key, const BindingId& binding,
                       const SealedBlob& blob, Bytes& payload_out);

}  // namespace guardnn::store
