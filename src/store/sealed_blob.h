// Device-bound sealed blob format — the persistence primitive of the sealed
// model store (SEAL-style, cf. Zuo et al.: model weights sealed under
// device-held keys so they can live in untrusted storage).
//
// A SealedBlob packages an opaque plaintext payload (a serialized
// ModelPackage) as:
//   * AES-128-CTR ciphertext, encrypted per 64 KiB chunk under a per-blob
//     key; every chunk owns a disjoint counter range, and the per-blob keys
//     are derived from the sealing domain's root key plus a random nonce
//     carried in the header, so no two blobs ever share keystream;
//   * one full AES-CMAC tag per chunk over (chunk index || ciphertext);
//   * a chained CMAC over (serialized header || all chunk MACs) that makes
//     the header fields — format version, binding id, content id, sizes —
//     and the chunk-MAC list tamper-evident as one unit;
//   * a SHA-256 content id over the *plaintext*, checked after decryption
//     (defense in depth) and used by the ModelStore for deduplication: two
//     devices sealing the same model produce different ciphertext but the
//     same content id;
//   * a format version field; unsealing rejects anything but the current
//     version before touching key material (downgrade fails closed).
//
// Binding: the root key never leaves the sealing device, so a blob can only
// be opened by the device whose `binding_id` (hash of its certified public
// key) it carries. Cross-device provisioning re-wraps the payload under an
// ECDHE transport key between two attested devices (see accel::GuardNnDevice
// export_for_device / provision_finish) — the host only ever relays
// ciphertext.
//
// Everything here is host-visible: a SealedBlob is meant to sit in untrusted
// storage. Unsealing is fail-closed and coarse — no error distinguishes
// *which* byte was tampered with, and a failed unseal never emits plaintext.
#pragma once

#include <optional>
#include <vector>

#include "common/types.h"
#include "crypto/aes128.h"
#include "crypto/sha256.h"

namespace guardnn::store {

inline constexpr u32 kSealedBlobMagic = 0x474E'5342;  // "GNSB"
/// Current format version. v1 (unchained per-chunk MACs) was retired before
/// release; unseal rejects it — the downgrade test pins that behaviour.
inline constexpr u16 kSealedBlobVersion = 2;
inline constexpr u64 kSealChunkBytes = 64 * 1024;

/// Content identity: SHA-256 over the plaintext payload.
using ContentId = crypto::Sha256Digest;
/// Sealing-domain identity: SHA-256 over the device's certified public key.
using BindingId = crypto::Sha256Digest;

struct SealedBlobHeader {
  u16 version = kSealedBlobVersion;
  BindingId binding_id{};
  ContentId content_id{};
  crypto::AesBlock nonce{};  ///< Per-blob key-derivation nonce (public).
  u64 plaintext_bytes = 0;
  u64 chunk_bytes = kSealChunkBytes;

  u64 chunk_count() const {
    return chunk_bytes == 0 ? 0 : (plaintext_bytes + chunk_bytes - 1) / chunk_bytes;
  }

  /// Fixed-layout serialization — exactly the bytes the chain MAC covers.
  Bytes serialize() const;
};

struct SealedBlob {
  SealedBlobHeader header;
  Bytes ciphertext;  ///< Same length as the plaintext (CTR mode).
  std::vector<crypto::AesBlock> chunk_macs;  ///< One per chunk.
  crypto::AesBlock chain_mac{};  ///< CMAC over (header || chunk MACs).

  ContentId content_id() const { return header.content_id; }

  /// Wire serialization for untrusted storage backends.
  Bytes serialize() const;
  /// Strict parse: any truncation, bad magic or inconsistent size field
  /// yields nullopt. Authenticity is *not* checked here — that is unseal's
  /// job (parsing happens on the untrusted host, unsealing on the device).
  static std::optional<SealedBlob> deserialize(BytesView bytes);
};

/// Unseal outcome. Deliberately coarse: nothing depends on secret data, and
/// kBadBlob covers every authenticity failure without revealing which check
/// tripped first.
enum class SealStatus : u8 {
  kOk,
  kBadVersion,   ///< Format version is not kSealedBlobVersion (downgrade).
  kWrongDevice,  ///< binding_id names a different sealing domain.
  kBadBlob,      ///< Structure, MAC chain or content id failed.
};

const char* seal_status_name(SealStatus status);

/// Per-blob keys derived from the sealing domain's root key, the header
/// nonce and the content id (HKDF). Fresh nonce per seal → no keystream
/// reuse across blobs; folding the content id in binds the keys to the
/// logical model as defense in depth on top of the chain MAC.
struct BlobKeys {
  crypto::AesKey enc{};
  crypto::AesKey mac{};
};

BlobKeys derive_blob_keys(const crypto::AesKey& root_key,
                          const crypto::AesBlock& nonce,
                          const ContentId& content_id);

/// Seals `payload` (non-empty) for the domain owning `root_key`. `nonce`
/// must be fresh random bytes (the device draws them from its TRNG).
/// `content_id` is the caller's identity for the payload — the device uses
/// the model-content hash (descriptor + weights, excluding incidental
/// metadata) so replicas of one model deduplicate across devices and
/// re-seals; raw-format callers typically pass SHA-256 of the payload. The
/// id is authenticated (chain MAC + key derivation) and re-checked against
/// the payload semantics by the device after unsealing.
SealedBlob seal_blob(const crypto::AesKey& root_key, const BindingId& binding,
                     const crypto::AesBlock& nonce, BytesView payload,
                     const ContentId& content_id);

/// Verifies and decrypts a blob. `binding` is the caller's own domain id.
/// On kOk, `payload_out` holds the plaintext; on any failure it is cleared
/// (fail closed, no partial plaintext escapes).
SealStatus unseal_blob(const crypto::AesKey& root_key, const BindingId& binding,
                       const SealedBlob& blob, Bytes& payload_out);

/// Incremental seal — the blob side of the fused MPU→blob pipeline.
///
/// The writer allocates the blob's ciphertext buffer up front and hands out
/// mutable views of it (whole payload or per 64 KiB chunk) for the producer
/// to fill with plaintext — e.g. an MpuExportStream decrypting a weight
/// region straight into it. finish() then encrypts every chunk *in place*
/// with batched 64-block keystream bursts and computes the chunk MACs
/// crypto::kCmacLanes CBC chains at a time, so the plaintext only ever
/// exists once, inside the buffer that becomes the ciphertext.
///
/// The wire format is byte-identical to seal_blob(): same header, same
/// per-chunk counter ranges, same MAC chain — a writer-produced blob and a
/// seal_blob()-produced blob of the same (root key, binding, nonce, payload,
/// content id) are equal byte for byte, and either unseals on either path.
///
/// The content id is only needed at finish() (per-blob keys derive from it),
/// which is what lets the producer compute it while filling the buffer
/// instead of over a separate plaintext copy.
///
/// If the writer is destroyed before finish(), the buffered plaintext is
/// wiped.
class SealedBlobWriter {
 public:
  /// Prepares a blob of `plaintext_bytes` (> 0) for the domain owning
  /// `root_key`; `nonce` must be fresh random bytes. `recycle` optionally
  /// donates an existing buffer (e.g. the ciphertext of a blob the caller is
  /// about to overwrite) so the steady-state seal loop never reallocates or
  /// zero-fills megabytes; every payload byte is written by the producer
  /// regardless.
  /// Throws std::invalid_argument for an empty payload.
  SealedBlobWriter(const crypto::AesKey& root_key, const BindingId& binding,
                   const crypto::AesBlock& nonce, u64 plaintext_bytes,
                   Bytes&& recycle = Bytes());
  ~SealedBlobWriter();

  SealedBlobWriter(const SealedBlobWriter&) = delete;
  SealedBlobWriter& operator=(const SealedBlobWriter&) = delete;

  /// The whole plaintext buffer, to be filled before finish().
  MutBytesView payload();
  u64 chunk_count() const { return blob_.header.chunk_count(); }
  /// Chunk i's slice of the payload (the final chunk may be short).
  MutBytesView chunk(u64 index);

  /// Encrypts + MACs in place and returns the finished blob. Consumes the
  /// writer (payload views are dead; a second finish() throws).
  SealedBlob finish(const ContentId& content_id);

 private:
  crypto::AesKey root_{};
  SealedBlob blob_;
  bool finished_ = false;
};

/// Incremental verified read — the blob side of the fused unseal pipeline.
///
/// Construction verifies *everything* up front: header geometry and binding,
/// the chain MAC, and every chunk MAC (lane-batched). Only when status() is
/// kOk can chunks be decrypted — out of place, into caller buffers, so the
/// blob stays intact and no full-plaintext intermediate is forced on the
/// consumer. Decryption order is the caller's choice; each chunk's counter
/// range is independent.
///
/// Verification semantics are identical to unseal_blob(): any blob one
/// accepts, the other accepts, with the same SealStatus on rejection.
class SealedBlobReader {
 public:
  /// `blob` must outlive the reader. `binding` is the caller's own domain
  /// id. Check status() before reading.
  SealedBlobReader(const crypto::AesKey& root_key, const BindingId& binding,
                   const SealedBlob& blob);
  ~SealedBlobReader();

  SealedBlobReader(const SealedBlobReader&) = delete;
  SealedBlobReader& operator=(const SealedBlobReader&) = delete;

  /// kOk once fully verified; any other value means no plaintext will ever
  /// be produced (fail closed).
  SealStatus status() const { return status_; }

  u64 plaintext_bytes() const { return blob_->header.plaintext_bytes; }
  u64 chunk_count() const { return blob_->header.chunk_count(); }
  /// Plaintext size of chunk `index` (the final chunk may be short).
  u64 chunk_bytes(u64 index) const;

  /// Decrypts chunk `index` into `out` (out.size() == chunk_bytes(index)).
  /// Throws std::logic_error when status() != kOk.
  void read_chunk(u64 index, MutBytesView out);
  /// Decrypts the whole payload into `out` (out.size() == plaintext_bytes()).
  void read_all(MutBytesView out);

 private:
  void wipe_keys();

  const SealedBlob* blob_;
  SealStatus status_ = SealStatus::kBadBlob;
  std::optional<crypto::Aes128> enc_;
  BlobKeys keys_{};
};

}  // namespace guardnn::store
