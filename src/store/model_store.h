// Host-side content-addressed store for sealed model blobs.
//
// The store is part of the *untrusted* host: it only ever holds ciphertext
// (SealedBlob wire bytes), so it can sit on any storage — RAM, local disk, a
// blob service — without weakening the threat model. Keys are
// (content id, binding id): one logical model (content id, the SHA-256 of
// the plaintext package) may exist as several device-bound replicas, one per
// accelerator it has been provisioned to. Deduplication is exact: putting a
// blob whose (content, binding) pair already exists is a no-op.
//
// Two backends:
//   * InMemoryBackend — per-process map, the serving default;
//   * DirectoryBackend — one file per replica under a directory, loaded
//     back on open, so sealed models and training checkpoints survive a
//     host restart.
//
// Thread safety: ModelStore serializes all operations on an internal mutex —
// the serving layer puts/gets replicas from multiple worker threads.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "store/sealed_blob.h"

namespace guardnn::store {

/// Storage backend: a flat key → bytes namespace. Keys are printable-ASCII
/// file-name-safe strings the store derives from (content, binding) ids.
class StoreBackend {
 public:
  virtual ~StoreBackend() = default;
  virtual bool save(const std::string& key, BytesView bytes) = 0;
  virtual std::optional<Bytes> load(const std::string& key) const = 0;
  virtual std::vector<std::string> list() const = 0;
  virtual bool remove(const std::string& key) = 0;
};

class InMemoryBackend final : public StoreBackend {
 public:
  bool save(const std::string& key, BytesView bytes) override;
  std::optional<Bytes> load(const std::string& key) const override;
  std::vector<std::string> list() const override;
  bool remove(const std::string& key) override;

 private:
  std::map<std::string, Bytes> entries_;
};

/// One file per replica: `<dir>/<key>` with key =
/// "<hex content id>-<hex binding prefix>.gnnblob". The directory is created
/// on demand; existing files are indexed when a ModelStore opens over it.
class DirectoryBackend final : public StoreBackend {
 public:
  explicit DirectoryBackend(std::string directory);

  /// Crash-durable write: `<key>.tmp` → write → fsync → rename over the
  /// final name → fsync the directory. Returns false (and leaves no final
  /// file behind) on any I/O failure, so a replica is only ever visible —
  /// and only ever indexed — once its bytes are fully on disk. A crash can
  /// at worst leave a `*.tmp` orphan, which reindexing ignores.
  bool save(const std::string& key, BytesView bytes) override;
  std::optional<Bytes> load(const std::string& key) const override;
  std::vector<std::string> list() const override;
  bool remove(const std::string& key) override;

  const std::string& directory() const { return directory_; }

 private:
  std::string directory_;
};

struct StoreStats {
  u64 puts = 0;        ///< put() calls that stored a new replica.
  u64 dedup_hits = 0;  ///< put() calls answered by an existing replica.
  u64 get_hits = 0;    ///< get() calls that returned a replica.
  u64 get_misses = 0;  ///< get() calls that found nothing (or a bad blob).
  u64 bytes_stored = 0;
};

class ModelStore {
 public:
  /// nullptr backend → fresh InMemoryBackend. A backend with existing
  /// entries (DirectoryBackend over a checkpoint directory) is re-indexed:
  /// unparseable entries are skipped, not trusted.
  explicit ModelStore(std::unique_ptr<StoreBackend> backend = nullptr);

  /// Stores a replica, deduplicated by (content id, binding id). Returns the
  /// content id, or nullopt when the blob fails the wire-format round trip
  /// or the backend write fails (directory backend: the write is fsync'd
  /// before this returns, so a success is crash-durable). Thread-safe.
  std::optional<ContentId> put(const SealedBlob& blob);

  /// The replica of `content` bound to `binding`, if present.
  std::optional<SealedBlob> get(const ContentId& content,
                                const BindingId& binding) const;

  bool contains(const ContentId& content, const BindingId& binding) const;

  /// Every device binding that holds a replica of `content`.
  std::vector<BindingId> bindings(const ContentId& content) const;

  /// Every distinct model in the store.
  std::vector<ContentId> contents() const;

  // --- Placement hints -------------------------------------------------------
  // The store counts per-content accesses (get() hits and put() touches) and
  // stamps each replica with a monotonic access ordinal. The serving layer
  // uses both as placement signals: hot_contents() is what a freshly promoted
  // hot spare pre-warms with, preferred_binding() picks the re-wrap source a
  // replication should read from.

  /// Up to `limit` stored models ordered by access count, hottest first.
  std::vector<ContentId> hot_contents(std::size_t limit) const;

  /// The most recently touched replica binding of `content` (the device most
  /// likely to still be healthy and serving it), or nullopt when no replica
  /// exists.
  std::optional<BindingId> preferred_binding(const ContentId& content) const;

  /// Drops one replica. Returns false when it was not present.
  bool erase(const ContentId& content, const BindingId& binding);

  std::size_t replica_count() const;
  StoreStats stats() const;

  /// Mirrors this store's counters into `registry` (store_puts_total,
  /// store_dedup_hits_total, store_get_hits_total, store_get_misses_total
  /// counters and a store_stored_bytes gauge), incremented at the same
  /// points as StoreStats so the exported numbers can never drift from
  /// stats(). Call before concurrent use; the registry must outlive the
  /// store.
  void bind_metrics(obs::MetricRegistry& registry);

 private:
  static std::string key_for(const ContentId& content, const BindingId& binding);
  void reindex_locked();
  /// Advances the access clock for (content, binding); caller holds mu_.
  void touch_locked(const ContentId& content, const BindingId& binding) const;

  mutable std::mutex mu_;
  std::unique_ptr<StoreBackend> backend_;
  /// (content → binding → backend key), rebuilt from the backend on open.
  std::map<ContentId, std::map<BindingId, std::string>> index_;
  /// Mutable: get() is logically const but counts its hit/miss.
  mutable StoreStats stats_;

  /// Placement-hint bookkeeping (mutable: get() touches it). `count` ranks
  /// contents for hot_contents(); `last_touch` ordinals rank replicas for
  /// preferred_binding(). Entries follow index_ lifetimes.
  struct AccessInfo {
    u64 count = 0;
    std::map<BindingId, u64> last_touch;
  };
  mutable std::map<ContentId, AccessInfo> access_;
  mutable u64 access_clock_ = 0;

  struct BoundMetrics {
    obs::Counter* puts = nullptr;
    obs::Counter* dedup_hits = nullptr;
    obs::Counter* get_hits = nullptr;
    obs::Counter* get_misses = nullptr;
    obs::Gauge* stored_bytes = nullptr;
  };
  BoundMetrics metrics_;
};

}  // namespace guardnn::store
