// The plaintext payload a sealed model blob carries: the public architecture
// descriptor (host-authored opaque bytes — shapes and quantization metadata
// are public in GuardNN's threat model), the confidential packed weight blob
// (ExecutionPlan layout), and the freshness metadata needed to resume a
// training run (the weight version counter CTR_W at seal time).
//
// The device builds and parses packages entirely inside the trusted
// boundary; the host only ever sees the sealed form.
#pragma once

#include <optional>

#include "common/types.h"
#include "crypto/sha256.h"
#include "store/sealed_blob.h"

namespace guardnn::store {

inline constexpr u32 kModelPackageMagic = 0x474E'4D50;  // "GNMP"
inline constexpr u16 kModelPackageVersion = 1;

struct ModelPackage {
  Bytes descriptor;  ///< Public architecture + quantization metadata.
  Bytes weights;     ///< Plaintext packed weight blob (confidential).
  u64 weight_vn = 0; ///< CTR_W when the package was sealed (checkpoint
                     ///< freshness record; restore re-establishes fresh VNs).

  Bytes serialize() const;
  static std::optional<ModelPackage> parse(BytesView bytes);

  /// The package's *model* identity: SHA-256 over (descriptor length ||
  /// descriptor || weights). Deliberately excludes weight_vn, so the same
  /// model sealed at different counter epochs — or by different devices —
  /// deduplicates to one content id. The device re-checks this hash against
  /// the blob header after every unseal.
  ContentId content_id() const;

  /// Wipes the confidential weight bytes (device-side teardown hygiene).
  void zeroize() {
    if (!weights.empty()) secure_zero(weights.data(), weights.size());
    weights.clear();
  }
};

/// The model identity hash shared by ModelPackage and ModelPackageView:
/// SHA-256 over (be64 descriptor length || descriptor || weights).
ContentId package_content_id(BytesView descriptor, BytesView weights);

/// Zero-copy view of a serialized package: fields alias the serialized
/// buffer, which must outlive the view. Parsing is exactly as strict as
/// ModelPackage::parse (same rejects, no trailing garbage), but nothing is
/// copied — the fused unseal path parses the decrypted payload in place and
/// streams the weight bytes straight into the MPU.
struct ModelPackageView {
  BytesView descriptor;
  BytesView weights;
  u64 weight_vn = 0;

  ContentId content_id() const {
    return package_content_id(descriptor, weights);
  }

  static std::optional<ModelPackageView> parse(BytesView bytes);
};

/// Wire size of a package with the given part sizes (layout_package below
/// expects a buffer of exactly this size).
u64 serialized_package_bytes(u64 descriptor_bytes, u64 weight_bytes);

/// Writes the fixed fields, length prefixes and descriptor of the serialized
/// package layout into `out` (out.size() must equal
/// serialized_package_bytes(...)), and returns the mutable weight area for
/// the producer to fill — the fused seal path points an MpuExportStream at
/// it, so the package is assembled once, in the buffer that will be
/// encrypted in place. The result is byte-identical to
/// ModelPackage::serialize() once the weights are written.
MutBytesView layout_package(MutBytesView out, BytesView descriptor,
                            u64 weight_bytes, u64 weight_vn);

}  // namespace guardnn::store
