// The plaintext payload a sealed model blob carries: the public architecture
// descriptor (host-authored opaque bytes — shapes and quantization metadata
// are public in GuardNN's threat model), the confidential packed weight blob
// (ExecutionPlan layout), and the freshness metadata needed to resume a
// training run (the weight version counter CTR_W at seal time).
//
// The device builds and parses packages entirely inside the trusted
// boundary; the host only ever sees the sealed form.
#pragma once

#include <optional>

#include "common/types.h"
#include "crypto/sha256.h"
#include "store/sealed_blob.h"

namespace guardnn::store {

inline constexpr u32 kModelPackageMagic = 0x474E'4D50;  // "GNMP"
inline constexpr u16 kModelPackageVersion = 1;

struct ModelPackage {
  Bytes descriptor;  ///< Public architecture + quantization metadata.
  Bytes weights;     ///< Plaintext packed weight blob (confidential).
  u64 weight_vn = 0; ///< CTR_W when the package was sealed (checkpoint
                     ///< freshness record; restore re-establishes fresh VNs).

  Bytes serialize() const;
  static std::optional<ModelPackage> parse(BytesView bytes);

  /// The package's *model* identity: SHA-256 over (descriptor length ||
  /// descriptor || weights). Deliberately excludes weight_vn, so the same
  /// model sealed at different counter epochs — or by different devices —
  /// deduplicates to one content id. The device re-checks this hash against
  /// the blob header after every unseal.
  ContentId content_id() const;

  /// Wipes the confidential weight bytes (device-side teardown hygiene).
  void zeroize() {
    if (!weights.empty()) secure_zero(weights.data(), weights.size());
    weights.clear();
  }
};

}  // namespace guardnn::store
