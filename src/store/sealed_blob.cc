#include "store/sealed_blob.h"

#include <stdexcept>

#include "crypto/hmac.h"
#include "crypto/mem_mac.h"

namespace guardnn::store {
namespace {

constexpr std::size_t kHeaderBytes = 4 + 2 + 2 + 32 + 32 + 16 + 8 + 8 + 8;
constexpr u64 kBlocksPerChunk = kSealChunkBytes / crypto::kAesBlockBytes;

/// CMAC over (big-endian chunk index || chunk ciphertext).
crypto::AesBlock chunk_mac(const crypto::Aes128& aes,
                           const crypto::CmacSubkeys& subkeys, u64 index,
                           BytesView chunk) {
  crypto::CmacState state(aes, subkeys);
  u8 index_bytes[8];
  store_be64(index_bytes, index);
  state.update(BytesView(index_bytes, 8));
  state.update(chunk);
  return state.finish();
}

/// Chained MAC over the serialized header followed by every chunk MAC, so
/// the chunk-MAC list cannot be reordered, truncated or extended and the
/// header fields cannot be rewritten.
crypto::AesBlock chain_mac(const crypto::Aes128& aes,
                           const crypto::CmacSubkeys& subkeys,
                           const SealedBlobHeader& header,
                           const std::vector<crypto::AesBlock>& macs) {
  crypto::CmacState state(aes, subkeys);
  const Bytes header_bytes = header.serialize();
  state.update(header_bytes);
  for (const crypto::AesBlock& mac : macs)
    state.update(BytesView(mac.data(), mac.size()));
  return state.finish();
}

}  // namespace

const char* seal_status_name(SealStatus status) {
  switch (status) {
    case SealStatus::kOk: return "ok";
    case SealStatus::kBadVersion: return "bad-version";
    case SealStatus::kWrongDevice: return "wrong-device";
    case SealStatus::kBadBlob: return "bad-blob";
  }
  return "unknown";
}

Bytes SealedBlobHeader::serialize() const {
  Bytes out(kHeaderBytes);
  u8* p = out.data();
  store_be32(p, kSealedBlobMagic);
  p += 4;
  p[0] = static_cast<u8>(version >> 8);
  p[1] = static_cast<u8>(version);
  p[2] = 0;  // reserved
  p[3] = 0;
  p += 4;
  std::copy(binding_id.begin(), binding_id.end(), p);
  p += binding_id.size();
  std::copy(content_id.begin(), content_id.end(), p);
  p += content_id.size();
  std::copy(nonce.begin(), nonce.end(), p);
  p += nonce.size();
  store_be64(p, plaintext_bytes);
  p += 8;
  store_be64(p, chunk_bytes);
  p += 8;
  store_be64(p, chunk_count());
  return out;
}

Bytes SealedBlob::serialize() const {
  const Bytes header_bytes = header.serialize();
  Bytes out;
  out.reserve(header_bytes.size() + ciphertext.size() +
              chunk_macs.size() * crypto::kAesBlockBytes +
              crypto::kAesBlockBytes);
  out.insert(out.end(), header_bytes.begin(), header_bytes.end());
  out.insert(out.end(), ciphertext.begin(), ciphertext.end());
  for (const crypto::AesBlock& mac : chunk_macs)
    out.insert(out.end(), mac.begin(), mac.end());
  out.insert(out.end(), chain_mac.begin(), chain_mac.end());
  return out;
}

std::optional<SealedBlob> SealedBlob::deserialize(BytesView bytes) {
  if (bytes.size() < kHeaderBytes) return std::nullopt;
  const u8* p = bytes.data();
  if (load_be32(p) != kSealedBlobMagic) return std::nullopt;
  p += 4;

  SealedBlob blob;
  blob.header.version = static_cast<u16>((u16(p[0]) << 8) | p[1]);
  if (p[2] != 0 || p[3] != 0) return std::nullopt;  // reserved: strict zero
  p += 4;  // version + reserved
  std::copy(p, p + blob.header.binding_id.size(), blob.header.binding_id.begin());
  p += blob.header.binding_id.size();
  std::copy(p, p + blob.header.content_id.size(), blob.header.content_id.begin());
  p += blob.header.content_id.size();
  std::copy(p, p + blob.header.nonce.size(), blob.header.nonce.begin());
  p += blob.header.nonce.size();
  blob.header.plaintext_bytes = load_be64(p);
  p += 8;
  blob.header.chunk_bytes = load_be64(p);
  p += 8;
  const u64 stored_chunks = load_be64(p);

  // Structural sanity before sizing any allocation from attacker-controlled
  // fields: the chunk geometry must be internally consistent and the total
  // length must match exactly (no trailing garbage, no truncation). Bounding
  // plaintext_bytes by the real buffer first keeps every later sum far from
  // u64 wrap-around — without it a near-2^64 length field makes `expected`
  // wrap back onto a header-only file and the assign below runs wild.
  if (blob.header.chunk_bytes != kSealChunkBytes) return std::nullopt;
  if (blob.header.plaintext_bytes == 0 ||
      blob.header.plaintext_bytes > bytes.size())
    return std::nullopt;
  const u64 n_chunks = blob.header.chunk_count();
  if (stored_chunks != n_chunks) return std::nullopt;
  const u64 expected = kHeaderBytes + blob.header.plaintext_bytes +
                       (n_chunks + 1) * crypto::kAesBlockBytes;
  if (bytes.size() != expected) return std::nullopt;

  const u8* body = bytes.data() + kHeaderBytes;
  blob.ciphertext.assign(body, body + blob.header.plaintext_bytes);
  body += blob.header.plaintext_bytes;
  blob.chunk_macs.resize(n_chunks);
  for (u64 i = 0; i < n_chunks; ++i) {
    std::copy(body, body + crypto::kAesBlockBytes, blob.chunk_macs[i].begin());
    body += crypto::kAesBlockBytes;
  }
  std::copy(body, body + crypto::kAesBlockBytes, blob.chain_mac.begin());
  return blob;
}

BlobKeys derive_blob_keys(const crypto::AesKey& root_key,
                          const crypto::AesBlock& nonce,
                          const ContentId& content_id) {
  static constexpr char kSalt[] = "guardnn-sealed-blob-v2";
  Bytes info(nonce.begin(), nonce.end());
  info.insert(info.end(), content_id.begin(), content_id.end());
  info.push_back(static_cast<u8>(kSealedBlobVersion >> 8));
  info.push_back(static_cast<u8>(kSealedBlobVersion));
  const Bytes okm = crypto::hkdf(
      BytesView(reinterpret_cast<const u8*>(kSalt), sizeof(kSalt) - 1),
      BytesView(root_key.data(), root_key.size()), info, 32);
  BlobKeys keys;
  std::copy(okm.begin(), okm.begin() + 16, keys.enc.begin());
  std::copy(okm.begin() + 16, okm.end(), keys.mac.begin());
  return keys;
}

SealedBlob seal_blob(const crypto::AesKey& root_key, const BindingId& binding,
                     const crypto::AesBlock& nonce, BytesView payload,
                     const ContentId& content_id) {
  if (payload.empty())
    throw std::invalid_argument("seal_blob: empty payload");

  SealedBlob blob;
  blob.header.version = kSealedBlobVersion;
  blob.header.binding_id = binding;
  blob.header.content_id = content_id;
  blob.header.nonce = nonce;
  blob.header.plaintext_bytes = payload.size();
  blob.header.chunk_bytes = kSealChunkBytes;

  BlobKeys keys = derive_blob_keys(root_key, nonce, content_id);
  crypto::Aes128 enc(keys.enc);
  crypto::Aes128 mac(keys.mac);
  const crypto::CmacSubkeys subkeys = crypto::cmac_derive_subkeys(mac);

  blob.ciphertext.assign(payload.begin(), payload.end());
  const u64 n_chunks = blob.header.chunk_count();
  blob.chunk_macs.resize(n_chunks);
  for (u64 i = 0; i < n_chunks; ++i) {
    const u64 offset = i * kSealChunkBytes;
    const u64 len = std::min<u64>(kSealChunkBytes, payload.size() - offset);
    MutBytesView chunk(blob.ciphertext.data() + offset, len);
    // Chunk i owns counter blocks [i * blocks_per_chunk, (i+1) * ...): the
    // per-chunk ranges are disjoint under the per-blob key.
    crypto::ctr_xcrypt(enc, crypto::make_counter_block(i * kBlocksPerChunk, 0),
                       chunk);
    blob.chunk_macs[i] = chunk_mac(mac, subkeys, i, chunk);
  }
  blob.chain_mac = chain_mac(mac, subkeys, blob.header, blob.chunk_macs);

  enc.zeroize();
  mac.zeroize();
  secure_zero(keys.enc.data(), keys.enc.size());
  secure_zero(keys.mac.data(), keys.mac.size());
  return blob;
}

SealStatus unseal_blob(const crypto::AesKey& root_key, const BindingId& binding,
                       const SealedBlob& blob, Bytes& payload_out) {
  payload_out.clear();

  // Version gate first: a downgraded blob is rejected before any key is
  // derived, so no legacy code path can ever be reached.
  if (blob.header.version != kSealedBlobVersion) return SealStatus::kBadVersion;
  if (blob.header.binding_id != binding) return SealStatus::kWrongDevice;

  // Structure must be exactly consistent with the header.
  if (blob.header.chunk_bytes != kSealChunkBytes) return SealStatus::kBadBlob;
  if (blob.header.plaintext_bytes == 0) return SealStatus::kBadBlob;
  if (blob.ciphertext.size() != blob.header.plaintext_bytes)
    return SealStatus::kBadBlob;
  const u64 n_chunks = blob.header.chunk_count();
  if (blob.chunk_macs.size() != n_chunks) return SealStatus::kBadBlob;

  BlobKeys keys =
      derive_blob_keys(root_key, blob.header.nonce, blob.header.content_id);
  crypto::Aes128 enc(keys.enc);
  crypto::Aes128 mac(keys.mac);
  const crypto::CmacSubkeys subkeys = crypto::cmac_derive_subkeys(mac);

  auto fail = [&](SealStatus status) {
    enc.zeroize();
    mac.zeroize();
    secure_zero(keys.enc.data(), keys.enc.size());
    secure_zero(keys.mac.data(), keys.mac.size());
    if (!payload_out.empty()) secure_zero(payload_out.data(), payload_out.size());
    payload_out.clear();
    return status;
  };

  // Chain MAC covers header + chunk-MAC list; verify it before trusting any
  // individual chunk MAC.
  const crypto::AesBlock chain =
      chain_mac(mac, subkeys, blob.header, blob.chunk_macs);
  if (!ct_equal(BytesView(chain.data(), chain.size()),
                BytesView(blob.chain_mac.data(), blob.chain_mac.size())))
    return fail(SealStatus::kBadBlob);

  // Verify every chunk MAC, then decrypt.
  payload_out.assign(blob.ciphertext.begin(), blob.ciphertext.end());
  for (u64 i = 0; i < n_chunks; ++i) {
    const u64 offset = i * kSealChunkBytes;
    const u64 len =
        std::min<u64>(kSealChunkBytes, blob.header.plaintext_bytes - offset);
    const BytesView chunk(blob.ciphertext.data() + offset, len);
    const crypto::AesBlock tag = chunk_mac(mac, subkeys, i, chunk);
    if (!ct_equal(BytesView(tag.data(), tag.size()),
                  BytesView(blob.chunk_macs[i].data(), blob.chunk_macs[i].size())))
      return fail(SealStatus::kBadBlob);
    crypto::ctr_xcrypt(enc, crypto::make_counter_block(i * kBlocksPerChunk, 0),
                       MutBytesView(payload_out.data() + offset, len));
  }

  enc.zeroize();
  mac.zeroize();
  secure_zero(keys.enc.data(), keys.enc.size());
  secure_zero(keys.mac.data(), keys.mac.size());
  return SealStatus::kOk;
}

}  // namespace guardnn::store
