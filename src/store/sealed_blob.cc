#include "store/sealed_blob.h"

#include <array>
#include <cstring>
#include <stdexcept>

#include "crypto/hmac.h"
#include "crypto/mem_mac.h"

namespace guardnn::store {
namespace {

constexpr std::size_t kHeaderBytes = 4 + 2 + 2 + 32 + 32 + 16 + 8 + 8 + 8;
constexpr u64 kBlocksPerChunk = kSealChunkBytes / crypto::kAesBlockBytes;

/// CMAC over (big-endian chunk index || chunk ciphertext).
crypto::AesBlock chunk_mac(const crypto::Aes128& aes,
                           const crypto::CmacSubkeys& subkeys, u64 index,
                           BytesView chunk) {
  crypto::CmacState state(aes, subkeys);
  u8 index_bytes[8];
  store_be64(index_bytes, index);
  state.update(BytesView(index_bytes, 8));
  state.update(chunk);
  return state.finish();
}

/// Chained MAC over the serialized header followed by every chunk MAC, so
/// the chunk-MAC list cannot be reordered, truncated or extended and the
/// header fields cannot be rewritten.
crypto::AesBlock chain_mac(const crypto::Aes128& aes,
                           const crypto::CmacSubkeys& subkeys,
                           const SealedBlobHeader& header,
                           const std::vector<crypto::AesBlock>& macs) {
  crypto::CmacState state(aes, subkeys);
  const Bytes header_bytes = header.serialize();
  state.update(header_bytes);
  for (const crypto::AesBlock& mac : macs)
    state.update(BytesView(mac.data(), mac.size()));
  return state.finish();
}

/// All chunk MACs of a ciphertext buffer, the full-size chunks running
/// crypto::kCmacLanes CBC chains in lockstep (a short final chunk falls back
/// to the serial path). Bit-identical to calling chunk_mac per chunk.
void chunk_macs_batched(const crypto::Aes128& mac,
                        const crypto::CmacSubkeys& subkeys,
                        BytesView ciphertext,
                        std::vector<crypto::AesBlock>& tags_out) {
  const u64 n_chunks =
      (ciphertext.size() + kSealChunkBytes - 1) / kSealChunkBytes;
  tags_out.resize(n_chunks);
  if (n_chunks == 0) return;
  const u64 n_full = ciphertext.size() / kSealChunkBytes;

  std::vector<std::array<u8, 8>> indices(n_full);
  std::vector<crypto::CmacMessage> msgs(n_full);
  for (u64 i = 0; i < n_full; ++i) {
    store_be64(indices[i].data(), i);
    msgs[i].prefix = BytesView(indices[i].data(), indices[i].size());
    msgs[i].body =
        BytesView(ciphertext.data() + i * kSealChunkBytes, kSealChunkBytes);
  }
  crypto::cmac_many(mac, subkeys, msgs.data(), n_full, tags_out.data());

  if (n_full < n_chunks) {
    const u64 off = n_full * kSealChunkBytes;
    tags_out[n_full] =
        chunk_mac(mac, subkeys, n_full,
                  BytesView(ciphertext.data() + off, ciphertext.size() - off));
  }
}

}  // namespace

const char* seal_status_name(SealStatus status) {
  switch (status) {
    case SealStatus::kOk: return "ok";
    case SealStatus::kBadVersion: return "bad-version";
    case SealStatus::kWrongDevice: return "wrong-device";
    case SealStatus::kBadBlob: return "bad-blob";
  }
  return "unknown";
}

Bytes SealedBlobHeader::serialize() const {
  Bytes out(kHeaderBytes);
  u8* p = out.data();
  store_be32(p, kSealedBlobMagic);
  p += 4;
  p[0] = static_cast<u8>(version >> 8);
  p[1] = static_cast<u8>(version);
  p[2] = 0;  // reserved
  p[3] = 0;
  p += 4;
  std::copy(binding_id.begin(), binding_id.end(), p);
  p += binding_id.size();
  std::copy(content_id.begin(), content_id.end(), p);
  p += content_id.size();
  std::copy(nonce.begin(), nonce.end(), p);
  p += nonce.size();
  store_be64(p, plaintext_bytes);
  p += 8;
  store_be64(p, chunk_bytes);
  p += 8;
  store_be64(p, chunk_count());
  return out;
}

Bytes SealedBlob::serialize() const {
  const Bytes header_bytes = header.serialize();
  Bytes out;
  out.reserve(header_bytes.size() + ciphertext.size() +
              chunk_macs.size() * crypto::kAesBlockBytes +
              crypto::kAesBlockBytes);
  out.insert(out.end(), header_bytes.begin(), header_bytes.end());
  out.insert(out.end(), ciphertext.begin(), ciphertext.end());
  for (const crypto::AesBlock& mac : chunk_macs)
    out.insert(out.end(), mac.begin(), mac.end());
  out.insert(out.end(), chain_mac.begin(), chain_mac.end());
  return out;
}

std::optional<SealedBlob> SealedBlob::deserialize(BytesView bytes) {
  if (bytes.size() < kHeaderBytes) return std::nullopt;
  const u8* p = bytes.data();
  if (load_be32(p) != kSealedBlobMagic) return std::nullopt;
  p += 4;

  SealedBlob blob;
  blob.header.version = static_cast<u16>((u16(p[0]) << 8) | p[1]);
  if (p[2] != 0 || p[3] != 0) return std::nullopt;  // reserved: strict zero
  p += 4;  // version + reserved
  std::copy(p, p + blob.header.binding_id.size(), blob.header.binding_id.begin());
  p += blob.header.binding_id.size();
  std::copy(p, p + blob.header.content_id.size(), blob.header.content_id.begin());
  p += blob.header.content_id.size();
  std::copy(p, p + blob.header.nonce.size(), blob.header.nonce.begin());
  p += blob.header.nonce.size();
  blob.header.plaintext_bytes = load_be64(p);
  p += 8;
  blob.header.chunk_bytes = load_be64(p);
  p += 8;
  const u64 stored_chunks = load_be64(p);

  // Structural sanity before sizing any allocation from attacker-controlled
  // fields: the chunk geometry must be internally consistent and the total
  // length must match exactly (no trailing garbage, no truncation). Bounding
  // plaintext_bytes by the real buffer first keeps every later sum far from
  // u64 wrap-around — without it a near-2^64 length field makes `expected`
  // wrap back onto a header-only file and the assign below runs wild.
  if (blob.header.chunk_bytes != kSealChunkBytes) return std::nullopt;
  if (blob.header.plaintext_bytes == 0 ||
      blob.header.plaintext_bytes > bytes.size())
    return std::nullopt;
  const u64 n_chunks = blob.header.chunk_count();
  if (stored_chunks != n_chunks) return std::nullopt;
  const u64 expected = kHeaderBytes + blob.header.plaintext_bytes +
                       (n_chunks + 1) * crypto::kAesBlockBytes;
  if (bytes.size() != expected) return std::nullopt;

  const u8* body = bytes.data() + kHeaderBytes;
  blob.ciphertext.assign(body, body + blob.header.plaintext_bytes);
  body += blob.header.plaintext_bytes;
  blob.chunk_macs.resize(n_chunks);
  for (u64 i = 0; i < n_chunks; ++i) {
    std::copy(body, body + crypto::kAesBlockBytes, blob.chunk_macs[i].begin());
    body += crypto::kAesBlockBytes;
  }
  std::copy(body, body + crypto::kAesBlockBytes, blob.chain_mac.begin());
  return blob;
}

BlobKeys derive_blob_keys(const crypto::AesKey& root_key,
                          const crypto::AesBlock& nonce,
                          const ContentId& content_id) {
  static constexpr char kSalt[] = "guardnn-sealed-blob-v2";
  Bytes info(nonce.begin(), nonce.end());
  info.insert(info.end(), content_id.begin(), content_id.end());
  info.push_back(static_cast<u8>(kSealedBlobVersion >> 8));
  info.push_back(static_cast<u8>(kSealedBlobVersion));
  const Bytes okm = crypto::hkdf(
      BytesView(reinterpret_cast<const u8*>(kSalt), sizeof(kSalt) - 1),
      BytesView(root_key.data(), root_key.size()), info, 32);
  BlobKeys keys;
  std::copy(okm.begin(), okm.begin() + 16, keys.enc.begin());
  std::copy(okm.begin() + 16, okm.end(), keys.mac.begin());
  return keys;
}

SealedBlob seal_blob(const crypto::AesKey& root_key, const BindingId& binding,
                     const crypto::AesBlock& nonce, BytesView payload,
                     const ContentId& content_id) {
  if (payload.empty())
    throw std::invalid_argument("seal_blob: empty payload");

  SealedBlob blob;
  blob.header.version = kSealedBlobVersion;
  blob.header.binding_id = binding;
  blob.header.content_id = content_id;
  blob.header.nonce = nonce;
  blob.header.plaintext_bytes = payload.size();
  blob.header.chunk_bytes = kSealChunkBytes;

  BlobKeys keys = derive_blob_keys(root_key, nonce, content_id);
  crypto::Aes128 enc(keys.enc);
  crypto::Aes128 mac(keys.mac);
  const crypto::CmacSubkeys subkeys = crypto::cmac_derive_subkeys(mac);

  blob.ciphertext.assign(payload.begin(), payload.end());
  const u64 n_chunks = blob.header.chunk_count();
  blob.chunk_macs.resize(n_chunks);
  for (u64 i = 0; i < n_chunks; ++i) {
    const u64 offset = i * kSealChunkBytes;
    const u64 len = std::min<u64>(kSealChunkBytes, payload.size() - offset);
    MutBytesView chunk(blob.ciphertext.data() + offset, len);
    // Chunk i owns counter blocks [i * blocks_per_chunk, (i+1) * ...): the
    // per-chunk ranges are disjoint under the per-blob key.
    crypto::ctr_xcrypt(enc, crypto::make_counter_block(i * kBlocksPerChunk, 0),
                       chunk);
    blob.chunk_macs[i] = chunk_mac(mac, subkeys, i, chunk);
  }
  blob.chain_mac = chain_mac(mac, subkeys, blob.header, blob.chunk_macs);

  enc.zeroize();
  mac.zeroize();
  secure_zero(keys.enc.data(), keys.enc.size());
  secure_zero(keys.mac.data(), keys.mac.size());
  return blob;
}

SealStatus unseal_blob(const crypto::AesKey& root_key, const BindingId& binding,
                       const SealedBlob& blob, Bytes& payload_out) {
  payload_out.clear();

  // Version gate first: a downgraded blob is rejected before any key is
  // derived, so no legacy code path can ever be reached.
  if (blob.header.version != kSealedBlobVersion) return SealStatus::kBadVersion;
  if (blob.header.binding_id != binding) return SealStatus::kWrongDevice;

  // Structure must be exactly consistent with the header.
  if (blob.header.chunk_bytes != kSealChunkBytes) return SealStatus::kBadBlob;
  if (blob.header.plaintext_bytes == 0) return SealStatus::kBadBlob;
  if (blob.ciphertext.size() != blob.header.plaintext_bytes)
    return SealStatus::kBadBlob;
  const u64 n_chunks = blob.header.chunk_count();
  if (blob.chunk_macs.size() != n_chunks) return SealStatus::kBadBlob;

  BlobKeys keys =
      derive_blob_keys(root_key, blob.header.nonce, blob.header.content_id);
  crypto::Aes128 enc(keys.enc);
  crypto::Aes128 mac(keys.mac);
  const crypto::CmacSubkeys subkeys = crypto::cmac_derive_subkeys(mac);

  auto fail = [&](SealStatus status) {
    enc.zeroize();
    mac.zeroize();
    secure_zero(keys.enc.data(), keys.enc.size());
    secure_zero(keys.mac.data(), keys.mac.size());
    if (!payload_out.empty()) secure_zero(payload_out.data(), payload_out.size());
    payload_out.clear();
    return status;
  };

  // Chain MAC covers header + chunk-MAC list; verify it before trusting any
  // individual chunk MAC.
  const crypto::AesBlock chain =
      chain_mac(mac, subkeys, blob.header, blob.chunk_macs);
  if (!ct_equal(BytesView(chain.data(), chain.size()),
                BytesView(blob.chain_mac.data(), blob.chain_mac.size())))
    return fail(SealStatus::kBadBlob);

  // Verify every chunk MAC, then decrypt.
  payload_out.assign(blob.ciphertext.begin(), blob.ciphertext.end());
  for (u64 i = 0; i < n_chunks; ++i) {
    const u64 offset = i * kSealChunkBytes;
    const u64 len =
        std::min<u64>(kSealChunkBytes, blob.header.plaintext_bytes - offset);
    const BytesView chunk(blob.ciphertext.data() + offset, len);
    const crypto::AesBlock tag = chunk_mac(mac, subkeys, i, chunk);
    if (!ct_equal(BytesView(tag.data(), tag.size()),
                  BytesView(blob.chunk_macs[i].data(), blob.chunk_macs[i].size())))
      return fail(SealStatus::kBadBlob);
    crypto::ctr_xcrypt(enc, crypto::make_counter_block(i * kBlocksPerChunk, 0),
                       MutBytesView(payload_out.data() + offset, len));
  }

  enc.zeroize();
  mac.zeroize();
  secure_zero(keys.enc.data(), keys.enc.size());
  secure_zero(keys.mac.data(), keys.mac.size());
  return SealStatus::kOk;
}

// --- SealedBlobWriter --------------------------------------------------------

SealedBlobWriter::SealedBlobWriter(const crypto::AesKey& root_key,
                                   const BindingId& binding,
                                   const crypto::AesBlock& nonce,
                                   u64 plaintext_bytes, Bytes&& recycle)
    : root_(root_key) {
  if (plaintext_bytes == 0)
    throw std::invalid_argument("SealedBlobWriter: empty payload");
  blob_.header.version = kSealedBlobVersion;
  blob_.header.binding_id = binding;
  blob_.header.nonce = nonce;
  blob_.header.plaintext_bytes = plaintext_bytes;
  blob_.header.chunk_bytes = kSealChunkBytes;
  blob_.ciphertext = std::move(recycle);
  blob_.ciphertext.resize(plaintext_bytes);
}

SealedBlobWriter::~SealedBlobWriter() {
  secure_zero(root_.data(), root_.size());
  // An abandoned writer still holds plaintext in the ciphertext buffer.
  if (!finished_ && !blob_.ciphertext.empty())
    secure_zero(blob_.ciphertext.data(), blob_.ciphertext.size());
}

MutBytesView SealedBlobWriter::payload() {
  if (finished_)
    throw std::logic_error("SealedBlobWriter: payload() after finish()");
  return MutBytesView(blob_.ciphertext.data(), blob_.ciphertext.size());
}

MutBytesView SealedBlobWriter::chunk(u64 index) {
  if (finished_)
    throw std::logic_error("SealedBlobWriter: chunk() after finish()");
  if (index >= chunk_count())
    throw std::invalid_argument("SealedBlobWriter: chunk index out of range");
  const u64 offset = index * kSealChunkBytes;
  const u64 len =
      std::min<u64>(kSealChunkBytes, blob_.header.plaintext_bytes - offset);
  return MutBytesView(blob_.ciphertext.data() + offset, len);
}

SealedBlob SealedBlobWriter::finish(const ContentId& content_id) {
  if (finished_)
    throw std::logic_error("SealedBlobWriter: double finish()");
  finished_ = true;
  blob_.header.content_id = content_id;

  BlobKeys keys = derive_blob_keys(root_, blob_.header.nonce, content_id);
  secure_zero(root_.data(), root_.size());
  crypto::Aes128 enc(keys.enc);
  crypto::Aes128 mac(keys.mac);
  const crypto::CmacSubkeys subkeys = crypto::cmac_derive_subkeys(mac);

  // Encrypt every chunk in place — the buffer the producer filled with
  // plaintext becomes the wire ciphertext, no second copy. Counter ranges
  // match seal_blob() exactly.
  const u64 n_chunks = chunk_count();
  for (u64 i = 0; i < n_chunks; ++i) {
    const u64 offset = i * kSealChunkBytes;
    const u64 len = std::min<u64>(kSealChunkBytes,
                                  blob_.header.plaintext_bytes - offset);
    crypto::ctr_xcrypt(enc, crypto::make_counter_block(i * kBlocksPerChunk, 0),
                       MutBytesView(blob_.ciphertext.data() + offset, len));
  }
  chunk_macs_batched(mac, subkeys, blob_.ciphertext, blob_.chunk_macs);
  blob_.chain_mac = chain_mac(mac, subkeys, blob_.header, blob_.chunk_macs);

  enc.zeroize();
  mac.zeroize();
  secure_zero(keys.enc.data(), keys.enc.size());
  secure_zero(keys.mac.data(), keys.mac.size());
  return std::move(blob_);
}

// --- SealedBlobReader --------------------------------------------------------

SealedBlobReader::SealedBlobReader(const crypto::AesKey& root_key,
                                   const BindingId& binding,
                                   const SealedBlob& blob)
    : blob_(&blob) {
  // Same gate order as unseal_blob: version before keys, binding before
  // structure, chain MAC before any chunk MAC is trusted.
  if (blob.header.version != kSealedBlobVersion) {
    status_ = SealStatus::kBadVersion;
    return;
  }
  if (blob.header.binding_id != binding) {
    status_ = SealStatus::kWrongDevice;
    return;
  }
  if (blob.header.chunk_bytes != kSealChunkBytes ||
      blob.header.plaintext_bytes == 0 ||
      blob.ciphertext.size() != blob.header.plaintext_bytes ||
      blob.chunk_macs.size() != blob.header.chunk_count()) {
    status_ = SealStatus::kBadBlob;
    return;
  }

  keys_ = derive_blob_keys(root_key, blob.header.nonce, blob.header.content_id);
  crypto::Aes128 mac(keys_.mac);
  const crypto::CmacSubkeys subkeys = crypto::cmac_derive_subkeys(mac);

  const crypto::AesBlock chain =
      chain_mac(mac, subkeys, blob.header, blob.chunk_macs);
  bool ok = ct_equal(BytesView(chain.data(), chain.size()),
                     BytesView(blob.chain_mac.data(), blob.chain_mac.size()));
  if (ok) {
    // Every chunk MAC, lane-batched; constant-time compare, no early out.
    std::vector<crypto::AesBlock> tags;
    chunk_macs_batched(mac, subkeys, blob.ciphertext, tags);
    for (u64 i = 0; i < tags.size(); ++i)
      ok &= ct_equal(BytesView(tags[i].data(), tags[i].size()),
                     BytesView(blob.chunk_macs[i].data(),
                               blob.chunk_macs[i].size()));
  }
  mac.zeroize();
  if (!ok) {
    wipe_keys();
    status_ = SealStatus::kBadBlob;
    return;
  }
  enc_.emplace(keys_.enc);
  status_ = SealStatus::kOk;
}

SealedBlobReader::~SealedBlobReader() { wipe_keys(); }

void SealedBlobReader::wipe_keys() {
  if (enc_) enc_->zeroize();
  secure_zero(keys_.enc.data(), keys_.enc.size());
  secure_zero(keys_.mac.data(), keys_.mac.size());
}

u64 SealedBlobReader::chunk_bytes(u64 index) const {
  if (index >= chunk_count()) return 0;
  return std::min<u64>(kSealChunkBytes,
                       blob_->header.plaintext_bytes - index * kSealChunkBytes);
}

void SealedBlobReader::read_chunk(u64 index, MutBytesView out) {
  if (status_ != SealStatus::kOk)
    throw std::logic_error("SealedBlobReader: read from unverified blob");
  if (index >= chunk_count() || out.size() != chunk_bytes(index))
    throw std::invalid_argument("SealedBlobReader: bad chunk read");
  const u64 offset = index * kSealChunkBytes;
  std::memcpy(out.data(), blob_->ciphertext.data() + offset, out.size());
  crypto::ctr_xcrypt(*enc_,
                     crypto::make_counter_block(index * kBlocksPerChunk, 0),
                     out);
}

void SealedBlobReader::read_all(MutBytesView out) {
  if (out.size() != plaintext_bytes())
    throw std::invalid_argument("SealedBlobReader: bad payload size");
  for (u64 i = 0; i < chunk_count(); ++i)
    read_chunk(i, MutBytesView(out.data() + i * kSealChunkBytes,
                               chunk_bytes(i)));
}

}  // namespace guardnn::store
