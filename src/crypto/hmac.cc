#include "crypto/hmac.h"

#include <stdexcept>

namespace guardnn::crypto {

Sha256Digest hmac_sha256(BytesView key, BytesView message) {
  std::array<u8, 64> block_key{};
  if (key.size() > 64) {
    const Sha256Digest hashed = Sha256::hash(key);
    std::copy(hashed.begin(), hashed.end(), block_key.begin());
  } else {
    std::copy(key.begin(), key.end(), block_key.begin());
  }

  std::array<u8, 64> ipad, opad;
  for (int i = 0; i < 64; ++i) {
    ipad[i] = block_key[i] ^ 0x36;
    opad[i] = block_key[i] ^ 0x5c;
  }

  Sha256 inner;
  inner.update(BytesView(ipad.data(), ipad.size()));
  inner.update(message);
  const Sha256Digest inner_digest = inner.finalize();

  Sha256 outer;
  outer.update(BytesView(opad.data(), opad.size()));
  outer.update(BytesView(inner_digest.data(), inner_digest.size()));
  return outer.finalize();
}

Sha256Digest hkdf_extract(BytesView salt, BytesView ikm) {
  return hmac_sha256(salt, ikm);
}

Bytes hkdf_expand(const Sha256Digest& prk, BytesView info, std::size_t length) {
  if (length > 255 * kSha256DigestBytes)
    throw std::invalid_argument("hkdf_expand: length too large");
  Bytes okm;
  okm.reserve(length);
  Bytes t;
  u8 counter = 1;
  while (okm.size() < length) {
    Bytes input = t;
    input.insert(input.end(), info.begin(), info.end());
    input.push_back(counter++);
    const Sha256Digest block = hmac_sha256(BytesView(prk.data(), prk.size()), input);
    t.assign(block.begin(), block.end());
    const std::size_t take = std::min(t.size(), length - okm.size());
    okm.insert(okm.end(), t.begin(), t.begin() + static_cast<long>(take));
  }
  return okm;
}

Bytes hkdf(BytesView salt, BytesView ikm, BytesView info, std::size_t length) {
  return hkdf_expand(hkdf_extract(salt, ikm), info, length);
}

}  // namespace guardnn::crypto
