#include "crypto/ecdsa.h"

#include <stdexcept>

#include "crypto/hmac.h"

namespace guardnn::crypto {
namespace {

// Reduces a 32-byte digest into a scalar mod n (simple truncation + reduce,
// adequate for a 256-bit curve with a 256-bit hash).
U256 digest_to_scalar(const Sha256Digest& digest) {
  const U256 z = U256::from_bytes(BytesView(digest.data(), digest.size()));
  U512 wide;
  for (int i = 0; i < 4; ++i) wide.limb[i] = z.limb[i];
  return mod_reduce(wide, p256().n);
}

// Deterministic nonce derivation in the spirit of RFC 6979: an HMAC-DRBG
// keyed by (private key || digest) generates candidate nonces.
U256 derive_nonce(const U256& private_key, const Sha256Digest& digest) {
  Bytes seed = private_key.to_bytes();
  seed.insert(seed.end(), digest.begin(), digest.end());
  HmacDrbg drbg(seed, Bytes{'e', 'c', 'd', 's', 'a', '-', 'k'});
  const U256& n = p256().n;
  for (;;) {
    const Bytes candidate = drbg.generate(32);
    U256 k = U256::from_bytes(candidate);
    if (!k.is_zero() && cmp(k, n) < 0) return k;
  }
}

}  // namespace

Bytes EcdsaSignature::to_bytes() const {
  Bytes out = r.to_bytes();
  const Bytes sb = s.to_bytes();
  out.insert(out.end(), sb.begin(), sb.end());
  return out;
}

std::optional<EcdsaSignature> EcdsaSignature::from_bytes(BytesView bytes) {
  if (bytes.size() != 64) return std::nullopt;
  EcdsaSignature sig;
  sig.r = U256::from_bytes(bytes.subspan(0, 32));
  sig.s = U256::from_bytes(bytes.subspan(32, 32));
  return sig;
}

EcdsaKeyPair ecdsa_generate_key(HmacDrbg& drbg) {
  const U256& n = p256().n;
  for (;;) {
    const Bytes raw = drbg.generate(32);
    U256 d = U256::from_bytes(raw);
    if (d.is_zero() || cmp(d, n) >= 0) continue;
    EcdsaKeyPair kp;
    kp.private_key = d;
    kp.public_key = ec_scalar_base_mult(d);
    return kp;
  }
}

EcdsaSignature ecdsa_sign_digest(const U256& private_key, const Sha256Digest& digest) {
  const U256& n = p256().n;
  const U256 z = digest_to_scalar(digest);
  Sha256Digest tweaked = digest;
  for (;;) {
    const U256 k = derive_nonce(private_key, tweaked);
    const AffinePoint kg = ec_scalar_base_mult(k);
    U512 rx_wide;
    for (int i = 0; i < 4; ++i) rx_wide.limb[i] = kg.x.limb[i];
    const U256 r = mod_reduce(rx_wide, n);
    if (r.is_zero()) {
      tweaked[0] ^= 0x01;  // Extremely unlikely; re-derive with a tweak.
      continue;
    }
    const U256 k_inv = inv_mod_prime(k, n);
    const U256 s = mul_mod(k_inv, add_mod(z, mul_mod(r, private_key, n), n), n);
    if (s.is_zero()) {
      tweaked[0] ^= 0x02;
      continue;
    }
    return EcdsaSignature{r, s};
  }
}

EcdsaSignature ecdsa_sign(const U256& private_key, BytesView message) {
  return ecdsa_sign_digest(private_key, Sha256::hash(message));
}

bool ecdsa_verify_digest(const AffinePoint& public_key, const Sha256Digest& digest,
                         const EcdsaSignature& sig) {
  const U256& n = p256().n;
  if (public_key.infinity || !on_curve(public_key)) return false;
  if (sig.r.is_zero() || sig.s.is_zero()) return false;
  if (cmp(sig.r, n) >= 0 || cmp(sig.s, n) >= 0) return false;

  const U256 z = digest_to_scalar(digest);
  const U256 s_inv = inv_mod_prime(sig.s, n);
  const U256 u1 = mul_mod(z, s_inv, n);
  const U256 u2 = mul_mod(sig.r, s_inv, n);
  const AffinePoint point =
      ec_add(ec_scalar_base_mult(u1), ec_scalar_mult(u2, public_key));
  if (point.infinity) return false;
  U512 x_wide;
  for (int i = 0; i < 4; ++i) x_wide.limb[i] = point.x.limb[i];
  return mod_reduce(x_wide, n) == sig.r;
}

bool ecdsa_verify(const AffinePoint& public_key, BytesView message,
                  const EcdsaSignature& sig) {
  return ecdsa_verify_digest(public_key, Sha256::hash(message), sig);
}

}  // namespace guardnn::crypto
