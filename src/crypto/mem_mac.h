// 64-bit memory MAC (AES-CMAC truncated), used by the integrity-verification
// engines. The MAC binds (data value, physical address, version number) so a
// block moved to a different address or replayed from an older version fails
// verification (paper Section II-D.1).
#pragma once

#include "common/types.h"
#include "crypto/aes128.h"

namespace guardnn::crypto {

/// AES-CMAC per RFC 4493, producing the full 128-bit tag.
AesBlock cmac_aes128(const Aes128& aes, BytesView message);

/// Memory MAC: 64-bit tag over (address || version || data).
/// GuardNN_CI stores one such tag per protection chunk (512 B by default);
/// the Intel-MEE baseline stores one per 64 B block.
u64 memory_mac(const Aes128& aes, u64 address, u64 version, BytesView data);

}  // namespace guardnn::crypto
