// 64-bit memory MAC (AES-CMAC truncated), used by the integrity-verification
// engines. The MAC binds (data value, physical address, version number) so a
// block moved to a different address or replayed from an older version fails
// verification (paper Section II-D.1).
#pragma once

#include "common/types.h"
#include "crypto/aes128.h"

namespace guardnn::crypto {

/// CMAC subkeys K1/K2 (RFC 4493 step 1). Deriving them costs one AES block
/// encryption, so callers that MAC many chunks under one key (the MPU, the
/// integrity engines) derive once and reuse.
struct CmacSubkeys {
  AesBlock k1{};
  AesBlock k2{};
};

CmacSubkeys cmac_derive_subkeys(const Aes128& aes);

/// Streaming AES-CMAC (RFC 4493): init / update / finish with zero heap
/// allocation. `aes` must outlive the state. update() may be called any
/// number of times with arbitrary split points; finish() applies the K1/K2
/// last-block treatment and returns the full 128-bit tag.
class CmacState {
 public:
  CmacState(const Aes128& aes, const CmacSubkeys& subkeys)
      : aes_(&aes), subkeys_(subkeys) {}
  explicit CmacState(const Aes128& aes)
      : CmacState(aes, cmac_derive_subkeys(aes)) {}

  void update(BytesView data);
  /// Finalises and returns the tag. The state is consumed; call reset() to
  /// start a new message under the same key.
  AesBlock finish();
  void reset() {
    x_.fill(0);
    buf_len_ = 0;
  }

 private:
  const Aes128* aes_;
  CmacSubkeys subkeys_;
  AesBlock x_{};    // running CBC-MAC state
  AesBlock buf_{};  // pending bytes; a full buffer is held back until more
                    // data arrives (the last block needs K1/K2 treatment)
  std::size_t buf_len_ = 0;
};

/// AES-CMAC per RFC 4493, producing the full 128-bit tag.
AesBlock cmac_aes128(const Aes128& aes, BytesView message);

/// How many independent CBC-MAC chains the batch CMAC runs in lockstep: 32
/// lanes = four 8-wide AES-NI bursts or two 16-block VAES iterations per
/// encrypt_blocks call, keeping the AES pipeline full while amortizing the
/// per-call round-key reload/broadcast. The portable cores are unaffected
/// (no slower, no faster).
inline constexpr std::size_t kCmacLanes = 32;

/// One message of a CMAC batch: tag = CMAC(prefix || body). The prefix is
/// the bound metadata (chunk index, address/version header); either part may
/// be empty.
struct CmacMessage {
  BytesView prefix;
  BytesView body;
};

/// Computes AES-CMAC over `n` independent messages, interleaving their
/// CBC-MAC chains `kCmacLanes` at a time through the batched AES encrypt
/// path. A single CMAC is inherently serial (each block feeds the next), but
/// chains of *different* messages are independent, so running kCmacLanes of
/// them in lockstep keeps a pipelined AES unit full — this is what lets chunked MAC
/// verification (MPU protection chunks, SealedBlob chunk MACs) run near the
/// AES-CTR rate instead of the ~6x slower serial-CBC rate.
///
/// All `n` messages must share one geometry: equal prefix lengths and equal
/// body lengths (ragged tails are the caller's job — MAC the odd-sized final
/// chunk with CmacState). Throws std::invalid_argument otherwise.
/// `tags_out[i]` receives the full 128-bit tag of message i; results are
/// bit-identical to cmac_aes128 on every backend.
void cmac_many(const Aes128& aes, const CmacSubkeys& subkeys,
               const CmacMessage* messages, std::size_t n, AesBlock* tags_out);

/// Memory MAC: 64-bit tag over (address || version || data), computed with
/// zero heap allocation. GuardNN_CI stores one such tag per protection chunk
/// (512 B by default); the Intel-MEE baseline stores one per 64 B block.
u64 memory_mac(const Aes128& aes, u64 address, u64 version, BytesView data);

/// Same, with the CMAC subkeys already derived (hot path: the MPU caches the
/// subkeys and reuses them across every chunk of a burst).
u64 memory_mac(const Aes128& aes, const CmacSubkeys& subkeys, u64 address,
               u64 version, BytesView data);

/// Batch memory MAC: tags for `n` consecutive protection chunks — chunk i
/// covers data[i * chunk_bytes, min((i+1) * chunk_bytes, data.size())) at
/// address `base_address + i * chunk_bytes` under one `version`. The
/// full-size chunks run through cmac_many (kCmacLanes CBC chains in
/// lockstep); a short final chunk falls back to the serial path. Results are bit-identical to
/// calling memory_mac per chunk.
void memory_mac_many(const Aes128& aes, const CmacSubkeys& subkeys,
                     u64 base_address, u64 version, u64 chunk_bytes,
                     BytesView data, u64* tags_out, std::size_t n);

}  // namespace guardnn::crypto
