// 64-bit memory MAC (AES-CMAC truncated), used by the integrity-verification
// engines. The MAC binds (data value, physical address, version number) so a
// block moved to a different address or replayed from an older version fails
// verification (paper Section II-D.1).
#pragma once

#include "common/types.h"
#include "crypto/aes128.h"

namespace guardnn::crypto {

/// CMAC subkeys K1/K2 (RFC 4493 step 1). Deriving them costs one AES block
/// encryption, so callers that MAC many chunks under one key (the MPU, the
/// integrity engines) derive once and reuse.
struct CmacSubkeys {
  AesBlock k1{};
  AesBlock k2{};
};

CmacSubkeys cmac_derive_subkeys(const Aes128& aes);

/// Streaming AES-CMAC (RFC 4493): init / update / finish with zero heap
/// allocation. `aes` must outlive the state. update() may be called any
/// number of times with arbitrary split points; finish() applies the K1/K2
/// last-block treatment and returns the full 128-bit tag.
class CmacState {
 public:
  CmacState(const Aes128& aes, const CmacSubkeys& subkeys)
      : aes_(&aes), subkeys_(subkeys) {}
  explicit CmacState(const Aes128& aes)
      : CmacState(aes, cmac_derive_subkeys(aes)) {}

  void update(BytesView data);
  /// Finalises and returns the tag. The state is consumed; call reset() to
  /// start a new message under the same key.
  AesBlock finish();
  void reset() {
    x_.fill(0);
    buf_len_ = 0;
  }

 private:
  const Aes128* aes_;
  CmacSubkeys subkeys_;
  AesBlock x_{};    // running CBC-MAC state
  AesBlock buf_{};  // pending bytes; a full buffer is held back until more
                    // data arrives (the last block needs K1/K2 treatment)
  std::size_t buf_len_ = 0;
};

/// AES-CMAC per RFC 4493, producing the full 128-bit tag.
AesBlock cmac_aes128(const Aes128& aes, BytesView message);

/// Memory MAC: 64-bit tag over (address || version || data), computed with
/// zero heap allocation. GuardNN_CI stores one such tag per protection chunk
/// (512 B by default); the Intel-MEE baseline stores one per 64 B block.
u64 memory_mac(const Aes128& aes, u64 address, u64 version, BytesView data);

/// Same, with the CMAC subkeys already derived (hot path: the MPU caches the
/// subkeys and reuses them across every chunk of a burst).
u64 memory_mac(const Aes128& aes, const CmacSubkeys& subkeys, u64 address,
               u64 version, BytesView data);

}  // namespace guardnn::crypto
