// ECDSA over P-256 with SHA-256 digests and deterministic (RFC 6979-style)
// nonces. GuardNN uses ECDSA for the device certificate chain and for the
// SignOutput instruction that attests an output to the remote user.
#pragma once

#include "crypto/drbg.h"
#include "crypto/p256.h"
#include "crypto/sha256.h"

namespace guardnn::crypto {

struct EcdsaKeyPair {
  U256 private_key;       ///< Scalar d, 1 <= d < n.
  AffinePoint public_key; ///< Q = d*G.
};

struct EcdsaSignature {
  U256 r;
  U256 s;

  Bytes to_bytes() const;  ///< 64 bytes: r || s, big-endian.
  static std::optional<EcdsaSignature> from_bytes(BytesView bytes);
};

/// Generates a key pair from the supplied DRBG (the device "TRNG").
EcdsaKeyPair ecdsa_generate_key(HmacDrbg& drbg);

/// Signs a message (SHA-256 is applied internally).
EcdsaSignature ecdsa_sign(const U256& private_key, BytesView message);

/// Signs a precomputed 32-byte digest.
EcdsaSignature ecdsa_sign_digest(const U256& private_key, const Sha256Digest& digest);

/// Verifies a signature over a message.
bool ecdsa_verify(const AffinePoint& public_key, BytesView message,
                  const EcdsaSignature& sig);

/// Verifies a signature over a precomputed digest.
bool ecdsa_verify_digest(const AffinePoint& public_key, const Sha256Digest& digest,
                         const EcdsaSignature& sig);

}  // namespace guardnn::crypto
