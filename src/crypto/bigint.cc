#include "crypto/bigint.h"

#include <bit>
#include <stdexcept>

namespace guardnn::crypto {

U256 U256::from_hex(const std::string& hex) {
  if (hex.size() > 64) throw std::invalid_argument("U256::from_hex: too long");
  std::string padded(64 - hex.size(), '0');
  padded += hex;
  return from_bytes(guardnn::from_hex(padded));
}

U256 U256::from_bytes(BytesView bytes) {
  if (bytes.size() != 32) throw std::invalid_argument("U256::from_bytes: need 32 bytes");
  U256 v;
  for (int i = 0; i < 4; ++i) v.limb[3 - i] = load_be64(bytes.data() + 8 * i);
  return v;
}

Bytes U256::to_bytes() const {
  Bytes out(32);
  for (int i = 0; i < 4; ++i) store_be64(out.data() + 8 * i, limb[3 - i]);
  return out;
}

std::string U256::to_hex() const { return guardnn::to_hex(to_bytes()); }

int U256::bit_length() const {
  for (int i = 3; i >= 0; --i) {
    if (limb[i] != 0) return 64 * i + 64 - std::countl_zero(limb[i]);
  }
  return 0;
}

int U512::bit_length() const {
  for (int i = 7; i >= 0; --i) {
    if (limb[i] != 0) return 64 * i + 64 - std::countl_zero(limb[i]);
  }
  return 0;
}

int cmp(const U256& a, const U256& b) {
  for (int i = 3; i >= 0; --i) {
    if (a.limb[i] < b.limb[i]) return -1;
    if (a.limb[i] > b.limb[i]) return 1;
  }
  return 0;
}

u64 add(U256& out, const U256& a, const U256& b) {
  u64 carry = 0;
  for (int i = 0; i < 4; ++i) {
    const unsigned __int128 s =
        static_cast<unsigned __int128>(a.limb[i]) + b.limb[i] + carry;
    out.limb[i] = static_cast<u64>(s);
    carry = static_cast<u64>(s >> 64);
  }
  return carry;
}

u64 sub(U256& out, const U256& a, const U256& b) {
  u64 borrow = 0;
  for (int i = 0; i < 4; ++i) {
    const unsigned __int128 d = static_cast<unsigned __int128>(a.limb[i]) -
                                b.limb[i] - borrow;
    out.limb[i] = static_cast<u64>(d);
    borrow = (d >> 64) ? 1 : 0;
  }
  return borrow;
}

U256 shr1(const U256& a) {
  U256 out;
  for (int i = 0; i < 4; ++i) {
    out.limb[i] = a.limb[i] >> 1;
    if (i < 3) out.limb[i] |= a.limb[i + 1] << 63;
  }
  return out;
}

U512 mul_wide(const U256& a, const U256& b) {
  U512 out;
  for (int i = 0; i < 4; ++i) {
    u64 carry = 0;
    for (int j = 0; j < 4; ++j) {
      const unsigned __int128 p =
          static_cast<unsigned __int128>(a.limb[i]) * b.limb[j] +
          out.limb[i + j] + carry;
      out.limb[i + j] = static_cast<u64>(p);
      carry = static_cast<u64>(p >> 64);
    }
    out.limb[i + 4] = carry;
  }
  return out;
}

namespace {

// Subtracts (m << shift) from x in place; caller guarantees no underflow.
void sub_shifted(U512& x, const U256& m, int shift) {
  const int word_shift = shift / 64;
  const int bit_shift = shift % 64;
  u64 borrow = 0;
  u64 prev = 0;
  for (int i = 0; i < 5; ++i) {
    u64 mw = i < 4 ? m.limb[i] : 0;
    u64 shifted = bit_shift == 0 ? mw : (mw << bit_shift) | (prev >> (64 - bit_shift));
    prev = mw;
    const int idx = i + word_shift;
    if (idx >= 8) break;
    const unsigned __int128 d =
        static_cast<unsigned __int128>(x.limb[idx]) - shifted - borrow;
    x.limb[idx] = static_cast<u64>(d);
    borrow = (d >> 64) ? 1 : 0;
  }
  for (int idx = word_shift + 5; idx < 8 && borrow; ++idx) {
    const unsigned __int128 d = static_cast<unsigned __int128>(x.limb[idx]) - borrow;
    x.limb[idx] = static_cast<u64>(d);
    borrow = (d >> 64) ? 1 : 0;
  }
}

// Compares x against (m << shift).
int cmp_shifted(const U512& x, const U256& m, int shift) {
  const int word_shift = shift / 64;
  const int bit_shift = shift % 64;
  // Build shifted m as 8 limbs (m is 4 limbs; shifted occupies <= 5+word_shift).
  std::array<u64, 8> sm{};
  u64 prev = 0;
  for (int i = 0; i < 5; ++i) {
    const u64 mw = i < 4 ? m.limb[i] : 0;
    const u64 shifted = bit_shift == 0 ? mw : (mw << bit_shift) | (prev >> (64 - bit_shift));
    prev = mw;
    const int idx = i + word_shift;
    if (idx < 8) sm[idx] = shifted;
  }
  for (int i = 7; i >= 0; --i) {
    if (x.limb[i] < sm[i]) return -1;
    if (x.limb[i] > sm[i]) return 1;
  }
  return 0;
}

}  // namespace

U256 mod_reduce(const U512& x, const U256& m) {
  if (m.is_zero()) throw std::invalid_argument("mod_reduce: zero modulus");
  U512 rem = x;
  const int mbits = m.bit_length();
  int xbits = rem.bit_length();
  while (xbits >= mbits) {
    int shift = xbits - mbits;
    if (cmp_shifted(rem, m, shift) < 0) {
      if (shift == 0) break;
      --shift;
    }
    sub_shifted(rem, m, shift);
    xbits = rem.bit_length();
  }
  U256 out;
  for (int i = 0; i < 4; ++i) out.limb[i] = rem.limb[i];
  return out;
}

U256 add_mod(const U256& a, const U256& b, const U256& m) {
  U256 s;
  const u64 carry = add(s, a, b);
  if (carry || cmp(s, m) >= 0) {
    U256 r;
    sub(r, s, m);
    // A single subtraction suffices because a, b < m implies a+b < 2m.
    return r;
  }
  return s;
}

U256 sub_mod(const U256& a, const U256& b, const U256& m) {
  U256 d;
  if (sub(d, a, b)) {
    U256 r;
    add(r, d, m);
    return r;
  }
  return d;
}

U256 mul_mod(const U256& a, const U256& b, const U256& m) {
  return mod_reduce(mul_wide(a, b), m);
}

U256 pow_mod(const U256& a, const U256& e, const U256& m) {
  U256 result = U256::one();
  U256 base = a;
  const int bits = e.bit_length();
  for (int i = 0; i < bits; ++i) {
    if (e.bit(static_cast<unsigned>(i))) result = mul_mod(result, base, m);
    base = mul_mod(base, base, m);
  }
  return result;
}

U256 inv_mod_prime(const U256& a, const U256& m) {
  if (a.is_zero()) throw std::invalid_argument("inv_mod_prime: zero has no inverse");
  U256 e;
  sub(e, m, U256::from_u64(2));
  return pow_mod(a, e, m);
}

}  // namespace guardnn::crypto
