#include "crypto/drbg.h"

#include "crypto/hmac.h"

namespace guardnn::crypto {

HmacDrbg::HmacDrbg(BytesView entropy, BytesView personalization) {
  key_.fill(0x00);
  value_.fill(0x01);
  Bytes seed(entropy.begin(), entropy.end());
  seed.insert(seed.end(), personalization.begin(), personalization.end());
  update(seed);
}

void HmacDrbg::update(BytesView data) {
  // K = HMAC(K, V || 0x00 || data); V = HMAC(K, V)
  Bytes input(value_.begin(), value_.end());
  input.push_back(0x00);
  input.insert(input.end(), data.begin(), data.end());
  Sha256Digest k = hmac_sha256(BytesView(key_.data(), key_.size()), input);
  std::copy(k.begin(), k.end(), key_.begin());
  Sha256Digest v = hmac_sha256(BytesView(key_.data(), key_.size()),
                               BytesView(value_.data(), value_.size()));
  std::copy(v.begin(), v.end(), value_.begin());

  if (data.empty()) return;
  // Second round with 0x01 separator.
  input.assign(value_.begin(), value_.end());
  input.push_back(0x01);
  input.insert(input.end(), data.begin(), data.end());
  k = hmac_sha256(BytesView(key_.data(), key_.size()), input);
  std::copy(k.begin(), k.end(), key_.begin());
  v = hmac_sha256(BytesView(key_.data(), key_.size()),
                  BytesView(value_.data(), value_.size()));
  std::copy(v.begin(), v.end(), value_.begin());
}

Bytes HmacDrbg::generate(std::size_t length) {
  Bytes out;
  out.reserve(length);
  while (out.size() < length) {
    const Sha256Digest v = hmac_sha256(BytesView(key_.data(), key_.size()),
                                       BytesView(value_.data(), value_.size()));
    std::copy(v.begin(), v.end(), value_.begin());
    const std::size_t take = std::min(v.size(), length - out.size());
    out.insert(out.end(), v.begin(), v.begin() + static_cast<long>(take));
  }
  update({});
  return out;
}

void HmacDrbg::reseed(BytesView entropy) { update(entropy); }

}  // namespace guardnn::crypto
