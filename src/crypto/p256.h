// NIST P-256 (secp256r1) elliptic-curve group operations.
//
// This is the public-key substrate for GuardNN's device identity: the
// manufacturer embeds a per-device ECDSA key pair (SK_Accel / PK_Accel) and
// signs the public key with its CA key; sessions are established with ECDHE
// (paper Section II-C, Table I).
#pragma once

#include <optional>

#include "crypto/bigint.h"

namespace guardnn::crypto {

/// Curve parameters for P-256: y^2 = x^3 - 3x + b over GF(p).
struct P256Params {
  U256 p;   ///< Field prime.
  U256 n;   ///< Group order.
  U256 b;   ///< Curve coefficient b.
  U256 gx;  ///< Generator x.
  U256 gy;  ///< Generator y.
};

const P256Params& p256();

/// Affine point; infinity is represented by `infinity == true`.
struct AffinePoint {
  U256 x;
  U256 y;
  bool infinity = false;

  static AffinePoint at_infinity() {
    AffinePoint pt;
    pt.infinity = true;
    return pt;
  }

  friend bool operator==(const AffinePoint& a, const AffinePoint& b) {
    if (a.infinity || b.infinity) return a.infinity == b.infinity;
    return a.x == b.x && a.y == b.y;
  }
};

/// Returns true when the point satisfies the curve equation (or is infinity).
bool on_curve(const AffinePoint& pt);

/// Point addition (complete: handles doubling, inverses, infinity).
AffinePoint ec_add(const AffinePoint& a, const AffinePoint& b);

/// Scalar multiplication k*P using Jacobian coordinates internally
/// (double-and-add; fast path for simulation-side verification).
AffinePoint ec_scalar_mult(const U256& k, const AffinePoint& point);

/// Montgomery-ladder scalar multiplication: fixed double+add schedule per
/// bit regardless of the key, the structure a hardware implementation would
/// use against timing side channels. Functionally identical to
/// ec_scalar_mult (property-tested).
AffinePoint ec_scalar_mult_ladder(const U256& k, const AffinePoint& point);

/// k*G for the P-256 generator.
AffinePoint ec_scalar_base_mult(const U256& k);

/// Serializes as uncompressed SEC1 (0x04 || X || Y), 65 bytes.
Bytes encode_point(const AffinePoint& pt);

/// Parses an uncompressed SEC1 point; returns nullopt when malformed or not
/// on the curve (defends the key-exchange against invalid-curve attacks).
std::optional<AffinePoint> decode_point(BytesView bytes);

}  // namespace guardnn::crypto
