#include "crypto/mem_mac.h"

#include <cstring>

namespace guardnn::crypto {
namespace {

// Doubles a 128-bit value in GF(2^128) per the CMAC subkey derivation.
AesBlock gf_double(const AesBlock& in) {
  AesBlock out{};
  u8 carry = 0;
  for (int i = 15; i >= 0; --i) {
    const u8 next_carry = static_cast<u8>(in[i] >> 7);
    out[i] = static_cast<u8>((in[i] << 1) | carry);
    carry = next_carry;
  }
  if (carry) out[15] ^= 0x87;
  return out;
}

}  // namespace

AesBlock cmac_aes128(const Aes128& aes, BytesView message) {
  AesBlock zero{};
  const AesBlock l = aes.encrypt(zero);
  const AesBlock k1 = gf_double(l);
  const AesBlock k2 = gf_double(k1);

  const std::size_t n_blocks =
      message.empty() ? 1 : (message.size() + kAesBlockBytes - 1) / kAesBlockBytes;
  const bool last_complete = !message.empty() && message.size() % kAesBlockBytes == 0;

  AesBlock x{};
  for (std::size_t b = 0; b + 1 < n_blocks; ++b) {
    for (std::size_t i = 0; i < kAesBlockBytes; ++i)
      x[i] ^= message[b * kAesBlockBytes + i];
    x = aes.encrypt(x);
  }

  AesBlock last{};
  const std::size_t tail_offset = (n_blocks - 1) * kAesBlockBytes;
  const std::size_t tail_len = message.size() - tail_offset;
  if (last_complete) {
    for (std::size_t i = 0; i < kAesBlockBytes; ++i)
      last[i] = static_cast<u8>(message[tail_offset + i] ^ k1[i]);
  } else {
    for (std::size_t i = 0; i < tail_len; ++i) last[i] = message[tail_offset + i];
    last[tail_len] = 0x80;
    for (std::size_t i = 0; i < kAesBlockBytes; ++i) last[i] ^= k2[i];
  }
  for (std::size_t i = 0; i < kAesBlockBytes; ++i) x[i] ^= last[i];
  return aes.encrypt(x);
}

u64 memory_mac(const Aes128& aes, u64 address, u64 version, BytesView data) {
  Bytes message(16 + data.size());
  store_be64(message.data(), address);
  store_be64(message.data() + 8, version);
  std::memcpy(message.data() + 16, data.data(), data.size());
  const AesBlock tag = cmac_aes128(aes, message);
  return load_be64(tag.data());
}

}  // namespace guardnn::crypto
