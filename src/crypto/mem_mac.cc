#include "crypto/mem_mac.h"

#include <cstring>

namespace guardnn::crypto {
namespace {

// Doubles a 128-bit value in GF(2^128) per the CMAC subkey derivation.
AesBlock gf_double(const AesBlock& in) {
  AesBlock out{};
  u8 carry = 0;
  for (int i = 15; i >= 0; --i) {
    const u8 next_carry = static_cast<u8>(in[i] >> 7);
    out[i] = static_cast<u8>((in[i] << 1) | carry);
    carry = next_carry;
  }
  if (carry) out[15] ^= 0x87;
  return out;
}

inline void xor_block(AesBlock& dst, const u8* src) {
  xor_bytes(dst.data(), src, kAesBlockBytes);
}

}  // namespace

CmacSubkeys cmac_derive_subkeys(const Aes128& aes) {
  AesBlock zero{};
  const AesBlock l = aes.encrypt(zero);
  CmacSubkeys sk;
  sk.k1 = gf_double(l);
  sk.k2 = gf_double(sk.k1);
  return sk;
}

void CmacState::update(BytesView data) {
  const u8* p = data.data();
  std::size_t n = data.size();
  if (n == 0) return;

  // Drain the pending buffer first. A full buffer is only processed once we
  // know more data follows (the final block gets K1/K2 treatment instead).
  if (buf_len_ > 0) {
    if (buf_len_ == kAesBlockBytes) {
      xor_block(x_, buf_.data());
      aes_->encrypt_block(x_.data());
      buf_len_ = 0;
    } else {
      const std::size_t take = std::min(kAesBlockBytes - buf_len_, n);
      std::memcpy(buf_.data() + buf_len_, p, take);
      buf_len_ += take;
      p += take;
      n -= take;
      if (n == 0) return;
      // More data follows, so the now-full buffer is an interior block.
      xor_block(x_, buf_.data());
      aes_->encrypt_block(x_.data());
      buf_len_ = 0;
    }
  }

  // Bulk interior blocks straight from the input — strictly more than one
  // block must remain so the candidate final block stays buffered.
  while (n > kAesBlockBytes) {
    xor_block(x_, p);
    aes_->encrypt_block(x_.data());
    p += kAesBlockBytes;
    n -= kAesBlockBytes;
  }

  std::memcpy(buf_.data(), p, n);
  buf_len_ = n;
}

AesBlock CmacState::finish() {
  AesBlock last;
  if (buf_len_ == kAesBlockBytes) {
    last = buf_;
    xor_block(last, subkeys_.k1.data());
  } else {
    last.fill(0);
    std::memcpy(last.data(), buf_.data(), buf_len_);
    last[buf_len_] = 0x80;
    xor_block(last, subkeys_.k2.data());
  }
  xor_block(x_, last.data());
  aes_->encrypt_block(x_.data());
  return x_;
}

AesBlock cmac_aes128(const Aes128& aes, BytesView message) {
  CmacState state(aes);
  state.update(message);
  return state.finish();
}

u64 memory_mac(const Aes128& aes, const CmacSubkeys& subkeys, u64 address,
               u64 version, BytesView data) {
  CmacState state(aes, subkeys);
  u8 header[16];
  store_be64(header, address);
  store_be64(header + 8, version);
  state.update(BytesView(header, 16));
  state.update(data);
  const AesBlock tag = state.finish();
  return load_be64(tag.data());
}

u64 memory_mac(const Aes128& aes, u64 address, u64 version, BytesView data) {
  return memory_mac(aes, cmac_derive_subkeys(aes), address, version, data);
}

}  // namespace guardnn::crypto
