#include "crypto/mem_mac.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace guardnn::crypto {
namespace {

// Doubles a 128-bit value in GF(2^128) per the CMAC subkey derivation.
AesBlock gf_double(const AesBlock& in) {
  AesBlock out{};
  u8 carry = 0;
  for (int i = 15; i >= 0; --i) {
    const u8 next_carry = static_cast<u8>(in[i] >> 7);
    out[i] = static_cast<u8>((in[i] << 1) | carry);
    carry = next_carry;
  }
  if (carry) out[15] ^= 0x87;
  return out;
}

inline void xor_block(AesBlock& dst, const u8* src) {
  xor_bytes(dst.data(), src, kAesBlockBytes);
}

/// Copies the 16-byte block at offset `off` of (prefix || body) into `out`,
/// applying the 10* CMAC padding when the message ends inside the block.
/// Returns the number of real message bytes copied (16 for interior blocks).
inline std::size_t gather_block(const CmacMessage& m, std::size_t off,
                                u8 out[kAesBlockBytes]) {
  std::size_t got = 0;
  if (off < m.prefix.size()) {
    const std::size_t take =
        std::min(m.prefix.size() - off, kAesBlockBytes - got);
    std::memcpy(out, m.prefix.data() + off, take);
    got += take;
  }
  if (got < kAesBlockBytes) {
    const std::size_t body_off = off + got - m.prefix.size();
    if (body_off < m.body.size()) {
      const std::size_t take =
          std::min(m.body.size() - body_off, kAesBlockBytes - got);
      std::memcpy(out + got, m.body.data() + body_off, take);
      got += take;
    }
  }
  if (got < kAesBlockBytes) {
    out[got] = 0x80;
    std::memset(out + got + 1, 0, kAesBlockBytes - got - 1);
  }
  return got;
}

}  // namespace

CmacSubkeys cmac_derive_subkeys(const Aes128& aes) {
  AesBlock zero{};
  const AesBlock l = aes.encrypt(zero);
  CmacSubkeys sk;
  sk.k1 = gf_double(l);
  sk.k2 = gf_double(sk.k1);
  return sk;
}

void CmacState::update(BytesView data) {
  const u8* p = data.data();
  std::size_t n = data.size();
  if (n == 0) return;

  // Drain the pending buffer first. A full buffer is only processed once we
  // know more data follows (the final block gets K1/K2 treatment instead).
  if (buf_len_ > 0) {
    if (buf_len_ == kAesBlockBytes) {
      xor_block(x_, buf_.data());
      aes_->encrypt_block(x_.data());
      buf_len_ = 0;
    } else {
      const std::size_t take = std::min(kAesBlockBytes - buf_len_, n);
      std::memcpy(buf_.data() + buf_len_, p, take);
      buf_len_ += take;
      p += take;
      n -= take;
      if (n == 0) return;
      // More data follows, so the now-full buffer is an interior block.
      xor_block(x_, buf_.data());
      aes_->encrypt_block(x_.data());
      buf_len_ = 0;
    }
  }

  // Bulk interior blocks straight from the input — strictly more than one
  // block must remain so the candidate final block stays buffered.
  while (n > kAesBlockBytes) {
    xor_block(x_, p);
    aes_->encrypt_block(x_.data());
    p += kAesBlockBytes;
    n -= kAesBlockBytes;
  }

  std::memcpy(buf_.data(), p, n);
  buf_len_ = n;
}

AesBlock CmacState::finish() {
  AesBlock last;
  if (buf_len_ == kAesBlockBytes) {
    last = buf_;
    xor_block(last, subkeys_.k1.data());
  } else {
    last.fill(0);
    std::memcpy(last.data(), buf_.data(), buf_len_);
    last[buf_len_] = 0x80;
    xor_block(last, subkeys_.k2.data());
  }
  xor_block(x_, last.data());
  aes_->encrypt_block(x_.data());
  return x_;
}

AesBlock cmac_aes128(const Aes128& aes, BytesView message) {
  CmacState state(aes);
  state.update(message);
  return state.finish();
}

void cmac_many(const Aes128& aes, const CmacSubkeys& subkeys,
               const CmacMessage* messages, std::size_t n, AesBlock* tags_out) {
  if (n == 0) return;
  const std::size_t prefix_len = messages[0].prefix.size();
  const std::size_t body_len = messages[0].body.size();
  for (std::size_t i = 1; i < n; ++i) {
    if (messages[i].prefix.size() != prefix_len ||
        messages[i].body.size() != body_len)
      throw std::invalid_argument("cmac_many: messages must share one geometry");
  }
  const std::size_t total = prefix_len + body_len;
  const std::size_t n_blocks = total == 0 ? 1 : (total + kAesBlockBytes - 1) /
                                                    kAesBlockBytes;
  const bool last_is_full = total > 0 && total % kAesBlockBytes == 0;

  // Blocks that straddle the prefix or carry the final padding/subkey
  // treatment go through the generic gather; every block in between lies
  // wholly inside the lane's body and XORs straight from the source — the
  // fast path that dominates on chunk-sized bodies.
  const std::size_t first_body_block =
      (prefix_len + kAesBlockBytes - 1) / kAesBlockBytes;

  for (std::size_t group = 0; group < n; group += kCmacLanes) {
    const std::size_t lanes = std::min(kCmacLanes, n - group);
    AesBlock x[kCmacLanes] = {};
    u8 block[kAesBlockBytes];
    for (std::size_t j = 0; j < n_blocks; ++j) {
      const bool last = j + 1 == n_blocks;
      if (!last && j >= first_body_block) {
        const std::size_t body_off = j * kAesBlockBytes - prefix_len;
        for (std::size_t l = 0; l < lanes; ++l)
          xor_block(x[l], messages[group + l].body.data() + body_off);
      } else {
        for (std::size_t l = 0; l < lanes; ++l) {
          gather_block(messages[group + l], j * kAesBlockBytes, block);
          if (last)
            xor_block(x[l],
                      last_is_full ? subkeys.k1.data() : subkeys.k2.data());
          xor_block(x[l], block);
        }
      }
      // The lanes' CBC states are independent, so this one call is `lanes`
      // parallel AES blocks — the whole point of the batch layout.
      aes.encrypt_blocks(x, x, lanes);
    }
    for (std::size_t l = 0; l < lanes; ++l) tags_out[group + l] = x[l];
  }
}

void memory_mac_many(const Aes128& aes, const CmacSubkeys& subkeys,
                     u64 base_address, u64 version, u64 chunk_bytes,
                     BytesView data, u64* tags_out, std::size_t n) {
  if (n == 0) return;
  if (chunk_bytes == 0)
    throw std::invalid_argument("memory_mac_many: chunk_bytes must be nonzero");
  const std::size_t n_full =
      std::min<std::size_t>(n, data.size() / chunk_bytes);

  u8 headers[kCmacLanes][2 * 8];
  CmacMessage msgs[kCmacLanes];
  AesBlock tags[kCmacLanes];
  for (std::size_t group = 0; group < n_full; group += kCmacLanes) {
    const std::size_t lanes = std::min(kCmacLanes, n_full - group);
    for (std::size_t l = 0; l < lanes; ++l) {
      const std::size_t i = group + l;
      store_be64(headers[l], base_address + i * chunk_bytes);
      store_be64(headers[l] + 8, version);
      msgs[l].prefix = BytesView(headers[l], sizeof(headers[l]));
      msgs[l].body = BytesView(data.data() + i * chunk_bytes, chunk_bytes);
    }
    cmac_many(aes, subkeys, msgs, lanes, tags);
    for (std::size_t l = 0; l < lanes; ++l)
      tags_out[group + l] = load_be64(tags[l].data());
  }
  // Ragged final chunk (region not a whole number of chunks): serial path.
  for (std::size_t i = n_full; i < n; ++i) {
    const std::size_t off = i * chunk_bytes;
    const std::size_t len = off < data.size() ? data.size() - off : 0;
    tags_out[i] = memory_mac(aes, subkeys, base_address + i * chunk_bytes,
                             version,
                             BytesView(len ? data.data() + off : nullptr, len));
  }
}

u64 memory_mac(const Aes128& aes, const CmacSubkeys& subkeys, u64 address,
               u64 version, BytesView data) {
  CmacState state(aes, subkeys);
  u8 header[16];
  store_be64(header, address);
  store_be64(header + 8, version);
  state.update(BytesView(header, 16));
  state.update(data);
  const AesBlock tag = state.finish();
  return load_be64(tag.data());
}

u64 memory_mac(const Aes128& aes, u64 address, u64 version, BytesView data) {
  return memory_mac(aes, cmac_derive_subkeys(aes), address, version, data);
}

}  // namespace guardnn::crypto
