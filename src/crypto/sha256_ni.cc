// x86 SHA-NI backend for the SHA-256 compression function, compiled with
// -msha -msse4.1 under GUARDNN_NATIVE_CRYPTO.
//
// The SHA256RNDS2 unit retires two rounds per instruction and the message
// schedule (SHA256MSG1/MSG2) overlaps with the round computation, so one
// 64 B block compresses in ~40 instructions instead of ~300 scalar ops. The
// working state stays in two XMM registers across the whole multi-block run,
// which is what makes the bulk `process_blocks` path worth feeding with large
// spans (the seal/unseal content hashes, attestation weight hashes). The
// dispatcher in sha256.cc only routes here after the CPUID.7.0:EBX.SHA check
// passes, so this TU may freely use the intrinsics.
#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

#include "crypto/sha256.h"

namespace guardnn::crypto::detail {

void shani_process_blocks(u32* state, const u8* data, std::size_t n_blocks) {
  // Load the a..h state into the ABEF/CDGH register layout SHA256RNDS2 wants.
  __m128i tmp = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[0]));
  __m128i state1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[4]));
  const __m128i shuf_mask =
      _mm_set_epi64x(0x0c0d0e0f08090a0bLL, 0x0405060700010203LL);

  tmp = _mm_shuffle_epi32(tmp, 0xB1);        // CDAB
  state1 = _mm_shuffle_epi32(state1, 0x1B);  // EFGH
  __m128i state0 = _mm_alignr_epi8(tmp, state1, 8);  // ABEF
  state1 = _mm_blend_epi16(state1, tmp, 0xF0);       // CDGH

  while (n_blocks > 0) {
    const __m128i abef_save = state0;
    const __m128i cdgh_save = state1;

    // Rounds 0-3
    __m128i msg = _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 0));
    __m128i msg0 = _mm_shuffle_epi8(msg, shuf_mask);
    msg = _mm_add_epi32(msg0,
                        _mm_set_epi64x(0xE9B5DBA5B5C0FBCFLL, 0x71374491428A2F98LL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

    // Rounds 4-7
    __m128i msg1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 16));
    msg1 = _mm_shuffle_epi8(msg1, shuf_mask);
    msg = _mm_add_epi32(msg1,
                        _mm_set_epi64x(0xAB1C5ED5923F82A4LL, 0x59F111F13956C25BLL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg0 = _mm_sha256msg1_epu32(msg0, msg1);

    // Rounds 8-11
    __m128i msg2 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 32));
    msg2 = _mm_shuffle_epi8(msg2, shuf_mask);
    msg = _mm_add_epi32(msg2,
                        _mm_set_epi64x(0x550C7DC3243185BELL, 0x12835B01D807AA98LL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg1 = _mm_sha256msg1_epu32(msg1, msg2);

    // Rounds 12-15
    __m128i msg3 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 48));
    msg3 = _mm_shuffle_epi8(msg3, shuf_mask);
    msg = _mm_add_epi32(msg3,
                        _mm_set_epi64x(0xC19BF1749BDC06A7LL, 0x80DEB1FE72BE5D74LL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg3, msg2, 4);
    msg0 = _mm_add_epi32(msg0, tmp);
    msg0 = _mm_sha256msg2_epu32(msg0, msg3);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg2 = _mm_sha256msg1_epu32(msg2, msg3);

    // Rounds 16-19
    msg = _mm_add_epi32(msg0,
                        _mm_set_epi64x(0x240CA1CC0FC19DC6LL, 0xEFBE4786E49B69C1LL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg0, msg3, 4);
    msg1 = _mm_add_epi32(msg1, tmp);
    msg1 = _mm_sha256msg2_epu32(msg1, msg0);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg3 = _mm_sha256msg1_epu32(msg3, msg0);

    // Rounds 20-23
    msg = _mm_add_epi32(msg1,
                        _mm_set_epi64x(0x76F988DA5CB0A9DCLL, 0x4A7484AA2DE92C6FLL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg1, msg0, 4);
    msg2 = _mm_add_epi32(msg2, tmp);
    msg2 = _mm_sha256msg2_epu32(msg2, msg1);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg0 = _mm_sha256msg1_epu32(msg0, msg1);

    // Rounds 24-27
    msg = _mm_add_epi32(msg2,
                        _mm_set_epi64x(0xBF597FC7B00327C8LL, 0xA831C66D983E5152LL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg2, msg1, 4);
    msg3 = _mm_add_epi32(msg3, tmp);
    msg3 = _mm_sha256msg2_epu32(msg3, msg2);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg1 = _mm_sha256msg1_epu32(msg1, msg2);

    // Rounds 28-31
    msg = _mm_add_epi32(msg3,
                        _mm_set_epi64x(0x1429296706CA6351LL, 0xD5A79147C6E00BF3LL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg3, msg2, 4);
    msg0 = _mm_add_epi32(msg0, tmp);
    msg0 = _mm_sha256msg2_epu32(msg0, msg3);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg2 = _mm_sha256msg1_epu32(msg2, msg3);

    // Rounds 32-35
    msg = _mm_add_epi32(msg0,
                        _mm_set_epi64x(0x53380D134D2C6DFCLL, 0x2E1B213827B70A85LL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg0, msg3, 4);
    msg1 = _mm_add_epi32(msg1, tmp);
    msg1 = _mm_sha256msg2_epu32(msg1, msg0);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg3 = _mm_sha256msg1_epu32(msg3, msg0);

    // Rounds 36-39
    msg = _mm_add_epi32(msg1,
                        _mm_set_epi64x(0x92722C8581C2C92ELL, 0x766A0ABB650A7354LL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg1, msg0, 4);
    msg2 = _mm_add_epi32(msg2, tmp);
    msg2 = _mm_sha256msg2_epu32(msg2, msg1);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg0 = _mm_sha256msg1_epu32(msg0, msg1);

    // Rounds 40-43
    msg = _mm_add_epi32(msg2,
                        _mm_set_epi64x(0xC76C51A3C24B8B70LL, 0xA81A664BA2BFE8A1LL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg2, msg1, 4);
    msg3 = _mm_add_epi32(msg3, tmp);
    msg3 = _mm_sha256msg2_epu32(msg3, msg2);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg1 = _mm_sha256msg1_epu32(msg1, msg2);

    // Rounds 44-47
    msg = _mm_add_epi32(msg3,
                        _mm_set_epi64x(0x106AA070F40E3585LL, 0xD6990624D192E819LL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg3, msg2, 4);
    msg0 = _mm_add_epi32(msg0, tmp);
    msg0 = _mm_sha256msg2_epu32(msg0, msg3);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg2 = _mm_sha256msg1_epu32(msg2, msg3);

    // Rounds 48-51
    msg = _mm_add_epi32(msg0,
                        _mm_set_epi64x(0x34B0BCB52748774CLL, 0x1E376C0819A4C116LL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg0, msg3, 4);
    msg1 = _mm_add_epi32(msg1, tmp);
    msg1 = _mm_sha256msg2_epu32(msg1, msg0);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg3 = _mm_sha256msg1_epu32(msg3, msg0);

    // Rounds 52-55
    msg = _mm_add_epi32(msg1,
                        _mm_set_epi64x(0x682E6FF35B9CCA4FLL, 0x4ED8AA4A391C0CB3LL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg1, msg0, 4);
    msg2 = _mm_add_epi32(msg2, tmp);
    msg2 = _mm_sha256msg2_epu32(msg2, msg1);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

    // Rounds 56-59
    msg = _mm_add_epi32(msg2,
                        _mm_set_epi64x(0x8CC7020884C87814LL, 0x78A5636F748F82EELL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg2, msg1, 4);
    msg3 = _mm_add_epi32(msg3, tmp);
    msg3 = _mm_sha256msg2_epu32(msg3, msg2);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

    // Rounds 60-63
    msg = _mm_add_epi32(msg3,
                        _mm_set_epi64x(0xC67178F2BEF9A3F7LL, 0xA4506CEB90BEFFFALL));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

    state0 = _mm_add_epi32(state0, abef_save);
    state1 = _mm_add_epi32(state1, cdgh_save);

    data += 64;
    --n_blocks;
  }

  // Back to the canonical a..h layout.
  tmp = _mm_shuffle_epi32(state0, 0x1B);        // FEBA
  state1 = _mm_shuffle_epi32(state1, 0xB1);     // DCHG
  state0 = _mm_blend_epi16(tmp, state1, 0xF0);  // DCBA
  state1 = _mm_alignr_epi8(state1, tmp, 8);     // HGFE

  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[0]), state0);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[4]), state1);
}

}  // namespace guardnn::crypto::detail

#endif  // x86
