// ECDHE key agreement over P-256 plus HKDF session-key derivation.
//
// This is the InitSession key exchange from the paper: the remote user and
// the accelerator each contribute an ephemeral key pair; the shared secret is
// expanded into the symmetric session key K_Session and a MAC key for the
// secure channel.
#pragma once

#include "crypto/drbg.h"
#include "crypto/p256.h"

namespace guardnn::crypto {

struct EcdhKeyPair {
  U256 private_key;
  AffinePoint public_key;
};

/// Derived session keys: AES-128 session key and an HMAC key.
struct SessionKeys {
  std::array<u8, 16> enc_key{};
  std::array<u8, 32> mac_key{};
};

/// Generates an ephemeral ECDH key pair.
EcdhKeyPair ecdh_generate_key(HmacDrbg& drbg);

/// Computes the raw shared secret (x-coordinate of d*Q_peer).
/// Throws std::invalid_argument on the point at infinity (degenerate peer key).
U256 ecdh_shared_secret(const U256& private_key, const AffinePoint& peer_public);

/// Derives session keys from the shared secret and both public keys
/// (transcript-bound so a MITM swapping keys changes the derived secret).
SessionKeys derive_session_keys(const U256& shared_x, const AffinePoint& user_pub,
                                const AffinePoint& accel_pub);

}  // namespace guardnn::crypto
