// AES-128 block cipher and the CTR mode used by the GuardNN memory
// encryption engine (Section II-D of the paper).
//
// The hardware AES engines in GuardNN are pipelined with a 12-cycle latency;
// this module provides the *functional* behaviour, while the latency model
// lives in memprot::AesPipelineModel.
#pragma once

#include <array>

#include "common/types.h"

namespace guardnn::crypto {

inline constexpr std::size_t kAesBlockBytes = 16;
inline constexpr std::size_t kAesKeyBytes = 16;

using AesBlock = std::array<u8, kAesBlockBytes>;
using AesKey = std::array<u8, kAesKeyBytes>;

/// AES-128 with precomputed round keys. Copyable value type.
class Aes128 {
 public:
  explicit Aes128(const AesKey& key);

  /// Encrypts one 16-byte block in place.
  void encrypt_block(u8* block) const;
  /// Decrypts one 16-byte block in place.
  void decrypt_block(u8* block) const;

  AesBlock encrypt(const AesBlock& in) const {
    AesBlock out = in;
    encrypt_block(out.data());
    return out;
  }
  AesBlock decrypt(const AesBlock& in) const {
    AesBlock out = in;
    decrypt_block(out.data());
    return out;
  }

 private:
  // 11 round keys x 16 bytes.
  std::array<u8, 176> round_keys_{};
};

/// Counter block layout used by GuardNN's memory encryption: the 128-bit
/// counter is the concatenation of the 64-bit physical block address and the
/// 64-bit version number (paper Section II-D.2).
AesBlock make_counter_block(u64 block_address, u64 version_number);

/// AES-CTR keystream XOR: encrypt == decrypt. `counter0` is the first counter
/// block; subsequent blocks increment the low 64 bits (the VN field is held
/// in the high half by callers that follow the GuardNN layout).
void ctr_xcrypt(const Aes128& aes, const AesBlock& counter0, MutBytesView data);

/// GuardNN-style memory-block encryption: every 16-byte AES block inside
/// `data` is keyed by (base_block_address + i, version_number). This mirrors
/// the hardware, where the counter is formed per 128-bit memory block.
void memory_xcrypt(const Aes128& aes, u64 base_block_address, u64 version_number,
                   MutBytesView data);

}  // namespace guardnn::crypto
