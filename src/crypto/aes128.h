// AES-128 block cipher and the CTR mode used by the GuardNN memory
// encryption engine (Section II-D of the paper).
//
// The hardware AES engines in GuardNN are pipelined with a 12-cycle latency;
// this module provides the *functional* behaviour, while the latency model
// lives in memprot::AesPipelineModel. The paper's line-rate argument (3 AES
// engines ≈ 9.6 GB/s, Section III-B) only holds for the functional model if
// software AES is fast, so the encrypt path is a 32-bit T-table core with
// runtime dispatch to AES-NI / ARMv8-CE when the build enables them
// (GUARDNN_NATIVE_CRYPTO) and the CPU supports them.
#pragma once

#include <array>
#include <vector>

#include "common/types.h"

namespace guardnn::crypto {

inline constexpr std::size_t kAesBlockBytes = 16;
inline constexpr std::size_t kAesKeyBytes = 16;

using AesBlock = std::array<u8, kAesBlockBytes>;
using AesKey = std::array<u8, kAesKeyBytes>;

namespace detail {

/// Expanded AES-128 key in both layouts the backends want: canonical bytes
/// (FIPS-197 order, consumed by the scalar reference core and the AES-NI /
/// ARM-CE intrinsics) and big-endian 32-bit columns (consumed by the T-table
/// core).
struct AesRoundKeys {
  alignas(16) std::array<u8, 176> bytes{};  // 11 round keys x 16 bytes
  std::array<u32, 44> words{};              // same keys as big-endian columns
};

// Native fast paths, defined in aes128_ni.cc / aes128_ce.cc when
// GUARDNN_NATIVE_CRYPTO compiles them in; only called after the runtime CPU
// check passes.
void aesni_encrypt_blocks(const AesRoundKeys& rk, const u8* in, u8* out,
                          std::size_t n_blocks);
void vaes_encrypt_blocks(const AesRoundKeys& rk, const u8* in, u8* out,
                         std::size_t n_blocks);
bool vaes_cpu_supported();
void armce_encrypt_blocks(const AesRoundKeys& rk, const u8* in, u8* out,
                          std::size_t n_blocks);
bool armce_cpu_supported();

}  // namespace detail

/// Software implementations of the AES encrypt core, selectable at runtime.
enum class Aes128Backend : u8 {
  kReference,  ///< Byte-at-a-time textbook rounds; always built, correctness anchor.
  kTtable,     ///< 32-bit T-table core; always built, portable fast path.
  kAesni,      ///< x86 AES-NI, 8-wide pipelined; built under GUARDNN_NATIVE_CRYPTO.
  kArmCe,      ///< ARMv8 Crypto Extensions; built under GUARDNN_NATIVE_CRYPTO.
  kVaes,       ///< x86 VAES + AVX-512: 4 blocks per instruction, 16 in
               ///< flight; built under GUARDNN_NATIVE_CRYPTO.
};

/// Human-readable backend name ("reference", "ttable", "aesni", "armce",
/// "vaes").
const char* aes_backend_name(Aes128Backend backend);

/// True when `backend` is compiled in *and* the CPU supports it.
bool aes_backend_available(Aes128Backend backend);

/// Every backend usable on this machine, reference first.
std::vector<Aes128Backend> aes_available_backends();

/// Backend the dispatcher currently routes encrypt calls to. Defaults to the
/// fastest available (native > T-table).
Aes128Backend aes_active_backend();

/// Forces a specific backend (tests / benchmarking). Throws
/// std::invalid_argument when the backend is not available on this machine.
void aes_force_backend(Aes128Backend backend);

/// AES-128 with precomputed round keys. Copyable value type.
class Aes128 {
 public:
  explicit Aes128(const AesKey& key);

  /// Encrypts one 16-byte block in place.
  void encrypt_block(u8* block) const;
  /// Decrypts one 16-byte block in place.
  void decrypt_block(u8* block) const;

  /// Encrypts `n_blocks` consecutive 16-byte blocks from `in` to `out`
  /// (in == out allowed). The batch form is what feeds the pipelined AES-NI
  /// path real ILP; the CTR and CMAC layers are built on it.
  void encrypt_blocks(const u8* in, u8* out, std::size_t n_blocks) const;
  void encrypt_blocks(const AesBlock* in, AesBlock* out, std::size_t n_blocks) const {
    // AesBlock is std::array<u8,16>: contiguous, so the array of blocks is a
    // flat byte range (reinterpreting as u8* keeps pointer arithmetic across
    // block boundaries valid).
    encrypt_blocks(reinterpret_cast<const u8*>(in), reinterpret_cast<u8*>(out),
                   n_blocks);
  }

  AesBlock encrypt(const AesBlock& in) const {
    AesBlock out = in;
    encrypt_block(out.data());
    return out;
  }
  AesBlock decrypt(const AesBlock& in) const {
    AesBlock out = in;
    decrypt_block(out.data());
    return out;
  }

  /// Wipes the expanded key schedule (CloseSession key-zeroization path).
  /// The object must not be used for crypto afterwards.
  void zeroize() {
    secure_zero(rk_.bytes.data(), rk_.bytes.size());
    secure_zero(rk_.words.data(), rk_.words.size() * sizeof(u32));
  }

  /// True when every byte of the key schedule is zero (trusted-side test
  /// hook for the zeroization guarantee; a real expanded key is never
  /// all-zero because round constants are folded in).
  bool zeroized() const {
    for (u8 b : rk_.bytes)
      if (b != 0) return false;
    for (u32 w : rk_.words)
      if (w != 0) return false;
    return true;
  }

 private:
  detail::AesRoundKeys rk_;
};

/// Counter block layout used by GuardNN's memory encryption: the 128-bit
/// counter is the concatenation of the 64-bit physical block address and the
/// 64-bit version number (paper Section II-D.2).
AesBlock make_counter_block(u64 block_address, u64 version_number);

/// AES-CTR keystream XOR: encrypt == decrypt. `counter0` is the first counter
/// block; subsequent blocks increment the low 64 bits (the VN field is held
/// in the high half by callers that follow the GuardNN layout). The keystream
/// for a burst is generated through the batch encrypt path and XORed
/// word-wise.
void ctr_xcrypt(const Aes128& aes, const AesBlock& counter0, MutBytesView data);

/// GuardNN-style memory-block encryption: every 16-byte AES block inside
/// `data` is keyed by (base_block_address + i, version_number). This mirrors
/// the hardware, where the counter is formed per 128-bit memory block.
void memory_xcrypt(const Aes128& aes, u64 base_block_address, u64 version_number,
                   MutBytesView data);

}  // namespace guardnn::crypto
