#include "crypto/cert.h"

namespace guardnn::crypto {

Bytes DeviceCertificate::tbs_bytes() const {
  Bytes out(device_id.begin(), device_id.end());
  out.push_back(0x00);  // Separator so id/key boundaries are unambiguous.
  const Bytes pub = encode_point(device_public);
  out.insert(out.end(), pub.begin(), pub.end());
  return out;
}

DeviceCertificate ManufacturerCa::issue(const std::string& device_id,
                                        const AffinePoint& device_public) const {
  DeviceCertificate cert;
  cert.device_id = device_id;
  cert.device_public = device_public;
  cert.ca_signature = ecdsa_sign(key_.private_key, cert.tbs_bytes());
  return cert;
}

bool verify_certificate(const DeviceCertificate& cert, const AffinePoint& ca_public) {
  if (cert.device_public.infinity || !on_curve(cert.device_public)) return false;
  return ecdsa_verify(ca_public, cert.tbs_bytes(), cert.ca_signature);
}

}  // namespace guardnn::crypto
