// SHA-256, used by GuardNN for remote attestation hash chains, HMAC, HKDF
// and ECDSA message digests.
#pragma once

#include <array>

#include "common/types.h"

namespace guardnn::crypto {

inline constexpr std::size_t kSha256DigestBytes = 32;
using Sha256Digest = std::array<u8, kSha256DigestBytes>;

/// Incremental SHA-256. `update` may be called any number of times.
class Sha256 {
 public:
  Sha256() { reset(); }

  void reset();
  void update(BytesView data);
  Sha256Digest finalize();

  /// One-shot convenience.
  static Sha256Digest hash(BytesView data) {
    Sha256 h;
    h.update(data);
    return h.finalize();
  }

 private:
  void process_block(const u8* block);

  std::array<u32, 8> state_{};
  std::array<u8, 64> buffer_{};
  std::size_t buffer_len_ = 0;
  u64 total_len_ = 0;
};

}  // namespace guardnn::crypto
