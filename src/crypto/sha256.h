// SHA-256, used by GuardNN for remote attestation hash chains, HMAC, HKDF
// and ECDSA message digests.
#pragma once

#include <array>

#include "common/types.h"

namespace guardnn::crypto {

inline constexpr std::size_t kSha256DigestBytes = 32;
using Sha256Digest = std::array<u8, kSha256DigestBytes>;

namespace detail {
// x86 SHA-NI fast path, defined in sha256_ni.cc when GUARDNN_NATIVE_CRYPTO
// compiles it in; only called after the runtime CPUID check passes.
void shani_process_blocks(u32* state, const u8* data, std::size_t n_blocks);
}  // namespace detail

/// Software implementations of the SHA-256 compression function, selectable
/// at runtime (mirrors Aes128Backend): the portable scalar rounds, and the
/// x86 SHA extensions when compiled in and supported by the CPU.
enum class Sha256Backend : u8 {
  kScalar,  ///< Portable 32-bit rounds; always built, correctness anchor.
  kShani,   ///< x86 SHA-NI; built under GUARDNN_NATIVE_CRYPTO.
};

/// Human-readable backend name ("scalar", "shani").
const char* sha256_backend_name(Sha256Backend backend);

/// True when `backend` is compiled in *and* the CPU supports it.
bool sha256_backend_available(Sha256Backend backend);

/// Backend the dispatcher currently routes compression calls to. Defaults to
/// the fastest available; GUARDNN_SHA256_BACKEND=scalar|shani pins it for a
/// process.
Sha256Backend sha256_active_backend();

/// Forces a specific backend (tests / benchmarking). Throws
/// std::invalid_argument when the backend is not available on this machine.
void sha256_force_backend(Sha256Backend backend);

/// Incremental SHA-256. `update` may be called any number of times.
class Sha256 {
 public:
  Sha256() { reset(); }

  void reset();
  void update(BytesView data);
  Sha256Digest finalize();

  /// One-shot convenience.
  static Sha256Digest hash(BytesView data) {
    Sha256 h;
    h.update(data);
    return h.finalize();
  }

 private:
  void process_block(const u8* block) { process_blocks(block, 1); }
  /// Runs `n_blocks` consecutive 64 B blocks through the active compression
  /// backend (SHA-NI keeps the state in registers across the whole run).
  void process_blocks(const u8* blocks, std::size_t n_blocks);

  std::array<u32, 8> state_{};
  std::array<u8, 64> buffer_{};
  std::size_t buffer_len_ = 0;
  u64 total_len_ = 0;
};

}  // namespace guardnn::crypto
