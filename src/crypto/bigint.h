// Fixed-width 256-bit unsigned integer arithmetic with modular operations,
// sized exactly for the NIST P-256 group used by GuardNN's device identity
// (ECDSA) and session key exchange (ECDHE).
#pragma once

#include <array>
#include <string>

#include "common/types.h"

namespace guardnn::crypto {

/// 256-bit unsigned integer; limbs are little-endian 64-bit words.
struct U256 {
  std::array<u64, 4> limb{};

  static U256 zero() { return {}; }
  static U256 one() {
    U256 v;
    v.limb[0] = 1;
    return v;
  }
  static U256 from_u64(u64 x) {
    U256 v;
    v.limb[0] = x;
    return v;
  }
  /// Parses a big-endian hex string (up to 64 hex digits).
  static U256 from_hex(const std::string& hex);
  /// Parses 32 big-endian bytes.
  static U256 from_bytes(BytesView bytes);

  /// Serializes to 32 big-endian bytes.
  Bytes to_bytes() const;
  std::string to_hex() const;

  bool is_zero() const { return (limb[0] | limb[1] | limb[2] | limb[3]) == 0; }
  bool is_odd() const { return limb[0] & 1; }
  bool bit(unsigned i) const { return (limb[i / 64] >> (i % 64)) & 1; }
  /// Index of the highest set bit, or -1 when zero.
  int bit_length() const;

  friend bool operator==(const U256& a, const U256& b) { return a.limb == b.limb; }
};

/// Three-way comparison: -1, 0 or +1.
int cmp(const U256& a, const U256& b);

/// a + b; returns the carry-out (0 or 1).
u64 add(U256& out, const U256& a, const U256& b);
/// a - b; returns the borrow-out (0 or 1).
u64 sub(U256& out, const U256& a, const U256& b);

/// Right shift by one bit.
U256 shr1(const U256& a);

/// 512-bit product container for the multiply-then-reduce path.
struct U512 {
  std::array<u64, 8> limb{};
  bool bit(unsigned i) const { return (limb[i / 64] >> (i % 64)) & 1; }
  int bit_length() const;
};

/// Full 256x256 -> 512-bit schoolbook multiply.
U512 mul_wide(const U256& a, const U256& b);

/// x mod m via binary long division. m must be non-zero.
U256 mod_reduce(const U512& x, const U256& m);

/// Modular arithmetic helpers; all operands must already be < m.
U256 add_mod(const U256& a, const U256& b, const U256& m);
U256 sub_mod(const U256& a, const U256& b, const U256& m);
U256 mul_mod(const U256& a, const U256& b, const U256& m);
/// a^e mod m (square-and-multiply).
U256 pow_mod(const U256& a, const U256& e, const U256& m);
/// a^-1 mod m for prime m (Fermat's little theorem). a must be non-zero.
U256 inv_mod_prime(const U256& a, const U256& m);

}  // namespace guardnn::crypto
