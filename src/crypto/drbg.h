// HMAC-DRBG (SP 800-90A style), standing in for the accelerator's true
// random number generator (paper Table I "Key Generation").
//
// The physical TRNG cannot be reproduced in simulation; a deterministic DRBG
// seeded per-device exercises exactly the same key-generation code paths
// while keeping tests reproducible (see DESIGN.md substitution table).
#pragma once

#include "common/types.h"
#include "crypto/sha256.h"

namespace guardnn::crypto {

class HmacDrbg {
 public:
  /// Instantiates the DRBG from entropy (and optional personalization).
  explicit HmacDrbg(BytesView entropy, BytesView personalization = {});

  /// Generates `length` pseudo-random bytes.
  Bytes generate(std::size_t length);

  /// Mixes additional entropy into the state.
  void reseed(BytesView entropy);

 private:
  void update(BytesView data);

  std::array<u8, 32> key_{};
  std::array<u8, 32> value_{};
};

}  // namespace guardnn::crypto
