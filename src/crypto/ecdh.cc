#include "crypto/ecdh.h"

#include <stdexcept>

#include "crypto/ecdsa.h"
#include "crypto/hmac.h"

namespace guardnn::crypto {

EcdhKeyPair ecdh_generate_key(HmacDrbg& drbg) {
  const EcdsaKeyPair kp = ecdsa_generate_key(drbg);
  return EcdhKeyPair{kp.private_key, kp.public_key};
}

U256 ecdh_shared_secret(const U256& private_key, const AffinePoint& peer_public) {
  if (peer_public.infinity || !on_curve(peer_public))
    throw std::invalid_argument("ecdh_shared_secret: invalid peer public key");
  const AffinePoint shared = ec_scalar_mult(private_key, peer_public);
  if (shared.infinity)
    throw std::invalid_argument("ecdh_shared_secret: degenerate shared point");
  return shared.x;
}

SessionKeys derive_session_keys(const U256& shared_x, const AffinePoint& user_pub,
                                const AffinePoint& accel_pub) {
  Bytes ikm = shared_x.to_bytes();
  Bytes info;
  const Bytes up = encode_point(user_pub);
  const Bytes ap = encode_point(accel_pub);
  info.insert(info.end(), up.begin(), up.end());
  info.insert(info.end(), ap.begin(), ap.end());
  static const char* kLabel = "guardnn-session-v1";
  Bytes salt(kLabel, kLabel + 18);

  const Bytes okm = hkdf(salt, ikm, info, 48);
  SessionKeys keys;
  std::copy(okm.begin(), okm.begin() + 16, keys.enc_key.begin());
  std::copy(okm.begin() + 16, okm.end(), keys.mac_key.begin());
  return keys;
}

}  // namespace guardnn::crypto
