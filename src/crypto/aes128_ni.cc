// x86 AES-NI backend, compiled with -maes under GUARDNN_NATIVE_CRYPTO.
//
// The AESENC unit is pipelined (1 instruction/cycle throughput, ~4 cycle
// latency), so the main loop runs 8 independent blocks through each round to
// keep the pipeline full — the software analogue of GuardNN's 3 parallel AES
// engines covering DRAM line rate. The dispatcher in aes128.cc only routes
// here after the CPUID AES check passes, so this TU may freely use the
// intrinsics.
#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

#include "crypto/aes128.h"

namespace guardnn::crypto::detail {
namespace {

inline __m128i encrypt_one(__m128i b, const __m128i k[11]) {
  b = _mm_xor_si128(b, k[0]);
  for (int r = 1; r <= 9; ++r) b = _mm_aesenc_si128(b, k[r]);
  return _mm_aesenclast_si128(b, k[10]);
}

}  // namespace

void aesni_encrypt_blocks(const AesRoundKeys& rk, const u8* in, u8* out,
                          std::size_t n_blocks) {
  __m128i k[11];
  for (int i = 0; i < 11; ++i)
    k[i] = _mm_load_si128(reinterpret_cast<const __m128i*>(rk.bytes.data() + 16 * i));

  const __m128i* src = reinterpret_cast<const __m128i*>(in);
  __m128i* dst = reinterpret_cast<__m128i*>(out);

  while (n_blocks >= 8) {
    __m128i b0 = _mm_loadu_si128(src + 0);
    __m128i b1 = _mm_loadu_si128(src + 1);
    __m128i b2 = _mm_loadu_si128(src + 2);
    __m128i b3 = _mm_loadu_si128(src + 3);
    __m128i b4 = _mm_loadu_si128(src + 4);
    __m128i b5 = _mm_loadu_si128(src + 5);
    __m128i b6 = _mm_loadu_si128(src + 6);
    __m128i b7 = _mm_loadu_si128(src + 7);
    b0 = _mm_xor_si128(b0, k[0]);
    b1 = _mm_xor_si128(b1, k[0]);
    b2 = _mm_xor_si128(b2, k[0]);
    b3 = _mm_xor_si128(b3, k[0]);
    b4 = _mm_xor_si128(b4, k[0]);
    b5 = _mm_xor_si128(b5, k[0]);
    b6 = _mm_xor_si128(b6, k[0]);
    b7 = _mm_xor_si128(b7, k[0]);
    for (int r = 1; r <= 9; ++r) {
      b0 = _mm_aesenc_si128(b0, k[r]);
      b1 = _mm_aesenc_si128(b1, k[r]);
      b2 = _mm_aesenc_si128(b2, k[r]);
      b3 = _mm_aesenc_si128(b3, k[r]);
      b4 = _mm_aesenc_si128(b4, k[r]);
      b5 = _mm_aesenc_si128(b5, k[r]);
      b6 = _mm_aesenc_si128(b6, k[r]);
      b7 = _mm_aesenc_si128(b7, k[r]);
    }
    _mm_storeu_si128(dst + 0, _mm_aesenclast_si128(b0, k[10]));
    _mm_storeu_si128(dst + 1, _mm_aesenclast_si128(b1, k[10]));
    _mm_storeu_si128(dst + 2, _mm_aesenclast_si128(b2, k[10]));
    _mm_storeu_si128(dst + 3, _mm_aesenclast_si128(b3, k[10]));
    _mm_storeu_si128(dst + 4, _mm_aesenclast_si128(b4, k[10]));
    _mm_storeu_si128(dst + 5, _mm_aesenclast_si128(b5, k[10]));
    _mm_storeu_si128(dst + 6, _mm_aesenclast_si128(b6, k[10]));
    _mm_storeu_si128(dst + 7, _mm_aesenclast_si128(b7, k[10]));
    src += 8;
    dst += 8;
    n_blocks -= 8;
  }
  while (n_blocks > 0) {
    _mm_storeu_si128(dst, encrypt_one(_mm_loadu_si128(src), k));
    ++src;
    ++dst;
    --n_blocks;
  }
}

}  // namespace guardnn::crypto::detail

#endif  // x86
