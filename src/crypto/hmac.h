// HMAC-SHA256 and HKDF. Used for session-key derivation after ECDHE and for
// the authenticated secure channel between the remote user and the
// accelerator (paper Section II-C / Table I "Key Exchange").
#pragma once

#include "common/types.h"
#include "crypto/sha256.h"

namespace guardnn::crypto {

/// HMAC-SHA256(key, message).
Sha256Digest hmac_sha256(BytesView key, BytesView message);

/// HKDF-Extract: PRK = HMAC(salt, ikm).
Sha256Digest hkdf_extract(BytesView salt, BytesView ikm);

/// HKDF-Expand: derives `length` bytes of output keying material from PRK.
Bytes hkdf_expand(const Sha256Digest& prk, BytesView info, std::size_t length);

/// Convenience: extract-then-expand.
Bytes hkdf(BytesView salt, BytesView ikm, BytesView info, std::size_t length);

}  // namespace guardnn::crypto
