// ARMv8 Crypto Extensions backend, compiled with -march=armv8-a+crypto under
// GUARDNN_NATIVE_CRYPTO.
//
// AESE folds AddRoundKey *before* SubBytes/ShiftRows, so the round structure
// is: 9x (AESE + AESMC) with round keys 0..8, then AESE with key 9 and a
// final EOR with key 10. The dispatcher only routes here after the HWCAP AES
// check passes.
#if defined(__aarch64__)

#include <arm_neon.h>

#if defined(__linux__)
#include <sys/auxv.h>
#ifndef HWCAP_AES
#define HWCAP_AES (1 << 3)
#endif
#endif

#include "crypto/aes128.h"

namespace guardnn::crypto::detail {
namespace {

inline uint8x16_t encrypt_one(uint8x16_t b, const uint8x16_t k[11]) {
  for (int r = 0; r <= 8; ++r) b = vaesmcq_u8(vaeseq_u8(b, k[r]));
  return veorq_u8(vaeseq_u8(b, k[9]), k[10]);
}

}  // namespace

bool armce_cpu_supported() {
#if defined(__linux__)
  return (getauxval(AT_HWCAP) & HWCAP_AES) != 0;
#elif defined(__APPLE__)
  return true;  // every Apple Silicon core has the crypto extensions
#else
  return false;
#endif
}

void armce_encrypt_blocks(const AesRoundKeys& rk, const u8* in, u8* out,
                          std::size_t n_blocks) {
  uint8x16_t k[11];
  for (int i = 0; i < 11; ++i) k[i] = vld1q_u8(rk.bytes.data() + 16 * i);

  while (n_blocks >= 4) {
    uint8x16_t b0 = vld1q_u8(in + 0);
    uint8x16_t b1 = vld1q_u8(in + 16);
    uint8x16_t b2 = vld1q_u8(in + 32);
    uint8x16_t b3 = vld1q_u8(in + 48);
    for (int r = 0; r <= 8; ++r) {
      b0 = vaesmcq_u8(vaeseq_u8(b0, k[r]));
      b1 = vaesmcq_u8(vaeseq_u8(b1, k[r]));
      b2 = vaesmcq_u8(vaeseq_u8(b2, k[r]));
      b3 = vaesmcq_u8(vaeseq_u8(b3, k[r]));
    }
    vst1q_u8(out + 0, veorq_u8(vaeseq_u8(b0, k[9]), k[10]));
    vst1q_u8(out + 16, veorq_u8(vaeseq_u8(b1, k[9]), k[10]));
    vst1q_u8(out + 32, veorq_u8(vaeseq_u8(b2, k[9]), k[10]));
    vst1q_u8(out + 48, veorq_u8(vaeseq_u8(b3, k[9]), k[10]));
    in += 64;
    out += 64;
    n_blocks -= 4;
  }
  while (n_blocks > 0) {
    vst1q_u8(out, encrypt_one(vld1q_u8(in), k));
    in += 16;
    out += 16;
    --n_blocks;
  }
}

}  // namespace guardnn::crypto::detail

#endif  // __aarch64__
