#include "crypto/aes128.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#endif

namespace guardnn::crypto {
namespace {

constexpr u8 kSbox[256] = {
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16};

constexpr u8 kInvSbox[256] = {
    0x52, 0x09, 0x6a, 0xd5, 0x30, 0x36, 0xa5, 0x38, 0xbf, 0x40, 0xa3, 0x9e, 0x81, 0xf3, 0xd7, 0xfb,
    0x7c, 0xe3, 0x39, 0x82, 0x9b, 0x2f, 0xff, 0x87, 0x34, 0x8e, 0x43, 0x44, 0xc4, 0xde, 0xe9, 0xcb,
    0x54, 0x7b, 0x94, 0x32, 0xa6, 0xc2, 0x23, 0x3d, 0xee, 0x4c, 0x95, 0x0b, 0x42, 0xfa, 0xc3, 0x4e,
    0x08, 0x2e, 0xa1, 0x66, 0x28, 0xd9, 0x24, 0xb2, 0x76, 0x5b, 0xa2, 0x49, 0x6d, 0x8b, 0xd1, 0x25,
    0x72, 0xf8, 0xf6, 0x64, 0x86, 0x68, 0x98, 0x16, 0xd4, 0xa4, 0x5c, 0xcc, 0x5d, 0x65, 0xb6, 0x92,
    0x6c, 0x70, 0x48, 0x50, 0xfd, 0xed, 0xb9, 0xda, 0x5e, 0x15, 0x46, 0x57, 0xa7, 0x8d, 0x9d, 0x84,
    0x90, 0xd8, 0xab, 0x00, 0x8c, 0xbc, 0xd3, 0x0a, 0xf7, 0xe4, 0x58, 0x05, 0xb8, 0xb3, 0x45, 0x06,
    0xd0, 0x2c, 0x1e, 0x8f, 0xca, 0x3f, 0x0f, 0x02, 0xc1, 0xaf, 0xbd, 0x03, 0x01, 0x13, 0x8a, 0x6b,
    0x3a, 0x91, 0x11, 0x41, 0x4f, 0x67, 0xdc, 0xea, 0x97, 0xf2, 0xcf, 0xce, 0xf0, 0xb4, 0xe6, 0x73,
    0x96, 0xac, 0x74, 0x22, 0xe7, 0xad, 0x35, 0x85, 0xe2, 0xf9, 0x37, 0xe8, 0x1c, 0x75, 0xdf, 0x6e,
    0x47, 0xf1, 0x1a, 0x71, 0x1d, 0x29, 0xc5, 0x89, 0x6f, 0xb7, 0x62, 0x0e, 0xaa, 0x18, 0xbe, 0x1b,
    0xfc, 0x56, 0x3e, 0x4b, 0xc6, 0xd2, 0x79, 0x20, 0x9a, 0xdb, 0xc0, 0xfe, 0x78, 0xcd, 0x5a, 0xf4,
    0x1f, 0xdd, 0xa8, 0x33, 0x88, 0x07, 0xc7, 0x31, 0xb1, 0x12, 0x10, 0x59, 0x27, 0x80, 0xec, 0x5f,
    0x60, 0x51, 0x7f, 0xa9, 0x19, 0xb5, 0x4a, 0x0d, 0x2d, 0xe5, 0x7a, 0x9f, 0x93, 0xc9, 0x9c, 0xef,
    0xa0, 0xe0, 0x3b, 0x4d, 0xae, 0x2a, 0xf5, 0xb0, 0xc8, 0xeb, 0xbb, 0x3c, 0x83, 0x53, 0x99, 0x61,
    0x17, 0x2b, 0x04, 0x7e, 0xba, 0x77, 0xd6, 0x26, 0xe1, 0x69, 0x14, 0x63, 0x55, 0x21, 0x0c, 0x7d};

constexpr u8 kRcon[11] = {0x00, 0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36};

constexpr u8 xtime(u8 x) { return static_cast<u8>((x << 1) ^ ((x >> 7) * 0x1b)); }

u8 gf_mul(u8 a, u8 b) {
  u8 result = 0;
  while (b) {
    if (b & 1) result ^= a;
    a = xtime(a);
    b >>= 1;
  }
  return result;
}

constexpr u32 rotr32(u32 v, int n) {
  return n == 0 ? v : (v >> n) | (v << (32 - n));
}

// T-table for the combined SubBytes+ShiftRows+MixColumns round, one rotation
// per output byte lane: Te0[x] packs {02·S[x], S[x], S[x], 03·S[x]} MSB-first
// and Te1..Te3 are byte rotations of it. Generated at compile time from the
// S-box so there is no magic-number blob to audit.
constexpr std::array<u32, 256> make_te(int rot) {
  std::array<u32, 256> t{};
  for (int i = 0; i < 256; ++i) {
    const u8 s = kSbox[i];
    const u8 s2 = xtime(s);
    const u8 s3 = static_cast<u8>(s2 ^ s);
    const u32 w = (u32(s2) << 24) | (u32(s) << 16) | (u32(s) << 8) | u32(s3);
    t[static_cast<std::size_t>(i)] = rotr32(w, 8 * rot);
  }
  return t;
}

constexpr std::array<u32, 256> kTe0 = make_te(0);
constexpr std::array<u32, 256> kTe1 = make_te(1);
constexpr std::array<u32, 256> kTe2 = make_te(2);
constexpr std::array<u32, 256> kTe3 = make_te(3);

// ---------------------------------------------------------------------------
// Reference backend: the textbook byte-at-a-time rounds. Kept as the
// correctness anchor every fast path is cross-checked against.
// ---------------------------------------------------------------------------

void reference_encrypt_one(const u8* rk, u8* s) {
  auto add_round_key = [&](int round) {
    for (int i = 0; i < 16; ++i) s[i] ^= rk[16 * round + i];
  };
  auto sub_bytes = [&]() {
    for (int i = 0; i < 16; ++i) s[i] = kSbox[s[i]];
  };
  auto shift_rows = [&]() {
    // State is column-major: s[4*c + r].
    u8 t;
    t = s[1]; s[1] = s[5]; s[5] = s[9]; s[9] = s[13]; s[13] = t;
    t = s[2]; s[2] = s[10]; s[10] = t; t = s[6]; s[6] = s[14]; s[14] = t;
    t = s[15]; s[15] = s[11]; s[11] = s[7]; s[7] = s[3]; s[3] = t;
  };
  auto mix_columns = [&]() {
    for (int c = 0; c < 4; ++c) {
      u8* col = s + 4 * c;
      const u8 a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
      col[0] = static_cast<u8>(xtime(a0) ^ (xtime(a1) ^ a1) ^ a2 ^ a3);
      col[1] = static_cast<u8>(a0 ^ xtime(a1) ^ (xtime(a2) ^ a2) ^ a3);
      col[2] = static_cast<u8>(a0 ^ a1 ^ xtime(a2) ^ (xtime(a3) ^ a3));
      col[3] = static_cast<u8>((xtime(a0) ^ a0) ^ a1 ^ a2 ^ xtime(a3));
    }
  };

  add_round_key(0);
  for (int round = 1; round <= 9; ++round) {
    sub_bytes();
    shift_rows();
    mix_columns();
    add_round_key(round);
  }
  sub_bytes();
  shift_rows();
  add_round_key(10);
}

void reference_encrypt_blocks(const detail::AesRoundKeys& rk, const u8* in, u8* out,
                              std::size_t n) {
  for (std::size_t b = 0; b < n; ++b) {
    if (out + 16 * b != in + 16 * b)
      std::memcpy(out + 16 * b, in + 16 * b, 16);
    reference_encrypt_one(rk.bytes.data(), out + 16 * b);
  }
}

// ---------------------------------------------------------------------------
// T-table backend: 4 table lookups + 4 XORs per column per round. The batch
// loop interleaves two blocks so the (independent) L1 table loads of one block
// overlap the XOR chain of the other.
// ---------------------------------------------------------------------------

inline void tt_round(const u32 s[4], u32 t[4], const u32* rk) {
  t[0] = kTe0[s[0] >> 24] ^ kTe1[(s[1] >> 16) & 0xff] ^ kTe2[(s[2] >> 8) & 0xff] ^
         kTe3[s[3] & 0xff] ^ rk[0];
  t[1] = kTe0[s[1] >> 24] ^ kTe1[(s[2] >> 16) & 0xff] ^ kTe2[(s[3] >> 8) & 0xff] ^
         kTe3[s[0] & 0xff] ^ rk[1];
  t[2] = kTe0[s[2] >> 24] ^ kTe1[(s[3] >> 16) & 0xff] ^ kTe2[(s[0] >> 8) & 0xff] ^
         kTe3[s[1] & 0xff] ^ rk[2];
  t[3] = kTe0[s[3] >> 24] ^ kTe1[(s[0] >> 16) & 0xff] ^ kTe2[(s[1] >> 8) & 0xff] ^
         kTe3[s[2] & 0xff] ^ rk[3];
}

inline void tt_final(const u32 s[4], const u32* rk, u8* out) {
  for (int c = 0; c < 4; ++c) {
    const u32 w = (u32(kSbox[s[c] >> 24]) << 24) |
                  (u32(kSbox[(s[(c + 1) & 3] >> 16) & 0xff]) << 16) |
                  (u32(kSbox[(s[(c + 2) & 3] >> 8) & 0xff]) << 8) |
                  u32(kSbox[s[(c + 3) & 3] & 0xff]);
    store_be32(out + 4 * c, w ^ rk[c]);
  }
}

inline void tt_load(const u32* w, const u8* in, u32 s[4]) {
  for (int c = 0; c < 4; ++c) s[c] = load_be32(in + 4 * c) ^ w[c];
}

// Encrypts N blocks in lockstep. The (independent) table lookups of the
// interleaved blocks overlap each other's XOR chains, which is where the
// throughput over a one-block-at-a-time loop comes from.
template <int N>
inline void tt_encrypt_n(const u32* w, const u8* in, u8* out) {
  u32 s[N][4], t[N][4];
  for (int i = 0; i < N; ++i) tt_load(w, in + 16 * i, s[i]);
  // Rounds ping-pong between s and t so no copy sits on the critical path.
  for (int r = 1; r <= 8; r += 2) {
    for (int i = 0; i < N; ++i) tt_round(s[i], t[i], w + 4 * r);
    for (int i = 0; i < N; ++i) tt_round(t[i], s[i], w + 4 * (r + 1));
  }
  for (int i = 0; i < N; ++i) tt_round(s[i], t[i], w + 36);
  for (int i = 0; i < N; ++i) tt_final(t[i], w + 40, out + 16 * i);
}

void ttable_encrypt_blocks(const detail::AesRoundKeys& rk, const u8* in, u8* out,
                           std::size_t n) {
  const u32* w = rk.words.data();
  while (n >= 2) {
    tt_encrypt_n<2>(w, in, out);
    in += 32;
    out += 32;
    n -= 2;
  }
  while (n > 0) {
    tt_encrypt_n<1>(w, in, out);
    in += 16;
    out += 16;
    --n;
  }
}

// ---------------------------------------------------------------------------
// Backend dispatch. The fastest available backend is selected once at first
// use; tests and benches can pin a specific one with aes_force_backend().
// ---------------------------------------------------------------------------

using BatchFn = void (*)(const detail::AesRoundKeys&, const u8*, u8*, std::size_t);

bool cpu_has_aesni() {
#if (defined(__x86_64__) || defined(__i386__)) && defined(GUARDNN_HAVE_AESNI)
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (!__get_cpuid(1, &eax, &ebx, &ecx, &edx)) return false;
  return (ecx & (1u << 25)) != 0;  // CPUID.1:ECX.AES
#else
  return false;
#endif
}

BatchFn backend_fn(Aes128Backend backend) {
  switch (backend) {
    case Aes128Backend::kReference: return &reference_encrypt_blocks;
    case Aes128Backend::kTtable: return &ttable_encrypt_blocks;
#ifdef GUARDNN_HAVE_AESNI
    case Aes128Backend::kAesni: return &detail::aesni_encrypt_blocks;
#endif
#ifdef GUARDNN_HAVE_VAES
    case Aes128Backend::kVaes: return &detail::vaes_encrypt_blocks;
#endif
#ifdef GUARDNN_HAVE_ARM_CE
    case Aes128Backend::kArmCe: return &detail::armce_encrypt_blocks;
#endif
    default: return nullptr;
  }
}

struct Dispatch {
  Aes128Backend backend;
  BatchFn fn;
};

// One immutable entry per backend; the active selection is a single atomic
// pointer into this table, so a reader always sees a consistent
// (backend, fn) pair even if another thread calls aes_force_backend().
const Dispatch kDispatchTable[] = {
    {Aes128Backend::kReference, &reference_encrypt_blocks},
    {Aes128Backend::kTtable, &ttable_encrypt_blocks},
    {Aes128Backend::kAesni, backend_fn(Aes128Backend::kAesni)},
    {Aes128Backend::kArmCe, backend_fn(Aes128Backend::kArmCe)},
    {Aes128Backend::kVaes, backend_fn(Aes128Backend::kVaes)},
};

const Dispatch* dispatch_entry(Aes128Backend backend) {
  return &kDispatchTable[static_cast<std::size_t>(backend)];
}

const Dispatch* default_dispatch() {
  // GUARDNN_AES_BACKEND=reference|ttable|aesni|armce pins the backend for a
  // whole process (benchmark A/B runs, forcing the portable path on machines
  // with native support). An unrecognized or unavailable choice falls back
  // to the default with a warning rather than aborting.
  if (const char* env = std::getenv("GUARDNN_AES_BACKEND"); env && *env) {
    for (Aes128Backend b :
         {Aes128Backend::kReference, Aes128Backend::kTtable,
          Aes128Backend::kAesni, Aes128Backend::kArmCe, Aes128Backend::kVaes}) {
      if (std::strcmp(env, aes_backend_name(b)) == 0) {
        if (aes_backend_available(b)) return dispatch_entry(b);
        std::fprintf(stderr,
                     "guardnn: GUARDNN_AES_BACKEND=%s not available on this "
                     "machine, using default dispatch\n",
                     env);
        env = nullptr;
        break;
      }
    }
    if (env)
      std::fprintf(stderr,
                   "guardnn: unrecognized GUARDNN_AES_BACKEND=%s (expected "
                   "reference|ttable|aesni|armce|vaes), using default dispatch\n",
                   env);
  }
#ifdef GUARDNN_HAVE_VAES
  if (detail::vaes_cpu_supported()) return dispatch_entry(Aes128Backend::kVaes);
#endif
#ifdef GUARDNN_HAVE_AESNI
  if (cpu_has_aesni()) return dispatch_entry(Aes128Backend::kAesni);
#endif
#ifdef GUARDNN_HAVE_ARM_CE
  if (detail::armce_cpu_supported()) return dispatch_entry(Aes128Backend::kArmCe);
#endif
  return dispatch_entry(Aes128Backend::kTtable);
}

std::atomic<const Dispatch*>& active_dispatch() {
  static std::atomic<const Dispatch*> d{default_dispatch()};
  return d;
}

}  // namespace

const char* aes_backend_name(Aes128Backend backend) {
  switch (backend) {
    case Aes128Backend::kReference: return "reference";
    case Aes128Backend::kTtable: return "ttable";
    case Aes128Backend::kAesni: return "aesni";
    case Aes128Backend::kArmCe: return "armce";
    case Aes128Backend::kVaes: return "vaes";
  }
  return "unknown";
}

bool aes_backend_available(Aes128Backend backend) {
  switch (backend) {
    case Aes128Backend::kReference:
    case Aes128Backend::kTtable:
      return true;
    case Aes128Backend::kAesni:
      return cpu_has_aesni();
    case Aes128Backend::kArmCe:
#ifdef GUARDNN_HAVE_ARM_CE
      return detail::armce_cpu_supported();
#else
      return false;
#endif
    case Aes128Backend::kVaes:
#ifdef GUARDNN_HAVE_VAES
      return detail::vaes_cpu_supported();
#else
      return false;
#endif
  }
  return false;
}

std::vector<Aes128Backend> aes_available_backends() {
  std::vector<Aes128Backend> out;
  for (Aes128Backend b :
       {Aes128Backend::kReference, Aes128Backend::kTtable,
        Aes128Backend::kAesni, Aes128Backend::kArmCe, Aes128Backend::kVaes})
    if (aes_backend_available(b)) out.push_back(b);
  return out;
}

Aes128Backend aes_active_backend() {
  return active_dispatch().load(std::memory_order_relaxed)->backend;
}

void aes_force_backend(Aes128Backend backend) {
  if (!aes_backend_available(backend))
    throw std::invalid_argument(std::string("aes_force_backend: backend not available: ") +
                                aes_backend_name(backend));
  active_dispatch().store(dispatch_entry(backend), std::memory_order_relaxed);
}

Aes128::Aes128(const AesKey& key) {
  u32* w = rk_.words.data();
  for (int i = 0; i < 4; ++i) w[i] = load_be32(key.data() + 4 * i);
  for (int i = 4; i < 44; ++i) {
    u32 t = w[i - 1];
    if (i % 4 == 0) {
      t = (t << 8) | (t >> 24);  // RotWord
      t = (u32(kSbox[t >> 24]) << 24) | (u32(kSbox[(t >> 16) & 0xff]) << 16) |
          (u32(kSbox[(t >> 8) & 0xff]) << 8) | u32(kSbox[t & 0xff]);  // SubWord
      t ^= u32(kRcon[i / 4]) << 24;
    }
    w[i] = w[i - 4] ^ t;
  }
  for (int i = 0; i < 44; ++i) store_be32(rk_.bytes.data() + 4 * i, w[i]);
}

void Aes128::encrypt_block(u8* block) const {
  active_dispatch().load(std::memory_order_relaxed)->fn(rk_, block, block, 1);
}

void Aes128::encrypt_blocks(const u8* in, u8* out, std::size_t n_blocks) const {
  active_dispatch().load(std::memory_order_relaxed)->fn(rk_, in, out, n_blocks);
}

void Aes128::decrypt_block(u8* s) const {
  // Decryption is off the hot path (CTR and CMAC only ever encrypt); the
  // textbook inverse rounds are kept for the block-cipher round-trip API.
  const u8* rk = rk_.bytes.data();
  auto add_round_key = [&](int round) {
    for (int i = 0; i < 16; ++i) s[i] ^= rk[16 * round + i];
  };
  auto inv_sub_bytes = [&]() {
    for (int i = 0; i < 16; ++i) s[i] = kInvSbox[s[i]];
  };
  auto inv_shift_rows = [&]() {
    u8 t;
    t = s[13]; s[13] = s[9]; s[9] = s[5]; s[5] = s[1]; s[1] = t;
    t = s[2]; s[2] = s[10]; s[10] = t; t = s[6]; s[6] = s[14]; s[14] = t;
    t = s[3]; s[3] = s[7]; s[7] = s[11]; s[11] = s[15]; s[15] = t;
  };
  auto inv_mix_columns = [&]() {
    for (int c = 0; c < 4; ++c) {
      u8* col = s + 4 * c;
      const u8 a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
      col[0] = static_cast<u8>(gf_mul(a0, 0x0e) ^ gf_mul(a1, 0x0b) ^ gf_mul(a2, 0x0d) ^ gf_mul(a3, 0x09));
      col[1] = static_cast<u8>(gf_mul(a0, 0x09) ^ gf_mul(a1, 0x0e) ^ gf_mul(a2, 0x0b) ^ gf_mul(a3, 0x0d));
      col[2] = static_cast<u8>(gf_mul(a0, 0x0d) ^ gf_mul(a1, 0x09) ^ gf_mul(a2, 0x0e) ^ gf_mul(a3, 0x0b));
      col[3] = static_cast<u8>(gf_mul(a0, 0x0b) ^ gf_mul(a1, 0x0d) ^ gf_mul(a2, 0x09) ^ gf_mul(a3, 0x0e));
    }
  };

  add_round_key(10);
  for (int round = 9; round >= 1; --round) {
    inv_shift_rows();
    inv_sub_bytes();
    add_round_key(round);
    inv_mix_columns();
  }
  inv_shift_rows();
  inv_sub_bytes();
  add_round_key(0);
}

AesBlock make_counter_block(u64 block_address, u64 version_number) {
  AesBlock ctr{};
  store_be64(ctr.data(), version_number);
  store_be64(ctr.data() + 8, block_address);
  return ctr;
}

namespace {

// Keystream burst size: 64 blocks = 1 KB of stack scratch, enough to keep the
// 8-wide AES-NI pipeline full while staying cache- and stack-friendly.
constexpr std::size_t kCtrBurstBlocks = 64;

}  // namespace

void ctr_xcrypt(const Aes128& aes, const AesBlock& counter0, MutBytesView data) {
  u8 prefix[8];
  std::memcpy(prefix, counter0.data(), 8);
  u64 low = load_be64(counter0.data() + 8);

  u8 ks[kCtrBurstBlocks * kAesBlockBytes];
  std::size_t offset = 0;
  while (offset < data.size()) {
    const std::size_t remaining = data.size() - offset;
    const std::size_t nb =
        std::min(kCtrBurstBlocks, (remaining + kAesBlockBytes - 1) / kAesBlockBytes);
    for (std::size_t i = 0; i < nb; ++i) {
      std::memcpy(ks + 16 * i, prefix, 8);
      store_be64(ks + 16 * i + 8, low + i);  // low 64 bits wrap mod 2^64
    }
    low += nb;
    aes.encrypt_blocks(ks, ks, nb);
    const std::size_t n = std::min(remaining, nb * kAesBlockBytes);
    xor_bytes(data.data() + offset, ks, n);
    offset += n;
  }
}

void memory_xcrypt(const Aes128& aes, u64 base_block_address, u64 version_number,
                   MutBytesView data) {
  if (data.size() % kAesBlockBytes != 0)
    throw std::invalid_argument("memory_xcrypt: size must be a multiple of 16");
  const std::size_t blocks = data.size() / kAesBlockBytes;

  u8 vn_be[8];
  store_be64(vn_be, version_number);

  u8 ks[kCtrBurstBlocks * kAesBlockBytes];
  std::size_t b = 0;
  while (b < blocks) {
    const std::size_t nb = std::min(kCtrBurstBlocks, blocks - b);
    for (std::size_t i = 0; i < nb; ++i) {
      std::memcpy(ks + 16 * i, vn_be, 8);
      store_be64(ks + 16 * i + 8, base_block_address + b + i);
    }
    aes.encrypt_blocks(ks, ks, nb);
    xor_bytes(data.data() + b * kAesBlockBytes, ks, nb * kAesBlockBytes);
    b += nb;
  }
}

}  // namespace guardnn::crypto
