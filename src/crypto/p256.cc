#include "crypto/p256.h"

#include <stdexcept>

namespace guardnn::crypto {

const P256Params& p256() {
  static const P256Params params = [] {
    P256Params pr;
    pr.p = U256::from_hex("ffffffff00000001000000000000000000000000ffffffffffffffffffffffff");
    pr.n = U256::from_hex("ffffffff00000000ffffffffffffffffbce6faada7179e84f3b9cac2fc632551");
    pr.b = U256::from_hex("5ac635d8aa3a93e7b3ebbd55769886bc651d06b0cc53b0f63bce3c3e27d2604b");
    pr.gx = U256::from_hex("6b17d1f2e12c4247f8bce6e563a440f277037d812deb33a0f4a13945d898c296");
    pr.gy = U256::from_hex("4fe342e2fe1a7f9b8ee7eb4a7c0f9e162bce33576b315ececbb6406837bf51f5");
    return pr;
  }();
  return params;
}

namespace {

const U256& P() { return p256().p; }

// Jacobian coordinates: (X, Y, Z) represents affine (X/Z^2, Y/Z^3).
struct JacobianPoint {
  U256 x;
  U256 y;
  U256 z;  // z == 0 encodes infinity.

  bool is_infinity() const { return z.is_zero(); }

  static JacobianPoint infinity() { return JacobianPoint{}; }

  static JacobianPoint from_affine(const AffinePoint& a) {
    if (a.infinity) return infinity();
    return JacobianPoint{a.x, a.y, U256::one()};
  }
};

AffinePoint to_affine(const JacobianPoint& j) {
  if (j.is_infinity()) return AffinePoint::at_infinity();
  const U256 z_inv = inv_mod_prime(j.z, P());
  const U256 z_inv2 = mul_mod(z_inv, z_inv, P());
  const U256 z_inv3 = mul_mod(z_inv2, z_inv, P());
  AffinePoint out;
  out.x = mul_mod(j.x, z_inv2, P());
  out.y = mul_mod(j.y, z_inv3, P());
  return out;
}

// Point doubling for a = -3 curves (dbl-2001-b formulas).
JacobianPoint jacobian_double(const JacobianPoint& q) {
  if (q.is_infinity() || q.y.is_zero()) return JacobianPoint::infinity();
  const U256& p = P();
  const U256 z2 = mul_mod(q.z, q.z, p);
  const U256 m = mul_mod(U256::from_u64(3),
                         mul_mod(sub_mod(q.x, z2, p), add_mod(q.x, z2, p), p), p);
  const U256 y2 = mul_mod(q.y, q.y, p);
  const U256 s = mul_mod(U256::from_u64(4), mul_mod(q.x, y2, p), p);
  JacobianPoint out;
  out.x = sub_mod(mul_mod(m, m, p), add_mod(s, s, p), p);
  const U256 y4_8 = mul_mod(U256::from_u64(8), mul_mod(y2, y2, p), p);
  out.y = sub_mod(mul_mod(m, sub_mod(s, out.x, p), p), y4_8, p);
  out.z = mul_mod(U256::from_u64(2), mul_mod(q.y, q.z, p), p);
  return out;
}

JacobianPoint jacobian_add(const JacobianPoint& a, const JacobianPoint& b) {
  if (a.is_infinity()) return b;
  if (b.is_infinity()) return a;
  const U256& p = P();
  const U256 z1z1 = mul_mod(a.z, a.z, p);
  const U256 z2z2 = mul_mod(b.z, b.z, p);
  const U256 u1 = mul_mod(a.x, z2z2, p);
  const U256 u2 = mul_mod(b.x, z1z1, p);
  const U256 s1 = mul_mod(a.y, mul_mod(z2z2, b.z, p), p);
  const U256 s2 = mul_mod(b.y, mul_mod(z1z1, a.z, p), p);
  if (u1 == u2) {
    if (s1 == s2) return jacobian_double(a);
    return JacobianPoint::infinity();
  }
  const U256 h = sub_mod(u2, u1, p);
  const U256 r = sub_mod(s2, s1, p);
  const U256 h2 = mul_mod(h, h, p);
  const U256 h3 = mul_mod(h2, h, p);
  const U256 u1h2 = mul_mod(u1, h2, p);
  JacobianPoint out;
  out.x = sub_mod(sub_mod(mul_mod(r, r, p), h3, p),
                  add_mod(u1h2, u1h2, p), p);
  out.y = sub_mod(mul_mod(r, sub_mod(u1h2, out.x, p), p),
                  mul_mod(s1, h3, p), p);
  out.z = mul_mod(h, mul_mod(a.z, b.z, p), p);
  return out;
}

}  // namespace

bool on_curve(const AffinePoint& pt) {
  if (pt.infinity) return true;
  const U256& p = P();
  if (cmp(pt.x, p) >= 0 || cmp(pt.y, p) >= 0) return false;
  const U256 y2 = mul_mod(pt.y, pt.y, p);
  const U256 x2 = mul_mod(pt.x, pt.x, p);
  const U256 x3 = mul_mod(x2, pt.x, p);
  // x^3 - 3x + b
  const U256 three_x = mul_mod(U256::from_u64(3), pt.x, p);
  const U256 rhs = add_mod(sub_mod(x3, three_x, p), p256().b, p);
  return y2 == rhs;
}

AffinePoint ec_add(const AffinePoint& a, const AffinePoint& b) {
  return to_affine(jacobian_add(JacobianPoint::from_affine(a),
                                JacobianPoint::from_affine(b)));
}

AffinePoint ec_scalar_mult(const U256& k, const AffinePoint& point) {
  JacobianPoint result = JacobianPoint::infinity();
  JacobianPoint base = JacobianPoint::from_affine(point);
  const int bits = k.bit_length();
  for (int i = 0; i < bits; ++i) {
    if (k.bit(static_cast<unsigned>(i))) result = jacobian_add(result, base);
    base = jacobian_double(base);
  }
  return to_affine(result);
}

AffinePoint ec_scalar_mult_ladder(const U256& k, const AffinePoint& point) {
  // R0 = O, R1 = P; every iteration performs exactly one add and one double,
  // selecting operands by the key bit rather than branching on work done.
  JacobianPoint r0 = JacobianPoint::infinity();
  JacobianPoint r1 = JacobianPoint::from_affine(point);
  for (int i = 255; i >= 0; --i) {
    if (k.bit(static_cast<unsigned>(i))) {
      r0 = jacobian_add(r0, r1);
      r1 = jacobian_double(r1);
    } else {
      r1 = jacobian_add(r0, r1);
      r0 = jacobian_double(r0);
    }
  }
  return to_affine(r0);
}

AffinePoint ec_scalar_base_mult(const U256& k) {
  AffinePoint g;
  g.x = p256().gx;
  g.y = p256().gy;
  return ec_scalar_mult(k, g);
}

Bytes encode_point(const AffinePoint& pt) {
  if (pt.infinity) throw std::invalid_argument("encode_point: cannot encode infinity");
  Bytes out;
  out.reserve(65);
  out.push_back(0x04);
  const Bytes x = pt.x.to_bytes();
  const Bytes y = pt.y.to_bytes();
  out.insert(out.end(), x.begin(), x.end());
  out.insert(out.end(), y.begin(), y.end());
  return out;
}

std::optional<AffinePoint> decode_point(BytesView bytes) {
  if (bytes.size() != 65 || bytes[0] != 0x04) return std::nullopt;
  AffinePoint pt;
  pt.x = U256::from_bytes(bytes.subspan(1, 32));
  pt.y = U256::from_bytes(bytes.subspan(33, 32));
  if (!on_curve(pt)) return std::nullopt;
  return pt;
}

}  // namespace guardnn::crypto
