#include "crypto/secure_channel.h"

namespace guardnn::crypto {
namespace {

std::array<u8, 16> compute_tag(BytesView mac_key, u64 sequence, BytesView ciphertext) {
  Bytes message(8 + ciphertext.size());
  store_be64(message.data(), sequence);
  std::copy(ciphertext.begin(), ciphertext.end(), message.begin() + 8);
  const Sha256Digest full = hmac_sha256(mac_key, message);
  std::array<u8, 16> tag{};
  std::copy(full.begin(), full.begin() + 16, tag.begin());
  return tag;
}

AesBlock sequence_nonce(u64 sequence) {
  AesBlock nonce{};
  store_be64(nonce.data(), sequence);
  return nonce;
}

}  // namespace

ChannelSender::ChannelSender(const SessionKeys& keys)
    : aes_(keys.enc_key), mac_key_(keys.mac_key) {}

SealedRecord ChannelSender::seal(BytesView plaintext) {
  SealedRecord record;
  record.sequence = next_sequence_++;
  record.ciphertext.assign(plaintext.begin(), plaintext.end());
  ctr_xcrypt(aes_, sequence_nonce(record.sequence), record.ciphertext);
  record.tag = compute_tag(BytesView(mac_key_.data(), mac_key_.size()),
                           record.sequence, record.ciphertext);
  return record;
}

ChannelReceiver::ChannelReceiver(const SessionKeys& keys)
    : aes_(keys.enc_key), mac_key_(keys.mac_key) {}

std::optional<Bytes> ChannelReceiver::open(const SealedRecord& record) {
  if (record.sequence != expected_sequence_) return std::nullopt;
  const auto tag = compute_tag(BytesView(mac_key_.data(), mac_key_.size()),
                               record.sequence, record.ciphertext);
  if (!ct_equal(BytesView(tag.data(), tag.size()),
                BytesView(record.tag.data(), record.tag.size())))
    return std::nullopt;
  ++expected_sequence_;
  Bytes plaintext = record.ciphertext;
  ctr_xcrypt(aes_, sequence_nonce(record.sequence), plaintext);
  return plaintext;
}

}  // namespace guardnn::crypto
