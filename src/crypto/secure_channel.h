// Authenticated secure channel (encrypt-then-MAC) over the session keys from
// ECDHE. This carries SetWeight/SetInput payloads from the remote user to the
// accelerator and ExportOutput payloads back (paper Section II-C).
//
// Construction: AES-128-CTR with an explicit 64-bit sequence number as the
// nonce, then HMAC-SHA256 over (seq || ciphertext) truncated to 16 bytes.
// Sequence numbers make replayed or reordered records fail verification.
#pragma once

#include <optional>

#include "crypto/aes128.h"
#include "crypto/ecdh.h"
#include "crypto/hmac.h"

namespace guardnn::crypto {

/// A sealed record: sequence number, ciphertext and truncated MAC tag.
struct SealedRecord {
  u64 sequence = 0;
  Bytes ciphertext;
  std::array<u8, 16> tag{};
};

/// One direction of a secure channel. Each endpoint owns a sender (its own
/// outgoing sequence counter) and a receiver (the expected incoming one).
class ChannelSender {
 public:
  explicit ChannelSender(const SessionKeys& keys);

  SealedRecord seal(BytesView plaintext);

  /// Wipes the channel keys (CloseSession). The sender is unusable after.
  void zeroize() {
    aes_.zeroize();
    secure_zero(mac_key_.data(), mac_key_.size());
  }
  bool zeroized() const {
    if (!aes_.zeroized()) return false;
    for (u8 b : mac_key_)
      if (b != 0) return false;
    return true;
  }

 private:
  Aes128 aes_;
  std::array<u8, 32> mac_key_;
  u64 next_sequence_ = 0;
};

class ChannelReceiver {
 public:
  explicit ChannelReceiver(const SessionKeys& keys);

  /// Returns the plaintext, or nullopt when the tag is invalid or the
  /// sequence number is not the next expected one (replay/reorder defense).
  std::optional<Bytes> open(const SealedRecord& record);

  /// Wipes the channel keys (CloseSession). The receiver is unusable after.
  void zeroize() {
    aes_.zeroize();
    secure_zero(mac_key_.data(), mac_key_.size());
  }
  bool zeroized() const {
    if (!aes_.zeroized()) return false;
    for (u8 b : mac_key_)
      if (b != 0) return false;
    return true;
  }

 private:
  Aes128 aes_;
  std::array<u8, 32> mac_key_;
  u64 expected_sequence_ = 0;
};

}  // namespace guardnn::crypto
