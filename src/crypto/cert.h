// Minimal device-certificate infrastructure.
//
// The paper assumes "the user obtains the corresponding public key using a
// public key infrastructure as in Intel SGX or TPMs". We model the smallest
// faithful PKI: a manufacturer CA signs (device_id || device public key); the
// remote user pins the CA public key and validates the certificate returned
// by GetPK before starting a session.
#pragma once

#include <string>

#include "crypto/ecdsa.h"

namespace guardnn::crypto {

struct DeviceCertificate {
  std::string device_id;       ///< Manufacturer-assigned identifier.
  AffinePoint device_public;   ///< PK_Accel.
  EcdsaSignature ca_signature; ///< CA signature over the TBS bytes.

  /// The "to-be-signed" serialization the CA signs.
  Bytes tbs_bytes() const;
};

/// Manufacturer certificate authority. Owns the CA signing key and issues
/// device certificates at "fabrication" time.
class ManufacturerCa {
 public:
  explicit ManufacturerCa(HmacDrbg& drbg) : key_(ecdsa_generate_key(drbg)) {}

  const AffinePoint& public_key() const { return key_.public_key; }

  DeviceCertificate issue(const std::string& device_id,
                          const AffinePoint& device_public) const;

 private:
  EcdsaKeyPair key_;
};

/// Validates a device certificate against the pinned CA public key.
bool verify_certificate(const DeviceCertificate& cert, const AffinePoint& ca_public);

}  // namespace guardnn::crypto
