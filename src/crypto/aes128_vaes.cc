// x86 VAES + AVX-512 backend, compiled with -mvaes -mavx512f -maes -mxsave
// under GUARDNN_NATIVE_CRYPTO.
//
// VAESENC on a 512-bit register encrypts four independent AES blocks per
// instruction; the main loop keeps four ZMM registers (16 blocks) in flight,
// which both fills the pipeline and matches crypto::kCmacLanes — one batch
// CMAC round is exactly one loop iteration. This is the software analogue of
// widening GuardNN's AES engine array (paper Section III-B): the same
// keystream, four lanes per issue slot.
//
// The dispatcher in aes128.cc only routes here after vaes_cpu_supported()
// passes (CPUID feature bits *and* the OS advertising ZMM state via XCR0),
// so this TU may freely use the intrinsics.
#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

#include <cpuid.h>

#include "crypto/aes128.h"

namespace guardnn::crypto::detail {
namespace {

inline __m128i encrypt_one(__m128i b, const __m128i k[11]) {
  b = _mm_xor_si128(b, k[0]);
  for (int r = 1; r <= 9; ++r) b = _mm_aesenc_si128(b, k[r]);
  return _mm_aesenclast_si128(b, k[10]);
}

/// Broadcasts one 128-bit round key to all four ZMM lanes. Spelled with the
/// zero-masked shuffle instead of _mm512_broadcast_i32x4 /
/// _mm512_shuffle_i32x4, whose undefined-passthrough operands trip GCC 12's
/// -Wuninitialized; the maskz form carries no undefined value and compiles
/// to the same single VSHUFI32X4.
inline __m512i broadcast_key(__m128i k) {
  const __m512i z = _mm512_zextsi128_si512(k);
  return _mm512_maskz_shuffle_i32x4(0xffff, z, z, 0x00);
}

}  // namespace

bool vaes_cpu_supported() {
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (!__get_cpuid(1, &eax, &ebx, &ecx, &edx)) return false;
  const bool osxsave = (ecx & (1u << 27)) != 0;
  const bool aesni = (ecx & (1u << 25)) != 0;
  if (!osxsave || !aesni) return false;
  if (!__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx)) return false;
  const bool avx512f = (ebx & (1u << 16)) != 0;
  const bool vaes = (ecx & (1u << 9)) != 0;
  if (!avx512f || !vaes) return false;
  // The OS must save/restore the full ZMM state: XCR0 bits 1,2 (SSE/AVX)
  // and 5,6,7 (opmask, ZMM0-15 high halves, ZMM16-31).
  const unsigned long long xcr0 = _xgetbv(0);
  return (xcr0 & 0xe6) == 0xe6;
}

void vaes_encrypt_blocks(const AesRoundKeys& rk, const u8* in, u8* out,
                         std::size_t n_blocks) {
  __m128i k[11];
  for (int i = 0; i < 11; ++i)
    k[i] = _mm_load_si128(reinterpret_cast<const __m128i*>(rk.bytes.data() + 16 * i));
  __m512i kw[11];
  for (int i = 0; i < 11; ++i) kw[i] = broadcast_key(k[i]);

  // 16 blocks (4 ZMM) per iteration.
  while (n_blocks >= 16) {
    __m512i b0 = _mm512_loadu_si512(in + 0);
    __m512i b1 = _mm512_loadu_si512(in + 64);
    __m512i b2 = _mm512_loadu_si512(in + 128);
    __m512i b3 = _mm512_loadu_si512(in + 192);
    b0 = _mm512_xor_si512(b0, kw[0]);
    b1 = _mm512_xor_si512(b1, kw[0]);
    b2 = _mm512_xor_si512(b2, kw[0]);
    b3 = _mm512_xor_si512(b3, kw[0]);
    for (int r = 1; r <= 9; ++r) {
      b0 = _mm512_aesenc_epi128(b0, kw[r]);
      b1 = _mm512_aesenc_epi128(b1, kw[r]);
      b2 = _mm512_aesenc_epi128(b2, kw[r]);
      b3 = _mm512_aesenc_epi128(b3, kw[r]);
    }
    b0 = _mm512_aesenclast_epi128(b0, kw[10]);
    b1 = _mm512_aesenclast_epi128(b1, kw[10]);
    b2 = _mm512_aesenclast_epi128(b2, kw[10]);
    b3 = _mm512_aesenclast_epi128(b3, kw[10]);
    _mm512_storeu_si512(out + 0, b0);
    _mm512_storeu_si512(out + 64, b1);
    _mm512_storeu_si512(out + 128, b2);
    _mm512_storeu_si512(out + 192, b3);
    in += 256;
    out += 256;
    n_blocks -= 16;
  }

  // 4-block tail groups, one ZMM at a time.
  while (n_blocks >= 4) {
    __m512i b = _mm512_loadu_si512(in);
    b = _mm512_xor_si512(b, kw[0]);
    for (int r = 1; r <= 9; ++r) b = _mm512_aesenc_epi128(b, kw[r]);
    b = _mm512_aesenclast_epi128(b, kw[10]);
    _mm512_storeu_si512(out, b);
    in += 64;
    out += 64;
    n_blocks -= 4;
  }

  // Final 1-3 blocks on the 128-bit unit.
  while (n_blocks > 0) {
    const __m128i b =
        encrypt_one(_mm_loadu_si128(reinterpret_cast<const __m128i*>(in)), k);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out), b);
    in += 16;
    out += 16;
    --n_blocks;
  }
}

}  // namespace guardnn::crypto::detail

#endif  // x86
