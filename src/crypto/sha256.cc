#include "crypto/sha256.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#endif

namespace guardnn::crypto {
namespace {

constexpr u32 kK[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

u32 rotr(u32 x, int n) { return (x >> n) | (x << (32 - n)); }

void scalar_process_blocks(u32* state, const u8* data, std::size_t n_blocks) {
  for (std::size_t blk = 0; blk < n_blocks; ++blk, data += 64) {
    u32 w[64];
    for (int i = 0; i < 16; ++i) w[i] = load_be32(data + 4 * i);
    for (int i = 16; i < 64; ++i) {
      const u32 s0 = rotr(w[i - 15], 7) ^ rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
      const u32 s1 = rotr(w[i - 2], 17) ^ rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
      w[i] = w[i - 16] + s0 + w[i - 7] + s1;
    }

    u32 a = state[0], b = state[1], c = state[2], d = state[3];
    u32 e = state[4], f = state[5], g = state[6], h = state[7];

    for (int i = 0; i < 64; ++i) {
      const u32 s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
      const u32 ch = (e & f) ^ (~e & g);
      const u32 temp1 = h + s1 + ch + kK[i] + w[i];
      const u32 s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
      const u32 maj = (a & b) ^ (a & c) ^ (b & c);
      const u32 temp2 = s0 + maj;
      h = g; g = f; f = e; e = d + temp1;
      d = c; c = b; b = a; a = temp1 + temp2;
    }

    state[0] += a; state[1] += b; state[2] += c; state[3] += d;
    state[4] += e; state[5] += f; state[6] += g; state[7] += h;
  }
}

// ---------------------------------------------------------------------------
// Backend dispatch, mirroring the AES dispatcher: one immutable entry per
// backend, the active selection a single atomic pointer.
// ---------------------------------------------------------------------------

using CompressFn = void (*)(u32*, const u8*, std::size_t);

bool cpu_has_shani() {
#if (defined(__x86_64__) || defined(__i386__)) && defined(GUARDNN_HAVE_SHANI)
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (!__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx)) return false;
  return (ebx & (1u << 29)) != 0;  // CPUID.7.0:EBX.SHA
#else
  return false;
#endif
}

struct ShaDispatch {
  Sha256Backend backend;
  CompressFn fn;
};

const ShaDispatch kShaDispatchTable[] = {
    {Sha256Backend::kScalar, &scalar_process_blocks},
#ifdef GUARDNN_HAVE_SHANI
    {Sha256Backend::kShani, &detail::shani_process_blocks},
#else
    {Sha256Backend::kShani, nullptr},
#endif
};

const ShaDispatch* sha_dispatch_entry(Sha256Backend backend) {
  return &kShaDispatchTable[static_cast<std::size_t>(backend)];
}

const ShaDispatch* sha_default_dispatch() {
  if (const char* env = std::getenv("GUARDNN_SHA256_BACKEND"); env && *env) {
    for (Sha256Backend b : {Sha256Backend::kScalar, Sha256Backend::kShani}) {
      if (std::strcmp(env, sha256_backend_name(b)) == 0) {
        if (sha256_backend_available(b)) return sha_dispatch_entry(b);
        std::fprintf(stderr,
                     "guardnn: GUARDNN_SHA256_BACKEND=%s not available on "
                     "this machine, using default dispatch\n",
                     env);
        env = nullptr;
        break;
      }
    }
    if (env)
      std::fprintf(stderr,
                   "guardnn: unrecognized GUARDNN_SHA256_BACKEND=%s "
                   "(expected scalar|shani), using default dispatch\n",
                   env);
  }
  if (cpu_has_shani()) return sha_dispatch_entry(Sha256Backend::kShani);
  return sha_dispatch_entry(Sha256Backend::kScalar);
}

std::atomic<const ShaDispatch*>& sha_active_dispatch() {
  static std::atomic<const ShaDispatch*> d{sha_default_dispatch()};
  return d;
}

}  // namespace

const char* sha256_backend_name(Sha256Backend backend) {
  switch (backend) {
    case Sha256Backend::kScalar: return "scalar";
    case Sha256Backend::kShani: return "shani";
  }
  return "unknown";
}

bool sha256_backend_available(Sha256Backend backend) {
  switch (backend) {
    case Sha256Backend::kScalar: return true;
    case Sha256Backend::kShani: return cpu_has_shani();
  }
  return false;
}

Sha256Backend sha256_active_backend() {
  return sha_active_dispatch().load(std::memory_order_relaxed)->backend;
}

void sha256_force_backend(Sha256Backend backend) {
  if (!sha256_backend_available(backend))
    throw std::invalid_argument("sha256_force_backend: backend not available");
  sha_active_dispatch().store(sha_dispatch_entry(backend),
                              std::memory_order_relaxed);
}

void Sha256::reset() {
  state_ = {0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
            0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};
  buffer_len_ = 0;
  total_len_ = 0;
}

void Sha256::process_blocks(const u8* blocks, std::size_t n_blocks) {
  sha_active_dispatch().load(std::memory_order_relaxed)->fn(state_.data(),
                                                            blocks, n_blocks);
}

void Sha256::update(BytesView data) {
  if (data.empty()) return;  // empty views may carry a null data()
  total_len_ += data.size();
  std::size_t offset = 0;
  if (buffer_len_ > 0) {
    const std::size_t take = std::min(data.size(), 64 - buffer_len_);
    std::memcpy(buffer_.data() + buffer_len_, data.data(), take);
    buffer_len_ += take;
    offset += take;
    if (buffer_len_ == 64) {
      process_block(buffer_.data());
      buffer_len_ = 0;
    }
  }
  if (const std::size_t bulk = (data.size() - offset) / 64; bulk > 0) {
    process_blocks(data.data() + offset, bulk);
    offset += bulk * 64;
  }
  if (offset < data.size()) {
    std::memcpy(buffer_.data(), data.data() + offset, data.size() - offset);
    buffer_len_ = data.size() - offset;
  }
}

Sha256Digest Sha256::finalize() {
  const u64 bit_len = total_len_ * 8;
  const u8 pad_byte = 0x80;
  update(BytesView(&pad_byte, 1));
  const u8 zero = 0x00;
  while (buffer_len_ != 56) update(BytesView(&zero, 1));
  u8 len_bytes[8];
  store_be64(len_bytes, bit_len);
  // Bypass total_len_ accounting for the length field itself.
  std::memcpy(buffer_.data() + 56, len_bytes, 8);
  process_block(buffer_.data());
  buffer_len_ = 0;

  Sha256Digest digest;
  for (int i = 0; i < 8; ++i) store_be32(digest.data() + 4 * i, state_[i]);
  reset();
  return digest;
}

}  // namespace guardnn::crypto
