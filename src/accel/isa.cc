#include "accel/isa.h"

#include <stdexcept>

namespace guardnn::accel {

std::string opcode_name(Opcode op) {
  switch (op) {
    case Opcode::kGetPk: return "GetPK";
    case Opcode::kInitSession: return "InitSession";
    case Opcode::kSetWeight: return "SetWeight";
    case Opcode::kSetInput: return "SetInput";
    case Opcode::kForward: return "Forward";
    case Opcode::kSetReadCtr: return "SetReadCTR";
    case Opcode::kExportOutput: return "ExportOutput";
    case Opcode::kSignOutput: return "SignOutput";
    case Opcode::kSealModel: return "SealModel";
    case Opcode::kUnsealModel: return "UnsealModel";
    case Opcode::kProvision: return "Provision";
  }
  throw std::invalid_argument("opcode_name: bad opcode");
}

Bytes ForwardOp::serialize() const {
  Bytes out;
  out.reserve(64);
  out.push_back(static_cast<u8>(kind));
  auto push32 = [&](i32 v) {
    u8 buf[4];
    store_be32(buf, static_cast<u32>(v));
    out.insert(out.end(), buf, buf + 4);
  };
  auto push64 = [&](u64 v) {
    u8 buf[8];
    store_be64(buf, v);
    out.insert(out.end(), buf, buf + 8);
  };
  push32(in_c);
  push32(in_h);
  push32(in_w);
  push32(out_c);
  push32(kernel);
  push32(stride);
  push32(pad);
  push32(requant_shift);
  push32(bits);
  push32(aux_c);
  push32(aux_h);
  push32(aux_w);
  push64(input_addr);
  push64(input2_addr);
  push64(weight_addr);
  push64(output_addr);
  return out;
}

void AttestationChain::absorb(Opcode op, BytesView operands) {
  crypto::Sha256 hasher;
  hasher.update(BytesView(state_.data(), state_.size()));
  const u8 tag = static_cast<u8>(op);
  hasher.update(BytesView(&tag, 1));
  hasher.update(operands);
  state_ = hasher.finalize();
}

}  // namespace guardnn::accel
