// The GuardNN instruction set (paper Section II-E).
//
// The ISA is an *extension* to a DNN accelerator's base instructions,
// designed so that no instruction — in any order, with any operands — can
// make the accelerator emit plaintext secrets. The untrusted host schedules
// these freely; confidentiality never depends on it behaving.
#pragma once

#include <string>

#include "common/types.h"
#include "crypto/sha256.h"

namespace guardnn::accel {

enum class Opcode : u8 {
  kGetPk,         ///< Return PK_Accel + certificate.
  kInitSession,   ///< ECDHE key exchange; reset all state and counters.
  kSetWeight,     ///< Import session-encrypted weights into protected DRAM.
  kSetInput,      ///< Import a session-encrypted input.
  kForward,       ///< Run one DNN operation (base-accelerator instruction).
  kSetReadCtr,    ///< Host supplies CTR_F,R for an address range.
  kExportOutput,  ///< Re-encrypt an output region with K_Session.
  kSignOutput,    ///< Sign the attestation hashes with SK_Accel.
  // Sealed model store extension (SEAL-style persistence):
  kSealModel,     ///< Package + seal a model from protected DRAM to a blob.
  kUnsealModel,   ///< Verify + import a device-bound blob into protected DRAM.
  kProvision,     ///< Cross-device re-wrap handshake (begin/export/finish).
};

std::string opcode_name(Opcode op);

/// The DNN operation a Forward instruction executes. Shapes are public
/// (the paper does not hide network structure); values are not.
struct ForwardOp {
  enum class Kind : u8 {
    kConv,
    kFc,
    kRelu,
    kMaxPool,
    kGlobalAvgPool,
    kDepthwiseConv,  ///< One k x k filter per channel (MobileNet).
    kAdd,            ///< Elementwise residual add of two feature tensors.
    // Training kinds (paper Section II-A: the accelerator runs training too;
    // gradients are features in protected memory, Figure 2b):
    kFcDx,        ///< dX = W^T dY.     input=dY, weights=W, aux=forward-X shape.
    kFcDw,        ///< dW = dY X^T.     input=dY, input2=X (aux shape).
    kConvDx,      ///< transposed conv. input=dY, weights=W, aux=forward-X shape.
    kConvDw,      ///< dW correlation.  input=dY, input2=X (aux shape).
    kReluDx,      ///< mask by X > 0.   input=dY, input2=forward X.
    kMaxPoolDx,   ///< route to argmax. input=dY, input2=forward X (aux shape).
    kSgdUpdate,   ///< W -= dW >> shift over the whole weight blob;
                  ///< bumps CTR_W and re-encrypts (paper Section II-D.2).
  };
  Kind kind = Kind::kConv;

  // Input tensor geometry (CHW) — the tensor at input_addr.
  int in_c = 0, in_h = 0, in_w = 0;
  // Conv/FC parameters.
  int out_c = 0, kernel = 0, stride = 1, pad = 0;
  int requant_shift = 0;  ///< Requant shift; learning-rate shift for kSgdUpdate.
  int bits = 8;
  // Auxiliary geometry: the tensor at input2_addr, or for the *Dx kinds the
  // shape of the forward input (= the dX output shape).
  int aux_c = 0, aux_h = 0, aux_w = 0;

  // DRAM placement (all 512 B aligned by the host).
  u64 input_addr = 0;
  u64 input2_addr = 0;  ///< Second operand (kAdd, kFcDw, kConvDw, k*Dx masks).
  u64 weight_addr = 0;
  u64 output_addr = 0;

  u64 input_bytes() const {
    return static_cast<u64>(in_c) * in_h * in_w;
  }

  /// Canonical serialization — hashed into the attestation chain by the
  /// device and mirrored by the remote user.
  Bytes serialize() const;
};

/// Attestation hash chain: H' = SHA256(H || opcode || operand-bytes).
/// Both the device and the remote user maintain one and must agree.
class AttestationChain {
 public:
  void reset() { state_.fill(0); }
  void absorb(Opcode op, BytesView operands);
  const crypto::Sha256Digest& value() const { return state_; }

 private:
  crypto::Sha256Digest state_{};
};

}  // namespace guardnn::accel
