// The GuardNN secure accelerator device (Figure 1).
//
// Trusted boundary: everything inside this class. The device holds the
// per-device identity key (SK_Accel, certified by the manufacturer CA), a
// DRBG standing in for the TRNG, the on-chip counters of the VN generator,
// the attestation hash chain, and — per session — the ECDHE-derived session
// keys and a fresh random memory-encryption key (K_MEnc).
//
// Untrusted: the UntrustedMemory it is attached to, and every caller. The
// public methods *are* the instruction set; by construction none of them
// returns plaintext secrets, so any instruction sequence preserves
// confidentiality (Section II-B "Small TCB").
#pragma once

#include <optional>
#include <string>

#include "accel/isa.h"
#include "accel/memory.h"
#include "accel/microcontroller.h"
#include "accel/mpu.h"
#include "crypto/cert.h"
#include "crypto/ecdh.h"
#include "crypto/secure_channel.h"
#include "functional/quant_ops.h"
#include "memprot/vn_generator.h"

namespace guardnn::accel {

/// GetPK response: the device public key and its manufacturer certificate.
struct GetPkResponse {
  crypto::AffinePoint public_key;
  crypto::DeviceCertificate certificate;
};

/// InitSession response: the device's ephemeral ECDH share, signed together
/// with the user's share by SK_Accel (ECDHE-ECDSA, MITM-resistant).
struct InitSessionResponse {
  crypto::AffinePoint device_ephemeral;
  crypto::EcdsaSignature signature;  ///< over (user_pub || device_pub)
};

/// SignOutput response: attestation report + signature.
struct SignOutputResponse {
  crypto::Sha256Digest input_hash;
  crypto::Sha256Digest weight_hash;
  crypto::Sha256Digest output_hash;
  crypto::Sha256Digest instruction_hash;
  crypto::EcdsaSignature signature;

  /// The digest the signature covers.
  crypto::Sha256Digest report_digest() const;
};

/// Error codes surfaced to the (untrusted) host. Deliberately coarse: no
/// error reveals secret-dependent information.
enum class DeviceStatus : u8 {
  kOk,
  kNoSession,
  kBadRecord,        ///< Secure-channel authentication failed.
  kIntegrityFailure, ///< Off-chip integrity verification failed; session dead.
  kBadOperand,
};

class GuardNnDevice {
 public:
  /// "Fabrication": generates the device identity from `entropy` and has the
  /// manufacturer CA certify it.
  GuardNnDevice(std::string device_id, const crypto::ManufacturerCa& ca,
                UntrustedMemory& memory, BytesView entropy);

  // --- Instruction set -----------------------------------------------------

  GetPkResponse get_pk();

  /// Establishes a session. `integrity` selects GuardNN_CI vs GuardNN_C.
  InitSessionResponse init_session(const crypto::AffinePoint& user_ephemeral,
                                   bool integrity);

  /// Imports session-encrypted weights to `weight_addr` (512 B aligned).
  DeviceStatus set_weight(const crypto::SealedRecord& record, u64 weight_addr);

  /// Imports a session-encrypted input to `input_addr` (512 B aligned).
  DeviceStatus set_input(const crypto::SealedRecord& record, u64 input_addr);

  /// Host-supplied read counter for a feature address range.
  DeviceStatus set_read_ctr(u64 base, u64 bytes, u64 vn);

  /// Executes one DNN operation on protected memory.
  DeviceStatus forward(const ForwardOp& op);

  /// Reads `bytes` plaintext bytes at `addr` through the MPU and re-encrypts
  /// them under the session key for the remote user.
  DeviceStatus export_output(u64 addr, u64 bytes, crypto::SealedRecord& out);

  /// Signs the attestation hashes with SK_Accel.
  DeviceStatus sign_output(SignOutputResponse& out);

  // --- Introspection (trusted-side test hooks) -----------------------------

  bool session_active() const { return session_.has_value(); }
  bool integrity_enabled() const {
    return session_ && session_->mpu.integrity_enabled();
  }
  const memprot::VnGenerator& vn_generator() const { return vn_; }
  double elapsed_ms() const { return latency_.total_ms(); }
  /// Memory access trace of the current session (the observable side channel).
  const std::vector<std::pair<u64, bool>>& access_trace() const;

 private:
  struct Session {
    crypto::SessionKeys keys;
    crypto::ChannelReceiver from_user;
    crypto::ChannelSender to_user;
    MemoryProtectionUnit mpu;
    crypto::Sha256Digest input_hash{};
    crypto::Sha256Digest weight_hash{};
    crypto::Sha256Digest output_hash{};
    AttestationChain chain;
    bool dead = false;  ///< Set on integrity failure.
  };

  /// Rounds a byte count up to a whole number of MAC chunks (512 B), so
  /// integrity chunk boundaries always align between writes and reads.
  static u64 pad_region(u64 bytes) {
    return (bytes + MemoryProtectionUnit::kChunkBytes - 1) /
           MemoryProtectionUnit::kChunkBytes * MemoryProtectionUnit::kChunkBytes;
  }

  DeviceStatus import_region(const crypto::SealedRecord& record, u64 addr, u64 vn,
                             crypto::Sha256Digest& data_hash, Opcode op);

  std::string device_id_;
  crypto::HmacDrbg drbg_;
  crypto::EcdsaKeyPair identity_;
  crypto::DeviceCertificate certificate_;
  UntrustedMemory& memory_;
  memprot::VnGenerator vn_;
  LatencyAccumulator latency_;
  std::optional<Session> session_;
};

}  // namespace guardnn::accel
