// The GuardNN secure accelerator device (Figure 1), multi-tenant.
//
// Trusted boundary: everything inside this class. The device holds the
// per-device identity key (SK_Accel, certified by the manufacturer CA), a
// DRBG standing in for the TRNG, and a fixed-capacity *session table*. Each
// entry owns everything one tenant's session needs: the ECDHE-derived channel
// keys, a fresh per-session memory-encryption key (K_MEnc / K_MMac), its own
// on-chip VN counters, its own attestation hash chain, and a disjoint DRAM
// partition. InitSession allocates a slot and returns its SessionId; every
// other instruction takes the SessionId as its first operand; CloseSession
// wipes the slot's key material in place (the zeroed husk stays in the slot
// SRAM until it is reused, exactly like a hardware session table).
//
// Isolation argument: sessions never share symmetric keys (fresh K_MEnc,
// K_MMac, channel keys per slot), never share VN counters (per-slot
// VnGenerator), and never share off-chip addresses (the device translates
// each session's addresses into a disjoint physical partition, and the MAC
// binds the *physical* address). A record sealed for session A replayed into
// session B fails B's channel MAC; ciphertext copied between partitions fails
// the memory MAC; a stale SessionId (closed, or closed-then-reused slot)
// fails the generation check and answers kNoSession.
//
// Untrusted: the UntrustedMemory it is attached to, and every caller. The
// public methods *are* the instruction set; by construction none of them
// returns plaintext secrets, so any instruction sequence — from any mix of
// tenants — preserves confidentiality (Section II-B "Small TCB").
//
// Thread safety: every instruction entry point takes the device mutex, so a
// multi-threaded host may drive different sessions concurrently; the device
// executes one instruction at a time (like the hardware). Introspection
// methods that return references are for single-threaded trusted-side tests.
#pragma once

#include <array>
#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "accel/isa.h"
#include "accel/memory.h"
#include "accel/microcontroller.h"
#include "accel/mpu.h"
#include "crypto/cert.h"
#include "crypto/ecdh.h"
#include "crypto/secure_channel.h"
#include "functional/quant_ops.h"
#include "memprot/vn_generator.h"
#include "store/sealed_blob.h"

namespace guardnn::accel {

/// Opaque session handle: (generation << 8) | slot. The generation is bumped
/// every time a slot is (re)opened, so handles from closed sessions — even
/// after the slot is reused — never validate again. 0 is never a valid id.
using SessionId = u64;
inline constexpr SessionId kInvalidSession = 0;

/// GetPK response: the device public key and its manufacturer certificate.
struct GetPkResponse {
  crypto::AffinePoint public_key;
  crypto::DeviceCertificate certificate;
};

/// Error codes surfaced to the (untrusted) host. Deliberately coarse: no
/// error reveals secret-dependent information.
enum class DeviceStatus : u8 {
  kOk,
  kNoSession,        ///< Unknown, closed, or stale SessionId.
  kBadRecord,        ///< Secure-channel authentication failed.
  kIntegrityFailure, ///< Off-chip integrity verification failed; session dead.
  kBadOperand,
  kNoResources,      ///< Session table full (InitSession).
  kUnavailable,      ///< Device did not respond (fail-stop death, wedged, or
                     ///< quarantined by the serving health monitor). Never
                     ///< produced by the device itself — the host-side fault
                     ///< boundary answers it when a command cannot be
                     ///< delivered or its completion never arrives.
};

/// InitSession response: the allocated SessionId plus the device's ephemeral
/// ECDH share, signed together with the user's share by SK_Accel
/// (ECDHE-ECDSA, MITM-resistant). When `status != kOk` no session was
/// created and the other fields are meaningless.
struct InitSessionResponse {
  DeviceStatus status = DeviceStatus::kOk;
  SessionId session_id = kInvalidSession;
  crypto::AffinePoint device_ephemeral;
  crypto::EcdsaSignature signature;  ///< over (user_pub || device_pub)
};

/// Provision handshake, message 1 (target device → host → source device):
/// the target's fresh ECDH share, bound to its sealing-domain id and signed
/// by its certified identity key, plus the certificate so the source can
/// attest the target before re-wrapping a model for it.
struct ProvisionRequest {
  crypto::AffinePoint ephemeral;
  store::BindingId binding_id{};
  crypto::EcdsaSignature signature;  ///< over ("req" || ephemeral || binding)
  crypto::DeviceCertificate certificate;
};

/// Provision handshake, message 2 (source device → host → target device):
/// the source's ECDH share signed over both shares (MITM-resistant), plus
/// its certificate. Travels together with the transport-wrapped blob.
struct ProvisionGrant {
  crypto::AffinePoint ephemeral;
  crypto::EcdsaSignature signature;  ///< over ("grant" || src eph || dst eph)
  crypto::DeviceCertificate certificate;
};

/// SignOutput response: attestation report + signature.
struct SignOutputResponse {
  crypto::Sha256Digest input_hash;
  crypto::Sha256Digest weight_hash;
  crypto::Sha256Digest output_hash;
  crypto::Sha256Digest instruction_hash;
  crypto::EcdsaSignature signature;

  /// The digest the signature covers.
  crypto::Sha256Digest report_digest() const;
};

class GuardNnDevice {
 public:
  /// Hardware session-table capacity: how many tenants one device serves
  /// concurrently.
  static constexpr std::size_t kMaxSessions = 16;
  /// Size of each session's private DRAM partition. Physical address =
  /// slot * kSessionDramBytes + session-local address; 16 partitions end at
  /// 128 GiB, well below the MAC region at 512 GiB.
  static constexpr u64 kSessionDramBytes = 0x2'0000'0000ULL;  // 8 GiB

  /// "Fabrication": generates the device identity from `entropy` and has the
  /// manufacturer CA certify it.
  GuardNnDevice(std::string device_id, const crypto::ManufacturerCa& ca,
                UntrustedMemory& memory, BytesView entropy);

  // --- Instruction set -----------------------------------------------------

  GetPkResponse get_pk();

  /// Establishes a session in a free table slot. `integrity` selects
  /// GuardNN_CI vs GuardNN_C. Returns kNoResources when the table is full.
  InitSessionResponse init_session(const crypto::AffinePoint& user_ephemeral,
                                   bool integrity);

  /// Destroys a session: zeroizes every key the slot holds (channel keys,
  /// K_MEnc/K_MMac schedules, CMAC subkeys, data hashes) and frees the slot.
  /// Double-close or a stale id answers kNoSession.
  DeviceStatus close_session(SessionId sid);

  /// Imports session-encrypted weights to `weight_addr` (512 B aligned,
  /// session-local; the device maps it into the session's DRAM partition).
  DeviceStatus set_weight(SessionId sid, const crypto::SealedRecord& record,
                          u64 weight_addr);

  /// Imports a session-encrypted input to `input_addr` (512 B aligned).
  DeviceStatus set_input(SessionId sid, const crypto::SealedRecord& record,
                         u64 input_addr);

  /// Host-supplied read counter for a feature address range (session-local
  /// addresses; affects only this session's decryption).
  DeviceStatus set_read_ctr(SessionId sid, u64 base, u64 bytes, u64 vn);

  /// Executes one DNN operation on the session's protected memory.
  DeviceStatus forward(SessionId sid, const ForwardOp& op);

  /// Reads `bytes` plaintext bytes at `addr` through the MPU and re-encrypts
  /// them under the session key for the remote user.
  DeviceStatus export_output(SessionId sid, u64 addr, u64 bytes,
                             crypto::SealedRecord& out);

  /// Signs the session's attestation hashes with SK_Accel.
  DeviceStatus sign_output(SessionId sid, SignOutputResponse& out);

  // --- Sealed model store (SealModel / UnsealModel / Provision) ------------
  // The device holds a per-device store root key derived from its certified
  // identity key material; blobs sealed with it are bound to this device's
  // attested identity (store_binding() = SHA-256 of PK_Accel) and survive
  // sessions, resets and host restarts. The host only ever handles the
  // sealed ciphertext.

  /// Packages (descriptor || weights || CTR_W) from the session's protected
  /// weight region into a device-bound SealedBlob. `descriptor` is the
  /// host-authored public architecture metadata; `weight_bytes` plaintext
  /// bytes are read from `weight_addr` under the session's current weight
  /// VN. The host sees only ciphertext.
  ///
  /// Fused data path: an MpuExportStream walks the region once (chunk MACs
  /// verified crypto::kCmacLanes CBC chains at a time) and decrypts
  /// directly into the SealedBlobWriter's buffer, which is then encrypted
  /// in place — the plaintext exists exactly once, inside the trusted
  /// boundary. The SHA-256 content id is served from a per-session cache
  /// when the exact (address, size, CTR_W, descriptor) was hashed before
  /// (checkpoint loops, replica fan-out); any overlapping write or CTR_W
  /// bump invalidates it. `out`'s previous ciphertext buffer is recycled.
  ///
  /// Preconditions: `weight_addr` 512 B aligned and session-local;
  /// `0 < weight_bytes <= kSessionDramBytes`; the padded region must lie
  /// inside the session's partition.
  /// Errors: kNoSession (bad id), kIntegrityFailure (weight-region MAC
  /// failure — the session is dead), kBadOperand (range/alignment).
  DeviceStatus seal_model(SessionId sid, u64 weight_addr, u64 weight_bytes,
                          BytesView descriptor, store::SealedBlob& out);

  /// Verifies a blob sealed for *this* device and streams its weights into
  /// the session's DRAM partition at `weight_addr` (a SetWeight from the
  /// store: bumps CTR_W, records the weight hash for attestation). On
  /// success `descriptor_out` returns the public descriptor and
  /// `checkpoint_vn_out` the CTR_W recorded at seal time (checkpoint
  /// metadata). Any tamper, truncation, wrong-device or downgraded blob
  /// answers kBadRecord with no state change — VN counters do not advance.
  ///
  /// Fused data path: a SealedBlobReader verifies the chain MAC and every
  /// chunk MAC up front (lane-batched), the payload is parsed zero-copy,
  /// and an MpuImportStream writes the weights through the MPU without a
  /// separate padded buffer. Repeat loads of a blob this device already
  /// fully verified skip only the redundant SHA-256 re-checks (content id,
  /// attestation weight hash) via a bounded LRU memo — MAC verification
  /// always runs in full, so tampering between loads still fails.
  ///
  /// Preconditions: `weight_addr` 512 B aligned, session-local, with room
  /// for the blob's weights in the session partition.
  /// Errors: kNoSession, kBadRecord (any authenticity/structure failure,
  /// deliberately coarse), kBadOperand (range), kIntegrityFailure (session
  /// already dead).
  DeviceStatus unseal_model(SessionId sid, const store::SealedBlob& blob,
                            u64 weight_addr, Bytes& descriptor_out,
                            u64* checkpoint_vn_out = nullptr);

  /// Provision step 1, on the *target* device: emit a fresh signed ECDH
  /// share. The device keeps the private share until provision_finish (one
  /// pending handshake at a time; a new begin supersedes the old).
  DeviceStatus provision_begin(ProvisionRequest& out);

  /// Provision step 2, on the *source* device: attest the target (CA
  /// certificate + share signature + binding/identity consistency), unseal
  /// `blob` (must be bound to this device) and re-wrap it under the ECDHE
  /// transport key for the target. Plaintext never leaves the device.
  DeviceStatus export_for_device(const store::SealedBlob& blob,
                                 const ProvisionRequest& target,
                                 store::SealedBlob& wrapped,
                                 ProvisionGrant& grant);

  /// Provision step 3, back on the *target* device: attest the source,
  /// derive the transport key with the pending share, unwrap, and re-seal
  /// under this device's own root key. Consumes the pending handshake.
  DeviceStatus provision_finish(const store::SealedBlob& wrapped,
                                const ProvisionGrant& grant,
                                store::SealedBlob& rebound);

  /// Public sealing-domain identity: SHA-256 over PK_Accel, checkable
  /// against the device certificate by any host or peer device.
  const store::BindingId& store_binding() const { return store_binding_; }

  /// Device reset ("reboot"): closes and zeroizes every session and bumps
  /// the device generation. The store root key survives — sealed blobs and
  /// checkpoints remain openable — but anything session- or plan-scoped on
  /// the host must be re-established against the new generation.
  DeviceStatus reset();

  /// Monotonic reset epoch, starting at 1. Host-side caches (compiled
  /// execution plans especially) must key on it so state from before a
  /// reset is never replayed onto the device after one.
  u64 device_generation() const;

  // --- Single-session convenience ------------------------------------------
  // Legacy entry points for single-tenant callers (examples, benches, the
  // original protocol tests): they route to the most recently opened
  // session. Multi-tenant code must use the SessionId forms above.

  DeviceStatus set_weight(const crypto::SealedRecord& record, u64 weight_addr) {
    return set_weight(current_session(), record, weight_addr);
  }
  DeviceStatus set_input(const crypto::SealedRecord& record, u64 input_addr) {
    return set_input(current_session(), record, input_addr);
  }
  DeviceStatus set_read_ctr(u64 base, u64 bytes, u64 vn) {
    return set_read_ctr(current_session(), base, bytes, vn);
  }
  DeviceStatus forward(const ForwardOp& op) {
    return forward(current_session(), op);
  }
  DeviceStatus export_output(u64 addr, u64 bytes, crypto::SealedRecord& out) {
    return export_output(current_session(), addr, bytes, out);
  }
  DeviceStatus sign_output(SignOutputResponse& out) {
    return sign_output(current_session(), out);
  }

  // --- Introspection (trusted-side test hooks) -----------------------------

  bool session_active() const { return session_active(current_session()); }
  bool session_active(SessionId sid) const;
  std::size_t session_count() const;
  bool integrity_enabled() const;

  /// Base physical address of a session's DRAM partition (derived from the
  /// slot index encoded in the id; valid for closed ids too).
  static u64 partition_base(SessionId sid) {
    return (sid & 0xff) * kSessionDramBytes;
  }

  /// The current (most recently opened) session's id; kInvalidSession when
  /// none was ever opened.
  SessionId current_session() const {
    return current_session_.load(std::memory_order_relaxed);
  }

  const memprot::VnGenerator& vn_generator() const {
    return vn_generator(current_session());
  }
  const memprot::VnGenerator& vn_generator(SessionId sid) const;
  double elapsed_ms() const { return latency_.total_ms(); }
  /// Memory access trace of a session (the observable side channel).
  const std::vector<std::pair<u64, bool>>& access_trace() const {
    return access_trace(current_session());
  }
  const std::vector<std::pair<u64, bool>>& access_trace(SessionId sid) const;

  /// Key-zeroization check: true when the slot holds no key material — the
  /// slot is empty, or its closed-session husk has every key byte wiped.
  bool slot_zeroized(std::size_t slot) const;
  /// True while the slot holds an open session with live (non-zero) keys.
  bool slot_keys_live(std::size_t slot) const;

  /// Lifetime MPU traffic across every session this device ever opened:
  /// bytes through the AES-CTR engine and bytes CMAC'd. Monotonic; the
  /// serving telemetry surface samples these per device.
  const MpuByteCounters& mpu_byte_counters() const { return mpu_counters_; }

 private:
  /// Cached content id of a session's weight region — the expensive SHA-256
  /// over (descriptor || weights) that SealModel otherwise recomputes per
  /// seal. A hit requires the exact (address, byte count, CTR_W, descriptor)
  /// the id was computed under: any SetWeight / SGD update / UnsealModel
  /// bumps CTR_W and misses implicitly; feature writes that overlap the
  /// cached range (SetInput, Forward outputs) invalidate explicitly. Content
  /// ids are host-visible (blob headers carry them), so the cache holds no
  /// secret.
  struct SealHashCache {
    bool valid = false;
    u64 addr = 0;
    u64 bytes = 0;
    u64 vn = 0;
    Bytes descriptor;
    store::ContentId content_id{};
  };

  /// One fully verified blob the device has unsealed before: every field the
  /// plaintext re-checks would recompute, keyed by the blob's authenticated
  /// identity (chain MAC + nonce + content id + size — the chain MAC covers
  /// the chunk-MAC list, which in turn authenticates every ciphertext byte,
  /// so an equal key under the unchanged root key implies equal plaintext).
  /// A memo hit still re-verifies every MAC; it only skips the redundant
  /// SHA-256 passes (content-id re-check, attestation weight hash), which is
  /// what makes repeated UnsealModel of one replica run at the AES rate.
  struct VerifiedBlobMemo {
    crypto::AesBlock chain_mac{};
    crypto::AesBlock nonce{};
    store::ContentId content_id{};
    u64 plaintext_bytes = 0;
    crypto::Sha256Digest weight_hash{};
  };
  static constexpr std::size_t kMaxVerifiedBlobMemos = 16;

  struct Session {
    crypto::SessionKeys keys;
    crypto::ChannelReceiver from_user;
    crypto::ChannelSender to_user;
    MemoryProtectionUnit mpu;
    memprot::VnGenerator vn;
    u64 dram_base = 0;
    crypto::Sha256Digest input_hash{};
    crypto::Sha256Digest weight_hash{};
    crypto::Sha256Digest output_hash{};
    AttestationChain chain;
    bool dead = false;  ///< Set on integrity failure.
    SealHashCache hash_cache;

    /// Drops the cached content id when a CTR_F write lands inside the
    /// cached weight range (session-local addresses; CTR_W writes are
    /// covered by the cache's VN check instead).
    void invalidate_hash_cache_on_write(u64 addr, u64 bytes);

    /// CloseSession: wipe every secret the session holds, in place.
    void zeroize();
    bool zeroized() const;
  };

  struct Slot {
    /// Bumped on every open; occupies the SessionId's upper 56 bits, so a
    /// slot would need 2^56 open/close cycles before a stale id could ever
    /// validate again.
    u64 generation = 0;
    bool active = false;
    /// Present while open *and* after close (zeroized husk), until reuse.
    std::unique_ptr<Session> session;
  };

  /// Rounds a byte count up to a whole number of MAC chunks (512 B), so
  /// integrity chunk boundaries always align between writes and reads.
  static u64 pad_region(u64 bytes) {
    return (bytes + MemoryProtectionUnit::kChunkBytes - 1) /
           MemoryProtectionUnit::kChunkBytes * MemoryProtectionUnit::kChunkBytes;
  }

  static SessionId make_id(std::size_t slot, u64 generation) {
    return (generation << 8) | static_cast<u64>(slot);
  }

  /// Fresh per-blob nonce from the device TRNG. Caller must hold mu_.
  crypto::AesBlock random_nonce();

  /// Resolves a SessionId to its live session; nullptr for unknown, closed,
  /// or stale ids. Caller must hold mu_.
  Session* find_session(SessionId sid);
  const Session* find_session(SessionId sid) const;

  /// Maps a session-local address range into the session's physical DRAM
  /// partition. Returns false (→ kBadOperand) when the range leaves the
  /// partition.
  static bool translate(const Session& s, u64 addr, u64 bytes, u64& phys);

  DeviceStatus import_region(Session& s, const crypto::SealedRecord& record,
                             u64 addr, Opcode op);
  DeviceStatus forward_locked(Session& s, const ForwardOp& op);

  std::string device_id_;
  crypto::HmacDrbg drbg_;
  crypto::EcdsaKeyPair identity_;
  crypto::DeviceCertificate certificate_;
  /// Pinned manufacturer root (a hardware fuse): lets this device attest
  /// *peer* devices during cross-device provisioning.
  crypto::AffinePoint ca_public_;
  /// Store root key, derived from the identity key material at fabrication —
  /// deterministic for a device, never exported, survives reset().
  crypto::AesKey store_root_{};
  store::BindingId store_binding_{};
  /// Pending provision_begin ephemeral (target side of the handshake).
  std::optional<crypto::EcdhKeyPair> pending_provision_;
  /// LRU memo of fully verified blobs (see VerifiedBlobMemo). Guarded by
  /// mu_; cleared on reset().
  std::vector<VerifiedBlobMemo> verified_blobs_;
  /// UnsealModel payload staging, reused across calls so the steady-state
  /// path never reallocates (or re-faults) megabytes per load. Guarded by
  /// mu_; zero-wiped after every use, so it never holds plaintext at rest.
  Bytes unseal_scratch_;
  /// Reset epoch; bumped by reset().
  u64 generation_ = 1;
  UntrustedMemory& memory_;
  LatencyAccumulator latency_;
  /// Device-lifetime MPU byte counters; each session's MPU is pointed at
  /// this right after construction (see InitSession).
  MpuByteCounters mpu_counters_;
  std::array<Slot, kMaxSessions> slots_;
  /// Atomic so the lock-free legacy wrappers can read it while InitSession
  /// publishes a new id under mu_ (the id is validated under the lock anyway).
  std::atomic<SessionId> current_session_{kInvalidSession};
  /// One instruction executes at a time, like the hardware command queue.
  mutable std::mutex mu_;
};

}  // namespace guardnn::accel
