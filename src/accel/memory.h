// Untrusted off-chip memory.
//
// Everything outside the accelerator chip is attacker-visible and
// attacker-writable (paper threat model, Section II-A). This byte-addressable
// sparse memory is shared between the GuardNN device (which only ever stores
// ciphertext + MACs in it) and the adversarial host (which may read, tamper
// and replay at will). Tests exercise exactly those attacks.
#pragma once

#include <array>
#include <unordered_map>

#include "common/types.h"

namespace guardnn::accel {

class UntrustedMemory {
 public:
  static constexpr u64 kPageBytes = 4096;

  void write(u64 address, BytesView data);
  void read(u64 address, MutBytesView out) const;
  Bytes read(u64 address, std::size_t size) const;

  /// Adversary helper: XORs a byte (bit-flip attack).
  void tamper(u64 address, u8 xor_mask);

  /// Adversary helper: copies `size` bytes from `src` to `dst` (replay /
  /// relocation attack).
  void copy(u64 dst, u64 src, std::size_t size);

  /// Number of resident pages (for tests).
  std::size_t resident_pages() const { return pages_.size(); }

 private:
  using Page = std::array<u8, kPageBytes>;
  Page& page_for(u64 address);
  const Page* page_for(u64 address) const;

  std::unordered_map<u64, Page> pages_;
};

}  // namespace guardnn::accel
