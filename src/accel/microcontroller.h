// Microcontroller latency model.
//
// The prototype runs GuardNN's new instructions as firmware on a Xilinx
// MicroBlaze (paper Section III-B): the ECDHE-ECDSA key exchange costs
// 23.1 ms, an ECDSA signature 4.8 ms, and weight import is bounded by the
// AES path at an effective ~3.2 GB/s. The functional device accumulates
// these latencies so examples/benches can report instruction timing without
// real hardware.
#pragma once

#include "common/types.h"

namespace guardnn::accel {

struct MicrocontrollerModel {
  double key_exchange_ms = 23.1;  ///< GetPK + InitSession (ECDHE-ECDSA).
  double sign_ms = 4.8;           ///< ECDSA signature (SignOutput).
  double import_gbs = 3.2;        ///< Session-decrypt + memory-encrypt path.
  double command_overhead_ms = 0.01;

  double import_ms(u64 bytes) const {
    return command_overhead_ms + static_cast<double>(bytes) / (import_gbs * 1e9) * 1e3;
  }
};

/// Accumulates instruction latency over a session.
class LatencyAccumulator {
 public:
  explicit LatencyAccumulator(const MicrocontrollerModel& model = {})
      : model_(model) {}

  void add_key_exchange() { total_ms_ += model_.key_exchange_ms; }
  void add_sign() { total_ms_ += model_.sign_ms; }
  void add_import(u64 bytes) { total_ms_ += model_.import_ms(bytes); }
  void add_command() { total_ms_ += model_.command_overhead_ms; }

  double total_ms() const { return total_ms_; }
  void reset() { total_ms_ = 0.0; }
  const MicrocontrollerModel& model() const { return model_; }

 private:
  MicrocontrollerModel model_;
  double total_ms_ = 0.0;
};

}  // namespace guardnn::accel
