#include "accel/mpu.h"

#include <stdexcept>

namespace guardnn::accel {

MemoryProtectionUnit::MemoryProtectionUnit(UntrustedMemory& memory,
                                           const crypto::AesKey& enc_key,
                                           const crypto::AesKey& mac_key,
                                           bool integrity_enabled)
    : memory_(memory), enc_(enc_key), mac_(mac_key),
      integrity_enabled_(integrity_enabled) {}

void MemoryProtectionUnit::write(u64 address, BytesView plaintext, u64 version) {
  if (address % 16 != 0)
    throw std::invalid_argument("MPU::write: address must be 16 B aligned");
  if (plaintext.size() % 16 != 0)
    throw std::invalid_argument("MPU::write: size must be a multiple of 16");
  if (integrity_enabled_ && address % kChunkBytes != 0)
    throw std::invalid_argument("MPU::write: integrity requires 512 B alignment");

  Bytes ciphertext(plaintext.begin(), plaintext.end());
  crypto::memory_xcrypt(enc_, address / crypto::kAesBlockBytes, version, ciphertext);
  memory_.write(address, ciphertext);
  trace_.emplace_back(address, true);

  if (integrity_enabled_) {
    for (std::size_t off = 0; off < ciphertext.size(); off += kChunkBytes) {
      const std::size_t n = std::min<std::size_t>(kChunkBytes, ciphertext.size() - off);
      const u64 chunk_addr = address + off;
      const u64 tag = crypto::memory_mac(
          mac_, chunk_addr, version, BytesView(ciphertext.data() + off, n));
      u8 tag_bytes[8];
      store_be64(tag_bytes, tag);
      memory_.write(mac_slot_address(chunk_addr), BytesView(tag_bytes, 8));
      trace_.emplace_back(mac_slot_address(chunk_addr), true);
    }
  }
}

bool MemoryProtectionUnit::read(u64 address, MutBytesView out, u64 version) {
  if (poisoned_) return false;
  if (address % 16 != 0 || out.size() % 16 != 0)
    throw std::invalid_argument("MPU::read: alignment");
  if (integrity_enabled_ && address % kChunkBytes != 0)
    throw std::invalid_argument("MPU::read: integrity requires 512 B alignment");

  memory_.read(address, out);
  trace_.emplace_back(address, false);

  if (integrity_enabled_) {
    for (std::size_t off = 0; off < out.size(); off += kChunkBytes) {
      const std::size_t n = std::min<std::size_t>(kChunkBytes, out.size() - off);
      const u64 chunk_addr = address + off;
      const u64 expected = crypto::memory_mac(
          mac_, chunk_addr, version, BytesView(out.data() + off, n));
      u8 stored[8];
      memory_.read(mac_slot_address(chunk_addr), MutBytesView(stored, 8));
      trace_.emplace_back(mac_slot_address(chunk_addr), false);
      if (load_be64(stored) != expected) {
        poisoned_ = true;
        return false;
      }
    }
  }

  crypto::memory_xcrypt(enc_, address / crypto::kAesBlockBytes, version, out);
  return true;
}

}  // namespace guardnn::accel
