#include "accel/mpu.h"

#include <cstring>
#include <stdexcept>

namespace guardnn::accel {

MemoryProtectionUnit::MemoryProtectionUnit(UntrustedMemory& memory,
                                           const crypto::AesKey& enc_key,
                                           const crypto::AesKey& mac_key,
                                           bool integrity_enabled)
    : memory_(memory), enc_(enc_key), mac_(mac_key),
      mac_subkeys_(crypto::cmac_derive_subkeys(mac_)),
      integrity_enabled_(integrity_enabled) {}

void MemoryProtectionUnit::write(u64 address, BytesView plaintext, u64 version) {
  if (address % 16 != 0)
    throw std::invalid_argument("MPU::write: address must be 16 B aligned");
  if (plaintext.size() % 16 != 0)
    throw std::invalid_argument("MPU::write: size must be a multiple of 16");
  if (integrity_enabled_ && address % kChunkBytes != 0)
    throw std::invalid_argument("MPU::write: integrity requires 512 B alignment");

  trace_.emplace_back(address, true);

  // Encrypt-then-write one 512 B chunk at a time through a fixed stack
  // scratch: no heap ciphertext buffer, and the chunk is still hot in cache
  // when its MAC is computed.
  u8 scratch[kChunkBytes];
  for (std::size_t off = 0; off < plaintext.size(); off += kChunkBytes) {
    const std::size_t n = std::min<std::size_t>(kChunkBytes, plaintext.size() - off);
    const u64 chunk_addr = address + off;
    std::memcpy(scratch, plaintext.data() + off, n);
    crypto::memory_xcrypt(enc_, chunk_addr / crypto::kAesBlockBytes, version,
                          MutBytesView(scratch, n));
    memory_.write(chunk_addr, BytesView(scratch, n));

    if (integrity_enabled_) {
      const u64 tag = crypto::memory_mac(mac_, mac_subkeys_, chunk_addr, version,
                                         BytesView(scratch, n));
      u8 tag_bytes[8];
      store_be64(tag_bytes, tag);
      memory_.write(mac_slot_address(chunk_addr), BytesView(tag_bytes, 8));
      trace_.emplace_back(mac_slot_address(chunk_addr), true);
    }
  }
}

bool MemoryProtectionUnit::read(u64 address, MutBytesView out, u64 version) {
  if (poisoned_) return false;
  if (address % 16 != 0 || out.size() % 16 != 0)
    throw std::invalid_argument("MPU::read: alignment");
  if (integrity_enabled_ && address % kChunkBytes != 0)
    throw std::invalid_argument("MPU::read: integrity requires 512 B alignment");

  memory_.read(address, out);
  trace_.emplace_back(address, false);

  if (integrity_enabled_) {
    for (std::size_t off = 0; off < out.size(); off += kChunkBytes) {
      const std::size_t n = std::min<std::size_t>(kChunkBytes, out.size() - off);
      const u64 chunk_addr = address + off;
      const u64 expected = crypto::memory_mac(
          mac_, mac_subkeys_, chunk_addr, version, BytesView(out.data() + off, n));
      u8 stored[8];
      memory_.read(mac_slot_address(chunk_addr), MutBytesView(stored, 8));
      trace_.emplace_back(mac_slot_address(chunk_addr), false);
      if (load_be64(stored) != expected) {
        poisoned_ = true;
        return false;
      }
    }
  }

  crypto::memory_xcrypt(enc_, address / crypto::kAesBlockBytes, version, out);
  return true;
}

}  // namespace guardnn::accel
