#include "accel/mpu.h"

#include <cstring>
#include <stdexcept>

namespace guardnn::accel {

namespace {
/// Chunks per AES/CMAC burst: the staging and tag arrays below live on the
/// stack, and crypto::cmac_many runs the chunk MACs this many CBC chains at
/// a time.
constexpr std::size_t kGroupChunks = crypto::kCmacLanes;
constexpr std::size_t kGroupBytes =
    kGroupChunks * MemoryProtectionUnit::kChunkBytes;
}  // namespace

MemoryProtectionUnit::MemoryProtectionUnit(UntrustedMemory& memory,
                                           const crypto::AesKey& enc_key,
                                           const crypto::AesKey& mac_key,
                                           bool integrity_enabled)
    : memory_(memory), enc_(enc_key), mac_(mac_key),
      mac_subkeys_(crypto::cmac_derive_subkeys(mac_)),
      integrity_enabled_(integrity_enabled) {}

void MemoryProtectionUnit::write_chunks(u64 address, BytesView plaintext,
                                        u64 version) {
  // Encrypt-then-write one chunk group at a time through a fixed stack
  // scratch: no heap ciphertext buffer, and the group is still hot in cache
  // when its MACs are computed (kCmacLanes CBC chains in lockstep).
  u8 scratch[kGroupBytes];
  u64 tags[kGroupChunks];
  for (std::size_t off = 0; off < plaintext.size(); off += kGroupBytes) {
    const std::size_t n =
        std::min<std::size_t>(kGroupBytes, plaintext.size() - off);
    const u64 group_addr = address + off;
    std::memcpy(scratch, plaintext.data() + off, n);
    crypto::memory_xcrypt(enc_, group_addr / crypto::kAesBlockBytes, version,
                          MutBytesView(scratch, n));
    count_crypt(n);
    memory_.write(group_addr, BytesView(scratch, n));

    if (integrity_enabled_) {
      const std::size_t n_chunks = (n + kChunkBytes - 1) / kChunkBytes;
      crypto::memory_mac_many(mac_, mac_subkeys_, group_addr, version,
                              kChunkBytes, BytesView(scratch, n), tags,
                              n_chunks);
      count_mac(n);
      // The group's MAC slots are contiguous: store the tags with one
      // memory write (trace still records each slot).
      u8 tag_bytes[kGroupChunks * 8];
      for (std::size_t c = 0; c < n_chunks; ++c) {
        store_be64(tag_bytes + c * 8, tags[c]);
        trace_.emplace_back(mac_slot_address(group_addr + c * kChunkBytes),
                            true);
      }
      memory_.write(mac_slot_address(group_addr),
                    BytesView(tag_bytes, n_chunks * 8));
    }
  }
}

void MemoryProtectionUnit::write(u64 address, BytesView plaintext, u64 version) {
  if (address % 16 != 0)
    throw std::invalid_argument("MPU::write: address must be 16 B aligned");
  if (plaintext.size() % 16 != 0)
    throw std::invalid_argument("MPU::write: size must be a multiple of 16");
  if (integrity_enabled_ && address % kChunkBytes != 0)
    throw std::invalid_argument("MPU::write: integrity requires 512 B alignment");

  trace_.emplace_back(address, true);
  write_chunks(address, plaintext, version);
}

bool MemoryProtectionUnit::verify_chunks(u64 address, BytesView data,
                                         u64 version) {
  u64 tags[kGroupChunks];
  for (std::size_t off = 0; off < data.size(); off += kGroupBytes) {
    const std::size_t n = std::min<std::size_t>(kGroupBytes, data.size() - off);
    const std::size_t n_chunks = (n + kChunkBytes - 1) / kChunkBytes;
    crypto::memory_mac_many(mac_, mac_subkeys_, address + off, version,
                            kChunkBytes, BytesView(data.data() + off, n), tags,
                            n_chunks);
    count_mac(n);
    // The group's MAC slots are contiguous: fetch the stored tags with one
    // memory read (trace still records each slot, and a mismatch stops the
    // walk at its chunk like the chunk-at-a-time path did).
    u8 stored[kGroupChunks * 8];
    memory_.read(mac_slot_address(address + off),
                 MutBytesView(stored, n_chunks * 8));
    for (std::size_t c = 0; c < n_chunks; ++c) {
      trace_.emplace_back(mac_slot_address(address + off + c * kChunkBytes),
                          false);
      if (load_be64(stored + c * 8) != tags[c]) {
        poisoned_ = true;
        return false;
      }
    }
  }
  return true;
}

bool MemoryProtectionUnit::read(u64 address, MutBytesView out, u64 version) {
  if (poisoned_) return false;
  if (address % 16 != 0 || out.size() % 16 != 0)
    throw std::invalid_argument("MPU::read: alignment");
  if (integrity_enabled_ && address % kChunkBytes != 0)
    throw std::invalid_argument("MPU::read: integrity requires 512 B alignment");

  memory_.read(address, out);
  trace_.emplace_back(address, false);

  if (integrity_enabled_ && !verify_chunks(address, out, version)) return false;

  crypto::memory_xcrypt(enc_, address / crypto::kAesBlockBytes, version, out);
  count_crypt(out.size());
  return true;
}

// --- MpuExportStream ---------------------------------------------------------

MpuExportStream::MpuExportStream(MemoryProtectionUnit& mpu, u64 address,
                                 u64 bytes, u64 version)
    : mpu_(mpu), chunk_addr_(address), logical_pos_(address),
      logical_end_(address + bytes),
      padded_end_(address + (bytes + MemoryProtectionUnit::kChunkBytes - 1) /
                                MemoryProtectionUnit::kChunkBytes *
                                MemoryProtectionUnit::kChunkBytes),
      version_(version) {
  if (address % 16 != 0)
    throw std::invalid_argument("MpuExportStream: address must be 16 B aligned");
  if (mpu_.integrity_enabled_ && address % MemoryProtectionUnit::kChunkBytes != 0)
    throw std::invalid_argument(
        "MpuExportStream: integrity requires 512 B alignment");
  ok_ = !mpu_.poisoned_;
  mpu_.trace_.emplace_back(address, false);
}

MpuExportStream::~MpuExportStream() { secure_zero(carry_, sizeof(carry_)); }

bool MpuExportStream::fill_carry() {
  // Read, verify and decrypt one whole protection chunk into the carry
  // buffer (the region's final chunk, or an unaligned caller slice).
  u8* dst = carry_;
  const auto n = MemoryProtectionUnit::kChunkBytes;
  mpu_.memory_.read(chunk_addr_, MutBytesView(dst, n));
  if (mpu_.integrity_enabled_ &&
      !mpu_.verify_chunks(chunk_addr_, BytesView(dst, n), version_))
    return false;
  crypto::memory_xcrypt(mpu_.enc_, chunk_addr_ / crypto::kAesBlockBytes,
                        version_, MutBytesView(dst, n));
  mpu_.count_crypt(n);
  chunk_addr_ += n;
  carry_len_ = n;
  carry_off_ = 0;
  return true;
}

bool MpuExportStream::next(MutBytesView out) {
  if (!ok_ || mpu_.poisoned_) return ok_ = false;
  if (out.size() > remaining())
    throw std::invalid_argument("MpuExportStream::next: past end of region");

  std::size_t produced = 0;
  while (produced < out.size()) {
    // Drain held-back plaintext first.
    if (carry_off_ < carry_len_) {
      const std::size_t take =
          std::min(carry_len_ - carry_off_, out.size() - produced);
      std::memcpy(out.data() + produced, carry_ + carry_off_, take);
      carry_off_ += take;
      produced += take;
      logical_pos_ += take;
      continue;
    }
    const std::size_t want = out.size() - produced;
    const std::size_t whole =
        want / MemoryProtectionUnit::kChunkBytes *
        MemoryProtectionUnit::kChunkBytes;
    if (whole > 0) {
      // Fast path: whole chunks decrypt straight into the caller's buffer,
      // tiled so each span is read, verified and decrypted while still hot
      // in cache (one logical walk, three passes over an L2-sized window).
      constexpr std::size_t kTileBytes =
          512 * MemoryProtectionUnit::kChunkBytes;  // 256 KiB
      std::size_t done = 0;
      while (done < whole) {
        const std::size_t tile = std::min(kTileBytes, whole - done);
        MutBytesView dst(out.data() + produced + done, tile);
        mpu_.memory_.read(chunk_addr_, dst);
        if (mpu_.integrity_enabled_ &&
            !mpu_.verify_chunks(chunk_addr_, dst, version_)) {
          secure_zero(out.data() + produced, whole);
          return ok_ = false;
        }
        crypto::memory_xcrypt(mpu_.enc_, chunk_addr_ / crypto::kAesBlockBytes,
                              version_, dst);
        mpu_.count_crypt(tile);
        chunk_addr_ += tile;
        done += tile;
      }
      produced += whole;
      logical_pos_ += whole;
      continue;
    }
    if (!fill_carry()) return ok_ = false;
  }
  return true;
}

bool MpuExportStream::finish() {
  if (!ok_ || mpu_.poisoned_) return ok_ = false;
  if (remaining() != 0)
    throw std::logic_error("MpuExportStream::finish: logical bytes undelivered");
  // Verify the trailing pad chunk (logical end mid-chunk, not yet read via
  // the carry): the region was written whole-chunk, so it must verify whole.
  while (chunk_addr_ < padded_end_) {
    if (!fill_carry()) return ok_ = false;
    carry_off_ = carry_len_;  // pad tail: verified, then discarded
  }
  secure_zero(carry_, sizeof(carry_));
  carry_len_ = carry_off_ = 0;
  return true;
}

// --- MpuImportStream ---------------------------------------------------------

MpuImportStream::MpuImportStream(MemoryProtectionUnit& mpu, u64 address,
                                 u64 bytes, u64 version)
    : mpu_(mpu), chunk_addr_(address), logical_pos_(address),
      logical_end_(address + bytes),
      padded_end_(address + (bytes + MemoryProtectionUnit::kChunkBytes - 1) /
                                MemoryProtectionUnit::kChunkBytes *
                                MemoryProtectionUnit::kChunkBytes),
      version_(version) {
  if (address % 16 != 0)
    throw std::invalid_argument("MpuImportStream: address must be 16 B aligned");
  if (mpu_.integrity_enabled_ && address % MemoryProtectionUnit::kChunkBytes != 0)
    throw std::invalid_argument(
        "MpuImportStream: integrity requires 512 B alignment");
  mpu_.trace_.emplace_back(address, true);
}

MpuImportStream::~MpuImportStream() { secure_zero(staging_, sizeof(staging_)); }

void MpuImportStream::flush_staging() {
  if (staged_ == 0) return;
  mpu_.write_chunks(chunk_addr_, BytesView(staging_, staged_), version_);
  chunk_addr_ += staged_;
  staged_ = 0;
}

void MpuImportStream::next(BytesView src) {
  if (finished_)
    throw std::logic_error("MpuImportStream::next: already finished");
  if (src.size() > remaining())
    throw std::invalid_argument("MpuImportStream::next: past end of region");

  std::size_t consumed = 0;
  while (consumed < src.size()) {
    if (staged_ == 0) {
      // Fast path: whole chunk groups go straight through write_chunks'
      // stack staging without buffering here first.
      const std::size_t whole =
          (src.size() - consumed) / kGroupBytes * kGroupBytes;
      if (whole > 0) {
        mpu_.write_chunks(chunk_addr_, BytesView(src.data() + consumed, whole),
                          version_);
        chunk_addr_ += whole;
        consumed += whole;
        logical_pos_ += whole;
        continue;
      }
    }
    const std::size_t take =
        std::min(sizeof(staging_) - staged_, src.size() - consumed);
    std::memcpy(staging_ + staged_, src.data() + consumed, take);
    staged_ += take;
    consumed += take;
    logical_pos_ += take;
    if (staged_ == sizeof(staging_)) flush_staging();
  }
}

void MpuImportStream::finish() {
  if (finished_) return;
  if (remaining() != 0)
    throw std::logic_error("MpuImportStream::finish: logical bytes missing");
  // Zero-pad the final chunk so the off-chip bytes match a monolithic
  // write() of a chunk-padded buffer. The pad target is the region end
  // rounded up *relative to the start address* — with integrity off the
  // start need not be 512 B aligned, and padding to an absolute boundary
  // would spill zeros past the translated region.
  const u64 written_end = chunk_addr_ + staged_;
  const std::size_t pad = static_cast<std::size_t>(padded_end_ - written_end);
  if (pad > 0) {
    // finish() is the only producer of a non-group-aligned staging level, so
    // the pad always fits (staging holds whole chunks once it wraps).
    std::memset(staging_ + staged_, 0, pad);
    staged_ += pad;
  }
  flush_staging();
  secure_zero(staging_, sizeof(staging_));
  finished_ = true;
}

}  // namespace guardnn::accel
