// Memory Protection Unit: the Enc/IV engine of Figure 1.
//
// Every device access to untrusted memory flows through here:
//  * writes are AES-CTR encrypted with a counter formed from the 128-bit
//    block address and the caller-supplied version number (Section II-D.2);
//  * with integrity enabled, a 64-bit MAC over (address, VN, ciphertext) is
//    stored per 512 B chunk in a dedicated MAC region — the data-movement-
//    granularity MACs that let GuardNN skip the counter tree;
//  * reads decrypt with the caller's VN and, when integrity is on, verify
//    the chunk MACs; verification failure poisons the MPU, after which all
//    further reads fail (the device aborts the session).
//
// Confidentiality never depends on the VN being *correct* — a wrong read VN
// just yields garbage plaintext — which is why GuardNN can let the untrusted
// host supply CTR_F,R.
#pragma once

#include <vector>

#include "accel/memory.h"
#include "crypto/aes128.h"
#include "crypto/mem_mac.h"

namespace guardnn::accel {

class MemoryProtectionUnit {
 public:
  static constexpr u64 kChunkBytes = 512;
  /// MAC table lives in untrusted memory above the data space.
  static constexpr u64 kMacRegionBase = 0x80'0000'0000ULL;

  MemoryProtectionUnit(UntrustedMemory& memory, const crypto::AesKey& enc_key,
                       const crypto::AesKey& mac_key, bool integrity_enabled);

  /// Encrypts and stores `plaintext` at `address` (16 B aligned; the start
  /// must be 512 B aligned when integrity is enabled).
  void write(u64 address, BytesView plaintext, u64 version);

  /// Decrypts `out.size()` bytes from `address` using `version`. Returns
  /// false when integrity verification fails (or the MPU is poisoned).
  [[nodiscard]] bool read(u64 address, MutBytesView out, u64 version);

  bool integrity_enabled() const { return integrity_enabled_; }
  bool poisoned() const { return poisoned_; }

  /// Wipes K_MEnc / K_MMac key schedules and the cached CMAC subkeys
  /// (CloseSession). The MPU is unusable afterwards; it is also poisoned so
  /// any stray read fails closed.
  void zeroize() {
    enc_.zeroize();
    mac_.zeroize();
    secure_zero(mac_subkeys_.k1.data(), mac_subkeys_.k1.size());
    secure_zero(mac_subkeys_.k2.data(), mac_subkeys_.k2.size());
    poisoned_ = true;
  }
  bool zeroized() const {
    if (!enc_.zeroized() || !mac_.zeroized()) return false;
    for (u8 b : mac_subkeys_.k1)
      if (b != 0) return false;
    for (u8 b : mac_subkeys_.k2)
      if (b != 0) return false;
    return true;
  }

  /// Sequence of (address, is_write) the MPU issued — the memory side
  /// channel an adversary can observe. Tests assert it is independent of
  /// data values.
  const std::vector<std::pair<u64, bool>>& access_trace() const { return trace_; }
  void clear_trace() { trace_.clear(); }

 private:
  u64 mac_slot_address(u64 chunk_address) const {
    return kMacRegionBase + chunk_address / kChunkBytes * 8;
  }

  UntrustedMemory& memory_;
  crypto::Aes128 enc_;
  crypto::Aes128 mac_;
  /// CMAC subkeys derived once per MAC key and reused for every chunk, so the
  /// per-chunk MAC costs no subkey re-derivation (and no heap allocation).
  crypto::CmacSubkeys mac_subkeys_;
  bool integrity_enabled_;
  bool poisoned_ = false;
  std::vector<std::pair<u64, bool>> trace_;
};

}  // namespace guardnn::accel
