// Memory Protection Unit: the Enc/IV engine of Figure 1.
//
// Every device access to untrusted memory flows through here:
//  * writes are AES-CTR encrypted with a counter formed from the 128-bit
//    block address and the caller-supplied version number (Section II-D.2);
//  * with integrity enabled, a 64-bit MAC over (address, VN, ciphertext) is
//    stored per 512 B chunk in a dedicated MAC region — the data-movement-
//    granularity MACs that let GuardNN skip the counter tree;
//  * reads decrypt with the caller's VN and, when integrity is on, verify
//    the chunk MACs; verification failure poisons the MPU, after which all
//    further reads fail (the device aborts the session).
//
// Confidentiality never depends on the VN being *correct* — a wrong read VN
// just yields garbage plaintext — which is why GuardNN can let the untrusted
// host supply CTR_F,R.
#pragma once

#include <atomic>
#include <vector>

#include "accel/memory.h"
#include "crypto/aes128.h"
#include "crypto/mem_mac.h"

namespace guardnn::accel {

class MpuExportStream;
class MpuImportStream;

/// Monotonic byte counters at the MPU seam, for the ops/telemetry surface:
/// how many bytes went through the AES-CTR engine (encrypt *and* decrypt —
/// keystream work is symmetric) and how many were CMAC'd (tag generation and
/// verification). Owned by the device (one per accelerator, shared by every
/// session's MPU on it); increments are relaxed atomics on the bulk path —
/// one fetch_add per chunk group, never per byte.
struct MpuByteCounters {
  std::atomic<u64> bytes_encrypted{0};
  std::atomic<u64> bytes_macd{0};
};

class MemoryProtectionUnit {
 public:
  static constexpr u64 kChunkBytes = 512;
  /// MAC table lives in untrusted memory above the data space.
  static constexpr u64 kMacRegionBase = 0x80'0000'0000ULL;

  MemoryProtectionUnit(UntrustedMemory& memory, const crypto::AesKey& enc_key,
                       const crypto::AesKey& mac_key, bool integrity_enabled);

  /// Encrypts and stores `plaintext` at `address` (16 B aligned; the start
  /// must be 512 B aligned when integrity is enabled).
  void write(u64 address, BytesView plaintext, u64 version);

  /// Decrypts `out.size()` bytes from `address` using `version`. Returns
  /// false when integrity verification fails (or the MPU is poisoned).
  [[nodiscard]] bool read(u64 address, MutBytesView out, u64 version);

  bool integrity_enabled() const { return integrity_enabled_; }
  bool poisoned() const { return poisoned_; }

  /// Wipes K_MEnc / K_MMac key schedules and the cached CMAC subkeys
  /// (CloseSession). The MPU is unusable afterwards; it is also poisoned so
  /// any stray read fails closed.
  void zeroize() {
    enc_.zeroize();
    mac_.zeroize();
    secure_zero(mac_subkeys_.k1.data(), mac_subkeys_.k1.size());
    secure_zero(mac_subkeys_.k2.data(), mac_subkeys_.k2.size());
    poisoned_ = true;
  }
  bool zeroized() const {
    if (!enc_.zeroized() || !mac_.zeroized()) return false;
    for (u8 b : mac_subkeys_.k1)
      if (b != 0) return false;
    for (u8 b : mac_subkeys_.k2)
      if (b != 0) return false;
    return true;
  }

  /// Sequence of (address, is_write) the MPU issued — the memory side
  /// channel an adversary can observe. Tests assert it is independent of
  /// data values.
  const std::vector<std::pair<u64, bool>>& access_trace() const { return trace_; }
  void clear_trace() { trace_.clear(); }

  /// Attaches the device-owned telemetry counters (nullptr detaches). Set
  /// once right after session construction, before any traffic; the MPU does
  /// not own the struct.
  void set_byte_counters(MpuByteCounters* counters) { counters_ = counters; }

 private:
  friend class MpuExportStream;
  friend class MpuImportStream;

  u64 mac_slot_address(u64 chunk_address) const {
    return kMacRegionBase + chunk_address / kChunkBytes * 8;
  }

  /// Verifies the chunk MACs of `data.size()` ciphertext bytes already read
  /// from `address` (chunk tags computed kCmacLanes at a time, stored tags
  /// read and traced in chunk order, first mismatch poisons). Does not
  /// decrypt.
  [[nodiscard]] bool verify_chunks(u64 address, BytesView data, u64 version);

  /// Encrypts `plaintext` (whole-group staging on the stack, no heap
  /// ciphertext), writes it at `address` and stores the lane-batched chunk
  /// MACs. Factored out of write() so the import stream shares one code path.
  void write_chunks(u64 address, BytesView plaintext, u64 version);

  void count_crypt(std::size_t n) {
    if (counters_ != nullptr)
      counters_->bytes_encrypted.fetch_add(n, std::memory_order_relaxed);
  }
  void count_mac(std::size_t n) {
    if (counters_ != nullptr)
      counters_->bytes_macd.fetch_add(n, std::memory_order_relaxed);
  }

  UntrustedMemory& memory_;
  crypto::Aes128 enc_;
  crypto::Aes128 mac_;
  /// CMAC subkeys derived once per MAC key and reused for every chunk, so the
  /// per-chunk MAC costs no subkey re-derivation (and no heap allocation).
  crypto::CmacSubkeys mac_subkeys_;
  bool integrity_enabled_;
  bool poisoned_ = false;
  MpuByteCounters* counters_ = nullptr;
  std::vector<std::pair<u64, bool>> trace_;
};

/// Streaming verified export — the read side of the fused seal pipeline.
///
/// Walks the protection chunks of one region exactly once, front to back:
/// each burst is read from untrusted memory, its chunk MACs verified
/// crypto::kCmacLanes CBC chains at a time, and the plaintext decrypted
/// *directly into the caller's destination buffer* (e.g. a SealedBlobWriter
/// payload), so no intermediate full-plaintext copy ever exists. The
/// protected region is the chunk-padded superset of the logical byte count;
/// the final chunk is verified whole and its pad tail discarded inside the
/// stream.
///
/// Usage: construct, call next() with destination slices of any size until
/// the logical byte count is consumed, then finish(). A false return from
/// next()/finish() means a chunk MAC failed — the MPU is poisoned, nothing
/// further is delivered, and every plaintext byte already delivered came
/// from a verified chunk.
///
/// Trace: one data-read entry at construction plus one MAC-slot entry per
/// chunk, exactly like a monolithic MemoryProtectionUnit::read() of the
/// padded region.
class MpuExportStream {
 public:
  /// `address` follows read()'s alignment rules (512 B aligned with
  /// integrity, 16 B otherwise). `bytes` is the logical plaintext size; it
  /// need not be chunk- or block-aligned.
  MpuExportStream(MemoryProtectionUnit& mpu, u64 address, u64 bytes,
                  u64 version);
  ~MpuExportStream();

  MpuExportStream(const MpuExportStream&) = delete;
  MpuExportStream& operator=(const MpuExportStream&) = delete;

  /// Verifies and decrypts the next out.size() logical bytes into `out`.
  /// out.size() must not exceed remaining().
  [[nodiscard]] bool next(MutBytesView out);

  /// True once every logical byte was delivered with all chunks verified.
  [[nodiscard]] bool finish();

  u64 remaining() const { return logical_end_ - logical_pos_; }

 private:
  bool fill_carry();

  MemoryProtectionUnit& mpu_;
  u64 chunk_addr_;    ///< Physical address of the next unprocessed chunk.
  u64 logical_pos_;   ///< Next logical (physical-space) byte to deliver.
  u64 logical_end_;
  u64 padded_end_;    ///< Region end rounded up to a whole chunk *relative to
                      ///< the start address* (chunk windows are anchored at
                      ///< the region start, which is only 512 B aligned when
                      ///< integrity is on).
  u64 version_;
  bool ok_ = true;
  /// One decrypted chunk held back when the caller's slice ends mid-chunk.
  u8 carry_[MemoryProtectionUnit::kChunkBytes];
  std::size_t carry_len_ = 0;
  std::size_t carry_off_ = 0;
};

/// Streaming import — the write side of the fused unseal pipeline.
///
/// Accepts plaintext in slices of any size, encrypts and MACs it in
/// whole-chunk groups (crypto::kCmacLanes chunks per AES/CMAC burst, fixed
/// stack staging, no heap ciphertext), and zero-pads the final chunk at
/// finish() — byte-identical off-chip state to a monolithic write() of a
/// zero-padded buffer, without the caller ever allocating one.
///
/// Trace: one data-write entry at construction plus one MAC-slot entry per
/// chunk, exactly like the equivalent monolithic write().
class MpuImportStream {
 public:
  /// `address` follows write()'s alignment rules. `bytes` is the logical
  /// plaintext size the caller will deliver through next(); the stream owns
  /// zero-padding up to the chunk boundary.
  MpuImportStream(MemoryProtectionUnit& mpu, u64 address, u64 bytes,
                  u64 version);
  ~MpuImportStream();

  MpuImportStream(const MpuImportStream&) = delete;
  MpuImportStream& operator=(const MpuImportStream&) = delete;

  /// Appends src.size() plaintext bytes. Total across calls must not exceed
  /// the construction-time byte count.
  void next(BytesView src);

  /// Flushes the zero-padded final chunk. Must be called after exactly
  /// `bytes` were delivered; throws std::logic_error otherwise.
  void finish();

  u64 remaining() const { return logical_end_ - logical_pos_; }

 private:
  void flush_staging();

  MemoryProtectionUnit& mpu_;
  u64 chunk_addr_;   ///< Physical address the staged bytes start at.
  u64 logical_pos_;
  u64 logical_end_;
  u64 padded_end_;   ///< Region end padded relative to the start address.
  u64 version_;
  bool finished_ = false;
  /// Partial-group staging: up to kCmacLanes chunks buffered so the AES and
  /// CMAC bursts always run at full lane width.
  u8 staging_[MemoryProtectionUnit::kChunkBytes * crypto::kCmacLanes];
  std::size_t staged_ = 0;
};

}  // namespace guardnn::accel
