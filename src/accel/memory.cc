#include "accel/memory.h"

#include <cstring>

namespace guardnn::accel {

UntrustedMemory::Page& UntrustedMemory::page_for(u64 address) {
  auto [it, inserted] = pages_.try_emplace(address / kPageBytes);
  if (inserted) it->second.fill(0);
  return it->second;
}

const UntrustedMemory::Page* UntrustedMemory::page_for(u64 address) const {
  const auto it = pages_.find(address / kPageBytes);
  return it == pages_.end() ? nullptr : &it->second;
}

void UntrustedMemory::write(u64 address, BytesView data) {
  std::size_t offset = 0;
  while (offset < data.size()) {
    Page& page = page_for(address + offset);
    const u64 in_page = (address + offset) % kPageBytes;
    const std::size_t n =
        std::min<std::size_t>(kPageBytes - in_page, data.size() - offset);
    std::memcpy(page.data() + in_page, data.data() + offset, n);
    offset += n;
  }
}

void UntrustedMemory::read(u64 address, MutBytesView out) const {
  std::size_t offset = 0;
  while (offset < out.size()) {
    const Page* page = page_for(address + offset);
    const u64 in_page = (address + offset) % kPageBytes;
    const std::size_t n =
        std::min<std::size_t>(kPageBytes - in_page, out.size() - offset);
    if (page)
      std::memcpy(out.data() + offset, page->data() + in_page, n);
    else
      std::memset(out.data() + offset, 0, n);
    offset += n;
  }
}

Bytes UntrustedMemory::read(u64 address, std::size_t size) const {
  Bytes out(size);
  read(address, out);
  return out;
}

void UntrustedMemory::tamper(u64 address, u8 xor_mask) {
  Page& page = page_for(address);
  page[address % kPageBytes] ^= xor_mask;
}

void UntrustedMemory::copy(u64 dst, u64 src, std::size_t size) {
  Bytes buffer = read(src, size);
  write(dst, buffer);
}

}  // namespace guardnn::accel
