#include "accel/device.h"

#include "functional/train_ops.h"

#include <stdexcept>

namespace guardnn::accel {
namespace {

crypto::AesKey key_from_bytes(BytesView raw) {
  if (raw.size() < crypto::kAesKeyBytes)
    throw std::invalid_argument("key_from_bytes: insufficient material");
  crypto::AesKey key{};
  std::copy(raw.begin(), raw.begin() + crypto::kAesKeyBytes, key.begin());
  return key;
}

}  // namespace

crypto::Sha256Digest SignOutputResponse::report_digest() const {
  crypto::Sha256 hasher;
  hasher.update(BytesView(input_hash.data(), input_hash.size()));
  hasher.update(BytesView(weight_hash.data(), weight_hash.size()));
  hasher.update(BytesView(output_hash.data(), output_hash.size()));
  hasher.update(BytesView(instruction_hash.data(), instruction_hash.size()));
  return hasher.finalize();
}

GuardNnDevice::GuardNnDevice(std::string device_id, const crypto::ManufacturerCa& ca,
                             UntrustedMemory& memory, BytesView entropy)
    : device_id_(std::move(device_id)),
      drbg_(entropy, Bytes{'g', 'u', 'a', 'r', 'd', 'n', 'n'}),
      identity_(crypto::ecdsa_generate_key(drbg_)),
      certificate_(ca.issue(device_id_, identity_.public_key)),
      memory_(memory) {}

GetPkResponse GuardNnDevice::get_pk() {
  latency_.add_command();
  return GetPkResponse{identity_.public_key, certificate_};
}

InitSessionResponse GuardNnDevice::init_session(
    const crypto::AffinePoint& user_ephemeral, bool integrity) {
  latency_.add_key_exchange();

  // Fresh ephemeral share and transcript-bound session keys.
  const crypto::EcdhKeyPair ephemeral = crypto::ecdh_generate_key(drbg_);
  const crypto::U256 shared =
      crypto::ecdh_shared_secret(ephemeral.private_key, user_ephemeral);
  const crypto::SessionKeys keys =
      crypto::derive_session_keys(shared, user_ephemeral, ephemeral.public_key);

  // Fresh random memory-protection keys: data from a previous session is
  // unreadable afterwards, even by the same user.
  const crypto::AesKey mem_enc_key = key_from_bytes(drbg_.generate(16));
  const crypto::AesKey mem_mac_key = key_from_bytes(drbg_.generate(16));

  // Clear all state: counters, hashes, session keys (paper: InitSession
  // "clears all states ... resets all counters to zero").
  vn_.reset();
  session_.emplace(Session{
      keys,
      crypto::ChannelReceiver(keys),
      crypto::ChannelSender(keys),
      MemoryProtectionUnit(memory_, mem_enc_key, mem_mac_key, integrity),
      {}, {}, {}, AttestationChain{}, false});
  session_->chain.reset();

  // Sign (user share || device share) with the certified identity key.
  Bytes transcript = crypto::encode_point(user_ephemeral);
  const Bytes device_share = crypto::encode_point(ephemeral.public_key);
  transcript.insert(transcript.end(), device_share.begin(), device_share.end());
  InitSessionResponse response;
  response.device_ephemeral = ephemeral.public_key;
  response.signature = crypto::ecdsa_sign(identity_.private_key, transcript);
  return response;
}

DeviceStatus GuardNnDevice::import_region(const crypto::SealedRecord& record,
                                          u64 addr, u64 vn,
                                          crypto::Sha256Digest& data_hash,
                                          Opcode op) {
  if (!session_) return DeviceStatus::kNoSession;
  if (session_->dead) return DeviceStatus::kIntegrityFailure;
  auto plaintext = session_->from_user.open(record);
  if (!plaintext) return DeviceStatus::kBadRecord;
  if (plaintext->empty()) return DeviceStatus::kBadOperand;

  // Hash the imported data for remote attestation.
  data_hash = crypto::Sha256::hash(*plaintext);

  // Pad to an AES-block multiple and store through the MPU.
  plaintext->resize(pad_region(plaintext->size()), 0);
  session_->mpu.write(addr, *plaintext, vn);
  latency_.add_import(plaintext->size());

  u8 addr_bytes[8];
  store_be64(addr_bytes, addr);
  session_->chain.absorb(op, BytesView(addr_bytes, 8));
  return DeviceStatus::kOk;
}

DeviceStatus GuardNnDevice::set_weight(const crypto::SealedRecord& record,
                                       u64 weight_addr) {
  if (!session_) return DeviceStatus::kNoSession;
  vn_.on_set_weight();
  return import_region(record, weight_addr, vn_.weight_vn(),
                       session_->weight_hash, Opcode::kSetWeight);
}

DeviceStatus GuardNnDevice::set_input(const crypto::SealedRecord& record,
                                      u64 input_addr) {
  if (!session_) return DeviceStatus::kNoSession;
  vn_.on_set_input();
  return import_region(record, input_addr, vn_.feature_write_vn(),
                       session_->input_hash, Opcode::kSetInput);
}

DeviceStatus GuardNnDevice::set_read_ctr(u64 base, u64 bytes, u64 vn) {
  if (!session_) return DeviceStatus::kNoSession;
  latency_.add_command();
  vn_.set_read_ctr(base, bytes, vn);
  // SetReadCTR is *not* hashed into the attestation chain: it only affects
  // decryption and carries no integrity obligation (Section II-E).
  return DeviceStatus::kOk;
}

DeviceStatus GuardNnDevice::forward(const ForwardOp& op) {
  using functional::ConvWeights;
  using functional::FcWeights;
  using functional::Tensor;

  if (!session_) return DeviceStatus::kNoSession;
  if (session_->dead) return DeviceStatus::kIntegrityFailure;
  if (op.in_c <= 0 || op.in_h <= 0 || op.in_w <= 0) return DeviceStatus::kBadOperand;
  if (op.bits != 6 && op.bits != 8) return DeviceStatus::kBadOperand;
  latency_.add_command();

  // SGD update is special: it reads the gradient blob chunk-by-chunk (each
  // layer's dW was written with a different CTR_F,W, so the host supplies a
  // read counter per range), updates the whole weight blob, bumps CTR_W and
  // re-encrypts the blob under the new counter (Section II-D.2).
  if (op.kind == ForwardOp::Kind::kSgdUpdate) {
    const u64 elems = static_cast<u64>(op.in_c) * op.in_h * op.in_w;
    const u64 span = pad_region(elems);
    Bytes weights(span);
    if (!session_->mpu.read(op.weight_addr, weights, vn_.weight_vn())) {
      session_->dead = true;
      return DeviceStatus::kIntegrityFailure;
    }
    Bytes grads(span);
    for (u64 off = 0; off < span; off += MemoryProtectionUnit::kChunkBytes) {
      const u64 chunk_vn = vn_.feature_read_vn(op.input_addr + off).value_or(0);
      if (!session_->mpu.read(op.input_addr + off,
                              MutBytesView(grads.data() + off,
                                           MemoryProtectionUnit::kChunkBytes),
                              chunk_vn)) {
        session_->dead = true;
        return DeviceStatus::kIntegrityFailure;
      }
    }
    std::vector<i8> w(weights.begin(), weights.end());
    const std::vector<i8> g(grads.begin(), grads.end());
    functional::sgd_update(w, g, op.requant_shift, op.bits);
    Bytes updated(reinterpret_cast<const u8*>(w.data()),
                  reinterpret_cast<const u8*>(w.data()) + w.size());
    vn_.on_set_weight();
    session_->mpu.write(op.weight_addr, updated, vn_.weight_vn());
    session_->chain.absorb(Opcode::kForward, op.serialize());
    return DeviceStatus::kOk;
  }

  // Read the input with the host-supplied read counter; a missing or wrong
  // value decrypts to garbage but never leaks (Section II-D.2).
  const u64 input_vn = vn_.feature_read_vn(op.input_addr).value_or(0);
  Tensor input(op.in_c, op.in_h, op.in_w, op.bits);
  {
    Bytes buffer(pad_region(input.size()));
    if (!session_->mpu.read(op.input_addr, buffer, input_vn)) {
      session_->dead = true;
      return DeviceStatus::kIntegrityFailure;
    }
    std::copy(buffer.begin(), buffer.begin() + static_cast<long>(input.size()),
              reinterpret_cast<u8*>(input.data().data()));
  }

  Tensor result;
  std::vector<i8> fc_result;
  bool is_fc = false;

  // Operand combinations the base accelerator cannot execute (kernel larger
  // than the tensor, mismatched gradient shapes, ...) are rejected as
  // kBadOperand: the functional ops throw std::invalid_argument, which a
  // hardware implementation maps to an error response. Nothing is written.
  try {
  switch (op.kind) {
    case ForwardOp::Kind::kConv: {
      if (op.out_c <= 0 || op.kernel <= 0) return DeviceStatus::kBadOperand;
      ConvWeights weights(op.out_c, op.in_c, op.kernel, op.bits);
      Bytes buffer(pad_region(weights.data.size()));
      const u64 wvn = vn_.weight_vn();
      if (!session_->mpu.read(op.weight_addr, buffer, wvn)) {
        session_->dead = true;
        return DeviceStatus::kIntegrityFailure;
      }
      std::copy(buffer.begin(), buffer.begin() + static_cast<long>(weights.data.size()),
                reinterpret_cast<u8*>(weights.data.data()));
      result = functional::conv2d_gemm(input, weights, op.stride, op.pad,
                                       op.requant_shift);
      break;
    }
    case ForwardOp::Kind::kFc: {
      if (op.out_c <= 0) return DeviceStatus::kBadOperand;
      const int in_features = op.in_c * op.in_h * op.in_w;
      FcWeights weights(op.out_c, in_features, op.bits);
      Bytes buffer(pad_region(weights.data.size()));
      const u64 wvn = vn_.weight_vn();
      if (!session_->mpu.read(op.weight_addr, buffer, wvn)) {
        session_->dead = true;
        return DeviceStatus::kIntegrityFailure;
      }
      std::copy(buffer.begin(), buffer.begin() + static_cast<long>(weights.data.size()),
                reinterpret_cast<u8*>(weights.data.data()));
      std::vector<i8> flat(input.data().begin(), input.data().end());
      fc_result = functional::fully_connected(flat, weights, op.requant_shift, op.bits);
      is_fc = true;
      break;
    }
    case ForwardOp::Kind::kRelu:
      result = input;
      functional::relu(result);
      break;
    case ForwardOp::Kind::kMaxPool:
      if (op.kernel <= 0 || op.stride <= 0) return DeviceStatus::kBadOperand;
      result = functional::maxpool2d(input, op.kernel, op.stride);
      break;
    case ForwardOp::Kind::kGlobalAvgPool:
      result = functional::global_avgpool(input);
      break;
    case ForwardOp::Kind::kDepthwiseConv: {
      if (op.kernel <= 0) return DeviceStatus::kBadOperand;
      ConvWeights weights(op.in_c, 1, op.kernel, op.bits);
      Bytes buffer(pad_region(weights.data.size()));
      const u64 wvn = vn_.weight_vn();
      if (!session_->mpu.read(op.weight_addr, buffer, wvn)) {
        session_->dead = true;
        return DeviceStatus::kIntegrityFailure;
      }
      std::copy(buffer.begin(), buffer.begin() + static_cast<long>(weights.data.size()),
                reinterpret_cast<u8*>(weights.data.data()));
      result = functional::depthwise_conv2d(input, weights, op.stride, op.pad,
                                            op.requant_shift);
      break;
    }
    case ForwardOp::Kind::kAdd: {
      // Second operand: same geometry, host-supplied read counter.
      Tensor second(op.in_c, op.in_h, op.in_w, op.bits);
      const u64 vn2 = vn_.feature_read_vn(op.input2_addr).value_or(0);
      Bytes buffer(pad_region(second.size()));
      if (!session_->mpu.read(op.input2_addr, buffer, vn2)) {
        session_->dead = true;
        return DeviceStatus::kIntegrityFailure;
      }
      std::copy(buffer.begin(), buffer.begin() + static_cast<long>(second.size()),
                reinterpret_cast<u8*>(second.data().data()));
      result = functional::tensor_add(input, second);
      break;
    }
    case ForwardOp::Kind::kFcDx: {
      // input = dY (out_features vector), aux = forward input shape.
      if (op.aux_c <= 0 || op.aux_h <= 0 || op.aux_w <= 0)
        return DeviceStatus::kBadOperand;
      const int in_features = op.aux_c * op.aux_h * op.aux_w;
      const int out_features = op.in_c * op.in_h * op.in_w;
      FcWeights weights(out_features, in_features, op.bits);
      Bytes buffer(pad_region(weights.data.size()));
      if (!session_->mpu.read(op.weight_addr, buffer, vn_.weight_vn())) {
        session_->dead = true;
        return DeviceStatus::kIntegrityFailure;
      }
      std::copy(buffer.begin(), buffer.begin() + static_cast<long>(weights.data.size()),
                reinterpret_cast<u8*>(weights.data.data()));
      const std::vector<i8> d_out(input.data().begin(), input.data().end());
      const std::vector<i8> d_in = functional::fc_backward_input(
          d_out, weights, op.requant_shift, op.bits);
      result = Tensor(op.aux_c, op.aux_h, op.aux_w, op.bits);
      std::copy(d_in.begin(), d_in.end(), result.data().begin());
      break;
    }
    case ForwardOp::Kind::kFcDw: {
      // input = dY, input2 = forward input X (aux shape).
      if (op.aux_c <= 0 || op.aux_h <= 0 || op.aux_w <= 0)
        return DeviceStatus::kBadOperand;
      Tensor x(op.aux_c, op.aux_h, op.aux_w, op.bits);
      const u64 vn2 = vn_.feature_read_vn(op.input2_addr).value_or(0);
      Bytes buffer(pad_region(x.size()));
      if (!session_->mpu.read(op.input2_addr, buffer, vn2)) {
        session_->dead = true;
        return DeviceStatus::kIntegrityFailure;
      }
      std::copy(buffer.begin(), buffer.begin() + static_cast<long>(x.size()),
                reinterpret_cast<u8*>(x.data().data()));
      const std::vector<i8> d_out(input.data().begin(), input.data().end());
      const std::vector<i8> flat_x(x.data().begin(), x.data().end());
      const FcWeights grads = functional::fc_backward_weights(
          d_out, flat_x, op.requant_shift, op.bits);
      result = Tensor(1, 1, static_cast<int>(grads.data.size()), op.bits);
      std::copy(grads.data.begin(), grads.data.end(), result.data().begin());
      break;
    }
    case ForwardOp::Kind::kConvDx: {
      // input = dY (forward output shape), aux = forward input shape.
      if (op.aux_c <= 0 || op.aux_h <= 0 || op.aux_w <= 0 || op.kernel <= 0)
        return DeviceStatus::kBadOperand;
      ConvWeights weights(op.in_c, op.aux_c, op.kernel, op.bits);
      Bytes buffer(pad_region(weights.data.size()));
      if (!session_->mpu.read(op.weight_addr, buffer, vn_.weight_vn())) {
        session_->dead = true;
        return DeviceStatus::kIntegrityFailure;
      }
      std::copy(buffer.begin(), buffer.begin() + static_cast<long>(weights.data.size()),
                reinterpret_cast<u8*>(weights.data.data()));
      result = functional::conv2d_backward_input(input, weights, op.aux_h,
                                                 op.aux_w, op.stride, op.pad,
                                                 op.requant_shift);
      break;
    }
    case ForwardOp::Kind::kConvDw: {
      // input = dY, input2 = forward input X (aux shape).
      if (op.aux_c <= 0 || op.aux_h <= 0 || op.aux_w <= 0 || op.kernel <= 0)
        return DeviceStatus::kBadOperand;
      Tensor x(op.aux_c, op.aux_h, op.aux_w, op.bits);
      const u64 vn2 = vn_.feature_read_vn(op.input2_addr).value_or(0);
      Bytes buffer(pad_region(x.size()));
      if (!session_->mpu.read(op.input2_addr, buffer, vn2)) {
        session_->dead = true;
        return DeviceStatus::kIntegrityFailure;
      }
      std::copy(buffer.begin(), buffer.begin() + static_cast<long>(x.size()),
                reinterpret_cast<u8*>(x.data().data()));
      const ConvWeights grads = functional::conv2d_backward_weights(
          input, x, op.kernel, op.stride, op.pad, op.requant_shift);
      result = Tensor(1, 1, static_cast<int>(grads.data.size()), op.bits);
      std::copy(grads.data.begin(), grads.data.end(), result.data().begin());
      break;
    }
    case ForwardOp::Kind::kReluDx:
    case ForwardOp::Kind::kMaxPoolDx: {
      // input = dY; input2 = the forward input (aux shape).
      if (op.aux_c <= 0 || op.aux_h <= 0 || op.aux_w <= 0)
        return DeviceStatus::kBadOperand;
      Tensor x(op.aux_c, op.aux_h, op.aux_w, op.bits);
      const u64 vn2 = vn_.feature_read_vn(op.input2_addr).value_or(0);
      Bytes buffer(pad_region(x.size()));
      if (!session_->mpu.read(op.input2_addr, buffer, vn2)) {
        session_->dead = true;
        return DeviceStatus::kIntegrityFailure;
      }
      std::copy(buffer.begin(), buffer.begin() + static_cast<long>(x.size()),
                reinterpret_cast<u8*>(x.data().data()));
      result = op.kind == ForwardOp::Kind::kReluDx
                   ? functional::relu_backward(input, x)
                   : functional::maxpool_backward(input, x, op.kernel, op.stride);
      break;
    }
    case ForwardOp::Kind::kSgdUpdate:
      return DeviceStatus::kBadOperand;  // handled above; unreachable
  }
  } catch (const std::invalid_argument&) {
    return DeviceStatus::kBadOperand;
  } catch (const std::out_of_range&) {
    return DeviceStatus::kBadOperand;
  }

  // Write the output with the on-chip feature-write VN, then advance CTR_F,W.
  const u64 out_vn = vn_.feature_write_vn();
  if (is_fc) {
    Bytes buffer(pad_region(fc_result.size()), 0);
    std::copy(fc_result.begin(), fc_result.end(),
              reinterpret_cast<i8*>(buffer.data()));
    session_->mpu.write(op.output_addr, buffer, out_vn);
  } else {
    Bytes buffer(pad_region(result.size()), 0);
    std::copy(result.data().begin(), result.data().end(),
              reinterpret_cast<i8*>(buffer.data()));
    session_->mpu.write(op.output_addr, buffer, out_vn);
  }
  vn_.on_forward_write();

  session_->chain.absorb(Opcode::kForward, op.serialize());
  return DeviceStatus::kOk;
}

DeviceStatus GuardNnDevice::export_output(u64 addr, u64 bytes,
                                          crypto::SealedRecord& out) {
  if (!session_) return DeviceStatus::kNoSession;
  if (session_->dead) return DeviceStatus::kIntegrityFailure;
  if (bytes == 0) return DeviceStatus::kBadOperand;
  latency_.add_command();

  const u64 vn = vn_.feature_read_vn(addr).value_or(0);
  Bytes plaintext(pad_region(bytes));
  if (!session_->mpu.read(addr, plaintext, vn)) {
    session_->dead = true;
    return DeviceStatus::kIntegrityFailure;
  }
  plaintext.resize(bytes);
  session_->output_hash = crypto::Sha256::hash(plaintext);
  out = session_->to_user.seal(plaintext);

  u8 operand[16];
  store_be64(operand, addr);
  store_be64(operand + 8, bytes);
  session_->chain.absorb(Opcode::kExportOutput, BytesView(operand, 16));
  return DeviceStatus::kOk;
}

DeviceStatus GuardNnDevice::sign_output(SignOutputResponse& out) {
  if (!session_) return DeviceStatus::kNoSession;
  if (session_->dead) return DeviceStatus::kIntegrityFailure;
  latency_.add_sign();

  out.input_hash = session_->input_hash;
  out.weight_hash = session_->weight_hash;
  out.output_hash = session_->output_hash;
  out.instruction_hash = session_->chain.value();
  out.signature =
      crypto::ecdsa_sign_digest(identity_.private_key, out.report_digest());
  return DeviceStatus::kOk;
}

const std::vector<std::pair<u64, bool>>& GuardNnDevice::access_trace() const {
  static const std::vector<std::pair<u64, bool>> empty;
  return session_ ? session_->mpu.access_trace() : empty;
}

}  // namespace guardnn::accel
