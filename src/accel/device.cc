#include "accel/device.h"

#include "crypto/hmac.h"
#include "functional/train_ops.h"
#include "store/model_package.h"

#include <algorithm>
#include <stdexcept>

namespace guardnn::accel {
namespace {

crypto::AesKey key_from_bytes(BytesView raw) {
  if (raw.size() < crypto::kAesKeyBytes)
    throw std::invalid_argument("key_from_bytes: insufficient material");
  crypto::AesKey key{};
  std::copy(raw.begin(), raw.begin() + crypto::kAesKeyBytes, key.begin());
  return key;
}

/// Transcript a provision-request signature covers.
Bytes provision_request_transcript(const crypto::AffinePoint& ephemeral,
                                   const store::BindingId& binding) {
  static constexpr char kTag[] = "guardnn-provision-req";
  Bytes transcript(kTag, kTag + sizeof(kTag) - 1);
  const Bytes point = crypto::encode_point(ephemeral);
  transcript.insert(transcript.end(), point.begin(), point.end());
  transcript.insert(transcript.end(), binding.begin(), binding.end());
  return transcript;
}

/// Transcript a provision-grant signature covers (both shares, so neither
/// side's ephemeral can be swapped by a MITM host).
Bytes provision_grant_transcript(const crypto::AffinePoint& source_eph,
                                 const crypto::AffinePoint& target_eph) {
  static constexpr char kTag[] = "guardnn-provision-grant";
  Bytes transcript(kTag, kTag + sizeof(kTag) - 1);
  const Bytes src = crypto::encode_point(source_eph);
  const Bytes dst = crypto::encode_point(target_eph);
  transcript.insert(transcript.end(), src.begin(), src.end());
  transcript.insert(transcript.end(), dst.begin(), dst.end());
  return transcript;
}

/// ECDHE transport key for one provision re-wrap, bound to both shares.
crypto::AesKey provision_transport_key(const crypto::U256& shared_x,
                                       const crypto::AffinePoint& source_eph,
                                       const crypto::AffinePoint& target_eph) {
  static constexpr char kSalt[] = "guardnn-provision-transport";
  Bytes info = crypto::encode_point(source_eph);
  const Bytes dst = crypto::encode_point(target_eph);
  info.insert(info.end(), dst.begin(), dst.end());
  Bytes ikm = shared_x.to_bytes();
  const Bytes okm = crypto::hkdf(
      BytesView(reinterpret_cast<const u8*>(kSalt), sizeof(kSalt) - 1), ikm,
      info, crypto::kAesKeyBytes);
  secure_zero(ikm.data(), ikm.size());
  crypto::AesKey key{};
  std::copy(okm.begin(), okm.end(), key.begin());
  return key;
}

/// Attests a peer device for provisioning: certificate chains to the pinned
/// manufacturer CA, and the claimed binding id is the hash of the certified
/// public key (so the binding cannot be detached from the attested identity).
bool verify_peer_identity(const crypto::DeviceCertificate& certificate,
                          const store::BindingId* claimed_binding,
                          const crypto::AffinePoint& ca_public) {
  if (!crypto::verify_certificate(certificate, ca_public)) return false;
  if (claimed_binding) {
    const Bytes encoded = crypto::encode_point(certificate.device_public);
    if (crypto::Sha256::hash(encoded) != *claimed_binding) return false;
  }
  return true;
}

}  // namespace

crypto::Sha256Digest SignOutputResponse::report_digest() const {
  crypto::Sha256 hasher;
  hasher.update(BytesView(input_hash.data(), input_hash.size()));
  hasher.update(BytesView(weight_hash.data(), weight_hash.size()));
  hasher.update(BytesView(output_hash.data(), output_hash.size()));
  hasher.update(BytesView(instruction_hash.data(), instruction_hash.size()));
  return hasher.finalize();
}

void GuardNnDevice::Session::invalidate_hash_cache_on_write(u64 addr,
                                                            u64 bytes) {
  if (!hash_cache.valid) return;
  const u64 write_end = addr + pad_region(bytes);
  const u64 cache_end = hash_cache.addr + pad_region(hash_cache.bytes);
  if (addr < cache_end && hash_cache.addr < write_end)
    hash_cache.valid = false;
}

void GuardNnDevice::Session::zeroize() {
  secure_zero(keys.enc_key.data(), keys.enc_key.size());
  secure_zero(keys.mac_key.data(), keys.mac_key.size());
  from_user.zeroize();
  to_user.zeroize();
  mpu.zeroize();
  vn.reset();
  secure_zero(input_hash.data(), input_hash.size());
  secure_zero(weight_hash.data(), weight_hash.size());
  secure_zero(output_hash.data(), output_hash.size());
  chain.reset();
  dead = true;
}

bool GuardNnDevice::Session::zeroized() const {
  for (u8 b : keys.enc_key)
    if (b != 0) return false;
  for (u8 b : keys.mac_key)
    if (b != 0) return false;
  return from_user.zeroized() && to_user.zeroized() && mpu.zeroized();
}

GuardNnDevice::GuardNnDevice(std::string device_id, const crypto::ManufacturerCa& ca,
                             UntrustedMemory& memory, BytesView entropy)
    : device_id_(std::move(device_id)),
      drbg_(entropy, Bytes{'g', 'u', 'a', 'r', 'd', 'n', 'n'}),
      identity_(crypto::ecdsa_generate_key(drbg_)),
      certificate_(ca.issue(device_id_, identity_.public_key)),
      ca_public_(ca.public_key()),
      memory_(memory) {
  // Store root key: derived from the identity key material, so it is (a)
  // deterministic for this device — sealed blobs survive power cycles and
  // reset() — and (b) bound to the attested identity: the binding id is the
  // hash of the certified public key, which anyone can check against the
  // certificate, while the root key itself never leaves the chip.
  static constexpr char kStoreSalt[] = "guardnn-store-root";
  Bytes ikm = identity_.private_key.to_bytes();
  const Bytes okm = crypto::hkdf(
      BytesView(reinterpret_cast<const u8*>(kStoreSalt), sizeof(kStoreSalt) - 1),
      ikm,
      BytesView(reinterpret_cast<const u8*>(device_id_.data()), device_id_.size()),
      crypto::kAesKeyBytes);
  secure_zero(ikm.data(), ikm.size());
  std::copy(okm.begin(), okm.end(), store_root_.begin());
  store_binding_ =
      crypto::Sha256::hash(crypto::encode_point(identity_.public_key));
}

GetPkResponse GuardNnDevice::get_pk() {
  std::lock_guard<std::mutex> lock(mu_);
  latency_.add_command();
  return GetPkResponse{identity_.public_key, certificate_};
}

InitSessionResponse GuardNnDevice::init_session(
    const crypto::AffinePoint& user_ephemeral, bool integrity) {
  std::lock_guard<std::mutex> lock(mu_);
  latency_.add_key_exchange();

  InitSessionResponse response;

  // Find a free slot; a closed slot's zeroized husk is reclaimed here.
  std::size_t slot_index = kMaxSessions;
  for (std::size_t i = 0; i < kMaxSessions; ++i) {
    if (!slots_[i].active) {
      slot_index = i;
      break;
    }
  }
  if (slot_index == kMaxSessions) {
    response.status = DeviceStatus::kNoResources;
    return response;
  }
  Slot& slot = slots_[slot_index];

  // Fresh ephemeral share and transcript-bound session keys.
  const crypto::EcdhKeyPair ephemeral = crypto::ecdh_generate_key(drbg_);
  const crypto::U256 shared =
      crypto::ecdh_shared_secret(ephemeral.private_key, user_ephemeral);
  const crypto::SessionKeys keys =
      crypto::derive_session_keys(shared, user_ephemeral, ephemeral.public_key);

  // Fresh random memory-protection keys: data from a previous session is
  // unreadable afterwards, even by the same user.
  const crypto::AesKey mem_enc_key = key_from_bytes(drbg_.generate(16));
  const crypto::AesKey mem_mac_key = key_from_bytes(drbg_.generate(16));

  // All per-session state starts from zero: counters, hashes, channel
  // sequence numbers (paper: InitSession "clears all states ... resets all
  // counters to zero" — here scoped to the slot being opened).
  slot.generation += 1;
  slot.active = true;
  slot.session = std::make_unique<Session>(Session{
      keys,
      crypto::ChannelReceiver(keys),
      crypto::ChannelSender(keys),
      MemoryProtectionUnit(memory_, mem_enc_key, mem_mac_key, integrity),
      memprot::VnGenerator{},
      slot_index * kSessionDramBytes,
      {}, {}, {}, AttestationChain{}, false, SealHashCache{}});
  slot.session->mpu.set_byte_counters(&mpu_counters_);
  slot.session->chain.reset();

  const SessionId sid = make_id(slot_index, slot.generation);
  current_session_.store(sid, std::memory_order_relaxed);

  // Sign (user share || device share) with the certified identity key.
  Bytes transcript = crypto::encode_point(user_ephemeral);
  const Bytes device_share = crypto::encode_point(ephemeral.public_key);
  transcript.insert(transcript.end(), device_share.begin(), device_share.end());
  response.status = DeviceStatus::kOk;
  response.session_id = sid;
  response.device_ephemeral = ephemeral.public_key;
  response.signature = crypto::ecdsa_sign(identity_.private_key, transcript);
  return response;
}

DeviceStatus GuardNnDevice::close_session(SessionId sid) {
  std::lock_guard<std::mutex> lock(mu_);
  Session* session = find_session(sid);
  if (!session) return DeviceStatus::kNoSession;
  latency_.add_command();
  session->zeroize();
  slots_[sid & 0xff].active = false;  // husk stays until the slot is reused
  return DeviceStatus::kOk;
}

GuardNnDevice::Session* GuardNnDevice::find_session(SessionId sid) {
  const std::size_t slot_index = sid & 0xff;
  if (sid == kInvalidSession || slot_index >= kMaxSessions) return nullptr;
  Slot& slot = slots_[slot_index];
  if (!slot.active || !slot.session) return nullptr;
  if (make_id(slot_index, slot.generation) != sid) return nullptr;  // stale
  return slot.session.get();
}

const GuardNnDevice::Session* GuardNnDevice::find_session(SessionId sid) const {
  return const_cast<GuardNnDevice*>(this)->find_session(sid);
}

bool GuardNnDevice::translate(const Session& s, u64 addr, u64 bytes, u64& phys) {
  if (addr >= kSessionDramBytes || bytes > kSessionDramBytes - addr) return false;
  phys = s.dram_base + addr;
  return true;
}

DeviceStatus GuardNnDevice::import_region(Session& s,
                                          const crypto::SealedRecord& record,
                                          u64 addr, Opcode op) {
  if (s.dead) return DeviceStatus::kIntegrityFailure;
  auto plaintext = s.from_user.open(record);
  if (!plaintext) return DeviceStatus::kBadRecord;
  if (plaintext->empty()) return DeviceStatus::kBadOperand;

  u64 phys = 0;
  if (!translate(s, addr, pad_region(plaintext->size()), phys))
    return DeviceStatus::kBadOperand;

  // Every check passed — only now advance the session counter, so a
  // malicious host cannot desync an honest session's VNs by replaying
  // unauthentic records at it.
  crypto::Sha256Digest* data_hash;
  u64 vn;
  if (op == Opcode::kSetWeight) {
    s.vn.on_set_weight();
    vn = s.vn.weight_vn();
    data_hash = &s.weight_hash;
  } else {
    s.vn.on_set_input();
    vn = s.vn.feature_write_vn();
    data_hash = &s.input_hash;
    // A CTR_F write over the cached weight range changes bytes the cached
    // content id no longer describes (CTR_W writes invalidate via the VN
    // check instead).
    s.invalidate_hash_cache_on_write(addr, plaintext->size());
  }

  // Hash the imported data for remote attestation.
  *data_hash = crypto::Sha256::hash(*plaintext);

  // Pad to an AES-block multiple and store through the MPU.
  plaintext->resize(pad_region(plaintext->size()), 0);
  s.mpu.write(phys, *plaintext, vn);
  latency_.add_import(plaintext->size());

  u8 addr_bytes[8];
  store_be64(addr_bytes, addr);
  s.chain.absorb(op, BytesView(addr_bytes, 8));
  return DeviceStatus::kOk;
}

DeviceStatus GuardNnDevice::set_weight(SessionId sid,
                                       const crypto::SealedRecord& record,
                                       u64 weight_addr) {
  std::lock_guard<std::mutex> lock(mu_);
  Session* s = find_session(sid);
  if (!s) return DeviceStatus::kNoSession;
  return import_region(*s, record, weight_addr, Opcode::kSetWeight);
}

DeviceStatus GuardNnDevice::set_input(SessionId sid,
                                      const crypto::SealedRecord& record,
                                      u64 input_addr) {
  std::lock_guard<std::mutex> lock(mu_);
  Session* s = find_session(sid);
  if (!s) return DeviceStatus::kNoSession;
  return import_region(*s, record, input_addr, Opcode::kSetInput);
}

DeviceStatus GuardNnDevice::set_read_ctr(SessionId sid, u64 base, u64 bytes,
                                         u64 vn) {
  std::lock_guard<std::mutex> lock(mu_);
  Session* s = find_session(sid);
  if (!s) return DeviceStatus::kNoSession;
  latency_.add_command();
  s->vn.set_read_ctr(base, bytes, vn);
  // SetReadCTR is *not* hashed into the attestation chain: it only affects
  // decryption and carries no integrity obligation (Section II-E).
  return DeviceStatus::kOk;
}

DeviceStatus GuardNnDevice::forward(SessionId sid, const ForwardOp& op) {
  std::lock_guard<std::mutex> lock(mu_);
  Session* s = find_session(sid);
  if (!s) return DeviceStatus::kNoSession;
  return forward_locked(*s, op);
}

DeviceStatus GuardNnDevice::forward_locked(Session& s, const ForwardOp& op) {
  using functional::ConvWeights;
  using functional::FcWeights;
  using functional::Tensor;

  if (s.dead) return DeviceStatus::kIntegrityFailure;
  if (op.in_c <= 0 || op.in_h <= 0 || op.in_w <= 0) return DeviceStatus::kBadOperand;
  if (op.bits != 6 && op.bits != 8) return DeviceStatus::kBadOperand;
  latency_.add_command();

  // SGD update is special: it reads the gradient blob chunk-by-chunk (each
  // layer's dW was written with a different CTR_F,W, so the host supplies a
  // read counter per range), updates the whole weight blob, bumps CTR_W and
  // re-encrypts the blob under the new counter (Section II-D.2).
  if (op.kind == ForwardOp::Kind::kSgdUpdate) {
    const u64 elems = static_cast<u64>(op.in_c) * op.in_h * op.in_w;
    const u64 span = pad_region(elems);
    u64 weight_phys = 0, grad_phys = 0;
    if (!translate(s, op.weight_addr, span, weight_phys) ||
        !translate(s, op.input_addr, span, grad_phys))
      return DeviceStatus::kBadOperand;
    Bytes weights(span);
    if (!s.mpu.read(weight_phys, weights, s.vn.weight_vn())) {
      s.dead = true;
      return DeviceStatus::kIntegrityFailure;
    }
    Bytes grads(span);
    for (u64 off = 0; off < span; off += MemoryProtectionUnit::kChunkBytes) {
      const u64 chunk_vn = s.vn.feature_read_vn(op.input_addr + off).value_or(0);
      if (!s.mpu.read(grad_phys + off,
                      MutBytesView(grads.data() + off,
                                   MemoryProtectionUnit::kChunkBytes),
                      chunk_vn)) {
        s.dead = true;
        return DeviceStatus::kIntegrityFailure;
      }
    }
    std::vector<i8> w(weights.begin(), weights.end());
    const std::vector<i8> g(grads.begin(), grads.end());
    functional::sgd_update(w, g, op.requant_shift, op.bits);
    Bytes updated(reinterpret_cast<const u8*>(w.data()),
                  reinterpret_cast<const u8*>(w.data()) + w.size());
    s.vn.on_set_weight();
    s.mpu.write(weight_phys, updated, s.vn.weight_vn());
    s.chain.absorb(Opcode::kForward, op.serialize());
    return DeviceStatus::kOk;
  }

  // Read the input with the host-supplied read counter; a missing or wrong
  // value decrypts to garbage but never leaks (Section II-D.2).
  const u64 input_vn = s.vn.feature_read_vn(op.input_addr).value_or(0);
  Tensor input(op.in_c, op.in_h, op.in_w, op.bits);
  {
    Bytes buffer(pad_region(input.size()));
    u64 phys = 0;
    if (!translate(s, op.input_addr, buffer.size(), phys))
      return DeviceStatus::kBadOperand;
    if (!s.mpu.read(phys, buffer, input_vn)) {
      s.dead = true;
      return DeviceStatus::kIntegrityFailure;
    }
    std::copy(buffer.begin(), buffer.begin() + static_cast<long>(input.size()),
              reinterpret_cast<u8*>(input.data().data()));
  }

  // Reads a weight blob of `size` bytes through the MPU into `dst`.
  enum class ReadResult : u8 { kOk, kBadOperand, kIntegrity };
  auto read_weights = [&](u64 addr, std::size_t size, i8* dst) {
    Bytes buffer(pad_region(size));
    u64 phys = 0;
    if (!translate(s, addr, buffer.size(), phys)) return ReadResult::kBadOperand;
    if (!s.mpu.read(phys, buffer, s.vn.weight_vn())) return ReadResult::kIntegrity;
    std::copy(buffer.begin(), buffer.begin() + static_cast<long>(size),
              reinterpret_cast<u8*>(dst));
    return ReadResult::kOk;
  };
  // Reads a second feature operand with its host-supplied read counter.
  auto read_feature2 = [&](u64 addr, std::size_t size, i8* dst) {
    Bytes buffer(pad_region(size));
    u64 phys = 0;
    if (!translate(s, addr, buffer.size(), phys)) return ReadResult::kBadOperand;
    const u64 vn2 = s.vn.feature_read_vn(addr).value_or(0);
    if (!s.mpu.read(phys, buffer, vn2)) return ReadResult::kIntegrity;
    std::copy(buffer.begin(), buffer.begin() + static_cast<long>(size),
              reinterpret_cast<u8*>(dst));
    return ReadResult::kOk;
  };
  auto fail = [&](ReadResult r) {
    if (r == ReadResult::kIntegrity) {
      s.dead = true;
      return DeviceStatus::kIntegrityFailure;
    }
    return DeviceStatus::kBadOperand;
  };

  Tensor result;
  std::vector<i8> fc_result;
  bool is_fc = false;

  // Operand combinations the base accelerator cannot execute (kernel larger
  // than the tensor, mismatched gradient shapes, ...) are rejected as
  // kBadOperand: the functional ops throw std::invalid_argument, which a
  // hardware implementation maps to an error response. Nothing is written.
  try {
  switch (op.kind) {
    case ForwardOp::Kind::kConv: {
      if (op.out_c <= 0 || op.kernel <= 0) return DeviceStatus::kBadOperand;
      ConvWeights weights(op.out_c, op.in_c, op.kernel, op.bits);
      if (auto r = read_weights(op.weight_addr, weights.data.size(),
                                weights.data.data());
          r != ReadResult::kOk)
        return fail(r);
      result = functional::conv2d_gemm(input, weights, op.stride, op.pad,
                                       op.requant_shift);
      break;
    }
    case ForwardOp::Kind::kFc: {
      if (op.out_c <= 0) return DeviceStatus::kBadOperand;
      const int in_features = op.in_c * op.in_h * op.in_w;
      FcWeights weights(op.out_c, in_features, op.bits);
      if (auto r = read_weights(op.weight_addr, weights.data.size(),
                                weights.data.data());
          r != ReadResult::kOk)
        return fail(r);
      std::vector<i8> flat(input.data().begin(), input.data().end());
      fc_result = functional::fully_connected(flat, weights, op.requant_shift, op.bits);
      is_fc = true;
      break;
    }
    case ForwardOp::Kind::kRelu:
      result = input;
      functional::relu(result);
      break;
    case ForwardOp::Kind::kMaxPool:
      if (op.kernel <= 0 || op.stride <= 0) return DeviceStatus::kBadOperand;
      result = functional::maxpool2d(input, op.kernel, op.stride);
      break;
    case ForwardOp::Kind::kGlobalAvgPool:
      result = functional::global_avgpool(input);
      break;
    case ForwardOp::Kind::kDepthwiseConv: {
      if (op.kernel <= 0) return DeviceStatus::kBadOperand;
      ConvWeights weights(op.in_c, 1, op.kernel, op.bits);
      if (auto r = read_weights(op.weight_addr, weights.data.size(),
                                weights.data.data());
          r != ReadResult::kOk)
        return fail(r);
      result = functional::depthwise_conv2d(input, weights, op.stride, op.pad,
                                            op.requant_shift);
      break;
    }
    case ForwardOp::Kind::kAdd: {
      // Second operand: same geometry, host-supplied read counter.
      Tensor second(op.in_c, op.in_h, op.in_w, op.bits);
      if (auto r = read_feature2(op.input2_addr, second.size(),
                                 second.data().data());
          r != ReadResult::kOk)
        return fail(r);
      result = functional::tensor_add(input, second);
      break;
    }
    case ForwardOp::Kind::kFcDx: {
      // input = dY (out_features vector), aux = forward input shape.
      if (op.aux_c <= 0 || op.aux_h <= 0 || op.aux_w <= 0)
        return DeviceStatus::kBadOperand;
      const int in_features = op.aux_c * op.aux_h * op.aux_w;
      const int out_features = op.in_c * op.in_h * op.in_w;
      FcWeights weights(out_features, in_features, op.bits);
      if (auto r = read_weights(op.weight_addr, weights.data.size(),
                                weights.data.data());
          r != ReadResult::kOk)
        return fail(r);
      const std::vector<i8> d_out(input.data().begin(), input.data().end());
      const std::vector<i8> d_in = functional::fc_backward_input(
          d_out, weights, op.requant_shift, op.bits);
      result = Tensor(op.aux_c, op.aux_h, op.aux_w, op.bits);
      std::copy(d_in.begin(), d_in.end(), result.data().begin());
      break;
    }
    case ForwardOp::Kind::kFcDw: {
      // input = dY, input2 = forward input X (aux shape).
      if (op.aux_c <= 0 || op.aux_h <= 0 || op.aux_w <= 0)
        return DeviceStatus::kBadOperand;
      Tensor x(op.aux_c, op.aux_h, op.aux_w, op.bits);
      if (auto r = read_feature2(op.input2_addr, x.size(), x.data().data());
          r != ReadResult::kOk)
        return fail(r);
      const std::vector<i8> d_out(input.data().begin(), input.data().end());
      const std::vector<i8> flat_x(x.data().begin(), x.data().end());
      const FcWeights grads = functional::fc_backward_weights(
          d_out, flat_x, op.requant_shift, op.bits);
      result = Tensor(1, 1, static_cast<int>(grads.data.size()), op.bits);
      std::copy(grads.data.begin(), grads.data.end(), result.data().begin());
      break;
    }
    case ForwardOp::Kind::kConvDx: {
      // input = dY (forward output shape), aux = forward input shape.
      if (op.aux_c <= 0 || op.aux_h <= 0 || op.aux_w <= 0 || op.kernel <= 0)
        return DeviceStatus::kBadOperand;
      ConvWeights weights(op.in_c, op.aux_c, op.kernel, op.bits);
      if (auto r = read_weights(op.weight_addr, weights.data.size(),
                                weights.data.data());
          r != ReadResult::kOk)
        return fail(r);
      result = functional::conv2d_backward_input(input, weights, op.aux_h,
                                                 op.aux_w, op.stride, op.pad,
                                                 op.requant_shift);
      break;
    }
    case ForwardOp::Kind::kConvDw: {
      // input = dY, input2 = forward input X (aux shape).
      if (op.aux_c <= 0 || op.aux_h <= 0 || op.aux_w <= 0 || op.kernel <= 0)
        return DeviceStatus::kBadOperand;
      Tensor x(op.aux_c, op.aux_h, op.aux_w, op.bits);
      if (auto r = read_feature2(op.input2_addr, x.size(), x.data().data());
          r != ReadResult::kOk)
        return fail(r);
      const ConvWeights grads = functional::conv2d_backward_weights(
          input, x, op.kernel, op.stride, op.pad, op.requant_shift);
      result = Tensor(1, 1, static_cast<int>(grads.data.size()), op.bits);
      std::copy(grads.data.begin(), grads.data.end(), result.data().begin());
      break;
    }
    case ForwardOp::Kind::kReluDx:
    case ForwardOp::Kind::kMaxPoolDx: {
      // input = dY; input2 = the forward input (aux shape).
      if (op.aux_c <= 0 || op.aux_h <= 0 || op.aux_w <= 0)
        return DeviceStatus::kBadOperand;
      Tensor x(op.aux_c, op.aux_h, op.aux_w, op.bits);
      if (auto r = read_feature2(op.input2_addr, x.size(), x.data().data());
          r != ReadResult::kOk)
        return fail(r);
      result = op.kind == ForwardOp::Kind::kReluDx
                   ? functional::relu_backward(input, x)
                   : functional::maxpool_backward(input, x, op.kernel, op.stride);
      break;
    }
    case ForwardOp::Kind::kSgdUpdate:
      return DeviceStatus::kBadOperand;  // handled above; unreachable
  }
  } catch (const std::invalid_argument&) {
    return DeviceStatus::kBadOperand;
  } catch (const std::out_of_range&) {
    return DeviceStatus::kBadOperand;
  }

  // Write the output with the on-chip feature-write VN, then advance CTR_F,W.
  const u64 out_vn = s.vn.feature_write_vn();
  const std::size_t out_size = is_fc ? fc_result.size() : result.size();
  Bytes buffer(pad_region(out_size), 0);
  if (is_fc) {
    std::copy(fc_result.begin(), fc_result.end(),
              reinterpret_cast<i8*>(buffer.data()));
  } else {
    std::copy(result.data().begin(), result.data().end(),
              reinterpret_cast<i8*>(buffer.data()));
  }
  u64 out_phys = 0;
  if (!translate(s, op.output_addr, buffer.size(), out_phys))
    return DeviceStatus::kBadOperand;
  s.invalidate_hash_cache_on_write(op.output_addr, buffer.size());
  s.mpu.write(out_phys, buffer, out_vn);
  s.vn.on_forward_write();

  s.chain.absorb(Opcode::kForward, op.serialize());
  return DeviceStatus::kOk;
}

DeviceStatus GuardNnDevice::export_output(SessionId sid, u64 addr, u64 bytes,
                                          crypto::SealedRecord& out) {
  std::lock_guard<std::mutex> lock(mu_);
  Session* s = find_session(sid);
  if (!s) return DeviceStatus::kNoSession;
  if (s->dead) return DeviceStatus::kIntegrityFailure;
  // The partition-size cap also keeps pad_region() below: a near-2^64 byte
  // count would wrap the rounding arithmetic and bypass translate().
  if (bytes == 0 || bytes > kSessionDramBytes) return DeviceStatus::kBadOperand;
  latency_.add_command();

  u64 phys = 0;
  if (!translate(*s, addr, pad_region(bytes), phys))
    return DeviceStatus::kBadOperand;
  const u64 vn = s->vn.feature_read_vn(addr).value_or(0);
  Bytes plaintext(pad_region(bytes));
  if (!s->mpu.read(phys, plaintext, vn)) {
    s->dead = true;
    return DeviceStatus::kIntegrityFailure;
  }
  plaintext.resize(bytes);
  s->output_hash = crypto::Sha256::hash(plaintext);
  out = s->to_user.seal(plaintext);

  u8 operand[16];
  store_be64(operand, addr);
  store_be64(operand + 8, bytes);
  s->chain.absorb(Opcode::kExportOutput, BytesView(operand, 16));
  return DeviceStatus::kOk;
}

DeviceStatus GuardNnDevice::sign_output(SessionId sid, SignOutputResponse& out) {
  std::lock_guard<std::mutex> lock(mu_);
  Session* s = find_session(sid);
  if (!s) return DeviceStatus::kNoSession;
  if (s->dead) return DeviceStatus::kIntegrityFailure;
  latency_.add_sign();

  out.input_hash = s->input_hash;
  out.weight_hash = s->weight_hash;
  out.output_hash = s->output_hash;
  out.instruction_hash = s->chain.value();
  out.signature =
      crypto::ecdsa_sign_digest(identity_.private_key, out.report_digest());
  return DeviceStatus::kOk;
}

crypto::AesBlock GuardNnDevice::random_nonce() {
  crypto::AesBlock nonce{};
  const Bytes raw = drbg_.generate(nonce.size());
  std::copy(raw.begin(), raw.end(), nonce.begin());
  return nonce;
}

DeviceStatus GuardNnDevice::seal_model(SessionId sid, u64 weight_addr,
                                       u64 weight_bytes, BytesView descriptor,
                                       store::SealedBlob& out) {
  std::lock_guard<std::mutex> lock(mu_);
  Session* s = find_session(sid);
  if (!s) return DeviceStatus::kNoSession;
  if (s->dead) return DeviceStatus::kIntegrityFailure;
  if (weight_bytes == 0 || weight_bytes > kSessionDramBytes)
    return DeviceStatus::kBadOperand;

  u64 phys = 0;
  if (!translate(*s, weight_addr, pad_region(weight_bytes), phys))
    return DeviceStatus::kBadOperand;

  // Fused MPU→blob pipeline: lay the serialized package out directly inside
  // the SealedBlobWriter's buffer, stream the weight region out of the
  // session's partition through the MPU straight into the weight area
  // (chunk MACs verified kCmacLanes at a time, one walk, no intermediate
  // plaintext copy), then encrypt the buffer in place. The plaintext exists
  // exactly once, inside the trusted boundary, in the buffer that becomes
  // the wire ciphertext.
  const u64 weight_vn = s->vn.weight_vn();
  store::SealedBlobWriter writer(
      store_root_, store_binding_, random_nonce(),
      store::serialized_package_bytes(descriptor.size(), weight_bytes),
      std::move(out.ciphertext));  // recycle the out-param's old buffer
  const MutBytesView weights =
      store::layout_package(writer.payload(), descriptor, weight_bytes,
                            weight_vn);
  MpuExportStream exporter(s->mpu, phys, weight_bytes, weight_vn);
  if (!exporter.next(weights) || !exporter.finish()) {
    s->dead = true;        // abandoned writer wipes the partial plaintext
    out = store::SealedBlob{};  // never leave a half-initialized out-param
    return DeviceStatus::kIntegrityFailure;
  }

  // Content id: one SHA-256 over (descriptor || weights), or the session
  // cache when this exact region state was hashed before (checkpoint loops,
  // replica fan-out) — the pass the ROADMAP's seal-throughput item called
  // out as the residual non-AES cost.
  SealHashCache& cache = s->hash_cache;
  if (!cache.valid || cache.addr != weight_addr ||
      cache.bytes != weight_bytes || cache.vn != weight_vn ||
      cache.descriptor.size() != descriptor.size() ||
      !std::equal(descriptor.begin(), descriptor.end(),
                  cache.descriptor.begin())) {
    cache.content_id =
        store::package_content_id(descriptor, BytesView(weights));
    cache.addr = weight_addr;
    cache.bytes = weight_bytes;
    cache.vn = weight_vn;
    cache.descriptor.assign(descriptor.begin(), descriptor.end());
    cache.valid = true;
  }
  out = writer.finish(cache.content_id);
  latency_.add_import(weight_bytes);  // bounded by the same AES path

  u8 operand[16 + sizeof(out.header.content_id)];
  store_be64(operand, weight_addr);
  store_be64(operand + 8, weight_bytes);
  std::copy(out.header.content_id.begin(), out.header.content_id.end(),
            operand + 16);
  s->chain.absorb(Opcode::kSealModel, BytesView(operand, sizeof(operand)));
  return DeviceStatus::kOk;
}

DeviceStatus GuardNnDevice::unseal_model(SessionId sid,
                                         const store::SealedBlob& blob,
                                         u64 weight_addr, Bytes& descriptor_out,
                                         u64* checkpoint_vn_out) {
  std::lock_guard<std::mutex> lock(mu_);
  Session* s = find_session(sid);
  if (!s) return DeviceStatus::kNoSession;
  if (s->dead) return DeviceStatus::kIntegrityFailure;
  descriptor_out.clear();

  // All authenticity failures — tamper, truncation, wrong device, version
  // downgrade — collapse to kBadRecord, and nothing (VN counters included)
  // changes. A malicious host learns only "the blob did not verify".
  //
  // Fused pipeline: the reader verifies everything up front (chain MAC +
  // every chunk MAC, kCmacLanes CBC chains at a time), decrypts into one
  // payload buffer, which is then parsed *in place* and streamed into the
  // session's partition — no package copy, no separate padded buffer.
  store::SealedBlobReader reader(store_root_, store_binding_, blob);
  if (reader.status() != store::SealStatus::kOk)
    return DeviceStatus::kBadRecord;
  Bytes& payload = unseal_scratch_;  // wiped below on every path
  payload.resize(reader.plaintext_bytes());
  reader.read_all(payload);
  auto wipe = [&payload] { secure_zero(payload.data(), payload.size()); };

  const std::optional<store::ModelPackageView> view =
      store::ModelPackageView::parse(payload);
  if (!view) {
    wipe();
    return DeviceStatus::kBadRecord;
  }

  // Defense in depth: the authenticated content id must match the model
  // bytes actually inside the package, and the attestation weight hash must
  // cover the loaded plaintext. Both are SHA-256 passes over megabytes of
  // weights; the verified-blob memo skips them when this exact blob — same
  // chain MAC, nonce, content id and size, all MAC-verified again just now —
  // already passed them on an earlier unseal.
  crypto::Sha256Digest weight_hash;
  std::size_t memo_index = verified_blobs_.size();
  for (std::size_t i = 0; i < verified_blobs_.size(); ++i) {
    const VerifiedBlobMemo& m = verified_blobs_[i];
    if (m.chain_mac == blob.chain_mac && m.nonce == blob.header.nonce &&
        m.content_id == blob.header.content_id &&
        m.plaintext_bytes == blob.header.plaintext_bytes) {
      memo_index = i;
      break;
    }
  }
  if (memo_index < verified_blobs_.size()) {
    weight_hash = verified_blobs_[memo_index].weight_hash;
    // LRU touch.
    std::rotate(verified_blobs_.begin() + static_cast<long>(memo_index),
                verified_blobs_.begin() + static_cast<long>(memo_index) + 1,
                verified_blobs_.end());
  } else {
    if (view->content_id() != blob.header.content_id) {
      wipe();
      return DeviceStatus::kBadRecord;
    }
    weight_hash = crypto::Sha256::hash(view->weights);
    if (verified_blobs_.size() >= kMaxVerifiedBlobMemos)
      verified_blobs_.erase(verified_blobs_.begin());
    verified_blobs_.push_back({blob.chain_mac, blob.header.nonce,
                               blob.header.content_id,
                               blob.header.plaintext_bytes, weight_hash});
  }

  u64 phys = 0;
  if (!translate(*s, weight_addr, pad_region(view->weights.size()), phys)) {
    wipe();
    return DeviceStatus::kBadOperand;
  }

  // From here on this is a SetWeight whose source is the store instead of
  // the user channel: advance CTR_W, stream through the MPU (the import
  // stream owns the chunk zero-padding), record the weight hash so
  // SignOutput attests the provenance of the loaded model.
  s->vn.on_set_weight();
  s->weight_hash = weight_hash;
  MpuImportStream importer(s->mpu, phys, view->weights.size(),
                           s->vn.weight_vn());
  importer.next(view->weights);
  importer.finish();
  latency_.add_import(blob.header.plaintext_bytes);

  // The freshly loaded region's content id is the blob's — prime the seal
  // cache so a checkpoint taken right after a restore skips its hash pass.
  s->hash_cache.valid = true;
  s->hash_cache.addr = weight_addr;
  s->hash_cache.bytes = view->weights.size();
  s->hash_cache.vn = s->vn.weight_vn();
  s->hash_cache.descriptor.assign(view->descriptor.begin(),
                                  view->descriptor.end());
  s->hash_cache.content_id = blob.header.content_id;

  descriptor_out.assign(view->descriptor.begin(), view->descriptor.end());
  if (checkpoint_vn_out) *checkpoint_vn_out = view->weight_vn;
  wipe();

  u8 operand[8 + sizeof(blob.header.content_id)];
  store_be64(operand, weight_addr);
  std::copy(blob.header.content_id.begin(), blob.header.content_id.end(),
            operand + 8);
  s->chain.absorb(Opcode::kUnsealModel, BytesView(operand, sizeof(operand)));
  return DeviceStatus::kOk;
}

DeviceStatus GuardNnDevice::provision_begin(ProvisionRequest& out) {
  std::lock_guard<std::mutex> lock(mu_);
  latency_.add_command();
  pending_provision_ = crypto::ecdh_generate_key(drbg_);
  out.ephemeral = pending_provision_->public_key;
  out.binding_id = store_binding_;
  out.signature = crypto::ecdsa_sign(
      identity_.private_key,
      provision_request_transcript(out.ephemeral, out.binding_id));
  out.certificate = certificate_;
  return DeviceStatus::kOk;
}

DeviceStatus GuardNnDevice::export_for_device(const store::SealedBlob& blob,
                                              const ProvisionRequest& target,
                                              store::SealedBlob& wrapped,
                                              ProvisionGrant& grant) {
  std::lock_guard<std::mutex> lock(mu_);
  latency_.add_key_exchange();

  // Attest the target before any key material is derived: manufacturer
  // certificate, binding/identity consistency, and possession of the
  // ephemeral's signing key. A forged or replayed-for-another-binding
  // request fails closed.
  if (!verify_peer_identity(target.certificate, &target.binding_id, ca_public_))
    return DeviceStatus::kBadRecord;
  if (!crypto::ecdsa_verify(
          target.certificate.device_public,
          provision_request_transcript(target.ephemeral, target.binding_id),
          target.signature))
    return DeviceStatus::kBadRecord;

  // The blob must be ours to re-wrap.
  store::SealedBlobReader reader(store_root_, store_binding_, blob);
  if (reader.status() != store::SealStatus::kOk)
    return DeviceStatus::kBadRecord;

  DeviceStatus status = DeviceStatus::kOk;
  try {
    const crypto::EcdhKeyPair ephemeral = crypto::ecdh_generate_key(drbg_);
    const crypto::U256 shared =
        crypto::ecdh_shared_secret(ephemeral.private_key, target.ephemeral);
    crypto::AesKey transport = provision_transport_key(
        shared, ephemeral.public_key, target.ephemeral);

    // The wrapped blob is addressed to the *target's* binding: only the
    // device that proves that identity derives the same transport key, and
    // the binding check gives a third device a clean wrong-device failure.
    // The content id travels unchanged — replicas of one model share it.
    // Fused re-wrap: the verified blob decrypts chunk-wise straight into the
    // transport writer's buffer, which re-encrypts it in place — the
    // plaintext never exists outside that one buffer.
    store::SealedBlobWriter writer(transport, target.binding_id,
                                   random_nonce(), reader.plaintext_bytes());
    secure_zero(transport.data(), transport.size());
    reader.read_all(writer.payload());
    wrapped = writer.finish(blob.header.content_id);

    grant.ephemeral = ephemeral.public_key;
    grant.signature = crypto::ecdsa_sign(
        identity_.private_key,
        provision_grant_transcript(ephemeral.public_key, target.ephemeral));
    grant.certificate = certificate_;
  } catch (const std::invalid_argument&) {
    status = DeviceStatus::kBadRecord;  // degenerate peer share
  }
  return status;
}

DeviceStatus GuardNnDevice::provision_finish(const store::SealedBlob& wrapped,
                                             const ProvisionGrant& grant,
                                             store::SealedBlob& rebound) {
  std::lock_guard<std::mutex> lock(mu_);
  latency_.add_key_exchange();
  if (!pending_provision_) return DeviceStatus::kBadOperand;

  DeviceStatus status = DeviceStatus::kOk;
  // Attest the source; the grant signature must cover *our* pending share,
  // so a grant minted for a different handshake never verifies.
  if (!verify_peer_identity(grant.certificate, nullptr, ca_public_) ||
      !crypto::ecdsa_verify(grant.certificate.device_public,
                            provision_grant_transcript(
                                grant.ephemeral, pending_provision_->public_key),
                            grant.signature)) {
    status = DeviceStatus::kBadRecord;
  } else {
    try {
      const crypto::U256 shared = crypto::ecdh_shared_secret(
          pending_provision_->private_key, grant.ephemeral);
      crypto::AesKey transport = provision_transport_key(
          shared, grant.ephemeral, pending_provision_->public_key);
      store::SealedBlobReader unwrapper(transport, store_binding_, wrapped);
      secure_zero(transport.data(), transport.size());
      if (unwrapper.status() == store::SealStatus::kOk) {
        // Fused unwrap→re-seal, same shape as export_for_device.
        store::SealedBlobWriter writer(store_root_, store_binding_,
                                       random_nonce(),
                                       unwrapper.plaintext_bytes());
        unwrapper.read_all(writer.payload());
        rebound = writer.finish(wrapped.header.content_id);
      } else {
        status = DeviceStatus::kBadRecord;
      }
    } catch (const std::invalid_argument&) {
      status = DeviceStatus::kBadRecord;  // degenerate peer share
    }
  }

  // One-shot handshake: consume (and wipe) the pending share on *every*
  // outcome, so a failed attempt cannot be retried against the same
  // ephemeral.
  secure_zero(pending_provision_->private_key.limb.data(),
              sizeof(pending_provision_->private_key.limb));
  pending_provision_.reset();
  return status;
}

DeviceStatus GuardNnDevice::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  latency_.add_command();
  for (Slot& slot : slots_) {
    if (slot.session && slot.active) slot.session->zeroize();
    slot.active = false;
  }
  if (pending_provision_) {
    secure_zero(pending_provision_->private_key.limb.data(),
                sizeof(pending_provision_->private_key.limb));
    pending_provision_.reset();
  }
  current_session_.store(kInvalidSession, std::memory_order_relaxed);
  verified_blobs_.clear();
  generation_ += 1;
  return DeviceStatus::kOk;
}

u64 GuardNnDevice::device_generation() const {
  std::lock_guard<std::mutex> lock(mu_);
  return generation_;
}

bool GuardNnDevice::session_active(SessionId sid) const {
  std::lock_guard<std::mutex> lock(mu_);
  return find_session(sid) != nullptr;
}

std::size_t GuardNnDevice::session_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const Slot& slot : slots_)
    if (slot.active) ++n;
  return n;
}

bool GuardNnDevice::integrity_enabled() const {
  std::lock_guard<std::mutex> lock(mu_);
  const Session* s = find_session(current_session());
  return s && s->mpu.integrity_enabled();
}

const memprot::VnGenerator& GuardNnDevice::vn_generator(SessionId sid) const {
  static const memprot::VnGenerator empty;
  std::lock_guard<std::mutex> lock(mu_);
  const Session* s = find_session(sid);
  return s ? s->vn : empty;
}

const std::vector<std::pair<u64, bool>>& GuardNnDevice::access_trace(
    SessionId sid) const {
  static const std::vector<std::pair<u64, bool>> empty;
  std::lock_guard<std::mutex> lock(mu_);
  const Session* s = find_session(sid);
  return s ? s->mpu.access_trace() : empty;
}

bool GuardNnDevice::slot_zeroized(std::size_t slot) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (slot >= kMaxSessions) return true;
  const Slot& entry = slots_[slot];
  if (!entry.session) return true;
  return entry.session->zeroized();
}

bool GuardNnDevice::slot_keys_live(std::size_t slot) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (slot >= kMaxSessions) return false;
  const Slot& entry = slots_[slot];
  return entry.active && entry.session && !entry.session->zeroized();
}

}  // namespace guardnn::accel
