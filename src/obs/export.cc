#include "obs/export.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace guardnn::obs {
namespace {

void append_escaped(std::string& out, std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

// JSON has no Infinity/NaN literals; histograms never export them (min/max
// are zeroed when empty) but gauges could be fed anything.
void append_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "0";
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  out += buf;
}

void append_labels_json(std::string& out, const Labels& labels) {
  out += '{';
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ',';
    first = false;
    out += '"';
    append_escaped(out, key);
    out += "\":\"";
    append_escaped(out, value);
    out += '"';
  }
  out += '}';
}

void append_labels_prometheus(std::string& out, const Labels& labels,
                              const char* extra_key = nullptr,
                              const char* extra_value = nullptr) {
  if (labels.empty() && extra_key == nullptr) return;
  out += '{';
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ',';
    first = false;
    out += key;
    out += "=\"";
    append_escaped(out, value);
    out += '"';
  }
  if (extra_key != nullptr) {
    if (!first) out += ',';
    out += extra_key;
    out += "=\"";
    out += extra_value;
    out += '"';
  }
  out += '}';
}

}  // namespace

std::string to_json(const TelemetrySnapshot& snapshot, std::size_t max_spans) {
  std::string out;
  out.reserve(4096);
  out += "{\"schema\":\"guardnn-telemetry/1\",\"counters\":[";
  bool first = true;
  for (const auto& sample : snapshot.metrics) {
    if (sample.kind != MetricKind::kCounter) continue;
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    append_escaped(out, sample.name);
    out += "\",\"labels\":";
    append_labels_json(out, sample.labels);
    out += ",\"value\":";
    out += std::to_string(sample.counter);
    out += '}';
  }
  out += "],\"gauges\":[";
  first = true;
  for (const auto& sample : snapshot.metrics) {
    if (sample.kind != MetricKind::kGauge) continue;
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    append_escaped(out, sample.name);
    out += "\",\"labels\":";
    append_labels_json(out, sample.labels);
    out += ",\"value\":";
    append_number(out, sample.gauge);
    out += '}';
  }
  out += "],\"histograms\":[";
  first = true;
  for (const auto& sample : snapshot.metrics) {
    if (sample.kind != MetricKind::kHistogram) continue;
    if (!first) out += ',';
    first = false;
    const auto& hist = sample.hist;
    out += "{\"name\":\"";
    append_escaped(out, sample.name);
    out += "\",\"labels\":";
    append_labels_json(out, sample.labels);
    out += ",\"count\":";
    out += std::to_string(hist.count);
    out += ",\"sum\":";
    append_number(out, hist.sum);
    out += ",\"min\":";
    append_number(out, hist.min);
    out += ",\"max\":";
    append_number(out, hist.max);
    out += ",\"p50\":";
    append_number(out, hist.p50);
    out += ",\"p90\":";
    append_number(out, hist.p90);
    out += ",\"p99\":";
    append_number(out, hist.p99);
    out += ",\"p999\":";
    append_number(out, hist.p999);
    out += ",\"buckets\":[";
    bool first_bucket = true;
    for (const auto& [lower, count] : hist.buckets) {
      if (!first_bucket) out += ',';
      first_bucket = false;
      out += '[';
      append_number(out, lower);
      out += ',';
      out += std::to_string(count);
      out += ']';
    }
    out += "]}";
  }
  out += "],\"events\":[";
  first = true;
  for (const auto& event : snapshot.events) {
    if (!first) out += ',';
    first = false;
    out += "{\"t_ms\":";
    append_number(out, event.t_ms);
    out += ",\"kind\":\"";
    append_escaped(out, event.kind);
    out += "\",\"detail\":\"";
    append_escaped(out, event.detail);
    out += "\"}";
  }
  out += "],\"trace\":{\"recorded\":";
  out += std::to_string(snapshot.spans_recorded);
  out += ",\"spans\":[";
  const std::size_t span_count = std::min(max_spans, snapshot.spans.size());
  const std::size_t span_first = snapshot.spans.size() - span_count;
  for (std::size_t i = span_first; i < snapshot.spans.size(); ++i) {
    const auto& span = snapshot.spans[i];
    if (i != span_first) out += ',';
    out += "{\"trace\":";
    out += std::to_string(span.trace_id);
    out += ",\"t_ns\":";
    out += std::to_string(span.t_ns);
    out += ",\"kind\":\"";
    out += span_kind_name(span.kind);
    out += "\",\"tenant\":";
    out += std::to_string(span.tenant);
    out += ",\"device\":";
    out += span.device == kSpanNoDevice ? std::string("-1")
                                        : std::to_string(span.device);
    out += ",\"code\":";
    out += std::to_string(span.code);
    out += '}';
  }
  out += "]}}";
  return out;
}

std::string to_prometheus(const TelemetrySnapshot& snapshot) {
  std::string out;
  out.reserve(4096);
  std::string_view last_name;
  for (const auto& sample : snapshot.metrics) {
    if (sample.name != last_name) {
      last_name = sample.name;
      out += "# TYPE ";
      out += sample.name;
      switch (sample.kind) {
        case MetricKind::kCounter:
          out += " counter\n";
          break;
        case MetricKind::kGauge:
          out += " gauge\n";
          break;
        case MetricKind::kHistogram:
          out += " summary\n";
          break;
      }
    }
    switch (sample.kind) {
      case MetricKind::kCounter:
        out += sample.name;
        append_labels_prometheus(out, sample.labels);
        out += ' ';
        out += std::to_string(sample.counter);
        out += '\n';
        break;
      case MetricKind::kGauge:
        out += sample.name;
        append_labels_prometheus(out, sample.labels);
        out += ' ';
        append_number(out, sample.gauge);
        out += '\n';
        break;
      case MetricKind::kHistogram: {
        const auto& hist = sample.hist;
        const std::pair<const char*, double> quantiles[] = {
            {"0.5", hist.p50}, {"0.9", hist.p90}, {"0.99", hist.p99},
            {"0.999", hist.p999}};
        for (const auto& [q, v] : quantiles) {
          out += sample.name;
          append_labels_prometheus(out, sample.labels, "quantile", q);
          out += ' ';
          append_number(out, v);
          out += '\n';
        }
        out += sample.name;
        out += "_count";
        append_labels_prometheus(out, sample.labels);
        out += ' ';
        out += std::to_string(hist.count);
        out += '\n';
        out += sample.name;
        out += "_sum";
        append_labels_prometheus(out, sample.labels);
        out += ' ';
        append_number(out, hist.sum);
        out += '\n';
        break;
      }
    }
  }
  return out;
}

const MetricSample* find_metric(const TelemetrySnapshot& snapshot,
                                std::string_view name, Labels labels) {
  std::sort(labels.begin(), labels.end());
  for (const auto& sample : snapshot.metrics) {
    if (sample.name == name && sample.labels == labels) return &sample;
  }
  return nullptr;
}

}  // namespace guardnn::obs
