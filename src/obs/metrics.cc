#include "obs/metrics.h"

#include <algorithm>
#include <tuple>

namespace guardnn::obs {

double Histogram::percentile_from(const std::vector<u64>& counts, u64 total,
                                  double p) {
  if (total == 0) return 0.0;
  const double clamped = std::min(std::max(p, 0.0), 1.0);
  u64 rank = static_cast<u64>(std::ceil(clamped * static_cast<double>(total)));
  if (rank == 0) rank = 1;
  u64 cumulative = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    cumulative += counts[i];
    if (cumulative >= rank) {
      const int index = static_cast<int>(i);
      const double lo = bucket_lower(index);
      const double hi = bucket_upper(index);
      if (index == 0) return hi / 2.0;                 // underflow: [0, 2^min)
      if (index == kBucketCount - 1) return lo;        // overflow: unbounded
      return (lo + hi) / 2.0;
    }
  }
  return bucket_lower(kBucketCount - 1);  // unreachable: cumulative == total
}

double Histogram::percentile(double p) const {
  std::vector<u64> counts(static_cast<std::size_t>(kBucketCount), 0);
  u64 total = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  return percentile_from(counts, total, p);
}

HistogramSnapshot Histogram::snapshot() const {
  // One coherent read of the bucket array, then all derived values (count,
  // percentiles, non-empty bucket list) come from that single read.
  std::vector<u64> counts(static_cast<std::size_t>(kBucketCount), 0);
  u64 total = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }

  HistogramSnapshot snap;
  snap.count = total;
  snap.sum = sum_.load(std::memory_order_relaxed);
  const double lo = min_.load(std::memory_order_relaxed);
  const double hi = max_.load(std::memory_order_relaxed);
  snap.min = std::isfinite(lo) ? lo : 0.0;
  snap.max = std::isfinite(hi) ? hi : 0.0;
  snap.p50 = percentile_from(counts, total, 0.50);
  snap.p90 = percentile_from(counts, total, 0.90);
  snap.p99 = percentile_from(counts, total, 0.99);
  snap.p999 = percentile_from(counts, total, 0.999);
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] != 0)
      snap.buckets.emplace_back(bucket_lower(static_cast<int>(i)), counts[i]);
  }
  return snap;
}

Labels MetricRegistry::canonical(Labels labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

Counter& MetricRegistry::counter(const std::string& name, Labels labels) {
  const Key key{name, canonical(std::move(labels))};
  std::lock_guard lock(mu_);
  auto& slot = counters_[key];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricRegistry::gauge(const std::string& name, Labels labels) {
  const Key key{name, canonical(std::move(labels))};
  std::lock_guard lock(mu_);
  auto& slot = gauges_[key];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricRegistry::histogram(const std::string& name, Labels labels) {
  const Key key{name, canonical(std::move(labels))};
  std::lock_guard lock(mu_);
  auto& slot = histograms_[key];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

std::vector<MetricSample> MetricRegistry::snapshot() const {
  std::lock_guard lock(mu_);
  std::vector<MetricSample> out;
  out.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [key, value] : counters_) {
    MetricSample sample;
    sample.name = key.first;
    sample.labels = key.second;
    sample.kind = MetricKind::kCounter;
    sample.counter = value->value();
    out.push_back(std::move(sample));
  }
  for (const auto& [key, value] : gauges_) {
    MetricSample sample;
    sample.name = key.first;
    sample.labels = key.second;
    sample.kind = MetricKind::kGauge;
    sample.gauge = value->value();
    out.push_back(std::move(sample));
  }
  for (const auto& [key, value] : histograms_) {
    MetricSample sample;
    sample.name = key.first;
    sample.labels = key.second;
    sample.kind = MetricKind::kHistogram;
    sample.hist = value->snapshot();
    out.push_back(std::move(sample));
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return std::tie(a.name, a.labels) < std::tie(b.name, b.labels);
  });
  return out;
}

MetricRegistry& MetricRegistry::global() {
  static MetricRegistry registry;
  return registry;
}

EventLog::EventLog(std::size_t capacity)
    : capacity_(capacity ? capacity : 1), epoch_(Clock::now()) {}

void EventLog::record(std::string kind, std::string detail) {
  EventRecord event;
  event.t_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - epoch_).count();
  event.kind = std::move(kind);
  event.detail = std::move(detail);
  std::lock_guard lock(mu_);
  events_.push_back(std::move(event));
  if (events_.size() > capacity_) events_.pop_front();
  ++recorded_;
}

std::vector<EventRecord> EventLog::snapshot() const {
  std::lock_guard lock(mu_);
  return {events_.begin(), events_.end()};
}

u64 EventLog::recorded() const {
  std::lock_guard lock(mu_);
  return recorded_;
}

}  // namespace guardnn::obs
