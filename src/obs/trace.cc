#include "obs/trace.h"

#include <cstdlib>
#include <cstring>

namespace guardnn::obs {

const char* span_kind_name(SpanKind kind) {
  switch (kind) {
    case SpanKind::kSubmit:
      return "submit";
    case SpanKind::kAdmit:
      return "admit";
    case SpanKind::kPickup:
      return "pickup";
    case SpanKind::kUnseal:
      return "unseal";
    case SpanKind::kDevice:
      return "device";
    case SpanKind::kSeal:
      return "seal";
    case SpanKind::kResolve:
      return "resolve";
    case SpanKind::kMigrate:
      return "migrate";
  }
  return "?";
}

TraceCollector::TraceCollector(std::size_t capacity)
    : epoch_(Clock::now()), ring_(capacity ? capacity : 1) {}

bool TraceCollector::arm_from_env() {
  const char* env = std::getenv("GUARDNN_TRACE");
  if (env != nullptr) {
    const bool on = std::strcmp(env, "1") == 0 || std::strcmp(env, "on") == 0 ||
                    std::strcmp(env, "true") == 0;
    set_enabled(on);
  }
  return enabled();
}

u64 TraceCollector::begin_trace() {
  if (!enabled()) return 0;
  return next_trace_.fetch_add(1, std::memory_order_relaxed);
}

void TraceCollector::record(u64 trace_id, SpanKind kind, u64 tenant,
                            u32 device, u8 code) {
  if (trace_id == 0) return;
  if (!enabled()) return;
  SpanRecord span;
  span.trace_id = trace_id;
  span.t_ns = static_cast<u64>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           epoch_)
          .count());
  span.tenant = tenant;
  span.device = device;
  span.kind = kind;
  span.code = code;
  std::lock_guard lock(mu_);
  ring_[head_ % ring_.size()] = span;
  ++head_;
}

std::vector<SpanRecord> TraceCollector::snapshot() const {
  std::lock_guard lock(mu_);
  std::vector<SpanRecord> out;
  const std::size_t size = ring_.size();
  const std::size_t live = head_ < size ? static_cast<std::size_t>(head_) : size;
  out.reserve(live);
  const u64 first = head_ - live;
  for (u64 i = first; i < head_; ++i)
    out.push_back(ring_[i % size]);
  return out;
}

u64 TraceCollector::recorded() const {
  std::lock_guard lock(mu_);
  return head_;
}

}  // namespace guardnn::obs
