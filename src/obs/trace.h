// Lightweight request tracing for the serving pipeline.
//
// A trace id is minted at InferenceServer::submit_async and rides inside the
// queued Request through admission → shard queue → worker batch → device call
// → crypto seal/unseal → promise resolution. Each stage appends one fixed-
// size SpanRecord to a ring buffer; an external reader (telemetry export, the
// chaos bench's span-chain check) reconstructs per-request chains by trace
// id.
//
// Cost discipline, mirroring FaultInjector:
//   * disabled (the default): begin_trace() is ONE relaxed atomic load and
//     returns 0; record() on a zero trace id returns before touching any
//     atomic. No allocation, no lock, no timestamp.
//   * enabled: record() takes a short mutex to claim a ring slot (spans are
//     emitted at batch granularity on the worker path, so this is never the
//     per-byte hot path; the mutex keeps the ring TSan-clean).
//
// Arming: GUARDNN_TRACE=1 in the environment (read by arm_from_env(), which
// InferenceServer calls at construction), or set_enabled(true) at runtime.
// Requests minted while disabled carry trace id 0 and never record spans,
// even if tracing is enabled mid-flight — chains are complete or absent,
// never half-recorded from the middle.
//
// The ring holds the most recent `capacity` spans; wraparound drops oldest
// first. Because a request's submit span is the oldest span of its chain,
// any chain whose submit span is still in the ring is complete.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <mutex>
#include <vector>

#include "common/types.h"

namespace guardnn::obs {

/// Pipeline stage a span marks. The vocabulary is the serving request path;
/// `code` in the record disambiguates outcomes within a stage.
enum class SpanKind : u8 {
  kSubmit = 0,   ///< submit_async entry; code unused.
  kAdmit,        ///< admission decision; code = admission/outcome code.
  kPickup,       ///< worker popped the request from its shard queue.
  kUnseal,       ///< device consumed the sealed input; code = DeviceStatus.
  kDevice,       ///< device execution finished; code = DeviceStatus.
  kSeal,         ///< output sealed + signed; code = DeviceStatus.
  kResolve,      ///< promise resolved; code = RequestOutcome. Terminal.
  kMigrate,      ///< live-migration phase edge (control plane, not part of a
                 ///< request chain); code = migration phase. Audits that walk
                 ///< request chains key on kSubmit roots and ignore these.
};

const char* span_kind_name(SpanKind kind);

/// No device involved (pre-admission rejects). Matches no real device index.
inline constexpr u32 kSpanNoDevice = 0xffffffffu;

struct SpanRecord {
  u64 trace_id = 0;
  u64 t_ns = 0;  ///< Nanoseconds since the collector's construction.
  u64 tenant = 0;
  u32 device = kSpanNoDevice;
  SpanKind kind = SpanKind::kSubmit;
  u8 code = 0;
};

class TraceCollector {
 public:
  explicit TraceCollector(std::size_t capacity = 1 << 17);

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Arms from GUARDNN_TRACE ("1"/"on"/"true" → enabled). Returns enabled().
  bool arm_from_env();

  /// Mints a fresh nonzero trace id, or 0 when disabled (one relaxed load).
  u64 begin_trace();

  /// Appends a span. A zero trace id (minted while disabled) is a no-op
  /// before any atomic is touched.
  void record(u64 trace_id, SpanKind kind, u64 tenant, u32 device, u8 code);

  /// The ring contents, oldest → newest. At most capacity() spans.
  std::vector<SpanRecord> snapshot() const;

  /// Total spans ever recorded; exceeds capacity() once the ring has wrapped.
  u64 recorded() const;

  std::size_t capacity() const { return ring_.size(); }

 private:
  using Clock = std::chrono::steady_clock;

  std::atomic<bool> enabled_{false};
  std::atomic<u64> next_trace_{1};
  const Clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<SpanRecord> ring_;  ///< Slot i holds span number (head_ - ...).
  u64 head_ = 0;                  ///< Total spans recorded; next slot = head_ % size.
};

}  // namespace guardnn::obs
