// Process-wide metrics for the serving fleet: counters, gauges and
// log-bucketed latency histograms behind one labeled registry.
//
// The design target is the submit hot path of the InferenceServer, which
// takes exactly one shard mutex and a handful of relaxed atomics — telemetry
// must not add a lock to that. So:
//
//   * every metric handle returned by the registry is a stable reference to
//     an atomic cell; incrementing a Counter is ONE relaxed fetch_add, the
//     same discipline as FaultInjector's no-fault fast path;
//   * a Histogram::record is a relaxed fetch_add on one log bucket plus a
//     relaxed sum/min/max update — no lock, no allocation;
//   * the registry mutex is taken only when a metric is *created* or a
//     snapshot is taken (control plane / export path), never per increment.
//
// Snapshots are per-field torn-free: every atomic is loaded individually, so
// each counter value is a real value that existed at some instant (monotonic,
// never torn) — but the snapshot as a whole is not a cross-metric
// transaction, which is fine for an ops surface.
//
// Histograms are log-bucketed (32 sub-buckets per power of two → ≤ ~3.1%
// relative bucket width) with exact rank extraction: percentile(p) walks the
// bucket counts to the exact rank and returns the bucket midpoint, so p50/
// p99/p999 are exact up to the bucket resolution. obs_test cross-checks them
// against the sorted-vector answer.
//
// Label dimensions (per-tenant, per-device, per-shard) are ordinary label
// pairs: the registry keys metrics on (name, sorted labels). Callers create
// the labeled handle once (control plane) and increment it forever (data
// plane).
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstddef>
#include <deque>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/types.h"

namespace guardnn::obs {

/// Sorted-on-registration (key, value) pairs identifying one metric series.
using Labels = std::vector<std::pair<std::string, std::string>>;

enum class MetricKind : u8 { kCounter, kGauge, kHistogram };

/// Monotonic event count. inc() is one relaxed fetch_add — safe from any
/// thread, cheap enough for the serving submit path.
class Counter {
 public:
  void inc(u64 n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  u64 value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<u64> value_{0};
};

/// Point-in-time value (queue depth, byte budget, health code). set/add are
/// relaxed atomics; typically sampled by the exporter, not on the hot path.
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double d) { value_.fetch_add(d, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

struct HistogramSnapshot {
  u64 count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double p999 = 0.0;
  /// Non-empty buckets only, ascending: (bucket lower bound, count).
  std::vector<std::pair<double, u64>> buckets;

  double mean() const { return count ? sum / static_cast<double>(count) : 0.0; }
};

/// Lock-free log-bucketed histogram. Values are unit-agnostic doubles (the
/// serving layer records milliseconds). Usable standalone (benches) or
/// through a MetricRegistry (the server).
///
/// Thread safety: record() from any thread concurrently; snapshot()/
/// percentile() concurrently with writers (per-bucket torn-free loads).
class Histogram {
 public:
  /// 32 sub-buckets per power of two: relative bucket width 1/32 ≈ 3.1%.
  static constexpr int kSubBits = 5;
  static constexpr int kSubBuckets = 1 << kSubBits;
  /// Finest resolved value 2^-10 ≈ 0.001 (1 µs when recording ms)…
  static constexpr int kMinExp = -10;
  /// …coarsest 2^24 ms ≈ 4.7 h. Outside the range: under/overflow buckets.
  static constexpr int kMaxExp = 24;
  static constexpr int kBucketCount = (kMaxExp - kMinExp) * kSubBuckets + 2;

  /// Bucket index for a value. Non-positive (and NaN) values land in the
  /// underflow bucket 0; values >= 2^kMaxExp in the overflow bucket.
  /// A value exactly on a bucket's lower bound lands in that bucket
  /// (binary-exact: the sub-bucket math is all powers of two).
  static int bucket_index(double v) {
    if (!(v > 0.0)) return 0;
    int exp = 0;
    const double frac = std::frexp(v, &exp);  // v = frac * 2^exp, frac ∈ [0.5, 1)
    if (exp <= kMinExp) return 0;
    if (exp > kMaxExp) return kBucketCount - 1;
    const int sub = static_cast<int>((frac - 0.5) * (2 * kSubBuckets));
    return 1 + (exp - kMinExp - 1) * kSubBuckets +
           (sub < kSubBuckets - 1 ? sub : kSubBuckets - 1);
  }

  /// Inclusive lower bound of a bucket (0 for the underflow bucket).
  static double bucket_lower(int index) {
    if (index <= 0) return 0.0;
    if (index >= kBucketCount - 1) return std::ldexp(1.0, kMaxExp);
    const int z = index - 1;
    return std::ldexp(1.0 + static_cast<double>(z % kSubBuckets) / kSubBuckets,
                      kMinExp + z / kSubBuckets);
  }

  /// Exclusive upper bound of a bucket (+inf for the overflow bucket).
  static double bucket_upper(int index) {
    if (index >= kBucketCount - 1)
      return std::numeric_limits<double>::infinity();
    return bucket_lower(index + 1);
  }

  void record(double v) {
    buckets_[static_cast<std::size_t>(bucket_index(v))].fetch_add(
        1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    update_min(v);
    update_max(v);
  }

  u64 count() const {
    u64 total = 0;
    for (const auto& bucket : buckets_)
      total += bucket.load(std::memory_order_relaxed);
    return total;
  }

  /// Exact rank extraction over the bucket counts: the value at rank
  /// ceil(p * count) (1-based), reported as its bucket's midpoint. 0 when
  /// empty.
  double percentile(double p) const;

  /// Per-field torn-free snapshot with p50/p90/p99/p999 precomputed from
  /// one coherent read of the bucket array.
  HistogramSnapshot snapshot() const;

 private:
  void update_min(double v) {
    double seen = min_.load(std::memory_order_relaxed);
    while (v < seen &&
           !min_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
    }
  }
  void update_max(double v) {
    double seen = max_.load(std::memory_order_relaxed);
    while (v > seen &&
           !max_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
    }
  }

  static double percentile_from(const std::vector<u64>& counts, u64 total,
                                double p);

  std::array<std::atomic<u64>, static_cast<std::size_t>(kBucketCount)>
      buckets_{};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

/// One exported metric series: name + labels + the kind-specific payload.
struct MetricSample {
  std::string name;
  Labels labels;
  MetricKind kind = MetricKind::kCounter;
  u64 counter = 0;      ///< kCounter
  double gauge = 0.0;   ///< kGauge
  HistogramSnapshot hist;  ///< kHistogram
};

/// Thread-safe registry of named, labeled metrics. Creation and snapshot
/// take the registry mutex; the returned handles are stable for the
/// registry's lifetime and lock-free to update (see file header).
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  /// Returns the (name, labels) series, creating it on first use. Labels
  /// are canonicalized (sorted by key), so call order doesn't fork series.
  Counter& counter(const std::string& name, Labels labels = {});
  Gauge& gauge(const std::string& name, Labels labels = {});
  Histogram& histogram(const std::string& name, Labels labels = {});

  /// Every series, sorted by (name, labels). Values are per-field torn-free
  /// (see file header); histogram percentiles are computed from one coherent
  /// bucket read.
  std::vector<MetricSample> snapshot() const;

  /// The process-wide registry, for metrics that outlive any one server.
  /// (InferenceServer owns a private registry instead, so several fleets in
  /// one process — the test suites — never collide.)
  static MetricRegistry& global();

 private:
  using Key = std::pair<std::string, Labels>;

  static Labels canonical(Labels labels);

  mutable std::mutex mu_;
  std::map<Key, std::unique_ptr<Counter>> counters_;
  std::map<Key, std::unique_ptr<Gauge>> gauges_;
  std::map<Key, std::unique_ptr<Histogram>> histograms_;
};

/// One timestamped control-plane event (health transition, failover, admin
/// action). Milliseconds since the log's construction.
struct EventRecord {
  double t_ms = 0.0;
  std::string kind;
  std::string detail;
};

/// Bounded, mutex-guarded event log for *rare* control-plane edges — the
/// health-state transition log the ops surface reads. Not for the data
/// plane: record() allocates and locks.
class EventLog {
 public:
  explicit EventLog(std::size_t capacity = 1024);

  void record(std::string kind, std::string detail);

  /// Oldest → newest, at most `capacity` entries.
  std::vector<EventRecord> snapshot() const;

  /// Total events ever recorded (≥ snapshot().size() once wrapped).
  u64 recorded() const;

 private:
  using Clock = std::chrono::steady_clock;
  const std::size_t capacity_;
  const Clock::time_point epoch_;
  mutable std::mutex mu_;
  std::deque<EventRecord> events_;
  u64 recorded_ = 0;
};

}  // namespace guardnn::obs
