// Telemetry export: one snapshot struct, two text encodings.
//
// TelemetrySnapshot is what InferenceServer::telemetry() returns — metrics,
// control-plane events, and (when tracing is armed) the span ring. The JSON
// encoding (`schema: "guardnn-telemetry/1"`) is what the bench harness and
// scripts/check_telemetry_schema.py consume; the Prometheus text encoding is
// for scraping by a stock agent (histograms are emitted as summaries:
// quantile series + _count/_sum).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace guardnn::obs {

struct TelemetrySnapshot {
  std::vector<MetricSample> metrics;
  std::vector<EventRecord> events;
  std::vector<SpanRecord> spans;
  u64 spans_recorded = 0;  ///< Total ever; > spans.size() once the ring wrapped.
};

/// JSON object, schema "guardnn-telemetry/1":
///   {"schema":"guardnn-telemetry/1",
///    "counters":[{"name":..,"labels":{..},"value":N}],
///    "gauges":[{"name":..,"labels":{..},"value":X}],
///    "histograms":[{"name":..,"labels":{..},"count":N,"sum":X,"min":X,
///                   "max":X,"p50":X,"p90":X,"p99":X,"p999":X,
///                   "buckets":[[lower,count],..]}],
///    "events":[{"t_ms":X,"kind":..,"detail":..}],
///    "trace":{"recorded":N,"spans":[{"trace":N,"t_ns":N,"kind":..,
///              "tenant":N,"device":N,"code":N}]}}
/// At most `max_spans` of the newest spans are inlined (0 = none; the
/// "recorded" count is always present).
std::string to_json(const TelemetrySnapshot& snapshot,
                    std::size_t max_spans = 0);

/// Prometheus text exposition format. Counters/gauges map directly;
/// histograms become summaries (`name{quantile="0.5"}`, `name_count`,
/// `name_sum`). Events and spans are not representable and are omitted.
std::string to_prometheus(const TelemetrySnapshot& snapshot);

/// The sample matching (name, labels) exactly, or nullptr. Labels are
/// canonicalized before comparing, mirroring MetricRegistry.
const MetricSample* find_metric(const TelemetrySnapshot& snapshot,
                                std::string_view name, Labels labels = {});

}  // namespace guardnn::obs
