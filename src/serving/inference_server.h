// Multi-tenant secure inference server.
//
// The untrusted serving stack the paper's deployment story implies: one
// process terminates many remote users' GuardNN protocol sessions and
// multiplexes them onto a small fleet of GuardNN devices. The server is part
// of the *untrusted* host — it never sees a key or a plaintext; every secret
// stays inside the devices' session tables, and every tenant still gets the
// full end-to-end guarantees (channel MACs, per-session K_MEnc, disjoint DRAM
// partitions, remote attestation) no matter how the server schedules work.
//
// Architecture:
//   * a device fleet (each device owns its UntrustedMemory and a lock that
//     models "the accelerator executes one batch at a time");
//   * per-tenant FIFOs + a ready queue of tenants, drained by a pool of
//     std::jthread workers — one tenant is owned by at most one worker at a
//     time, so each tenant's secure-channel sequence numbers stay in order
//     while different tenants run concurrently;
//   * cross-tenant batching: a worker drains up to `max_batch` queued
//     requests per wakeup, amortizing queue/wake overhead; the per-request
//     data path is PR 2's batched encrypt_blocks() burst pipeline;
//   * an ExecutionPlan cache keyed by model hash, so tenants serving the
//     same architecture share one compiled plan;
//   * optional device-latency emulation: the functional model computes on
//     the CPU in microseconds, but the modeled accelerator/MicroBlaze time
//     (LatencyAccumulator) is the *hardware* time — emulation sleeps it off
//     while holding the device lock, so benches measure serving-layer
//     scheduling against realistic device occupancy instead of simulation
//     CPU time.
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "host/scheduler.h"
#include "host/user_client.h"

namespace guardnn::serving {

using TenantId = u64;

struct ServerConfig {
  std::size_t num_devices = 1;
  std::size_t num_workers = 1;
  /// Max requests a worker drains from one tenant per wakeup.
  std::size_t max_batch = 8;
  /// Global cap on queued-but-unprocessed requests (admission control).
  std::size_t max_pending = 4096;
  /// Sleep off the modeled device time while holding the device lock (see
  /// file header). OFF for tests; benches turn it on.
  bool emulate_device_latency = false;
  /// Scales the modeled device time when emulating.
  double device_latency_scale = 1.0;
};

enum class RequestOutcome : u8 {
  kOk,
  kDeviceError,  ///< The device refused an instruction; see device_status.
  kNoTenant,     ///< Unknown or disconnected tenant.
  kNoModel,      ///< Tenant never loaded a model.
  kQueueFull,    ///< Admission control rejected the request.
  kShutdown,     ///< Server destroyed while the request was queued.
};

const char* outcome_name(RequestOutcome outcome);

struct InferenceResult {
  RequestOutcome outcome = RequestOutcome::kOk;
  accel::DeviceStatus device_status = accel::DeviceStatus::kOk;
  /// Output sealed for the tenant (only the tenant's user can open it).
  crypto::SealedRecord sealed_output;
  /// Attestation report; populated when the request asked for one.
  accel::SignOutputResponse report{};
  bool attested = false;
  double queue_ms = 0.0;    ///< enqueue → worker pickup
  double service_ms = 0.0;  ///< worker pickup → completion (incl. emulation)
};

/// A compiled model, shared across every tenant serving the same
/// architecture+weights. `hash` is the cache key (SHA-256 over the network
/// structure and the packed weight blob).
struct ModelHandle {
  crypto::Sha256Digest hash{};
  std::shared_ptr<const host::ExecutionPlan> plan;
  bool valid() const { return plan != nullptr; }
};

struct ServerStats {
  u64 requests = 0;  ///< Requests processed by workers.
  u64 batches = 0;   ///< Worker wakeups that processed >= 1 request.
  u64 rejected = 0;  ///< Admission-control rejections.
};

class InferenceServer {
 public:
  /// Builds the device fleet ("fabrication": each device gets an identity
  /// certified by `ca`) and starts the worker pool.
  InferenceServer(const crypto::ManufacturerCa& ca, const ServerConfig& config,
                  BytesView entropy);
  ~InferenceServer();

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  // --- Control plane (synchronous) -----------------------------------------

  std::size_t device_count() const { return devices_.size(); }

  /// GetPK for the device a new tenant would land on — or any device, for a
  /// user that wants to pre-verify the fleet.
  accel::GetPkResponse get_pk(std::size_t device_index);

  struct ConnectResult {
    TenantId tenant = 0;  ///< 0 when the connect failed.
    std::size_t device_index = 0;
    accel::InitSessionResponse response;
  };

  /// Runs InitSession on the least-loaded device and registers a tenant.
  /// The caller forwards `response` to the user's complete_session().
  ConnectResult connect(const crypto::AffinePoint& user_ephemeral,
                        bool integrity);

  /// CloseSession for the tenant's session (keys zeroized device-side) and
  /// retire the tenant. Queued requests fail with kNoSession/kNoTenant.
  accel::DeviceStatus disconnect(TenantId tenant);

  /// Compiles a network into an ExecutionPlan, deduplicated by model hash:
  /// the second tenant serving the same model reuses the cached plan.
  ModelHandle register_model(const host::FuncNetwork& net);

  /// Hash used by the plan cache (structure + packed weights).
  static crypto::Sha256Digest model_hash(const host::FuncNetwork& net);

  /// Imports the tenant's sealed weight blob and pins the plan used by
  /// subsequent submissions. The blob must be the plan's weight_blob sealed
  /// by the tenant's user.
  accel::DeviceStatus load_model(TenantId tenant, const ModelHandle& model,
                                 const crypto::SealedRecord& sealed_weights);

  // --- Data plane ----------------------------------------------------------

  /// Queues one inference (sealed input → sealed output). Per-tenant FIFO
  /// order; cross-tenant concurrency up to the worker/device fleet size.
  std::future<InferenceResult> submit_async(TenantId tenant,
                                            crypto::SealedRecord sealed_input,
                                            bool attest = false);

  /// Synchronous convenience wrapper.
  InferenceResult submit(TenantId tenant, crypto::SealedRecord sealed_input,
                         bool attest = false) {
    return submit_async(tenant, std::move(sealed_input), attest).get();
  }

  ServerStats stats() const;

  // --- Introspection (trusted-side / adversarial test hooks) ---------------

  /// The raw device — the isolation tests drive it directly, playing the
  /// malicious host that bypasses the server's bookkeeping.
  accel::GuardNnDevice& device(std::size_t index) {
    return devices_[index]->device;
  }
  /// The device's untrusted DRAM, for plaintext-leak scans.
  accel::UntrustedMemory& device_memory(std::size_t index) {
    return devices_[index]->memory;
  }
  /// The tenant's device index and session id (kInvalidSession if unknown).
  std::pair<std::size_t, accel::SessionId> tenant_session(TenantId tenant) const;

 private:
  using Clock = std::chrono::steady_clock;

  struct Request {
    crypto::SealedRecord sealed_input;
    bool attest = false;
    std::promise<InferenceResult> promise;
    Clock::time_point enqueued;
  };

  struct DeviceNode {
    accel::UntrustedMemory memory;
    accel::GuardNnDevice device;
    /// Held while a batch executes: the accelerator runs one command stream
    /// at a time, and emulated device latency is slept off under it.
    std::mutex busy;
    std::size_t tenant_count = 0;

    DeviceNode(std::string id, const crypto::ManufacturerCa& ca,
               BytesView entropy)
        : device(std::move(id), ca, memory, entropy) {}
  };

  struct Tenant {
    std::size_t device_index = 0;
    accel::SessionId session = accel::kInvalidSession;
    /// Per-tenant VN mirror + instruction issue, bound to the session.
    host::HostScheduler scheduler;
    std::shared_ptr<const host::ExecutionPlan> plan;
    std::deque<Request> pending;
    bool scheduled = false;  ///< In ready_ or owned by a worker.
    bool open = true;

    Tenant(accel::GuardNnDevice& device, std::size_t dev_index,
           accel::SessionId sid)
        : device_index(dev_index), session(sid), scheduler(device, sid) {}
  };

  void worker_loop(std::stop_token stop);
  void process_one(Tenant& tenant, DeviceNode& node,
                   const host::ExecutionPlan& plan, Request& request,
                   InferenceResult& result);
  static std::future<InferenceResult> immediate_result(RequestOutcome outcome);

  ServerConfig config_;
  std::vector<std::unique_ptr<DeviceNode>> devices_;

  mutable std::mutex mu_;
  std::condition_variable_any cv_;
  std::map<TenantId, std::shared_ptr<Tenant>> tenants_;
  std::deque<std::shared_ptr<Tenant>> ready_;
  std::size_t pending_count_ = 0;
  TenantId next_tenant_ = 1;
  ServerStats stats_;

  std::mutex plan_mu_;
  std::map<crypto::Sha256Digest, std::shared_ptr<const host::ExecutionPlan>>
      plan_cache_;

  std::vector<std::jthread> workers_;  // last member: joins before teardown
};

}  // namespace guardnn::serving
