// Multi-tenant secure inference server.
//
// The untrusted serving stack the paper's deployment story implies: one
// process terminates many remote users' GuardNN protocol sessions and
// multiplexes them onto a small fleet of GuardNN devices. The server is part
// of the *untrusted* host — it never sees a key or a plaintext; every secret
// stays inside the devices' session tables, and every tenant still gets the
// full end-to-end guarantees (channel MACs, per-session K_MEnc, disjoint DRAM
// partitions, remote attestation) no matter how the server schedules work.
//
// Architecture:
//   * a device fleet (each device owns its UntrustedMemory, a busy lock that
//     models "the accelerator executes one batch at a time", and a
//     provisioning lock scoping the one-pending-ephemeral re-wrap handshake
//     to that device — disjoint device pairs replicate concurrently);
//   * a striped session/routing table (shard_table.h): tenants hash to one
//     of a power-of-two set of shards, each with its own mutex, tenant map
//     and ready queue — submit_async takes exactly one shard lock, never a
//     process-global one, so disjoint tenants enqueue without contention;
//   * a worker pool (std::jthread) woken through a counting semaphore (one
//     token per tenant-became-ready transition); a worker drains its
//     preferred stripe and steals from the others. One tenant is owned by at
//     most one worker at a time, so each tenant's secure-channel sequence
//     numbers stay in order while different tenants run concurrently;
//   * cross-tenant batching: a worker drains up to `max_batch` queued
//     requests per wakeup, amortizing queue/wake overhead; the per-request
//     data path is PR 2's batched encrypt_blocks() burst pipeline;
//   * two-level admission control (admission.h): a per-tenant queue quota
//     (hard kQueueFull — noisy neighbors only starve themselves) plus a
//     fleet-wide queued-byte budget derived from the modeled device ingest
//     bandwidth (soft kBackpressure — retry the same sealed record later);
//   * an ExecutionPlan cache keyed by model hash, so tenants serving the
//     same architecture share one compiled plan;
//   * optional device-latency emulation: the functional model computes on
//     the CPU in microseconds, but the modeled accelerator/MicroBlaze time
//     (LatencyAccumulator) is the *hardware* time — emulation sleeps it off
//     while holding the device lock, so benches measure serving-layer
//     scheduling against realistic device occupancy instead of simulation
//     CPU time;
//   * a fault-tolerance layer (fault.h + the health monitor below): every
//     device call crosses a FaultInjector gate, per-device health degrades
//     on consecutive failures (healthy → degraded → quarantined, or dead on
//     fail-stop), a monitor thread reaps per-request deadlines and fails
//     tenants over off dead/quarantined devices — every promise resolves,
//     the admission byte budget rescales to the surviving fleet, and sealed
//     model replicas are pre-provisioned to healthy devices so a
//     reconnecting tenant resumes without re-uploading weights.
//
// Failure model (docs/ARCHITECTURE.md "Failure model & recovery" has the
// full walkthrough): GuardNN sessions are fail-stop and their keys live in
// device SRAM, so fail-stop death is cryptographically unrecoverable — no
// server can decrypt a tenant's queued sealed records on another device,
// because the channel keys died with the session. What *is* recoverable
// without user involvement is the model: a sealed replica re-wraps to a
// healthy device over the PR 4 attested handshake. Failover therefore
// resolves every affected future with the retryable kDeviceFailover, moves
// the model replica, and lets the tenant resume with one reconnect() — a
// fresh ECDHE handshake, after which new submissions flow on the surviving
// device against the already-provisioned weights.
#pragma once

#include <atomic>
#include <chrono>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <semaphore>
#include <thread>
#include <vector>

#include <optional>
#include <unordered_map>

#include "host/scheduler.h"
#include "host/user_client.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serving/admission.h"
#include "serving/fault.h"
#include "serving/shard_table.h"
#include "store/model_store.h"

namespace guardnn::serving {

struct ServerConfig {
  std::size_t num_devices = 1;
  std::size_t num_workers = 1;
  /// Max requests a worker drains from one tenant per wakeup.
  std::size_t max_batch = 8;
  /// Shard count for the tenant/routing table, rounded up to a power of
  /// two. 0 derives max(16, 4 × num_workers) so stripes outnumber workers.
  std::size_t num_shards = 0;
  /// Per-tenant cap on queued-but-unprocessed requests. A tenant at its
  /// quota is rejected with kQueueFull; no other tenant is affected.
  std::size_t max_pending_per_tenant = 64;
  /// Fleet-wide budget of queued sealed-input bytes. 0 derives it from the
  /// modeled per-device ingest bandwidth (accel::MicrocontrollerModel
  /// import path) over `backpressure_window_ms`. Crossing the budget
  /// answers kBackpressure — a soft signal, distinct from kQueueFull.
  std::size_t max_pending_bytes = 0;
  /// Window the derived byte budget covers: the fleet admits at most the
  /// bytes it can ingest within this many modeled milliseconds.
  double backpressure_window_ms = 5.0;
  /// Sleep off the modeled device time while holding the device lock (see
  /// file header). OFF for tests; benches turn it on.
  bool emulate_device_latency = false;
  /// Scales the modeled device time when emulating.
  double device_latency_scale = 1.0;
  /// When a device's session table is full at connect, evict the
  /// least-recently-active *idle* tenant (no queued work) on that device and
  /// admit the waiting one. The evicted session is closed and zeroized
  /// device-side; the evicted tenant's next submit answers kNoTenant.
  bool evict_idle_sessions = true;
  /// Non-empty: back the server's sealed-model store with this directory
  /// (blobs survive a restart). Empty: in-memory store.
  std::string model_store_dir;

  // --- Live migration / hot spares -----------------------------------------

  /// Standby devices fabricated *in addition to* num_devices. A spare has a
  /// full identity and DRAM partition but carries no traffic (never
  /// routable) until the health monitor promotes it — when quarantine drops
  /// the routable fleet below `spare_promote_floor`. The admission byte
  /// budget is always scaled against the primary fleet, so an unpromoted
  /// spare costs nothing and a promoted one restores lost budget.
  std::size_t num_spare_devices = 0;
  /// Routable-device floor that triggers spare promotion. 0 derives
  /// num_devices: the fleet tries to stay at full primary strength.
  std::size_t spare_promote_floor = 0;
  /// Sealed models a freshly promoted spare is pre-warmed with, via the
  /// attested re-wrap: displaced (failover-pending) tenants' replicas first,
  /// then store popularity order (ModelStore::hot_contents).
  std::size_t spare_prewarm_models = 4;

  // --- Fault tolerance / health (see the file-header failure model) --------

  /// Consecutive device-call failures before a device is marked degraded
  /// (still routable, but new tenants prefer healthy devices).
  std::size_t degrade_after = 2;
  /// Consecutive failures before the device is quarantined: removed from
  /// routing, its tenants failed over, the admission budget rescaled, and
  /// its plan-cache generations pruned. 0 disables quarantine.
  std::size_t quarantine_after = 6;
  /// Bounded same-record retry budget for transient device faults (the
  /// record was never consumed, so the channel sequence is intact).
  std::size_t transient_retries = 3;
  /// Base backoff between transient retries; doubles per attempt.
  double retry_backoff_ms = 0.2;
  /// Default per-request deadline, enqueue → completion. An expired request
  /// resolves kTimeout *before* its sealed record is consumed, together
  /// with everything queued behind it (retry the same records, in order).
  /// 0 = no deadline; submit_async can override per request.
  double default_deadline_ms = 0.0;
  /// Health-monitor period: deadline reaping, fail-stop detection, and
  /// tenant failover all run on this cadence.
  double monitor_interval_ms = 1.0;

  // --- Observability -------------------------------------------------------

  /// Span ring capacity for request tracing (obs/trace.h). Tracing is armed
  /// by GUARDNN_TRACE=1 or trace().set_enabled(true); while disabled the
  /// per-request cost is one relaxed load.
  std::size_t trace_capacity = 1 << 17;
  /// Bounded health/failover event log (obs::EventLog) capacity.
  std::size_t event_log_capacity = 1024;
};

/// Per-device health as seen by the serving control plane. Healthy and
/// degraded devices are routable; quarantined and dead ones are not.
enum class DeviceHealth : u8 {
  kHealthy,
  kDegraded,     ///< Consecutive failures crossed degrade_after.
  kQuarantined,  ///< Crossed quarantine_after: out of routing, tenants
                 ///< failed over. Admin may reinstate_device().
  kDead,         ///< Fail-stop: the device stopped answering. Session keys
                 ///< are gone with the SRAM; only reinstate after replacing
                 ///< ("reviving") the device.
};

const char* health_name(DeviceHealth health);

enum class RequestOutcome : u8 {
  kOk,
  kDeviceError,    ///< The device refused an instruction; see device_status.
  kNoTenant,       ///< Unknown, disconnected, or torn-down tenant.
  kNoModel,        ///< Tenant never loaded a model.
  kQueueFull,      ///< The tenant's own queue quota is exhausted (hard).
  kBackpressure,   ///< Fleet byte budget exhausted (soft — retry the same
                   ///< sealed record; re-sealing would gap the channel).
  kShutdown,       ///< Server destroyed while the request was queued.
  kTimeout,        ///< Deadline expired (or the bounded transient-fault
                   ///< retry budget ran out) before the device consumed the
                   ///< record. The tenant's whole queue drains this way so
                   ///< the channel stays gapless: retry the same sealed
                   ///< records, in order.
  kDeviceFailover, ///< The tenant's device died (or its session was wounded
                   ///< by a lost completion). The session keys are gone;
                   ///< retryable via reconnect(): re-handshake, then re-seal
                   ///< under the new session. A sealed model replica is
                   ///< restored server-side — weights need no re-upload.
};

const char* outcome_name(RequestOutcome outcome);

struct InferenceResult {
  RequestOutcome outcome = RequestOutcome::kOk;
  accel::DeviceStatus device_status = accel::DeviceStatus::kOk;
  /// Output sealed for the tenant (only the tenant's user can open it).
  crypto::SealedRecord sealed_output;
  /// Attestation report; populated when the request asked for one.
  accel::SignOutputResponse report{};
  bool attested = false;
  double queue_ms = 0.0;    ///< enqueue → worker pickup
  double service_ms = 0.0;  ///< worker pickup → completion (incl. emulation)
};

/// A compiled model, shared across every tenant serving the same
/// architecture+weights. `hash` is the logical cache key (SHA-256 over the
/// network structure and the packed weight blob); compiled plans are cached
/// per (hash, device generation) so a plan from before a device reset is
/// never replayed onto the re-provisioned device.
struct ModelHandle {
  crypto::Sha256Digest hash{};
  /// The registered architecture (kept so the server can recompile the plan
  /// for a later device generation without the caller re-registering).
  std::shared_ptr<const host::FuncNetwork> net;
  /// Plan compiled for `generation`; load_model recompiles transparently
  /// when the tenant's device has moved past it.
  std::shared_ptr<const host::ExecutionPlan> plan;
  u64 generation = 0;
  bool valid() const { return plan != nullptr; }
};

/// Snapshot view over the server's metric registry (the registry is the
/// single source of truth: stats() reads the same obs::Counter cells that
/// telemetry() exports, so the two can never drift). Each field is an
/// independent relaxed load — per-field coherent (monotonic, never torn)
/// under concurrent failover, not a cross-field transaction.
struct ServerStats {
  u64 requests = 0;       ///< Requests processed by workers.
  u64 batches = 0;        ///< Worker wakeups that processed >= 1 request.
  u64 rejected = 0;       ///< Hard per-tenant-quota rejections (kQueueFull).
  u64 backpressured = 0;  ///< Soft fleet-budget rejections (kBackpressure).
  u64 evicted = 0;        ///< Idle sessions evicted to admit a new tenant.
  u64 replications = 0;   ///< Cross-device model re-wraps performed.
  u64 failovers = 0;      ///< Tenants torn down with kDeviceFailover and
                          ///< registered for reconnect().
  u64 quarantines = 0;    ///< Devices that crossed the quarantine threshold.
  u64 retries = 0;        ///< Bounded same-record retries of transient faults.
  u64 timeouts = 0;       ///< Requests resolved kTimeout (deadline or retry
                          ///< budget exhausted; record never consumed).
  u64 migrations = 0;           ///< Completed live migrations (zero loss).
  u64 migrations_aborted = 0;   ///< Migrations aborted (target failed);
                                ///< tenant resumed on the source untouched.
  u64 migrations_degraded = 0;  ///< Migrations whose source died mid-move;
                                ///< degraded to the crash-failover path.
  u64 spare_promotions = 0;     ///< Standby devices promoted into routing.
};

/// Multi-tenant secure inference server (see the file header for the
/// architecture).
///
/// Thread safety: every public method may be called from any thread
/// concurrently. Control-plane calls serialize on the tenant's table shard
/// plus the per-device busy/provisioning locks; data-plane submissions
/// enqueue under one shard lock and are executed by the worker pool
/// (per-tenant FIFO order is preserved, cross-tenant execution is
/// concurrent). No process-global mutex exists on the submit path.
/// Introspection accessors return references to device-owned state and are
/// meant for single-threaded test drivers.
///
/// Error model: control-plane methods return the accel::DeviceStatus of the
/// underlying device instruction (kNoSession for unknown/disconnected
/// tenants, kBadOperand for invalid indices/handles); data-plane results
/// carry a RequestOutcome plus the failing DeviceStatus. Requests still
/// queued when their tenant is torn down (disconnect, eviction, device
/// reset) resolve with kNoTenant — never silently dropped.
class InferenceServer {
 public:
  /// Builds the device fleet ("fabrication": each device gets an identity
  /// certified by `ca`) and starts the worker pool.
  ///
  /// Preconditions: `config.num_devices >= 1`, `config.num_workers >= 1`,
  /// `entropy` non-empty (seeds every device DRBG). When
  /// `config.model_store_dir` is non-empty the directory is created on
  /// demand and re-indexed (see store::DirectoryBackend).
  InferenceServer(const crypto::ManufacturerCa& ca, const ServerConfig& config,
                  BytesView entropy);
  /// Stops the workers; queued requests complete with
  /// RequestOutcome::kShutdown before the devices are torn down.
  ~InferenceServer();

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  // --- Control plane (synchronous) -----------------------------------------

  /// Total fabricated devices: primaries + standby spares.
  std::size_t device_count() const { return devices_.size(); }
  /// Primary fleet size (admission budgets scale against this, not the
  /// total: an unpromoted spare contributes no ingest bandwidth).
  std::size_t primary_device_count() const { return primary_devices_; }
  /// Spares still standing by (fabricated spares minus promotions).
  std::size_t standby_device_count() const;

  /// GetPK for the device a new tenant would land on — or any device, for a
  /// user that wants to pre-verify the fleet.
  ///
  /// Precondition: `device_index < device_count()` (throws
  /// std::out_of_range otherwise).
  accel::GetPkResponse get_pk(std::size_t device_index);

  struct ConnectResult {
    TenantId tenant = 0;  ///< 0 when the connect failed.
    std::size_t device_index = 0;
    accel::InitSessionResponse response;
    /// reconnect() only: the tenant's sealed model replica was provisioned
    /// to the new device and loaded — submissions work without re-upload.
    bool model_restored = false;
  };

  /// Runs InitSession on the least-loaded *routable* (healthy or degraded)
  /// device and registers a tenant. The caller forwards `response` to the
  /// user's complete_session().
  ///
  /// Returns `tenant == 0` with `response.status` set when every session
  /// table is full (after idle eviction, when enabled), the device rejects
  /// the handshake, or no routable device remains (kUnavailable); no tenant
  /// is registered in that case.
  ConnectResult connect(const crypto::AffinePoint& user_ephemeral,
                        bool integrity);

  /// Failover resume: re-admits a tenant whose device died or was
  /// quarantined (its futures resolved kDeviceFailover). Establishes a
  /// fresh session on a surviving device — `user_ephemeral` is the user's
  /// *new* ECDHE share; the old channel keys died with the device — and,
  /// when the tenant's model had a sealed replica, provisions + loads it so
  /// `model_restored` comes back true and submissions immediately work.
  /// The TenantId is preserved.
  ///
  /// Returns `tenant == 0` with `response.status` kNoSession when no
  /// failover is pending for this id, or kUnavailable when no routable
  /// device remains.
  ConnectResult reconnect(TenantId tenant,
                          const crypto::AffinePoint& user_ephemeral,
                          bool integrity);

  /// Planned, zero-loss live migration: moves `tenant` onto `target_device`
  /// without dropping a single admitted request (contrast with the crash
  /// path, where the session keys die and queued records are lost).
  ///
  /// The sequence (docs/ARCHITECTURE.md §7 "Planned migration vs crash
  /// failover" walks it with a state diagram):
  ///   1. mark the tenant *draining*: new submits are still admitted and
  ///      parked in the FIFO, but workers stop being scheduled for it;
  ///   2. wait for the in-flight batch to resolve, then claim the tenant
  ///      like a worker would;
  ///   3. seal the loaded model on the source (reusing the recorded replica
  ///      when one exists — inference never mutates weights) and re-wrap it
  ///      to the target over the attested 3-step provisioning handshake;
  ///   4. InitSession on the target with `user_ephemeral` — the user's
  ///      *fresh* ECDHE share (a session cannot move between devices; its
  ///      keys live in SRAM) — and unseal the replica into it;
  ///   5. replay every parked record on the *source* session, in FIFO
  ///      order: parked records are sealed under the old channel keys, and
  ///      the source session is still alive, so the channel sequence is
  ///      preserved exactly;
  ///   6. atomically flip the routing-table entry to the target-bound
  ///      session in the same critical section that observes the FIFO
  ///      empty, close the source session, and return.
  ///
  /// The caller must stop sealing new requests under the old keys before
  /// calling (the old session's last records must be in flight or parked),
  /// and feeds `response` to the user's complete_session() to derive the new
  /// channel keys. Requests submitted after the flip execute on the target.
  ///
  /// Fault interplay: if the *source* dies mid-migration the tenant degrades
  /// to the crash path (tenant == 0, parked futures resolve kDeviceFailover,
  /// a failover record is registered for reconnect()); if the *target* dies
  /// or rejects, the migration aborts and the tenant resumes on the source
  /// untouched (tenant == 0, status from the failing step, no future lost).
  ///
  /// Errors: kNoSession (unknown tenant, or a migration already draining
  /// it), kBadOperand (bad target index, or target == source),
  /// kUnavailable (target not routable / died mid-move).
  ConnectResult migrate_tenant(TenantId tenant, std::size_t target_device,
                               const crypto::AffinePoint& user_ephemeral,
                               bool integrity);

  /// CloseSession for the tenant's session (keys zeroized device-side) and
  /// retire the tenant. Requests still queued and not yet owned by a worker
  /// resolve with kNoTenant immediately; a worker that owns the tenant
  /// drains the remainder as kNoTenant at its next pickup.
  ///
  /// Returns kNoSession for an unknown or already-disconnected tenant;
  /// otherwise the device's CloseSession status.
  accel::DeviceStatus disconnect(TenantId tenant);

  /// Compiles a network into an ExecutionPlan, deduplicated by model hash:
  /// the second tenant serving the same model reuses the cached plan.
  ModelHandle register_model(const host::FuncNetwork& net);

  /// Hash used by the plan cache (structure + packed weights).
  static crypto::Sha256Digest model_hash(const host::FuncNetwork& net);

  /// Imports the tenant's sealed weight blob and pins the plan used by
  /// subsequent submissions. The blob must be the plan's weight_blob sealed
  /// by the tenant's user.
  ///
  /// Errors: kNoSession (unknown tenant), kBadOperand (invalid handle),
  /// kBadRecord (channel authentication failed — the record was not sealed
  /// by this tenant's user, or was replayed), or any SetWeight status.
  accel::DeviceStatus load_model(TenantId tenant, const ModelHandle& model,
                                 const crypto::SealedRecord& sealed_weights);

  // --- Sealed model store / fleet replication ------------------------------
  // A tenant's loaded model can be sealed to the server's content-addressed
  // store and later provisioned to *other* devices in the fleet via the
  // attested re-wrap protocol — this is how a hot model escapes the
  // pinned-at-connect placement: a tenant landing on any device can be
  // served once the model is replicated there, without its weights ever
  // being visible to the server.

  /// Seals the tenant's currently loaded model on its device into the store
  /// (the fused SealModel pipeline: one MPU walk, in-place blob encryption).
  /// `descriptor` is the public architecture metadata to embed (typically
  /// host::serialize_descriptor of the registered network).
  ///
  /// Errors: kNoSession (unknown tenant), kBadOperand (no model loaded, or
  /// the blob failed the store's round-trip check), kIntegrityFailure (the
  /// session's weight region failed MAC verification — session is dead).
  /// On success `content_out` names the stored replica.
  accel::DeviceStatus seal_tenant_model(TenantId tenant, BytesView descriptor,
                                        store::ContentId& content_out);

  /// Ensures `target_device` holds a device-bound replica of `content`,
  /// re-wrapping from any fleet device that already has one. kOk when the
  /// replica already exists; kBadOperand when no device holds the model.
  ///
  /// The exclusion is scoped to the two devices involved (a device holds
  /// one pending provisioning ephemeral): replications between disjoint
  /// device pairs proceed concurrently.
  accel::DeviceStatus replicate_model(const store::ContentId& content,
                                      std::size_t target_device);

  /// Loads a stored model into the tenant's session (UnsealModel on its
  /// device), auto-replicating to that device first when needed. Pins the
  /// plan like load_model.
  accel::DeviceStatus load_model_from_store(TenantId tenant,
                                            const store::ContentId& content,
                                            const ModelHandle& model);

  store::ModelStore& model_store() { return model_store_; }
  const store::BindingId& device_binding(std::size_t index) const {
    return devices_.at(index)->device.store_binding();
  }

  /// Admin: reset one device ("reboot"). Every tenant on it is disconnected
  /// (queued work resolves kNoTenant), the device's sessions are zeroized
  /// and its generation bumps — cached plans for the old generation are
  /// never reused.
  accel::DeviceStatus reset_device(std::size_t index);

  // --- Fault tolerance / health --------------------------------------------

  /// The fault-injection boundary in front of every device (tests, chaos
  /// benches and the deep-fuzz job script faults through it; see fault.h).
  FaultInjector& faults() { return faults_; }

  DeviceHealth device_health(std::size_t index) const {
    return static_cast<DeviceHealth>(
        devices_[index]->health.load(std::memory_order_acquire));
  }
  /// Devices currently routable (healthy or degraded, and answering).
  std::size_t routable_device_count() const;

  /// Admin: return a quarantined (or revived) device to rotation. The
  /// device is reset first — generation bump, sessions zeroized — exactly
  /// like a replaced card; the admission budget rescales back up.
  /// Returns kUnavailable while the device is still dead (revive it via
  /// faults() first — or physically, in a real fleet).
  accel::DeviceStatus reinstate_device(std::size_t index);

  /// True while `tenant` is torn down awaiting reconnect() (its device died
  /// or was quarantined).
  bool failover_pending(TenantId tenant) const;

  // --- Data plane ----------------------------------------------------------

  /// Queues one inference (sealed input → sealed output). Per-tenant FIFO
  /// order; cross-tenant concurrency up to the worker/device fleet size.
  ///
  /// Hot path: one shard mutex + two atomic RMWs + a semaphore release —
  /// no process-global lock. Admission failures (kQueueFull/kBackpressure)
  /// do not consume the record: retry the same SealedRecord later.
  ///
  /// `deadline_ms` bounds enqueue → completion: 0 uses
  /// ServerConfig::default_deadline_ms, negative disables the deadline for
  /// this request. Expiry resolves kTimeout before the record is consumed
  /// (see RequestOutcome::kTimeout), so a wedged device costs the client a
  /// bounded wait, never a hung future.
  std::future<InferenceResult> submit_async(TenantId tenant,
                                            crypto::SealedRecord sealed_input,
                                            bool attest = false,
                                            double deadline_ms = 0.0);

  /// Synchronous convenience wrapper.
  InferenceResult submit(TenantId tenant, crypto::SealedRecord sealed_input,
                         bool attest = false, double deadline_ms = 0.0) {
    return submit_async(tenant, std::move(sealed_input), attest, deadline_ms)
        .get();
  }

  ServerStats stats() const;

  // --- Observability -------------------------------------------------------

  /// One coherent telemetry export: every registry metric (with live gauges
  /// — pending bytes/requests, per-device health and MPU byte counters,
  /// store size — sampled at the moment of the call), the health/failover
  /// event log, and the span ring. Feed it to obs::to_json /
  /// obs::to_prometheus; docs/ARCHITECTURE.md §8 catalogs the metric names.
  obs::TelemetrySnapshot telemetry() const;

  /// The request-trace collector. Armed from GUARDNN_TRACE at construction;
  /// benches/tests may set_enabled(true) at runtime. Only requests submitted
  /// *while enabled* record spans (a request minted under disabled tracing
  /// carries trace id 0 for its whole life).
  obs::TraceCollector& trace() { return trace_; }
  const obs::TraceCollector& trace() const { return trace_; }

  /// The server's metric registry (private to this server instance so
  /// several fleets in one process never collide; use find_metric over
  /// telemetry() for reads).
  obs::MetricRegistry& metrics() { return metrics_; }

  // --- Introspection (trusted-side / adversarial test hooks) ---------------

  /// The raw device — the isolation tests drive it directly, playing the
  /// malicious host that bypasses the server's bookkeeping.
  accel::GuardNnDevice& device(std::size_t index) {
    return devices_[index]->device;
  }
  /// The device's untrusted DRAM, for plaintext-leak scans.
  accel::UntrustedMemory& device_memory(std::size_t index) {
    return devices_[index]->memory;
  }
  /// The tenant's device index and session id (kInvalidSession if unknown).
  std::pair<std::size_t, accel::SessionId> tenant_session(TenantId tenant) const;

  /// Routing-table stripes (power of two; see ServerConfig::num_shards).
  std::size_t shard_count() const { return table_.shard_count(); }
  /// Requests admitted but not yet picked up by a worker, fleet-wide.
  std::size_t pending_requests() const { return admission_.pending_requests(); }
  /// Queued sealed-input bytes counted against the fleet byte budget.
  std::size_t pending_bytes() const { return admission_.pending_bytes(); }
  /// The fleet byte budget in force (configured or bandwidth-derived).
  std::size_t admission_byte_budget() const { return admission_.byte_budget(); }

 private:
  using Clock = std::chrono::steady_clock;

  struct Request {
    crypto::SealedRecord sealed_input;
    bool attest = false;
    /// Ciphertext bytes charged against the fleet byte budget at admission.
    std::size_t charged_bytes = 0;
    /// Nonzero only when tracing was enabled at submit (obs/trace.h); rides
    /// the request so every stage (pickup, device, resolve) spans under the
    /// same id.
    u64 trace_id = 0;
    std::promise<InferenceResult> promise;
    Clock::time_point enqueued;
    /// Absolute deadline; meaningful only when has_deadline.
    Clock::time_point deadline;
    bool has_deadline = false;

    bool expired(Clock::time_point now) const {
      return has_deadline && now >= deadline;
    }
  };

  struct DeviceNode {
    accel::UntrustedMemory memory;
    accel::GuardNnDevice device;
    /// Held while a batch executes: the accelerator runs one command stream
    /// at a time, and emulated device latency is slept off under it.
    std::mutex busy;
    /// Scopes the attested re-wrap handshake to this device: it holds one
    /// pending provisioning ephemeral, so two replications touching it
    /// serialize — but pairs of *other* devices do not (std::scoped_lock
    /// over source+target; see replicate_model).
    std::mutex provision_mu;
    std::atomic<std::size_t> tenant_count{0};
    /// DeviceHealth, advanced lock-free by whoever observes a device call's
    /// result; the monitor thread does the heavyweight transition work.
    std::atomic<u8> health{static_cast<u8>(DeviceHealth::kHealthy)};
    std::atomic<u32> consecutive_failures{0};
    /// Set on the transition to quarantined/dead; the monitor consumes it
    /// (tenant failover, budget rescale, plan-cache prune).
    std::atomic<bool> down_pending{false};
    /// Hot spare, standing by: never routable until the monitor promotes it
    /// (flips this false) because the routable fleet fell below the floor.
    std::atomic<bool> standby{false};

    DeviceNode(std::string id, const crypto::ManufacturerCa& ca,
               BytesView entropy)
        : device(std::move(id), ca, memory, entropy) {}
  };

  struct Tenant {
    TenantId id = 0;
    std::size_t device_index = 0;
    accel::SessionId session = accel::kInvalidSession;
    /// Per-tenant VN mirror + instruction issue, bound to the session.
    host::HostScheduler scheduler;
    std::shared_ptr<const host::ExecutionPlan> plan;
    std::deque<Request> pending;
    bool scheduled = false;  ///< In a shard's ready queue or worker-owned.
    bool open = true;
    /// Live migration in progress: submits still admit (and park in
    /// `pending`), but the tenant is never pushed to a ready queue — the
    /// migrating thread owns the replay. Cleared by abort; a flipped entry
    /// is replaced wholesale, never un-drained.
    bool draining = false;
    /// Outcome the worker uses when draining a closed tenant's queue.
    /// kNoTenant for ordinary teardown (disconnect, eviction, reset);
    /// kDeviceFailover when the health monitor tore the tenant down.
    RequestOutcome teardown_outcome = RequestOutcome::kNoTenant;
    /// Model bookkeeping for failover: what the tenant had loaded, and the
    /// sealed replica (if any) a failover can restore from. Written under
    /// the shard lock by load_model / load_model_from_store /
    /// seal_tenant_model.
    bool has_model_hash = false;
    crypto::Sha256Digest model_hash{};
    std::optional<store::ContentId> model_content;
    /// Last time this tenant touched the server (connect, load, submit,
    /// batch completion) — the LRU clock for idle eviction.
    Clock::time_point last_activity;
    /// Per-tenant request counter (serving_tenant_requests_total{tenant=N}),
    /// created once at connect so the worker hot path is one relaxed inc.
    obs::Counter* requests_counter = nullptr;

    Tenant(TenantId tenant_id, accel::GuardNnDevice& device,
           std::size_t dev_index, accel::SessionId sid)
        : id(tenant_id),
          device_index(dev_index),
          session(sid),
          scheduler(device, sid),
          last_activity(Clock::now()) {}
  };

  using Shard = TableShard<Tenant>;

  void worker_loop(std::stop_token stop, std::size_t worker_index);
  void run_batch(const std::shared_ptr<Tenant>& tenant);
  void process_one(Tenant& tenant, DeviceNode& node,
                   const host::ExecutionPlan& plan, Request& request,
                   InferenceResult& result);
  /// Records the terminal resolve span (when traced) and fulfills the
  /// promise. Every promise the server resolves goes through here, so a
  /// traced request always ends in exactly one kResolve span.
  void resolve_one(Request& request, InferenceResult result);
  std::future<InferenceResult> immediate_result(u64 trace_id, TenantId tenant,
                                                RequestOutcome outcome);
  /// Resolves a drained request queue with `outcome` (no device involved).
  void resolve_all(std::deque<Request>& requests, RequestOutcome outcome);

  /// Looks up a live tenant (shard lock taken and released inside).
  std::shared_ptr<Tenant> find_tenant(TenantId tenant);
  /// Stamps the LRU clock under the tenant's shard lock.
  void touch(const std::shared_ptr<Tenant>& tenant);

  /// Evicts the least-recently-active idle tenant on `device_index` (session
  /// closed + zeroized device-side). False when every tenant there is busy.
  bool evict_idle_tenant(std::size_t device_index);

  /// Plan cache lookup/compile for one (model, device generation) pair.
  std::shared_ptr<const host::ExecutionPlan> plan_for(
      const crypto::Sha256Digest& hash, const host::FuncNetwork& net,
      u64 generation);

  /// Resolves the plan a tenant on `device_index` must execute for `model`,
  /// recompiling when the handle predates the device's generation.
  std::shared_ptr<const host::ExecutionPlan> resolve_plan(
      const ModelHandle& model, std::size_t device_index);

  static std::size_t derived_shard_count(const ServerConfig& config);
  static std::size_t derived_byte_budget(const ServerConfig& config);
  /// Structural equality of an unsealed (public) descriptor against the
  /// registered network — the guard that keeps a mismatched (content,
  /// handle) pair from serving garbage under a wrong-layout plan.
  static bool descriptor_matches(const host::FuncNetwork& got,
                                 const host::FuncNetwork& expect);

  // --- Fault tolerance internals -------------------------------------------
  // Lock ordering: the failover map mutex, any shard mutex, and plan_mu_ are
  // never held together (busy → shard nesting is the one sanctioned pair,
  // inherited from run_batch). handle_device_down works in passes: collect
  // victims under shard locks, register failover records under failover_mu_,
  // then drain/resolve with no lock held.

  /// What reconnect() needs to resume a failed-over tenant.
  struct FailoverRecord {
    std::size_t preferred_device = 0;  ///< Pre-provisioned target (if any).
    bool has_target = false;
    bool has_content = false;
    store::ContentId content{};  ///< Sealed model replica in the store.
    bool has_model = false;
    crypto::Sha256Digest model_hash{};
  };

  /// Monitor thread: fail-stop detection, down-device handling (tenant
  /// failover + budget rescale + plan prune) and deadline reaping.
  void monitor_loop(std::stop_token stop);
  void record_device_success(std::size_t device_index);
  void record_device_failure(std::size_t device_index);
  /// Marks a device dead (fail-stop observed); the monitor does the rest.
  void note_device_dead(std::size_t device_index);
  /// Tears down every tenant on a dead/quarantined device: futures resolve
  /// kDeviceFailover, failover records are registered, sealed replicas are
  /// pre-provisioned to a healthy device, the budget rescales.
  void handle_device_down(std::size_t device_index);
  /// One tenant's failover teardown (open → closed, pending drained with
  /// kDeviceFailover, record registered, replica pre-provisioned). Safe to
  /// race — only the caller that flips `open` does the bookkeeping. Returns
  /// whether this call did the transition. Caller must hold no lock.
  bool fail_over_tenant(const std::shared_ptr<Tenant>& tenant);
  /// Rescales the admission byte budget to the routable device count and
  /// prunes plan-cache generations no routable device can reach.
  void rescale_admission();
  /// Resolves expired deadlines of tenants no worker currently owns.
  void reap_deadlines();
  /// Monitor pass: while the routable fleet sits below the promotion floor
  /// and a healthy standby exists, pre-warm and promote it into routing.
  void maybe_promote_spares();
  bool routable(std::size_t device_index) const {
    const auto h = device_health(device_index);
    return (h == DeviceHealth::kHealthy || h == DeviceHealth::kDegraded) &&
           !faults_.dead(device_index) &&
           !devices_[device_index]->standby.load(std::memory_order_acquire);
  }
  /// Least-loaded routable device; devices_.size() when none remains.
  std::size_t pick_routable_device() const;
  /// The control-plane fault gate: one injector decision before a device
  /// call. kOk = proceed; kUnavailable = death/drop (command lost);
  /// kIntegrityFailure = transient fault (record not consumed).
  accel::DeviceStatus fault_gate(std::size_t device_index);

  ServerConfig config_;
  std::vector<std::unique_ptr<DeviceNode>> devices_;
  /// Primary fleet size (devices_ holds primaries then spares). Admission
  /// budgets scale against this; spares only count once promoted.
  std::size_t primary_devices_ = 0;

  /// Striped tenant/routing table — the only lock a submit takes.
  ShardedTable<Tenant> table_;
  AdmissionController admission_;
  /// One token per tenant-became-ready transition; workers block here.
  std::counting_semaphore<> work_sem_{0};
  std::atomic<TenantId> next_tenant_{1};

  // --- Observability state ---------------------------------------------------
  // metrics_ is declared before ins_ (references into it) and before
  // model_store_ (bound to it in the ctor). Mutable: telemetry() is const
  // but samples live gauges into the registry at export time.

  mutable obs::MetricRegistry metrics_;
  obs::TraceCollector trace_;
  /// Timestamped health/failover edges (healthy→degraded→quarantined→dead,
  /// reinstatements, failovers); exported via telemetry().
  obs::EventLog events_;

  /// Stable handles into metrics_ for everything the data plane increments —
  /// resolved once at construction so the hot path never touches the
  /// registry mutex. ServerStats is a snapshot view over these same cells.
  struct Instruments {
    obs::Counter& requests;
    obs::Counter& batches;
    obs::Counter& admitted;
    obs::Counter& rejected;
    obs::Counter& backpressured;
    obs::Counter& evicted;
    obs::Counter& replications;
    obs::Counter& failovers;
    obs::Counter& quarantines;
    obs::Counter& retries;
    obs::Counter& timeouts;
    obs::Counter& plan_hits;
    obs::Counter& plan_misses;
    obs::Counter& migrations_ok;        ///< serving_migrations_total{result=ok}
    obs::Counter& migrations_aborted;   ///< …{result=aborted}
    obs::Counter& migrations_failover;  ///< …{result=failover}
    obs::Counter& spare_promotions;     ///< spare_promotions_total
    obs::Histogram& queue_ms;     ///< enqueue → worker pickup
    obs::Histogram& service_ms;   ///< pickup → completion
    obs::Histogram& e2e_ms;       ///< enqueue → completion (ok requests)
    obs::Histogram& batch_size;   ///< requests per worker batch
    obs::Histogram& failover_ms;  ///< fail_over_tenant teardown duration
    obs::Histogram& reconnect_ms; ///< successful reconnect() duration
    obs::Histogram& migration_drain_ms;    ///< mark-draining → FIFO quiescent
    obs::Histogram& migration_blackout_ms; ///< mark-draining → routing flip
  };
  static Instruments make_instruments(obs::MetricRegistry& registry);
  Instruments ins_;

  /// Per-shard queue-depth / sojourn-time histograms
  /// (serving_shard_{depth,sojourn_ms}{shard=K}), indexed by shard, created
  /// at construction. Pointers into metrics_-owned storage.
  std::vector<obs::Histogram*> shard_depth_;
  std::vector<obs::Histogram*> shard_sojourn_;
  /// Per-device request counters (serving_device_requests_total{device=K}).
  std::vector<obs::Counter*> device_requests_;

  /// Counts the transition edge and appends it to the event log. `cause` is
  /// a short reason ("call failed", "fail-stop", "reinstate", ...).
  void note_health_transition(std::size_t device_index, DeviceHealth from,
                              DeviceHealth to, const char* cause);

  FaultInjector faults_;
  /// Tenants torn down by failover, awaiting reconnect(). Guarded by
  /// failover_mu_; never held together with a shard lock or plan_mu_.
  mutable std::mutex failover_mu_;
  std::unordered_map<TenantId, FailoverRecord> failovers_;

  std::mutex plan_mu_;
  /// Keyed on (model hash, device generation): a device reset invalidates
  /// every plan compiled for its earlier generations (reset_device prunes
  /// entries below the fleet's minimum generation).
  std::map<std::pair<crypto::Sha256Digest, u64>,
           std::shared_ptr<const host::ExecutionPlan>>
      plan_cache_;
  /// One shared FuncNetwork per registered model hash (ModelHandles
  /// reference it instead of copying the weights per handle).
  std::map<crypto::Sha256Digest, std::shared_ptr<const host::FuncNetwork>>
      net_cache_;

  store::ModelStore model_store_;

  /// Health monitor (see monitor_loop). The destructor stops and joins it
  /// explicitly before draining the workers, so no failover runs while the
  /// shutdown drain resolves queues.
  std::jthread monitor_;
  std::vector<std::jthread> workers_;  // last member: joins before teardown
};

}  // namespace guardnn::serving
