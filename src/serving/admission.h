// Admission control for the serving data plane.
//
// Two independent limits replace the old flat `max_pending` request cap:
//
//   * a per-tenant queue quota — a tenant at its quota is hard-rejected
//     (kQueueFull) without touching any other tenant's budget, so a noisy
//     neighbor can never starve a well-behaved tenant out of the queue;
//   * a fleet-wide budget of queued sealed-input *bytes*, wired to the
//     modeled device ingest bandwidth (the MicroBlaze import path moves
//     ~3.2 GB/s per device; see accel::MicrocontrollerModel::import_gbs):
//     the budget is the number of bytes the fleet can ingest within
//     `backpressure_window_ms`. Crossing it is *backpressure* — a soft,
//     retryable signal distinct from the hard per-tenant reject, telling
//     clients the fleet (not their own queue) is saturated. The budget is
//     *live*: the health monitor rescales it to the surviving device count
//     when devices die or are quarantined (set_byte_budget), so admission
//     never over-admits against ingest bandwidth that no longer exists.
//
// Both counters are atomics: the admission decision adds nothing but two
// relaxed RMWs to the submit hot path, which otherwise takes only its
// tenant's shard lock (see shard_table.h).
//
// A rejected submission is not consumed: the secure channel's strict
// sequence numbers mean the client must retry the *same* sealed record
// later (re-sealing a fresh one would leave a gap the device refuses).
#pragma once

#include <atomic>
#include <cstddef>

#include "common/types.h"

namespace guardnn::serving {

class AdmissionController {
 public:
  enum class Decision : u8 {
    kAdmit,
    kTenantQuota,   ///< The tenant's own queue is at quota (hard reject).
    kBackpressure,  ///< Fleet byte budget exhausted (soft, retryable).
  };

  /// `per_tenant_quota`: max queued requests per tenant (0 rejects all).
  /// `byte_budget`: fleet-wide cap on queued sealed-input bytes.
  AdmissionController(std::size_t per_tenant_quota, std::size_t byte_budget)
      : per_tenant_quota_(per_tenant_quota), byte_budget_(byte_budget) {}

  /// Byte budget implied by the modeled per-device ingest bandwidth: what
  /// `num_devices` devices drain in `window_ms` at `ingest_gbs` GB/s each.
  static std::size_t derive_byte_budget(std::size_t num_devices,
                                        double ingest_gbs, double window_ms) {
    const double bytes = static_cast<double>(num_devices) * ingest_gbs * 1e9 *
                         (window_ms / 1e3);
    return bytes < 1.0 ? 1 : static_cast<std::size_t>(bytes);
  }

  /// Decides one submission of `bytes` for a tenant that currently has
  /// `tenant_pending` queued requests; on kAdmit the counters are charged.
  /// Call under the tenant's shard lock (so `tenant_pending` stays exact);
  /// the fleet byte counter is global and only approximately fair across
  /// shards, which is fine — it is a bandwidth backstop, not an SLA.
  Decision try_admit(std::size_t tenant_pending, std::size_t bytes) {
    if (tenant_pending >= per_tenant_quota_) return Decision::kTenantQuota;
    const std::size_t before =
        pending_bytes_.fetch_add(bytes, std::memory_order_relaxed);
    // Progress guarantee: an empty fleet always admits, even a single
    // request bigger than the whole budget.
    if (before != 0 &&
        before + bytes > byte_budget_.load(std::memory_order_relaxed)) {
      pending_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
      return Decision::kBackpressure;
    }
    pending_requests_.fetch_add(1, std::memory_order_relaxed);
    return Decision::kAdmit;
  }

  /// Returns capacity when requests leave the queue (worker pickup, tenant
  /// teardown drain, shutdown).
  void release(std::size_t requests, std::size_t bytes) {
    if (requests) pending_requests_.fetch_sub(requests, std::memory_order_relaxed);
    if (bytes) pending_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
  }

  std::size_t pending_requests() const {
    return pending_requests_.load(std::memory_order_relaxed);
  }
  std::size_t pending_bytes() const {
    return pending_bytes_.load(std::memory_order_relaxed);
  }
  std::size_t per_tenant_quota() const { return per_tenant_quota_; }
  std::size_t byte_budget() const {
    return byte_budget_.load(std::memory_order_relaxed);
  }

  /// Rescales the fleet byte budget in place (health monitor: a device died
  /// or was quarantined, or came back). Already-admitted bytes are not
  /// revoked — the queue drains through the new, smaller gate.
  void set_byte_budget(std::size_t budget) {
    byte_budget_.store(budget < 1 ? 1 : budget, std::memory_order_relaxed);
  }

 private:
  const std::size_t per_tenant_quota_;
  std::atomic<std::size_t> byte_budget_;
  std::atomic<std::size_t> pending_requests_{0};
  std::atomic<std::size_t> pending_bytes_{0};
};

}  // namespace guardnn::serving
