#include "serving/fault.h"

#include <cstdlib>

namespace guardnn::serving {

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone: return "none";
    case FaultKind::kDeath: return "death";
    case FaultKind::kIntegrity: return "integrity";
    case FaultKind::kLatency: return "latency";
    case FaultKind::kDrop: return "drop";
  }
  return "unknown";
}

FaultInjector::FaultInjector(std::size_t num_devices) {
  devices_.reserve(num_devices);
  for (std::size_t i = 0; i < num_devices; ++i)
    devices_.push_back(std::make_unique<PerDevice>());
}

void FaultInjector::set_armed(PerDevice& dev) {
  // Caller holds dev.mu. `armed` is a hint for the fast path; it stays set
  // while any script or probability remains.
  const bool armed = dev.kill_countdown || dev.integrity_left ||
                     dev.drop_left || dev.latency_left || dev.random_armed;
  dev.armed.store(armed, std::memory_order_release);
}

void FaultInjector::kill(std::size_t device) {
  devices_[device]->dead.store(true, std::memory_order_release);
  injected_.fetch_add(1, std::memory_order_relaxed);
}

void FaultInjector::kill_after(std::size_t device, u64 calls) {
  PerDevice& dev = *devices_[device];
  std::lock_guard<std::mutex> lock(dev.mu);
  dev.kill_countdown = calls ? calls : 1;
  set_armed(dev);
}

void FaultInjector::revive(std::size_t device) {
  devices_[device]->dead.store(false, std::memory_order_release);
}

void FaultInjector::script_integrity_burst(std::size_t device, u64 count) {
  PerDevice& dev = *devices_[device];
  std::lock_guard<std::mutex> lock(dev.mu);
  dev.integrity_left += count;
  set_armed(dev);
}

void FaultInjector::script_drop(std::size_t device, u64 count) {
  PerDevice& dev = *devices_[device];
  std::lock_guard<std::mutex> lock(dev.mu);
  dev.drop_left += count;
  set_armed(dev);
}

void FaultInjector::script_latency(std::size_t device, double ms, u64 count) {
  PerDevice& dev = *devices_[device];
  std::lock_guard<std::mutex> lock(dev.mu);
  dev.latency_left += count;
  dev.latency_ms = ms;
  set_armed(dev);
}

void FaultInjector::arm_random(std::size_t device, const Probabilities& p,
                               u64 seed) {
  PerDevice& dev = *devices_[device];
  std::lock_guard<std::mutex> lock(dev.mu);
  dev.prob = p;
  dev.rng = Xoshiro256(seed);
  dev.random_armed =
      p.death > 0 || p.integrity > 0 || p.drop > 0 || p.latency > 0;
  set_armed(dev);
}

void FaultInjector::clear(std::size_t device) {
  PerDevice& dev = *devices_[device];
  std::lock_guard<std::mutex> lock(dev.mu);
  dev.kill_countdown = 0;
  dev.integrity_left = 0;
  dev.drop_left = 0;
  dev.latency_left = 0;
  dev.random_armed = false;
  set_armed(dev);
}

FaultInjector::Decision FaultInjector::on_call(std::size_t device) {
  PerDevice& dev = *devices_[device];
  if (dev.dead.load(std::memory_order_acquire))
    return Decision{FaultKind::kDeath, 0.0};
  if (!dev.armed.load(std::memory_order_acquire)) return Decision{};

  Decision decision;
  {
    std::lock_guard<std::mutex> lock(dev.mu);
    if (dev.kill_countdown && --dev.kill_countdown == 0) {
      decision.kind = FaultKind::kDeath;
    } else if (dev.integrity_left) {
      --dev.integrity_left;
      decision.kind = FaultKind::kIntegrity;
    } else if (dev.drop_left) {
      --dev.drop_left;
      decision.kind = FaultKind::kDrop;
    } else if (dev.latency_left) {
      --dev.latency_left;
      decision.kind = FaultKind::kLatency;
      decision.latency_ms = dev.latency_ms;
    } else if (dev.random_armed) {
      const double roll = dev.rng.next_double();
      if (roll < dev.prob.death) {
        decision.kind = FaultKind::kDeath;
      } else if (roll < dev.prob.death + dev.prob.drop) {
        decision.kind = FaultKind::kDrop;
      } else if (roll < dev.prob.death + dev.prob.drop + dev.prob.integrity) {
        decision.kind = FaultKind::kIntegrity;
      } else if (roll <
                 dev.prob.death + dev.prob.drop + dev.prob.integrity +
                     dev.prob.latency) {
        decision.kind = FaultKind::kLatency;
        decision.latency_ms = dev.prob.latency_ms;
      }
    }
    set_armed(dev);
  }
  if (decision.kind == FaultKind::kDeath)
    dev.dead.store(true, std::memory_order_release);
  if (decision.kind != FaultKind::kNone)
    injected_.fetch_add(1, std::memory_order_relaxed);
  return decision;
}

bool FaultInjector::arm_from_env() {
  const char* plan = std::getenv("GUARDNN_FAULT_PLAN");
  if (!plan || !*plan) return false;
  return arm_plan(plan);
}

u64 FaultInjector::env_seed(u64 fallback) {
  const char* env = std::getenv("GUARDNN_FAULT_SEED");
  if (!env || !*env) return fallback;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(env, &end, 0);
  if (end == env || (end && *end != '\0')) return fallback;
  return static_cast<u64>(parsed);
}

bool FaultInjector::arm_plan(const std::string& plan) {
  // Grammar: entry(";"entry)*, entry = kind":"device[":"count[":"ms]].
  // kill's optional third field is a call countdown, not a count.
  std::size_t pos = 0;
  bool ok = true;
  while (pos <= plan.size()) {
    const std::size_t end = std::min(plan.find(';', pos), plan.size());
    const std::string entry = plan.substr(pos, end - pos);
    pos = end + 1;
    if (entry.empty()) {
      if (end == plan.size()) break;
      continue;
    }
    std::size_t c1 = entry.find(':');
    if (c1 == std::string::npos) {
      ok = false;
      continue;
    }
    const std::string kind = entry.substr(0, c1);
    std::size_t c2 = entry.find(':', c1 + 1);
    std::size_t c3 = c2 == std::string::npos ? std::string::npos
                                             : entry.find(':', c2 + 1);
    auto field = [&](std::size_t from, std::size_t to) {
      return entry.substr(from, to == std::string::npos ? std::string::npos
                                                        : to - from);
    };
    char* parse_end = nullptr;
    const std::string dev_str = field(c1 + 1, c2);
    const std::size_t device =
        static_cast<std::size_t>(std::strtoull(dev_str.c_str(), &parse_end, 0));
    if (parse_end == dev_str.c_str() || *parse_end != '\0') {
      ok = false;
      continue;
    }
    if (device >= devices_.size()) continue;  // plan reused across fleet sizes
    double arg2 = 0, arg3 = 0;
    if (c2 != std::string::npos)
      arg2 = std::strtod(field(c2 + 1, c3).c_str(), nullptr);
    if (c3 != std::string::npos)
      arg3 = std::strtod(entry.substr(c3 + 1).c_str(), nullptr);

    if (kind == "kill") {
      if (arg2 > 0)
        kill_after(device, static_cast<u64>(arg2));
      else
        kill(device);
    } else if (kind == "integrity") {
      script_integrity_burst(device, arg2 > 0 ? static_cast<u64>(arg2) : 1);
    } else if (kind == "drop") {
      script_drop(device, arg2 > 0 ? static_cast<u64>(arg2) : 1);
    } else if (kind == "latency") {
      script_latency(device, arg3 > 0 ? arg3 : 1.0,
                     arg2 > 0 ? static_cast<u64>(arg2) : 1);
    } else {
      ok = false;
    }
    if (end == plan.size()) break;
  }
  return ok;
}

}  // namespace guardnn::serving
