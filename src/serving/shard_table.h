// Striped tenant/routing table for the fleet-scale serving control plane.
//
// The serving hot path (submit_async) must never take a process-global lock:
// with thousands of tenants and many worker threads, one mutex in front of
// the tenant map + ready queue serializes every enqueue and drain (the
// pre-sharding server measured ~4k req/s with exactly that bottleneck).
// ShardedTable stripes both structures: tenants hash to one of a fixed
// power-of-two number of shards, each shard owning its own mutex, tenant map
// and ready queue. A submit touches exactly one shard; workers drain their
// preferred shard and steal from the others, so disjoint tenants contend
// only when they happen to share a stripe.
//
// The table is deliberately dumb: it owns no scheduling policy and no
// admission state (see admission.h). Callers lock `Shard::mu` themselves so
// multi-step transitions (admission check + enqueue + ready push) stay
// atomic per shard.
#pragma once

#include <deque>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace guardnn::serving {

using TenantId = u64;

/// SplitMix64 finalizer: tenant ids are sequential, so without mixing they
/// would stripe perfectly... onto consecutive shards, which is fine — but a
/// strong mix keeps the distribution uniform for any id-assignment policy
/// (e.g. ids that encode a device index in their low bits).
constexpr u64 mix_tenant_id(u64 x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// One stripe of the routing table. All three members are guarded by `mu`;
/// callers lock it directly (see file header).
template <typename TenantT>
struct TableShard {
  mutable std::mutex mu;
  /// Tenants whose id hashes to this stripe.
  std::unordered_map<TenantId, std::shared_ptr<TenantT>> tenants;
  /// Tenants with queued work, awaiting a worker. At most one entry per
  /// tenant (the owner sets `scheduled` under `mu`).
  std::deque<std::shared_ptr<TenantT>> ready;
};

template <typename TenantT>
class ShardedTable {
 public:
  /// `shard_count_hint` is rounded up to a power of two (minimum 1).
  explicit ShardedTable(std::size_t shard_count_hint) {
    std::size_t n = 1;
    while (n < shard_count_hint) n <<= 1;
    shards_.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
      shards_.push_back(std::make_unique<TableShard<TenantT>>());
    mask_ = n - 1;
  }

  std::size_t shard_count() const { return shards_.size(); }

  std::size_t shard_index(TenantId id) const { return mix_tenant_id(id) & mask_; }
  TableShard<TenantT>& shard_for(TenantId id) {
    return *shards_[shard_index(id)];
  }
  const TableShard<TenantT>& shard_for(TenantId id) const {
    return *shards_[shard_index(id)];
  }
  TableShard<TenantT>& shard_at(std::size_t index) { return *shards_[index]; }

  /// Runs `fn(shard)` on every shard, locking one stripe at a time — for
  /// control-plane sweeps (eviction scans, device purges, shutdown drains)
  /// that must never hold the whole table.
  template <typename Fn>
  void for_each_shard_locked(Fn&& fn) {
    for (auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mu);
      fn(*shard);
    }
  }

 private:
  std::vector<std::unique_ptr<TableShard<TenantT>>> shards_;
  std::size_t mask_ = 0;
};

}  // namespace guardnn::serving
