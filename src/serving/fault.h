// Device fault injection for the serving fleet.
//
// GuardNN's trust model is fail-stop: a MAC or VN check failure kills the
// session, and a device that stops answering takes every key it held with it.
// The serving layer therefore has to assume devices *will* die, wedge, and
// misbehave under load — and the only way to test that machinery honestly is
// to make failure a first-class, scriptable input. The FaultInjector sits on
// the host side of every InferenceServer → GuardNnDevice call boundary (the
// exact seam where a real driver would observe command timeouts and PCIe
// errors) and decides, per call, whether the device answers normally or
// exhibits one of four faults:
//
//   * kDeath        — fail-stop device death. Permanent until revive(): every
//                     subsequent call on the device fails. Models power loss:
//                     the session-table SRAM (and every key in it) is gone,
//                     so sessions on the device are cryptographically
//                     unrecoverable (see inference_server.h "Failure model").
//   * kIntegrity    — a transient kIntegrityFailure answered at the call
//                     boundary *before* the device consumes the request's
//                     sealed record. Because the record was never consumed,
//                     retrying the same record preserves the secure channel's
//                     strict sequence numbers — the contract the server's
//                     bounded-backoff retry loop depends on.
//   * kLatency      — the call completes but takes `latency_ms` longer
//                     (a wedged interconnect / thermal-throttled part). The
//                     server's per-request deadlines turn an unbounded wedge
//                     into kTimeout instead of a blocked worker.
//   * kDrop         — the device executes the command but the completion is
//                     lost. The device-side channel state has advanced (an
//                     output was sealed and never delivered), so the session
//                     is wounded: the server must fail the tenant over even
//                     though the device survives.
//
// Faults are scripted per device (deterministic counters: "the next N
// data-plane calls fail") or probabilistic (seeded xoshiro per device, for
// chaos benches and the deep-fuzz job). The no-fault fast path is one relaxed
// atomic load per call — cheap enough to leave compiled into production
// builds.
//
// Env knobs (read by arm_from_env, used by the fuzz/chaos jobs):
//   GUARDNN_FAULT_SEED   seed for probabilistic faults (decimal or 0x hex)
//   GUARDNN_FAULT_PLAN   semicolon-separated scripted faults, each
//                        kind:device[:count[:ms]] —
//                          kill:1          device 1 dies immediately
//                          kill:1:40       device 1 dies at its 40th call
//                          integrity:0:5   next 5 calls on device 0 fail
//                          drop:2:1        device 2 drops one completion
//                          latency:3:8:25  8 calls on device 3 take +25 ms
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/types.h"

namespace guardnn::serving {

enum class FaultKind : u8 {
  kNone,
  kDeath,      ///< Fail-stop: the device never answers again.
  kIntegrity,  ///< Transient kIntegrityFailure, record not consumed.
  kLatency,    ///< Call completes after an injected delay.
  kDrop,       ///< Command executed, completion lost (session wounded).
};

const char* fault_kind_name(FaultKind kind);

class FaultInjector {
 public:
  /// Per-call fault probabilities for probabilistic mode. Probabilities are
  /// evaluated in the order death → drop → integrity → latency; at most one
  /// fault fires per call.
  struct Probabilities {
    double death = 0.0;
    double integrity = 0.0;
    double drop = 0.0;
    double latency = 0.0;
    double latency_ms = 0.0;
  };

  /// What one device call should do. `latency_ms` is only meaningful for
  /// kLatency (and is additive to any emulated device time).
  struct Decision {
    FaultKind kind = FaultKind::kNone;
    double latency_ms = 0.0;
  };

  explicit FaultInjector(std::size_t num_devices);

  // --- Scripted faults (tests, benches, admin tooling) ---------------------

  /// Fail-stop death, effective immediately.
  void kill(std::size_t device);
  /// Fail-stop death armed to fire at the device's `calls`-th next call
  /// (1 = the very next one).
  void kill_after(std::size_t device, u64 calls);
  /// Un-kills a device ("replace the card"). The device object itself was
  /// never touched — but its sessions were torn down by the server's health
  /// monitor, so callers normally pair this with reinstate_device().
  void revive(std::size_t device);
  /// The next `count` data-plane calls answer kIntegrityFailure.
  void script_integrity_burst(std::size_t device, u64 count);
  /// The next `count` completions are dropped.
  void script_drop(std::size_t device, u64 count);
  /// The next `count` calls take `ms` extra milliseconds.
  void script_latency(std::size_t device, double ms, u64 count);
  /// Seeded probabilistic faults on one device (chaos / fuzz mode).
  void arm_random(std::size_t device, const Probabilities& p, u64 seed);
  /// Clears every scripted and probabilistic fault (dead stays dead).
  void clear(std::size_t device);

  // --- Env-driven plans (deep-fuzz / chaos CI) -----------------------------

  /// Applies GUARDNN_FAULT_PLAN (scripted) and returns true when a plan was
  /// present and parsed. Entries naming devices beyond `device_count()` are
  /// ignored, so one plan string works across fleet sizes.
  bool arm_from_env();
  /// Parses a plan string (the GUARDNN_FAULT_PLAN grammar above). Returns
  /// false on a malformed entry; well-formed entries before it still apply.
  bool arm_plan(const std::string& plan);
  /// GUARDNN_FAULT_SEED as a u64 (0x-prefixed hex or decimal); `fallback`
  /// when unset or unparseable.
  static u64 env_seed(u64 fallback);

  // --- Call-site hooks (InferenceServer) -----------------------------------

  /// One relaxed load: the common no-fault case never takes a lock.
  bool dead(std::size_t device) const {
    return devices_[device]->dead.load(std::memory_order_acquire);
  }

  /// Decides the fate of one device call. Scripted counters are consumed
  /// FIFO; probabilistic faults roll afterwards. Death decisions latch: once
  /// returned, dead() stays true until revive().
  Decision on_call(std::size_t device);

  std::size_t device_count() const { return devices_.size(); }

  /// Total faults injected so far (all devices, all kinds) — lets tests
  /// assert a scripted plan actually fired.
  u64 injected_count() const {
    return injected_.load(std::memory_order_relaxed);
  }

 private:
  struct PerDevice {
    std::atomic<bool> dead{false};
    /// Scripts or probabilities are armed; checked before taking `mu`.
    std::atomic<bool> armed{false};
    std::mutex mu;
    u64 kill_countdown = 0;  ///< 0 = not armed; 1 = die on the next call.
    u64 integrity_left = 0;
    u64 drop_left = 0;
    u64 latency_left = 0;
    double latency_ms = 0.0;
    bool random_armed = false;
    Probabilities prob;
    Xoshiro256 rng{0};
  };

  void set_armed(PerDevice& dev);

  std::vector<std::unique_ptr<PerDevice>> devices_;
  std::atomic<u64> injected_{0};
};

}  // namespace guardnn::serving
